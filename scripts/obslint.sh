#!/bin/sh
# obslint: keep metrics in the registry. Flags new bespoke counter
# fields (int64 struct fields named like counters) declared outside
# internal/obs — new metrics belong in the obs.Registry behind dotted
# names, not ad-hoc struct fields with hand-rolled accessors.
#
# Pre-existing fields (engine.ExecStats etc.) are grandfathered in
# scripts/obslint.allow; add a line there ONLY with a reason in the
# commit message.
set -eu
cd "$(dirname "$0")/.."

pattern='^[[:space:]]+[A-Z][A-Za-z]*(Count|Counts|Hits|Misses|Calls|Retries|Faults|Errors|Injected|Scanned|Replays)[[:space:]]+int64'

matches=$(grep -rnE "$pattern" --include='*.go' \
    --exclude-dir=obs --exclude='*_test.go' internal/ cmd/ 2>/dev/null \
    | sed 's/:[0-9]*:/: /' | awk '{print $1, $2}' | sort -u) || true

new=$(printf '%s\n' "$matches" | comm -13 scripts/obslint.allow - || true)
if [ -n "$new" ]; then
    echo "obslint: new raw counter field(s) outside internal/obs:" >&2
    printf '%s\n' "$new" >&2
    echo "route them through the obs.Registry (see DESIGN.md Observability)" >&2
    exit 1
fi

# Second pass: every literal metric name registered on the obs.Registry
# must be documented (backticked) in DESIGN.md, so the system.metrics
# table stays self-describing. The trailing [,)] in the pattern limits
# this to literal names; dynamically composed names (the
# serve.tenant.<principal>.* family) are exempt by construction.
undocumented=
for name in $(grep -rhoE '\.(Counter|Gauge|Histogram)\("[a-z0-9_.]+"[,)]' \
    --include='*.go' --exclude-dir=obs --exclude='*_test.go' internal/ cmd/ 2>/dev/null \
    | sed -E 's/.*\("([a-z0-9_.]+)".*/\1/' | sort -u); do
    if ! grep -q "\`$name\`" DESIGN.md; then
        undocumented="$undocumented $name"
    fi
done
if [ -n "$undocumented" ]; then
    echo "obslint: registered metric name(s) missing from DESIGN.md:" >&2
    for name in $undocumented; do echo "  $name" >&2; done
    echo "add them to the metric name reference (DESIGN.md, Queryable telemetry & SLOs)" >&2
    exit 1
fi
echo "obslint: ok"
