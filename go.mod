module biglake

go 1.22
