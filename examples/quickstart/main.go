// Quickstart: stand up a lakehouse, create a BigLake table over
// open-format files on a customer bucket (§3), apply fine-grained
// governance (§3.2), and query it through SQL and through the Storage
// Read API exactly as BigQuery and an external engine would.
package main

import (
	"fmt"
	"log"

	"biglake"
	"biglake/internal/colfmt"
	"biglake/internal/vector"
)

const (
	admin   = biglake.Principal("admin@biglake")
	analyst = biglake.Principal("analyst@corp")
)

func main() {
	lh, err := biglake.New(biglake.Options{Admin: admin})
	if err != nil {
		log.Fatal(err)
	}

	// 1. A customer-owned bucket holding open-format columnar files.
	must(lh.CreateDataset("sales"))
	must(lh.CreateBucket("customer-lake"))
	schema := biglake.NewSchema(
		biglake.Field{Name: "order_id", Type: biglake.Int64},
		biglake.Field{Name: "region", Type: biglake.String},
		biglake.Field{Name: "email", Type: biglake.String},
		biglake.Field{Name: "amount", Type: biglake.Float64},
	)
	bl := vector.NewBuilder(schema)
	for i := 0; i < 1000; i++ {
		bl.Append(
			biglake.IntValue(int64(i)),
			biglake.StringValue([]string{"us", "eu", "jp"}[i%3]),
			biglake.StringValue(fmt.Sprintf("user%d@example.com", i)),
			biglake.FloatValue(float64(i%500)),
		)
	}
	file, err := colfmt.WriteFile(bl.Build(), colfmt.WriterOptions{})
	must(err)
	must(lh.Upload("customer-lake", "orders/part-0.blk", file, "application/x-blk"))

	// 2. Promote the files to a BigLake table: delegated access via a
	// connection, catalog as source of truth, metadata caching on.
	_, err = lh.CreateConnection("lake-conn", "customer-lake")
	must(err)
	must(lh.CreateBigLakeTable(admin, biglake.BigLakeTableSpec{
		Dataset: "sales", Name: "orders", Schema: schema,
		Bucket: "customer-lake", Prefix: "orders/",
		Connection: "lake-conn", MetadataCaching: true,
	}))
	n, err := lh.RefreshMetadataCache("sales.orders")
	must(err)
	fmt.Printf("metadata cache built over %d files\n", n)

	// 3. Fine-grained governance: the analyst sees only the us region,
	// with emails masked.
	must(lh.Auth.GrantTable(admin, "sales.orders", analyst, biglake.RoleViewer))
	must(lh.Auth.AddRowPolicy(admin, "sales.orders", biglake.RowPolicy{
		Name:     "us_only",
		Grantees: map[biglake.Principal]bool{analyst: true},
		Filter: []biglake.Predicate{{
			Column: "region", Op: vector.EQ, Value: biglake.StringValue("us"),
		}},
	}))
	must(lh.Auth.SetColumnPolicy(admin, "sales.orders", biglake.ColumnPolicy{
		Column:  "email",
		Allowed: map[biglake.Principal]bool{admin: true},
		Mask:    vector.MaskHash,
	}))

	// 4. Query as the analyst: row policy + masking enforced in-engine.
	res, err := lh.Query(analyst, `SELECT region, email, amount FROM sales.orders ORDER BY amount DESC LIMIT 3`)
	must(err)
	fmt.Println("\nanalyst query (row-filtered, masked):")
	for i := 0; i < res.Batch.N; i++ {
		row := res.Batch.Row(i)
		fmt.Printf("  %s  %s  %v\n", row[0].S, row[1].S, row[2])
	}

	// 5. The same governance applies through the Storage Read API —
	// what Spark/Trino would receive (§3.2's zero-trust boundary).
	sess, err := lh.StorageAPI.CreateReadSession(biglake.ReadSessionRequest{
		Table: "sales.orders", Principal: analyst, Columns: []string{"region", "email"},
	})
	must(err)
	batch, err := lh.StorageAPI.ReadAll(sess)
	must(err)
	fmt.Printf("\nread api session %s: %d streams, %d governed rows, first email %q\n",
		sess.ID, len(sess.Streams), batch.N, batch.Column("email").Value(0).S)

	fmt.Printf("\nsimulated time elapsed: %v\n", lh.Now())
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
