// Governance: the §3.2/§3.4 external-engine story. A Spark-style
// engine ("Sparkle") reads the same BigLake table two ways — directly
// from the bucket with its own credential (raw bytes, no governance)
// and through the Storage Read API (filtered, masked, and accelerated
// by session statistics) — demonstrating why the Read API is the trust
// boundary and what the metadata layer buys external engines.
package main

import (
	"fmt"
	"log"

	"biglake"
	"biglake/internal/colfmt"
	"biglake/internal/objstore"
	"biglake/internal/sim"
	"biglake/internal/vector"
)

const (
	admin     = biglake.Principal("admin@biglake")
	sparkUser = biglake.Principal("spark-user@corp")
)

func main() {
	lh, err := biglake.New(biglake.Options{Admin: admin})
	if err != nil {
		log.Fatal(err)
	}
	must(lh.CreateDataset("lake"))
	must(lh.CreateBucket("shared-bucket"))

	// A fact table (clustered item keys per file) and a dimension.
	factSchema := biglake.NewSchema(
		biglake.Field{Name: "item_sk", Type: biglake.Int64},
		biglake.Field{Name: "qty", Type: biglake.Int64},
		biglake.Field{Name: "buyer_email", Type: biglake.String},
	)
	rng := sim.NewRNG(7)
	for f := 0; f < 8; f++ {
		bl := vector.NewBuilder(factSchema)
		for r := 0; r < 500; r++ {
			item := int64(f*100 + rng.Intn(100))
			bl.Append(biglake.IntValue(item), biglake.IntValue(int64(1+rng.Intn(5))),
				biglake.StringValue(fmt.Sprintf("buyer%d@example.com", item)))
		}
		file, err := colfmt.WriteFile(bl.Build(), colfmt.WriterOptions{})
		must(err)
		must(lh.Upload("shared-bucket", fmt.Sprintf("fact/part-%02d.blk", f), file, ""))
	}
	dimSchema := biglake.NewSchema(
		biglake.Field{Name: "i_item_sk", Type: biglake.Int64},
		biglake.Field{Name: "i_category", Type: biglake.String},
	)
	bl := vector.NewBuilder(dimSchema)
	for i := 0; i < 800; i++ {
		cat := "General"
		if i < 50 {
			cat = "Books"
		}
		bl.Append(biglake.IntValue(int64(i)), biglake.StringValue(cat))
	}
	dimFile, err := colfmt.WriteFile(bl.Build(), colfmt.WriterOptions{})
	must(err)
	must(lh.Upload("shared-bucket", "dim/part-0.blk", dimFile, ""))

	_, err = lh.CreateConnection("conn", "shared-bucket")
	must(err)
	must(lh.CreateBigLakeTable(admin, biglake.BigLakeTableSpec{
		Dataset: "lake", Name: "fact", Schema: factSchema,
		Bucket: "shared-bucket", Prefix: "fact/", Connection: "conn", MetadataCaching: true,
	}))
	must(lh.CreateBigLakeTable(admin, biglake.BigLakeTableSpec{
		Dataset: "lake", Name: "item", Schema: dimSchema,
		Bucket: "shared-bucket", Prefix: "dim/", Connection: "conn", MetadataCaching: true,
	}))
	must(lh.Auth.GrantTable(admin, "lake.fact", sparkUser, biglake.RoleViewer))
	must(lh.Auth.GrantTable(admin, "lake.item", sparkUser, biglake.RoleViewer))
	must(lh.Auth.SetColumnPolicy(admin, "lake.fact", biglake.ColumnPolicy{
		Column:  "buyer_email",
		Allowed: map[biglake.Principal]bool{admin: true},
		Mask:    vector.MaskLastFour,
	}))

	// The spark user also happens to hold raw bucket access — the
	// pre-BigLake deployment pattern the paper calls out.
	userCred := objstore.Credential{Principal: string(sparkUser)}
	must(lh.Store.Grant(lh.ServiceAccount(), "shared-bucket", userCred.Principal, objstore.PermRead))

	// Path 1: direct file reads — raw emails, no governance.
	direct := biglake.NewSparkleSession(lh, biglake.SparkleOptions{})
	rawBatch, err := direct.ReadFiles(lh.Store, userCred, "shared-bucket", "fact/").Collect()
	must(err)
	fmt.Printf("direct file read: %d rows, first email %q  <- ungoverned\n",
		rawBatch.N, rawBatch.Column("buyer_email").Value(0).S)

	// Path 2: the Read API connector — masked, plus statistics-driven
	// join reordering and dynamic partition pruning.
	smart := biglake.NewSparkleSession(lh, biglake.SparkleOptions{UseSessionStats: true, EnableDPP: true})
	fact := smart.ReadBigLake(lh.StorageAPI, sparkUser, "lake.fact")
	item := smart.ReadBigLake(lh.StorageAPI, sparkUser, "lake.item").
		Filter(biglake.Predicate{Column: "i_category", Op: vector.EQ, Value: biglake.StringValue("Books")})
	joined, err := fact.Join(item, "item_sk", "i_item_sk").Collect()
	must(err)
	fmt.Printf("read api join:    %d rows, first email %q  <- masked at the boundary\n",
		joined.N, joined.Column("buyer_email").Value(0).S)
	fmt.Printf("planner meter:    %s\n", smart.Meter)

	// Path 3: aggregate pushdown — the server computes partials and
	// ships a tiny payload (§3.4 future work, implemented).
	sess, err := lh.StorageAPI.CreateReadSession(biglake.ReadSessionRequest{
		Table: "lake.fact", Principal: sparkUser,
		Aggregates: []biglake.AggregateRequest{{Column: "qty", Kind: vector.AggSum}},
	})
	must(err)
	agg, err := lh.StorageAPI.ReadAll(sess)
	must(err)
	fmt.Printf("aggregate pushdown: SUM(qty) = %v computed server-side\n", agg.Row(0)[0])
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
