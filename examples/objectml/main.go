// ObjectML: the §4 unstructured-data story end to end — an object
// table over a bucket of images and documents, Listing 1 (in-engine
// image classification with ML.DECODE_IMAGE + ML.PREDICT, including
// the Figure 7 distributed preprocess/infer split), Listing 2
// (first-party document parsing with ML.PROCESS_DOCUMENT over signed
// URLs), remote inference against an HTTP model endpoint, and the
// two-line 1% sample.
package main

import (
	"fmt"
	"log"

	"biglake"
	"biglake/internal/mlmodel"
	"biglake/internal/sim"
)

const admin = biglake.Principal("admin@biglake")

var classes = []string{"dark", "dim", "bright", "blinding"}

func main() {
	lh, err := biglake.New(biglake.Options{Admin: admin})
	if err != nil {
		log.Fatal(err)
	}
	must(lh.CreateDataset("media"))
	must(lh.CreateBucket("assets"))

	// Unstructured objects: images and invoices.
	rng := sim.NewRNG(11)
	for i := 0; i < 12; i++ {
		img := mlmodel.RandomImage(rng, 128, 128, i%len(classes), len(classes))
		enc, err := mlmodel.EncodeImage(img)
		must(err)
		must(lh.Upload("assets", fmt.Sprintf("imgs/img-%03d.jpg", i), enc, "image/jpeg"))
	}
	for i := 0; i < 3; i++ {
		doc := mlmodel.MakeInvoice(i, fmt.Sprintf("Vendor %c", 'A'+i), 100.0+float64(i)*9.5)
		must(lh.Upload("assets", fmt.Sprintf("docs/inv-%03d.pdf", i), doc, "application/pdf"))
	}

	must(lh.CreateObjectTable(admin, "media", "files", "assets", "imgs/"))
	must(lh.CreateObjectTable(admin, "media", "documents", "assets", "docs/"))

	// Object tables are just SQL over object metadata.
	res, err := lh.Query(admin, "SELECT content_type, COUNT(*) AS n, SUM(size) AS bytes FROM media.files GROUP BY content_type")
	must(err)
	fmt.Println("object inventory:")
	for i := 0; i < res.Batch.N; i++ {
		row := res.Batch.Row(i)
		fmt.Printf("  %s: %v objects, %v bytes\n", row[0].S, row[1], row[2])
	}

	// Listing 1: in-engine inference. Raw images and the model never
	// share a worker (Figure 7).
	lh.Inference.RegisterModel(&biglake.Model{
		Name:       "media.resnet50",
		Classifier: biglake.NewClassifier("resnet50", 16, 16, classes, 42),
	})
	res, err = lh.Query(admin, `SELECT uri, predictions FROM
		ML.PREDICT(
			MODEL media.resnet50,
			(
				SELECT uri, ML.DECODE_IMAGE(uri) AS image
				FROM media.files
				WHERE content_type = 'image/jpeg'
			)
		) ORDER BY uri LIMIT 4`)
	must(err)
	fmt.Println("\nlisting 1 (in-engine image inference):")
	for i := 0; i < res.Batch.N; i++ {
		row := res.Batch.Row(i)
		fmt.Printf("  %s -> %s\n", row[0].S, row[1].S)
	}
	stats := lh.Inference.LastRun()
	fmt.Printf("  figure 7 split: peak worker %d bytes, tensors %dB vs raw images %dB\n",
		stats.PeakWorkerBytes, stats.TensorWireBytes, stats.RawImageBytes)

	// Listing 2: first-party document parsing over signed URLs.
	lh.Inference.RegisterModel(&biglake.Model{
		Name:      "media.invoice_parser",
		DocParser: &biglake.DocParser{Name: "invoice_parser"},
	})
	res, err = lh.Query(admin, `SELECT * FROM ML.PROCESS_DOCUMENT(
		MODEL media.invoice_parser,
		TABLE media.documents
	)`)
	must(err)
	fmt.Println("\nlisting 2 (document parsing):")
	for i := 0; i < res.Batch.N; i++ {
		fmt.Printf("  invoice=%s vendor=%s total=%s\n",
			res.Batch.Column("invoice_id").Value(i).S,
			res.Batch.Column("vendor").Value(i).S,
			res.Batch.Column("total").Value(i).S)
	}

	// Remote inference: the same model behind a Vertex-AI-style HTTP
	// endpoint (no 2GB limit, extra latency, capacity-bound).
	server, err := startRemote(lh)
	must(err)
	defer server.Close()
	res, err = lh.Query(admin, `SELECT predictions FROM ML.PREDICT(MODEL media.remote,
		(SELECT ML.DECODE_IMAGE(uri) AS image FROM media.files)) LIMIT 2`)
	must(err)
	fmt.Printf("\nremote inference over HTTP: first prediction %q\n", res.Batch.Row(0)[0].S)

	// The §4.1 two-line sample.
	all, err := lh.Query(admin, "SELECT uri FROM media.files")
	must(err)
	sample, err := biglake.SampleObjects(all.Batch, 0.25, 7)
	must(err)
	fmt.Printf("\n25%% training sample: %d of %d objects\n", sample.N, all.Batch.N)
}

func startRemote(lh *biglake.Lakehouse) (*biglake.ModelServer, error) {
	server, err := lh.Inference.StartServer()
	if err != nil {
		return nil, err
	}
	model := biglake.NewClassifier("media.remote", 16, 16, classes, 42)
	server.Host(model)
	lh.Inference.RegisterModel(&biglake.Model{Name: "media.remote"})
	if err := lh.Inference.ConnectRemote("media.remote", server); err != nil {
		return nil, err
	}
	return server, nil
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
