// CrossCloud: the §5 Omni story — a GCP control plane with an AWS data
// plane, the Listing 3 cross-cloud join (with filter pushdown and
// metered egress), the per-query security machinery (session tokens,
// untrusted proxy, scoped credentials, security realms), and a
// cross-cloud materialized view refreshed incrementally.
package main

import (
	"fmt"
	"log"
	"time"

	"biglake"
	"biglake/internal/catalog"
	"biglake/internal/engine"
	"biglake/internal/omni"
	"biglake/internal/vector"
)

const analyst = biglake.Principal("analyst@corp")

func main() {
	dep := biglake.NewMultiCloud("admin@corp")
	gcp, err := dep.AddRegion("gcp-us", "gcp")
	must(err)
	aws, err := dep.AddRegion("aws-us-east-1", "aws")
	must(err)
	fmt.Printf("deployed regions: %s (primary/control plane), %s (data plane over VPN)\n", gcp.Name, aws.Name)

	// Listing 3's tables: ads on GCP, orders on AWS.
	must(seed(dep, gcp, aws))

	// A single SQL statement joining across clouds.
	res, err := dep.Submit(analyst, `SELECT o.order_id, o.order_total, ads.id
		FROM local_dataset.ads_impressions AS ads
		JOIN aws_dataset.customer_orders AS o ON o.customer_id = ads.customer_id
		WHERE o.order_total > 270.0`)
	must(err)
	fmt.Printf("\nlisting 3 cross-cloud join: %d rows; vpn meter: %s\n", res.Batch.N, dep.VPN.Meter())

	// The same query without pushdown ships the whole remote table.
	dep.VPN.Meter().Reset()
	_, err = dep.SubmitWith(analyst, `SELECT o.order_id, ads.id
		FROM local_dataset.ads_impressions AS ads
		JOIN aws_dataset.customer_orders AS o ON o.customer_id = ads.customer_id
		WHERE o.order_total > 270.0`, omni.SubmitOptions{DisablePushdown: true})
	must(err)
	fmt.Printf("without pushdown:           vpn meter: %s\n", dep.VPN.Meter())

	// Per-query security: a tampered session token is rejected by the
	// untrusted proxy; a scoped credential cannot escape its paths.
	tok := dep.Auth.MintToken("demo-q", analyst, aws.Name,
		[]string{"aws_dataset.customer_orders"}, dep.Clock.Now()+5*time.Minute)
	tok.Tables = append(tok.Tables, "local_dataset.ads_impressions") // compromised worker widens scope
	err = dep.Proxy().Authorize(tok, aws.Name, "svc-aws-us-east-1@omni", "local_dataset.ads_impressions")
	fmt.Printf("\ntampered session token: %v\n", err)

	// Cross-cloud materialized view: incremental replication.
	mv, err := dep.CreateCCMV("orders_mv", "aws_dataset.customer_orders", gcp.Name)
	must(err)
	rep, err := dep.Refresh(mv, true)
	must(err)
	fmt.Printf("\nccmv initial refresh: %d files, %d bytes copied cross-cloud\n", rep.FilesCopied, rep.BytesCopied)

	// Small source change -> tiny incremental refresh.
	bo := vector.NewBuilder(ordersSchema())
	bo.Append(biglake.IntValue(9999), biglake.IntValue(3), biglake.FloatValue(42))
	must(aws.Manager.Insert(engine.NewContext("admin@corp", "late"), "aws_dataset.customer_orders", bo.Build()))
	rep, err = dep.Refresh(mv, true)
	must(err)
	fmt.Printf("ccmv incremental refresh after 1 insert: %d files, %d bytes\n", rep.FilesCopied, rep.BytesCopied)

	// The replica is a first-class local table.
	must(dep.GrantReplicaAccess(mv, analyst))
	res, err = dep.Submit(analyst, "SELECT COUNT(*) AS n FROM "+mv.Replica)
	must(err)
	fmt.Printf("replica row count in %s: %v\n", gcp.Name, res.Batch.Row(0)[0])
}

func ordersSchema() biglake.Schema {
	return biglake.NewSchema(
		biglake.Field{Name: "order_id", Type: biglake.Int64},
		biglake.Field{Name: "customer_id", Type: biglake.Int64},
		biglake.Field{Name: "order_total", Type: biglake.Float64},
	)
}

func seed(dep *biglake.Deployment, gcp, aws *biglake.Region) error {
	adsSchema := biglake.NewSchema(
		biglake.Field{Name: "id", Type: biglake.Int64},
		biglake.Field{Name: "customer_id", Type: biglake.Int64},
	)
	if err := dep.Catalog.CreateDataset(catalog.Dataset{Name: "local_dataset", Region: gcp.Name, Cloud: gcp.Cloud}); err != nil {
		return err
	}
	if err := dep.Catalog.CreateDataset(catalog.Dataset{Name: "aws_dataset", Region: aws.Name, Cloud: aws.Cloud}); err != nil {
		return err
	}
	if err := dep.Catalog.CreateTable(catalog.Table{
		Dataset: "local_dataset", Name: "ads_impressions", Type: catalog.Managed,
		Schema: adsSchema, Cloud: gcp.Cloud, Bucket: gcp.Manager.DefaultBucket,
		Prefix: "blmt/ads/", Connection: "omni-" + gcp.Name,
	}); err != nil {
		return err
	}
	if err := dep.Catalog.CreateTable(catalog.Table{
		Dataset: "aws_dataset", Name: "customer_orders", Type: catalog.Managed,
		Schema: ordersSchema(), Cloud: aws.Cloud, Bucket: aws.Manager.DefaultBucket,
		Prefix: "blmt/orders/", Connection: "omni-" + aws.Name,
	}); err != nil {
		return err
	}
	for _, tbl := range []string{"local_dataset.ads_impressions", "aws_dataset.customer_orders"} {
		if err := dep.Auth.GrantTable(omni.ControlPrincipal, tbl, analyst, biglake.RoleViewer); err != nil {
			return err
		}
		if err := dep.Auth.GrantTable(omni.ControlPrincipal, tbl, "admin@corp", biglake.RoleOwner); err != nil {
			return err
		}
	}
	ctx := engine.NewContext("admin@corp", "seed")
	bl := vector.NewBuilder(adsSchema)
	for i := 0; i < 50; i++ {
		bl.Append(biglake.IntValue(int64(i)), biglake.IntValue(int64(i%20)))
	}
	if err := gcp.Manager.Insert(ctx, "local_dataset.ads_impressions", bl.Build()); err != nil {
		return err
	}
	bo := vector.NewBuilder(ordersSchema())
	for i := 0; i < 200; i++ {
		bo.Append(biglake.IntValue(int64(i)), biglake.IntValue(int64(i%20)), biglake.FloatValue(float64(i)*1.5))
	}
	return aws.Manager.Insert(ctx, "aws_dataset.customer_orders", bo.Build())
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
