package biglake

// Integration tests for the production use-case patterns of §6:
// seamless analytics on a single data copy, cross-cloud query and
// analysis, and multi-modal data analysis with SQL simplicity.

import (
	"fmt"
	"strings"
	"testing"

	"biglake/internal/catalog"
	"biglake/internal/colfmt"
	"biglake/internal/engine"
	"biglake/internal/mlmodel"
	"biglake/internal/omni"
	"biglake/internal/sim"
	"biglake/internal/vector"
)

// TestUseCaseSingleDataCopy: "customers store a single copy of data
// ... while still running performant and secure analytics using
// BigQuery and open-source engines like Spark" (§6).
func TestUseCaseSingleDataCopy(t *testing.T) {
	lh := newLakehouse(t)
	lh.CreateDataset("lake")
	lh.CreateBucket("single-copy")
	schema := NewSchema(
		Field{Name: "id", Type: Int64},
		Field{Name: "pii", Type: String},
		Field{Name: "v", Type: Int64},
	)
	bl := vector.NewBuilder(schema)
	for i := 0; i < 500; i++ {
		bl.Append(IntValue(int64(i)), StringValue(fmt.Sprintf("person-%d", i)), IntValue(int64(i%9)))
	}
	file, err := colfmt.WriteFile(bl.Build(), colfmt.WriterOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := lh.Upload("single-copy", "t/p.blk", file, ""); err != nil {
		t.Fatal(err)
	}
	if _, err := lh.CreateConnection("sc", "single-copy"); err != nil {
		t.Fatal(err)
	}
	if err := lh.CreateBigLakeTable(admin, BigLakeTableSpec{
		Dataset: "lake", Name: "t", Schema: schema,
		Bucket: "single-copy", Prefix: "t/", Connection: "sc", MetadataCaching: true,
	}); err != nil {
		t.Fatal(err)
	}
	lh.Auth.GrantTable(admin, "lake.t", analyst, RoleViewer)
	lh.Auth.SetColumnPolicy(admin, "lake.t", ColumnPolicy{
		Column: "pii", Allowed: map[Principal]bool{admin: true}, Mask: vector.MaskHash,
	})

	// BigQuery SQL path.
	sqlRes, err := lh.Query(analyst, "SELECT COUNT(*) AS n FROM lake.t WHERE v = 3")
	if err != nil {
		t.Fatal(err)
	}
	// External-engine path over the same single copy.
	sess := NewSparkleSession(lh, SparkleOptions{UseSessionStats: true})
	spark, err := sess.ReadBigLake(lh.StorageAPI, analyst, "lake.t").
		Filter(Predicate{Column: "v", Op: vector.EQ, Value: IntValue(3)}).
		Collect()
	if err != nil {
		t.Fatal(err)
	}
	if int(sqlRes.Batch.Column("n").Value(0).AsInt()) != spark.N {
		t.Fatalf("engines disagree over the single copy: sql=%v spark=%d", sqlRes.Batch.Row(0), spark.N)
	}
	// Both paths are governed: the external engine sees masked pii.
	if !strings.HasPrefix(spark.Column("pii").Value(0).S, "hash_") {
		t.Fatal("external engine saw raw pii")
	}
	// There is exactly one physical copy of the data.
	if got := lh.Store.ObjectCount("single-copy", "t/"); got != 1 {
		t.Fatalf("data files = %d, want 1 (a single copy)", got)
	}
}

// TestUseCaseCrossCloudAnalysis: "BigQuery Omni now empowers customers
// to query data across clouds seamlessly using cross-cloud joins and
// maintains fine-grained access control" (§6).
func TestUseCaseCrossCloudAnalysis(t *testing.T) {
	dep := NewMultiCloud("admin@corp")
	gcp, err := dep.AddRegion("gcp-us", "gcp")
	if err != nil {
		t.Fatal(err)
	}
	aws, err := dep.AddRegion("aws-us-east-1", "aws")
	if err != nil {
		t.Fatal(err)
	}
	schema := NewSchema(Field{Name: "k", Type: Int64}, Field{Name: "v", Type: Int64})
	for _, r := range []struct {
		region  *Region
		dataset string
	}{{gcp, "gds"}, {aws, "ads"}} {
		if err := dep.Catalog.CreateDataset(catalog.Dataset{Name: r.dataset, Region: r.region.Name, Cloud: r.region.Cloud}); err != nil {
			t.Fatal(err)
		}
		if err := dep.Catalog.CreateTable(catalog.Table{
			Dataset: r.dataset, Name: "t", Type: catalog.Managed, Schema: schema,
			Cloud: r.region.Cloud, Bucket: r.region.Manager.DefaultBucket,
			Prefix: "blmt/t/", Connection: "omni-" + r.region.Name,
		}); err != nil {
			t.Fatal(err)
		}
		dep.Auth.GrantTable(omni.ControlPrincipal, r.dataset+".t", "analyst@corp", RoleViewer)
		dep.Auth.GrantTable(omni.ControlPrincipal, r.dataset+".t", "admin@corp", RoleOwner)
		bl := vector.NewBuilder(schema)
		for i := 0; i < 40; i++ {
			bl.Append(IntValue(int64(i%10)), IntValue(int64(i)))
		}
		if err := r.region.Manager.Insert(engine.NewContext("admin@corp", "seed"), r.dataset+".t", bl.Build()); err != nil {
			t.Fatal(err)
		}
	}
	// Fine-grained control holds across clouds: a row policy on the
	// remote table governs the cross-cloud join's inputs.
	dep.Auth.AddRowPolicy(omni.ControlPrincipal, "ads.t", RowPolicy{
		Name: "small", Grantees: map[Principal]bool{"analyst@corp": true},
		Filter: []Predicate{{Column: "v", Op: vector.LT, Value: IntValue(10)}},
	})
	res, err := dep.Submit("analyst@corp", `SELECT g.v, a.v
		FROM gds.t AS g JOIN ads.t AS a ON g.k = a.k`)
	if err != nil {
		t.Fatal(err)
	}
	// Remote side restricted to v<10 (10 rows, keys 0..9), local side
	// has 4 rows per key: 40 joined rows.
	if res.Batch.N != 40 {
		t.Fatalf("governed cross-cloud join rows = %d, want 40", res.Batch.N)
	}
	for i := 0; i < res.Batch.N; i++ {
		if res.Batch.Row(i)[1].AsInt() >= 10 {
			t.Fatal("row policy leaked across clouds")
		}
	}
}

// TestUseCaseMultiModalAnalysis: "customers can now analyze
// unstructured data within BigQuery using the same governance
// framework employed for structured data" (§6) — metadata extraction,
// training-corpus definition, and granular security over objects.
func TestUseCaseMultiModalAnalysis(t *testing.T) {
	lh := newLakehouse(t)
	lh.CreateDataset("ml")
	lh.CreateBucket("corpus")
	rng := sim.NewRNG(3)
	classes := []string{"cat", "dog"}
	for i := 0; i < 20; i++ {
		img := mlmodel.RandomImage(rng, 64, 64, i%2, 2)
		enc, _ := mlmodel.EncodeImage(img)
		key := fmt.Sprintf("imgs/%s-%03d.jpg", classes[i%2], i)
		if err := lh.Upload("corpus", key, enc, "image/jpeg"); err != nil {
			t.Fatal(err)
		}
	}
	if err := lh.CreateObjectTable(admin, "ml", "images", "corpus", "imgs/"); err != nil {
		t.Fatal(err)
	}

	// Metadata extraction: inference labels feed structured analysis.
	lh.Inference.RegisterModel(&Model{
		Name:       "ml.classifier",
		Classifier: NewClassifier("c", 16, 16, classes, 5),
	})
	res, err := lh.Query(admin, `SELECT predictions, COUNT(*) AS n FROM
		ML.PREDICT(MODEL ml.classifier, (SELECT uri, ML.DECODE_IMAGE(uri) AS image FROM ml.images))
		GROUP BY predictions ORDER BY predictions`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Batch.N != 2 {
		t.Fatalf("label groups = %d", res.Batch.N)
	}

	// Training-corpus definition: sample under governance.
	lh.Auth.GrantTable(admin, "ml.images", analyst, RoleViewer)
	lh.Auth.AddRowPolicy(admin, "ml.images", RowPolicy{
		Name: "recent", Grantees: map[Principal]bool{analyst: true},
		Filter: []Predicate{{Column: "size", Op: vector.GT, Value: IntValue(0)}},
	})
	visible, err := lh.Query(analyst, "SELECT uri FROM ml.images")
	if err != nil {
		t.Fatal(err)
	}
	sample, err := SampleObjects(visible.Batch, 0.5, 9)
	if err != nil {
		t.Fatal(err)
	}
	if sample.N == 0 || sample.N >= visible.Batch.N {
		t.Fatalf("sample = %d of %d", sample.N, visible.Batch.N)
	}

	// Granular security: a stranger cannot enumerate the corpus.
	if _, err := lh.Query("stranger@evil", "SELECT uri FROM ml.images"); err == nil {
		t.Fatal("stranger enumerated governed objects")
	}
}
