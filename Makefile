# Developer entry points. `make ci` is the full gate; the chaos soak
# runs under the race detector because that is where fan-out bugs live,
# and the differential fuzz soak cross-checks the engine against the
# row-at-a-time oracle across the full acceleration matrix.
#
# Replaying a fuzz divergence: every report prints its seed. Re-run
# that exact world with
#
#	go test ./internal/oracle -run TestDifferential -seed=<n> -v
#
# (add -trials/-queries to match a longer soak). To watch the harness
# catch a planted engine bug — a flipped pruning comparison — run
#
#	make fuzz-bug
#
# which builds with `-tags oraclebug` and must FAIL the differential
# test while PASSING TestForcedBugCaught with a minimized report.

GO ?= go

.PHONY: all vet build test race chaos fuzz fuzz-bug crash txn serve integrity bench bench-smoke obs gclean systables ci

all: build

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# The chaos soak: TPC-H under injected object-store faults, race-clean.
chaos:
	$(GO) test -race -run 'TestChaos' -v ./internal/resilience/

# The differential soak: ≥200 generated queries through every
# {cache, DPP, prune granularity, faults} × {pre/post compaction}
# cell, engine vs oracle, bit-identical or the build fails.
fuzz:
	$(GO) test -run 'TestDifferential|TestIcebergExportEquality' -v ./internal/oracle/

# Demonstrate the harness catches a planted pruning bug (not in ci:
# the tagged build is intentionally broken).
fuzz-bug:
	$(GO) test -tags oraclebug -run 'TestForcedBugCaught' -v ./internal/oracle/

# The crash-point sweep: kill the process at every labeled step of the
# flush/batch-commit/compaction/Iceberg-export protocols, recover from
# the journal, and diff against the oracle. Prints the seed and a
# replay command on failure; re-run one world with
#
#	go test ./internal/oracle -run TestCrashSweep -seed=<n> -v
crash:
	$(GO) test -race -run 'TestCrashSweep' -v ./internal/oracle/

# Observability gate: registry/span tests under the race detector,
# the EXPLAIN ANALYZE goldens, the zero-alloc disabled-span benchmark,
# and the obslint sweep that keeps new counters in the registry.
obs:
	$(GO) vet ./internal/obs/ ./internal/engine/
	$(GO) test -race ./internal/obs/
	$(GO) test -race -run 'TestExplainAnalyze|TestQuerySpanTree|TestChromeTrace|TestEngineRegistryCounters' ./internal/engine/
	$(GO) test -run '^$$' -bench BenchmarkSpanDisabled -benchtime 100000x ./internal/obs/
	./scripts/obslint.sh

# The transaction gate: the interactive-transaction package under the
# race detector, plus the interleaved-schedule serializability oracle
# and its crash sweep (kill the process at every labeled step of the
# multi-table commit protocol, recover, re-drive the schedule, and
# require a serializable, orphan-free state). Replay one world with
#
#	go test ./internal/oracle -run TestTxnCrashSweep -seed=<n> -v
txn:
	$(GO) test -race ./internal/txn/
	$(GO) test -race -run 'TestTxn' -v ./internal/oracle/

# The query-service gate: admission control, weighted fair queuing,
# cancellation, and the seeded load harness under the race detector,
# then a short deterministic soak (E18 overload shape + same-seed
# bit-identical replay) and the serve-path differential diff.
serve:
	$(GO) test -race ./internal/serve/...
	$(GO) test -race -run 'TestE18' -v ./internal/exp/
	$(GO) test -run 'TestDifferentialServe' ./internal/oracle/

# The integrity gate: checksums end to end under injected silent
# corruption. Format-level bit-flip detection, WAL torn-write recovery,
# the scan-cache poisoning guard and quarantine containment, the
# budgeted scrubber, the corruption-injection determinism suite, the
# oracle corruption sweep (zero silent wrong answers), and the E19
# detect -> contain -> repair experiment.
integrity:
	$(GO) test -run 'TestRoundTrip|TestVerify' ./internal/colfmt/
	$(GO) test -race -run 'TestRecover' ./internal/wal/
	$(GO) test -race -run 'TestScanCache|TestQuarantined' ./internal/engine/
	$(GO) test -race ./internal/scrub/
	$(GO) test -run 'TestCorruption' ./internal/objstore/
	$(GO) test -run 'TestQuarantineLifecycle' ./internal/bigmeta/
	$(GO) test -run 'TestIntegrity' -v ./internal/oracle/
	$(GO) test -race -run 'TestE19' -v ./internal/exp/

# The GC-lean gate: arena-kernel parity with the eager path (bit-exact
# masks/batches including late-materialized dictionaries), per-kernel
# allocs/op budgets (a kernel that starts allocating again fails the
# build), arena lifetime safety under the race detector (query results
# must survive arena recycling; serve cursors copy out), and the E20
# experiment smoke: alloc/GC reduction, mixed-traffic QPS, variance
# cells. Full-scale snapshots are regenerated with
#
#	go run ./cmd/benchlake -json e15 e20
#
# and committed as BENCH_E15.json / BENCH_E20.json; a later plain
# `benchlake e20` fails if any variance cell regresses beyond the
# noise band recorded in the committed baseline.
gclean:
	$(GO) test -run 'TestGCLean' ./internal/vector/
	$(GO) test -race -run 'TestGCLean|TestArena' ./internal/engine/
	$(GO) test -race ./internal/arena/
	$(GO) test -race -run 'TestCursorSurvivesArenaRecycle' ./internal/serve/
	$(GO) test -run 'TestE20' -v ./internal/exp/

# The queryable-telemetry gate: the systables rings/trackers and the
# obs registry under the race detector, the direct-engine and
# serve-session system.* SQL paths (including the self-observation
# regression), the E21 overhead gate (recording on vs off must take
# bit-identical trajectories), and the obslint sweep that keeps every
# registered metric name documented in DESIGN.md.
systables:
	$(GO) test -race ./internal/systables/
	$(GO) test -race -run 'TestHistogramObserveConcurrent|TestSnapshotUnderConcurrentWriters' ./internal/obs/
	$(GO) test -run 'TestSystem' ./internal/engine/
	$(GO) test -race -run 'TestSelfObservation|TestServeShedRecorded|TestServeSessionsAndSLOTables|TestServeRecordsOnce' ./internal/serve/
	$(GO) test -run 'TestE21|TestRunTop' -v ./internal/exp/
	./scripts/obslint.sh

bench:
	$(GO) test -bench . -benchtime 1x -run '^$$' .

# Tiny-scale end-to-end run of the CPU-bound experiments (vectorized
# reader + execution kernels), emitting BENCH_E2.json / BENCH_E15.json
# for trend tracking. Timing thresholds are NOT enforced here — this
# only guards that the measured paths run end to end.
bench-smoke:
	$(GO) run ./cmd/benchlake -json e2 e15

ci: vet build test race obs chaos fuzz crash txn serve integrity gclean systables bench-smoke
