# Developer entry points. `make ci` is the full gate; the chaos soak
# runs under the race detector because that is where fan-out bugs live.

GO ?= go

.PHONY: all vet build test race chaos bench ci

all: build

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# The chaos soak: TPC-H under injected object-store faults, race-clean.
chaos:
	$(GO) test -race -run 'TestChaos' -v ./internal/resilience/

bench:
	$(GO) test -bench . -benchtime 1x -run '^$$' .

ci: vet build test race chaos
