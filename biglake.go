// Package biglake is the public API of this repository: a from-scratch
// Go reproduction of "BigLake: BigQuery's Evolution toward a
// Multi-Cloud Lakehouse" (SIGMOD 2024). It exposes:
//
//   - Lakehouse: a single-region deployment with BigLake tables over
//     open columnar files (delegated access, fine-grained governance,
//     Big Metadata acceleration), BigLake Managed Tables (DML,
//     streaming, Iceberg export), Object tables over unstructured
//     data, BQML inference (in-engine and remote), and the Storage
//     Read/Write APIs for external engines;
//
//   - Deployment (via NewMultiCloud): an Omni-style multi-cloud
//     installation with a GCP control plane, foreign-cloud data
//     planes, cross-cloud queries and cross-cloud materialized views.
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for the
// paper-versus-measured results.
package biglake

import (
	"biglake/internal/bigmeta"
	"biglake/internal/catalog"
	"biglake/internal/colfmt"
	"biglake/internal/core"
	"biglake/internal/engine"
	"biglake/internal/inference"
	"biglake/internal/mlmodel"
	"biglake/internal/objstore"
	"biglake/internal/objtable"
	"biglake/internal/omni"
	"biglake/internal/security"
	"biglake/internal/sim"
	"biglake/internal/sparkle"
	"biglake/internal/storageapi"
	"biglake/internal/vector"
)

// Core deployment types.
type (
	// Lakehouse is a single-region BigLake deployment.
	Lakehouse = core.Lakehouse
	// Options configures New.
	Options = core.Options
	// BigLakeTableSpec describes a BigLake table over open files.
	BigLakeTableSpec = core.BigLakeTableSpec
	// Deployment is an Omni multi-cloud installation.
	Deployment = omni.Deployment
	// Region is one Omni data plane.
	Region = omni.Region
	// CCMV is a cross-cloud materialized view.
	CCMV = omni.CCMV
)

// Identity and governance types.
type (
	// Principal identifies a user or service account.
	Principal = security.Principal
	// Connection is a delegated-access connection object.
	Connection = security.Connection
	// RowPolicy is a row-level access policy.
	RowPolicy = security.RowPolicy
	// ColumnPolicy protects or masks a column.
	ColumnPolicy = security.ColumnPolicy
	// Role is a coarse table role.
	Role = security.Role
)

// Governance role levels.
const (
	RoleNone   = security.RoleNone
	RoleViewer = security.RoleViewer
	RoleEditor = security.RoleEditor
	RoleOwner  = security.RoleOwner
)

// Data types.
type (
	// Schema describes a table's columns.
	Schema = vector.Schema
	// Field is one schema column.
	Field = vector.Field
	// Value is one SQL value.
	Value = vector.Value
	// Batch is a columnar result set.
	Batch = vector.Batch
	// Predicate is a pushdown filter.
	Predicate = colfmt.Predicate
	// Result is a completed query.
	Result = engine.Result
	// Table is a catalog table definition.
	Table = catalog.Table
	// FileEntry is cached physical file metadata.
	FileEntry = bigmeta.FileEntry
)

// Column type constants.
const (
	Int64     = vector.Int64
	Float64   = vector.Float64
	Bool      = vector.Bool
	String    = vector.String
	Bytes     = vector.Bytes
	Timestamp = vector.Timestamp
)

// Comparison operators for predicates.
const (
	EQ = vector.EQ
	NE = vector.NE
	LT = vector.LT
	LE = vector.LE
	GT = vector.GT
	GE = vector.GE
)

// Masking transforms for column policies.
const (
	MaskNullify  = vector.MaskNullify
	MaskHash     = vector.MaskHash
	MaskDefault  = vector.MaskDefault
	MaskLastFour = vector.MaskLastFour
)

// Storage API types for external engines.
type (
	// ReadSessionRequest parameterizes CreateReadSession.
	ReadSessionRequest = storageapi.ReadSessionRequest
	// ReadSession is the handle streams are read from.
	ReadSession = storageapi.ReadSession
	// AggregateRequest asks the Read API for a server-side partial
	// aggregate.
	AggregateRequest = storageapi.AggregateRequest
	// StorageServer is the Storage Read/Write API frontend.
	StorageServer = storageapi.Server
	// SparkleSession is the external-engine driver session.
	SparkleSession = sparkle.Session
	// SparkleOptions tunes the external engine's planner.
	SparkleOptions = sparkle.Options
)

// Inference types.
type (
	// Model is a registered BQML model.
	Model = inference.Model
	// Classifier is the local image classifier.
	Classifier = mlmodel.Classifier
	// DocParser is the document-entity extractor.
	DocParser = mlmodel.DocParser
	// ModelServer hosts remote models over HTTP.
	ModelServer = inference.ModelServer
)

// Credential is an object-store identity.
type Credential = objstore.Credential

// New creates a single-region lakehouse deployment.
func New(opts Options) (*Lakehouse, error) { return core.New(opts) }

// NewMultiCloud creates an Omni-style deployment; add regions with
// Deployment.AddRegion (the first GCP region becomes the control
// plane's primary).
func NewMultiCloud(admins ...Principal) *Deployment {
	return omni.NewDeployment(sim.NewClock(), admins...)
}

// NewSparkleSession opens an external-engine session against a
// lakehouse (the Spark/Trino role in the paper's figures).
func NewSparkleSession(lh *Lakehouse, opts SparkleOptions) *SparkleSession {
	return sparkle.NewSession(lh.Clock, opts)
}

// NewSchema builds a schema from fields.
func NewSchema(fields ...Field) Schema { return vector.NewSchema(fields...) }

// Convenience value constructors.
var (
	IntValue    = vector.IntValue
	FloatValue  = vector.FloatValue
	BoolValue   = vector.BoolValue
	StringValue = vector.StringValue
)

// NewClassifier builds a deterministic image classifier model.
func NewClassifier(name string, inputSide, hidden int, classes []string, seed uint64) *Classifier {
	return mlmodel.NewClassifier(name, inputSide, hidden, classes, seed)
}

// SampleObjects draws a deterministic random sample from an
// object-table result (§4.1's two-line 1% sample).
func SampleObjects(b *Batch, fraction float64, seed uint64) (*Batch, error) {
	return objtable.Sample(b, fraction, seed)
}
