package biglake_test

import (
	"fmt"
	"log"

	"biglake"
)

// ExampleLakehouse_Query creates a managed table, loads it with DML,
// and runs an aggregate — the minimal end-to-end path.
func ExampleLakehouse_Query() {
	lh, err := biglake.New(biglake.Options{Admin: "admin@corp"})
	if err != nil {
		log.Fatal(err)
	}
	if err := lh.CreateDataset("shop"); err != nil {
		log.Fatal(err)
	}
	schema := biglake.NewSchema(
		biglake.Field{Name: "sku", Type: biglake.String},
		biglake.Field{Name: "qty", Type: biglake.Int64},
	)
	if err := lh.CreateManagedTable("admin@corp", "shop", "sales", schema, "bq-managed"); err != nil {
		log.Fatal(err)
	}
	if _, err := lh.Query("admin@corp",
		"INSERT INTO shop.sales VALUES ('apple', 3), ('pear', 2), ('apple', 4)"); err != nil {
		log.Fatal(err)
	}
	res, err := lh.Query("admin@corp",
		"SELECT sku, SUM(qty) AS total FROM shop.sales GROUP BY sku ORDER BY total DESC")
	if err != nil {
		log.Fatal(err)
	}
	for i := 0; i < res.Batch.N; i++ {
		row := res.Batch.Row(i)
		fmt.Printf("%s=%d\n", row[0].S, row[1].AsInt())
	}
	// Output:
	// apple=7
	// pear=2
}

// ExampleLakehouse_governance shows row-level security and data
// masking enforced on a query.
func ExampleLakehouse_governance() {
	lh, _ := biglake.New(biglake.Options{Admin: "admin@corp"})
	lh.CreateDataset("hr")
	schema := biglake.NewSchema(
		biglake.Field{Name: "team", Type: biglake.String},
		biglake.Field{Name: "name", Type: biglake.String},
	)
	lh.CreateManagedTable("admin@corp", "hr", "people", schema, "bq-managed")
	lh.Query("admin@corp", "INSERT INTO hr.people VALUES ('eng', 'ann'), ('sales', 'bob')")

	analyst := biglake.Principal("analyst@corp")
	lh.Auth.GrantTable("admin@corp", "hr.people", analyst, biglake.RoleViewer)
	lh.Auth.AddRowPolicy("admin@corp", "hr.people", biglake.RowPolicy{
		Name:     "eng_only",
		Grantees: map[biglake.Principal]bool{analyst: true},
		Filter: []biglake.Predicate{{
			Column: "team", Op: biglake.EQ, Value: biglake.StringValue("eng"),
		}},
	})
	res, _ := lh.Query(analyst, "SELECT team, name FROM hr.people")
	fmt.Println(res.Batch.N, res.Batch.Row(0)[1].S)
	// Output: 1 ann
}

// ExampleNewMultiCloud deploys an Omni-style control plane with two
// data planes.
func ExampleNewMultiCloud() {
	dep := biglake.NewMultiCloud("admin@corp")
	dep.AddRegion("gcp-us", "gcp")
	dep.AddRegion("aws-us-east-1", "aws")
	fmt.Println(dep.Primary)
	// Output: gcp-us
}
