package inference

import (
	"bytes"
	"encoding/base64"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"sync"
	"time"

	"biglake/internal/engine"
	"biglake/internal/mlmodel"
	"biglake/internal/sim"
	"biglake/internal/vector"
)

// RemoteRTT is the per-request network overhead of calling an external
// model service from a Dremel worker (§4.2: "there is an extra
// communication cost to ship data back and forth").
const RemoteRTT = 8 * time.Millisecond

// RemoteServiceTime is the simulated per-batch serving time of the
// external endpoint.
const RemoteServiceTime = 20 * time.Millisecond

// ModelServer hosts models behind an HTTP endpoint — the Vertex AI
// serving platform stand-in. It is a real net/http server; simulated
// time models its bounded autoscaling agility: requests reserve
// serving slots on a virtual timeline with MaxConcurrent parallel
// slots, so a burst beyond capacity queues (§4.2: "external AI
// services tend to be more limited in terms of auto scaling agility").
type ModelServer struct {
	URL string

	clock *sim.Clock
	ln    net.Listener
	srv   *http.Server

	mu       sync.Mutex
	models   map[string]*mlmodel.Classifier
	parsers  map[string]*mlmodel.DocParser
	lanes    []time.Duration // virtual per-lane next-free times
	Requests int64
}

// MaxConcurrent is the endpoint's fixed serving capacity.
const MaxConcurrent = 4

// StartModelServer launches a model server on a loopback port.
func StartModelServer(clock *sim.Clock) (*ModelServer, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	ms := &ModelServer{
		URL:     "http://" + ln.Addr().String(),
		clock:   clock,
		ln:      ln,
		models:  make(map[string]*mlmodel.Classifier),
		parsers: make(map[string]*mlmodel.DocParser),
		lanes:   make([]time.Duration, MaxConcurrent),
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/predict/", ms.handlePredict)
	ms.srv = &http.Server{Handler: mux}
	go ms.srv.Serve(ln) //nolint:errcheck // closed on shutdown
	return ms, nil
}

// Close shuts the server down.
func (ms *ModelServer) Close() error { return ms.srv.Close() }

// Host registers a classifier on the endpoint.
func (ms *ModelServer) Host(c *mlmodel.Classifier) {
	ms.mu.Lock()
	defer ms.mu.Unlock()
	ms.models[c.Name] = c
}

// reserveSlot books a virtual serving slot and returns the queueing
// delay before service starts.
func (ms *ModelServer) reserveSlot(now time.Duration) time.Duration {
	ms.mu.Lock()
	defer ms.mu.Unlock()
	best := 0
	for i, free := range ms.lanes {
		if free < ms.lanes[best] {
			best = i
		}
	}
	start := now
	if ms.lanes[best] > start {
		start = ms.lanes[best]
	}
	ms.lanes[best] = start + RemoteServiceTime
	return start - now
}

type predictRequest struct {
	Instances []string `json:"instances"` // base64 tensors
}

type predictResponse struct {
	Predictions []string    `json:"predictions"`
	Scores      [][]float64 `json:"scores"`
	Error       string      `json:"error,omitempty"`
}

func (ms *ModelServer) handlePredict(w http.ResponseWriter, r *http.Request) {
	name := r.URL.Path[len("/v1/predict/"):]
	ms.mu.Lock()
	model := ms.models[name]
	ms.Requests++
	ms.mu.Unlock()
	enc := json.NewEncoder(w)
	if model == nil {
		w.WriteHeader(http.StatusNotFound)
		enc.Encode(predictResponse{Error: fmt.Sprintf("no model %q", name)}) //nolint:errcheck
		return
	}
	var req predictRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		w.WriteHeader(http.StatusBadRequest)
		enc.Encode(predictResponse{Error: err.Error()}) //nolint:errcheck
		return
	}
	resp := predictResponse{}
	for _, inst := range req.Instances {
		raw, err := base64.StdEncoding.DecodeString(inst)
		if err != nil {
			w.WriteHeader(http.StatusBadRequest)
			enc.Encode(predictResponse{Error: err.Error()}) //nolint:errcheck
			return
		}
		tensor, err := mlmodel.DecodeTensor(raw)
		if err != nil {
			w.WriteHeader(http.StatusBadRequest)
			enc.Encode(predictResponse{Error: err.Error()}) //nolint:errcheck
			return
		}
		label, scores, err := model.Predict(tensor)
		if err != nil {
			w.WriteHeader(http.StatusBadRequest)
			enc.Encode(predictResponse{Error: err.Error()}) //nolint:errcheck
			return
		}
		resp.Predictions = append(resp.Predictions, label)
		resp.Scores = append(resp.Scores, scores)
	}
	enc.Encode(resp) //nolint:errcheck
}

// QueueDelayFor exposes slot booking for the runtime's latency
// accounting (the caller charges its own track).
func (ms *ModelServer) QueueDelayFor(now time.Duration) time.Duration {
	return ms.reserveSlot(now)
}

// remotePredict calls the model's HTTP endpoint with the batch's
// tensors as raw JSON and parses the predictions (§4.2.2
// customer-owned models on Vertex AI).
func (rt *Runtime) remotePredict(ctx *engine.QueryContext, model *Model, input *vector.Batch) (*vector.Batch, error) {
	ti, err := tensorColumn(input)
	if err != nil {
		return nil, err
	}
	tensors := input.Cols[ti].Decode()
	req := predictRequest{}
	var payloadBytes int64
	for i := 0; i < tensors.Len; i++ {
		raw := []byte(tensors.Strs[i])
		payloadBytes += int64(len(raw))
		req.Instances = append(req.Instances, base64.StdEncoding.EncodeToString(raw))
	}
	body, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}

	// Latency: RTT + payload streaming + capacity-bound queueing +
	// service time.
	delay := RemoteRTT + sim.StreamTime(int64(len(body)), sim.GCP.EgressPerMB)
	if model.queue != nil {
		delay += model.queue(rt.Clock.Now() + delay)
	}
	delay += RemoteServiceTime
	rt.Clock.Advance(delay)

	httpResp, err := http.Post(model.Endpoint+"/v1/predict/"+model.Name, "application/json", bytes.NewReader(body))
	if err != nil {
		return nil, fmt.Errorf("inference: remote call: %w", err)
	}
	defer httpResp.Body.Close()
	var resp predictResponse
	if err := json.NewDecoder(httpResp.Body).Decode(&resp); err != nil {
		return nil, fmt.Errorf("inference: bad remote response: %w", err)
	}
	if resp.Error != "" {
		return nil, fmt.Errorf("inference: remote model error: %s", resp.Error)
	}
	if len(resp.Predictions) != tensors.Len {
		return nil, fmt.Errorf("inference: remote returned %d predictions for %d inputs", len(resp.Predictions), tensors.Len)
	}
	rt.Meter.Add("remote_inferences", int64(tensors.Len))
	rt.Meter.Add("remote_payload_bytes", payloadBytes)

	fields := append([]vector.Field{}, input.Schema.Fields...)
	fields = append(fields, vector.Field{Name: "predictions", Type: vector.String})
	cols := append([]*vector.Column{}, input.Cols...)
	cols = append(cols, vector.NewStringColumn(resp.Predictions))
	return vector.NewBatch(vector.Schema{Fields: fields}, cols)
}

// StartServer launches a model-serving endpoint on the runtime's
// clock (the Vertex AI stand-in).
func (rt *Runtime) StartServer() (*ModelServer, error) {
	return StartModelServer(rt.Clock)
}

// ConnectRemote wires a registered remote model to a live server,
// including its queueing behaviour.
func (rt *Runtime) ConnectRemote(name string, server *ModelServer) error {
	m, err := rt.Model(name)
	if err != nil {
		return err
	}
	m.Remote = true
	m.Endpoint = server.URL
	m.queue = server.QueueDelayFor
	return nil
}
