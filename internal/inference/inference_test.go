package inference

import (
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"biglake/internal/bigmeta"
	"biglake/internal/catalog"
	"biglake/internal/engine"
	"biglake/internal/mlmodel"
	"biglake/internal/objstore"
	"biglake/internal/security"
	"biglake/internal/sim"
	"biglake/internal/vector"
)

const adminP = security.Principal("admin@corp")

var classes = []string{"dark", "dim", "bright", "blinding"}

type env struct {
	clock *sim.Clock
	store *objstore.Store
	eng   *engine.Engine
	rt    *Runtime
	cred  objstore.Credential
}

func newEnv(t *testing.T) *env {
	t.Helper()
	clock := sim.NewClock()
	store := objstore.New(sim.GCP, clock, nil)
	cred := objstore.Credential{Principal: "sa@corp"}
	if err := store.CreateBucket(cred, "media"); err != nil {
		t.Fatal(err)
	}
	cat := catalog.New()
	cat.CreateDataset(catalog.Dataset{Name: "ds", Region: "gcp-us", Cloud: "gcp"})
	auth := security.NewAuthority("secret", adminP)
	auth.RegisterConnection(adminP, security.Connection{Name: "conn", ServiceAccount: cred, Cloud: "gcp"})
	stores := map[string]*objstore.Store{"gcp": store}
	meta := bigmeta.NewCache(clock, nil)
	log := bigmeta.NewLog(clock, nil)
	eng := engine.New(cat, auth, meta, log, clock, stores, engine.DefaultOptions())
	eng.ManagedCred = cred
	rt := NewRuntime(auth, stores, clock, cred)
	rt.Attach(eng)
	// Object table over the media bucket.
	if err := cat.CreateTable(catalog.Table{
		Dataset: "ds", Name: "files", Type: catalog.Object,
		Cloud: "gcp", Bucket: "media", Prefix: "imgs/", Connection: "conn", MetadataCaching: true,
	}); err != nil {
		t.Fatal(err)
	}
	return &env{clock: clock, store: store, eng: eng, rt: rt, cred: cred}
}

// putImages uploads n images per class.
func (ev *env) putImages(t *testing.T, perClass int) {
	t.Helper()
	rng := sim.NewRNG(77)
	idx := 0
	for class := range classes {
		for i := 0; i < perClass; i++ {
			img := mlmodel.RandomImage(rng, 128, 128, class, len(classes))
			enc, err := mlmodel.EncodeImage(img)
			if err != nil {
				t.Fatal(err)
			}
			key := fmt.Sprintf("imgs/c%d-%03d.jpg", class, idx)
			if _, err := ev.store.Put(ev.cred, "media", key, enc, "image/jpeg"); err != nil {
				t.Fatal(err)
			}
			idx++
		}
	}
}

func (ev *env) registerClassifier() *mlmodel.Classifier {
	model := mlmodel.NewClassifier("resnet50", TensorSide, 16, classes, 42)
	ev.rt.RegisterModel(&Model{Name: "ds.resnet50", Classifier: model})
	return model
}

func (ev *env) sql(t *testing.T, q string) *engine.Result {
	t.Helper()
	res, err := ev.eng.Query(engine.NewContext(adminP, "q"), q)
	if err != nil {
		t.Fatalf("Query(%q): %v", q, err)
	}
	return res
}

func TestListing1EndToEnd(t *testing.T) {
	// The paper's Listing 1: in-engine image inference over an object
	// table.
	ev := newEnv(t)
	ev.putImages(t, 3)
	ev.registerClassifier()
	res := ev.sql(t, `SELECT uri, predictions FROM
		ML.PREDICT(
			MODEL ds.resnet50,
			(
				SELECT uri, ML.DECODE_IMAGE(uri) AS image
				FROM ds.files
				WHERE content_type = 'image/jpeg'
			)
		)`)
	if res.Batch.N != 12 {
		t.Fatalf("rows = %d", res.Batch.N)
	}
	correct := 0
	for i := 0; i < res.Batch.N; i++ {
		row := res.Batch.Row(i)
		uri, pred := row[0].S, row[1].S
		// Key encodes the true class: imgs/c<k>-...
		ci := strings.Index(uri, "imgs/c")
		want := classes[uri[ci+6]-'0']
		if pred == want {
			correct++
		}
	}
	if correct < 10 {
		t.Fatalf("correct predictions %d/12", correct)
	}
}

func TestModelTooBigForInEngine(t *testing.T) {
	ev := newEnv(t)
	ev.putImages(t, 1)
	big := mlmodel.NewClassifier("big", TensorSide, 16, classes, 1)
	big.SizeBytes = MaxModelBytes + 1
	ev.rt.RegisterModel(&Model{Name: "ds.big", Classifier: big})
	_, err := ev.eng.Query(engine.NewContext(adminP, "q"),
		`SELECT predictions FROM ML.PREDICT(MODEL ds.big, (SELECT ML.DECODE_IMAGE(uri) AS image FROM ds.files))`)
	if !errors.Is(err, ErrModelTooBig) {
		t.Fatalf("err = %v", err)
	}
}

func TestUnknownModel(t *testing.T) {
	ev := newEnv(t)
	ev.putImages(t, 1)
	_, err := ev.eng.Query(engine.NewContext(adminP, "q"),
		`SELECT * FROM ML.PREDICT(MODEL ds.ghost, (SELECT ML.DECODE_IMAGE(uri) AS image FROM ds.files))`)
	if !errors.Is(err, ErrNoModel) {
		t.Fatalf("err = %v", err)
	}
}

func TestPredictRequiresTensorColumn(t *testing.T) {
	ev := newEnv(t)
	ev.putImages(t, 1)
	ev.registerClassifier()
	_, err := ev.eng.Query(engine.NewContext(adminP, "q"),
		`SELECT * FROM ML.PREDICT(MODEL ds.resnet50, (SELECT uri FROM ds.files))`)
	if !errors.Is(err, ErrNoTensorCol) {
		t.Fatalf("err = %v", err)
	}
}

func TestDistributedSplitReducesPeakMemory(t *testing.T) {
	// E7: split preprocess/infer keeps raw images and the model on
	// different workers.
	ev := newEnv(t)
	ev.putImages(t, 4)
	model := ev.registerClassifier()
	model.SizeBytes = 64 * sim.MB // pretend it is a hefty model

	query := `SELECT predictions FROM ML.PREDICT(MODEL ds.resnet50, (SELECT ML.DECODE_IMAGE(uri) AS image FROM ds.files))`

	ev.rt.Colocate = true
	ev.sql(t, query)
	colocated := ev.rt.LastRun()

	ev.rt.Colocate = false
	ev.sql(t, query)
	split := ev.rt.LastRun()

	if split.PeakWorkerBytes >= colocated.PeakWorkerBytes {
		t.Fatalf("split peak %d should be < colocated peak %d", split.PeakWorkerBytes, colocated.PeakWorkerBytes)
	}
	if split.TensorWireBytes == 0 {
		t.Fatal("split plan must ship tensors between workers")
	}
	if split.TensorWireBytes*5 > split.RawImageBytes {
		t.Fatalf("tensor wire bytes %d should be far below raw image bytes %d",
			split.TensorWireBytes, split.RawImageBytes)
	}
}

func TestRemotePredictOverHTTP(t *testing.T) {
	ev := newEnv(t)
	ev.putImages(t, 2)
	model := mlmodel.NewClassifier("resnet50", TensorSide, 16, classes, 42)
	server, err := StartModelServer(ev.clock)
	if err != nil {
		t.Fatal(err)
	}
	defer server.Close()
	server.Host(model)
	ev.rt.RegisterModel(&Model{Name: "ds.remote", Classifier: nil})
	if err := ev.rt.ConnectRemote("ds.remote", server); err != nil {
		t.Fatal(err)
	}
	// The remote model uses the classifier's registered name on the
	// endpoint.
	m, _ := ev.rt.Model("ds.remote")
	m.Name = "ds.remote"
	server.mu.Lock()
	server.models["ds.remote"] = model
	server.mu.Unlock()

	res := ev.sql(t, `SELECT predictions FROM ML.PREDICT(MODEL ds.remote, (SELECT ML.DECODE_IMAGE(uri) AS image FROM ds.files))`)
	if res.Batch.N != 8 {
		t.Fatalf("rows = %d", res.Batch.N)
	}
	if server.Requests == 0 {
		t.Fatal("remote endpoint never called")
	}
	for i := 0; i < res.Batch.N; i++ {
		found := false
		for _, c := range classes {
			if res.Batch.Row(i)[0].S == c {
				found = true
			}
		}
		if !found {
			t.Fatalf("prediction %q not a class", res.Batch.Row(i)[0].S)
		}
	}
}

func TestRemoteHasNoSizeLimitButCostsLatency(t *testing.T) {
	ev := newEnv(t)
	ev.putImages(t, 1)
	model := mlmodel.NewClassifier("huge", TensorSide, 16, classes, 1)
	model.SizeBytes = 8 << 30 // 8 GB: impossible in-engine
	server, _ := StartModelServer(ev.clock)
	defer server.Close()
	server.mu.Lock()
	server.models["ds.huge"] = model
	server.mu.Unlock()
	ev.rt.RegisterModel(&Model{Name: "ds.huge"})
	ev.rt.ConnectRemote("ds.huge", server)

	before := ev.clock.Now()
	res := ev.sql(t, `SELECT predictions FROM ML.PREDICT(MODEL ds.huge, (SELECT ML.DECODE_IMAGE(uri) AS image FROM ds.files))`)
	if res.Batch.N != 4 {
		t.Fatalf("rows = %d", res.Batch.N)
	}
	if ev.clock.Now()-before < RemoteRTT {
		t.Fatal("remote inference must pay communication latency")
	}
}

func TestRemoteBurstQueues(t *testing.T) {
	// E8: a burst beyond the endpoint's capacity queues; later
	// requests see increasing delay.
	clock := sim.NewClock()
	server, _ := StartModelServer(clock)
	defer server.Close()
	first := server.QueueDelayFor(0)
	if first != 0 {
		t.Fatalf("first request delay = %v", first)
	}
	for i := 1; i < MaxConcurrent; i++ {
		if d := server.QueueDelayFor(0); d != 0 {
			t.Fatalf("request %d within capacity delayed %v", i, d)
		}
	}
	overflow := server.QueueDelayFor(0)
	if overflow < RemoteServiceTime {
		t.Fatalf("overflow request delay = %v, want >= %v", overflow, RemoteServiceTime)
	}
}

func TestListing2ProcessDocument(t *testing.T) {
	// The paper's Listing 2: first-party document parsing.
	ev := newEnv(t)
	for i := 0; i < 3; i++ {
		doc := mlmodel.MakeInvoice(i, fmt.Sprintf("vendor%d", i), float64(100+i))
		ev.store.Put(ev.cred, "media", fmt.Sprintf("docs/inv%d.pdf", i), doc, "application/pdf")
	}
	cat := ev.eng.Catalog
	cat.CreateTable(catalog.Table{
		Dataset: "ds", Name: "documents", Type: catalog.Object,
		Cloud: "gcp", Bucket: "media", Prefix: "docs/", Connection: "conn", MetadataCaching: true,
	})
	ev.rt.RegisterModel(&Model{Name: "ds.invoice_parser", DocParser: &mlmodel.DocParser{Name: "invoice_parser"}})

	res := ev.sql(t, `SELECT * FROM ML.PROCESS_DOCUMENT(MODEL ds.invoice_parser, TABLE ds.documents)`)
	if res.Batch.N != 3 {
		t.Fatalf("rows = %d", res.Batch.N)
	}
	// Flattened entity columns.
	for _, col := range []string{"uri", "invoice_id", "vendor", "total", "currency"} {
		if res.Batch.Schema.Index(col) < 0 {
			t.Fatalf("missing column %q in %v", col, res.Batch.Schema)
		}
	}
	if v := res.Batch.Column("vendor").Value(0).S; !strings.HasPrefix(v, "vendor") {
		t.Fatalf("vendor = %q", v)
	}
}

func TestProcessDocumentWrongModelKind(t *testing.T) {
	ev := newEnv(t)
	ev.putImages(t, 1)
	ev.registerClassifier()
	_, err := ev.eng.Query(engine.NewContext(adminP, "q"),
		`SELECT * FROM ML.PROCESS_DOCUMENT(MODEL ds.resnet50, TABLE ds.files)`)
	if err == nil || !strings.Contains(err.Error(), "not a document processor") {
		t.Fatalf("err = %v", err)
	}
}

func TestDecodeImageBadURI(t *testing.T) {
	ev := newEnv(t)
	ev.registerClassifier()
	if _, err := ev.rt.decodeImage(engine.NewContext(adminP, "q"),
		[]*vector.Column{vector.NewStringColumn([]string{"not-a-uri"})}); !errors.Is(err, ErrBadURI) {
		t.Fatalf("err = %v", err)
	}
	if _, err := ev.rt.decodeImage(engine.NewContext(adminP, "q"),
		[]*vector.Column{vector.NewStringColumn([]string{"mars://bucket/key"})}); err == nil {
		t.Fatal("unknown cloud should fail")
	}
}

func TestParseURI(t *testing.T) {
	cloud, bucket, key, err := parseURI("gcp://media/imgs/a.jpg")
	if err != nil || cloud != "gcp" || bucket != "media" || key != "imgs/a.jpg" {
		t.Fatalf("parse = %s %s %s %v", cloud, bucket, key, err)
	}
	for _, bad := range []string{"", "x", "gcp://", "gcp://bucketonly", "gcp://bucket/"} {
		if _, _, _, err := parseURI(bad); err == nil {
			t.Errorf("parseURI(%q) should fail", bad)
		}
	}
}

func TestInEngineScalesWithWorkersRemoteDoesNot(t *testing.T) {
	// E8 shape: a burst of inference work finishes faster in-engine
	// (horizontal scaling) than against a capacity-bound endpoint.
	ev := newEnv(t)
	ev.putImages(t, 8) // 32 images
	model := ev.registerClassifier()

	query := `SELECT predictions FROM ML.PREDICT(MODEL ds.resnet50, (SELECT ML.DECODE_IMAGE(uri) AS image FROM ds.files))`
	before := ev.clock.Now()
	ev.sql(t, query)
	localTime := ev.clock.Now() - before

	server, _ := StartModelServer(ev.clock)
	defer server.Close()
	server.mu.Lock()
	server.models["ds.remote"] = model
	server.mu.Unlock()
	ev.rt.RegisterModel(&Model{Name: "ds.remote"})
	ev.rt.ConnectRemote("ds.remote", server)
	// Fire a burst of remote queries.
	before = ev.clock.Now()
	for i := 0; i < 6; i++ {
		ev.sql(t, `SELECT predictions FROM ML.PREDICT(MODEL ds.remote, (SELECT ML.DECODE_IMAGE(uri) AS image FROM ds.files))`)
	}
	remoteTime := ev.clock.Now() - before

	if remoteTime <= localTime {
		t.Fatalf("remote burst %v should cost more than in-engine %v", remoteTime, localTime)
	}
}

func TestSignedURLPathNeverReadByDremel(t *testing.T) {
	// §4.2.2: for first-party models, Dremel passes URIs; the service
	// reads objects directly. We verify document bytes were fetched
	// via signed URLs (meter) rather than plain engine reads.
	ev := newEnv(t)
	doc := mlmodel.MakeInvoice(1, "X", 10)
	ev.store.Put(ev.cred, "media", "docs/a.pdf", doc, "application/pdf")
	ev.eng.Catalog.CreateTable(catalog.Table{
		Dataset: "ds", Name: "documents", Type: catalog.Object,
		Cloud: "gcp", Bucket: "media", Prefix: "docs/", Connection: "conn", MetadataCaching: true,
	})
	ev.rt.RegisterModel(&Model{Name: "ds.p", DocParser: &mlmodel.DocParser{Name: "p"}})
	ev.sql(t, `SELECT * FROM ML.PROCESS_DOCUMENT(MODEL ds.p, TABLE ds.documents)`)
	if got := ev.rt.Meter.Get("documents_processed"); got != 1 {
		t.Fatalf("documents_processed = %d", got)
	}
}

func TestRemoteModelNotFoundOnServer(t *testing.T) {
	ev := newEnv(t)
	ev.putImages(t, 1)
	server, _ := StartModelServer(ev.clock)
	defer server.Close()
	ev.rt.RegisterModel(&Model{Name: "ds.missing"})
	ev.rt.ConnectRemote("ds.missing", server)
	_, err := ev.eng.Query(engine.NewContext(adminP, "q"),
		`SELECT * FROM ML.PREDICT(MODEL ds.missing, (SELECT ML.DECODE_IMAGE(uri) AS image FROM ds.files))`)
	if err == nil || !strings.Contains(err.Error(), "no model") {
		t.Fatalf("err = %v", err)
	}
}

func TestTimestampFilterOnObjectTableWithInference(t *testing.T) {
	// Listing 1's create_time predicate path.
	ev := newEnv(t)
	rng := sim.NewRNG(5)
	img := mlmodel.RandomImage(rng, 32, 32, 0, len(classes))
	enc, _ := mlmodel.EncodeImage(img)
	ev.store.Put(ev.cred, "media", "imgs/old.jpg", enc, "image/jpeg")
	ev.clock.Advance(time.Hour)
	ev.store.Put(ev.cred, "media", "imgs/new.jpg", enc, "image/jpeg")
	ev.registerClassifier()
	cutoff := int64(30 * time.Minute)
	res := ev.sql(t, fmt.Sprintf(`SELECT uri, predictions FROM ML.PREDICT(MODEL ds.resnet50,
		(SELECT uri, ML.DECODE_IMAGE(uri) AS image FROM ds.files
		 WHERE content_type = 'image/jpeg' AND create_time > %d))`, cutoff))
	if res.Batch.N != 1 || !strings.HasSuffix(res.Batch.Row(0)[0].S, "new.jpg") {
		t.Fatalf("rows = %d", res.Batch.N)
	}
}
