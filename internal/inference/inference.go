// Package inference implements the BQML inference engine of §4.2:
// in-engine inference inside Dremel workers (with the Figure 7
// distributed preprocess/infer split and the model-size memory limit)
// and external inference against remote model endpoints (customer
// models on a Vertex-AI-like HTTP serving platform, and first-party
// models like Document AI that read objects directly via signed URLs).
//
// It registers ML.DECODE_IMAGE as an engine scalar function and
// ML.PREDICT / ML.PROCESS_DOCUMENT as table-valued functions.
package inference

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"biglake/internal/engine"
	"biglake/internal/mlmodel"
	"biglake/internal/objstore"
	"biglake/internal/security"
	"biglake/internal/shuffle"
	"biglake/internal/sim"
	"biglake/internal/vector"
)

// Errors returned by the inference runtime.
var (
	ErrNoModel      = errors.New("inference: no such model")
	ErrModelTooBig  = errors.New("inference: model exceeds in-engine memory limit; host it remotely")
	ErrNoTensorCol  = errors.New("inference: input has no tensor column")
	ErrNoURIColumn  = errors.New("inference: input has no uri column")
	ErrBadURI       = errors.New("inference: malformed object uri")
	ErrRemoteNeeded = errors.New("inference: model is remote; no local weights")
)

// MaxModelBytes is the in-engine model size limit: "models greater
// than 2GB cannot be loaded" (§4.2).
const MaxModelBytes = 2 << 30

// SandboxOverheadBytes models the per-worker memory cost of sandboxing
// model execution and unstructured-format parsing (§4.2.1).
const SandboxOverheadBytes = sim.MB / 4

// Workers is the per-stage parallelism for distributed inference.
const Workers = 8

// TensorSide is the model input resolution (the 224x224 of the paper,
// scaled down).
const TensorSide = 16

// Model is a registered BQML model.
type Model struct {
	Name       string
	Classifier *mlmodel.Classifier
	DocParser  *mlmodel.DocParser
	// Remote models execute against Endpoint instead of in-engine.
	Remote   bool
	Endpoint string
	// queue books a serving slot on the remote endpoint's virtual
	// capacity timeline (set by ConnectRemote).
	queue func(now time.Duration) time.Duration
}

// MemoryStats reports worker memory and wire behaviour of one
// inference run — the observables of E7.
type MemoryStats struct {
	// PeakWorkerBytes is the largest simultaneous footprint any
	// single worker held.
	PeakWorkerBytes int64
	// TensorWireBytes is what preprocessing shipped to inference
	// workers.
	TensorWireBytes int64
	// RawImageBytes is the total raw object bytes fetched.
	RawImageBytes int64
}

// Runtime is the BQML runtime for one engine deployment.
type Runtime struct {
	Auth    *security.Authority
	Stores  map[string]*objstore.Store
	Clock   *sim.Clock
	Shuffle *shuffle.Service
	Meter   *sim.Meter

	// Cred reads unstructured objects (the object table's delegated
	// connection credential).
	Cred objstore.Credential

	// Colocate disables the Figure 7 plan split, decoding images and
	// running the model on the same worker (the ablation baseline).
	Colocate bool

	// MaxModelBytes overrides the in-engine limit (tests).
	MaxModelBytes int64

	mu      sync.Mutex
	models  map[string]*Model
	lastRun MemoryStats
}

// NewRuntime builds a runtime.
func NewRuntime(auth *security.Authority, stores map[string]*objstore.Store, clock *sim.Clock, cred objstore.Credential) *Runtime {
	return &Runtime{
		Auth:          auth,
		Stores:        stores,
		Clock:         clock,
		Shuffle:       shuffle.New(clock, nil),
		Meter:         &sim.Meter{},
		Cred:          cred,
		MaxModelBytes: MaxModelBytes,
		models:        make(map[string]*Model),
	}
}

// RegisterModel installs a model under its name.
func (rt *Runtime) RegisterModel(m *Model) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	rt.models[m.Name] = m
}

// Model resolves a registered model.
func (rt *Runtime) Model(name string) (*Model, error) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	m, ok := rt.models[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNoModel, name)
	}
	return m, nil
}

// LastRun returns the memory stats of the most recent ML.PREDICT.
func (rt *Runtime) LastRun() MemoryStats {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	return rt.lastRun
}

// Attach registers the ML functions on an engine.
func (rt *Runtime) Attach(eng *engine.Engine) {
	eng.RegisterScalar("ML.DECODE_IMAGE", rt.decodeImage)
	eng.RegisterTVF("ML.PREDICT", rt.predict)
	eng.RegisterTVF("ML.PROCESS_DOCUMENT", rt.processDocument)
}

// parseURI splits "cloud://bucket/key".
func parseURI(uri string) (cloud, bucket, key string, err error) {
	i := strings.Index(uri, "://")
	if i <= 0 {
		return "", "", "", fmt.Errorf("%w: %q", ErrBadURI, uri)
	}
	rest := uri[i+3:]
	j := strings.IndexByte(rest, '/')
	if j <= 0 || j == len(rest)-1 {
		return "", "", "", fmt.Errorf("%w: %q", ErrBadURI, uri)
	}
	return uri[:i], rest[:j], rest[j+1:], nil
}

func (rt *Runtime) fetch(ch sim.Charger, uri string) ([]byte, error) {
	cloud, bucket, key, err := parseURI(uri)
	if err != nil {
		return nil, err
	}
	store, ok := rt.Stores[cloud]
	if !ok {
		return nil, fmt.Errorf("inference: no object store for cloud %q", cloud)
	}
	data, _, err := store.GetOn(ch, rt.Cred, bucket, key)
	return data, err
}

// decodeImage implements ML.DECODE_IMAGE(uri): it fetches each object
// with the delegated credential, decodes and preprocesses it into a
// model input tensor, and returns the serialized tensors as a BYTES
// column. Fetch+decode fan out over preprocess workers.
func (rt *Runtime) decodeImage(ctx *engine.QueryContext, args []*vector.Column) (*vector.Column, error) {
	if len(args) != 1 {
		return nil, fmt.Errorf("inference: ML.DECODE_IMAGE expects 1 argument")
	}
	uris := args[0].Decode()
	out := make([]string, uris.Len)
	var rawBytes int64
	var rawMax int64
	var mu sync.Mutex
	tracks := make([]*sim.Track, Workers)
	for i := range tracks {
		tracks[i] = rt.Clock.StartTrack()
	}
	var wg sync.WaitGroup
	errs := make(chan error, uris.Len)
	sem := make(chan struct{}, Workers)
	for i := 0; i < uris.Len; i++ {
		if uris.Value(i).IsNull() {
			continue
		}
		wg.Add(1)
		go func(i int, uri string) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			data, err := rt.fetch(tracks[i%Workers], uri)
			if err != nil {
				errs <- err
				return
			}
			tensor, err := mlmodel.Preprocess(data, TensorSide)
			if err != nil {
				errs <- fmt.Errorf("inference: %s: %w", uri, err)
				return
			}
			mu.Lock()
			rawBytes += int64(len(data))
			if int64(len(data)) > rawMax {
				rawMax = int64(len(data))
			}
			mu.Unlock()
			out[i] = string(tensor.Encode())
		}(i, uris.Value(i).S)
	}
	wg.Wait()
	close(errs)
	if err := <-errs; err != nil {
		return nil, err
	}
	for _, tr := range tracks {
		tr.Join()
	}
	rt.mu.Lock()
	rt.lastRun = MemoryStats{RawImageBytes: rawBytes, PeakWorkerBytes: rawMax + SandboxOverheadBytes}
	rt.mu.Unlock()
	rt.Meter.Add("images_decoded", int64(uris.Len))
	return &vector.Column{Type: vector.Bytes, Len: uris.Len, Enc: vector.Plain, Strs: out}, nil
}

// tensorColumn locates the input tensor column (first BYTES column).
func tensorColumn(input *vector.Batch) (int, error) {
	for i, f := range input.Schema.Fields {
		if f.Type == vector.Bytes {
			return i, nil
		}
	}
	return -1, ErrNoTensorCol
}

// predict implements ML.PREDICT. For local models it runs the Figure 7
// distributed plan: tensors travel through the shuffle tier to
// inference workers, so raw images and model weights never share a
// worker. For remote models it calls the model endpoint.
func (rt *Runtime) predict(ctx *engine.QueryContext, modelName string, input *vector.Batch) (*vector.Batch, error) {
	model, err := rt.Model(modelName)
	if err != nil {
		return nil, err
	}
	if model.Remote {
		return rt.remotePredict(ctx, model, input)
	}
	if model.Classifier == nil {
		return nil, fmt.Errorf("inference: model %q is not a classifier", modelName)
	}
	if model.Classifier.SizeBytes > rt.maxModel() {
		return nil, fmt.Errorf("%w: %q is %d bytes (limit %d)", ErrModelTooBig, modelName, model.Classifier.SizeBytes, rt.maxModel())
	}

	ti, err := tensorColumn(input)
	if err != nil {
		return nil, err
	}
	tensors := input.Cols[ti].Decode()

	// Exchange tensors worker->worker through the shuffle tier
	// (Figure 7). The payload accounting is the experiment observable.
	sessID, err := rt.Shuffle.CreateSession(Workers)
	if err != nil {
		return nil, err
	}
	defer rt.Shuffle.Drop(sessID)
	var wireBytes int64
	for i := 0; i < tensors.Len; i++ {
		payload := []byte(tensors.Strs[i])
		wireBytes += int64(len(payload))
		if err := rt.Shuffle.Write(sessID, i%Workers, payload); err != nil {
			return nil, err
		}
	}
	if err := rt.Shuffle.Seal(sessID); err != nil {
		return nil, err
	}

	// Inference workers each hold the model plus one tensor at a time.
	predictions := make([]string, tensors.Len)
	tracks := make([]*sim.Track, Workers)
	for i := range tracks {
		tracks[i] = rt.Clock.StartTrack()
	}
	var wg sync.WaitGroup
	errs := make(chan error, Workers)
	workerMax := make([]int64, Workers)
	for w := 0; w < Workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			payloads, err := rt.Shuffle.Read(sessID, w)
			if err != nil {
				errs <- err
				return
			}
			for j, payload := range payloads {
				tensor, err := mlmodel.DecodeTensor(payload)
				if err != nil {
					errs <- err
					return
				}
				label, _, err := model.Classifier.Predict(tensor)
				if err != nil {
					errs <- err
					return
				}
				// Row i was routed to partition i%Workers in order.
				predictions[w+j*Workers] = label
				if int64(len(payload)) > workerMax[w] {
					workerMax[w] = int64(len(payload))
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	if err := <-errs; err != nil {
		return nil, err
	}
	var maxTensor int64
	for _, m := range workerMax {
		if m > maxTensor {
			maxTensor = m
		}
	}
	for _, tr := range tracks {
		tr.Join()
	}

	rt.mu.Lock()
	prev := rt.lastRun
	stats := MemoryStats{
		TensorWireBytes: wireBytes,
		RawImageBytes:   prev.RawImageBytes,
	}
	if rt.Colocate {
		// Ablation: one worker decodes the raw image AND hosts the
		// model.
		stats.PeakWorkerBytes = prev.PeakWorkerBytes + model.Classifier.SizeBytes
		stats.TensorWireBytes = 0
	} else {
		infPeak := model.Classifier.SizeBytes + maxTensor + SandboxOverheadBytes
		stats.PeakWorkerBytes = prev.PeakWorkerBytes // preprocess worker
		if infPeak > stats.PeakWorkerBytes {
			stats.PeakWorkerBytes = infPeak
		}
	}
	rt.lastRun = stats
	rt.mu.Unlock()
	rt.Meter.Add("inferences", int64(tensors.Len))

	fields := append([]vector.Field{}, input.Schema.Fields...)
	fields = append(fields, vector.Field{Name: "predictions", Type: vector.String})
	cols := append([]*vector.Column{}, input.Cols...)
	cols = append(cols, vector.NewStringColumn(predictions))
	return vector.NewBatch(vector.Schema{Fields: fields}, cols)
}

func (rt *Runtime) maxModel() int64 {
	if rt.MaxModelBytes > 0 {
		return rt.MaxModelBytes
	}
	return MaxModelBytes
}

// processDocument implements ML.PROCESS_DOCUMENT for first-party
// models: Dremel never reads the documents; it passes signed URLs to
// the service, which fetches objects directly (§4.2.2). Extracted
// entities are flattened into output columns.
func (rt *Runtime) processDocument(ctx *engine.QueryContext, modelName string, input *vector.Batch) (*vector.Batch, error) {
	model, err := rt.Model(modelName)
	if err != nil {
		return nil, err
	}
	if model.DocParser == nil {
		return nil, fmt.Errorf("inference: model %q is not a document processor", modelName)
	}
	ui := input.Schema.Index("uri")
	if ui < 0 {
		return nil, ErrNoURIColumn
	}
	uris := input.Cols[ui].Decode()

	// Mint signed URLs so the external service can fetch the objects
	// without Dremel touching the bytes — the governance umbrella
	// outside BigQuery (§4.1).
	type parsed struct {
		entities map[string]string
		err      error
	}
	results := make([]parsed, uris.Len)
	tracks := make([]*sim.Track, Workers)
	for i := range tracks {
		tracks[i] = rt.Clock.StartTrack()
	}
	var wg sync.WaitGroup
	sem := make(chan struct{}, Workers)
	for i := 0; i < uris.Len; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			uri := uris.Value(i).S
			cloud, bucket, key, err := parseURI(uri)
			if err != nil {
				results[i] = parsed{err: err}
				return
			}
			store, ok := rt.Stores[cloud]
			if !ok {
				results[i] = parsed{err: fmt.Errorf("inference: no store for %q", cloud)}
				return
			}
			url, err := store.SignURL(rt.Cred, bucket, key, 5*time.Minute)
			if err != nil {
				results[i] = parsed{err: err}
				return
			}
			doc, _, err := store.Fetch(url) // the service's direct read
			if err != nil {
				results[i] = parsed{err: err}
				return
			}
			tracks[i%Workers].Advance(2 * time.Millisecond) // service-side parse
			entities, err := model.DocParser.Parse(doc)
			results[i] = parsed{entities: entities, err: err}
		}(i)
	}
	wg.Wait()
	for _, tr := range tracks {
		tr.Join()
	}

	// Flatten: union of entity keys become columns.
	keySet := map[string]bool{}
	for i := range results {
		if results[i].err != nil {
			return nil, results[i].err
		}
		for k := range results[i].entities {
			keySet[k] = true
		}
	}
	keys := make([]string, 0, len(keySet))
	for k := range keySet {
		keys = append(keys, k)
	}
	sort.Strings(keys)

	fields := []vector.Field{{Name: "uri", Type: vector.String}}
	for _, k := range keys {
		fields = append(fields, vector.Field{Name: k, Type: vector.String})
	}
	builder := vector.NewBuilder(vector.Schema{Fields: fields})
	for i := 0; i < uris.Len; i++ {
		row := make([]vector.Value, len(fields))
		row[0] = uris.Value(i)
		for j, k := range keys {
			if v, ok := results[i].entities[k]; ok {
				row[j+1] = vector.StringValue(v)
			} else {
				row[j+1] = vector.NullValue
			}
		}
		builder.Append(row...)
	}
	rt.Meter.Add("documents_processed", int64(uris.Len))
	return builder.Build(), nil
}
