package objstore

import (
	"errors"
	"fmt"
	"testing"
	"testing/quick"
	"time"

	"biglake/internal/sim"
)

func newTestStore() (*Store, Credential) {
	clock := sim.NewClock()
	st := New(sim.GCP, clock, nil)
	admin := Credential{Principal: "admin@test"}
	if err := st.CreateBucket(admin, "b"); err != nil {
		panic(err)
	}
	return st, admin
}

func TestPutGetRoundTrip(t *testing.T) {
	st, admin := newTestStore()
	info, err := st.Put(admin, "b", "dir/a.txt", []byte("hello"), "text/plain")
	if err != nil {
		t.Fatal(err)
	}
	if info.Size != 5 || info.Generation != 1 {
		t.Fatalf("info = %+v", info)
	}
	data, got, err := st.Get(admin, "b", "dir/a.txt")
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "hello" || got.ContentType != "text/plain" {
		t.Fatalf("got %q %+v", data, got)
	}
}

func TestGetRange(t *testing.T) {
	st, admin := newTestStore()
	if _, err := st.Put(admin, "b", "k", []byte("0123456789"), ""); err != nil {
		t.Fatal(err)
	}
	data, _, err := st.GetRange(admin, "b", "k", 7, -1)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "789" {
		t.Fatalf("tail range = %q", data)
	}
	data, _, _ = st.GetRange(admin, "b", "k", 2, 3)
	if string(data) != "234" {
		t.Fatalf("mid range = %q", data)
	}
	data, _, _ = st.GetRange(admin, "b", "k", 50, 3)
	if len(data) != 0 {
		t.Fatalf("past-end range = %q", data)
	}
}

func TestGetMissing(t *testing.T) {
	st, admin := newTestStore()
	if _, _, err := st.Get(admin, "b", "nope"); !errors.Is(err, ErrNoSuchObject) {
		t.Fatalf("err = %v", err)
	}
	if _, _, err := st.Get(admin, "nobucket", "x"); !errors.Is(err, ErrNoSuchBucket) {
		t.Fatalf("err = %v", err)
	}
}

func TestGenerationIncrements(t *testing.T) {
	st, admin := newTestStore()
	for want := int64(1); want <= 3; want++ {
		info, err := st.Put(admin, "b", "k", []byte("v"), "")
		if err != nil {
			t.Fatal(err)
		}
		if info.Generation != want {
			t.Fatalf("gen = %d, want %d", info.Generation, want)
		}
	}
}

func TestConditionalPut(t *testing.T) {
	st, admin := newTestStore()
	// Must-not-exist succeeds on fresh key.
	info, err := st.PutIfGeneration(admin, "b", "log", []byte("v1"), "", 0)
	if err != nil {
		t.Fatal(err)
	}
	// Stale generation fails.
	if _, err := st.PutIfGeneration(admin, "b", "log", []byte("v2"), "", 0); !errors.Is(err, ErrPreconditionFail) {
		t.Fatalf("stale put err = %v", err)
	}
	// Matching generation succeeds.
	if _, err := st.PutIfGeneration(admin, "b", "log", []byte("v2"), "", info.Generation); err != nil {
		t.Fatal(err)
	}
	data, _, _ := st.Get(admin, "b", "log")
	if string(data) != "v2" {
		t.Fatalf("data = %q", data)
	}
}

func TestMutationRateBound(t *testing.T) {
	// §3.5: conditional overwrites of one object are rate-limited. 10
	// successive commits must advance simulated time by at least
	// 9 * MutationInterval.
	st, admin := newTestStore()
	info, err := st.PutIfGeneration(admin, "b", "log", []byte("v"), "", 0)
	if err != nil {
		t.Fatal(err)
	}
	start := st.Clock().Now()
	gen := info.Generation
	for i := 0; i < 10; i++ {
		info, err = st.PutIfGeneration(admin, "b", "log", []byte(fmt.Sprintf("v%d", i)), "", gen)
		if err != nil {
			t.Fatal(err)
		}
		gen = info.Generation
	}
	elapsed := st.Clock().Now() - start
	if min := 9 * sim.GCP.MutationInterval; elapsed < min {
		t.Fatalf("10 mutations took %v simulated, want >= %v", elapsed, min)
	}
}

func TestUnconditionalPutNotRateLimited(t *testing.T) {
	st, admin := newTestStore()
	start := st.Clock().Now()
	for i := 0; i < 5; i++ {
		if _, err := st.Put(admin, "b", "k", []byte("v"), ""); err != nil {
			t.Fatal(err)
		}
	}
	elapsed := st.Clock().Now() - start
	// Plain puts pay only per-request overhead plus streaming time,
	// never mutation pacing.
	want := 5 * sim.GCP.PutOverhead
	if elapsed < want || elapsed > want+time.Millisecond {
		t.Fatalf("plain puts took %v, want ~%v (no mutation governor)", elapsed, want)
	}
}

func TestDelete(t *testing.T) {
	st, admin := newTestStore()
	st.Put(admin, "b", "k", []byte("v"), "")
	if err := st.Delete(admin, "b", "k"); err != nil {
		t.Fatal(err)
	}
	if _, _, err := st.Get(admin, "b", "k"); !errors.Is(err, ErrNoSuchObject) {
		t.Fatalf("after delete: %v", err)
	}
	if err := st.Delete(admin, "b", "k"); !errors.Is(err, ErrNoSuchObject) {
		t.Fatalf("double delete: %v", err)
	}
}

func TestAccessControl(t *testing.T) {
	st, admin := newTestStore()
	reader := Credential{Principal: "reader@test"}
	writer := Credential{Principal: "writer@test"}
	stranger := Credential{Principal: "stranger@test"}
	st.Grant(admin, "b", "reader@test", PermRead)
	st.Grant(admin, "b", "writer@test", PermWrite)
	st.Put(admin, "b", "k", []byte("v"), "")

	if _, _, err := st.Get(reader, "b", "k"); err != nil {
		t.Fatalf("reader get: %v", err)
	}
	if _, err := st.Put(reader, "b", "k2", []byte("v"), ""); !errors.Is(err, ErrAccessDenied) {
		t.Fatalf("reader put should be denied: %v", err)
	}
	if _, err := st.Put(writer, "b", "k2", []byte("v"), ""); err != nil {
		t.Fatalf("writer put: %v", err)
	}
	if _, _, err := st.Get(stranger, "b", "k"); !errors.Is(err, ErrAccessDenied) {
		t.Fatalf("stranger get should be denied: %v", err)
	}
	if err := st.Grant(stranger, "b", "stranger@test", PermAdmin); !errors.Is(err, ErrAccessDenied) {
		t.Fatalf("stranger self-grant should be denied: %v", err)
	}
}

func TestScopedCredential(t *testing.T) {
	st, admin := newTestStore()
	st.Put(admin, "b", "tables/t1/f1", []byte("a"), "")
	st.Put(admin, "b", "tables/t2/f1", []byte("b"), "")
	scoped, err := admin.WithScope("tables/t1/")
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := st.Get(scoped, "b", "tables/t1/f1"); err != nil {
		t.Fatalf("in-scope get: %v", err)
	}
	if _, _, err := st.Get(scoped, "b", "tables/t2/f1"); !errors.Is(err, ErrAccessDenied) {
		t.Fatalf("out-of-scope get must be denied: %v", err)
	}
	// Scope can only narrow.
	if _, err := scoped.WithScope("tables/t2/"); err == nil {
		t.Fatal("widening a scoped credential must fail")
	}
	if _, err := scoped.WithScope("tables/t1/part=3/"); err != nil {
		t.Fatalf("narrowing should succeed: %v", err)
	}
}

func TestListPagination(t *testing.T) {
	st, admin := newTestStore()
	n := sim.GCP.ListPageSize*2 + 500
	for i := 0; i < n; i++ {
		if _, err := st.Put(admin, "b", fmt.Sprintf("data/%06d", i), []byte("x"), ""); err != nil {
			t.Fatal(err)
		}
	}
	st.Put(admin, "b", "other/file", []byte("x"), "")

	before := st.Meter().Get("list_pages")
	objs, err := st.ListAll(admin, "b", "data/")
	if err != nil {
		t.Fatal(err)
	}
	if len(objs) != n {
		t.Fatalf("listed %d, want %d", len(objs), n)
	}
	pages := st.Meter().Get("list_pages") - before
	if pages != 3 {
		t.Fatalf("list used %d pages, want 3", pages)
	}
	for i := 1; i < len(objs); i++ {
		if objs[i-1].Key >= objs[i].Key {
			t.Fatal("list output not sorted")
		}
	}
}

func TestListLatencyScalesWithBucketSize(t *testing.T) {
	st, admin := newTestStore()
	for i := 0; i < 3500; i++ {
		st.Put(admin, "b", fmt.Sprintf("d/%05d", i), nil, "")
	}
	start := st.Clock().Now()
	if _, err := st.ListAll(admin, "b", "d/"); err != nil {
		t.Fatal(err)
	}
	elapsed := st.Clock().Now() - start
	want := 4 * sim.GCP.ListPageLatency // ceil(3500/1000) pages
	if elapsed != want {
		t.Fatalf("list of 3500 objects took %v simulated, want %v", elapsed, want)
	}
}

func TestListPrefixIsolation(t *testing.T) {
	st, admin := newTestStore()
	st.Put(admin, "b", "a/1", nil, "")
	st.Put(admin, "b", "ab/1", nil, "")
	st.Put(admin, "b", "b/1", nil, "")
	objs, err := st.ListAll(admin, "b", "a/")
	if err != nil {
		t.Fatal(err)
	}
	if len(objs) != 1 || objs[0].Key != "a/1" {
		t.Fatalf("prefix list = %+v", objs)
	}
}

func TestSignedURL(t *testing.T) {
	st, admin := newTestStore()
	st.Put(admin, "b", "img.jpg", []byte("JPEGDATA"), "image/jpeg")
	url, err := st.SignURL(admin, "b", "img.jpg", time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	data, info, err := st.Fetch(url)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "JPEGDATA" || info.ContentType != "image/jpeg" {
		t.Fatalf("fetched %q %+v", data, info)
	}
	// Expiry.
	st.Clock().Advance(2 * time.Minute)
	if _, _, err := st.Fetch(url); !errors.Is(err, ErrBadSignedURL) {
		t.Fatalf("expired fetch: %v", err)
	}
	// Garbage URL.
	if _, _, err := st.Fetch("signed://b/none?sig=999"); !errors.Is(err, ErrBadSignedURL) {
		t.Fatalf("bad url fetch: %v", err)
	}
}

func TestSignURLRequiresAccess(t *testing.T) {
	st, admin := newTestStore()
	st.Put(admin, "b", "k", []byte("v"), "")
	stranger := Credential{Principal: "x@test"}
	if _, err := st.SignURL(stranger, "b", "k", time.Minute); !errors.Is(err, ErrAccessDenied) {
		t.Fatalf("stranger sign: %v", err)
	}
	scoped, _ := admin.WithScope("other/")
	if _, err := st.SignURL(scoped, "b", "k", time.Minute); !errors.Is(err, ErrAccessDenied) {
		t.Fatalf("out-of-scope sign: %v", err)
	}
}

func TestBucketLifecycle(t *testing.T) {
	st, admin := newTestStore()
	if err := st.CreateBucket(admin, "b"); !errors.Is(err, ErrBucketExists) {
		t.Fatalf("dup bucket: %v", err)
	}
	if err := st.CreateBucket(admin, "b2"); err != nil {
		t.Fatal(err)
	}
}

func TestGetChargesLatencyAndMetersBytes(t *testing.T) {
	st, admin := newTestStore()
	payload := make([]byte, 2*sim.MB)
	st.Put(admin, "b", "big", payload, "")
	st.Meter().Reset()
	start := st.Clock().Now()
	if _, _, err := st.Get(admin, "b", "big"); err != nil {
		t.Fatal(err)
	}
	elapsed := st.Clock().Now() - start
	want := sim.GCP.GetFirstByte + 2*sim.GCP.ReadPerMB
	if elapsed != want {
		t.Fatalf("get latency %v, want %v", elapsed, want)
	}
	if st.Meter().Get("get_bytes") != int64(len(payload)) {
		t.Fatalf("get_bytes = %d", st.Meter().Get("get_bytes"))
	}
}

func TestParallelTrackReads(t *testing.T) {
	st, admin := newTestStore()
	for i := 0; i < 4; i++ {
		st.Put(admin, "b", fmt.Sprintf("f%d", i), make([]byte, sim.MB), "")
	}
	clockBefore := st.Clock().Now()
	// 4 workers each read one file in parallel tracks.
	tracks := make([]*sim.Track, 4)
	for i := range tracks {
		tracks[i] = st.Clock().StartTrack()
	}
	for i, tr := range tracks {
		if _, _, err := st.GetOn(tr, admin, "b", fmt.Sprintf("f%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	for _, tr := range tracks {
		tr.Join()
	}
	elapsed := st.Clock().Now() - clockBefore
	perFile := sim.GCP.GetFirstByte + sim.GCP.ReadPerMB
	if elapsed != perFile {
		t.Fatalf("parallel reads took %v, want %v (one file's worth)", elapsed, perFile)
	}
}

func TestObjectCount(t *testing.T) {
	st, admin := newTestStore()
	st.Put(admin, "b", "x/1", nil, "")
	st.Put(admin, "b", "x/2", nil, "")
	st.Put(admin, "b", "y/1", nil, "")
	if got := st.ObjectCount("b", "x/"); got != 2 {
		t.Fatalf("count = %d", got)
	}
	if got := st.ObjectCount("nope", ""); got != 0 {
		t.Fatalf("missing bucket count = %d", got)
	}
}

func TestCustomMetadata(t *testing.T) {
	st, admin := newTestStore()
	_, err := st.PutWithMeta(admin, "b", "doc", []byte("d"), "application/pdf", map[string]string{"source": "scanner"})
	if err != nil {
		t.Fatal(err)
	}
	info, err := st.Head(admin, "b", "doc")
	if err != nil {
		t.Fatal(err)
	}
	if info.Custom["source"] != "scanner" {
		t.Fatalf("custom = %v", info.Custom)
	}
}

func TestPropertyPutThenGetAlwaysRoundTrips(t *testing.T) {
	st, admin := newTestStore()
	i := 0
	if err := quick.Check(func(data []byte) bool {
		i++
		key := fmt.Sprintf("q/%d", i)
		if _, err := st.Put(admin, "b", key, data, ""); err != nil {
			return false
		}
		got, info, err := st.Get(admin, "b", key)
		if err != nil || info.Size != int64(len(data)) {
			return false
		}
		if len(got) != len(data) {
			return false
		}
		for j := range got {
			if got[j] != data[j] {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyListMatchesContents(t *testing.T) {
	st, admin := newTestStore()
	want := map[string]bool{}
	r := sim.NewRNG(11)
	for i := 0; i < 300; i++ {
		k := fmt.Sprintf("p/%03d", r.Intn(500))
		st.Put(admin, "b", k, []byte("v"), "")
		want[k] = true
	}
	objs, err := st.ListAll(admin, "b", "p/")
	if err != nil {
		t.Fatal(err)
	}
	if len(objs) != len(want) {
		t.Fatalf("list %d keys, want %d", len(objs), len(want))
	}
	for _, o := range objs {
		if !want[o.Key] {
			t.Fatalf("unexpected key %q", o.Key)
		}
	}
}
