package objstore

import (
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"
)

// chaosWorkload runs a fixed call pattern against a store and returns
// the canonically sorted fault event stream from the store registry.
func chaosWorkload(t *testing.T, st *Store, cred Credential) []string {
	t.Helper()
	for i := 0; i < 10; i++ {
		key := fmt.Sprintf("w/k%02d", i)
		st.Put(cred, "b", key, []byte("payload"), "")
		for j := 0; j < 4; j++ {
			st.Get(cred, "b", key)
		}
		st.Head(cred, "b", key)
	}
	st.ListAll(cred, "b", "w/")
	return st.Obs().Events("objstore.faults")
}

func TestFaultInjectionDeterministicAcrossRuns(t *testing.T) {
	prof := FaultProfile{Seed: 42, Rate: 0.2, SlowdownRate: 0.1, Slowdown: 50 * time.Millisecond}
	var logs [2][]string
	for run := 0; run < 2; run++ {
		st, cred := newTestStore()
		st.InjectFaults(prof)
		logs[run] = chaosWorkload(t, st, cred)
	}
	if len(logs[0]) == 0 {
		t.Fatal("profile injected nothing; workload too small or rate broken")
	}
	if len(logs[0]) != len(logs[1]) {
		t.Fatalf("runs differ: %d vs %d events", len(logs[0]), len(logs[1]))
	}
	for i := range logs[0] {
		if logs[0][i] != logs[1][i] {
			t.Fatalf("event %d differs: %v vs %v", i, logs[0][i], logs[1][i])
		}
	}
	// A different seed produces a different fault set.
	st, cred := newTestStore()
	prof.Seed = 43
	st.InjectFaults(prof)
	other := chaosWorkload(t, st, cred)
	same := len(other) == len(logs[0])
	if same {
		for i := range other {
			if other[i] != logs[0][i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical fault logs")
	}
}

func TestFaultInjectionPerOpRates(t *testing.T) {
	st, cred := newTestStore()
	st.Put(cred, "b", "k", []byte("v"), "")
	st.InjectFaults(FaultProfile{Seed: 1, PerOp: map[Op]float64{OpGet: 1.0}})
	if _, _, err := st.Get(cred, "b", "k"); !errors.Is(err, ErrTransient) {
		t.Fatalf("GET should always fault, got %v", err)
	}
	if _, err := st.Put(cred, "b", "k2", []byte("v"), ""); err != nil {
		t.Fatalf("PUT should never fault, got %v", err)
	}
	if _, err := st.Head(cred, "b", "k"); err != nil {
		t.Fatalf("HEAD should never fault, got %v", err)
	}
}

func TestFaultInjectionPerBucketTargeting(t *testing.T) {
	st, cred := newTestStore()
	if err := st.CreateBucket(cred, "flaky"); err != nil {
		t.Fatal(err)
	}
	st.Put(cred, "b", "k", []byte("v"), "")
	st.Put(cred, "flaky", "k", []byte("v"), "")
	st.InjectFaults(FaultProfile{Seed: 1, PerBucket: map[string]float64{"flaky": 1.0}})
	if _, _, err := st.Get(cred, "b", "k"); err != nil {
		t.Fatalf("healthy bucket faulted: %v", err)
	}
	if _, _, err := st.Get(cred, "flaky", "k"); !errors.Is(err, ErrTransient) {
		t.Fatalf("targeted bucket should fault, got %v", err)
	}
}

func TestFaultStreaksComeInRuns(t *testing.T) {
	const streak = 4
	st, cred := newTestStore()
	st.Put(cred, "b", "k", []byte("v"), "")
	st.InjectFaults(FaultProfile{Seed: 7, Rate: 0.05, StreakLen: streak})
	const calls = 200
	var faulted [calls]bool
	n := 0
	for i := 0; i < calls; i++ {
		_, _, err := st.Get(cred, "b", "k")
		faulted[i] = errors.Is(err, ErrTransient)
		if faulted[i] {
			n++
		}
	}
	if n == 0 {
		t.Fatal("no faults at 5% over 200 calls")
	}
	// Every maximal run of faults is at least StreakLen long unless it
	// was truncated by the end of the call sequence.
	for i := 0; i < calls; {
		if !faulted[i] {
			i++
			continue
		}
		j := i
		for j < calls && faulted[j] {
			j++
		}
		if j-i < streak && j != calls {
			t.Fatalf("fault run [%d,%d) shorter than streak %d", i, j, streak)
		}
		i = j
	}
}

func TestSlowdownChargesSimulatedTime(t *testing.T) {
	const slow = 77 * time.Millisecond
	baseSt, baseCred := newTestStore()
	baseSt.Put(baseCred, "b", "k", []byte("v"), "")
	t0 := baseSt.Clock().Now()
	baseSt.Get(baseCred, "b", "k")
	baseCost := baseSt.Clock().Now() - t0

	st, cred := newTestStore()
	st.Put(cred, "b", "k", []byte("v"), "")
	st.InjectFaults(FaultProfile{Seed: 1, SlowdownRate: 1.0, Slowdown: slow})
	t0 = st.Clock().Now()
	if _, _, err := st.Get(cred, "b", "k"); err != nil {
		t.Fatal(err)
	}
	cost := st.Clock().Now() - t0
	if cost != baseCost+slow {
		t.Fatalf("slowdown GET cost %v, want %v + %v", cost, baseCost, slow)
	}
	if st.Meter().Get("slowdowns_injected") != 1 {
		t.Fatal("slowdown not metered")
	}
	if st.Obs().Get("objstore.slowdowns.injected") != 1 {
		t.Fatal("slowdown not in registry")
	}
	evs := st.Obs().Events("objstore.faults")
	if len(evs) != 1 || !strings.HasPrefix(evs[0], "slowdown") {
		t.Fatalf("fault events = %v", evs)
	}
}

func TestFailNextFiresBeforeProfile(t *testing.T) {
	st, cred := newTestStore()
	st.Put(cred, "b", "k", []byte("v"), "")
	st.InjectFaults(FaultProfile{Seed: 1}) // zero rates: profile never fires
	st.FailNext(1)
	if _, _, err := st.Get(cred, "b", "k"); !errors.Is(err, ErrTransient) {
		t.Fatalf("FailNext should fault, got %v", err)
	}
	if _, _, err := st.Get(cred, "b", "k"); err != nil {
		t.Fatalf("one-shot counter should be spent, got %v", err)
	}
	if st.Meter().Get("faults_injected") != 1 {
		t.Fatal("FailNext fault not metered")
	}
	if st.Obs().Get("objstore.faults.injected") != 1 {
		t.Fatal("FailNext fault not in registry")
	}
	st.ClearFaults()
	if got := st.Obs().Events("objstore.faults"); got != nil {
		t.Fatalf("no profile events expected, got %v", got)
	}
}

// corruptWorkload overwrites every key once (so stale substitution has
// a previous generation to serve) and then issues a burst of GETs,
// returning (corruption events, non-corruption events) in canonical
// order.
func corruptWorkload(t *testing.T, st *Store, cred Credential) (corrupt, other []string) {
	t.Helper()
	for i := 0; i < 8; i++ {
		key := fmt.Sprintf("c/k%02d", i)
		st.Put(cred, "b", key, []byte("payload-v1-"+key), "")
		st.Put(cred, "b", key, []byte("payload-v2-"+key), "")
		for j := 0; j < 12; j++ {
			st.Get(cred, "b", key)
		}
	}
	for _, ev := range st.Obs().Events("objstore.faults") {
		if strings.HasPrefix(ev, "corrupt:") {
			corrupt = append(corrupt, ev)
		} else {
			other = append(other, ev)
		}
	}
	return corrupt, other
}

// TestCorruptionDeterministicAcrossRuns: the silent-corruption
// injector is a pure function of (seed, stream, call) — two identical
// runs produce identical corruption event logs, and at a healthy rate
// all three corruption kinds occur.
func TestCorruptionDeterministicAcrossRuns(t *testing.T) {
	prof := FaultProfile{Seed: 42, CorruptRate: 0.3}
	var logs [2][]string
	for run := 0; run < 2; run++ {
		st, cred := newTestStore()
		st.InjectFaults(prof)
		logs[run], _ = corruptWorkload(t, st, cred)
	}
	if len(logs[0]) == 0 {
		t.Fatal("corruption injector never fired")
	}
	if fmt.Sprint(logs[0]) != fmt.Sprint(logs[1]) {
		t.Fatalf("runs differ:\n%v\nvs\n%v", logs[0], logs[1])
	}
	kinds := map[string]int{}
	for _, ev := range logs[0] {
		kinds[strings.Fields(ev)[0]]++
	}
	for _, k := range []string{"corrupt:bitflip", "corrupt:truncate", "corrupt:stale"} {
		if kinds[k] == 0 {
			t.Fatalf("kind %s never injected (kinds=%v)", k, kinds)
		}
	}
}

// TestCorruptionCountersMatchEvents: every corrupt:<kind> event lands
// in the matching integrity.injected.<kind> registry counter.
func TestCorruptionCountersMatchEvents(t *testing.T) {
	st, cred := newTestStore()
	st.InjectFaults(FaultProfile{Seed: 42, CorruptRate: 0.3})
	events, _ := corruptWorkload(t, st, cred)
	kinds := map[string]int64{}
	for _, ev := range events {
		kinds[strings.TrimPrefix(strings.Fields(ev)[0], "corrupt:")]++
	}
	for k, n := range kinds {
		if got := st.Obs().Get("integrity.injected." + k); got != n {
			t.Fatalf("integrity.injected.%s = %d, events show %d", k, got, n)
		}
	}
	if st.Meter().Get("corruptions_injected") != int64(len(events)) {
		t.Fatalf("corruptions_injected = %d, want %d", st.Meter().Get("corruptions_injected"), len(events))
	}
}

// TestCorruptionDoesNotPerturbFaultStreams: enabling CorruptRate on an
// existing seed must not change which calls fault or slow down —
// corruption draws from its own roll streams and call counters.
func TestCorruptionDoesNotPerturbFaultStreams(t *testing.T) {
	base := FaultProfile{Seed: 42, Rate: 0.15, SlowdownRate: 0.1, Slowdown: 20 * time.Millisecond}
	st1, cred1 := newTestStore()
	st1.InjectFaults(base)
	_, plain := corruptWorkload(t, st1, cred1)

	withCorrupt := base
	withCorrupt.CorruptRate = 0.3
	st2, cred2 := newTestStore()
	st2.InjectFaults(withCorrupt)
	corrupt, faults := corruptWorkload(t, st2, cred2)

	if len(plain) == 0 || len(corrupt) == 0 {
		t.Fatalf("workload too small: %d faults, %d corruptions", len(plain), len(corrupt))
	}
	if fmt.Sprint(plain) != fmt.Sprint(faults) {
		t.Fatalf("fault/slowdown stream changed when corruption was enabled:\n%v\nvs\n%v", plain, faults)
	}
}

// TestCorruptionIsSilent: a corrupted GET returns no error — the bytes
// are just wrong (flipped, short, or stale) — which is exactly why the
// read path needs end-to-end checksums and generation pinning.
func TestCorruptionIsSilent(t *testing.T) {
	st, cred := newTestStore()
	orig := []byte("the-true-bytes-of-this-object!")
	st.Put(cred, "b", "k", []byte("the-previous-generation-bytes!"), "")
	info, err := st.Put(cred, "b", "k", orig, "")
	if err != nil {
		t.Fatal(err)
	}
	st.InjectFaults(FaultProfile{Seed: 3, CorruptRate: 1})
	damaged := 0
	for i := 0; i < 10; i++ {
		data, gi, err := st.Get(cred, "b", "k")
		if err != nil {
			t.Fatalf("silent corruption returned an error: %v", err)
		}
		if string(data) != string(orig) || gi.Generation != info.Generation {
			damaged++
		}
	}
	if damaged != 10 {
		t.Fatalf("CorruptRate=1 damaged %d of 10 GETs", damaged)
	}
	st.ClearFaults()
	if data, _, err := st.Get(cred, "b", "k"); err != nil || string(data) != string(orig) {
		t.Fatalf("stored copy was mutated by response corruption: %q %v", data, err)
	}
}
