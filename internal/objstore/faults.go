package objstore

import (
	"fmt"
	"strings"
	"sync"
	"time"

	"biglake/internal/sim"
)

// This file is the chaos-grade fault-injection harness for the object
// store. It generalizes the original FailNext one-shot counter into
// seeded, deterministic fault *profiles*: per-operation probabilistic
// transient errors, error streaks (a faulting replica keeps faulting
// for a few requests), injected tail-latency slowdowns charged through
// the sim cost model, and per-bucket targeting so cross-cloud (omni)
// chaos can differ per region.
//
// Determinism contract: whether a given call faults is a pure function
// of (profile seed, operation kind, bucket, key, per-key call index).
// It does NOT depend on goroutine interleaving, so a parallel scan
// injected with the same seed sees the same fault set on every run —
// the property the seeded chaos tests assert.

// Op identifies one object-store data-path operation kind.
type Op uint8

// Data-path operations faults can target.
const (
	OpGet Op = iota
	OpPut
	OpList
	OpHead
	OpDelete
)

func (o Op) String() string {
	switch o {
	case OpGet:
		return "GET"
	case OpPut:
		return "PUT"
	case OpList:
		return "LIST"
	case OpHead:
		return "HEAD"
	case OpDelete:
		return "DELETE"
	}
	return "OP?"
}

// FaultProfile configures probabilistic fault injection for one Store.
// The zero value injects nothing.
type FaultProfile struct {
	// Seed makes the fault sequence reproducible. Two runs of the same
	// workload under the same seed inject the same faults.
	Seed uint64

	// Rate is the base probability in [0,1) that a data-path call
	// returns ErrTransient.
	Rate float64
	// PerOp overrides Rate for specific operations (e.g. LIST-heavy
	// throttling).
	PerOp map[Op]float64
	// PerBucket overrides the (possibly PerOp-overridden) rate for
	// specific buckets — the per-region targeting hook: omni injects a
	// different profile into each region's store, and within a store a
	// single hot bucket can be made flakier than the rest.
	PerBucket map[string]float64

	// StreakLen makes faults bursty: once a call on a key faults, the
	// next StreakLen-1 calls on that same key also fault. 0 or 1 means
	// independent faults.
	StreakLen int

	// SlowdownRate is the probability in [0,1) that a call is charged
	// Slowdown of extra simulated latency (a storage tail event) —
	// charged through the operation's sim.Charger like any other
	// remote cost, so hedged reads can race it.
	SlowdownRate float64
	Slowdown     time.Duration

	// CorruptRate is the probability in [0,1) that a GET response body
	// is *silently* corrupted: no error is returned, the bytes are just
	// wrong. Three kinds are chosen deterministically per event — a
	// single flipped bit, a truncated body, or stale-object substitution
	// (the previous generation's bytes served with the previous
	// generation's metadata). Unlike Rate faults these are invisible to
	// the retry layer; only end-to-end checksums and generation pinning
	// catch them.
	CorruptRate float64
	// PerBucketCorrupt overrides CorruptRate for specific buckets.
	PerBucketCorrupt map[string]float64
}

func (p FaultProfile) rateFor(op Op, bucket string) float64 {
	r := p.Rate
	if v, ok := p.PerOp[op]; ok {
		r = v
	}
	if v, ok := p.PerBucket[bucket]; ok {
		r = v
	}
	return r
}

func (p FaultProfile) corruptRateFor(bucket string) float64 {
	r := p.CorruptRate
	if v, ok := p.PerBucketCorrupt[bucket]; ok {
		r = v
	}
	return r
}

// FaultRecord is one injected event, for reproducible failure logs.
type FaultRecord struct {
	Op     Op
	Bucket string
	Key    string
	Call   uint64 // per-(op,bucket,key) call index, 0-based
	Kind   string // "fault" or "slowdown"
}

func (r FaultRecord) String() string {
	return fmt.Sprintf("%s %s %s/%s #%d", r.Kind, r.Op, r.Bucket, r.Key, r.Call)
}

// injector holds the mutable state behind a FaultProfile. Injected
// events are published to the store registry's "objstore.faults" event
// stream (see Registry.Events), which snapshots in canonical sorted
// order — the same determinism contract the old FaultLog accessor
// provided.
type injector struct {
	prof     FaultProfile
	mu       sync.Mutex
	counts   map[string]uint64 // per (op,bucket,key) call counter
	streaks  map[string]int    // forced faults remaining per stream
	corrupts map[string]uint64 // per (op,bucket,key) corruption call counter
}

// splitmix64 finalizer: turns a structured input into uniform bits.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return x
}

func hash64(s string) uint64 {
	// FNV-1a.
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// roll returns a uniform float in [0,1) that is a pure function of its
// inputs; stream separates the fault and slowdown decision spaces.
func roll(seed uint64, streamKey string, call, stream uint64) float64 {
	x := mix64(seed ^ hash64(streamKey) + call*0x9E3779B97F4A7C15 + stream*0xD1B54A32D192ED03)
	return float64(x>>11) / float64(1<<53)
}

// decide consumes one call against the profile, returning an injected
// error (or nil) and recording slowdown charges on ch.
func (in *injector) decide(op Op, bucket, key string, ch sim.Charger, s *Store) error {
	in.mu.Lock()
	streamKey := op.String() + "|" + bucket + "|" + key
	call := in.counts[streamKey]
	in.counts[streamKey]++

	if in.streaks[streamKey] > 0 {
		in.streaks[streamKey]--
		in.mu.Unlock()
		s.recordFault(FaultRecord{Op: op, Bucket: bucket, Key: key, Call: call, Kind: "fault"})
		return fmt.Errorf("%w: injected %s %s/%s call %d (streak)", ErrTransient, op, bucket, key, call)
	}
	if r := in.prof.rateFor(op, bucket); r > 0 && roll(in.prof.Seed, streamKey, call, 0) < r {
		if in.prof.StreakLen > 1 {
			in.streaks[streamKey] = in.prof.StreakLen - 1
		}
		in.mu.Unlock()
		s.recordFault(FaultRecord{Op: op, Bucket: bucket, Key: key, Call: call, Kind: "fault"})
		return fmt.Errorf("%w: injected %s %s/%s call %d", ErrTransient, op, bucket, key, call)
	}
	var slow time.Duration
	if in.prof.SlowdownRate > 0 && roll(in.prof.Seed, streamKey, call, 1) < in.prof.SlowdownRate {
		slow = in.prof.Slowdown
	}
	in.mu.Unlock()
	if slow > 0 {
		s.recordFault(FaultRecord{Op: op, Bucket: bucket, Key: key, Call: call, Kind: "slowdown"})
		ch.Charge(slow)
	}
	return nil
}

// corruption is one decided silent-corruption event: which kind to
// apply and a uniform position in [0,1) locating the damage.
type corruption struct {
	kind string  // "bitflip", "truncate", or "stale"
	pos  float64 // uniform [0,1): bit position or truncation point
	call uint64
}

// corruptDecide consumes one GET against the corruption stream and
// returns the corruption to apply, if any. Corruption uses its own
// per-key call counter and roll streams (2 = decision, 3 = kind,
// 4 = position) so enabling it never perturbs the fault/slowdown
// sequences of an existing seed.
func (in *injector) corruptDecide(op Op, bucket, key string) (corruption, bool) {
	in.mu.Lock()
	defer in.mu.Unlock()
	r := in.prof.corruptRateFor(bucket)
	if r <= 0 {
		return corruption{}, false
	}
	streamKey := op.String() + "|" + bucket + "|" + key
	call := in.corrupts[streamKey]
	in.corrupts[streamKey]++
	if roll(in.prof.Seed, streamKey, call, 2) >= r {
		return corruption{}, false
	}
	c := corruption{pos: roll(in.prof.Seed, streamKey, call, 4), call: call}
	switch k := roll(in.prof.Seed, streamKey, call, 3); {
	case k < 1.0/3:
		c.kind = "bitflip"
	case k < 2.0/3:
		c.kind = "truncate"
	default:
		c.kind = "stale"
	}
	return c, true
}

// recordFault publishes one injected event: legacy meter counter,
// registry counter, and the "objstore.faults" event stream. Corruption
// events additionally land in per-kind "integrity.injected.<kind>"
// counters so tests can diff harness-injected vs detected counts.
func (s *Store) recordFault(rec FaultRecord) {
	oc := s.counters()
	switch {
	case rec.Kind == "slowdown":
		s.meter.Add("slowdowns_injected", 1)
		oc.slowdowns.Add(1)
	case strings.HasPrefix(rec.Kind, "corrupt:"):
		s.meter.Add("corruptions_injected", 1)
		oc.corruptions.Add(1)
		s.Obs().Counter("integrity.injected." + strings.TrimPrefix(rec.Kind, "corrupt:")).Add(1)
	default:
		s.meter.Add("faults_injected", 1)
		oc.faults.Add(1)
	}
	s.Obs().Event("objstore.faults", rec.String())
}

// InjectFaults installs a fault profile on the store, replacing any
// previous one. The one-shot FailNext counter is independent and fires
// first.
func (s *Store) InjectFaults(p FaultProfile) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.inj = &injector{
		prof:     p,
		counts:   make(map[string]uint64),
		streaks:  make(map[string]int),
		corrupts: make(map[string]uint64),
	}
}

// ClearFaults removes any installed fault profile.
func (s *Store) ClearFaults() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.inj = nil
}

// fault runs the injection pipeline for one data-path call: the legacy
// FailNext one-shot counter first, then the installed profile.
func (s *Store) fault(op Op, bucket, key string, ch sim.Charger) error {
	s.mu.Lock()
	if s.failures > 0 {
		s.failures--
		s.mu.Unlock()
		s.meter.Add("faults_injected", 1)
		s.counters().faults.Add(1)
		return fmt.Errorf("%w: injected %s %s/%s (FailNext)", ErrTransient, op, bucket, key)
	}
	if s.failMatchN > 0 && strings.Contains(key, s.failMatch) {
		s.failMatchN--
		s.mu.Unlock()
		s.meter.Add("faults_injected", 1)
		s.counters().faults.Add(1)
		return fmt.Errorf("%w: injected %s %s/%s (FailNextMatching %q)", ErrTransient, op, bucket, key, s.failMatch)
	}
	in := s.inj
	s.mu.Unlock()
	if in == nil {
		return nil
	}
	return in.decide(op, bucket, key, ch, s)
}
