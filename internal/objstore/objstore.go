// Package objstore implements the cloud object-store substrate that
// BigLake tables, Object tables, BLMT, and Omni run against. It is an
// in-memory simulator of GCS / S3 / Azure Blob with the API behaviour
// the paper's results depend on:
//
//   - paginated LIST calls that are slow on large buckets (§3.3, §4.1),
//   - per-request overhead on GET/HEAD, so footer-peeking every data
//     file is expensive (§3.3),
//   - conditional PUTs (generation match) with a bounded per-object
//     mutation rate, the property that caps commit throughput of
//     object-store-committed table formats (§3.5),
//   - signed URLs for delegating object access outside the warehouse
//     (§4.1),
//   - per-bucket access control, exercised by the delegated access
//     model (§3.1), and
//   - egress metering for cross-cloud reads (§5.6).
//
// All remote latency is charged to a sim.Clock; data transfer is also
// performed for real so CPU-bound consumers (scans) behave
// authentically.
package objstore

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"biglake/internal/obs"
	"biglake/internal/sim"
)

// Common errors returned by Store operations.
var (
	ErrNoSuchBucket     = errors.New("objstore: no such bucket")
	ErrNoSuchObject     = errors.New("objstore: no such object")
	ErrBucketExists     = errors.New("objstore: bucket already exists")
	ErrPreconditionFail = errors.New("objstore: generation precondition failed")
	ErrAccessDenied     = errors.New("objstore: access denied")
	ErrBadSignedURL     = errors.New("objstore: invalid or expired signed URL")
	// ErrTransient is the injected fault returned by FailNext, standing
	// in for 5xx/timeout responses from a real object store.
	ErrTransient = errors.New("objstore: transient backend error (injected)")
)

// Perm is an access level on a bucket.
type Perm int

// Permission levels, ordered: read < write < admin.
const (
	PermNone Perm = iota
	PermRead
	PermWrite
	PermAdmin
)

// Credential identifies a caller to the object store. In production
// this is a cloud IAM identity; here it is the principal name minted
// by internal/security (a user or a connection service account).
type Credential struct {
	Principal string
	// Scope, when non-empty, restricts the credential to objects whose
	// key has one of these prefixes; used by Omni per-query scoped
	// credentials (§5.3.1).
	Scope []string
}

// AllowsKey reports whether the credential's scope (if any) covers key.
func (c Credential) AllowsKey(key string) bool {
	if len(c.Scope) == 0 {
		return true
	}
	for _, p := range c.Scope {
		if strings.HasPrefix(key, p) {
			return true
		}
	}
	return false
}

// WithScope returns a copy of the credential narrowed to the given key
// prefixes. Scoping can only narrow: if the credential already has a
// scope, the new scope entries must fall under it.
func (c Credential) WithScope(prefixes ...string) (Credential, error) {
	for _, p := range prefixes {
		if !c.AllowsKey(p) {
			return Credential{}, fmt.Errorf("objstore: scope %q escapes existing credential scope", p)
		}
	}
	out := c
	out.Scope = append([]string(nil), prefixes...)
	return out, nil
}

// ObjectInfo is the metadata record for one object.
type ObjectInfo struct {
	Key         string
	Size        int64
	ContentType string
	Created     time.Duration // simulated creation time
	Updated     time.Duration // simulated last-update time
	Generation  int64
	Custom      map[string]string
}

type object struct {
	info ObjectInfo
	data []byte
	// prev retains the immediately previous version after a conditional
	// overwrite — one deep, on purpose — so the chaos harness can model
	// a stale read: an eventually-consistent replica serving the old
	// generation's bytes with the old generation's metadata.
	prev *object
}

type bucket struct {
	name    string
	acl     map[string]Perm
	objects map[string]*object
	// sorted key index, maintained lazily
	keys      []string
	keysDirty bool
	// lastMutation tracks the most recent conditional overwrite per
	// key to enforce the bounded mutation rate of §3.5.
	lastMutation map[string]time.Duration
}

func (b *bucket) sortedKeys() []string {
	if b.keysDirty {
		b.keys = b.keys[:0]
		for k := range b.objects {
			b.keys = append(b.keys, k)
		}
		sort.Strings(b.keys)
		b.keysDirty = false
	}
	return b.keys
}

// Store is one cloud's object store (e.g. the GCS instance in region
// us-central1, or S3 in us-east-1).
type Store struct {
	profile sim.CloudProfile
	clock   *sim.Clock
	meter   *sim.Meter
	obs     atomic.Pointer[obs.Registry]
	oc      atomic.Pointer[storeCounters]

	mu         sync.Mutex
	buckets    map[string]*bucket
	urls       map[string]signedGrant
	urlSeq     int64
	failures   int64
	failMatch  string
	failMatchN int64
	inj        *injector
}

// storeCounters holds the store's pre-resolved registry counters so the
// data path pays one atomic add per metric, never a map lookup.
type storeCounters struct {
	getCount, getBytes   *obs.Counter
	putCount, putBytes   *obs.Counter
	listCount, headCount *obs.Counter
	deleteCount          *obs.Counter
	preconditionFailures *obs.Counter
	faults, slowdowns    *obs.Counter
	corruptions          *obs.Counter
}

func resolveStoreCounters(r *obs.Registry) *storeCounters {
	return &storeCounters{
		getCount:             r.Counter("objstore.get.count"),
		getBytes:             r.Counter("objstore.get.bytes"),
		putCount:             r.Counter("objstore.put.count"),
		putBytes:             r.Counter("objstore.put.bytes"),
		listCount:            r.Counter("objstore.list.count"),
		headCount:            r.Counter("objstore.head.count"),
		deleteCount:          r.Counter("objstore.delete.count"),
		preconditionFailures: r.Counter("objstore.precondition_failures"),
		faults:               r.Counter("objstore.faults.injected"),
		slowdowns:            r.Counter("objstore.slowdowns.injected"),
		corruptions:          r.Counter("objstore.corruptions.injected"),
	}
}

// FailNext injects transient failures into the next n data-path
// operations (GET/PUT/LIST/HEAD/DELETE), for failure-propagation
// tests. Injection is consumed per operation, whichever kind arrives
// first. For probabilistic chaos profiles see InjectFaults.
func (s *Store) FailNext(n int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.failures = int64(n)
}

// FailNextMatching injects transient failures into the next n
// data-path operations whose key contains substr, letting tests target
// one protocol step (e.g. the journal seal PUT) while the surrounding
// traffic proceeds. Independent of FailNext and InjectFaults.
func (s *Store) FailNextMatching(substr string, n int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.failMatch = substr
	s.failMatchN = int64(n)
}

type signedGrant struct {
	bucket  string
	key     string
	expires time.Duration
}

// New returns an empty Store for the given cloud profile, charging
// simulated latency to clock and recording request/byte counters on
// meter. meter may be nil.
func New(profile sim.CloudProfile, clock *sim.Clock, meter *sim.Meter) *Store {
	if meter == nil {
		meter = &sim.Meter{}
	}
	s := &Store{
		profile: profile,
		clock:   clock,
		meter:   meter,
		buckets: make(map[string]*bucket),
		urls:    make(map[string]signedGrant),
	}
	reg := obs.NewRegistry()
	s.obs.Store(reg)
	s.oc.Store(resolveStoreCounters(reg))
	return s
}

// Profile returns the cloud profile the store was built with.
func (s *Store) Profile() sim.CloudProfile { return s.profile }

// Clock returns the simulated clock the store charges.
func (s *Store) Clock() *sim.Clock { return s.clock }

// Meter returns the store's request/byte meter.
func (s *Store) Meter() *sim.Meter { return s.meter }

// Obs returns the store's metrics registry (per-op counters under
// "objstore.*" plus the "objstore.faults" event stream).
func (s *Store) Obs() *obs.Registry { return s.obs.Load() }

// UseObs points the store at a shared registry — experiments install
// one registry across engine, store, and metadata so one snapshot
// covers the whole query path. The swap is atomic so it is safe even
// with data-path traffic in flight.
func (s *Store) UseObs(r *obs.Registry) {
	if r == nil {
		return
	}
	s.obs.Store(r)
	s.oc.Store(resolveStoreCounters(r))
}

// counters returns the current pre-resolved registry handles.
func (s *Store) counters() *storeCounters { return s.oc.Load() }

// CreateBucket creates a bucket owned by the credential's principal.
func (s *Store) CreateBucket(cred Credential, name string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.buckets[name]; ok {
		return ErrBucketExists
	}
	s.buckets[name] = &bucket{
		name:         name,
		acl:          map[string]Perm{cred.Principal: PermAdmin},
		objects:      make(map[string]*object),
		lastMutation: make(map[string]time.Duration),
	}
	s.meter.Add("requests", 1)
	return nil
}

// Grant sets a principal's permission on a bucket. The caller must
// hold PermAdmin.
func (s *Store) Grant(cred Credential, bucketName, principal string, p Perm) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	b, ok := s.buckets[bucketName]
	if !ok {
		return ErrNoSuchBucket
	}
	if b.acl[cred.Principal] < PermAdmin {
		return ErrAccessDenied
	}
	b.acl[principal] = p
	return nil
}

func (s *Store) authorized(b *bucket, cred Credential, need Perm, key string) error {
	if b.acl[cred.Principal] < need {
		return fmt.Errorf("%w: principal %q needs %v on bucket %q", ErrAccessDenied, cred.Principal, need, b.name)
	}
	if key != "" && !cred.AllowsKey(key) {
		return fmt.Errorf("%w: key %q outside credential scope", ErrAccessDenied, key)
	}
	return nil
}

// Put writes an object unconditionally, creating or replacing it.
func (s *Store) Put(cred Credential, bucketName, key string, data []byte, contentType string) (ObjectInfo, error) {
	return s.put(cred, bucketName, key, data, contentType, -1, nil)
}

// PutWithMeta writes an object with custom metadata attributes.
func (s *Store) PutWithMeta(cred Credential, bucketName, key string, data []byte, contentType string, custom map[string]string) (ObjectInfo, error) {
	return s.put(cred, bucketName, key, data, contentType, -1, custom)
}

// PutIfGeneration writes an object only if its current generation
// matches ifGeneration (0 means "must not exist"). This is the atomic
// commit primitive open table formats rely on; the simulator enforces
// the per-object mutation-rate bound of §3.5 by pushing the simulated
// clock forward to the next allowed mutation slot when commits arrive
// faster than the store permits.
func (s *Store) PutIfGeneration(cred Credential, bucketName, key string, data []byte, contentType string, ifGeneration int64) (ObjectInfo, error) {
	return s.put(cred, bucketName, key, data, contentType, ifGeneration, nil)
}

func (s *Store) put(cred Credential, bucketName, key string, data []byte, contentType string, ifGeneration int64, custom map[string]string) (ObjectInfo, error) {
	if err := s.fault(OpPut, bucketName, key, s.clock); err != nil {
		return ObjectInfo{}, err
	}
	s.mu.Lock()
	b, ok := s.buckets[bucketName]
	if !ok {
		s.mu.Unlock()
		return ObjectInfo{}, ErrNoSuchBucket
	}
	if err := s.authorized(b, cred, PermWrite, key); err != nil {
		s.mu.Unlock()
		return ObjectInfo{}, err
	}

	existing := b.objects[key]
	if ifGeneration >= 0 {
		curGen := int64(0)
		if existing != nil {
			curGen = existing.info.Generation
		}
		if curGen != ifGeneration {
			s.mu.Unlock()
			s.meter.Add("requests", 1)
			s.meter.Add("precondition_failures", 1)
			oc := s.counters()
			oc.putCount.Add(1)
			oc.preconditionFailures.Add(1)
			// A failed conditional PUT still costs a round trip.
			s.clock.Advance(s.profile.PutOverhead)
			return ObjectInfo{}, fmt.Errorf("%w: have gen %d, want %d", ErrPreconditionFail, curGen, ifGeneration)
		}
		// Enforce the bounded mutation rate on overwrites of an
		// existing object (the transaction-log commit path).
		if existing != nil {
			last := b.lastMutation[key]
			earliest := last + s.profile.MutationInterval
			if now := s.clock.Now(); now < earliest {
				s.clock.AdvanceTo(earliest)
			}
			b.lastMutation[key] = s.clock.Now()
		}
	}

	gen := int64(1)
	if existing != nil {
		gen = existing.info.Generation + 1
	}
	cp := make([]byte, len(data))
	copy(cp, data)
	now := s.clock.Now()
	created := now
	if existing != nil {
		created = existing.info.Created
	}
	obj := &object{
		info: ObjectInfo{
			Key:         key,
			Size:        int64(len(data)),
			ContentType: contentType,
			Created:     created,
			Updated:     now,
			Generation:  gen,
			Custom:      custom,
		},
		data: cp,
	}
	if existing != nil {
		// Keep exactly one superseded version for stale-read injection;
		// drop anything older so overwrite chains stay O(1).
		obj.prev = &object{info: existing.info, data: existing.data}
	}
	if existing == nil {
		b.keysDirty = true
	}
	b.objects[key] = obj
	info := obj.info
	s.mu.Unlock()

	s.meter.Add("requests", 1)
	s.meter.Add("put_bytes", int64(len(data)))
	oc := s.counters()
	oc.putCount.Add(1)
	oc.putBytes.Add(int64(len(data)))
	s.clock.Advance(s.profile.PutOverhead + sim.StreamTime(int64(len(data)), s.profile.WritePerMB))
	return info, nil
}

// Get returns the full contents and metadata of an object.
func (s *Store) Get(cred Credential, bucketName, key string) ([]byte, ObjectInfo, error) {
	return s.getRange(s.clock, cred, bucketName, key, 0, -1)
}

// GetOn is Get with latency charged to ch (a parallel worker track or
// the global clock).
func (s *Store) GetOn(ch sim.Charger, cred Credential, bucketName, key string) ([]byte, ObjectInfo, error) {
	return s.getRange(ch, cred, bucketName, key, 0, -1)
}

// GetRange returns length bytes starting at offset (length < 0 means
// "to end"). Footer reads of columnar files use this so they pay only
// request overhead plus the footer bytes, like a real ranged GET.
func (s *Store) GetRange(cred Credential, bucketName, key string, offset, length int64) ([]byte, ObjectInfo, error) {
	return s.getRange(s.clock, cred, bucketName, key, offset, length)
}

// GetRangeOn is GetRange charged to ch.
func (s *Store) GetRangeOn(ch sim.Charger, cred Credential, bucketName, key string, offset, length int64) ([]byte, ObjectInfo, error) {
	return s.getRange(ch, cred, bucketName, key, offset, length)
}

func (s *Store) getRange(ch sim.Charger, cred Credential, bucketName, key string, offset, length int64) ([]byte, ObjectInfo, error) {
	if err := s.fault(OpGet, bucketName, key, ch); err != nil {
		return nil, ObjectInfo{}, err
	}
	s.mu.Lock()
	var cor corruption
	corrupt := false
	if in := s.inj; in != nil {
		cor, corrupt = in.corruptDecide(OpGet, bucketName, key)
	}
	b, ok := s.buckets[bucketName]
	if !ok {
		s.mu.Unlock()
		return nil, ObjectInfo{}, ErrNoSuchBucket
	}
	if err := s.authorized(b, cred, PermRead, key); err != nil {
		s.mu.Unlock()
		return nil, ObjectInfo{}, err
	}
	obj, ok := b.objects[key]
	if !ok {
		s.mu.Unlock()
		s.meter.Add("requests", 1)
		s.counters().getCount.Add(1)
		return nil, ObjectInfo{}, fmt.Errorf("%w: %s/%s", ErrNoSuchObject, bucketName, key)
	}
	src := obj
	if corrupt && cor.kind == "stale" {
		if obj.prev != nil {
			src = obj.prev
		} else {
			// Never-overwritten object: no stale version exists, degrade
			// the event to a bit flip so the injection rate holds.
			cor.kind = "bitflip"
		}
	}
	if offset < 0 {
		offset = 0
	}
	if offset > int64(len(src.data)) {
		offset = int64(len(src.data))
	}
	end := int64(len(src.data))
	if length >= 0 && offset+length < end {
		end = offset + length
	}
	data := make([]byte, end-offset)
	copy(data, src.data[offset:end])
	info := src.info
	s.mu.Unlock()

	if corrupt {
		applied := ""
		switch cor.kind {
		case "bitflip":
			if len(data) > 0 {
				bit := int(cor.pos * float64(len(data)*8))
				data[bit/8] ^= 1 << (bit % 8)
				applied = "corrupt:bitflip"
			}
		case "truncate":
			if len(data) > 0 {
				data = data[:int(cor.pos*float64(len(data)))]
				applied = "corrupt:truncate"
			}
		case "stale":
			applied = "corrupt:stale"
		}
		if applied != "" {
			s.recordFault(FaultRecord{Op: OpGet, Bucket: bucketName, Key: key, Call: cor.call, Kind: applied})
		}
	}

	s.meter.Add("requests", 1)
	s.meter.Add("get_bytes", int64(len(data)))
	oc := s.counters()
	oc.getCount.Add(1)
	oc.getBytes.Add(int64(len(data)))
	ch.Charge(s.profile.GetFirstByte + sim.StreamTime(int64(len(data)), s.profile.ReadPerMB))
	return data, info, nil
}

// Head returns object metadata without the body.
func (s *Store) Head(cred Credential, bucketName, key string) (ObjectInfo, error) {
	return s.HeadOn(s.clock, cred, bucketName, key)
}

// HeadOn is Head charged to ch.
func (s *Store) HeadOn(ch sim.Charger, cred Credential, bucketName, key string) (ObjectInfo, error) {
	if err := s.fault(OpHead, bucketName, key, ch); err != nil {
		return ObjectInfo{}, err
	}
	s.mu.Lock()
	b, ok := s.buckets[bucketName]
	if !ok {
		s.mu.Unlock()
		return ObjectInfo{}, ErrNoSuchBucket
	}
	if err := s.authorized(b, cred, PermRead, key); err != nil {
		s.mu.Unlock()
		return ObjectInfo{}, err
	}
	obj, ok := b.objects[key]
	if !ok {
		s.mu.Unlock()
		s.meter.Add("requests", 1)
		s.counters().headCount.Add(1)
		return ObjectInfo{}, fmt.Errorf("%w: %s/%s", ErrNoSuchObject, bucketName, key)
	}
	info := obj.info
	s.mu.Unlock()
	s.meter.Add("requests", 1)
	s.counters().headCount.Add(1)
	ch.Charge(s.profile.HeadLatency)
	return info, nil
}

// Delete removes an object. Deleting a missing object is an error, as
// on real stores.
func (s *Store) Delete(cred Credential, bucketName, key string) error {
	if err := s.fault(OpDelete, bucketName, key, s.clock); err != nil {
		return err
	}
	s.mu.Lock()
	b, ok := s.buckets[bucketName]
	if !ok {
		s.mu.Unlock()
		return ErrNoSuchBucket
	}
	if err := s.authorized(b, cred, PermWrite, key); err != nil {
		s.mu.Unlock()
		return err
	}
	if _, ok := b.objects[key]; !ok {
		s.mu.Unlock()
		return fmt.Errorf("%w: %s/%s", ErrNoSuchObject, bucketName, key)
	}
	delete(b.objects, key)
	delete(b.lastMutation, key)
	b.keysDirty = true
	s.mu.Unlock()
	s.meter.Add("requests", 1)
	s.counters().deleteCount.Add(1)
	s.clock.Advance(s.profile.DeleteLatency)
	return nil
}

// ListPage is one page of LIST results.
type ListPage struct {
	Objects   []ObjectInfo
	NextToken string
}

// List returns one page of objects with the given key prefix, starting
// after pageToken (empty for the first page). Each page costs one
// LIST round trip of simulated latency — the property that makes
// listing millions of objects "inherently slow" (§3.3).
func (s *Store) List(cred Credential, bucketName, prefix, pageToken string) (ListPage, error) {
	return s.ListOn(s.clock, cred, bucketName, prefix, pageToken)
}

// ListOn is List charged to ch.
func (s *Store) ListOn(ch sim.Charger, cred Credential, bucketName, prefix, pageToken string) (ListPage, error) {
	if err := s.fault(OpList, bucketName, prefix, ch); err != nil {
		return ListPage{}, err
	}
	s.mu.Lock()
	b, ok := s.buckets[bucketName]
	if !ok {
		s.mu.Unlock()
		return ListPage{}, ErrNoSuchBucket
	}
	if err := s.authorized(b, cred, PermRead, ""); err != nil {
		s.mu.Unlock()
		return ListPage{}, err
	}
	keys := b.sortedKeys()
	start := sort.SearchStrings(keys, prefix)
	if pageToken != "" {
		start = sort.SearchStrings(keys, pageToken)
		for start < len(keys) && keys[start] <= pageToken {
			start++
		}
	}
	page := ListPage{}
	for i := start; i < len(keys) && len(page.Objects) < s.profile.ListPageSize; i++ {
		k := keys[i]
		if !strings.HasPrefix(k, prefix) {
			break
		}
		page.Objects = append(page.Objects, b.objects[k].info)
	}
	if n := len(page.Objects); n == s.profile.ListPageSize {
		last := page.Objects[n-1].Key
		// More pages only if another matching key exists.
		idx := sort.SearchStrings(keys, last) + 1
		if idx < len(keys) && strings.HasPrefix(keys[idx], prefix) {
			page.NextToken = last
		}
	}
	s.mu.Unlock()

	s.meter.Add("requests", 1)
	s.meter.Add("list_pages", 1)
	s.counters().listCount.Add(1)
	ch.Charge(s.profile.ListPageLatency)
	return page, nil
}

// ListAll drains every page for a prefix, paying full pagination cost.
func (s *Store) ListAll(cred Credential, bucketName, prefix string) ([]ObjectInfo, error) {
	var out []ObjectInfo
	token := ""
	for {
		page, err := s.List(cred, bucketName, prefix, token)
		if err != nil {
			return nil, err
		}
		out = append(out, page.Objects...)
		if page.NextToken == "" {
			return out, nil
		}
		token = page.NextToken
	}
}

// SignURL mints a signed URL granting bearer access to one object for
// ttl of simulated time (§4.1). The caller must itself have read
// access.
func (s *Store) SignURL(cred Credential, bucketName, key string, ttl time.Duration) (string, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	b, ok := s.buckets[bucketName]
	if !ok {
		return "", ErrNoSuchBucket
	}
	if err := s.authorized(b, cred, PermRead, key); err != nil {
		return "", err
	}
	if _, ok := b.objects[key]; !ok {
		return "", fmt.Errorf("%w: %s/%s", ErrNoSuchObject, bucketName, key)
	}
	s.urlSeq++
	url := fmt.Sprintf("signed://%s/%s/%s?sig=%d", s.profile.Name, bucketName, key, s.urlSeq)
	s.urls[url] = signedGrant{bucket: bucketName, key: key, expires: s.clock.Now() + ttl}
	return url, nil
}

// Fetch redeems a signed URL without any credential — the bearer-token
// path used by remote functions and first-party model services.
func (s *Store) Fetch(url string) ([]byte, ObjectInfo, error) {
	s.mu.Lock()
	grant, ok := s.urls[url]
	if !ok || s.clock.Now() > grant.expires {
		s.mu.Unlock()
		return nil, ObjectInfo{}, ErrBadSignedURL
	}
	b := s.buckets[grant.bucket]
	if b == nil {
		s.mu.Unlock()
		return nil, ObjectInfo{}, ErrNoSuchBucket
	}
	obj, ok := b.objects[grant.key]
	if !ok {
		s.mu.Unlock()
		return nil, ObjectInfo{}, fmt.Errorf("%w: %s/%s", ErrNoSuchObject, grant.bucket, grant.key)
	}
	data := make([]byte, len(obj.data))
	copy(data, obj.data)
	info := obj.info
	s.mu.Unlock()
	s.meter.Add("requests", 1)
	s.meter.Add("get_bytes", int64(len(data)))
	oc := s.counters()
	oc.getCount.Add(1)
	oc.getBytes.Add(int64(len(data)))
	s.clock.Advance(s.profile.GetFirstByte + sim.StreamTime(int64(len(data)), s.profile.ReadPerMB))
	return data, info, nil
}

// FlipStoredBit flips one bit of an object's stored body in place,
// without touching generation, size, or timestamps — simulated at-rest
// bit rot. Unlike FaultProfile corruption (which damages responses in
// flight) this damages the durable copy, so every future read returns
// the same wrong bytes until a repair rewrites the object. Harness
// helper for scrubber/repair experiments, not a cloud API.
func (s *Store) FlipStoredBit(bucketName, key string, bit int64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	b, ok := s.buckets[bucketName]
	if !ok {
		return ErrNoSuchBucket
	}
	obj, ok := b.objects[key]
	if !ok {
		return fmt.Errorf("%w: %s/%s", ErrNoSuchObject, bucketName, key)
	}
	total := int64(len(obj.data)) * 8
	if total == 0 {
		return fmt.Errorf("objstore: cannot flip a bit of empty object %s/%s", bucketName, key)
	}
	bit = ((bit % total) + total) % total
	// The body may be aliased by a prev-version retained elsewhere;
	// re-copy before damaging so only this object's bytes rot.
	cp := make([]byte, len(obj.data))
	copy(cp, obj.data)
	cp[bit/8] ^= 1 << uint(bit%8)
	obj.data = cp
	return nil
}

// ObjectCount returns the number of objects with the prefix without
// charging API latency; a test/bookkeeping helper, not a cloud API.
func (s *Store) ObjectCount(bucketName, prefix string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	b, ok := s.buckets[bucketName]
	if !ok {
		return 0
	}
	n := 0
	for k := range b.objects {
		if strings.HasPrefix(k, prefix) {
			n++
		}
	}
	return n
}
