package scrub

import (
	"fmt"
	"testing"

	"biglake/internal/bigmeta"
	"biglake/internal/catalog"
	"biglake/internal/colfmt"
	"biglake/internal/objstore"
	"biglake/internal/obs"
	"biglake/internal/security"
	"biglake/internal/sim"
	"biglake/internal/vector"
)

const scrubAdmin = security.Principal("admin@corp")

type world struct {
	clock *sim.Clock
	store *objstore.Store
	cat   *catalog.Catalog
	auth  *security.Authority
	log   *bigmeta.Log
	cred  objstore.Credential
	sizes map[string]int64 // key -> stored size
}

// newWorld builds one Native table ds.t with nFiles committed files.
func newWorld(t *testing.T, nFiles int) *world {
	t.Helper()
	w := &world{clock: sim.NewClock(), sizes: map[string]int64{}}
	w.store = objstore.New(sim.GCP, w.clock, nil)
	w.cred = objstore.Credential{Principal: "sa-lake@corp"}
	if err := w.store.CreateBucket(w.cred, "lake"); err != nil {
		t.Fatal(err)
	}
	w.cat = catalog.New()
	if err := w.cat.CreateDataset(catalog.Dataset{Name: "ds", Region: "gcp-us", Cloud: "gcp"}); err != nil {
		t.Fatal(err)
	}
	w.auth = security.NewAuthority("secret", scrubAdmin)
	if err := w.auth.RegisterConnection(scrubAdmin, security.Connection{
		Name: "lake-conn", ServiceAccount: w.cred, Cloud: "gcp",
	}); err != nil {
		t.Fatal(err)
	}
	w.log = bigmeta.NewLog(w.clock, nil)
	schema := vector.NewSchema(vector.Field{Name: "x", Type: vector.Int64})
	if err := w.cat.CreateTable(catalog.Table{
		Dataset: "ds", Name: "t", Type: catalog.Native, Schema: schema,
		Cloud: "gcp", Bucket: "lake", Prefix: "t/", Connection: "lake-conn",
	}); err != nil {
		t.Fatal(err)
	}
	var entries []bigmeta.FileEntry
	for i := 0; i < nFiles; i++ {
		// Identical rows in every file, so all stored files have the
		// same size and byte budgets split the corpus predictably.
		bl := vector.NewBuilder(schema)
		for r := 0; r < 50; r++ {
			bl.Append(vector.IntValue(int64(r)))
		}
		file, err := colfmt.WriteFile(bl.Build(), colfmt.WriterOptions{})
		if err != nil {
			t.Fatal(err)
		}
		key := fmt.Sprintf("t/data/f%03d.blk", i)
		info, err := w.store.Put(w.cred, "lake", key, file, "application/x-blk")
		if err != nil {
			t.Fatal(err)
		}
		w.sizes[key] = info.Size
		entries = append(entries, bigmeta.FileEntry{
			Bucket: "lake", Key: key, Size: info.Size,
			Generation: info.Generation, RowCount: 50,
		})
	}
	if _, err := w.log.Commit("loader", map[string]bigmeta.TableDelta{"ds.t": {Added: entries}}); err != nil {
		t.Fatal(err)
	}
	return w
}

func (w *world) scrubber(budget int64) (*Scrubber, *obs.Registry) {
	reg := obs.NewRegistry()
	return &Scrubber{
		Catalog: w.cat, Auth: w.auth, Log: w.log, Clock: w.clock,
		Stores: map[string]*objstore.Store{"gcp": w.store},
		Obs:    reg, Principal: string(scrubAdmin), BytesPerPass: budget,
	}, reg
}

// TestScrubCleanPassVerifiesEverything: an unbudgeted pass over a
// healthy table verifies every live file and finds nothing.
func TestScrubCleanPassVerifiesEverything(t *testing.T) {
	w := newWorld(t, 4)
	s, reg := w.scrubber(0)
	rep, err := s.Pass([]string{"ds.t"})
	if err != nil {
		t.Fatal(err)
	}
	if rep.FilesVerified != 4 || rep.CorruptFound != 0 || rep.Exhausted {
		t.Fatalf("report = %+v", rep)
	}
	var want int64
	for _, n := range w.sizes {
		want += n
	}
	if rep.BytesVerified != want {
		t.Fatalf("bytes verified = %d, want %d", rep.BytesVerified, want)
	}
	snap := reg.Snapshot()
	if snap.Counters["integrity.scrub.passes"] != 1 || snap.Counters["integrity.scrub.files"] != 4 {
		t.Fatalf("counters = %v", snap.Counters)
	}
}

// TestScrubBudgetStopsAndResumes: a byte-budgeted pass stops mid-walk,
// and the next pass resumes at the cursor so two passes cover the
// whole corpus exactly once.
func TestScrubBudgetStopsAndResumes(t *testing.T) {
	w := newWorld(t, 4)
	budget := w.sizes["t/data/f000.blk"] + w.sizes["t/data/f001.blk"]
	s, reg := w.scrubber(budget)

	first, err := s.Pass([]string{"ds.t"})
	if err != nil {
		t.Fatal(err)
	}
	if !first.Exhausted || first.FilesVerified != 2 {
		t.Fatalf("first pass = %+v, want 2 files then budget stop", first)
	}
	second, err := s.Pass([]string{"ds.t"})
	if err != nil {
		t.Fatal(err)
	}
	if second.FilesVerified != 2 {
		t.Fatalf("second pass = %+v, want the remaining 2 files", second)
	}
	if got := first.FilesVerified + second.FilesVerified; got != 4 {
		t.Fatalf("passes covered %d of 4 files", got)
	}
	if reg.Snapshot().Counters["integrity.scrub.budget_stops"] != 1 {
		t.Fatal("budget stop not counted")
	}
	// The cursor cleared on the completed walk: a third pass starts over.
	third, err := s.Pass([]string{"ds.t"})
	if err != nil {
		t.Fatal(err)
	}
	if third.FilesVerified != 2 || !third.Exhausted {
		t.Fatalf("third pass = %+v, want a fresh budgeted walk", third)
	}
}

// TestScrubQuarantinesDurableDamage: a bit flipped at rest fails both
// the first verify and the confirming re-fetch, so the scrubber
// quarantines the file; the next pass skips it without re-reading.
func TestScrubQuarantinesDurableDamage(t *testing.T) {
	w := newWorld(t, 3)
	if err := w.store.FlipStoredBit("lake", "t/data/f001.blk", 99); err != nil {
		t.Fatal(err)
	}
	s, reg := w.scrubber(0)
	rep, err := s.Pass([]string{"ds.t"})
	if err != nil {
		t.Fatal(err)
	}
	if rep.CorruptFound != 1 || rep.Quarantined != 1 || rep.FilesVerified != 2 {
		t.Fatalf("report = %+v", rep)
	}
	mark, ok := w.log.IsQuarantined("ds.t", "t/data/f001.blk")
	if !ok || mark.Source != "scrub" {
		t.Fatalf("quarantine mark = %+v ok=%v", mark, ok)
	}
	snap := reg.Snapshot()
	if snap.Counters["integrity.detected.scrub"] < 2 || snap.Counters["integrity.quarantines"] != 1 {
		t.Fatalf("counters = %v", snap.Counters)
	}

	again, err := s.Pass([]string{"ds.t"})
	if err != nil {
		t.Fatal(err)
	}
	if again.FilesSkipped != 1 || again.CorruptFound != 0 || again.FilesVerified != 2 {
		t.Fatalf("second pass = %+v, want the quarantined file skipped", again)
	}
}
