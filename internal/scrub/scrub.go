// Package scrub implements the background integrity scrubber: a
// service that walks the live file set of tables, re-reads each object,
// and verifies it end to end — generation against the snapshot's pinned
// generation, length against the object's reported size, and every
// colfmt chunk and footer CRC. Corruption that survives one fresh
// re-fetch is durable damage, so the scrubber quarantines the file in
// the transaction log for the repair path (blmt.Repair) to restore.
//
// Scrubbing competes with foreground queries for object-store I/O, so
// each pass runs under a byte budget: a pass that exhausts its budget
// stops and remembers where it was, and the next pass resumes there,
// so successive budgeted passes still cover the whole corpus.
package scrub

import (
	"errors"
	"fmt"
	"sort"

	"biglake/internal/bigmeta"
	"biglake/internal/catalog"
	"biglake/internal/colfmt"
	"biglake/internal/integrity"
	"biglake/internal/objstore"
	"biglake/internal/obs"
	"biglake/internal/resilience"
	"biglake/internal/security"
	"biglake/internal/sim"
)

// Scrubber verifies stored table data against its checksums.
type Scrubber struct {
	Catalog *catalog.Catalog
	Auth    *security.Authority
	Log     *bigmeta.Log
	Clock   *sim.Clock
	Stores  map[string]*objstore.Store

	// Res retries transient fetch failures; corruption is classified
	// Corrupt and never blindly retried. Nil behaves like NoRetry.
	Res *resilience.Policy
	// Obs receives integrity.scrub.* counters and detection events
	// (nil-safe).
	Obs *obs.Registry
	// Principal signs quarantine commits.
	Principal string
	// BytesPerPass caps how many object bytes one Pass may read
	// (0 = unlimited). A pass over budget stops mid-walk and the next
	// pass resumes at the same table and key.
	BytesPerPass int64

	// Resume cursor: the pass stopped just before (cursorTable,
	// cursorKey). Empty = start from the beginning.
	cursorTable, cursorKey string
}

// Report summarizes one scrub pass.
type Report struct {
	TablesVisited int
	FilesVerified int
	BytesVerified int64
	// FilesSkipped counts files already quarantined (not re-read).
	FilesSkipped int
	// CorruptFound counts files whose stored copy failed verification
	// (after the one fresh re-fetch); each is quarantined.
	CorruptFound int
	Quarantined  int
	// Recovered counts fetches that verified clean on the re-fetch:
	// the corruption was in flight, not at rest.
	Recovered int
	// Exhausted reports the pass stopped on its byte budget; the next
	// Pass resumes where this one stopped.
	Exhausted bool
}

func (s *Scrubber) store(cloud string) (*objstore.Store, error) {
	st, ok := s.Stores[cloud]
	if !ok {
		return nil, fmt.Errorf("scrub: no object store for cloud %q", cloud)
	}
	return st, nil
}

// verifyObject fetches one live file and verifies it end to end.
// Verification runs inside the retry op so the policy classifies a
// bad read as Corrupt and surfaces it instead of blindly retrying the
// same source.
func (s *Scrubber) verifyObject(store *objstore.Store, cred objstore.Credential, table string, f bigmeta.FileEntry) (int64, error) {
	var n int64
	err := s.Res.Do(s.Clock, nil, "GET "+f.Bucket+"/"+f.Key, func() error {
		data, info, ge := store.Get(cred, f.Bucket, f.Key)
		if ge != nil {
			return ge
		}
		n = int64(len(data))
		if f.Generation > 0 && info.Generation != f.Generation {
			return &integrity.Error{Source: "objstore.stale", Table: table, Bucket: f.Bucket, Key: f.Key,
				Detail: fmt.Sprintf("got generation %d, snapshot pinned %d", info.Generation, f.Generation)}
		}
		if int64(len(data)) != info.Size {
			return &integrity.Error{Source: "objstore.truncated", Table: table, Bucket: f.Bucket, Key: f.Key,
				Detail: fmt.Sprintf("got %d bytes, object reports %d", len(data), info.Size)}
		}
		if verr := colfmt.Verify(data); verr != nil {
			return integrity.Annotate(verr, table, f.Bucket, f.Key)
		}
		return nil
	})
	return n, err
}

// Pass scrubs the named tables' current snapshots under the byte
// budget. Tables are visited in sorted order so budgeted passes
// resume deterministically.
func (s *Scrubber) Pass(tables []string) (Report, error) {
	var rep Report
	sorted := append([]string(nil), tables...)
	sort.Strings(sorted)
	s.Obs.Counter("integrity.scrub.passes").Add(1)

	// Rotate the walk so it starts at the resume cursor.
	start := 0
	if s.cursorTable != "" {
		for i, tn := range sorted {
			if tn >= s.cursorTable {
				start = i
				break
			}
		}
	}
	for off := range sorted {
		tableName := sorted[(start+off)%len(sorted)]
		t, err := s.Catalog.Table(tableName)
		if err != nil {
			return rep, err
		}
		store, err := s.store(t.Cloud)
		if err != nil {
			return rep, err
		}
		conn, err := s.Auth.Connection(t.Connection)
		if err != nil {
			return rep, err
		}
		cred := conn.ServiceAccount
		files, _, err := s.Log.Snapshot(tableName, -1)
		if err != nil {
			return rep, err
		}
		sort.Slice(files, func(i, j int) bool { return files[i].Key < files[j].Key })
		rep.TablesVisited++
		for _, f := range files {
			if off == 0 && tableName == s.cursorTable && f.Key < s.cursorKey {
				continue // already covered by the previous pass
			}
			if _, qok := s.Log.IsQuarantined(tableName, f.Key); qok {
				rep.FilesSkipped++
				continue
			}
			if s.BytesPerPass > 0 && rep.BytesVerified+f.Size > s.BytesPerPass && rep.FilesVerified > 0 {
				s.cursorTable, s.cursorKey = tableName, f.Key
				rep.Exhausted = true
				s.Obs.Counter("integrity.scrub.budget_stops").Add(1)
				return rep, nil
			}
			n, verr := s.verifyObject(store, cred, tableName, f)
			rep.BytesVerified += n
			s.Obs.Counter("integrity.scrub.bytes").Add(n)
			if verr != nil && errors.Is(verr, integrity.ErrCorrupt) {
				s.Obs.Counter("integrity.detected.scrub").Add(1)
				s.Obs.Event("integrity.detections", verr.Error())
				// One fresh re-fetch separates a sick response from a
				// sick stored copy.
				n2, verr2 := s.verifyObject(store, cred, tableName, f)
				rep.BytesVerified += n2
				s.Obs.Counter("integrity.scrub.bytes").Add(n2)
				switch {
				case verr2 == nil:
					rep.Recovered++
					s.Obs.Counter("integrity.recovered.refetch").Add(1)
					verr = nil
				case errors.Is(verr2, integrity.ErrCorrupt):
					s.Obs.Counter("integrity.detected.scrub").Add(1)
					s.Obs.Event("integrity.detections", verr2.Error())
					rep.CorruptFound++
					if _, qerr := s.Log.QuarantineFile(s.Principal, tableName, bigmeta.QuarantineMark{
						Key:    f.Key,
						Source: "scrub",
						Reason: verr2.Error(),
						Time:   s.Clock.Now(),
					}); qerr != nil {
						return rep, qerr
					}
					rep.Quarantined++
					s.Obs.Counter("integrity.quarantines").Add(1)
					s.Obs.Event("integrity.warnings",
						fmt.Sprintf("scrub quarantined %s/%s (table %s): %v", f.Bucket, f.Key, tableName, verr2))
					// Quarantined, not verified: continue with the next file.
					continue
				default:
					return rep, verr2
				}
			} else if verr != nil {
				return rep, verr
			}
			rep.FilesVerified++
			s.Obs.Counter("integrity.scrub.files").Add(1)
		}
	}
	// Full walk completed: clear the cursor so the next pass starts over.
	s.cursorTable, s.cursorKey = "", ""
	return rep, nil
}
