package exp

import (
	"fmt"
	"strings"
	"time"

	"biglake/internal/engine"
	"biglake/internal/obs"
)

// --- E16: observability — attributing E15's vectorized speedup with
// trace spans, and the scan cache's sim-I/O savings with the metrics
// registry ---

// E16Stage is one executor stage's wall time under both arms.
type E16Stage struct {
	Name       string
	Legacy     time.Duration
	Vectorized time.Duration
	Speedup    float64 // legacy/vectorized; 0 when vectorized is ~0
}

// E16Result attributes where E15's end-to-end speedup comes from. The
// stage table is read straight off the per-operator trace spans, so it
// is the EXPLAIN ANALYZE view of the same two runs; the cache section
// pairs per-scan-span simulated I/O with the registry's GET counter.
type E16Result struct {
	FactRows int

	// Wall-time attribution of legacy vs vectorized execution, by
	// operator stage (scan/join/aggregate/order_by).
	LegacyTotal     time.Duration
	VectorizedTotal time.Duration
	Speedup         float64
	Stages          []E16Stage

	// Scan-cache effect: cold (miss) vs warm (hit) run on one engine.
	// ScanSim is the summed simulated time of the scan spans; Gets is
	// the objstore.get.count registry delta for the run.
	ColdScanSim time.Duration
	WarmScanSim time.Duration
	ColdGets    int64
	WarmGets    int64
	CacheHits   int64
	CacheMisses int64
}

// e16StageNames orders the stage table; "scan" aggregates every
// "scan <table>" span.
var e16StageNames = []string{"scan", "filter", "join", "aggregate", "project", "order_by"}

// stageWall sums per-stage wall time over a query trace. Operator
// spans are direct children of "execute", so inclusive wall durations
// do not double-count across stages.
func stageWall(t *obs.Trace) map[string]time.Duration {
	out := map[string]time.Duration{}
	t.Root().Walk(func(s *obs.Span) {
		name := s.Name()
		switch {
		case strings.HasPrefix(name, "scan "):
			out["scan"] += s.WallDuration()
		case name == "filter" || name == "join" || name == "aggregate" ||
			name == "project" || name == "order_by":
			out[name] += s.WallDuration()
		}
	})
	return out
}

// scanSim sums the simulated time spent inside scan spans of a trace.
func scanSim(t *obs.Trace) time.Duration {
	var total time.Duration
	t.Root().Walk(func(s *obs.Span) {
		if strings.HasPrefix(s.Name(), "scan ") {
			total += s.SimDuration()
		}
	})
	return total
}

// RunE16 re-runs the E15 star join with tracing enabled and explains
// the speedup: which operator stages got faster under the typed-kernel
// path, and how much simulated I/O the scan cache removes.
func RunE16(factRows int) (E16Result, error) {
	const dimRows = 1024
	const factFiles = 8
	env, err := NewEnv(engine.DefaultOptions())
	if err != nil {
		return E16Result{}, err
	}
	if err := loadE15(env, factRows, dimRows, factFiles); err != nil {
		return E16Result{}, err
	}

	mkEngine := func(opts engine.Options) (*engine.Engine, *obs.Tracer) {
		eng := engine.New(env.Cat, env.Auth, env.Meta, env.Log, env.Clock, env.Engine.Stores, opts)
		eng.ManagedCred = env.Cred
		eng.UseObs(env.Obs)
		// Share the environment's tracer when one is installed (the
		// CLI's -trace flag) so its span file covers the measured
		// runs; queries are sequential, so Last() stays per-arm.
		tr := env.Engine.Tracer
		if tr == nil {
			tr = &obs.Tracer{Cap: 8}
		}
		eng.Tracer = tr
		return eng, tr
	}
	// traced runs one query and returns its span tree; a warm-up run
	// first keeps one-time metadata work out of the measured trace.
	traced := func(eng *engine.Engine, tr *obs.Tracer, id string, warm bool) (*obs.Trace, error) {
		if warm {
			if _, err := eng.Query(engine.NewContext(Admin, id+"-warm"), e15Query); err != nil {
				return nil, fmt.Errorf("e16 %s: %w", id, err)
			}
		}
		if _, err := eng.Query(engine.NewContext(Admin, id), e15Query); err != nil {
			return nil, fmt.Errorf("e16 %s: %w", id, err)
		}
		t := tr.Last()
		if t == nil {
			return nil, fmt.Errorf("e16 %s: no trace recorded", id)
		}
		return t, nil
	}

	out := E16Result{FactRows: factRows}
	base := engine.DefaultOptions()

	legacyOpts := base
	legacyOpts.RowAtATimeExec = true
	legEng, legTr := mkEngine(legacyOpts)
	legTrace, err := traced(legEng, legTr, "e16-legacy", true)
	if err != nil {
		return E16Result{}, err
	}
	vecEng, vecTr := mkEngine(base)
	vecTrace, err := traced(vecEng, vecTr, "e16-vectorized", true)
	if err != nil {
		return E16Result{}, err
	}

	legStages, vecStages := stageWall(legTrace), stageWall(vecTrace)
	for _, name := range e16StageNames {
		l, v := legStages[name], vecStages[name]
		if l == 0 && v == 0 {
			continue
		}
		row := E16Stage{Name: name, Legacy: l, Vectorized: v}
		if v > 0 {
			row.Speedup = float64(l) / float64(v)
		}
		out.Stages = append(out.Stages, row)
		out.LegacyTotal += l
		out.VectorizedTotal += v
	}
	if out.VectorizedTotal > 0 {
		out.Speedup = float64(out.LegacyTotal) / float64(out.VectorizedTotal)
	}

	// Scan-cache attribution: cold then warm on one cache-enabled
	// engine. No warm-up — the cold run IS the miss measurement. GET
	// deltas come off the store's registry (shared with env.Obs).
	cacheOpts := base
	cacheOpts.EnableScanCache = true
	cacheEng, cacheTr := mkEngine(cacheOpts)
	gets := func() int64 { return env.Store.Obs().Get("objstore.get.count") }

	pre := gets()
	coldTrace, err := traced(cacheEng, cacheTr, "e16-cache-cold", false)
	if err != nil {
		return E16Result{}, err
	}
	out.ColdGets = gets() - pre
	pre = gets()
	warmTrace, err := traced(cacheEng, cacheTr, "e16-cache-warm", false)
	if err != nil {
		return E16Result{}, err
	}
	out.WarmGets = gets() - pre
	out.ColdScanSim, out.WarmScanSim = scanSim(coldTrace), scanSim(warmTrace)
	out.CacheHits = cacheEng.Obs.Get("engine.scan.cache_hit")
	out.CacheMisses = cacheEng.Obs.Get("engine.scan.cache_miss")
	if out.CacheHits == 0 {
		return E16Result{}, fmt.Errorf("e16: warm run hit nothing (misses=%d)", out.CacheMisses)
	}
	if out.WarmScanSim > out.ColdScanSim {
		return E16Result{}, fmt.Errorf("e16: warm scan sim %v exceeds cold %v", out.WarmScanSim, out.ColdScanSim)
	}
	return out, nil
}
