package exp

import (
	"fmt"

	"biglake/internal/catalog"
	"biglake/internal/colfmt"
	"biglake/internal/engine"
	"biglake/internal/objstore"
	"biglake/internal/security"
	"biglake/internal/sparkle"
	"biglake/internal/vector"
)

// --- A2: governance placement ablation ---
//
// §3.2 argues for enforcing fine-grained controls inside the Read API
// trust boundary instead of trusting each engine to apply them
// client-side. This ablation quantifies the two placements on the same
// governed query: with client-side enforcement the raw rows (including
// every policy-filtered row and unmasked value) cross the wire to the
// untrusted engine, which then filters; with boundary enforcement only
// governed rows ship.

// A2Result compares governance placements.
type A2Result struct {
	TotalRows         int
	VisibleRows       int
	ClientSideBytes   int64
	BoundaryBytes     int64
	ExposureReduction float64
	// RawLeaked reports whether the client-side placement ever held
	// rows the policy forbids (always true — that is the point).
	RawLeaked bool
}

// RunA2 builds a governed table and reads it both ways.
func RunA2(rows int) (A2Result, error) {
	env, err := NewEnv(engine.DefaultOptions())
	if err != nil {
		return A2Result{}, err
	}
	analyst := security.Principal("analyst@corp")
	schema := vector.NewSchema(
		vector.Field{Name: "region", Type: vector.String},
		vector.Field{Name: "ssn", Type: vector.String},
	)
	bl := vector.NewBuilder(schema)
	for i := 0; i < rows; i++ {
		bl.Append(
			vector.StringValue([]string{"us", "eu", "jp", "br"}[i%4]),
			vector.StringValue(fmt.Sprintf("%09d", i)),
		)
	}
	file, err := colfmt.WriteFile(bl.Build(), colfmt.WriterOptions{})
	if err != nil {
		return A2Result{}, err
	}
	if _, err := env.Store.Put(env.Cred, "bench", "a2/p.blk", file, ""); err != nil {
		return A2Result{}, err
	}
	if err := env.Cat.CreateTable(catalog.Table{
		Dataset: "bench", Name: "a2", Type: catalog.BigLake, Schema: schema,
		Cloud: "gcp", Bucket: "bench", Prefix: "a2/", Connection: "conn", MetadataCaching: true,
	}); err != nil {
		return A2Result{}, err
	}
	env.Auth.GrantTable(Admin, "bench.a2", analyst, security.RoleViewer)
	env.Auth.AddRowPolicy(Admin, "bench.a2", security.RowPolicy{
		Name: "us", Grantees: map[security.Principal]bool{analyst: true},
		Filter: []colfmt.Predicate{{Column: "region", Op: vector.EQ, Value: vector.StringValue("us")}},
	})
	env.Auth.SetColumnPolicy(Admin, "bench.a2", security.ColumnPolicy{
		Column: "ssn", Allowed: map[security.Principal]bool{Admin: true}, Mask: vector.MaskLastFour,
	})

	// Client-side placement: the engine reads raw files with a bucket
	// credential and applies the policy itself (the status quo the
	// paper criticizes).
	user := objstore.Credential{Principal: string(analyst)}
	if err := env.Store.Grant(env.Cred, "bench", user.Principal, objstore.PermRead); err != nil {
		return A2Result{}, err
	}
	sessD := sparkle.NewSession(env.Clock, sparkle.Options{})
	raw, err := sessD.ReadFiles(env.Store, user, "bench", "a2/").Collect()
	if err != nil {
		return A2Result{}, err
	}
	clientBytes := int64(len(vector.EncodeBatch(raw, false)))
	// The client then filters — after already holding everything.
	mask := vector.CompareConst(raw.Column("region"), vector.EQ, vector.StringValue("us"))
	filtered, err := vector.Filter(raw, mask)
	if err != nil {
		return A2Result{}, err
	}

	// Boundary placement: the Read API ships only governed rows.
	sessA := sparkle.NewSession(env.Clock, sparkle.Options{})
	governed, err := sessA.ReadBigLake(env.Server, analyst, "bench.a2").Collect()
	if err != nil {
		return A2Result{}, err
	}
	boundaryBytes := sessA.Meter.Get("readapi_bytes")

	if governed.N != filtered.N {
		return A2Result{}, fmt.Errorf("placements disagree: boundary %d rows, client %d", governed.N, filtered.N)
	}
	out := A2Result{
		TotalRows:       rows,
		VisibleRows:     governed.N,
		ClientSideBytes: clientBytes,
		BoundaryBytes:   boundaryBytes,
		RawLeaked:       raw.N > filtered.N,
	}
	if boundaryBytes > 0 {
		out.ExposureReduction = float64(clientBytes) / float64(boundaryBytes)
	}
	return out, nil
}
