package exp

import (
	"fmt"
	"strings"
	"time"

	"biglake/internal/bigmeta"
	"biglake/internal/catalog"
	"biglake/internal/colfmt"
	"biglake/internal/engine"
	"biglake/internal/omni"
	"biglake/internal/security"
	"biglake/internal/sim"
	"biglake/internal/sparkle"
	"biglake/internal/storageapi"
	"biglake/internal/vector"
	"biglake/internal/workload"
)

// --- E9: §5.4 — Dremel performance parity across clouds ---

// E9Row is one query's per-cloud data-plane time.
type E9Row struct {
	QueryID string
	GCP     time.Duration
	AWS     time.Duration
	Ratio   float64 // aws/gcp; ~1 means parity
}

// E9Result is the cross-cloud parity experiment.
type E9Result struct {
	Rows []E9Row
}

// RunE9 loads the same TPC-H-like data in a GCP region and an AWS
// region of one Omni deployment and compares data-plane execution
// times per query.
func RunE9(scale int) (E9Result, error) {
	clock := sim.NewClock()
	dep := omni.NewDeployment(clock, Admin)
	gcp, err := dep.AddRegion("gcp-us", "gcp")
	if err != nil {
		return E9Result{}, err
	}
	aws, err := dep.AddRegion("aws-us-east-1", "aws")
	if err != nil {
		return E9Result{}, err
	}

	cfg := workload.DefaultTPCH(scale)
	load := func(r *omni.Region, dataset string) error {
		if err := dep.Catalog.CreateDataset(catalog.Dataset{Name: dataset, Region: r.Name, Cloud: r.Cloud}); err != nil {
			return err
		}
		cred := r.Engine.ManagedCred
		bucket := "tpch-" + r.Cloud
		if err := r.Store.CreateBucket(cred, bucket); err != nil {
			return err
		}
		return workload.LoadTPCH(&workload.Env{
			Catalog: dep.Catalog, Auth: dep.Auth, Store: r.Store, Log: r.Log, Clock: clock,
			Cred: cred, Connection: "omni-" + r.Name, Bucket: bucket, Cloud: r.Cloud,
			Dataset: dataset, Admin: omni.ControlPrincipal,
		}, cfg)
	}
	if err := load(gcp, "tpch_gcp"); err != nil {
		return E9Result{}, err
	}
	if err := load(aws, "tpch_aws"); err != nil {
		return E9Result{}, err
	}
	for _, ds := range []string{"tpch_gcp", "tpch_aws"} {
		for _, tbl := range []string{"lineitem", "orders", "customer"} {
			if err := dep.Auth.GrantTable(omni.ControlPrincipal, ds+"."+tbl, Admin, security.RoleViewer); err != nil {
				return E9Result{}, err
			}
		}
	}

	out := E9Result{}
	for _, q := range workload.TPCHQueries("tpch_gcp") {
		gcpRes, err := dep.Submit(Admin, q.SQL)
		if err != nil {
			return E9Result{}, fmt.Errorf("%s on gcp: %w", q.ID, err)
		}
		awsSQL := strings.ReplaceAll(q.SQL, "tpch_gcp.", "tpch_aws.")
		awsRes, err := dep.Submit(Admin, awsSQL)
		if err != nil {
			return E9Result{}, fmt.Errorf("%s on aws: %w", q.ID, err)
		}
		row := E9Row{QueryID: q.ID, GCP: gcpRes.Stats.SimElapsed, AWS: awsRes.Stats.SimElapsed}
		if row.GCP > 0 {
			row.Ratio = float64(row.AWS) / float64(row.GCP)
		}
		out.Rows = append(out.Rows, row)
	}
	return out, nil
}

// --- E10: §5.6.1 — cross-cloud queries with filter pushdown ---

// E10Result compares pushdown vs full-table shipping (ablation A5 is
// the DisablePushdown arm).
type E10Result struct {
	RemoteRows      int64
	PushdownEgress  int64
	FullEgress      int64
	EgressReduction float64
	PushdownTime    time.Duration
	FullTime        time.Duration
	AnswersAgree    bool
}

// RunE10 runs the Listing 3 join with a selective predicate on the
// remote table, with and without pushdown.
func RunE10(adsRows, orderRows int) (E10Result, error) {
	clock := sim.NewClock()
	dep := omni.NewDeployment(clock, Admin)
	gcp, err := dep.AddRegion("gcp-us", "gcp")
	if err != nil {
		return E10Result{}, err
	}
	aws, err := dep.AddRegion("aws-us-east-1", "aws")
	if err != nil {
		return E10Result{}, err
	}
	if err := seedListing3(dep, gcp, aws, adsRows, orderRows); err != nil {
		return E10Result{}, err
	}

	query := `SELECT o.order_id, ads.id
		FROM local_dataset.ads_impressions AS ads
		JOIN aws_dataset.customer_orders AS o ON o.customer_id = ads.customer_id
		WHERE o.order_total > 1350.0`

	dep.VPN.Meter().Reset()
	before := clock.Now()
	push, err := dep.Submit(Admin, query)
	if err != nil {
		return E10Result{}, err
	}
	pushTime := clock.Now() - before
	pushEgress := dep.VPN.Meter().Get("egress_bytes")

	dep.VPN.Meter().Reset()
	before = clock.Now()
	full, err := dep.SubmitWith(Admin, query, omni.SubmitOptions{DisablePushdown: true})
	if err != nil {
		return E10Result{}, err
	}
	fullTime := clock.Now() - before
	fullEgress := dep.VPN.Meter().Get("egress_bytes")

	out := E10Result{
		RemoteRows:     int64(orderRows),
		PushdownEgress: pushEgress,
		FullEgress:     fullEgress,
		PushdownTime:   pushTime,
		FullTime:       fullTime,
		AnswersAgree:   push.Batch.N == full.Batch.N,
	}
	if pushEgress > 0 {
		out.EgressReduction = float64(fullEgress) / float64(pushEgress)
	}
	return out, nil
}

func seedListing3(dep *omni.Deployment, gcp, aws *omni.Region, adsRows, orderRows int) error {
	adsSchema := vector.NewSchema(
		vector.Field{Name: "id", Type: vector.Int64},
		vector.Field{Name: "customer_id", Type: vector.Int64},
	)
	ordersSchema := vector.NewSchema(
		vector.Field{Name: "order_id", Type: vector.Int64},
		vector.Field{Name: "customer_id", Type: vector.Int64},
		vector.Field{Name: "order_total", Type: vector.Float64},
	)
	if err := dep.Catalog.CreateDataset(catalog.Dataset{Name: "local_dataset", Region: gcp.Name, Cloud: gcp.Cloud}); err != nil {
		return err
	}
	if err := dep.Catalog.CreateDataset(catalog.Dataset{Name: "aws_dataset", Region: aws.Name, Cloud: aws.Cloud}); err != nil {
		return err
	}
	if err := dep.Catalog.CreateTable(catalog.Table{
		Dataset: "local_dataset", Name: "ads_impressions", Type: catalog.Managed,
		Schema: adsSchema, Cloud: gcp.Cloud, Bucket: gcp.Manager.DefaultBucket,
		Prefix: "blmt/ads/", Connection: "omni-" + gcp.Name,
	}); err != nil {
		return err
	}
	if err := dep.Catalog.CreateTable(catalog.Table{
		Dataset: "aws_dataset", Name: "customer_orders", Type: catalog.Managed,
		Schema: ordersSchema, Cloud: aws.Cloud, Bucket: aws.Manager.DefaultBucket,
		Prefix: "blmt/orders/", Connection: "omni-" + aws.Name,
	}); err != nil {
		return err
	}
	for _, tbl := range []string{"local_dataset.ads_impressions", "aws_dataset.customer_orders"} {
		if err := dep.Auth.GrantTable(omni.ControlPrincipal, tbl, Admin, security.RoleOwner); err != nil {
			return err
		}
	}
	ctx := engine.NewContext(Admin, "seed")
	bl := vector.NewBuilder(adsSchema)
	for i := 0; i < adsRows; i++ {
		bl.Append(vector.IntValue(int64(i)), vector.IntValue(int64(i%50)))
	}
	if err := gcp.Manager.Insert(ctx, "local_dataset.ads_impressions", bl.Build()); err != nil {
		return err
	}
	bo := vector.NewBuilder(ordersSchema)
	for i := 0; i < orderRows; i++ {
		bo.Append(vector.IntValue(int64(i)), vector.IntValue(int64(i%50)), vector.FloatValue(float64(i)*1.5))
	}
	return aws.Manager.Insert(ctx, "aws_dataset.customer_orders", bo.Build())
}

// --- E11: §5.6.2 — CCMV incremental vs full replication ---

// E11Result compares refresh strategies after a small source change.
type E11Result struct {
	SourceFiles        int
	IncrementalFiles   int
	IncrementalBytes   int64
	FullFiles          int
	FullBytes          int64
	EgressReduction    float64
	ReplicaRowsCorrect bool
}

// RunE11 builds a multi-file source on AWS, replicates it, makes one
// small change, and refreshes both ways.
func RunE11(files, rowsPerFile int) (E11Result, error) {
	clock := sim.NewClock()
	dep := omni.NewDeployment(clock, Admin)
	gcp, err := dep.AddRegion("gcp-us", "gcp")
	if err != nil {
		return E11Result{}, err
	}
	aws, err := dep.AddRegion("aws-us-east-1", "aws")
	if err != nil {
		return E11Result{}, err
	}
	if err := seedListing3(dep, gcp, aws, 1, rowsPerFile); err != nil {
		return E11Result{}, err
	}
	ctx := engine.NewContext(Admin, "seed")
	ordersSchema := vector.NewSchema(
		vector.Field{Name: "order_id", Type: vector.Int64},
		vector.Field{Name: "customer_id", Type: vector.Int64},
		vector.Field{Name: "order_total", Type: vector.Float64},
	)
	for f := 1; f < files; f++ {
		bo := vector.NewBuilder(ordersSchema)
		for i := 0; i < rowsPerFile; i++ {
			bo.Append(vector.IntValue(int64(f*rowsPerFile+i)), vector.IntValue(int64(i%50)), vector.FloatValue(1))
		}
		if err := aws.Manager.Insert(ctx, "aws_dataset.customer_orders", bo.Build()); err != nil {
			return E11Result{}, err
		}
	}

	mv, err := dep.CreateCCMV("orders_mv", "aws_dataset.customer_orders", "gcp-us")
	if err != nil {
		return E11Result{}, err
	}
	if _, err := dep.Refresh(mv, true); err != nil {
		return E11Result{}, err
	}

	// One small source change.
	bo := vector.NewBuilder(ordersSchema)
	bo.Append(vector.IntValue(999999), vector.IntValue(1), vector.FloatValue(1))
	if err := aws.Manager.Insert(ctx, "aws_dataset.customer_orders", bo.Build()); err != nil {
		return E11Result{}, err
	}

	inc, err := dep.Refresh(mv, true)
	if err != nil {
		return E11Result{}, err
	}
	full, err := dep.Refresh(mv, false)
	if err != nil {
		return E11Result{}, err
	}

	if err := dep.GrantReplicaAccess(mv, Admin); err != nil {
		return E11Result{}, err
	}
	res, err := dep.Submit(Admin, "SELECT COUNT(*) AS n FROM "+mv.Replica)
	if err != nil {
		return E11Result{}, err
	}
	wantRows := int64(files*rowsPerFile + 1)
	out := E11Result{
		SourceFiles:        files + 1,
		IncrementalFiles:   inc.FilesCopied,
		IncrementalBytes:   inc.BytesCopied,
		FullFiles:          full.FilesCopied,
		FullBytes:          full.BytesCopied,
		ReplicaRowsCorrect: res.Batch.Column("n").Value(0).AsInt() == wantRows,
	}
	if inc.BytesCopied > 0 {
		out.EgressReduction = float64(full.BytesCopied) / float64(inc.BytesCopied)
	}
	return out, nil
}

// --- E12: §3.2 — uniform governance across engines ---

// E12Result verifies the zero-trust boundary.
type E12Result struct {
	EngineRows        int
	ReadAPIRows       int
	RowsAgree         bool
	MaskingAgrees     bool
	HostileReadDenied bool
	DeniedColumnFails bool
}

// RunE12 applies a row policy and a masking policy, reads through the
// engine and through the Read API as a restricted analyst, and
// verifies a hostile client cannot widen its access.
func RunE12() (E12Result, error) {
	env, err := NewEnv(engine.DefaultOptions())
	if err != nil {
		return E12Result{}, err
	}
	analyst := security.Principal("analyst@corp")
	schema := vector.NewSchema(
		vector.Field{Name: "region", Type: vector.String},
		vector.Field{Name: "email", Type: vector.String},
		vector.Field{Name: "amount", Type: vector.Int64},
	)
	bl := vector.NewBuilder(schema)
	for i := 0; i < 100; i++ {
		bl.Append(
			vector.StringValue([]string{"us", "eu"}[i%2]),
			vector.StringValue(fmt.Sprintf("u%d@x.com", i)),
			vector.IntValue(int64(i)),
		)
	}
	file, err := colfmt.WriteFile(bl.Build(), colfmt.WriterOptions{})
	if err != nil {
		return E12Result{}, err
	}
	if _, err := env.Store.Put(env.Cred, "bench", "gov/part-0.blk", file, ""); err != nil {
		return E12Result{}, err
	}
	if err := env.Cat.CreateTable(catalog.Table{
		Dataset: "bench", Name: "gov", Type: catalog.BigLake, Schema: schema,
		Cloud: "gcp", Bucket: "bench", Prefix: "gov/", Connection: "conn", MetadataCaching: true,
	}); err != nil {
		return E12Result{}, err
	}
	env.Auth.GrantTable(Admin, "bench.gov", analyst, security.RoleViewer)
	env.Auth.AddRowPolicy(Admin, "bench.gov", security.RowPolicy{
		Name: "us_only", Grantees: map[security.Principal]bool{analyst: true},
		Filter: []colfmt.Predicate{{Column: "region", Op: vector.EQ, Value: vector.StringValue("us")}},
	})
	env.Auth.SetColumnPolicy(Admin, "bench.gov", security.ColumnPolicy{
		Column: "email", Allowed: map[security.Principal]bool{Admin: true}, Mask: vector.MaskHash,
	})
	env.Auth.SetColumnPolicy(Admin, "bench.gov", security.ColumnPolicy{
		Column: "amount", Allowed: map[security.Principal]bool{Admin: true}, Mask: vector.MaskNone,
	})

	// Engine path.
	engRes, err := env.Engine.Query(engine.NewContext(analyst, "e12a"), "SELECT region, email FROM bench.gov")
	if err != nil {
		return E12Result{}, err
	}
	// Read API path (an external engine).
	sess, err := env.Server.CreateReadSession(storageapi.ReadSessionRequest{
		Table: "bench.gov", Principal: analyst, Columns: []string{"region", "email"},
	})
	if err != nil {
		return E12Result{}, err
	}
	apiBatch, err := env.Server.ReadAll(sess)
	if err != nil {
		return E12Result{}, err
	}

	masked := func(b *vector.Batch) bool {
		if b.N == 0 {
			return false
		}
		c := b.Column("email")
		for i := 0; i < b.N; i++ {
			if !strings.HasPrefix(c.Value(i).S, "hash_") {
				return false
			}
		}
		return true
	}
	out := E12Result{
		EngineRows:    engRes.Batch.N,
		ReadAPIRows:   apiBatch.N,
		RowsAgree:     engRes.Batch.N == apiBatch.N && engRes.Batch.N == 50,
		MaskingAgrees: masked(engRes.Batch) && masked(apiBatch),
	}

	// Hostile client: stranger principal, huge stream count, explicit
	// request for the denied column.
	if _, err := env.Server.CreateReadSession(storageapi.ReadSessionRequest{
		Table: "bench.gov", Principal: "mallory@evil", MaxStreams: 1000,
	}); err != nil {
		out.HostileReadDenied = true
	}
	if _, err := env.Server.CreateReadSession(storageapi.ReadSessionRequest{
		Table: "bench.gov", Principal: analyst, Columns: []string{"amount"},
	}); err != nil {
		out.DeniedColumnFails = true
	}
	// Sparkle over the Read API sees the same governed rows.
	sp := sparkle.NewSession(env.Clock, sparkle.Options{})
	spBatch, err := sp.ReadBigLake(env.Server, analyst, "bench.gov").Select("region", "email").Collect()
	if err != nil {
		return E12Result{}, err
	}
	out.RowsAgree = out.RowsAgree && spBatch.N == engRes.Batch.N
	out.MaskingAgrees = out.MaskingAgrees && masked(spBatch)
	return out, nil
}

// --- Ablations ---

// A1Result compares pruning granularities (file stats vs
// partition-only).
type A1Result struct {
	FilesTotal       int64
	ScannedPartOnly  int64
	ScannedFileStats int64
	GranularityGain  float64
	SimTimePartOnly  time.Duration
	SimTimeFileStats time.Duration
}

// RunA1 runs a selective non-partition predicate under both pruning
// granularities.
func RunA1(scale int) (A1Result, error) {
	cfg := workload.DefaultTPCDS(scale)
	run := func(g bigmeta.PruneGranularity) (*engine.Result, error) {
		opts := engine.DefaultOptions()
		opts.PruneGranularity = g
		env, err := NewEnv(opts)
		if err != nil {
			return nil, err
		}
		if err := workload.LoadTPCDS(env.WEnv, cfg); err != nil {
			return nil, err
		}
		// item_sk is range-clustered within each date partition, so a
		// point predicate on it is file-stat-prunable but invisible to
		// partition-only pruning.
		return env.query("a1", "SELECT COUNT(*) AS n FROM bench.store_sales WHERE item_sk = 5")
	}
	part, err := run(bigmeta.PrunePartitionsOnly)
	if err != nil {
		return A1Result{}, err
	}
	file, err := run(bigmeta.PruneFiles)
	if err != nil {
		return A1Result{}, err
	}
	out := A1Result{
		FilesTotal:       int64(cfg.Dates * cfg.FilesPerDate),
		ScannedPartOnly:  part.Stats.FilesScanned,
		ScannedFileStats: file.Stats.FilesScanned,
		SimTimePartOnly:  part.Stats.SimElapsed,
		SimTimeFileStats: file.Stats.SimElapsed,
	}
	if file.Stats.FilesScanned > 0 {
		out.GranularityGain = float64(part.Stats.FilesScanned) / float64(file.Stats.FilesScanned)
	}
	return out, nil
}

// A4Result compares wire encodings on the ReadRows payload.
type A4Result struct {
	PlainBytes   int64
	EncodedBytes int64
	Reduction    float64
}

// RunA4 reads a low-cardinality table with and without wire-encoding
// retention.
func RunA4(rows int) (A4Result, error) {
	env, err := NewEnv(engine.DefaultOptions())
	if err != nil {
		return A4Result{}, err
	}
	schema := vector.NewSchema(
		vector.Field{Name: "country", Type: vector.String},
		vector.Field{Name: "status", Type: vector.String},
	)
	bl := vector.NewBuilder(schema)
	for i := 0; i < rows; i++ {
		bl.Append(
			vector.StringValue([]string{"us", "de", "fr"}[i%3]),
			vector.StringValue([]string{"ok", "failed"}[i%2]),
		)
	}
	// One row group so the encoded column chunks survive ReadAll
	// intact onto the wire.
	file, err := colfmt.WriteFile(bl.Build(), colfmt.WriterOptions{RowGroupRows: rows})
	if err != nil {
		return A4Result{}, err
	}
	env.Store.Put(env.Cred, "bench", "a4/p.blk", file, "")
	env.Cat.CreateTable(catalog.Table{
		Dataset: "bench", Name: "a4", Type: catalog.BigLake, Schema: schema,
		Cloud: "gcp", Bucket: "bench", Prefix: "a4/", Connection: "conn", MetadataCaching: true,
	})
	read := func(keep bool) (int64, error) {
		env.Server.SessionTTL = 0
		sess, err := env.Server.CreateReadSession(storageapi.ReadSessionRequest{
			Table: "bench.a4", Principal: Admin, KeepEncodings: keep,
		})
		if err != nil {
			return 0, err
		}
		var total int64
		for _, stream := range sess.Streams {
			for {
				payload, err := env.Server.ReadRows(sess.ID, stream)
				if err != nil {
					if err == storageapi.ErrEndOfStream || strings.Contains(err.Error(), "end of stream") {
						break
					}
					return 0, err
				}
				total += int64(len(payload))
			}
		}
		return total, nil
	}
	plain, err := read(false)
	if err != nil {
		return A4Result{}, err
	}
	encoded, err := read(true)
	if err != nil {
		return A4Result{}, err
	}
	out := A4Result{PlainBytes: plain, EncodedBytes: encoded}
	if encoded > 0 {
		out.Reduction = float64(plain) / float64(encoded)
	}
	return out, nil
}

// A3Result compares baseline-reconciled reads vs full log replay.
type A3Result struct {
	Commits       int
	BaselineNanos int64
	ReplayNanos   int64
	Speedup       float64
}

// RunA3 measures real CPU time of snapshot reconstruction with and
// without columnar baselines after many commits.
func RunA3(commits int) (A3Result, error) {
	clock := sim.NewClock()
	log := bigmeta.NewLog(clock, nil)
	log.BaselineEvery = 64
	for i := 0; i < commits; i++ {
		if _, err := log.Commit("w", map[string]bigmeta.TableDelta{
			"t": {Added: []bigmeta.FileEntry{{Key: fmt.Sprintf("f%06d", i), RowCount: 1}}},
		}); err != nil {
			return A3Result{}, err
		}
	}
	const iters = 50
	start := time.Now()
	for i := 0; i < iters; i++ {
		if _, _, err := log.Snapshot("t", -1); err != nil {
			return A3Result{}, err
		}
	}
	base := time.Since(start)
	start = time.Now()
	for i := 0; i < iters; i++ {
		if _, _, err := log.SnapshotByReplay("t", -1); err != nil {
			return A3Result{}, err
		}
	}
	replay := time.Since(start)
	out := A3Result{Commits: commits, BaselineNanos: base.Nanoseconds() / iters, ReplayNanos: replay.Nanoseconds() / iters}
	if base > 0 {
		out.Speedup = float64(replay) / float64(base)
	}
	return out, nil
}
