package exp

// E21: queryable telemetry under load. The E18 multi-tenant mix runs
// twice from identical seeds — once with job recording disabled, once
// with the full system.* pipeline on (jobs ring, SLO tracker, metrics
// history captures) — and the recording arm must stay within 2% of
// the blind arm's goodput while taking the bit-identical trajectory
// (loadtest checksums must match: recording may not perturb admission
// or scheduling). Then the operator questions the telemetry exists to
// answer are answered purely in SQL over the system dataset: the
// top-10 most expensive tenants from system.jobs, per-class p99 and
// error-budget burn from system.slo, and the shed-rate timeline from
// system.metrics_history — whose deltas must reconcile with the live
// rejection counters.

import (
	"fmt"
	"time"

	"biglake/internal/serve"
	"biglake/internal/serve/loadtest"
	"biglake/internal/vector"
)

// valS/valI/valF unwrap a vector.Value read back from a system table.
func valS(v vector.Value) string  { return v.S }
func valI(v vector.Value) int64   { return v.I }
func valF(v vector.Value) float64 { return v.F }

// E21Config shapes one telemetry-overhead run. The load shape is an
// E18Config; Load is the single offered-load multiple (overloaded so
// sheds populate the timeline).
type E21Config struct {
	E18 E18Config
	// Load is the offered load as a multiple of admitted capacity.
	Load float64
	// TopN bounds the tenant leaderboard.
	TopN int
}

// DefaultE21Config returns the benchmark configuration; scale
// multiplies the tenant population (scale 1 = 1000 tenants).
func DefaultE21Config(scale int) E21Config {
	cfg := DefaultE18Config(scale)
	cfg.Seed = 21
	return E21Config{E18: cfg, Load: 2, TopN: 10}
}

// E21TenantRow is one system.jobs leaderboard entry.
type E21TenantRow struct {
	Principal string
	Queries   int64
	TotalUs   int64
}

// E21SLORow is one system.slo row as read back through SQL.
type E21SLORow struct {
	Class      string
	P99Us      int64
	Attainment float64
	Burn       float64
	Total      int64
}

// E21ShedPoint is one system.metrics_history sample of the queue_full
// rejection counter.
type E21ShedPoint struct {
	TsUs  int64
	Value int64
	Delta int64
}

// E21Result reports the overhead gate and the three SQL answers.
type E21Result struct {
	Tenants      int
	Offered      int
	Completed    int
	Shed         int
	ServiceEst   time.Duration
	Interarrival time.Duration
	// GoodputOff/GoodputOn are simulated-time goodput with recording
	// disabled/enabled; OverheadPct is the gate (must be <= 2).
	GoodputOff  float64
	GoodputOn   float64
	OverheadPct float64
	// WallOff/WallOn are informational host-time measurements of the
	// two loadtest runs (noisy; not gated).
	WallOff time.Duration
	WallOn  time.Duration
	// ChecksumMatch asserts the two arms took bit-identical
	// trajectories: recording must not perturb admission decisions.
	ChecksumMatch bool
	// JobsRetained is the ring population after the recording arm.
	JobsRetained int
	// HistoryCaptures counts metrics_history snapshots taken.
	HistoryCaptures int64
	TopTenants      []E21TenantRow
	SLO             []E21SLORow
	ShedTimeline    []E21ShedPoint
	// ReconcileOK: the shed timeline's deltas sum to its value span
	// and its final value matches the live obs counter.
	ReconcileOK bool
}

// RunE21 runs the default configuration at the given scale.
func RunE21(scale int) (E21Result, error) {
	return RunE21Config(DefaultE21Config(scale))
}

// e21Arm runs one load arm; record toggles the telemetry pipeline.
// Returns the loadtest result, the world (for post-run SQL), and the
// host wall time of the run.
func e21Arm(cfg E21Config, lcfg loadtest.Config, record bool) (*loadtest.Result, *e18World, time.Duration, error) {
	w, err := newE18World(cfg.E18, cfg.E18.serveConfig(), cfg.E18.Tenants, lcfg)
	if err != nil {
		return nil, nil, 0, err
	}
	if cfg.E18.Chaos {
		w.env.Store.InjectFaults(cfg.E18.chaosProfile(0x21))
	}
	sys := w.env.Engine.Sys
	sys.SetEnabled(record)
	if record {
		every := lcfg.Interarrival / 4
		if every <= 0 {
			every = time.Millisecond
		}
		sys.SetHistoryEvery(every)
		sys.CaptureHistory() // baseline before the load window
	}
	t0 := time.Now()
	r, err := loadtest.Run(w.srv, lcfg)
	if err != nil {
		return nil, nil, 0, err
	}
	wall := time.Since(t0)
	if record {
		sys.CaptureHistory() // final sample closes the window
	}
	return r, w, wall, nil
}

// RunE21Config runs the two arms and the SQL read-back under cfg.
func RunE21Config(cfg E21Config) (E21Result, error) {
	if cfg.Load <= 0 {
		cfg.Load = 2
	}
	if cfg.TopN <= 0 {
		cfg.TopN = 10
	}
	res := E21Result{Tenants: cfg.E18.Tenants}

	// Calibrate on a throwaway world so both arms see cold caches.
	cw, err := newE18World(cfg.E18, cfg.E18.serveConfig(), 0, loadtest.Config{})
	if err != nil {
		return E21Result{}, err
	}
	res.ServiceEst, err = cw.calibrate(cfg.E18)
	if err != nil {
		return E21Result{}, err
	}

	lcfg := loadtest.Config{
		Seed:             cfg.E18.Seed,
		Tenants:          cfg.E18.Tenants,
		QueriesPerTenant: cfg.E18.QueriesPerTenant,
		Interarrival:     cfg.E18.interarrivalFor(cfg.Load, res.ServiceEst, cfg.E18.Tenants),
		Gen:              e18Gen,
	}
	res.Interarrival = lcfg.Interarrival

	off, _, wallOff, err := e21Arm(cfg, lcfg, false)
	if err != nil {
		return E21Result{}, err
	}
	on, w, wallOn, err := e21Arm(cfg, lcfg, true)
	if err != nil {
		return E21Result{}, err
	}
	res.Offered = on.Offered
	res.Completed = on.Completed
	res.Shed = on.Rejected["queue_full"] + on.Rejected["queue_wait"]
	res.GoodputOff, res.GoodputOn = off.GoodputQPS, on.GoodputQPS
	res.WallOff, res.WallOn = wallOff, wallOn
	if off.GoodputQPS > 0 {
		res.OverheadPct = 100 * (off.GoodputQPS - on.GoodputQPS) / off.GoodputQPS
	}
	res.ChecksumMatch = off.Checksum == on.Checksum
	res.JobsRetained = len(w.env.Engine.Sys.Jobs())

	if err := e21ReadBack(cfg, w, &res); err != nil {
		return E21Result{}, err
	}

	if !res.ChecksumMatch {
		return res, fmt.Errorf("e21: recording arm diverged from blind arm (checksum mismatch)")
	}
	if res.OverheadPct > 2 {
		return res, fmt.Errorf("e21: telemetry overhead %.2f%% exceeds the 2%% budget", res.OverheadPct)
	}
	return res, nil
}

// e21ReadBack answers the three operator questions through a normal
// serve session, purely in SQL over the system dataset.
func e21ReadBack(cfg E21Config, w *e18World, res *E21Result) error {
	sess, err := w.srv.Open(Admin, "e21-readback")
	if err != nil {
		return err
	}
	defer sess.Close()
	rows := func(sql string) ([][]vector.Value, error) {
		cur, err := sess.Query(sql)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", sql, err)
		}
		b, err := cur.All()
		if err != nil {
			return nil, fmt.Errorf("%s: %w", sql, err)
		}
		out := make([][]vector.Value, b.N)
		for i := 0; i < b.N; i++ {
			row := make([]vector.Value, len(b.Cols))
			for j, c := range b.Cols {
				row[j] = c.Value(i)
			}
			out[i] = row
		}
		return out, nil
	}

	// Q1: which tenants cost the most? system.jobs aggregates by
	// principal over completed work.
	q1, err := rows(fmt.Sprintf(
		"SELECT principal, COUNT(*) AS n, SUM(exec_sim_us) AS total_us "+
			"FROM system.jobs WHERE state = 'done' "+
			"GROUP BY principal ORDER BY total_us DESC LIMIT %d", cfg.TopN))
	if err != nil {
		return err
	}
	for _, r := range q1 {
		res.TopTenants = append(res.TopTenants, E21TenantRow{
			Principal: valS(r[0]), Queries: valI(r[1]), TotalUs: valI(r[2]),
		})
	}

	// Q2: per-class latency SLOs. p99, attainment, and burn come
	// straight out of system.slo.
	q2, err := rows("SELECT class, p99_us, attainment, error_budget_burn, total " +
		"FROM system.slo ORDER BY class")
	if err != nil {
		return err
	}
	for _, r := range q2 {
		res.SLO = append(res.SLO, E21SLORow{
			Class: valS(r[0]), P99Us: valI(r[1]), Attainment: valF(r[2]),
			Burn: valF(r[3]), Total: valI(r[4]),
		})
	}

	// Q3: shed rate over time. metrics_history retains the queue_full
	// counter's trajectory; its deltas must reconcile with the live
	// counter the serve layer maintains.
	q3, err := rows("SELECT ts_us, value, delta FROM system.metrics_history " +
		"WHERE name = 'serve.rejected.queue_full' AND kind = 'counter' ORDER BY ts_us")
	if err != nil {
		return err
	}
	var deltaSum int64
	for i, r := range q3 {
		pt := E21ShedPoint{TsUs: valI(r[0]), Value: valI(r[1]), Delta: valI(r[2])}
		res.ShedTimeline = append(res.ShedTimeline, pt)
		if i > 0 {
			deltaSum += pt.Delta
		}
	}
	res.HistoryCaptures = w.env.Engine.Sys.HistoryTaken()
	if n := len(res.ShedTimeline); n >= 2 {
		first, last := res.ShedTimeline[0], res.ShedTimeline[n-1]
		res.ReconcileOK = deltaSum == last.Value-first.Value &&
			last.Value == w.env.Obs.Get("serve.rejected.queue_full")
	}
	return nil
}

// TopResult is `benchlake top`: the N most expensive retained jobs
// and the hottest counters, read through SQL like an operator would.
type TopResult struct {
	Jobs    []TopJobRow
	Metrics []TopMetricRow
}

type TopJobRow struct {
	QueryID         string
	Principal       string
	Class           string
	State           string
	AdmissionWaitUs int64
	ExecSimUs       int64
	RowsScanned     int64
	BytesScanned    int64
}

type TopMetricRow struct {
	Name  string
	Value int64
}

// RunTop drives a small seeded mix through a serve session and then
// answers "what is expensive right now" purely via system.* SQL.
func RunTop(n int) (TopResult, error) {
	if n <= 0 {
		n = 10
	}
	cfg := DefaultE18Config(1)
	cfg.Seed = 0x109
	lcfg := loadtest.Config{
		Seed: cfg.Seed, Tenants: 8, QueriesPerTenant: 6,
		Interarrival: 5 * time.Millisecond, Gen: e18Gen,
	}
	w, err := newE18World(cfg, serve.Config{MaxConcurrent: 4, MaxQueue: 8, PageRows: 256}, lcfg.Tenants, lcfg)
	if err != nil {
		return TopResult{}, err
	}
	if _, err := loadtest.Run(w.srv, lcfg); err != nil {
		return TopResult{}, err
	}

	sess, err := w.srv.Open(Admin, "top")
	if err != nil {
		return TopResult{}, err
	}
	defer sess.Close()
	var res TopResult
	cur, err := sess.Query(fmt.Sprintf(
		"SELECT query_id, principal, class, state, admission_wait_us, exec_sim_us, rows_scanned, bytes_scanned "+
			"FROM system.jobs ORDER BY exec_sim_us DESC LIMIT %d", n))
	if err != nil {
		return TopResult{}, err
	}
	b, err := cur.All()
	if err != nil {
		return TopResult{}, err
	}
	for i := 0; i < b.N; i++ {
		res.Jobs = append(res.Jobs, TopJobRow{
			QueryID:         b.Column("query_id").Value(i).S,
			Principal:       b.Column("principal").Value(i).S,
			Class:           b.Column("class").Value(i).S,
			State:           b.Column("state").Value(i).S,
			AdmissionWaitUs: b.Column("admission_wait_us").Value(i).I,
			ExecSimUs:       b.Column("exec_sim_us").Value(i).I,
			RowsScanned:     b.Column("rows_scanned").Value(i).I,
			BytesScanned:    b.Column("bytes_scanned").Value(i).I,
		})
	}
	cur, err = sess.Query(fmt.Sprintf(
		"SELECT name, value FROM system.metrics WHERE kind = 'counter' ORDER BY value DESC LIMIT %d", n))
	if err != nil {
		return TopResult{}, err
	}
	if b, err = cur.All(); err != nil {
		return TopResult{}, err
	}
	for i := 0; i < b.N; i++ {
		res.Metrics = append(res.Metrics, TopMetricRow{
			Name: b.Column("name").Value(i).S, Value: b.Column("value").Value(i).I,
		})
	}
	return res, nil
}
