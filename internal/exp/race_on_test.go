//go:build race

package exp

// raceEnabled reports whether the race detector is compiled in, so
// real-CPU-time shape tests can relax thresholds that race
// instrumentation (~5-10x slowdown, unevenly distributed) distorts.
const raceEnabled = true
