package exp

// E18: multi-tenant query service under load. A serve.Server fronted
// by memory-budgeted admission control and a weighted fair queue is
// driven by the deterministic loadtest harness at offered loads of
// 0.5x–4x its admitted capacity, with seeded chaos faults on the
// object store. The sweep reports the overload curve (goodput,
// latency percentiles, typed shed counts) and two fairness sub-runs:
// equal-weight tenants must split goodput near-evenly, and a 4:1
// weight skew must shift contended capacity toward the heavy
// tenants. The load model is open-loop: arrivals do not wait for
// completions, so past saturation the only way to keep goodput flat
// is to shed excess with cheap typed rejections — which is exactly
// what the admission queue bounds (MaxQueue, MaxQueueWait) enforce.

import (
	"fmt"
	"time"

	"biglake/internal/blmt"
	"biglake/internal/catalog"
	"biglake/internal/engine"
	"biglake/internal/objstore"
	"biglake/internal/security"
	"biglake/internal/serve"
	"biglake/internal/serve/loadtest"
	"biglake/internal/sim"
	"biglake/internal/txn"
	"biglake/internal/vector"
	"biglake/internal/wal"
)

// e18FactRows is the row count of the shared OLAP fact table; point
// lookups draw ids from [0, e18FactRows).
const e18FactRows = 1024

// E18Config shapes one E18 run. DefaultE18Config gives the benchmark
// shape; tests shrink it for fast deterministic runs.
type E18Config struct {
	// Seed drives arrivals, the query mix, and the chaos profile.
	Seed uint64
	// Tenants is the sweep's synthetic tenant population.
	Tenants int
	// QueriesPerTenant fixes each tenant's offered arrivals.
	QueriesPerTenant int
	// MaxConcurrent / MaxQueue / MaxQueueWait are the server's
	// admission knobs under test.
	MaxConcurrent int
	MaxQueue      int
	MaxQueueWait  time.Duration
	// LoadMultiples are the offered-load points, as multiples of the
	// admitted service capacity (MaxConcurrent / measured service
	// time).
	LoadMultiples []float64
	// FairTenants/FairQueries shape the two fairness sub-runs.
	FairTenants int
	FairQueries int
	// Chaos injects seeded object-store faults during the sweep.
	Chaos bool
	// CalibrationQueries sizes the service-time measurement run.
	CalibrationQueries int
}

// DefaultE18Config returns the benchmark configuration; scale
// multiplies the tenant population (scale 1 = 1000 tenants).
func DefaultE18Config(scale int) E18Config {
	if scale < 1 {
		scale = 1
	}
	return E18Config{
		Seed:               18,
		Tenants:            1000 * scale,
		QueriesPerTenant:   4,
		MaxConcurrent:      8,
		MaxQueue:           32,
		MaxQueueWait:       250 * time.Millisecond,
		LoadMultiples:      []float64{0.5, 1, 2, 4},
		FairTenants:        16,
		FairQueries:        40,
		Chaos:              true,
		CalibrationQueries: 32,
	}
}

// E18Row is one offered-load measurement.
type E18Row struct {
	// Load is the offered load as a multiple of admitted capacity.
	Load float64
	// Interarrival is the per-tenant arrival gap realizing that load.
	Interarrival time.Duration
	Offered      int
	Completed    int
	// Failed counts admitted queries killed by chaos faults or
	// deadlines after retries were exhausted.
	Failed int
	// RejQueueFull/RejQueueWait are the harness's typed shed counts.
	RejQueueFull int
	RejQueueWait int
	// ObsQueueFull/ObsQueueWait are the same events as counted by the
	// serve layer's obs registry — they must match the harness.
	ObsQueueFull int64
	ObsQueueWait int64
	// GoodputQPS is completed queries per simulated second.
	GoodputQPS float64
	// P50/P99/P999 are arrival-to-completion latencies.
	P50, P99, P999 time.Duration
	Makespan       time.Duration
	// FairRatio is max/min per-tenant completions (equal weights).
	FairRatio float64
}

// E18Result is the overload-curve table plus the fairness sub-runs.
type E18Result struct {
	// ServiceEst is the calibrated warm per-query service time the
	// load points are scaled against.
	ServiceEst time.Duration
	Rows       []E18Row
	// PeakGoodput is the best goodput across the sweep.
	PeakGoodput float64
	// GoodputAtMaxLoad is goodput at the highest offered load; the
	// graceful-degradation criterion is GoodputMaxRatio >= 0.8.
	GoodputAtMaxLoad float64
	GoodputMaxRatio  float64
	// EqualFairRatio is max/min per-tenant goodput across 16
	// equal-weight tenants under 2x overload (want <= 2).
	EqualFairRatio float64
	// WeightedRatio is (avg completions of weight-4 tenants) / (avg of
	// weight-1 tenants) under 4x overload (want > 1).
	WeightedRatio float64
}

// e18World is one environment with the full serve stack: journaled
// log, BLMT mutator, txn manager, admission-fronted server.
type e18World struct {
	env *Env
	srv *serve.Server
}

func newE18World(cfg E18Config, scfg serve.Config, tenants int, lcfg loadtest.Config) (*e18World, error) {
	env, err := NewEnv(engine.DefaultOptions())
	if err != nil {
		return nil, err
	}
	schema := vector.NewSchema(
		vector.Field{Name: "id", Type: vector.Int64},
		vector.Field{Name: "v", Type: vector.Int64},
	)
	for _, name := range []string{"fact", "ops"} {
		if err := env.Cat.CreateTable(catalog.Table{
			Dataset: "bench", Name: name, Type: catalog.Managed, Schema: schema,
			Cloud: "gcp", Bucket: "bench", Prefix: "blmt/bench/" + name + "/", Connection: "conn",
		}); err != nil {
			return nil, err
		}
	}
	j, err := wal.Open(env.Store, env.Cred, "bench", "")
	if err != nil {
		return nil, err
	}
	env.Log.AttachJournal(j)
	mgr := blmt.New(env.Cat, env.Auth, env.Log, env.Clock, map[string]*objstore.Store{"gcp": env.Store})
	mgr.DefaultCloud, mgr.DefaultBucket, mgr.DefaultConnection = "gcp", "bench", "conn"
	mgr.Journal = j
	env.Engine.SetMutator(mgr)

	// Seed the fact table in chunks so it spans several files and the
	// OLAP class does real multi-file scans.
	const chunk = 256
	for lo := 0; lo < e18FactRows; lo += chunk {
		var vals string
		for id := lo; id < lo+chunk; id++ {
			if id > lo {
				vals += ", "
			}
			vals += fmt.Sprintf("(%d, %d)", id, id%7)
		}
		if _, err := env.query(fmt.Sprintf("e18-seed-%d", lo), "INSERT INTO bench.fact VALUES "+vals); err != nil {
			return nil, err
		}
	}
	for i := 0; i < tenants; i++ {
		p := lcfg.Principal(i)
		for _, tbl := range []string{"bench.fact", "bench.ops"} {
			if err := env.Auth.GrantTable(Admin, tbl, p, security.RoleEditor); err != nil {
				return nil, err
			}
		}
	}
	return &e18World{env: env, srv: serve.New(env.Engine, txn.NewManager(env.Engine, j), scfg)}, nil
}

// e18Gen is the tenant traffic mix: 10% DML appends, 30% OLAP
// aggregations over the fact table, 60% point lookups.
func e18Gen(rng *sim.RNG, tenant, seq int) loadtest.Query {
	switch rng.Intn(10) {
	case 0:
		return loadtest.Query{Kind: "dml",
			SQL: fmt.Sprintf("INSERT INTO bench.ops VALUES (%d, %d)", 1_000_000+tenant*10_000+seq, seq)}
	case 1, 2, 3:
		return loadtest.Query{Kind: "olap",
			SQL: "SELECT v, COUNT(*) AS n FROM bench.fact GROUP BY v ORDER BY v"}
	default:
		return loadtest.Query{Kind: "point",
			SQL: fmt.Sprintf("SELECT id, v FROM bench.fact WHERE id = %d", rng.Intn(e18FactRows))}
	}
}

// calibrate measures the warm per-query service time by running the
// generator mix through one admin session with no contention,
// flooring each sample the way the harness does.
func (w *e18World) calibrate(cfg E18Config) (time.Duration, error) {
	sess, err := w.srv.Open(Admin, "e18-calibrate")
	if err != nil {
		return 0, err
	}
	defer sess.Close()
	rng := sim.NewRNG(cfg.Seed ^ 0xca11b8a7e)
	n := cfg.CalibrationQueries
	if n <= 0 {
		n = 32
	}
	var total time.Duration
	for i := 0; i < n; i++ {
		q := e18Gen(rng, 9999, i)
		t0 := w.env.Clock.Now()
		cur, err := sess.Query(q.SQL)
		if err != nil {
			return 0, fmt.Errorf("calibrate %q: %w", q.SQL, err)
		}
		if _, err := cur.All(); err != nil {
			return 0, err
		}
		d := w.env.Clock.Now() - t0
		if d < loadtest.MinService {
			d = loadtest.MinService
		}
		total += d
	}
	return total / time.Duration(n), nil
}

func (cfg E18Config) serveConfig() serve.Config {
	return serve.Config{
		MaxConcurrent: cfg.MaxConcurrent,
		MaxQueue:      cfg.MaxQueue,
		MaxQueueWait:  cfg.MaxQueueWait,
		PageRows:      256,
	}
}

func (cfg E18Config) chaosProfile(salt uint64) objstore.FaultProfile {
	return objstore.FaultProfile{
		Seed: cfg.Seed ^ salt, Rate: 0.002, StreakLen: 2,
		SlowdownRate: 0.01, Slowdown: 10 * time.Millisecond,
	}
}

// interarrivalFor converts an offered-load multiple into the
// per-tenant arrival gap: offered rate tenants/gap equals load *
// (MaxConcurrent / svc).
func (cfg E18Config) interarrivalFor(load float64, svc time.Duration, tenants int) time.Duration {
	return time.Duration(float64(tenants) * float64(svc) / (load * float64(cfg.MaxConcurrent)))
}

// RunE18 runs the default configuration at the given scale.
func RunE18(scale int) (E18Result, error) {
	return RunE18Config(DefaultE18Config(scale))
}

// RunE18Config runs the overload sweep and fairness sub-runs under
// cfg. Every random choice is seeded, so equal configs produce
// reflect.DeepEqual results.
func RunE18Config(cfg E18Config) (E18Result, error) {
	if len(cfg.LoadMultiples) == 0 {
		cfg.LoadMultiples = []float64{0.5, 1, 2, 4}
	}
	res := E18Result{}

	// Calibration world: measure warm service time, then discard (its
	// caches are hot, which would flatter the first sweep row).
	cw, err := newE18World(cfg, cfg.serveConfig(), 0, loadtest.Config{})
	if err != nil {
		return E18Result{}, err
	}
	res.ServiceEst, err = cw.calibrate(cfg)
	if err != nil {
		return E18Result{}, err
	}

	for i, load := range cfg.LoadMultiples {
		lcfg := loadtest.Config{
			Seed:             cfg.Seed + uint64(i)*1000,
			Tenants:          cfg.Tenants,
			QueriesPerTenant: cfg.QueriesPerTenant,
			Interarrival:     cfg.interarrivalFor(load, res.ServiceEst, cfg.Tenants),
			Gen:              e18Gen,
		}
		w, err := newE18World(cfg, cfg.serveConfig(), cfg.Tenants, lcfg)
		if err != nil {
			return E18Result{}, err
		}
		if cfg.Chaos {
			w.env.Store.InjectFaults(cfg.chaosProfile(uint64(i) * 7919))
		}
		// Counter deltas, not absolutes: under benchlake every world
		// feeds one shared registry.
		full0 := w.env.Obs.Get("serve.rejected.queue_full")
		wait0 := w.env.Obs.Get("serve.rejected.queue_wait")
		r, err := loadtest.Run(w.srv, lcfg)
		if err != nil {
			return E18Result{}, err
		}
		row := E18Row{
			Load: load, Interarrival: lcfg.Interarrival,
			Offered: r.Offered, Completed: r.Completed, Failed: r.Failed,
			RejQueueFull: r.Rejected["queue_full"], RejQueueWait: r.Rejected["queue_wait"],
			ObsQueueFull: w.env.Obs.Get("serve.rejected.queue_full") - full0,
			ObsQueueWait: w.env.Obs.Get("serve.rejected.queue_wait") - wait0,
			GoodputQPS:   r.GoodputQPS,
			P50:          r.P50, P99: r.P99, P999: r.P999,
			Makespan: r.Makespan, FairRatio: r.FairRatio,
		}
		res.Rows = append(res.Rows, row)
		if row.GoodputQPS > res.PeakGoodput {
			res.PeakGoodput = row.GoodputQPS
		}
	}
	last := res.Rows[len(res.Rows)-1]
	res.GoodputAtMaxLoad = last.GoodputQPS
	if res.PeakGoodput > 0 {
		res.GoodputMaxRatio = res.GoodputAtMaxLoad / res.PeakGoodput
	}

	// Fairness sub-run 1: equal weights under 2x overload. Max/min
	// per-tenant goodput bounds how unevenly contended capacity is
	// shared.
	eq, err := runE18Fairness(cfg, nil, 2)
	if err != nil {
		return E18Result{}, err
	}
	res.EqualFairRatio = eq.FairRatio

	// Fairness sub-run 2: a 4:1 weight skew (even tenants heavy) under
	// 4x overload must shift completions toward the heavy tenants.
	heavy := func(i int) bool { return i%2 == 0 }
	wr, err := runE18Fairness(cfg, heavy, 4)
	if err != nil {
		return E18Result{}, err
	}
	var hSum, lSum, hN, lN float64
	for i, c := range wr.PerTenantCompleted {
		if heavy(i) {
			hSum += float64(c)
			hN++
		} else {
			lSum += float64(c)
			lN++
		}
	}
	if lSum > 0 && lN > 0 && hN > 0 {
		res.WeightedRatio = (hSum / hN) / (lSum / lN)
	}
	return res, nil
}

// runE18Fairness drives FairTenants tenants at the given overload
// multiple; heavy (when non-nil) marks tenants with weight 4 instead
// of 1.
func runE18Fairness(cfg E18Config, heavy func(int) bool, load float64) (*loadtest.Result, error) {
	lcfg := loadtest.Config{
		Seed:             cfg.Seed ^ 0xfa1f,
		Tenants:          cfg.FairTenants,
		QueriesPerTenant: cfg.FairQueries,
		Gen:              e18Gen,
	}
	scfg := cfg.serveConfig()
	if heavy != nil {
		scfg.Tenants = map[string]serve.TenantConfig{}
		for i := 0; i < cfg.FairTenants; i++ {
			w := 1.0
			if heavy(i) {
				w = 4.0
			}
			scfg.Tenants[string(lcfg.Principal(i))] = serve.TenantConfig{Weight: w}
		}
	}
	// Reuse the sweep's calibration via a fresh measurement world so
	// the sub-run is self-contained (and the fairness load multiple is
	// honest for its own tenant count).
	cw, err := newE18World(cfg, scfg, 0, loadtest.Config{})
	if err != nil {
		return nil, err
	}
	svc, err := cw.calibrate(cfg)
	if err != nil {
		return nil, err
	}
	lcfg.Interarrival = cfg.interarrivalFor(load, svc, cfg.FairTenants)
	w, err := newE18World(cfg, scfg, cfg.FairTenants, lcfg)
	if err != nil {
		return nil, err
	}
	return loadtest.Run(w.srv, lcfg)
}
