package exp

// E17: interactive-transaction contention. W concurrent writers begin
// at the same snapshot and commit sequentially under first-committer-
// wins OCC (internal/txn). Three in four writers append fresh rows to
// a growing ledger table (blind inserts commute, so they never
// conflict); one in four performs a read-modify-write UPDATE on a
// small shared counter table, which rewrites the counter's single
// data file — so of the updaters racing from one snapshot, exactly
// one wins and the rest abort and retry from a fresh snapshot. The
// sweep scales W from 1 to 256 and reports abort rate and commit
// throughput against a non-transactional baseline that pushes the
// identical operation stream through the autocommit DML path (same
// journaled BLMT commit protocol, no session/snapshot/OCC machinery).

import (
	"errors"
	"fmt"

	"biglake/internal/blmt"
	"biglake/internal/catalog"
	"biglake/internal/engine"
	"biglake/internal/objstore"
	"biglake/internal/txn"
	"biglake/internal/vector"
	"biglake/internal/wal"
)

// e17MaxAttempts caps commit attempts (1 initial + retries) per
// logical transaction before it counts as failed.
const e17MaxAttempts = 4

// e17Counters is the number of rows in the contended counter table.
const e17Counters = 8

// E17Row is one writer-count measurement.
type E17Row struct {
	// Writers is the number of sessions racing from each snapshot.
	Writers int
	// Committed is the number of transactions that sealed.
	Committed int
	// Attempts counts commit attempts, including retries.
	Attempts int
	// Aborts counts first-committer-wins losers (each retried).
	Aborts int
	// Retries counts re-begin/re-execute/re-commit cycles.
	Retries int
	// Failed counts transactions that exhausted e17MaxAttempts.
	Failed int
	// AbortRate is Aborts / Attempts.
	AbortRate float64
	// TxnPerSec is committed transactions per simulated second.
	TxnPerSec float64
	// BasePerSec is the non-transactional baseline: the same
	// operation stream as autocommit DML, in commits per simulated
	// second.
	BasePerSec float64
	// Overhead is BasePerSec / TxnPerSec — how much the transaction
	// machinery (snapshots, intents, validation, retries) costs at
	// this contention level.
	Overhead float64
}

// E17Result is the contention-sweep table.
type E17Result struct {
	Rounds int
	Rows   []E17Row
}

// e17World is one environment with the transactional write path wired
// in: journaled log, BLMT mutator for autocommit DML, txn manager for
// interactive sessions.
type e17World struct {
	env *Env
	tm  *txn.Manager
}

func newE17World() (*e17World, error) {
	env, err := NewEnv(engine.DefaultOptions())
	if err != nil {
		return nil, err
	}
	schema := vector.NewSchema(
		vector.Field{Name: "id", Type: vector.Int64},
		vector.Field{Name: "v", Type: vector.Int64},
	)
	for _, name := range []string{"ledger", "counter"} {
		if err := env.Cat.CreateTable(catalog.Table{
			Dataset: "bench", Name: name, Type: catalog.Managed, Schema: schema,
			Cloud: "gcp", Bucket: "bench", Prefix: "blmt/bench/" + name + "/", Connection: "conn",
		}); err != nil {
			return nil, err
		}
	}
	j, err := wal.Open(env.Store, env.Cred, "bench", "")
	if err != nil {
		return nil, err
	}
	env.Log.AttachJournal(j)
	mgr := blmt.New(env.Cat, env.Auth, env.Log, env.Clock, map[string]*objstore.Store{"gcp": env.Store})
	mgr.DefaultCloud, mgr.DefaultBucket, mgr.DefaultConnection = "gcp", "bench", "conn"
	mgr.Journal = j
	env.Engine.SetMutator(mgr)
	w := &e17World{env: env, tm: txn.NewManager(env.Engine, j)}
	// Seed the contended counter rows (ids 1..e17Counters) in one
	// file: every read-modify-write UPDATE rewrites it, so updaters
	// racing from a shared snapshot collide at file granularity.
	var vals string
	for id := 1; id <= e17Counters; id++ {
		if id > 1 {
			vals += ", "
		}
		vals += fmt.Sprintf("(%d, 0)", id)
	}
	if _, err := env.query("e17-seed", "INSERT INTO bench.counter VALUES "+vals); err != nil {
		return nil, err
	}
	return w, nil
}

// e17Op is one writer's statement: a blind ledger append for three in
// four writers, a counter read-modify-write for the rest. uid keeps
// ledger keys globally unique.
func e17Op(w, uid int) string {
	if w%4 == 3 {
		return fmt.Sprintf("UPDATE bench.counter SET v = v + 1 WHERE id = %d", w%e17Counters+1)
	}
	return fmt.Sprintf("INSERT INTO bench.ledger VALUES (%d, %d)", uid, w)
}

// RunE17 sweeps writer counts {1, 4, 16, 64, 256}; scale multiplies
// the number of same-snapshot rounds per writer count.
func RunE17(scale int) (E17Result, error) {
	if scale < 1 {
		scale = 1
	}
	res := E17Result{Rounds: 2 * scale}
	for _, writers := range []int{1, 4, 16, 64, 256} {
		row, err := runE17Writers(writers, res.Rounds)
		if err != nil {
			return E17Result{}, err
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

func runE17Writers(writers, rounds int) (E17Row, error) {
	w, err := newE17World()
	if err != nil {
		return E17Row{}, err
	}
	row := E17Row{Writers: writers}
	uid := 0
	t0 := w.env.Clock.Now()
	for r := 0; r < rounds; r++ {
		// All writers of the round begin before any commits: every
		// session pins the same snapshot.
		sess := make([]*txn.Session, writers)
		sqls := make([]string, writers)
		for i := 0; i < writers; i++ {
			uid++
			sqls[i] = e17Op(i, uid)
			sess[i] = w.tm.Begin(Admin, fmt.Sprintf("e17-w%d-r%d-s%d-a0", writers, r, i))
			if _, err := sess[i].Exec(sqls[i]); err != nil {
				return E17Row{}, fmt.Errorf("w%d r%d s%d exec: %w", writers, r, i, err)
			}
		}
		// Commit in writer order; each loser re-begins from a fresh
		// snapshot, re-executes, and retries immediately.
		for i := 0; i < writers; i++ {
			s := sess[i]
			for attempt := 1; ; attempt++ {
				row.Attempts++
				if _, err := s.Commit(nil); err == nil {
					row.Committed++
					break
				} else if !errors.Is(err, txn.ErrConflict) {
					return E17Row{}, fmt.Errorf("w%d r%d s%d commit: %w", writers, r, i, err)
				}
				row.Aborts++
				if attempt >= e17MaxAttempts {
					row.Failed++
					break
				}
				row.Retries++
				s = w.tm.Begin(Admin, fmt.Sprintf("e17-w%d-r%d-s%d-a%d", writers, r, i, attempt))
				if _, err := s.Exec(sqls[i]); err != nil {
					return E17Row{}, fmt.Errorf("w%d r%d s%d re-exec: %w", writers, r, i, err)
				}
			}
		}
	}
	txnSecs := (w.env.Clock.Now() - t0).Seconds()

	// Baseline: the identical operation stream as autocommit DML in a
	// fresh world — same journaled commit protocol, no transaction
	// sessions, so no snapshots to validate and nothing to retry.
	b, err := newE17World()
	if err != nil {
		return E17Row{}, err
	}
	uid = 0
	b0 := b.env.Clock.Now()
	for r := 0; r < rounds; r++ {
		for i := 0; i < writers; i++ {
			uid++
			if _, err := b.env.query(fmt.Sprintf("e17-base-%d-%d", r, i), e17Op(i, uid)); err != nil {
				return E17Row{}, fmt.Errorf("baseline w%d r%d s%d: %w", writers, r, i, err)
			}
		}
	}
	baseSecs := (b.env.Clock.Now() - b0).Seconds()

	row.AbortRate = float64(row.Aborts) / float64(row.Attempts)
	if txnSecs > 0 {
		row.TxnPerSec = float64(row.Committed) / txnSecs
	}
	if baseSecs > 0 {
		row.BasePerSec = float64(rounds*writers) / baseSecs
	}
	if row.TxnPerSec > 0 {
		row.Overhead = row.BasePerSec / row.TxnPerSec
	}
	return row, nil
}
