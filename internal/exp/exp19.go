package exp

// E19: end-to-end data integrity under silent corruption. For each
// per-object corruption rate the sweep builds a managed table, keeps
// pristine replicas, then (1) flips bits in a seeded fraction of the
// stored objects and runs a query phase with response-level corruption
// at the same rate — queries may fail with typed integrity errors but
// must never return a wrong answer; (2) runs the byte-budgeted
// scrubber until it has walked the whole corpus, measuring scrub cost
// in bytes and simulated time; (3) repairs the quarantine from the
// replicas and re-verifies the golden answers bit-for-bit. The
// headline criteria: wrong-answer rate is zero at every rate, every
// damaged object is detected and quarantined (detection rate 1.0), and
// repair restores full availability at >= 1% corruption.

import (
	"errors"
	"fmt"
	"strings"
	"time"

	"biglake/internal/bigmeta"
	"biglake/internal/blmt"
	"biglake/internal/catalog"
	"biglake/internal/colfmt"
	"biglake/internal/engine"
	"biglake/internal/integrity"
	"biglake/internal/objstore"
	"biglake/internal/scrub"
	"biglake/internal/sim"
	"biglake/internal/vector"
)

// E19Config shapes one integrity sweep.
type E19Config struct {
	Seed uint64
	// Rates are the per-object corruption rates swept; each rate damages
	// round(rate*Files) stored objects and corrupts GET responses with
	// the same probability during the query phase.
	Rates []float64
	// Files and RowsPerFile size the managed table.
	Files       int
	RowsPerFile int
	// Queries is the number of queries in the corruption-exposed phase.
	Queries int
	// ScrubBudget is the scrubber's bytes-per-pass I/O budget
	// (0 = half the corpus, forcing at least two resumed passes).
	ScrubBudget int64
}

// DefaultE19Config returns the benchmark configuration; scale
// multiplies the file population.
func DefaultE19Config(scale int) E19Config {
	if scale < 1 {
		scale = 1
	}
	return E19Config{
		Seed:        19,
		Rates:       []float64{0.005, 0.01, 0.02, 0.05},
		Files:       120 * scale,
		RowsPerFile: 64,
		Queries:     12,
	}
}

// E19Row is one corruption rate's measurement.
type E19Row struct {
	Rate    float64
	Files   int
	Damaged int
	// Query phase (stored damage + response-level corruption at Rate).
	Queries        int
	TypedFailures  int
	OtherFailures  int
	WrongAnswers   int
	RefetchHeals   int64
	ScanQuarantine int
	// Scrub phase (response corruption cleared; at-rest damage remains).
	ScrubPasses   int
	ScrubBytes    int64
	ScrubTime     time.Duration
	ScrubFound    int
	Quarantined   int
	DetectionRate float64
	// Repair phase.
	RepairTime       time.Duration
	Rewritten        int
	Reverified       int
	RepairFailed     int
	FullAvailability bool
}

// E19Result is the sweep table plus the headline criteria.
type E19Result struct {
	Rows []E19Row
	// WrongAnswers is the sweep-wide total; the invariant is zero.
	WrongAnswers int
	// AllDetected reports every damaged object was quarantined.
	AllDetected bool
	// RestoredAtOnePercent reports repair restored full availability at
	// every rate >= 1%.
	RestoredAtOnePercent bool
}

// e19World is one self-contained environment with a Files-file managed
// table, its pristine replicas, and a repair-capable blmt manager.
type e19World struct {
	env      *Env
	mgr      *blmt.Manager
	keys     []string
	replicas map[string][]byte
	bytes    int64 // total stored corpus size
}

func newE19World(cfg E19Config) (*e19World, error) {
	env, err := NewEnv(engine.DefaultOptions())
	if err != nil {
		return nil, err
	}
	if err := env.Cat.CreateTable(catalog.Table{
		Dataset: "bench", Name: "fact", Type: catalog.Managed,
		Schema: vector.NewSchema(
			vector.Field{Name: "id", Type: vector.Int64},
			vector.Field{Name: "v", Type: vector.Int64},
		),
		Cloud: "gcp", Bucket: "bench", Prefix: "blmt/bench/fact/", Connection: "conn",
	}); err != nil {
		return nil, err
	}
	mgr := blmt.New(env.Cat, env.Auth, env.Log, env.Clock, map[string]*objstore.Store{"gcp": env.Store})
	mgr.DefaultCloud, mgr.DefaultBucket, mgr.DefaultConnection = "gcp", "bench", "conn"
	env.Engine.SetMutator(mgr)

	w := &e19World{env: env, mgr: mgr, replicas: map[string][]byte{}}
	schema := vector.NewSchema(
		vector.Field{Name: "id", Type: vector.Int64},
		vector.Field{Name: "v", Type: vector.Int64},
	)
	var entries []bigmeta.FileEntry
	for i := 0; i < cfg.Files; i++ {
		bl := vector.NewBuilder(schema)
		for r := 0; r < cfg.RowsPerFile; r++ {
			id := int64(i*cfg.RowsPerFile + r)
			bl.Append(vector.IntValue(id), vector.IntValue(id%7))
		}
		file, err := colfmt.WriteFile(bl.Build(), colfmt.WriterOptions{})
		if err != nil {
			return nil, err
		}
		key := fmt.Sprintf("blmt/bench/fact/data/seed-%06d.blk", i)
		info, err := env.Store.Put(env.Cred, "bench", key, file, "application/x-blk")
		if err != nil {
			return nil, err
		}
		w.keys = append(w.keys, key)
		w.replicas[key] = append([]byte(nil), file...)
		w.bytes += info.Size
		entries = append(entries, bigmeta.FileEntry{
			Bucket: "bench", Key: key, Size: info.Size,
			Generation: info.Generation, RowCount: int64(cfg.RowsPerFile),
		})
	}
	if _, err := env.Log.Commit(string(Admin), map[string]bigmeta.TableDelta{
		"bench.fact": {Added: entries},
	}); err != nil {
		return nil, err
	}
	return w, nil
}

// engine builds a cold-cache scan engine over the world, so every
// phase re-fetches (and re-verifies) from the store.
func (w *e19World) engine() *engine.Engine {
	opts := engine.DefaultOptions()
	opts.EnableScanCache = true
	eng := engine.New(w.env.Cat, w.env.Auth, w.env.Meta, w.env.Log, w.env.Clock,
		map[string]*objstore.Store{"gcp": w.env.Store}, opts)
	eng.ManagedCred = w.env.Cred
	eng.SetMutator(w.mgr)
	eng.UseObs(w.env.Obs)
	return eng
}

// e19Queries is the deterministic query mix: full aggregate, grouped
// aggregate, and rotating point lookups — all ordered, so results
// compare positionally.
func e19Queries(cfg E19Config) []string {
	qs := make([]string, cfg.Queries)
	for i := range qs {
		switch i % 3 {
		case 0:
			qs[i] = "SELECT COUNT(*) AS n, SUM(v) AS s FROM bench.fact"
		case 1:
			qs[i] = "SELECT v, COUNT(*) AS n FROM bench.fact GROUP BY v ORDER BY v"
		default:
			qs[i] = fmt.Sprintf("SELECT id, v FROM bench.fact WHERE id = %d",
				(i*131)%(cfg.Files*cfg.RowsPerFile))
		}
	}
	return qs
}

// renderRows is the comparison fingerprint: typed values row by row.
func renderRows(b *vector.Batch) string {
	var sb strings.Builder
	for r := 0; r < b.N; r++ {
		for _, v := range b.Row(r) {
			if v.IsNull() {
				sb.WriteString("NULL|")
			} else {
				fmt.Fprintf(&sb, "%d:%s|", v.Type, v.String())
			}
		}
		sb.WriteString("\n")
	}
	return sb.String()
}

// RunE19 runs the default configuration at the given scale.
func RunE19(scale int) (E19Result, error) {
	return RunE19Config(DefaultE19Config(scale))
}

// RunE19Config sweeps the configured corruption rates. Each rate runs
// in a fresh world; every random choice is seeded.
func RunE19Config(cfg E19Config) (E19Result, error) {
	if len(cfg.Rates) == 0 {
		cfg.Rates = []float64{0.005, 0.01, 0.02, 0.05}
	}
	res := E19Result{AllDetected: true, RestoredAtOnePercent: true}
	for ri, rate := range cfg.Rates {
		w, err := newE19World(cfg)
		if err != nil {
			return res, err
		}
		row := E19Row{Rate: rate, Files: cfg.Files, Queries: cfg.Queries}

		// Golden answers from the pristine world.
		queries := e19Queries(cfg)
		golden := make([]string, len(queries))
		cleanEng := w.engine()
		for qi, sql := range queries {
			r, err := cleanEng.Query(engine.NewContext(Admin, fmt.Sprintf("e19-golden-%d-%d", ri, qi)), sql)
			if err != nil {
				return res, fmt.Errorf("golden %q: %w", sql, err)
			}
			golden[qi] = renderRows(r.Batch)
		}

		// Damage round(rate*Files) stored objects, chosen by seeded
		// shuffle so different rates damage overlapping prefixes of the
		// same permutation.
		damaged := int(rate*float64(cfg.Files) + 0.5)
		rng := sim.NewRNG(cfg.Seed*7919 + uint64(ri))
		perm := make([]int, cfg.Files)
		for i := range perm {
			perm[i] = i
		}
		for i := cfg.Files - 1; i > 0; i-- {
			j := rng.Intn(i + 1)
			perm[i], perm[j] = perm[j], perm[i]
		}
		damagedKeys := map[string]bool{}
		for i := 0; i < damaged; i++ {
			key := w.keys[perm[i]]
			if err := w.env.Store.FlipStoredBit("bench", key, int64(37+97*i)); err != nil {
				return res, err
			}
			damagedKeys[key] = true
		}
		row.Damaged = damaged

		// Phase 1: queries against the damaged table with response-level
		// corruption at the same rate. Typed failures are allowed; wrong
		// answers are the invariant.
		w.env.Store.InjectFaults(objstore.FaultProfile{
			Seed: cfg.Seed ^ uint64(ri)<<8, CorruptRate: rate,
		})
		heals0 := w.env.Obs.Get("integrity.recovered.refetch")
		qEng := w.engine()
		for qi, sql := range queries {
			r, err := qEng.Query(engine.NewContext(Admin, fmt.Sprintf("e19-q-%d-%d", ri, qi)), sql)
			if err != nil {
				if errors.Is(err, integrity.ErrCorrupt) {
					row.TypedFailures++
				} else {
					row.OtherFailures++
				}
				continue
			}
			if renderRows(r.Batch) != golden[qi] {
				row.WrongAnswers++
			}
		}
		w.env.Store.ClearFaults()
		row.RefetchHeals = w.env.Obs.Get("integrity.recovered.refetch") - heals0
		row.ScanQuarantine = len(w.env.Log.Quarantined("bench.fact"))

		// Phase 2: budgeted scrub until the whole corpus is walked.
		budget := cfg.ScrubBudget
		if budget <= 0 {
			budget = w.bytes / 2
		}
		sc := &scrub.Scrubber{
			Catalog: w.env.Cat, Auth: w.env.Auth, Log: w.env.Log,
			Clock: w.env.Clock, Stores: map[string]*objstore.Store{"gcp": w.env.Store},
			Obs: w.env.Obs, Principal: string(Admin), BytesPerPass: budget,
		}
		t0 := w.env.Clock.Now()
		for {
			rep, err := sc.Pass([]string{"bench.fact"})
			if err != nil {
				return res, err
			}
			row.ScrubPasses++
			row.ScrubBytes += rep.BytesVerified
			row.ScrubFound += rep.CorruptFound
			if !rep.Exhausted || row.ScrubPasses > cfg.Files+2 {
				break
			}
		}
		row.ScrubTime = w.env.Clock.Now() - t0

		marks := w.env.Log.Quarantined("bench.fact")
		row.Quarantined = len(marks)
		caught := 0
		for _, m := range marks {
			if damagedKeys[m.Key] {
				caught++
			}
		}
		if damaged > 0 {
			row.DetectionRate = float64(caught) / float64(damaged)
		} else {
			row.DetectionRate = 1
		}

		// Phase 3: repair from the pristine replicas, then re-verify the
		// golden answers with a fresh engine.
		t0 = w.env.Clock.Now()
		rr, err := w.mgr.Repair(string(Admin), "bench.fact", func(t catalog.Table, f bigmeta.FileEntry) ([]byte, error) {
			data, ok := w.replicas[f.Key]
			if !ok {
				return nil, fmt.Errorf("no replica for %s", f.Key)
			}
			return data, nil
		})
		if err != nil {
			return res, err
		}
		row.RepairTime = w.env.Clock.Now() - t0
		row.Rewritten, row.Reverified, row.RepairFailed = rr.Rewritten, rr.Reverified, len(rr.Failed)

		restored := len(w.env.Log.Quarantined("bench.fact")) == 0 && row.RepairFailed == 0
		postEng := w.engine()
		for qi, sql := range queries {
			r, err := postEng.Query(engine.NewContext(Admin, fmt.Sprintf("e19-post-%d-%d", ri, qi)), sql)
			if err != nil || renderRows(r.Batch) != golden[qi] {
				restored = false
				break
			}
		}
		row.FullAvailability = restored

		res.Rows = append(res.Rows, row)
		res.WrongAnswers += row.WrongAnswers
		if row.DetectionRate < 1 {
			res.AllDetected = false
		}
		if rate >= 0.01 && !row.FullAvailability {
			res.RestoredAtOnePercent = false
		}
	}
	return res, nil
}
