package exp

import (
	"reflect"
	"testing"
	"time"
)

func tinyE21() E21Config {
	return E21Config{
		E18: E18Config{
			Seed: 21, Tenants: 32, QueriesPerTenant: 4,
			MaxConcurrent: 4, MaxQueue: 4, MaxQueueWait: 50 * time.Millisecond,
			Chaos: true, CalibrationQueries: 8,
		},
		Load: 3, TopN: 5,
	}
}

// TestE21 is the acceptance run at tiny scale: recording must cost
// nothing on the simulated timeline (identical checksums), and every
// operator question must be answerable purely through system.* SQL.
func TestE21(t *testing.T) {
	res, err := RunE21Config(tinyE21())
	if err != nil {
		t.Fatal(err)
	}
	if !res.ChecksumMatch {
		t.Error("recording arm diverged from blind arm")
	}
	if res.OverheadPct > 2 {
		t.Errorf("overhead %.2f%% > 2%%", res.OverheadPct)
	}
	if res.Shed == 0 {
		t.Error("3x overload shed nothing; shed timeline is vacuous")
	}
	if res.JobsRetained == 0 {
		t.Error("recording arm retained no jobs")
	}
	if len(res.TopTenants) == 0 {
		t.Fatal("no tenant leaderboard rows")
	}
	for i := 1; i < len(res.TopTenants); i++ {
		if res.TopTenants[i].TotalUs > res.TopTenants[i-1].TotalUs {
			t.Errorf("leaderboard not sorted: %d us after %d us",
				res.TopTenants[i].TotalUs, res.TopTenants[i-1].TotalUs)
		}
	}
	if len(res.SLO) < 3 {
		t.Errorf("slo rows = %d, want >= 3 (point/olap/dml observed)", len(res.SLO))
	}
	for _, r := range res.SLO {
		if r.Total > 0 && r.P99Us == 0 {
			t.Errorf("class %s observed %d samples but p99 = 0", r.Class, r.Total)
		}
	}
	if len(res.ShedTimeline) < 2 {
		t.Fatalf("shed timeline has %d points, want >= 2", len(res.ShedTimeline))
	}
	if !res.ReconcileOK {
		t.Error("metrics_history deltas do not reconcile with the live counter")
	}
}

// TestE21Deterministic: same config, same simulated answers (wall
// fields are host-time and excluded).
func TestE21Deterministic(t *testing.T) {
	a, err := RunE21Config(tinyE21())
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunE21Config(tinyE21())
	if err != nil {
		t.Fatal(err)
	}
	a.WallOff, a.WallOn, b.WallOff, b.WallOn = 0, 0, 0, 0
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("E21 not deterministic:\n%+v\nvs\n%+v", a, b)
	}
}

// TestRunTop: the benchlake top path returns sorted jobs and hot
// counters via SQL.
func TestRunTop(t *testing.T) {
	res, err := RunTop(5)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Jobs) == 0 || len(res.Metrics) == 0 {
		t.Fatalf("top returned %d jobs, %d metrics", len(res.Jobs), len(res.Metrics))
	}
	for i := 1; i < len(res.Jobs); i++ {
		if res.Jobs[i].ExecSimUs > res.Jobs[i-1].ExecSimUs {
			t.Error("top jobs not sorted by exec_sim_us desc")
		}
	}
	for i := 1; i < len(res.Metrics); i++ {
		if res.Metrics[i].Value > res.Metrics[i-1].Value {
			t.Error("top metrics not sorted by value desc")
		}
	}
}
