package exp

import (
	"fmt"
	"time"

	"biglake/internal/bigmeta"
	"biglake/internal/blmt"
	"biglake/internal/catalog"
	"biglake/internal/engine"
	"biglake/internal/inference"
	"biglake/internal/mlmodel"
	"biglake/internal/objstore"
	"biglake/internal/objtable"
	"biglake/internal/sim"
	"biglake/internal/vector"
)

// --- E5: §3.5 — BLMT commit throughput vs object-store commits ---

// E5Result compares commit rates.
type E5Result struct {
	Commits             int
	BLMTTime            time.Duration
	ObjectStoreTime     time.Duration
	BLMTPerSecond       float64
	ObjStorePerSecond   float64
	ThroughputAdvantage float64
	// ReadAfterCommits verifies reads stay fast: simulated time of a
	// full-table read after all commits (tail + baseline reconcile).
	ReadAfterCommits time.Duration
}

// RunE5 performs n small commits through the BLMT path and through an
// object-store-committed (Iceberg-style) pointer CAS.
func RunE5(n int) (E5Result, error) {
	env, err := NewEnv(engine.DefaultOptions())
	if err != nil {
		return E5Result{}, err
	}
	mgr := blmt.New(env.Cat, env.Auth, env.Log, env.Clock, map[string]*objstore.Store{"gcp": env.Store})
	mgr.DefaultCloud, mgr.DefaultBucket, mgr.DefaultConnection = "gcp", "bench", "conn"
	env.Engine.SetMutator(mgr)

	schema := vector.NewSchema(
		vector.Field{Name: "id", Type: vector.Int64},
		vector.Field{Name: "v", Type: vector.Float64},
	)
	if err := env.Cat.CreateTable(catalog.Table{
		Dataset: "bench", Name: "stream", Type: catalog.Managed, Schema: schema,
		Cloud: "gcp", Bucket: "bench", Prefix: "blmt/stream/", Connection: "conn",
	}); err != nil {
		return E5Result{}, err
	}

	ctx := engine.NewContext(Admin, "e5")
	start := env.Clock.Now()
	for i := 0; i < n; i++ {
		bl := vector.NewBuilder(schema)
		bl.Append(vector.IntValue(int64(i)), vector.FloatValue(float64(i)))
		if err := mgr.Insert(ctx, "bench.stream", bl.Build()); err != nil {
			return E5Result{}, err
		}
	}
	blmtTime := env.Clock.Now() - start

	// Iceberg-style: every commit CAS-updates the table's metadata
	// pointer object.
	gen := int64(0)
	start = env.Clock.Now()
	for i := 0; i < n; i++ {
		info, err := env.Store.PutIfGeneration(env.Cred, "bench", "iceberg/metadata.json", []byte(fmt.Sprintf("snap-%d", i)), "", gen)
		if err != nil {
			return E5Result{}, err
		}
		gen = info.Generation
	}
	objTime := env.Clock.Now() - start

	// Read-side check.
	before := env.Clock.Now()
	if _, err := env.query("e5-read", "SELECT COUNT(*) AS n FROM bench.stream"); err != nil {
		return E5Result{}, err
	}
	readTime := env.Clock.Now() - before

	out := E5Result{
		Commits: n, BLMTTime: blmtTime, ObjectStoreTime: objTime,
		ReadAfterCommits: readTime,
	}
	if blmtTime > 0 {
		out.BLMTPerSecond = float64(n) / blmtTime.Seconds()
	}
	if objTime > 0 {
		out.ObjStorePerSecond = float64(n) / objTime.Seconds()
	}
	if out.ObjStorePerSecond > 0 {
		out.ThroughputAdvantage = out.BLMTPerSecond / out.ObjStorePerSecond
	}
	return out, nil
}

// --- E6: §4.1 — object tables vs direct listing at scale ---

// E6Result compares asset-inventory operations over a large bucket.
type E6Result struct {
	Objects     int
	DirectList  time.Duration
	ObjectTable time.Duration
	SampleTime  time.Duration
	SampleRows  int
	ListSpeedup float64
}

// RunE6 creates objects in a bucket, then inventories them via direct
// listing and via an object table backed by the metadata cache, and
// draws the §4.1 1% sample.
func RunE6(objects int) (E6Result, error) {
	env, err := NewEnv(engine.DefaultOptions())
	if err != nil {
		return E6Result{}, err
	}
	for i := 0; i < objects; i++ {
		if _, err := env.Store.Put(env.Cred, "bench", fmt.Sprintf("assets/img-%07d.jpg", i), []byte("x"), "image/jpeg"); err != nil {
			return E6Result{}, err
		}
	}
	if err := env.Cat.CreateTable(catalog.Table{
		Dataset: "bench", Name: "assets", Type: catalog.Object,
		Cloud: "gcp", Bucket: "bench", Prefix: "assets/", Connection: "conn", MetadataCaching: true,
	}); err != nil {
		return E6Result{}, err
	}
	// Background maintenance builds the cache.
	if _, err := env.Meta.Refresh("bench.assets", env.Store, env.Cred, "bench", "assets/", bigmeta.RefreshOptions{Background: true}); err != nil {
		return E6Result{}, err
	}

	// Direct listing on the query path.
	before := env.Clock.Now()
	if _, err := env.Store.ListAll(env.Cred, "bench", "assets/"); err != nil {
		return E6Result{}, err
	}
	direct := env.Clock.Now() - before

	// Object-table inventory.
	before = env.Clock.Now()
	res, err := env.query("e6", "SELECT COUNT(*) AS n FROM bench.assets")
	if err != nil {
		return E6Result{}, err
	}
	tableTime := env.Clock.Now() - before
	if got := res.Batch.Column("n").Value(0).AsInt(); got != int64(objects) {
		return E6Result{}, fmt.Errorf("object table saw %d objects, want %d", got, objects)
	}

	// The two-line 1% sample.
	before = env.Clock.Now()
	all, err := env.query("e6-sample", "SELECT uri FROM bench.assets")
	if err != nil {
		return E6Result{}, err
	}
	sample, err := objtable.Sample(all.Batch, 0.01, 42)
	if err != nil {
		return E6Result{}, err
	}
	sampleTime := env.Clock.Now() - before

	out := E6Result{
		Objects: objects, DirectList: direct, ObjectTable: tableTime,
		SampleTime: sampleTime, SampleRows: sample.N,
	}
	// Cache-served inventories can be free in simulated time; floor
	// the denominator at 1ms so the speedup stays finite.
	den := tableTime
	if den < time.Millisecond {
		den = time.Millisecond
	}
	out.ListSpeedup = float64(direct) / float64(den)
	return out, nil
}

// --- E7: §4.2.1 / Figure 7 — distributed preprocess/infer split ---

// E7Result reports worker memory and wire behaviour.
type E7Result struct {
	Images              int
	ColocatedPeakBytes  int64
	SplitPeakBytes      int64
	MemoryReduction     float64
	TensorWireBytes     int64
	RawImageBytes       int64
	WireReductionFactor float64
}

// RunE7 runs in-engine image inference with the Figure 7 split on and
// off.
func RunE7(images int) (E7Result, error) {
	env, rt, err := newInferenceEnv(images)
	if err != nil {
		return E7Result{}, err
	}
	query := `SELECT predictions FROM ML.PREDICT(MODEL bench.resnet50,
		(SELECT ML.DECODE_IMAGE(uri) AS image FROM bench.images))`

	rt.Colocate = true
	if _, err := env.query("e7a", query); err != nil {
		return E7Result{}, err
	}
	colocated := rt.LastRun()

	rt.Colocate = false
	if _, err := env.query("e7b", query); err != nil {
		return E7Result{}, err
	}
	split := rt.LastRun()

	out := E7Result{
		Images:             images,
		ColocatedPeakBytes: colocated.PeakWorkerBytes,
		SplitPeakBytes:     split.PeakWorkerBytes,
		TensorWireBytes:    split.TensorWireBytes,
		RawImageBytes:      split.RawImageBytes,
	}
	if split.PeakWorkerBytes > 0 {
		out.MemoryReduction = float64(colocated.PeakWorkerBytes) / float64(split.PeakWorkerBytes)
	}
	if split.TensorWireBytes > 0 {
		out.WireReductionFactor = float64(split.RawImageBytes) / float64(split.TensorWireBytes)
	}
	return out, nil
}

func newInferenceEnv(images int) (*Env, *inference.Runtime, error) {
	env, err := NewEnv(engine.DefaultOptions())
	if err != nil {
		return nil, nil, err
	}
	rng := sim.NewRNG(7)
	classes := []string{"dark", "dim", "bright", "blinding"}
	for i := 0; i < images; i++ {
		img := mlmodel.RandomImage(rng, 1024, 1024, i%len(classes), len(classes))
		enc, err := mlmodel.EncodeImage(img)
		if err != nil {
			return nil, nil, err
		}
		if _, err := env.Store.Put(env.Cred, "bench", fmt.Sprintf("imgs/i-%05d.jpg", i), enc, "image/jpeg"); err != nil {
			return nil, nil, err
		}
	}
	if err := env.Cat.CreateTable(catalog.Table{
		Dataset: "bench", Name: "images", Type: catalog.Object,
		Cloud: "gcp", Bucket: "bench", Prefix: "imgs/", Connection: "conn", MetadataCaching: true,
	}); err != nil {
		return nil, nil, err
	}
	rt := inference.NewRuntime(env.Auth, map[string]*objstore.Store{"gcp": env.Store}, env.Clock, env.Cred)
	rt.Attach(env.Engine)
	model := mlmodel.NewClassifier("resnet50", inference.TensorSide, 16, classes, 42)
	model.SizeBytes = sim.MB
	rt.RegisterModel(&inference.Model{Name: "bench.resnet50", Classifier: model})
	return env, rt, nil
}

// --- E8: §4.2 — in-engine vs external inference under burst ---

// E8Result compares burst handling and the model-size boundary.
type E8Result struct {
	Queries          int
	InEngineTime     time.Duration
	RemoteTime       time.Duration
	RemotePenalty    float64
	BigModelRejected bool // >2GB models must go external
}

// RunE8 fires a burst of inference queries at the in-engine path and
// at a capacity-bound remote endpoint.
func RunE8(queries, imagesPerQuery int) (E8Result, error) {
	env, rt, err := newInferenceEnv(imagesPerQuery)
	if err != nil {
		return E8Result{}, err
	}

	local := `SELECT predictions FROM ML.PREDICT(MODEL bench.resnet50,
		(SELECT ML.DECODE_IMAGE(uri) AS image FROM bench.images))`
	start := env.Clock.Now()
	for i := 0; i < queries; i++ {
		if _, err := env.query(fmt.Sprintf("e8l%d", i), local); err != nil {
			return E8Result{}, err
		}
	}
	inEngine := env.Clock.Now() - start

	// Remote endpoint with fixed capacity.
	server, err := inference.StartModelServer(env.Clock)
	if err != nil {
		return E8Result{}, err
	}
	defer server.Close()
	model := mlmodel.NewClassifier("bench.remote", inference.TensorSide, 16, []string{"dark", "dim", "bright", "blinding"}, 42)
	rt.RegisterModel(&inference.Model{Name: "bench.remote"})
	server.Host(model)
	if err := rt.ConnectRemote("bench.remote", server); err != nil {
		return E8Result{}, err
	}
	remote := `SELECT predictions FROM ML.PREDICT(MODEL bench.remote,
		(SELECT ML.DECODE_IMAGE(uri) AS image FROM bench.images))`
	start = env.Clock.Now()
	for i := 0; i < queries; i++ {
		if _, err := env.query(fmt.Sprintf("e8r%d", i), remote); err != nil {
			return E8Result{}, err
		}
	}
	remoteTime := env.Clock.Now() - start

	// The 2GB boundary.
	big := mlmodel.NewClassifier("big", inference.TensorSide, 16, []string{"a", "b"}, 1)
	big.SizeBytes = inference.MaxModelBytes + 1
	rt.RegisterModel(&inference.Model{Name: "bench.big", Classifier: big})
	_, bigErr := env.query("e8big", `SELECT predictions FROM ML.PREDICT(MODEL bench.big,
		(SELECT ML.DECODE_IMAGE(uri) AS image FROM bench.images))`)

	out := E8Result{
		Queries: queries, InEngineTime: inEngine, RemoteTime: remoteTime,
		BigModelRejected: bigErr != nil,
	}
	if inEngine > 0 {
		out.RemotePenalty = float64(remoteTime) / float64(inEngine)
	}
	return out, nil
}
