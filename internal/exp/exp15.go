package exp

import (
	"fmt"
	"strings"
	"time"

	"biglake/internal/bigmeta"
	"biglake/internal/catalog"
	"biglake/internal/colfmt"
	"biglake/internal/engine"
	"biglake/internal/vector"
)

// --- E15: vectorized parallel execution — typed hash kernels,
// morsel-driven operators, and the generation-keyed scan cache ---

// E15ScaleRow is one morsel-worker-count measurement of the
// vectorized join+aggregate path.
type E15ScaleRow struct {
	Workers int
	Time    time.Duration
	Speedup float64 // vs 1 worker
}

// E15Result reports real measured execution time of a star join +
// GROUP BY over the row-at-a-time baseline and the typed-kernel path,
// plus morsel-scaling and scan-cache effect. All arms must produce
// bit-identical results; RunE15 fails otherwise.
type E15Result struct {
	FactRows int
	DimRows  int
	// LegacyTime vs VectorizedTime is the tentpole comparison: string-
	// keyed row-at-a-time join/aggregation vs typed hash kernels at the
	// default worker count.
	LegacyTime     time.Duration
	VectorizedTime time.Duration
	Speedup        float64
	Scaling        []E15ScaleRow
	// Cold vs warm runs on a scan-cache-enabled engine. Real time shows
	// the skipped decode; simulated time shows the skipped GETs.
	CacheColdTime time.Duration
	CacheWarmTime time.Duration
	CacheColdSim  time.Duration
	CacheWarmSim  time.Duration
	CacheHits     int64
	CacheMisses   int64
}

// e15Query is the measured workload: an equi-join of the fact table
// against a dimension, grouped on a dict-encoded dimension attribute,
// with integer and float aggregates (the float SUM exercises the
// order-pinned sequential aggregation pass).
const e15Query = `SELECT d.grp, COUNT(*) AS n, SUM(f.amount) AS amt, SUM(f.price) AS rev
	FROM bench.fact AS f JOIN bench.dim AS d ON f.k = d.k
	GROUP BY d.grp ORDER BY d.grp`

// RunE15 builds a star-schema workload and measures the same
// join+GROUP BY query across executor configurations.
func RunE15(factRows int) (E15Result, error) {
	const dimRows = 1024
	const factFiles = 8
	env, err := NewEnv(engine.DefaultOptions())
	if err != nil {
		return E15Result{}, err
	}
	if err := loadE15(env, factRows, dimRows, factFiles); err != nil {
		return E15Result{}, err
	}

	// Engines share the environment's catalog/metadata/log but carry
	// their own options (the scan cache is wired at construction).
	mkEngine := func(opts engine.Options) *engine.Engine {
		eng := engine.New(env.Cat, env.Auth, env.Meta, env.Log, env.Clock, env.Engine.Stores, opts)
		eng.ManagedCred = env.Cred
		// Arm engines inherit the environment's observability so CLI
		// tracing/metrics cover the measured runs, not just env setup.
		eng.Tracer = env.Engine.Tracer
		eng.UseObs(env.Obs)
		return eng
	}
	run := func(eng *engine.Engine, id string) (*engine.Result, time.Duration, error) {
		start := time.Now()
		res, err := eng.Query(engine.NewContext(Admin, id), e15Query)
		if err != nil {
			return nil, 0, fmt.Errorf("e15 %s: %w", id, err)
		}
		return res, time.Since(start), nil
	}
	// All configurations must agree bit-exactly.
	var reference string
	check := func(res *engine.Result, id string) error {
		got := renderE15(res.Batch)
		if reference == "" {
			reference = got
			return nil
		}
		if got != reference {
			return fmt.Errorf("e15 %s: result diverges from reference arm", id)
		}
		return nil
	}
	// measure reports the best of three timed runs after one warm-up;
	// single-shot real-time numbers are too noisy to rank arms by.
	measure := func(opts engine.Options, id string) (*engine.Result, time.Duration, error) {
		eng := mkEngine(opts)
		if _, _, err := run(eng, id+"-warm"); err != nil { // warm-up
			return nil, 0, err
		}
		var best *engine.Result
		var bestT time.Duration
		for i := 0; i < 3; i++ {
			res, t, err := run(eng, fmt.Sprintf("%s-%d", id, i))
			if err != nil {
				return nil, 0, err
			}
			if best == nil || t < bestT {
				best, bestT = res, t
			}
		}
		return best, bestT, check(best, id)
	}

	out := E15Result{FactRows: factRows, DimRows: dimRows}
	base := engine.DefaultOptions()

	legacyOpts := base
	legacyOpts.RowAtATimeExec = true
	res, t, err := measure(legacyOpts, "e15-legacy")
	if err != nil {
		return E15Result{}, err
	}
	_ = res
	out.LegacyTime = t

	if res, t, err = measure(base, "e15-vectorized"); err != nil {
		return E15Result{}, err
	}
	out.VectorizedTime = t
	if out.VectorizedTime > 0 {
		out.Speedup = float64(out.LegacyTime) / float64(out.VectorizedTime)
	}

	var oneWorker time.Duration
	for _, w := range []int{1, 2, 4, 8} {
		opts := base
		opts.MorselWorkers = w
		if _, t, err = measure(opts, fmt.Sprintf("e15-w%d", w)); err != nil {
			return E15Result{}, err
		}
		row := E15ScaleRow{Workers: w, Time: t}
		if w == 1 {
			oneWorker = t
		}
		if t > 0 {
			row.Speedup = float64(oneWorker) / float64(t)
		}
		out.Scaling = append(out.Scaling, row)
	}

	// Scan-cache effect: one engine, cold then warm. No warm-up run —
	// the cold run IS the miss measurement.
	cacheOpts := base
	cacheOpts.EnableScanCache = true
	cacheEng := mkEngine(cacheOpts)
	cold, coldT, err := run(cacheEng, "e15-cache-cold")
	if err != nil {
		return E15Result{}, err
	}
	if err := check(cold, "e15-cache-cold"); err != nil {
		return E15Result{}, err
	}
	warm, warmT, err := run(cacheEng, "e15-cache-warm")
	if err != nil {
		return E15Result{}, err
	}
	if err := check(warm, "e15-cache-warm"); err != nil {
		return E15Result{}, err
	}
	out.CacheColdTime, out.CacheWarmTime = coldT, warmT
	out.CacheColdSim, out.CacheWarmSim = cold.Stats.SimElapsed, warm.Stats.SimElapsed
	out.CacheHits, out.CacheMisses = warm.Stats.CacheHits, cold.Stats.CacheMisses
	if warm.Stats.CacheHits == 0 {
		return E15Result{}, fmt.Errorf("e15: warm run hit nothing (misses=%d)", warm.Stats.CacheMisses)
	}
	return out, nil
}

// loadE15 materializes the star schema: a fact table split across
// several files and a single-file dimension, both BigLake tables with
// warmed metadata caches.
func loadE15(env *Env, factRows, dimRows, factFiles int) error {
	factSchema := vector.NewSchema(
		vector.Field{Name: "k", Type: vector.Int64},
		vector.Field{Name: "amount", Type: vector.Int64},
		vector.Field{Name: "price", Type: vector.Float64},
	)
	dimSchema := vector.NewSchema(
		vector.Field{Name: "k", Type: vector.Int64},
		vector.Field{Name: "grp", Type: vector.String},
	)
	groups := []string{"books", "music", "toys", "sports", "home", "garden", "auto", "games"}

	perFile := (factRows + factFiles - 1) / factFiles
	row := 0
	for file := 0; file < factFiles && row < factRows; file++ {
		bl := vector.NewBuilder(factSchema)
		for i := 0; i < perFile && row < factRows; i++ {
			// Deterministic multiplicative hash spreads keys over the
			// dimension with uneven group sizes.
			k := int64((uint64(row) * 2654435761) % uint64(dimRows))
			bl.Append(
				vector.IntValue(k),
				vector.IntValue(int64(row%1000)),
				vector.FloatValue(float64(row%997)/8),
			)
			row++
		}
		data, err := colfmt.WriteFile(bl.Build(), colfmt.WriterOptions{})
		if err != nil {
			return err
		}
		key := fmt.Sprintf("e15/fact/part-%03d.blk", file)
		if _, err := env.Store.Put(env.Cred, "bench", key, data, "application/x-blk"); err != nil {
			return err
		}
	}
	bl := vector.NewBuilder(dimSchema)
	for i := 0; i < dimRows; i++ {
		bl.Append(vector.IntValue(int64(i)), vector.StringValue(groups[i%len(groups)]))
	}
	data, err := colfmt.WriteFile(bl.Build(), colfmt.WriterOptions{})
	if err != nil {
		return err
	}
	if _, err := env.Store.Put(env.Cred, "bench", "e15/dim/part-000.blk", data, "application/x-blk"); err != nil {
		return err
	}

	for name, schema := range map[string]vector.Schema{"fact": factSchema, "dim": dimSchema} {
		if err := env.Cat.CreateTable(catalog.Table{
			Dataset: "bench", Name: name, Type: catalog.BigLake, Schema: schema,
			Cloud: "gcp", Bucket: "bench", Prefix: "e15/" + name + "/",
			Connection: "conn", MetadataCaching: true,
		}); err != nil {
			return err
		}
		if _, err := env.Meta.Refresh("bench."+name, env.Store, env.Cred, "bench", "e15/"+name+"/", bigmeta.RefreshOptions{WithFileStats: true, Background: true}); err != nil {
			return err
		}
	}
	return nil
}

// renderE15 serializes a result batch with type tags for bit-exact
// cross-arm comparison (floats through %v keep full round-trip form).
func renderE15(b *vector.Batch) string {
	var sb strings.Builder
	for r := 0; r < b.N; r++ {
		for _, v := range b.Row(r) {
			fmt.Fprintf(&sb, "%d:%s|", v.Type, v.String())
		}
		sb.WriteString("\n")
	}
	return sb.String()
}
