// Package exp implements the experiment harness that regenerates
// every table- and figure-shaped result of the paper (see DESIGN.md's
// per-experiment index E1–E12 and ablations A1–A5). Each RunEx
// function builds its own deterministic environment, executes the
// workload, and returns structured rows that cmd/benchlake renders and
// the root bench_test.go asserts and reports.
//
// Measurement convention: latency-bound experiments report *simulated*
// wall-clock (driven by the calibrated cloud cost model in
// internal/sim); CPU-bound experiments (E2) report real measured
// throughput.
package exp

import (
	"fmt"
	"time"

	"biglake/internal/bigmeta"
	"biglake/internal/catalog"
	"biglake/internal/colfmt"
	"biglake/internal/engine"
	"biglake/internal/objstore"
	"biglake/internal/obs"
	"biglake/internal/security"
	"biglake/internal/sim"
	"biglake/internal/sparkle"
	"biglake/internal/storageapi"
	"biglake/internal/vector"
	"biglake/internal/workload"
)

// Admin is the harness's deployment administrator.
const Admin = security.Principal("bench@biglake")

// obsHook, when set, is invoked on every environment NewEnv builds —
// the benchlake CLI uses it to install a shared registry and tracer
// across all of an experiment's environments.
var obsHook func(*Env)

// SetObsHook installs (or, with nil, removes) the environment hook.
// Not safe for concurrent use with NewEnv; the CLI sets it once per
// experiment.
func SetObsHook(h func(*Env)) { obsHook = h }

// Observe points every component of the environment at a shared
// registry and attaches a tracer to the engine (either may be nil).
func (e *Env) Observe(reg *obs.Registry, tracer *obs.Tracer) {
	if reg != nil {
		e.Obs = reg
		e.Store.UseObs(reg)
		e.Meta.UseObs(reg)
		e.Log.UseObs(reg)
		e.Engine.UseObs(reg)
		e.Server.UseObs(reg)
	}
	if tracer != nil {
		e.Engine.Tracer = tracer
	}
}

// Env is one self-contained single-region environment.
type Env struct {
	Clock  *sim.Clock
	Store  *objstore.Store
	Cat    *catalog.Catalog
	Auth   *security.Authority
	Meta   *bigmeta.Cache
	Log    *bigmeta.Log
	Engine *engine.Engine
	Server *storageapi.Server
	Cred   objstore.Credential
	WEnv   *workload.Env
	// Obs is the environment-wide metrics registry: the engine's own
	// registry with the object store, Big Metadata, and Storage API
	// teed into it, so one snapshot covers the whole environment.
	Obs *obs.Registry
}

// EnableTracing attaches a span tracer to the environment's engine and
// returns it; subsequent queries each record a span tree.
func (e *Env) EnableTracing(capTraces int) *obs.Tracer {
	tr := &obs.Tracer{Cap: capTraces}
	e.Engine.Tracer = tr
	return tr
}

// NewEnv builds an environment with the given engine options.
func NewEnv(opts engine.Options) (*Env, error) {
	clock := sim.NewClock()
	store := objstore.New(sim.GCP, clock, nil)
	cred := objstore.Credential{Principal: "sa-bench@biglake"}
	if err := store.CreateBucket(cred, "bench"); err != nil {
		return nil, err
	}
	cat := catalog.New()
	if err := cat.CreateDataset(catalog.Dataset{Name: "bench", Region: "gcp-us", Cloud: "gcp"}); err != nil {
		return nil, err
	}
	auth := security.NewAuthority("bench-secret", Admin)
	if err := auth.RegisterConnection(Admin, security.Connection{Name: "conn", ServiceAccount: cred, Cloud: "gcp"}); err != nil {
		return nil, err
	}
	meta := bigmeta.NewCache(clock, nil)
	log := bigmeta.NewLog(clock, nil)
	stores := map[string]*objstore.Store{"gcp": store}
	eng := engine.New(cat, auth, meta, log, clock, stores, opts)
	eng.ManagedCred = cred
	srv := storageapi.NewServer(cat, auth, meta, log, clock, stores)
	srv.ManagedCred = cred
	store.UseObs(eng.Obs)
	meta.UseObs(eng.Obs)
	log.UseObs(eng.Obs)
	srv.UseObs(eng.Obs)
	env := &Env{
		Clock: clock, Store: store, Cat: cat, Auth: auth, Meta: meta, Log: log,
		Engine: eng, Server: srv, Cred: cred, Obs: eng.Obs,
		WEnv: &workload.Env{
			Catalog: cat, Auth: auth, Store: store, Log: log, Clock: clock,
			Cred: cred, Connection: "conn", Bucket: "bench", Cloud: "gcp",
			Dataset: "bench", Admin: Admin,
		},
	}
	if obsHook != nil {
		obsHook(env)
	}
	return env, nil
}

func (e *Env) query(id, sql string) (*engine.Result, error) {
	return e.Engine.Query(engine.NewContext(Admin, id), sql)
}

// --- E1: Figure 4 — TPC-DS speedup with metadata caching ---

// E1Row is one query's cache-off vs cache-on measurement.
type E1Row struct {
	QueryID  string
	Kind     string
	CacheOff time.Duration
	CacheOn  time.Duration
	Speedup  float64
}

// E1Result is the Figure 4 reproduction.
type E1Result struct {
	Rows           []E1Row
	TotalOff       time.Duration
	TotalOn        time.Duration
	OverallSpeedup float64
}

// RunE1 executes the TPC-DS-like power run with metadata caching off
// and on.
func RunE1(scale int) (E1Result, error) {
	cfg := workload.DefaultTPCDS(scale)
	cfg.FilesPerDate *= 2 // more files per partition widens the footer-peek cost

	run := func(opts engine.Options) (map[string]time.Duration, time.Duration, error) {
		env, err := NewEnv(opts)
		if err != nil {
			return nil, 0, err
		}
		if err := workload.LoadTPCDS(env.WEnv, cfg); err != nil {
			return nil, 0, err
		}
		if opts.UseMetadataCache {
			// Background maintenance builds the cache before the
			// power run, as in production.
			if _, err := env.Meta.Refresh("bench.store_sales", env.Store, env.Cred, "bench", "tpcds/store_sales/", bigmeta.RefreshOptions{WithFileStats: true, Background: true}); err != nil {
				return nil, 0, err
			}
		}
		times := map[string]time.Duration{}
		var total time.Duration
		for _, q := range workload.TPCDSQueries("bench", cfg) {
			res, err := env.query(q.ID, q.SQL)
			if err != nil {
				return nil, 0, fmt.Errorf("%s: %w", q.ID, err)
			}
			times[q.ID] = res.Stats.SimElapsed
			total += res.Stats.SimElapsed
		}
		return times, total, nil
	}

	offTimes, offTotal, err := run(engine.Options{UseMetadataCache: false, EnableDPP: true, PruneGranularity: bigmeta.PruneFiles})
	if err != nil {
		return E1Result{}, err
	}
	onTimes, onTotal, err := run(engine.DefaultOptions())
	if err != nil {
		return E1Result{}, err
	}

	out := E1Result{TotalOff: offTotal, TotalOn: onTotal}
	if onTotal > 0 {
		out.OverallSpeedup = float64(offTotal) / float64(onTotal)
	}
	for _, q := range workload.TPCDSQueries("bench", cfg) {
		row := E1Row{QueryID: q.ID, Kind: q.Kind, CacheOff: offTimes[q.ID], CacheOn: onTimes[q.ID]}
		if row.CacheOn > 0 {
			row.Speedup = float64(row.CacheOff) / float64(row.CacheOn)
		}
		out.Rows = append(out.Rows, row)
	}
	return out, nil
}

// --- E2: §3.4 — vectorized vs row-oriented Read API ---

// E2Result reports real measured ReadRows throughput for both reader
// generations.
type E2Result struct {
	Rows            int
	VectorizedTime  time.Duration
	RowOrientedTime time.Duration
	ThroughputGain  float64
}

// RunE2 measures real CPU throughput of the two ReadRows pipelines
// over a dictionary/RLE-heavy table.
func RunE2(rows int) (E2Result, error) {
	env, err := NewEnv(engine.DefaultOptions())
	if err != nil {
		return E2Result{}, err
	}
	schema := vector.NewSchema(
		vector.Field{Name: "id", Type: vector.Int64},
		vector.Field{Name: "country", Type: vector.String},
		vector.Field{Name: "state", Type: vector.String},
		vector.Field{Name: "amount", Type: vector.Int64},
	)
	countries := []string{"us", "de", "fr", "jp", "br", "in", "cn", "uk"}
	states := []string{"a", "b", "c", "d"}
	bl := vector.NewBuilder(schema)
	for i := 0; i < rows; i++ {
		bl.Append(
			vector.IntValue(int64(i)),
			vector.StringValue(countries[i%len(countries)]),
			vector.StringValue(states[(i/64)%len(states)]),
			vector.IntValue(int64(i%1000)),
		)
	}
	file, err := colfmt.WriteFile(bl.Build(), colfmt.WriterOptions{RowGroupRows: 8192})
	if err != nil {
		return E2Result{}, err
	}
	if _, err := env.Store.Put(env.Cred, "bench", "wide/part-0.blk", file, ""); err != nil {
		return E2Result{}, err
	}
	if err := env.Cat.CreateTable(catalog.Table{
		Dataset: "bench", Name: "wide", Type: catalog.BigLake, Schema: schema,
		Cloud: "gcp", Bucket: "bench", Prefix: "wide/", Connection: "conn", MetadataCaching: true,
	}); err != nil {
		return E2Result{}, err
	}

	measure := func(rowOriented bool) (time.Duration, error) {
		env.Server.SessionTTL = 0 // fresh sessions per run
		start := time.Now()
		sess, err := env.Server.CreateReadSession(storageapi.ReadSessionRequest{
			Table: "bench.wide", Principal: Admin, RowOriented: rowOriented,
			Predicates: []colfmt.Predicate{{Column: "country", Op: vector.EQ, Value: vector.StringValue("de")}},
		})
		if err != nil {
			return 0, err
		}
		if _, err := env.Server.ReadAll(sess); err != nil {
			return 0, err
		}
		return time.Since(start), nil
	}
	// Warm both paths once, then measure.
	if _, err := measure(false); err != nil {
		return E2Result{}, err
	}
	if _, err := measure(true); err != nil {
		return E2Result{}, err
	}
	vec, err := measure(false)
	if err != nil {
		return E2Result{}, err
	}
	rowT, err := measure(true)
	if err != nil {
		return E2Result{}, err
	}
	out := E2Result{Rows: rows, VectorizedTime: vec, RowOrientedTime: rowT}
	if vec > 0 {
		out.ThroughputGain = float64(rowT) / float64(vec)
	}
	return out, nil
}

// --- E3: §3.4 — session statistics improve external-engine plans ---

// E3Row is one external-engine query measured blind vs stats-driven.
type E3Row struct {
	QueryID  string
	Blind    time.Duration
	WithStat time.Duration
	Speedup  float64
}

// E3Result is the external-engine planning experiment.
type E3Result struct {
	Rows           []E3Row
	OverallSpeedup float64
}

// RunE3 executes snowflake-style Sparkle plans over the TPC-DS tables
// with session statistics (join reordering + DPP) off and on.
func RunE3(scale int) (E3Result, error) {
	env, err := NewEnv(engine.DefaultOptions())
	if err != nil {
		return E3Result{}, err
	}
	// A wider fact (many item-clustered files per partition) gives the
	// stats-driven planner room to prune; this is where the paper's 5x
	// comes from.
	cfg := workload.DefaultTPCDS(scale)
	cfg.FilesPerDate = 16 * scale
	cfg.RowsPerFile = 250
	if err := workload.LoadTPCDS(env.WEnv, cfg); err != nil {
		return E3Result{}, err
	}
	// Dimensions must be readable through the Read API: register
	// BigLake copies of the dims (the loader made them native; the
	// Read API serves both, so grant access and go).
	type plan struct {
		id    string
		build func(s *sparkle.Session) *sparkle.Frame
	}
	day := int64(20240101 + int64(cfg.Dates/2))
	// The snowflake plans join the item-clustered fact with filtered
	// dimensions; block-assigned dim attributes give DPP a contiguous
	// key range to prune fact files with.
	plans := []plan{
		{"s01", func(s *sparkle.Session) *sparkle.Frame {
			fact := s.ReadBigLake(env.Server, Admin, "bench.store_sales")
			item := s.ReadBigLake(env.Server, Admin, "bench.item").
				Filter(colfmt.Predicate{Column: "i_category", Op: vector.EQ, Value: vector.StringValue("Books")})
			return fact.Join(item, "item_sk", "i_item_sk").
				GroupBy("i_category").Agg(sparkle.AggSpec{Kind: vector.AggSum, Column: "sales_price", As: "rev"})
		}},
		{"s02", func(s *sparkle.Session) *sparkle.Frame {
			fact := s.ReadBigLake(env.Server, Admin, "bench.store_sales")
			item := s.ReadBigLake(env.Server, Admin, "bench.item").
				Filter(colfmt.Predicate{Column: "i_brand", Op: vector.EQ, Value: vector.StringValue("brand_03")})
			return fact.Join(item, "item_sk", "i_item_sk").
				GroupBy("i_brand").Agg(sparkle.AggSpec{Kind: vector.AggCount, Column: "item_sk", As: "n"})
		}},
		{"s03", func(s *sparkle.Session) *sparkle.Frame {
			fact := s.ReadBigLake(env.Server, Admin, "bench.store_sales").
				Filter(colfmt.Predicate{Column: "sold_date", Op: vector.EQ, Value: vector.IntValue(day)})
			item := s.ReadBigLake(env.Server, Admin, "bench.item").
				Filter(colfmt.Predicate{Column: "i_category", Op: vector.EQ, Value: vector.StringValue("Toys")})
			return fact.Join(item, "item_sk", "i_item_sk").
				GroupBy("i_category").Agg(sparkle.AggSpec{Kind: vector.AggSum, Column: "quantity", As: "qty"})
		}},
	}

	out := E3Result{}
	var blindTotal, statTotal time.Duration
	for _, p := range plans {
		row := E3Row{QueryID: p.id}
		for _, stats := range []bool{false, true} {
			sess := sparkle.NewSession(env.Clock, sparkle.Options{UseSessionStats: stats, EnableDPP: stats})
			before := env.Clock.Now()
			if _, err := p.build(sess).Collect(); err != nil {
				return E3Result{}, fmt.Errorf("%s: %w", p.id, err)
			}
			elapsed := env.Clock.Now() - before
			if stats {
				row.WithStat = elapsed
				statTotal += elapsed
			} else {
				row.Blind = elapsed
				blindTotal += elapsed
			}
		}
		if row.WithStat > 0 {
			row.Speedup = float64(row.Blind) / float64(row.WithStat)
		}
		out.Rows = append(out.Rows, row)
	}
	if statTotal > 0 {
		out.OverallSpeedup = float64(blindTotal) / float64(statTotal)
	}
	return out, nil
}

// --- E4: §3.4 — Read API vs direct object-store reads on TPC-H ---

// E4Row is one TPC-H-like plan's direct vs Read API time.
type E4Row struct {
	QueryID string
	Direct  time.Duration
	ReadAPI time.Duration
	Ratio   float64 // direct/readapi; >= 1 means parity or better
}

// E4Result is the external-engine price-performance experiment.
type E4Result struct {
	Rows []E4Row
}

// RunE4 runs the same Sparkle plans through direct file reads and the
// Read API.
func RunE4(scale int) (E4Result, error) {
	env, err := NewEnv(engine.DefaultOptions())
	if err != nil {
		return E4Result{}, err
	}
	cfg := workload.DefaultTPCH(scale)
	if err := workload.LoadTPCH(env.WEnv, cfg); err != nil {
		return E4Result{}, err
	}
	// External engines reading files directly use the user's own
	// bucket access.
	user := objstore.Credential{Principal: "spark-user@corp"}
	if err := env.Store.Grant(env.Cred, "bench", user.Principal, objstore.PermRead); err != nil {
		return E4Result{}, err
	}
	// Warm the metadata cache as background maintenance.
	for _, tbl := range []string{"lineitem", "orders", "customer"} {
		if _, err := env.Meta.Refresh("bench."+tbl, env.Store, env.Cred, "bench", "tpch/"+tbl+"/", bigmeta.RefreshOptions{WithFileStats: true, Background: true}); err != nil {
			return E4Result{}, err
		}
	}

	type plan struct {
		id     string
		prefix string
		preds  []colfmt.Predicate
		table  string
	}
	plans := []plan{
		{"h-scan", "tpch/lineitem/", nil, "bench.lineitem"},
		{"h-filter", "tpch/lineitem/", []colfmt.Predicate{{Column: "l_quantity", Op: vector.LT, Value: vector.IntValue(10)}}, "bench.lineitem"},
		{"h-point", "tpch/lineitem/", []colfmt.Predicate{{Column: "l_orderkey", Op: vector.EQ, Value: vector.IntValue(42)}}, "bench.lineitem"},
		{"h-orders", "tpch/orders/", []colfmt.Predicate{{Column: "o_totalprice", Op: vector.GT, Value: vector.FloatValue(2500)}}, "bench.orders"},
	}
	out := E4Result{}
	for _, p := range plans {
		row := E4Row{QueryID: p.id}

		sessD := sparkle.NewSession(env.Clock, sparkle.Options{})
		frame := sessD.ReadFiles(env.Store, user, "bench", p.prefix)
		for _, pr := range p.preds {
			frame = frame.Filter(pr)
		}
		before := env.Clock.Now()
		directBatch, err := frame.Collect()
		if err != nil {
			return E4Result{}, err
		}
		row.Direct = env.Clock.Now() - before

		sessA := sparkle.NewSession(env.Clock, sparkle.Options{UseSessionStats: true})
		frame = sessA.ReadBigLake(env.Server, Admin, p.table)
		for _, pr := range p.preds {
			frame = frame.Filter(pr)
		}
		before = env.Clock.Now()
		apiBatch, err := frame.Collect()
		if err != nil {
			return E4Result{}, err
		}
		row.ReadAPI = env.Clock.Now() - before
		if directBatch.N != apiBatch.N {
			return E4Result{}, fmt.Errorf("%s: direct %d rows != readapi %d", p.id, directBatch.N, apiBatch.N)
		}
		if row.ReadAPI > 0 {
			row.Ratio = float64(row.Direct) / float64(row.ReadAPI)
		}
		out.Rows = append(out.Rows, row)
	}
	return out, nil
}
