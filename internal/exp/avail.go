package exp

import (
	"errors"
	"fmt"
	"time"

	"biglake/internal/engine"
	"biglake/internal/objstore"
	"biglake/internal/obs"
	"biglake/internal/resilience"
	"biglake/internal/workload"
)

// E13: availability under injected object-store faults. The TPC-H
// workload runs at increasing per-operation transient-fault rates,
// once with the resilience layer disabled (NoRetry — every fault
// surfaces to the query) and once with the default retry/hedging
// policy. The paper's lakehouse availability story rests on the engine
// absorbing storage-layer flakiness; this experiment quantifies how
// much absorption the unified policy buys and what it costs in
// retries.

// E13Row is one (fault rate, arm) measurement.
type E13Row struct {
	FaultRate float64
	Arm       string // "no-retry" or "resilient"
	Queries   int
	Succeeded int
	// SuccessRate is Succeeded/Queries.
	SuccessRate float64
	// Retries/Hedges are the policy counters spent across the arm.
	Retries int64
	Hedges  int64
	// FaultsInjected counts store-level injected faults seen by the arm.
	FaultsInjected int64
}

// E13Result is the availability-under-faults table.
type E13Result struct {
	Rows []E13Row
}

// e13Rates are the injected per-op transient-fault rates swept.
var e13Rates = []float64{0, 0.01, 0.03, 0.05}

// RunE13 sweeps fault rates over `rounds` repetitions of the TPC-H
// query set per arm.
func RunE13(scale, rounds int) (E13Result, error) {
	if rounds < 1 {
		rounds = 1
	}
	var out E13Result
	for _, rate := range e13Rates {
		for _, arm := range []string{"no-retry", "resilient"} {
			row, err := runE13Arm(scale, rounds, rate, arm)
			if err != nil {
				return E13Result{}, err
			}
			out.Rows = append(out.Rows, row)
		}
	}
	return out, nil
}

func runE13Arm(scale, rounds int, rate float64, arm string) (E13Row, error) {
	env, err := NewEnv(engine.DefaultOptions())
	if err != nil {
		return E13Row{}, err
	}
	if err := workload.LoadTPCH(env.WEnv, workload.DefaultTPCH(scale)); err != nil {
		return E13Row{}, err
	}
	if arm == "no-retry" {
		env.Engine.Res = resilience.NoRetry()
		env.Engine.Res.Meter = obs.Tee(env.Engine.Meter, env.Obs.Prefixed("resilience."))
	}
	queries := workload.TPCHQueries("bench")

	// Warm the metadata cache fault-free so both arms start identically.
	for _, q := range queries {
		if _, err := env.Engine.Query(engine.NewContext(Admin, "warm-"+q.ID), q.SQL); err != nil {
			return E13Row{}, err
		}
	}

	env.Store.InjectFaults(objstore.FaultProfile{
		Seed:         1337,
		Rate:         rate,
		StreakLen:    2,
		SlowdownRate: rate / 2,
		Slowdown:     300 * time.Millisecond,
	})
	row := E13Row{FaultRate: rate, Arm: arm}
	for round := 0; round < rounds; round++ {
		for _, q := range queries {
			row.Queries++
			ctx := engine.NewContext(Admin, fmt.Sprintf("e13-%d-%s", round, q.ID))
			if _, err := env.Engine.Query(ctx, q.SQL); err == nil {
				row.Succeeded++
			} else if !errors.Is(err, objstore.ErrTransient) &&
				!errors.Is(err, resilience.ErrBudgetExhausted) &&
				!errors.Is(err, resilience.ErrDeadlineExceeded) {
				return E13Row{}, fmt.Errorf("e13 %s rate %.2f: unclassified failure: %w", arm, rate, err)
			}
		}
	}
	row.SuccessRate = float64(row.Succeeded) / float64(row.Queries)
	row.Retries = env.Engine.Meter.Get("retries")
	row.Hedges = env.Engine.Meter.Get("hedges")
	row.FaultsInjected = env.Store.Meter().Get("faults_injected")
	return row, nil
}
