package exp

import (
	"fmt"
	"reflect"
	"testing"
	"time"

	"biglake/internal/engine"
)

// These tests assert the paper-shaped outcome of every experiment at
// small scale; bench_test.go at the repository root reruns them as
// benchmarks with reported metrics.

func TestE1MetadataCachingShape(t *testing.T) {
	res, err := RunE1(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 12 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	// The paper reports ~4x overall wall clock; we require >= 2x with
	// a clear spread: prunable queries speed up far more than full
	// scans.
	if res.OverallSpeedup < 2 {
		t.Fatalf("overall speedup = %.2f, want >= 2", res.OverallSpeedup)
	}
	var prunableMax, scanMin float64
	scanMin = 1e9
	for _, r := range res.Rows {
		if r.Speedup <= 0.5 {
			t.Fatalf("%s slowed down: %.2f", r.QueryID, r.Speedup)
		}
		if r.Kind == "prunable" && r.Speedup > prunableMax {
			prunableMax = r.Speedup
		}
		if r.Kind == "scan" && r.Speedup < scanMin {
			scanMin = r.Speedup
		}
	}
	// At laptop scale the per-query spread is compressed (simulated
	// data files are small relative to per-request overheads — see
	// EXPERIMENTS.md), but prunable queries must still beat full scans.
	if prunableMax < 1.25*scanMin {
		t.Fatalf("prunable speedup %.2f should exceed scan speedup %.2f", prunableMax, scanMin)
	}
}

func TestE2VectorizedReaderShape(t *testing.T) {
	res, err := RunE2(60000)
	if err != nil {
		t.Fatal(err)
	}
	// Paper: ~2x read throughput. Allow >= 1.4x for CI noise. Race
	// instrumentation penalizes the vectorized reader's tight loops
	// more than the row reader's allocation-bound ones and compresses
	// the measured gain, so under -race only require no regression.
	want := 1.4
	if raceEnabled {
		want = 1.0
	}
	if res.ThroughputGain < want {
		t.Fatalf("vectorized gain = %.2fx, want >= %.1fx", res.ThroughputGain, want)
	}
}

func TestE3SessionStatsShape(t *testing.T) {
	res, err := RunE3(1)
	if err != nil {
		t.Fatal(err)
	}
	// Paper: 5x on TPC-DS. Require >= 3x.
	if res.OverallSpeedup < 3 {
		t.Fatalf("stats speedup = %.2fx, want >= 3x", res.OverallSpeedup)
	}
	for _, r := range res.Rows {
		if r.Speedup < 0.9 {
			t.Fatalf("%s regressed with stats: %.2f", r.QueryID, r.Speedup)
		}
	}
}

func TestE4ReadAPIParityShape(t *testing.T) {
	res, err := RunE4(1)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res.Rows {
		// Paper: Read API matches or exceeds direct reads.
		if r.Ratio < 0.95 {
			t.Fatalf("%s: read api slower than direct (ratio %.2f)", r.QueryID, r.Ratio)
		}
	}
}

func TestE5CommitThroughputShape(t *testing.T) {
	res, err := RunE5(30)
	if err != nil {
		t.Fatal(err)
	}
	if res.ThroughputAdvantage < 3 {
		t.Fatalf("BLMT advantage = %.1fx, want >= 3x", res.ThroughputAdvantage)
	}
	// Object-store commits are capped at ~5/s by the mutation bound.
	if res.ObjStorePerSecond > 10 {
		t.Fatalf("object-store commits = %.1f/s, should be a handful", res.ObjStorePerSecond)
	}
}

func TestE6ObjectTableShape(t *testing.T) {
	res, err := RunE6(5000)
	if err != nil {
		t.Fatal(err)
	}
	if res.ListSpeedup < 10 {
		t.Fatalf("object-table speedup = %.1fx, want >= 10x", res.ListSpeedup)
	}
	if res.SampleRows < 20 || res.SampleRows > 120 {
		t.Fatalf("1%% sample of 5000 = %d rows", res.SampleRows)
	}
}

func TestE7DistributedInferenceShape(t *testing.T) {
	res, err := RunE7(16)
	if err != nil {
		t.Fatal(err)
	}
	if res.MemoryReduction < 1.5 {
		t.Fatalf("memory reduction = %.2fx, want >= 1.5x", res.MemoryReduction)
	}
	if res.WireReductionFactor < 5 {
		t.Fatalf("tensors should be >5x smaller than raw images, got %.1fx", res.WireReductionFactor)
	}
}

func TestE8InferenceModesShape(t *testing.T) {
	res, err := RunE8(5, 8)
	if err != nil {
		t.Fatal(err)
	}
	if res.RemotePenalty <= 1 {
		t.Fatalf("remote burst penalty = %.2fx, want > 1x", res.RemotePenalty)
	}
	if !res.BigModelRejected {
		t.Fatal(">2GB model must be rejected in-engine")
	}
}

func TestE9OmniParityShape(t *testing.T) {
	res, err := RunE9(1)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res.Rows {
		if r.Ratio > 1.7 || r.Ratio < 0.6 {
			t.Fatalf("%s: aws/gcp = %.2f, want near parity", r.QueryID, r.Ratio)
		}
	}
}

func TestE10CrossCloudShape(t *testing.T) {
	res, err := RunE10(100, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if !res.AnswersAgree {
		t.Fatal("pushdown changed the answer")
	}
	if res.EgressReduction < 3 {
		t.Fatalf("egress reduction = %.1fx, want >= 3x", res.EgressReduction)
	}
	if res.PushdownTime >= res.FullTime {
		t.Fatalf("pushdown %v should beat full shipping %v", res.PushdownTime, res.FullTime)
	}
}

func TestE11CCMVShape(t *testing.T) {
	res, err := RunE11(5, 100)
	if err != nil {
		t.Fatal(err)
	}
	if !res.ReplicaRowsCorrect {
		t.Fatal("replica rows wrong")
	}
	if res.IncrementalFiles != 1 {
		t.Fatalf("incremental copied %d files, want 1", res.IncrementalFiles)
	}
	if res.EgressReduction < 3 {
		t.Fatalf("ccmv egress reduction = %.1fx, want >= 3x", res.EgressReduction)
	}
}

func TestE12GovernanceShape(t *testing.T) {
	res, err := RunE12()
	if err != nil {
		t.Fatal(err)
	}
	if !res.RowsAgree {
		t.Fatalf("row policies differ across engines: engine=%d api=%d", res.EngineRows, res.ReadAPIRows)
	}
	if !res.MaskingAgrees {
		t.Fatal("masking differs across engines")
	}
	if !res.HostileReadDenied || !res.DeniedColumnFails {
		t.Fatalf("boundary breached: hostile=%v column=%v", res.HostileReadDenied, res.DeniedColumnFails)
	}
}

func TestA1GranularityShape(t *testing.T) {
	res, err := RunA1(1)
	if err != nil {
		t.Fatal(err)
	}
	if res.GranularityGain < 1.5 {
		t.Fatalf("file-stat pruning gain = %.1fx, want >= 1.5x", res.GranularityGain)
	}
}

func TestA2GovernancePlacementShape(t *testing.T) {
	res, err := RunA2(4000)
	if err != nil {
		t.Fatal(err)
	}
	if !res.RawLeaked {
		t.Fatal("client-side placement must expose policy-filtered rows (that is the hazard)")
	}
	if res.ExposureReduction < 2 {
		t.Fatalf("boundary enforcement should ship far fewer bytes: %.1fx", res.ExposureReduction)
	}
}

func TestA3BaselineShape(t *testing.T) {
	res, err := RunA3(2000)
	if err != nil {
		t.Fatal(err)
	}
	if res.Speedup < 2 {
		t.Fatalf("baseline read speedup = %.1fx, want >= 2x", res.Speedup)
	}
}

func TestA4WireEncodingShape(t *testing.T) {
	res, err := RunA4(20000)
	if err != nil {
		t.Fatal(err)
	}
	if res.Reduction < 2 {
		t.Fatalf("wire reduction = %.1fx, want >= 2x", res.Reduction)
	}
}

func TestE13AvailabilityShape(t *testing.T) {
	res, err := RunE13(1, 20)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 8 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	byKey := map[string]E13Row{}
	for _, r := range res.Rows {
		byKey[fmt.Sprintf("%s@%.2f", r.Arm, r.FaultRate)] = r
	}
	// Fault-free: both arms perfect, no retries spent.
	if byKey["no-retry@0.00"].SuccessRate != 1 || byKey["resilient@0.00"].SuccessRate != 1 {
		t.Fatal("fault-free arms must be perfect")
	}
	if byKey["resilient@0.00"].Retries != 0 {
		t.Fatal("no faults, no retries")
	}
	// Under faults: the resilient arm holds >= 99% while no-retry
	// visibly degrades, and the absorption is paid for in retries.
	r3, n3 := byKey["resilient@0.03"], byKey["no-retry@0.03"]
	if r3.SuccessRate < 0.99 {
		t.Fatalf("resilient success at 3%% = %.3f, want >= 0.99", r3.SuccessRate)
	}
	if n3.SuccessRate >= r3.SuccessRate {
		t.Fatalf("no-retry (%.3f) should underperform resilient (%.3f)", n3.SuccessRate, r3.SuccessRate)
	}
	if r3.Retries == 0 || r3.FaultsInjected == 0 {
		t.Fatalf("resilient arm saw no chaos: retries=%d faults=%d", r3.Retries, r3.FaultsInjected)
	}
}

func TestE15VectorizedExecShape(t *testing.T) {
	res, err := RunE15(200000)
	if err != nil {
		t.Fatal(err)
	}
	// RunE15 itself verifies every arm returns bit-identical results;
	// here we assert the performance shape. Real-time speedups are
	// noisy at test scale (and compressed under -race, which taxes the
	// kernels' tight loops hardest), so thresholds are conservative;
	// BenchmarkE15 reports the headline numbers at full scale.
	want := 1.3
	if raceEnabled {
		want = 0.7
	}
	if res.Speedup < want {
		t.Fatalf("kernel speedup = %.2fx, want >= %.1fx", res.Speedup, want)
	}
	if len(res.Scaling) != 4 {
		t.Fatalf("scaling rows = %d", len(res.Scaling))
	}
	for _, r := range res.Scaling {
		if r.Time <= 0 {
			t.Fatalf("workers=%d time=%v", r.Workers, r.Time)
		}
	}
	if res.CacheHits == 0 {
		t.Fatal("warm run produced no scan-cache hits")
	}
	if res.CacheMisses == 0 {
		t.Fatal("cold run produced no scan-cache misses")
	}
	// Cache hits skip the GETs, which must show in simulated I/O time.
	if res.CacheWarmSim >= res.CacheColdSim {
		t.Fatalf("warm sim %v should beat cold sim %v", res.CacheWarmSim, res.CacheColdSim)
	}
}

func TestE14RecoveryShape(t *testing.T) {
	res, err := RunE14(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	for i, r := range res.Rows {
		if r.RecoverySimMS <= 0 || r.GCSimMS <= 0 {
			t.Fatalf("row %d: non-positive recovery/GC time: %+v", i, r)
		}
		if r.GCDeleted != r.Orphans || r.GCBytes == 0 {
			t.Fatalf("row %d: GC mismatch: deleted=%d orphans=%d bytes=%d", i, r.GCDeleted, r.Orphans, r.GCBytes)
		}
		if i > 0 {
			prev := res.Rows[i-1]
			// The replay cost must grow with journal length, and the
			// reclaimed debris with the orphan count.
			if r.RecoverySimMS <= prev.RecoverySimMS {
				t.Fatalf("recovery time not monotone: %.2fms (n=%d) vs %.2fms (n=%d)",
					r.RecoverySimMS, r.Commits, prev.RecoverySimMS, prev.Commits)
			}
			if r.GCBytes <= prev.GCBytes {
				t.Fatalf("GC bytes not monotone: %d vs %d", r.GCBytes, prev.GCBytes)
			}
		}
	}
}

func TestE17ContentionShape(t *testing.T) {
	res, err := RunE17(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 5 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	for i, r := range res.Rows {
		if r.Failed != 0 {
			t.Fatalf("writers=%d: %d transactions exhausted retries", r.Writers, r.Failed)
		}
		if r.Committed != r.Writers*res.Rounds {
			t.Fatalf("writers=%d: committed %d, want %d", r.Writers, r.Committed, r.Writers*res.Rounds)
		}
		if r.Aborts != r.Retries {
			t.Fatalf("writers=%d: aborts=%d retries=%d — every loser should retry once", r.Writers, r.Aborts, r.Retries)
		}
		if r.TxnPerSec <= 0 || r.BasePerSec <= 0 {
			t.Fatalf("writers=%d: non-positive throughput: %+v", r.Writers, r)
		}
		if i > 0 && r.AbortRate < res.Rows[i-1].AbortRate {
			t.Fatalf("abort rate not monotone: writers=%d %.3f < writers=%d %.3f",
				r.Writers, r.AbortRate, res.Rows[i-1].Writers, res.Rows[i-1].AbortRate)
		}
	}
	if res.Rows[0].Aborts != 0 {
		t.Fatalf("single writer aborted %d times", res.Rows[0].Aborts)
	}
	if last := res.Rows[len(res.Rows)-1]; last.Aborts == 0 {
		t.Fatal("256 writers produced zero conflicts — contention generator is broken")
	}
}

// e18TestConfig is a small-but-meaningful E18 shape for tests: enough
// tenants and overload to exercise shedding and both fairness
// sub-runs, small enough to run in seconds.
func e18TestConfig() E18Config {
	return E18Config{
		Seed: 5, Tenants: 48, QueriesPerTenant: 4,
		MaxConcurrent: 2, MaxQueue: 8, MaxQueueWait: 100 * time.Millisecond,
		LoadMultiples: []float64{0.5, 1, 2, 4},
		FairTenants:   8, FairQueries: 24,
		Chaos: true, CalibrationQueries: 12,
	}
}

func TestE18OverloadShape(t *testing.T) {
	res, err := RunE18Config(e18TestConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	for _, r := range res.Rows {
		if r.Offered != 48*4 {
			t.Fatalf("load %.1f: offered = %d", r.Load, r.Offered)
		}
		// The serve layer's registry must count exactly the sheds the
		// harness observed — typed, not lost.
		if int64(r.RejQueueFull) != r.ObsQueueFull || int64(r.RejQueueWait) != r.ObsQueueWait {
			t.Fatalf("load %.1f: harness sheds (%d,%d) != obs (%d,%d)",
				r.Load, r.RejQueueFull, r.RejQueueWait, r.ObsQueueFull, r.ObsQueueWait)
		}
	}
	under, over := res.Rows[0], res.Rows[len(res.Rows)-1]
	if under.RejQueueFull+under.RejQueueWait > under.Offered/10 {
		t.Fatalf("0.5x load shed %d+%d of %d — admission too aggressive",
			under.RejQueueFull, under.RejQueueWait, under.Offered)
	}
	if over.RejQueueFull+over.RejQueueWait == 0 {
		t.Fatalf("4x load shed nothing: %+v", over)
	}
	if over.Completed == 0 {
		t.Fatal("4x load collapsed goodput to zero")
	}
	// Graceful degradation: goodput at 4x within 20% of the peak.
	if res.GoodputMaxRatio < 0.8 {
		t.Fatalf("goodput collapsed under overload: 4x/peak = %.2f (peak %.0f qps, 4x %.0f qps)",
			res.GoodputMaxRatio, res.PeakGoodput, res.GoodputAtMaxLoad)
	}
	if res.EqualFairRatio > 2 {
		t.Fatalf("equal-weight tenants diverged: max/min = %.2f", res.EqualFairRatio)
	}
	if res.WeightedRatio <= 1 {
		t.Fatalf("weight-4 tenants did not outpace weight-1: ratio = %.2f", res.WeightedRatio)
	}
}

// TestE18Deterministic reruns the same config and requires bit-equal
// results — the property that makes soak regressions diffs, not
// noise.
func TestE18Deterministic(t *testing.T) {
	cfg := e18TestConfig()
	cfg.Tenants, cfg.LoadMultiples = 16, []float64{2}
	a, err := RunE18Config(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunE18Config(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same config diverged:\n%+v\n%+v", a, b)
	}
}

// e19TestConfig is a small E19 shape: enough files that the swept
// rates damage 1 and 5 objects, small enough to run in seconds.
func e19TestConfig() E19Config {
	return E19Config{
		Seed: 3, Rates: []float64{0.01, 0.05},
		Files: 100, RowsPerFile: 8, Queries: 9,
	}
}

// TestE19IntegritySweep pins the detect -> contain -> repair arc: no
// query ever returns a wrong answer, every damaged object is detected
// and quarantined, and repair restores bit-exact golden answers.
func TestE19IntegritySweep(t *testing.T) {
	res, err := RunE19Config(e19TestConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	if res.WrongAnswers != 0 {
		t.Fatalf("silent wrong answers: %d", res.WrongAnswers)
	}
	if !res.AllDetected || !res.RestoredAtOnePercent {
		t.Fatalf("headline criteria failed: %+v", res)
	}
	for _, r := range res.Rows {
		if r.Damaged == 0 {
			t.Fatalf("rate %.3f damaged nothing — test shape too small", r.Rate)
		}
		if r.OtherFailures != 0 {
			t.Fatalf("rate %.3f: %d untyped failures", r.Rate, r.OtherFailures)
		}
		// Containment: corruption degrades to typed failures, never to
		// silently wrong rows.
		if r.TypedFailures == 0 {
			t.Fatalf("rate %.3f: at-rest damage produced no typed failures", r.Rate)
		}
		if r.DetectionRate != 1 {
			t.Fatalf("rate %.3f: detection rate %.2f", r.Rate, r.DetectionRate)
		}
		// The default budget is half the corpus, so a full walk takes at
		// least two resumed passes.
		if r.ScrubPasses < 2 || r.ScrubBytes == 0 {
			t.Fatalf("rate %.3f: scrub passes=%d bytes=%d", r.Rate, r.ScrubPasses, r.ScrubBytes)
		}
		// Repair rewrites exactly the damaged objects; marks from in-flight
		// double corruption re-verify clean.
		if r.Rewritten != r.Damaged || r.RepairFailed != 0 {
			t.Fatalf("rate %.3f: rewritten=%d damaged=%d failed=%d",
				r.Rate, r.Rewritten, r.Damaged, r.RepairFailed)
		}
		if !r.FullAvailability {
			t.Fatalf("rate %.3f: availability not restored: %+v", r.Rate, r)
		}
	}
}

// TestE19Deterministic reruns the same config and requires bit-equal
// results.
func TestE19Deterministic(t *testing.T) {
	cfg := e19TestConfig()
	cfg.Rates = []float64{0.02}
	cfg.Files, cfg.Queries = 50, 6
	a, err := RunE19Config(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunE19Config(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same config diverged:\n%+v\n%+v", a, b)
	}
}

// e20TestConfig shrinks E20 for a fast deterministic smoke run.
func e20TestConfig() E20Config {
	return E20Config{
		FactRows: 30000, DimRows: 256, FactFiles: 4,
		AllocRuns: 4, PointWarmup: 8, PointQueries: 40, MixEvery: 10,
		CellSamples: 2, Workers: []int{1, 2}, Seed: 20,
	}
}

func TestE20(t *testing.T) {
	res, err := RunE20Config(e20TestConfig())
	if err != nil {
		t.Fatal(err)
	}
	// The acceptance claim is >=5x allocs/op on the benchmark shape;
	// the shrunk smoke run keeps a margin below that but must still
	// show the arena drastically off the hot path.
	if res.AllocReduction < 3 {
		t.Fatalf("allocs/op reduction = %.2fx (eager %.0f, lean %.0f), want >= 3x",
			res.AllocReduction, res.Eager.AllocsPerOp, res.Lean.AllocsPerOp)
	}
	if res.BytesReduction < 3 {
		t.Fatalf("bytes/op reduction = %.2fx, want >= 3x", res.BytesReduction)
	}
	// Wall-clock QPS on a tiny workload is too noisy to rank arms in a
	// unit test; just require both arms ran.
	if res.EagerQPS <= 0 || res.LeanQPS <= 0 {
		t.Fatalf("point-lookup arm did not run: eager=%f lean=%f", res.EagerQPS, res.LeanQPS)
	}
	wantCells := 2 * len(e20TestConfig().Workers) * 2
	if len(res.Cells) != wantCells {
		t.Fatalf("cells = %d, want %d", len(res.Cells), wantCells)
	}
	for _, c := range res.Cells {
		if c.MeanUs <= 0 || c.Samples != e20TestConfig().CellSamples {
			t.Fatalf("bad cell %+v", c)
		}
	}
}

func TestE20TrajectoryCompare(t *testing.T) {
	base := []E20Cell{
		{Name: "a", MeanUs: 1000, StddevUs: 20},
		{Name: "b", MeanUs: 1000, StddevUs: 300},
		{Name: "gone", MeanUs: 50, StddevUs: 1},
	}
	cur := []E20Cell{
		// 30% slower, tight noise: must flag.
		{Name: "a", MeanUs: 1300, StddevUs: 25},
		// 30% slower but inside 3 sigma of a noisy cell: must not flag.
		{Name: "b", MeanUs: 1300, StddevUs: 300},
		// New cell with no baseline: skipped.
		{Name: "new", MeanUs: 9999, StddevUs: 1},
	}
	regs := TrajectoryCompare(base, cur)
	if len(regs) != 1 || regs[0].Cell != "a" {
		t.Fatalf("regressions = %v, want exactly cell a", regs)
	}
	if regs[0].ExcessUs <= 0 || regs[0].BandUs <= 0 {
		t.Fatalf("bad regression record: %+v", regs[0])
	}
	// Small-relative-change guard: 3 sigma exceeded but under 10%.
	regs = TrajectoryCompare(
		[]E20Cell{{Name: "c", MeanUs: 10000, StddevUs: 10}},
		[]E20Cell{{Name: "c", MeanUs: 10500, StddevUs: 10}})
	if len(regs) != 0 {
		t.Fatalf("flagged a <10%% drift as regression: %v", regs)
	}
}

// BenchmarkE20GCLean is the headline benchmark: the E15 star join on a
// warmed GC-lean engine. Run with -benchmem; allocs/op is the number
// the arena work is judged by.
func BenchmarkE20GCLean(b *testing.B) {
	env, err := NewEnv(engine.DefaultOptions())
	if err != nil {
		b.Fatal(err)
	}
	if err := loadE15(env, 30000, 256, 4); err != nil {
		b.Fatal(err)
	}
	opts := engine.DefaultOptions()
	opts.EnableScanCache = true
	eng := engine.New(env.Cat, env.Auth, env.Meta, env.Log, env.Clock, env.Engine.Stores, opts)
	eng.ManagedCred = env.Cred
	if _, err := eng.Query(engine.NewContext(Admin, "bench-warm"), e15Query); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.Query(engine.NewContext(Admin, fmt.Sprintf("bench-%d", i)), e15Query); err != nil {
			b.Fatal(err)
		}
	}
}
