package exp

// E20: GC-lean execution. Three measurements on one star-schema world:
//
//  1. Allocation profile of the E15 star join: the same query on the
//     same warmed engine with the per-query arena off (eager heap
//     allocation) and on. Reported as allocs/op and bytes/op from
//     runtime.MemStats deltas; both arms must return identical rows.
//  2. High-QPS mixed traffic through the serve session layer
//     (parse -> prepare -> admit -> cursor), eager vs lean: a stream
//     of point lookups with an analytic star join every MixEvery
//     statements. This is the shape where per-query garbage turns
//     into stalls — the big query's allocations trigger GC that the
//     small queries then pay for, so the arm reports point-lookup p99
//     next to aggregate QPS.
//  3. A variance-aware perf trajectory: the star join timed across
//     {scan cache warm/cold} x {workers} x {chaos on/off} cells with
//     mean and stddev per cell, committed as BENCH_E20.json so the
//     next run can flag regressions against the recorded noise bands
//     (TrajectoryCompare) instead of single-shot numbers.

import (
	"fmt"
	"math"
	"runtime"
	"sort"
	"time"

	"biglake/internal/blmt"
	"biglake/internal/engine"
	"biglake/internal/objstore"
	"biglake/internal/serve"
	"biglake/internal/txn"
	"biglake/internal/wal"
)

// E20Config shapes one E20 run; tests shrink it.
type E20Config struct {
	FactRows  int
	DimRows   int
	FactFiles int
	// AllocRuns is the measured iteration count per allocation arm.
	AllocRuns int
	// PointWarmup/PointQueries shape the serve throughput arm;
	// every MixEvery-th statement is the analytic star join instead of
	// a point lookup (0 = pure point lookups).
	PointWarmup  int
	PointQueries int
	MixEvery     int
	// CellSamples is the repetitions per variance cell; Workers is the
	// worker-count axis.
	CellSamples int
	Workers     []int
	// Seed drives the chaos profile of the chaos cells.
	Seed uint64
	// ArenaRetainBytes sizes the engine's per-arena retention cap to
	// the workload (engine.Options.ArenaRetainBytes): the star join's
	// per-query peak must fit or the pool trims the arena after every
	// query and the lean arm re-makes slabs it should have recycled.
	ArenaRetainBytes int64
}

// DefaultE20Config returns the benchmark shape at the given scale.
func DefaultE20Config(scale int) E20Config {
	if scale < 1 {
		scale = 1
	}
	return E20Config{
		FactRows:         400000 * scale,
		DimRows:          1024,
		FactFiles:        8,
		AllocRuns:        10,
		PointWarmup:      40,
		PointQueries:     400,
		MixEvery:         50,
		CellSamples:      5,
		Workers:          []int{1, 4, 8},
		Seed:             20,
		ArenaRetainBytes: 512 << 20,
	}
}

// E20AllocArm is one side of the allocation comparison. GCPerOp and
// GCPauseUsPerOp are the collector's own verdict: how many GC cycles
// (and microseconds of stop-the-world pause) each query provokes.
type E20AllocArm struct {
	AllocsPerOp    float64
	BytesPerOp     float64
	GCPerOp        float64
	GCPauseUsPerOp float64
	Time           time.Duration // total across the measured runs
}

// E20Cell is one variance-model measurement: the star join timed
// CellSamples times under a fixed {cache, workers, chaos}
// configuration. Mean/Stddev are microseconds of real time.
type E20Cell struct {
	Name      string
	Workers   int
	WarmCache bool
	Chaos     bool
	Samples   int
	MeanUs    float64
	StddevUs  float64
}

// E20Regression is one trajectory comparison verdict: the cell's new
// mean sits outside the noise band of the recorded baseline.
type E20Regression struct {
	Cell     string
	BaseUs   float64
	CurUs    float64
	BandUs   float64 // allowed excess over baseline mean
	ExcessUs float64
}

func (r E20Regression) String() string {
	return fmt.Sprintf("%s: %.0fus -> %.0fus (band +%.0fus, excess %.0fus)",
		r.Cell, r.BaseUs, r.CurUs, r.BandUs, r.ExcessUs)
}

// E20Result is the committed benchmark snapshot.
type E20Result struct {
	FactRows int
	DimRows  int

	Eager E20AllocArm // GCLean off
	Lean  E20AllocArm // GCLean on
	// AllocReduction / BytesReduction are eager divided by lean.
	AllocReduction float64
	BytesReduction float64

	PointQueries int
	MixEvery     int
	EagerQPS     float64
	LeanQPS      float64
	QPSRatio     float64 // lean / eager
	// Point-lookup p99 latency within the mixed stream, microseconds:
	// the tail a small query pays for the big queries' garbage.
	EagerP99Us float64
	LeanP99Us  float64

	Cells []E20Cell
}

// RunE20 runs the default configuration at the given scale.
func RunE20(scale int) (E20Result, error) {
	return RunE20Config(DefaultE20Config(scale))
}

// RunE20Config executes the three E20 measurements.
func RunE20Config(cfg E20Config) (E20Result, error) {
	env, err := NewEnv(engine.DefaultOptions())
	if err != nil {
		return E20Result{}, err
	}
	if err := loadE15(env, cfg.FactRows, cfg.DimRows, cfg.FactFiles); err != nil {
		return E20Result{}, err
	}
	out := E20Result{FactRows: cfg.FactRows, DimRows: cfg.DimRows,
		PointQueries: cfg.PointQueries, MixEvery: cfg.MixEvery}

	mkEngine := func(opts engine.Options) *engine.Engine {
		eng := engine.New(env.Cat, env.Auth, env.Meta, env.Log, env.Clock, env.Engine.Stores, opts)
		eng.ManagedCred = env.Cred
		eng.UseObs(env.Obs)
		return eng
	}

	// --- Arm 1: allocation profile of the star join ---
	var reference string
	measureAllocs := func(lean bool, id string) (E20AllocArm, error) {
		opts := engine.DefaultOptions()
		opts.GCLean = lean
		opts.EnableScanCache = true
		opts.ArenaRetainBytes = cfg.ArenaRetainBytes
		eng := mkEngine(opts)
		// Warm the scan cache and the arena pool so the measurement is
		// the steady-state execution path, not first-touch decode.
		for i := 0; i < 2; i++ {
			res, err := eng.Query(engine.NewContext(Admin, fmt.Sprintf("%s-warm-%d", id, i)), e15Query)
			if err != nil {
				return E20AllocArm{}, fmt.Errorf("e20 %s warmup: %w", id, err)
			}
			got := renderE15(res.Batch)
			if reference == "" {
				reference = got
			} else if got != reference {
				return E20AllocArm{}, fmt.Errorf("e20 %s: result diverges between arms", id)
			}
		}
		runtime.GC()
		var m0, m1 runtime.MemStats
		runtime.ReadMemStats(&m0)
		start := time.Now()
		for i := 0; i < cfg.AllocRuns; i++ {
			if _, err := eng.Query(engine.NewContext(Admin, fmt.Sprintf("%s-%d", id, i)), e15Query); err != nil {
				return E20AllocArm{}, fmt.Errorf("e20 %s: %w", id, err)
			}
		}
		elapsed := time.Since(start)
		runtime.ReadMemStats(&m1)
		return E20AllocArm{
			AllocsPerOp:    float64(m1.Mallocs-m0.Mallocs) / float64(cfg.AllocRuns),
			BytesPerOp:     float64(m1.TotalAlloc-m0.TotalAlloc) / float64(cfg.AllocRuns),
			GCPerOp:        float64(m1.NumGC-m0.NumGC) / float64(cfg.AllocRuns),
			GCPauseUsPerOp: float64(m1.PauseTotalNs-m0.PauseTotalNs) / 1e3 / float64(cfg.AllocRuns),
			Time:           elapsed,
		}, nil
	}
	if out.Eager, err = measureAllocs(false, "e20-eager"); err != nil {
		return E20Result{}, err
	}
	if out.Lean, err = measureAllocs(true, "e20-lean"); err != nil {
		return E20Result{}, err
	}
	if out.Lean.AllocsPerOp > 0 {
		out.AllocReduction = out.Eager.AllocsPerOp / out.Lean.AllocsPerOp
	}
	if out.Lean.BytesPerOp > 0 {
		out.BytesReduction = out.Eager.BytesPerOp / out.Lean.BytesPerOp
	}

	// --- Arm 2: point-lookup throughput through serve ---
	j, err := wal.Open(env.Store, env.Cred, "bench", "e20wal/")
	if err != nil {
		return E20Result{}, err
	}
	env.Log.AttachJournal(j)
	mgr := blmt.New(env.Cat, env.Auth, env.Log, env.Clock, env.Engine.Stores)
	mgr.DefaultCloud, mgr.DefaultBucket, mgr.DefaultConnection = "gcp", "bench", "conn"
	mgr.Journal = j
	measureQPS := func(lean bool, id string) (qps, p99 float64, err error) {
		opts := engine.DefaultOptions()
		opts.GCLean = lean
		opts.EnableScanCache = true
		opts.ArenaRetainBytes = cfg.ArenaRetainBytes
		eng := mkEngine(opts)
		eng.SetMutator(mgr)
		srv := serve.New(eng, txn.NewManager(eng, j), serve.Config{})
		defer srv.Close()
		sess, err := srv.Open(Admin, id)
		if err != nil {
			return 0, 0, err
		}
		defer sess.Close()
		exec := func(sql string, wantRows bool) error {
			p, err := sess.Parse(sql)
			if err != nil {
				return err
			}
			if err := p.Prepare(); err != nil {
				return err
			}
			cur, err := p.Execute()
			if err != nil {
				return err
			}
			b, err := cur.All()
			if err != nil {
				return err
			}
			if wantRows && b.N == 0 {
				return fmt.Errorf("e20 %s: %q matched nothing", id, sql)
			}
			return nil
		}
		lookup := func(i int) error {
			k := int64((uint64(i) * 40503) % uint64(cfg.DimRows))
			return exec(fmt.Sprintf(
				"SELECT k, amount, price FROM bench.fact WHERE k = %d", k), true)
		}
		for i := 0; i < cfg.PointWarmup; i++ {
			if err := lookup(i); err != nil {
				return 0, 0, err
			}
		}
		if cfg.MixEvery > 0 {
			if err := exec(e15Query, true); err != nil {
				return 0, 0, err
			}
		}
		lookupUs := make([]float64, 0, cfg.PointQueries)
		runtime.GC()
		start := time.Now()
		for i := 0; i < cfg.PointQueries; i++ {
			if cfg.MixEvery > 0 && i%cfg.MixEvery == cfg.MixEvery-1 {
				if err := exec(e15Query, true); err != nil {
					return 0, 0, err
				}
				continue
			}
			t0 := time.Now()
			if err := lookup(i); err != nil {
				return 0, 0, err
			}
			lookupUs = append(lookupUs, float64(time.Since(t0))/float64(time.Microsecond))
		}
		elapsed := time.Since(start)
		if elapsed <= 0 {
			return 0, 0, fmt.Errorf("e20 %s: zero elapsed time", id)
		}
		return float64(cfg.PointQueries) / elapsed.Seconds(), percentile(lookupUs, 0.99), nil
	}
	if out.EagerQPS, out.EagerP99Us, err = measureQPS(false, "e20-point-eager"); err != nil {
		return E20Result{}, err
	}
	if out.LeanQPS, out.LeanP99Us, err = measureQPS(true, "e20-point-lean"); err != nil {
		return E20Result{}, err
	}
	if out.EagerQPS > 0 {
		out.QPSRatio = out.LeanQPS / out.EagerQPS
	}

	// --- Arm 3: variance cells for the perf trajectory ---
	chaosProf := objstore.FaultProfile{
		Seed: cfg.Seed, Rate: 0.002, StreakLen: 2,
		SlowdownRate: 0.01, Slowdown: 5 * time.Millisecond,
	}
	for _, warm := range []bool{true, false} {
		for _, workers := range cfg.Workers {
			for _, chaos := range []bool{false, true} {
				cell, err := runE20Cell(cfg, env, mkEngine, warm, workers, chaos, chaosProf)
				if err != nil {
					return E20Result{}, err
				}
				out.Cells = append(out.Cells, cell)
			}
		}
	}
	return out, nil
}

// runE20Cell times the star join CellSamples times under one
// configuration. Warm cells share one engine (scan cache populated by
// a discarded first run); cold cells get a fresh engine per sample so
// every run decodes from the store.
func runE20Cell(cfg E20Config, env *Env, mkEngine func(engine.Options) *engine.Engine,
	warm bool, workers int, chaos bool, prof objstore.FaultProfile) (E20Cell, error) {
	opts := engine.DefaultOptions()
	opts.EnableScanCache = true
	opts.ArenaRetainBytes = cfg.ArenaRetainBytes
	opts.MorselWorkers = workers
	cell := E20Cell{
		Name:    fmt.Sprintf("cache=%s/workers=%d/chaos=%s", onOff20(warm, "warm", "cold"), workers, onOff20(chaos, "on", "off")),
		Workers: workers, WarmCache: warm, Chaos: chaos, Samples: cfg.CellSamples,
	}
	if chaos {
		env.Store.InjectFaults(prof)
		defer env.Store.ClearFaults()
	}
	var eng *engine.Engine
	if warm {
		eng = mkEngine(opts)
		if _, err := eng.Query(engine.NewContext(Admin, cell.Name+"-warm"), e15Query); err != nil {
			return E20Cell{}, fmt.Errorf("e20 cell %s warmup: %w", cell.Name, err)
		}
	}
	samples := make([]float64, cfg.CellSamples)
	for i := range samples {
		e := eng
		if !warm {
			e = mkEngine(opts)
		}
		start := time.Now()
		if _, err := e.Query(engine.NewContext(Admin, fmt.Sprintf("%s-%d", cell.Name, i)), e15Query); err != nil {
			return E20Cell{}, fmt.Errorf("e20 cell %s: %w", cell.Name, err)
		}
		samples[i] = float64(time.Since(start)) / float64(time.Microsecond)
	}
	cell.MeanUs, cell.StddevUs = meanStd(samples)
	return cell, nil
}

func onOff20(b bool, yes, no string) string {
	if b {
		return yes
	}
	return no
}

// percentile returns the q-quantile of xs by nearest-rank on a sorted
// copy; 0 for an empty slice.
func percentile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	i := int(q * float64(len(s)-1))
	return s[i]
}

func meanStd(xs []float64) (mean, std float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	if len(xs) < 2 {
		return mean, 0
	}
	var ss float64
	for _, x := range xs {
		ss += (x - mean) * (x - mean)
	}
	return mean, math.Sqrt(ss / float64(len(xs)-1))
}

// TrajectoryCompare flags cells of cur whose mean falls outside the
// baseline's noise band: more than 3 combined standard deviations
// above the recorded mean AND more than 10% slower, so microsecond
// jitter on fast cells never pages anyone. Cells present on only one
// side are skipped — the trajectory only speaks where both runs
// measured.
func TrajectoryCompare(base, cur []E20Cell) []E20Regression {
	byName := make(map[string]E20Cell, len(base))
	for _, c := range base {
		byName[c.Name] = c
	}
	var out []E20Regression
	for _, c := range cur {
		b, ok := byName[c.Name]
		if !ok {
			continue
		}
		sigma := math.Sqrt(b.StddevUs*b.StddevUs + c.StddevUs*c.StddevUs)
		band := 3 * sigma
		if rel := 0.10 * b.MeanUs; band < rel {
			band = rel
		}
		if excess := c.MeanUs - b.MeanUs; excess > band {
			out = append(out, E20Regression{
				Cell: c.Name, BaseUs: b.MeanUs, CurUs: c.MeanUs,
				BandUs: band, ExcessUs: excess - band,
			})
		}
	}
	return out
}
