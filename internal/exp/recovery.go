package exp

// E14: crash recovery cost vs journal length. The durable commit
// journal (internal/wal) makes every Big Metadata commit a sequenced
// object-store record; after a crash, Recover replays sealed commits
// into a fresh log and GCOrphans reclaims data files whose
// transactions died between PUT and seal. Both costs scale with
// journal length, so this experiment sweeps it: for each length, a
// workload of journaled commits (with a fixed fraction of crashed,
// unsealed transactions leaving orphan debris) is generated, the
// "process" is discarded, and the full restart path — reopen journal,
// replay, orphan GC — is timed on the simulated clock.

import (
	"fmt"

	"biglake/internal/bigmeta"
	"biglake/internal/objstore"
	"biglake/internal/sim"
	"biglake/internal/wal"
)

// E14Row is one journal-length measurement.
type E14Row struct {
	// Commits is the number of sealed transactions in the journal.
	Commits int
	// Orphans is the number of unsealed (crashed) transactions, each
	// leaving one declared-but-unreferenced data file behind.
	Orphans int
	// RecoverySimMS is the simulated wall-clock of reopen + replay.
	RecoverySimMS float64
	// GCSimMS is the simulated wall-clock of the orphan-GC sweep.
	GCSimMS float64
	// GCBytes is the orphaned payload reclaimed.
	GCBytes int64
	// GCDeleted is the number of orphan objects deleted.
	GCDeleted int
	// PerCommitUS is RecoverySimMS amortized per sealed commit, in µs.
	PerCommitUS float64
}

// E14Result is the recovery-cost table.
type E14Result struct {
	Rows []E14Row
}

// e14OrphanEvery makes one in this many transactions crash unsealed.
const e14OrphanEvery = 10

// RunE14 sweeps the journal lengths. Lengths are sealed-commit counts;
// scale multiplies the default sweep {25, 100, 400}.
func RunE14(scale int) (E14Result, error) {
	if scale < 1 {
		scale = 1
	}
	var out E14Result
	for _, n := range []int{25 * scale, 100 * scale, 400 * scale} {
		row, err := runE14Length(n)
		if err != nil {
			return E14Result{}, err
		}
		out.Rows = append(out.Rows, row)
	}
	return out, nil
}

func runE14Length(commits int) (E14Row, error) {
	clock := sim.NewClock()
	store := objstore.New(sim.GCP, clock, nil)
	cred := objstore.Credential{Principal: "sa-bench@biglake"}
	const bucket = "bench"
	if err := store.CreateBucket(cred, bucket); err != nil {
		return E14Row{}, err
	}
	j, err := wal.Open(store, cred, bucket, "")
	if err != nil {
		return E14Row{}, err
	}
	log := bigmeta.NewLog(clock, nil)
	log.AttachJournal(j)

	// Build the pre-crash history: `commits` sealed transactions each
	// adding one data file, and every e14OrphanEvery-th transaction
	// additionally "crashing" after its PUT but before its seal.
	payload := make([]byte, 8*1024)
	row := E14Row{Commits: commits}
	for i := 0; i < commits; i++ {
		key := fmt.Sprintf("t/data/f-%06d.blk", i)
		txn := fmt.Sprintf("e14-%06d", i)
		seq, err := j.AppendIntent(txn, string(Admin), []string{key})
		if err != nil {
			return E14Row{}, err
		}
		info, err := store.Put(cred, bucket, key, payload, "application/x-blk")
		if err != nil {
			return E14Row{}, err
		}
		if _, err := log.CommitTx(string(Admin), bigmeta.TxOptions{TxnID: txn, IntentSeq: seq}, map[string]bigmeta.TableDelta{
			"bench.t": {Added: []bigmeta.FileEntry{{Bucket: bucket, Key: key, Size: info.Size, RowCount: 64}}},
		}); err != nil {
			return E14Row{}, err
		}
		if i%e14OrphanEvery == 0 {
			okey := fmt.Sprintf("t/data/orphan-%06d.blk", i)
			if _, err := j.AppendIntent(txn+"-crashed", string(Admin), []string{okey}); err != nil {
				return E14Row{}, err
			}
			if _, err := store.Put(cred, bucket, okey, payload, "application/x-blk"); err != nil {
				return E14Row{}, err
			}
			row.Orphans++
		}
	}

	// Restart: only the store survives. Reopen, replay, collect.
	t0 := clock.Now()
	j2, err := wal.Open(store, cred, bucket, "")
	if err != nil {
		return E14Row{}, err
	}
	rec, err := wal.Recover(j2, clock, nil)
	if err != nil {
		return E14Row{}, err
	}
	t1 := clock.Now()
	gcRep, err := wal.GCOrphans(store, cred, bucket, []string{"t/data/"}, rec.Log)
	if err != nil {
		return E14Row{}, err
	}
	t2 := clock.Now()

	if got := rec.Log.Version(); got != int64(commits) {
		return E14Row{}, fmt.Errorf("e14: recovered version %d, want %d", got, commits)
	}
	if len(gcRep.Deleted) != row.Orphans {
		return E14Row{}, fmt.Errorf("e14: GC deleted %d, want %d orphans", len(gcRep.Deleted), row.Orphans)
	}
	row.RecoverySimMS = float64((t1 - t0).Microseconds()) / 1000
	row.GCSimMS = float64((t2 - t1).Microseconds()) / 1000
	row.GCBytes = gcRep.Bytes
	row.GCDeleted = len(gcRep.Deleted)
	row.PerCommitUS = float64((t1 - t0).Microseconds()) / float64(commits)
	return row, nil
}
