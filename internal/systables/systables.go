// Package systables exposes live telemetry as SQL-queryable virtual
// tables under the reserved "system" dataset. The provider synthesizes
// columnar batches from point-in-time snapshots of the metrics
// registry, a bounded ring of finished job records, a fixed-size
// time-series ring of registry snapshots, the serve session table, and
// bigmeta's quarantine set — no files, no scan cache, no governance
// (telemetry is readable by any principal; see DESIGN.md "Queryable
// telemetry & SLOs").
//
// Self-observation rule: a query over system.* records itself exactly
// once, like any other query, and only AFTER its own scan completed —
// Scan copies every underlying structure under that structure's own
// mutex and releases all locks before returning, and job recording
// happens at terminal state (execute-return or cursor-close), so a
// scan never observes or blocks its own record.
package systables

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"biglake/internal/bigmeta"
	"biglake/internal/catalog"
	"biglake/internal/obs"
	"biglake/internal/sim"
	"biglake/internal/vector"
)

// Dataset is the reserved virtual dataset name.
const Dataset = "system"

// Virtual table names.
const (
	TableJobs       = "system.jobs"
	TableMetrics    = "system.metrics"
	TableHistory    = "system.metrics_history"
	TableEvents     = "system.events"
	TableSessions   = "system.sessions"
	TableQuarantine = "system.quarantine"
	TableSLO        = "system.slo"
)

// Is reports whether name resolves inside the virtual system dataset.
// Any "system."-prefixed name is claimed (unknown members error from
// Scan with catalog.ErrNotFound) so user datasets can never shadow it.
func Is(name string) bool { return strings.HasPrefix(name, Dataset+".") }

// SessionRow is one open serve session, supplied by the serve layer
// through SetSessions.
type SessionRow struct {
	ID        string
	Principal string
	Inflight  int64 // cursors/statements holding admission grants
	Queries   int64 // statements prepared so far
	TxnOpen   bool
}

// Provider owns the telemetry rings and synthesizes system.* batches.
// All methods are nil-safe and safe for concurrent use.
type Provider struct {
	clock *sim.Clock

	// enabled gates job recording and history capture (the E21 A/B
	// arm). Scanning stays available either way.
	enabled atomic.Bool

	mu       sync.RWMutex
	reg      *obs.Registry
	log      *bigmeta.Log
	sessions func() []SessionRow

	jobs *JobRing
	hist *MetricsHistory
	slo  *SLOTracker

	// Provider's own meters, re-resolved on SetRegistry.
	recorded  *obs.Counter
	snapshots *obs.Counter
	retained  *obs.Gauge
}

// NewProvider returns a provider with default ring sizes (8192 jobs,
// 256 history snapshots, 4096-sample SLO windows) recording enabled.
func NewProvider(clock *sim.Clock, reg *obs.Registry, log *bigmeta.Log) *Provider {
	p := &Provider{
		clock: clock,
		log:   log,
		jobs:  NewJobRing(8192),
		hist:  NewMetricsHistory(256, 100*time.Millisecond),
		slo:   NewSLOTracker(4096),
	}
	p.enabled.Store(true)
	p.SetRegistry(reg)
	return p
}

// SetRegistry re-points the provider at a (possibly shared) registry —
// called from engine.UseObs. History deltas restart from the next
// capture so a registry swap never manufactures negative rates.
func (p *Provider) SetRegistry(reg *obs.Registry) {
	if p == nil {
		return
	}
	p.mu.Lock()
	p.reg = reg
	p.recorded = reg.Counter("systables.jobs.recorded")
	p.snapshots = reg.Counter("systables.history.snapshots")
	p.retained = reg.Gauge("systables.jobs.retained")
	p.mu.Unlock()
	p.hist.ResetBaseline()
}

// SetLog re-points the quarantine source (engine.UseMeta analog; the
// engine wires this at construction).
func (p *Provider) SetLog(log *bigmeta.Log) {
	if p == nil {
		return
	}
	p.mu.Lock()
	p.log = log
	p.mu.Unlock()
}

// SetSessions installs the open-session enumerator (wired by
// serve.New). The callback must not call back into the provider.
func (p *Provider) SetSessions(fn func() []SessionRow) {
	if p == nil {
		return
	}
	p.mu.Lock()
	p.sessions = fn
	p.mu.Unlock()
}

// SetEnabled toggles job recording and history capture.
func (p *Provider) SetEnabled(on bool) {
	if p != nil {
		p.enabled.Store(on)
	}
}

// Enabled reports whether job recording is on.
func (p *Provider) Enabled() bool { return p != nil && p.enabled.Load() }

// ConfigureSLOs replaces the per-class SLO objectives. Nil or empty
// installs the defaults.
func (p *Provider) ConfigureSLOs(targets []SLOTarget) {
	if p == nil {
		return
	}
	if len(targets) == 0 {
		targets = DefaultSLOTargets()
	}
	p.slo.Configure(targets)
}

// SetHistoryEvery adjusts the minimum sim-time between history
// snapshots (experiments shrink it so short runs still fill the ring).
func (p *Provider) SetHistoryEvery(d time.Duration) {
	if p != nil {
		p.hist.SetEvery(d)
	}
}

// RecordJob appends one finished job to the ring, feeds the SLO
// tracker for successful statements, and opportunistically captures a
// metrics-history snapshot. No-op while disabled. Never called with
// any provider lock held by the caller — each substructure locks only
// itself, so a concurrent Scan can never deadlock against recording.
func (p *Provider) RecordJob(rec JobRecord) {
	if p == nil || !p.enabled.Load() {
		return
	}
	p.jobs.Record(rec)
	if rec.State == StateDone {
		p.slo.Observe(rec.Class, rec.AdmissionWait+rec.ExecSim)
	}
	p.mu.RLock()
	reg, recorded, retained := p.reg, p.recorded, p.retained
	p.mu.RUnlock()
	recorded.Add(1)
	retained.Set(int64(p.jobs.Len()))
	if p.hist.MaybeCapture(p.clock.Now(), reg) {
		p.mu.RLock()
		p.snapshots.Add(1)
		p.mu.RUnlock()
	}
}

// CaptureHistory forces a metrics-history snapshot now — experiments
// call it to pin a baseline before a run and a final point after.
func (p *Provider) CaptureHistory() {
	if p == nil {
		return
	}
	p.mu.RLock()
	reg := p.reg
	p.mu.RUnlock()
	if p.hist.Capture(p.clock.Now(), reg) {
		p.mu.RLock()
		p.snapshots.Add(1)
		p.mu.RUnlock()
	}
}

// Jobs returns a copy of the retained job records, oldest first.
func (p *Provider) Jobs() []JobRecord {
	if p == nil {
		return nil
	}
	return p.jobs.Snapshot()
}

// SLORows returns the current per-class SLO summaries.
func (p *Provider) SLORows() []SLORow {
	if p == nil {
		return nil
	}
	return p.slo.Rows()
}

// HistoryTaken reports how many metrics_history snapshots have been
// captured since startup (including ones the ring has since evicted).
func (p *Provider) HistoryTaken() int64 {
	if p == nil {
		return 0
	}
	p.mu.RLock()
	defer p.mu.RUnlock()
	return p.hist.Taken()
}

// Schemas, fixed and documented in DESIGN.md.
var (
	jobsSchema = vector.NewSchema(
		vector.Field{Name: "query_id", Type: vector.String},
		vector.Field{Name: "principal", Type: vector.String},
		vector.Field{Name: "sql", Type: vector.String},
		vector.Field{Name: "kind", Type: vector.String},
		vector.Field{Name: "class", Type: vector.String},
		vector.Field{Name: "state", Type: vector.String},
		vector.Field{Name: "error_class", Type: vector.String},
		vector.Field{Name: "abort_cause", Type: vector.String},
		vector.Field{Name: "start_us", Type: vector.Int64},
		vector.Field{Name: "admission_wait_us", Type: vector.Int64},
		vector.Field{Name: "exec_sim_us", Type: vector.Int64},
		vector.Field{Name: "wall_us", Type: vector.Int64},
		vector.Field{Name: "rows_scanned", Type: vector.Int64},
		vector.Field{Name: "bytes_scanned", Type: vector.Int64},
		vector.Field{Name: "rows_returned", Type: vector.Int64},
		vector.Field{Name: "bytes_returned", Type: vector.Int64},
		vector.Field{Name: "cache_hits", Type: vector.Int64},
		vector.Field{Name: "quarantine_skips", Type: vector.Int64},
	)
	metricsSchema = vector.NewSchema(
		vector.Field{Name: "name", Type: vector.String},
		vector.Field{Name: "kind", Type: vector.String},
		vector.Field{Name: "value", Type: vector.Int64},
	)
	historySchema = vector.NewSchema(
		vector.Field{Name: "ts_us", Type: vector.Int64},
		vector.Field{Name: "name", Type: vector.String},
		vector.Field{Name: "kind", Type: vector.String},
		vector.Field{Name: "value", Type: vector.Int64},
		vector.Field{Name: "delta", Type: vector.Int64},
	)
	eventsSchema = vector.NewSchema(
		vector.Field{Name: "stream", Type: vector.String},
		vector.Field{Name: "seq", Type: vector.Int64},
		vector.Field{Name: "event", Type: vector.String},
	)
	sessionsSchema = vector.NewSchema(
		vector.Field{Name: "session_id", Type: vector.String},
		vector.Field{Name: "principal", Type: vector.String},
		vector.Field{Name: "inflight", Type: vector.Int64},
		vector.Field{Name: "queries", Type: vector.Int64},
		vector.Field{Name: "txn_open", Type: vector.Bool},
	)
	quarantineSchema = vector.NewSchema(
		vector.Field{Name: "table_name", Type: vector.String},
		vector.Field{Name: "file_key", Type: vector.String},
		vector.Field{Name: "source", Type: vector.String},
		vector.Field{Name: "reason", Type: vector.String},
		vector.Field{Name: "time_us", Type: vector.Int64},
	)
	sloSchema = vector.NewSchema(
		vector.Field{Name: "class", Type: vector.String},
		vector.Field{Name: "objective_us", Type: vector.Int64},
		vector.Field{Name: "target", Type: vector.Float64},
		vector.Field{Name: "total", Type: vector.Int64},
		vector.Field{Name: "attained", Type: vector.Int64},
		vector.Field{Name: "attainment", Type: vector.Float64},
		vector.Field{Name: "window", Type: vector.Int64},
		vector.Field{Name: "window_attainment", Type: vector.Float64},
		vector.Field{Name: "error_budget_burn", Type: vector.Float64},
		vector.Field{Name: "p50_us", Type: vector.Int64},
		vector.Field{Name: "p99_us", Type: vector.Int64},
	)
)

// Schema returns the fixed schema for a system table, or false.
func Schema(name string) (vector.Schema, bool) {
	switch name {
	case TableJobs:
		return jobsSchema, true
	case TableMetrics:
		return metricsSchema, true
	case TableHistory:
		return historySchema, true
	case TableEvents:
		return eventsSchema, true
	case TableSessions:
		return sessionsSchema, true
	case TableQuarantine:
		return quarantineSchema, true
	case TableSLO:
		return sloSchema, true
	}
	return vector.Schema{}, false
}

// Scan synthesizes the named table's current contents as one batch.
// Every underlying structure is copied under its own lock and released
// before the batch is built, so a query scanning system.jobs while its
// own record is pending can never deadlock.
func (p *Provider) Scan(name string) (*vector.Batch, error) {
	if p == nil {
		return nil, fmt.Errorf("%w: table %q (no system-table provider)", catalog.ErrNotFound, name)
	}
	switch name {
	case TableJobs:
		return p.scanJobs(), nil
	case TableMetrics:
		return p.scanMetrics(), nil
	case TableHistory:
		return p.scanHistory(), nil
	case TableEvents:
		return p.scanEvents(), nil
	case TableSessions:
		return p.scanSessions(), nil
	case TableQuarantine:
		return p.scanQuarantine(), nil
	case TableSLO:
		return p.scanSLO(), nil
	}
	return nil, fmt.Errorf("%w: table %q", catalog.ErrNotFound, name)
}

func (p *Provider) scanJobs() *vector.Batch {
	recs := p.jobs.Snapshot()
	n := len(recs)
	qid := make([]string, n)
	prin := make([]string, n)
	sqlText := make([]string, n)
	kind := make([]string, n)
	class := make([]string, n)
	state := make([]string, n)
	errClass := make([]string, n)
	abort := make([]string, n)
	start := make([]int64, n)
	wait := make([]int64, n)
	execSim := make([]int64, n)
	wall := make([]int64, n)
	rowsSc := make([]int64, n)
	bytesSc := make([]int64, n)
	rowsRet := make([]int64, n)
	bytesRet := make([]int64, n)
	cacheHits := make([]int64, n)
	qSkips := make([]int64, n)
	for i, r := range recs {
		qid[i] = r.QueryID
		prin[i] = r.Principal
		sqlText[i] = r.SQL
		kind[i] = r.Kind
		class[i] = r.Class
		state[i] = r.State
		errClass[i] = r.ErrorClass
		abort[i] = r.AbortCause
		start[i] = r.Start.Microseconds()
		wait[i] = r.AdmissionWait.Microseconds()
		execSim[i] = r.ExecSim.Microseconds()
		wall[i] = r.Wall.Microseconds()
		rowsSc[i] = r.RowsScanned
		bytesSc[i] = r.BytesScanned
		rowsRet[i] = r.RowsReturned
		bytesRet[i] = r.BytesReturned
		cacheHits[i] = r.CacheHits
		qSkips[i] = r.QuarantineSkips
	}
	return vector.MustBatch(jobsSchema, []*vector.Column{
		vector.NewStringColumn(qid),
		vector.NewStringColumn(prin),
		vector.NewStringColumn(sqlText),
		vector.NewStringColumn(kind),
		vector.NewStringColumn(class),
		vector.NewStringColumn(state),
		vector.NewStringColumn(errClass),
		vector.NewStringColumn(abort),
		vector.NewInt64Column(start),
		vector.NewInt64Column(wait),
		vector.NewInt64Column(execSim),
		vector.NewInt64Column(wall),
		vector.NewInt64Column(rowsSc),
		vector.NewInt64Column(bytesSc),
		vector.NewInt64Column(rowsRet),
		vector.NewInt64Column(bytesRet),
		vector.NewInt64Column(cacheHits),
		vector.NewInt64Column(qSkips),
	})
}

func (p *Provider) registry() *obs.Registry {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return p.reg
}

func (p *Provider) scanMetrics() *vector.Batch {
	snap := p.registry().Snapshot()
	type row struct {
		name, kind string
		value      int64
	}
	rows := make([]row, 0, len(snap.Counters)+len(snap.Gauges)+2*len(snap.Histograms))
	for name, v := range snap.Counters {
		rows = append(rows, row{name, "counter", v})
	}
	for name, v := range snap.Gauges {
		rows = append(rows, row{name, "gauge", v})
	}
	for name, h := range snap.Histograms {
		rows = append(rows, row{name, "histogram_count", h.Count})
		rows = append(rows, row{name, "histogram_sum", h.Sum})
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].name != rows[j].name {
			return rows[i].name < rows[j].name
		}
		return rows[i].kind < rows[j].kind
	})
	names := make([]string, len(rows))
	kinds := make([]string, len(rows))
	vals := make([]int64, len(rows))
	for i, r := range rows {
		names[i], kinds[i], vals[i] = r.name, r.kind, r.value
	}
	return vector.MustBatch(metricsSchema, []*vector.Column{
		vector.NewStringColumn(names),
		vector.NewStringColumn(kinds),
		vector.NewInt64Column(vals),
	})
}

func (p *Provider) scanHistory() *vector.Batch {
	rows := p.hist.Rows()
	ts := make([]int64, len(rows))
	names := make([]string, len(rows))
	kinds := make([]string, len(rows))
	vals := make([]int64, len(rows))
	deltas := make([]int64, len(rows))
	for i, r := range rows {
		ts[i] = r.Ts.Microseconds()
		names[i] = r.Name
		kinds[i] = r.Kind
		vals[i] = r.Value
		deltas[i] = r.Delta
	}
	return vector.MustBatch(historySchema, []*vector.Column{
		vector.NewInt64Column(ts),
		vector.NewStringColumn(names),
		vector.NewStringColumn(kinds),
		vector.NewInt64Column(vals),
		vector.NewInt64Column(deltas),
	})
}

func (p *Provider) scanEvents() *vector.Batch {
	snap := p.registry().Snapshot()
	streams := make([]string, 0, len(snap.Events))
	for s := range snap.Events {
		streams = append(streams, s)
	}
	sort.Strings(streams)
	var names []string
	var seqs []int64
	var evs []string
	for _, s := range streams {
		for i, ev := range snap.Events[s] {
			names = append(names, s)
			seqs = append(seqs, int64(i))
			evs = append(evs, ev)
		}
	}
	return vector.MustBatch(eventsSchema, []*vector.Column{
		vector.NewStringColumn(names),
		vector.NewInt64Column(seqs),
		vector.NewStringColumn(evs),
	})
}

func (p *Provider) scanSessions() *vector.Batch {
	p.mu.RLock()
	fn := p.sessions
	p.mu.RUnlock()
	var rows []SessionRow
	if fn != nil {
		rows = fn()
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].ID < rows[j].ID })
	ids := make([]string, len(rows))
	prins := make([]string, len(rows))
	inflight := make([]int64, len(rows))
	queries := make([]int64, len(rows))
	txnOpen := make([]bool, len(rows))
	for i, r := range rows {
		ids[i] = r.ID
		prins[i] = r.Principal
		inflight[i] = r.Inflight
		queries[i] = r.Queries
		txnOpen[i] = r.TxnOpen
	}
	return vector.MustBatch(sessionsSchema, []*vector.Column{
		vector.NewStringColumn(ids),
		vector.NewStringColumn(prins),
		vector.NewInt64Column(inflight),
		vector.NewInt64Column(queries),
		vector.NewBoolColumn(txnOpen),
	})
}

func (p *Provider) scanQuarantine() *vector.Batch {
	p.mu.RLock()
	log := p.log
	p.mu.RUnlock()
	var tables []string
	var marks map[string][]bigmeta.QuarantineMark
	if log != nil {
		marks = log.AllQuarantined()
		for t := range marks {
			tables = append(tables, t)
		}
		sort.Strings(tables)
	}
	var tbl, key, src, reason []string
	var ts []int64
	for _, t := range tables {
		for _, m := range marks[t] {
			tbl = append(tbl, t)
			key = append(key, m.Key)
			src = append(src, m.Source)
			reason = append(reason, m.Reason)
			ts = append(ts, m.Time.Microseconds())
		}
	}
	return vector.MustBatch(quarantineSchema, []*vector.Column{
		vector.NewStringColumn(tbl),
		vector.NewStringColumn(key),
		vector.NewStringColumn(src),
		vector.NewStringColumn(reason),
		vector.NewInt64Column(ts),
	})
}

func (p *Provider) scanSLO() *vector.Batch {
	rows := p.slo.Rows()
	class := make([]string, len(rows))
	obj := make([]int64, len(rows))
	target := make([]float64, len(rows))
	total := make([]int64, len(rows))
	attained := make([]int64, len(rows))
	attainment := make([]float64, len(rows))
	window := make([]int64, len(rows))
	winAtt := make([]float64, len(rows))
	burn := make([]float64, len(rows))
	p50 := make([]int64, len(rows))
	p99 := make([]int64, len(rows))
	for i, r := range rows {
		class[i] = r.Class
		obj[i] = r.ObjectiveUs
		target[i] = r.Target
		total[i] = r.Total
		attained[i] = r.Attained
		attainment[i] = r.Attainment
		window[i] = r.Window
		winAtt[i] = r.WindowAttainment
		burn[i] = r.ErrorBudgetBurn
		p50[i] = r.P50Us
		p99[i] = r.P99Us
	}
	return vector.MustBatch(sloSchema, []*vector.Column{
		vector.NewStringColumn(class),
		vector.NewInt64Column(obj),
		vector.NewFloat64Column(target),
		vector.NewInt64Column(total),
		vector.NewInt64Column(attained),
		vector.NewFloat64Column(attainment),
		vector.NewInt64Column(window),
		vector.NewFloat64Column(winAtt),
		vector.NewFloat64Column(burn),
		vector.NewInt64Column(p50),
		vector.NewInt64Column(p99),
	})
}
