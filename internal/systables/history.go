package systables

import (
	"sort"
	"sync"
	"time"

	"biglake/internal/obs"
)

// HistoryRow is one (snapshot, metric) pair from system.metrics_history.
type HistoryRow struct {
	Ts    time.Duration
	Name  string
	Kind  string // "counter" or "gauge"
	Value int64
	// Delta is the change since the previous capture, stored at capture
	// time so it survives ring eviction of the predecessor. The first
	// capture after a baseline reset (including provider construction)
	// carries Delta 0, so summing Delta across retained counter rows
	// reconciles with Value(last) - Value(first) as long as the ring
	// has not wrapped; after wrap the rows are still exact per-interval
	// rates.
	Delta int64
}

type histEntry struct {
	ts       time.Duration
	counters map[string]int64
	gauges   map[string]int64
	deltas   map[string]int64 // counter deltas vs previous capture
}

// MetricsHistory is a fixed-size ring of registry snapshots taken at
// most once per `every` of sim time, driven opportunistically from job
// recording (plus explicit Capture calls from experiments).
type MetricsHistory struct {
	mu    sync.Mutex
	every time.Duration
	buf   []histEntry
	size  int
	next  int
	taken int64
	// prev holds the last captured counter values (independent of ring
	// eviction) for delta computation; nil right after a baseline
	// reset, meaning the next capture records zero deltas.
	prev     map[string]int64
	hasPrev  bool
	lastAt   time.Duration
	hasTaken bool
}

// NewMetricsHistory returns a ring of capacity snapshots at least
// every apart.
func NewMetricsHistory(capacity int, every time.Duration) *MetricsHistory {
	if capacity < 1 {
		capacity = 1
	}
	return &MetricsHistory{every: every, buf: make([]histEntry, capacity)}
}

// SetEvery adjusts the minimum sim-time between opportunistic captures.
func (h *MetricsHistory) SetEvery(d time.Duration) {
	h.mu.Lock()
	h.every = d
	h.mu.Unlock()
}

// ResetBaseline forgets the previous capture's values: the next
// capture records Delta 0 for every metric. Called when the provider
// is re-pointed at a different registry, so cross-registry value jumps
// never appear as rates.
func (h *MetricsHistory) ResetBaseline() {
	h.mu.Lock()
	h.prev, h.hasPrev = nil, false
	h.mu.Unlock()
}

// MaybeCapture snapshots the registry if at least `every` sim time has
// passed since the last capture. Reports whether a snapshot was taken.
func (h *MetricsHistory) MaybeCapture(now time.Duration, reg *obs.Registry) bool {
	h.mu.Lock()
	due := !h.hasTaken || now-h.lastAt >= h.every
	h.mu.Unlock()
	if !due {
		return false
	}
	return h.Capture(now, reg)
}

// Capture snapshots the registry unconditionally (unless a capture at
// the same sim instant already exists — sim time can stand still
// across many events, and duplicate zero-delta rows would only add
// noise). The registry snapshot is taken before the history lock so
// the two structures never lock-nest.
func (h *MetricsHistory) Capture(now time.Duration, reg *obs.Registry) bool {
	snap := reg.Snapshot()
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.hasTaken && now == h.lastAt {
		return false
	}
	e := histEntry{
		ts:       now,
		counters: snap.Counters,
		gauges:   snap.Gauges,
		deltas:   make(map[string]int64, len(snap.Counters)),
	}
	for name, v := range snap.Counters {
		if h.hasPrev {
			e.deltas[name] = v - h.prev[name]
		}
	}
	h.prev, h.hasPrev = snap.Counters, true
	h.buf[h.next] = e
	h.next = (h.next + 1) % len(h.buf)
	if h.size < len(h.buf) {
		h.size++
	}
	h.taken++
	h.lastAt = now
	h.hasTaken = true
	return true
}

// Taken returns the number of snapshots ever captured.
func (h *MetricsHistory) Taken() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.taken
}

// Rows flattens the retained snapshots, oldest first, metrics sorted
// by name within each snapshot, counters before gauges.
func (h *MetricsHistory) Rows() []HistoryRow {
	h.mu.Lock()
	entries := make([]histEntry, 0, h.size)
	start := (h.next - h.size + len(h.buf)) % len(h.buf)
	for i := 0; i < h.size; i++ {
		entries = append(entries, h.buf[(start+i)%len(h.buf)])
	}
	h.mu.Unlock()

	var rows []HistoryRow
	for _, e := range entries {
		names := make([]string, 0, len(e.counters))
		for name := range e.counters {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			rows = append(rows, HistoryRow{
				Ts: e.ts, Name: name, Kind: "counter",
				Value: e.counters[name], Delta: e.deltas[name],
			})
		}
		names = names[:0]
		for name := range e.gauges {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			rows = append(rows, HistoryRow{
				Ts: e.ts, Name: name, Kind: "gauge", Value: e.gauges[name],
			})
		}
	}
	return rows
}
