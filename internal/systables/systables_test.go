package systables

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"biglake/internal/obs"
	"biglake/internal/resilience"
	"biglake/internal/sim"
)

func TestJobRingWrap(t *testing.T) {
	r := NewJobRing(4)
	for i := 0; i < 10; i++ {
		r.Record(JobRecord{QueryID: fmt.Sprintf("q%d", i)})
	}
	if r.Len() != 4 {
		t.Fatalf("Len = %d, want 4", r.Len())
	}
	if r.Total() != 10 {
		t.Fatalf("Total = %d, want 10", r.Total())
	}
	recs := r.Snapshot()
	for i, rec := range recs {
		if want := fmt.Sprintf("q%d", 6+i); rec.QueryID != want {
			t.Errorf("recs[%d] = %q, want %q (oldest first)", i, rec.QueryID, want)
		}
	}
}

func TestSLOTrackerMath(t *testing.T) {
	tr := NewSLOTracker(8)
	tr.Configure([]SLOTarget{{Class: "point", Objective: 10 * time.Millisecond, Target: 0.9}})
	// 8 observations: 6 within, 2 over → window attainment 0.75,
	// burn (1-0.75)/(1-0.9) = 2.5.
	for i := 0; i < 6; i++ {
		tr.Observe("point", 5*time.Millisecond)
	}
	tr.Observe("point", 20*time.Millisecond)
	tr.Observe("point", 30*time.Millisecond)
	rows := tr.Rows()
	var row SLORow
	for _, r := range rows {
		if r.Class == "point" {
			row = r
		}
	}
	if row.Total != 8 || row.Attained != 6 {
		t.Fatalf("total/attained = %d/%d, want 8/6", row.Total, row.Attained)
	}
	if row.WindowAttainment != 0.75 {
		t.Errorf("window attainment = %v, want 0.75", row.WindowAttainment)
	}
	if burn := row.ErrorBudgetBurn; burn < 2.49 || burn > 2.51 {
		t.Errorf("error budget burn = %v, want 2.5", burn)
	}
	if row.P50Us != 5000 {
		t.Errorf("p50 = %d, want 5000", row.P50Us)
	}
	if row.P99Us != 30000 {
		t.Errorf("p99 = %d, want 30000", row.P99Us)
	}

	// Rolling window: 8 more fast observations push the two misses out.
	for i := 0; i < 8; i++ {
		tr.Observe("point", 1*time.Millisecond)
	}
	rows = tr.Rows()
	for _, r := range rows {
		if r.Class == "point" {
			if r.WindowAttainment != 1.0 {
				t.Errorf("window attainment after refill = %v, want 1.0", r.WindowAttainment)
			}
			if r.ErrorBudgetBurn != 0 {
				t.Errorf("burn after refill = %v, want 0", r.ErrorBudgetBurn)
			}
			if r.Total != 16 {
				t.Errorf("cumulative total = %d, want 16", r.Total)
			}
		}
	}
}

func TestSLOUnconfiguredClassGetsFallback(t *testing.T) {
	tr := NewSLOTracker(8)
	tr.Observe("weird", time.Millisecond)
	for _, r := range tr.Rows() {
		if r.Class == "weird" {
			if r.ObjectiveUs != fallbackTarget.Objective.Microseconds() {
				t.Errorf("fallback objective = %d", r.ObjectiveUs)
			}
			return
		}
	}
	t.Fatal("no row for unconfigured class")
}

// TestHistoryDeltaReconciliation is the satellite property test: over
// seeded random increment schedules, summing metrics_history deltas
// for a counter reconciles exactly with the counter's value difference
// across the retained window (the ring is sized not to wrap here).
func TestHistoryDeltaReconciliation(t *testing.T) {
	for seed := int64(1); seed <= 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		reg := obs.NewRegistry()
		h := NewMetricsHistory(64, 0)
		names := []string{"a.count", "b.count", "c.count"}
		now := time.Duration(0)
		h.Capture(now, reg) // baseline
		captures := 1 + rng.Intn(40)
		for i := 0; i < captures; i++ {
			for _, n := range names {
				if rng.Intn(2) == 1 {
					reg.Add(n, int64(rng.Intn(100)))
				}
			}
			now += time.Duration(1+rng.Intn(5)) * time.Millisecond
			h.Capture(now, reg)
		}
		rows := h.Rows()
		for _, n := range names {
			var sum, first, last int64
			seen := false
			for _, r := range rows {
				if r.Name != n || r.Kind != "counter" {
					continue
				}
				if !seen {
					first = r.Value
					seen = true
				} else {
					sum += r.Delta
				}
				last = r.Value
			}
			if !seen {
				continue // counter never registered before first capture with it
			}
			if sum != last-first {
				t.Fatalf("seed %d counter %s: delta sum %d != value diff %d", seed, n, sum, last-first)
			}
			if last != reg.Get(n) {
				t.Fatalf("seed %d counter %s: last history value %d != live %d", seed, n, last, reg.Get(n))
			}
		}
	}
}

func TestHistoryRingEviction(t *testing.T) {
	reg := obs.NewRegistry()
	h := NewMetricsHistory(4, 0)
	for i := 0; i < 10; i++ {
		reg.Add("x", 1)
		h.Capture(time.Duration(i)*time.Millisecond, reg)
	}
	rows := h.Rows()
	var count int
	for _, r := range rows {
		if r.Name == "x" {
			count++
			// Deltas survive eviction of their predecessor snapshot.
			if r.Value > 1 && r.Delta != 1 {
				t.Errorf("row value %d delta = %d, want 1", r.Value, r.Delta)
			}
		}
	}
	if count != 4 {
		t.Fatalf("retained x rows = %d, want 4", count)
	}
	if h.Taken() != 10 {
		t.Fatalf("Taken = %d, want 10", h.Taken())
	}
}

func TestHistorySameInstantDeduped(t *testing.T) {
	reg := obs.NewRegistry()
	h := NewMetricsHistory(8, 0)
	if !h.Capture(time.Millisecond, reg) {
		t.Fatal("first capture refused")
	}
	if h.Capture(time.Millisecond, reg) {
		t.Fatal("duplicate same-instant capture accepted")
	}
}

func TestClassifyError(t *testing.T) {
	cases := []struct {
		err  error
		want string
	}{
		{nil, ""},
		{resilience.ErrCanceled, "cancelled"},
		{resilience.ErrDeadlineExceeded, "deadline"},
		{&resilience.OverloadError{Reason: "queue_full"}, "overload_queue_full"},
		{fmt.Errorf("wrapped: %w", resilience.ErrCanceled), "cancelled"},
		{fmt.Errorf("boom"), "error"},
	}
	for _, c := range cases {
		if got := ClassifyError(c.err); got != c.want {
			t.Errorf("ClassifyError(%v) = %q, want %q", c.err, got, c.want)
		}
	}
}

func TestProviderRecordAndScan(t *testing.T) {
	clock := sim.NewClock()
	reg := obs.NewRegistry()
	p := NewProvider(clock, reg, nil)
	p.RecordJob(JobRecord{QueryID: "q1", Class: "point", State: StateDone, ExecSim: time.Millisecond})
	p.RecordJob(JobRecord{QueryID: "q2", Class: "point", State: StateShed, ErrorClass: "overload_queue_full"})
	b, err := p.Scan(TableJobs)
	if err != nil {
		t.Fatal(err)
	}
	if b.N != 2 {
		t.Fatalf("jobs batch N = %d", b.N)
	}
	if got := reg.Get("systables.jobs.recorded"); got != 2 {
		t.Fatalf("recorded counter = %d", got)
	}
	// Shed jobs don't feed SLOs.
	for _, r := range p.SLORows() {
		if r.Class == "point" && r.Total != 1 {
			t.Errorf("point slo total = %d, want 1", r.Total)
		}
	}
	// Every table scans clean even with empty sources.
	for _, name := range []string{TableMetrics, TableHistory, TableEvents, TableSessions, TableQuarantine, TableSLO} {
		if _, err := p.Scan(name); err != nil {
			t.Errorf("Scan(%s): %v", name, err)
		}
	}
	// Nil provider and disabled provider are safe no-ops.
	var nilP *Provider
	nilP.RecordJob(JobRecord{})
	if nilP.Enabled() {
		t.Error("nil provider reports enabled")
	}
}
