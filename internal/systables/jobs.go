package systables

import (
	"errors"
	"sync"
	"time"

	"biglake/internal/catalog"
	"biglake/internal/integrity"
	"biglake/internal/resilience"
	"biglake/internal/security"
)

// Terminal job states.
const (
	StateDone      = "done"      // statement executed, cursor drained or closed
	StateFailed    = "failed"    // execution or fetch returned an error
	StateCancelled = "cancelled" // cooperative cancellation
	StateShed      = "shed"      // rejected by admission control; never ran
)

// JobRecord is one finished (or shed) statement. Durations are sim
// time except Wall. Byte/row counts are deltas for this statement
// alone even when the engine context is reused across a transaction.
type JobRecord struct {
	QueryID    string
	Principal  string
	SQL        string
	Kind       string // sqlparse.Kind: select/insert/.../begin
	Class      string // SLO class: point/olap/dml/txn
	State      string
	ErrorClass string // classified cause for failed/cancelled/shed
	AbortCause string // txn abort detail, if any

	Start         time.Duration // sim time execution (or shed) happened
	AdmissionWait time.Duration // queue wait before the grant (serve path)
	ExecSim       time.Duration // simulated execution time
	Wall          time.Duration // host wall-clock spent executing

	RowsScanned     int64
	BytesScanned    int64
	RowsReturned    int64
	BytesReturned   int64
	CacheHits       int64
	QuarantineSkips int64
}

// JobRing is a bounded, mutex-guarded ring of job records. Recording
// is O(1) and never blocks on anything but the ring's own mutex;
// Snapshot copies out under the same mutex and releases it before
// returning, so a scan holding the copy cannot deadlock a recorder.
type JobRing struct {
	mu    sync.Mutex
	buf   []JobRecord
	size  int
	next  int   // write position
	total int64 // records ever written
}

// NewJobRing returns a ring retaining the last capacity records.
func NewJobRing(capacity int) *JobRing {
	if capacity < 1 {
		capacity = 1
	}
	return &JobRing{buf: make([]JobRecord, capacity)}
}

// Record appends one record, evicting the oldest when full.
func (r *JobRing) Record(rec JobRecord) {
	r.mu.Lock()
	r.buf[r.next] = rec
	r.next = (r.next + 1) % len(r.buf)
	if r.size < len(r.buf) {
		r.size++
	}
	r.total++
	r.mu.Unlock()
}

// Snapshot returns the retained records, oldest first.
func (r *JobRing) Snapshot() []JobRecord {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]JobRecord, 0, r.size)
	start := (r.next - r.size + len(r.buf)) % len(r.buf)
	for i := 0; i < r.size; i++ {
		out = append(out, r.buf[(start+i)%len(r.buf)])
	}
	return out
}

// Len returns the number of retained records.
func (r *JobRing) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.size
}

// Total returns the number of records ever written (retained or
// evicted) — the ring's monotonic sequence number.
func (r *JobRing) Total() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total
}

// ClassifyError buckets an execution error into the error_class
// vocabulary used by system.jobs. Transaction conflicts are classified
// by the serve layer (this package cannot import txn), which overrides
// the class before recording.
func ClassifyError(err error) string {
	switch {
	case err == nil:
		return ""
	case errors.Is(err, resilience.ErrCanceled):
		return "cancelled"
	case errors.Is(err, resilience.ErrDeadlineExceeded):
		return "deadline"
	case isOverload(err) != "":
		return isOverload(err)
	case errors.Is(err, integrity.ErrCorrupt):
		return "integrity"
	case errors.Is(err, security.ErrDenied):
		return "denied"
	case errors.Is(err, catalog.ErrNotFound):
		return "not_found"
	}
	return "error"
}

func isOverload(err error) string {
	var ov *resilience.OverloadError
	if errors.As(err, &ov) {
		if ov.Reason != "" {
			return "overload_" + ov.Reason
		}
		return "overload"
	}
	if errors.Is(err, resilience.ErrOverloaded) {
		return "overload"
	}
	return ""
}
