package systables

import (
	"sort"
	"sync"
	"time"
)

// SLOTarget is one latency objective: fraction Target of class
// statements should finish (admission wait + sim execution) within
// Objective.
type SLOTarget struct {
	Class     string
	Objective time.Duration
	Target    float64
}

// DefaultSLOTargets mirrors the serve defaults: interactive point
// lookups are held to a tight bound, analytical scans and DML looser.
func DefaultSLOTargets() []SLOTarget {
	return []SLOTarget{
		{Class: "point", Objective: 50 * time.Millisecond, Target: 0.99},
		{Class: "olap", Objective: 500 * time.Millisecond, Target: 0.95},
		{Class: "dml", Objective: 250 * time.Millisecond, Target: 0.95},
		{Class: "txn", Objective: 250 * time.Millisecond, Target: 0.95},
	}
}

// fallbackTarget covers classes observed without an explicit objective.
var fallbackTarget = SLOTarget{Objective: time.Second, Target: 0.95}

// SLORow is one class's summary as surfaced by system.slo.
type SLORow struct {
	Class            string
	ObjectiveUs      int64
	Target           float64
	Total            int64 // statements observed since start
	Attained         int64 // of Total, within objective
	Attainment       float64
	Window           int64 // samples in the rolling window
	WindowAttainment float64
	// ErrorBudgetBurn is the rolling burn rate: miss fraction in the
	// window over the budgeted miss fraction (1-Target). 1.0 burns the
	// budget exactly as fast as allowed; >1 is out of SLO.
	ErrorBudgetBurn float64
	P50Us           int64 // exact percentile over the window
	P99Us           int64
}

type sloClass struct {
	target   SLOTarget
	total    int64
	attained int64
	ring     []int64 // latency samples (µs), rolling
	size     int
	next     int
	winHit   int64 // of the retained window, within objective
}

// SLOTracker keeps cumulative and rolling-window attainment per query
// class. One mutex guards everything; Observe is O(1) and Rows copies
// out before computing percentiles, so scans never hold the lock
// during sorting.
type SLOTracker struct {
	mu      sync.Mutex
	window  int
	classes map[string]*sloClass
	targets map[string]SLOTarget
}

// NewSLOTracker returns a tracker with the default objectives and the
// given rolling-window size per class.
func NewSLOTracker(window int) *SLOTracker {
	if window < 1 {
		window = 1
	}
	t := &SLOTracker{window: window, classes: map[string]*sloClass{}, targets: map[string]SLOTarget{}}
	t.Configure(DefaultSLOTargets())
	return t
}

// Configure replaces the objectives. Classes already observed keep
// their samples; attainment counters restart against the new bound so
// a tightened objective is not judged by history measured under the
// old one.
func (t *SLOTracker) Configure(targets []SLOTarget) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.targets = map[string]SLOTarget{}
	for _, tg := range targets {
		if tg.Objective <= 0 {
			tg.Objective = fallbackTarget.Objective
		}
		if tg.Target <= 0 || tg.Target >= 1 {
			tg.Target = fallbackTarget.Target
		}
		t.targets[tg.Class] = tg
	}
	for class, c := range t.classes {
		tg, ok := t.targets[class]
		if !ok {
			tg = fallbackTarget
			tg.Class = class
		}
		c.target = tg
		c.total, c.attained, c.winHit = 0, 0, 0
		objUs := tg.Objective.Microseconds()
		for i := 0; i < c.size; i++ {
			if c.ring[i] <= objUs {
				c.winHit++
			}
		}
	}
}

// Observe records one successful statement's latency for a class.
func (t *SLOTracker) Observe(class string, lat time.Duration) {
	t.mu.Lock()
	defer t.mu.Unlock()
	c := t.classes[class]
	if c == nil {
		tg, ok := t.targets[class]
		if !ok {
			tg = fallbackTarget
			tg.Class = class
		}
		c = &sloClass{target: tg, ring: make([]int64, t.window)}
		t.classes[class] = c
	}
	us := lat.Microseconds()
	objUs := c.target.Objective.Microseconds()
	c.total++
	if us <= objUs {
		c.attained++
	}
	if c.size == len(c.ring) {
		if c.ring[c.next] <= objUs {
			c.winHit--
		}
	} else {
		c.size++
	}
	c.ring[c.next] = us
	if us <= objUs {
		c.winHit++
	}
	c.next = (c.next + 1) % len(c.ring)
}

// Rows returns per-class summaries sorted by class name. Percentiles
// are exact over the retained window (nearest-rank).
func (t *SLOTracker) Rows() []SLORow {
	t.mu.Lock()
	type copied struct {
		target          SLOTarget
		total, attained int64
		winHit          int64
		samples         []int64
	}
	classes := make(map[string]copied, len(t.classes))
	for name, c := range t.classes {
		classes[name] = copied{
			target:   c.target,
			total:    c.total,
			attained: c.attained,
			winHit:   c.winHit,
			samples:  append([]int64(nil), c.ring[:c.size]...),
		}
	}
	// Configured-but-unobserved classes still get a row so dashboards
	// see the objective before traffic arrives.
	for name, tg := range t.targets {
		if _, ok := classes[name]; !ok {
			classes[name] = copied{target: tg}
		}
	}
	t.mu.Unlock()

	names := make([]string, 0, len(classes))
	for name := range classes {
		names = append(names, name)
	}
	sort.Strings(names)
	rows := make([]SLORow, 0, len(names))
	for _, name := range names {
		c := classes[name]
		row := SLORow{
			Class:       name,
			ObjectiveUs: c.target.Objective.Microseconds(),
			Target:      c.target.Target,
			Total:       c.total,
			Attained:    c.attained,
			Window:      int64(len(c.samples)),
		}
		if c.total > 0 {
			row.Attainment = float64(c.attained) / float64(c.total)
		}
		if n := len(c.samples); n > 0 {
			row.WindowAttainment = float64(c.winHit) / float64(n)
			row.ErrorBudgetBurn = (1 - row.WindowAttainment) / (1 - c.target.Target)
			sort.Slice(c.samples, func(i, j int) bool { return c.samples[i] < c.samples[j] })
			row.P50Us = percentile(c.samples, 0.50)
			row.P99Us = percentile(c.samples, 0.99)
		}
		rows = append(rows, row)
	}
	return rows
}

// percentile is nearest-rank over an already-sorted sample set.
func percentile(sorted []int64, q float64) int64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q*float64(len(sorted))+0.5) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}
