package sqlparse

import (
	"strings"
	"testing"

	"biglake/internal/vector"
)

func mustSelect(t *testing.T, src string) *SelectStmt {
	t.Helper()
	sel, err := ParseSelect(src)
	if err != nil {
		t.Fatalf("ParseSelect(%q): %v", src, err)
	}
	return sel
}

func TestSimpleSelect(t *testing.T) {
	sel := mustSelect(t, "SELECT a, b FROM ds.t")
	if len(sel.Items) != 2 || sel.From.Name != "ds.t" {
		t.Fatalf("sel = %+v", sel)
	}
	if sel.Items[0].Expr.(ColumnRef).Name != "a" {
		t.Fatal("first item")
	}
	if sel.Limit != -1 {
		t.Fatal("limit default")
	}
}

func TestSelectStar(t *testing.T) {
	sel := mustSelect(t, "SELECT * FROM ds.t")
	if !sel.Items[0].Star {
		t.Fatal("star")
	}
}

func TestSelectNoFrom(t *testing.T) {
	sel := mustSelect(t, "SELECT 1 + 2 AS three")
	if sel.From != nil || sel.Items[0].Alias != "three" {
		t.Fatalf("sel = %+v", sel)
	}
}

func TestWherePrecedence(t *testing.T) {
	sel := mustSelect(t, "SELECT a FROM t WHERE x = 1 OR y = 2 AND z = 3")
	or, ok := sel.Where.(Binary)
	if !ok || or.Op != "OR" {
		t.Fatalf("where = %v", sel.Where)
	}
	and, ok := or.R.(Binary)
	if !ok || and.Op != "AND" {
		t.Fatalf("AND should bind tighter: %v", sel.Where)
	}
}

func TestArithmeticPrecedence(t *testing.T) {
	sel := mustSelect(t, "SELECT a + b * c FROM t")
	add := sel.Items[0].Expr.(Binary)
	if add.Op != "+" {
		t.Fatalf("expr = %v", add)
	}
	if mul := add.R.(Binary); mul.Op != "*" {
		t.Fatalf("* should bind tighter: %v", add)
	}
}

func TestParenthesesOverridePrecedence(t *testing.T) {
	sel := mustSelect(t, "SELECT (a + b) * c FROM t")
	mul := sel.Items[0].Expr.(Binary)
	if mul.Op != "*" {
		t.Fatalf("expr = %v", mul)
	}
	if add := mul.L.(Binary); add.Op != "+" {
		t.Fatalf("paren group lost: %v", mul)
	}
}

func TestNotAndComparisons(t *testing.T) {
	sel := mustSelect(t, "SELECT a FROM t WHERE NOT x >= 5 AND y <> 'q'")
	and := sel.Where.(Binary)
	if _, ok := and.L.(Not); !ok {
		t.Fatalf("NOT lost: %v", and)
	}
	ne := and.R.(Binary)
	if ne.Op != "!=" {
		t.Fatalf("<> should normalize to != : %v", ne)
	}
}

func TestLiterals(t *testing.T) {
	sel := mustSelect(t, "SELECT 42, 3.5, 'it''s', TRUE, FALSE, NULL FROM t")
	vals := []vector.Value{
		vector.IntValue(42), vector.FloatValue(3.5), vector.StringValue("it's"),
		vector.BoolValue(true), vector.BoolValue(false), vector.NullValue,
	}
	for i, want := range vals {
		lit, ok := sel.Items[i].Expr.(Literal)
		if !ok || !lit.Value.Equal(want) {
			t.Fatalf("item %d = %v, want %v", i, sel.Items[i].Expr, want)
		}
	}
}

func TestNegativeNumbers(t *testing.T) {
	sel := mustSelect(t, "SELECT a FROM t WHERE x > -5")
	cmp := sel.Where.(Binary)
	sub := cmp.R.(Binary)
	if sub.Op != "-" || sub.R.(Literal).Value.AsInt() != 5 {
		t.Fatalf("negative literal = %v", cmp.R)
	}
}

func TestJoins(t *testing.T) {
	sel := mustSelect(t, `SELECT o.order_id, ads.id
		FROM local_dataset.ads_impressions AS ads
		JOIN aws_dataset.customer_orders AS o ON o.customer_id = ads.customer_id`)
	if sel.From.Name != "local_dataset.ads_impressions" || sel.From.Alias != "ads" {
		t.Fatalf("from = %+v", sel.From)
	}
	if len(sel.Joins) != 1 {
		t.Fatal("joins")
	}
	j := sel.Joins[0]
	if j.Table.Alias != "o" || j.Kind != InnerJoin {
		t.Fatalf("join = %+v", j)
	}
	on := j.On.(Binary)
	if on.Op != "=" {
		t.Fatalf("on = %v", on)
	}
}

func TestLeftJoin(t *testing.T) {
	sel := mustSelect(t, "SELECT a FROM t1 LEFT OUTER JOIN t2 ON t1.k = t2.k")
	if sel.Joins[0].Kind != LeftJoin {
		t.Fatal("left join kind")
	}
	sel = mustSelect(t, "SELECT a FROM t1 INNER JOIN t2 ON t1.k = t2.k")
	if sel.Joins[0].Kind != InnerJoin {
		t.Fatal("inner join kind")
	}
}

func TestGroupOrderLimit(t *testing.T) {
	sel := mustSelect(t, "SELECT country, COUNT(*) AS n FROM t GROUP BY country ORDER BY n DESC, country LIMIT 10")
	if len(sel.GroupBy) != 1 || sel.GroupBy[0].(ColumnRef).Name != "country" {
		t.Fatalf("group by = %v", sel.GroupBy)
	}
	if len(sel.OrderBy) != 2 || !sel.OrderBy[0].Desc || sel.OrderBy[1].Desc {
		t.Fatalf("order by = %+v", sel.OrderBy)
	}
	if sel.Limit != 10 {
		t.Fatalf("limit = %d", sel.Limit)
	}
	cnt := sel.Items[1].Expr.(Call)
	if cnt.Name != "COUNT" || !cnt.Star || sel.Items[1].Alias != "n" {
		t.Fatalf("count = %+v", cnt)
	}
}

func TestAggregates(t *testing.T) {
	sel := mustSelect(t, "SELECT SUM(amount), MIN(x), MAX(x), AVG(x), COUNT(id) FROM t")
	names := []string{"SUM", "MIN", "MAX", "AVG", "COUNT"}
	for i, n := range names {
		c := sel.Items[i].Expr.(Call)
		if c.Name != n || len(c.Args) != 1 {
			t.Fatalf("item %d = %+v", i, c)
		}
		if !IsAggregate(c) {
			t.Fatalf("%s should be an aggregate", n)
		}
	}
	if IsAggregate(ColumnRef{Name: "x"}) {
		t.Fatal("column is not an aggregate")
	}
}

func TestSubqueryInFrom(t *testing.T) {
	sel := mustSelect(t, "SELECT x FROM (SELECT a AS x FROM t WHERE a > 1) sub")
	if sel.From.Subquery == nil || sel.From.Alias != "sub" {
		t.Fatalf("from = %+v", sel.From)
	}
	if sel.From.Subquery.Items[0].Alias != "x" {
		t.Fatal("inner alias")
	}
}

func TestMLPredictTVF(t *testing.T) {
	// Listing 1 from the paper.
	sel := mustSelect(t, `SELECT uri, predictions FROM
		ML.PREDICT(
			MODEL dataset1.resnet50,
			(
				SELECT ML.DECODE_IMAGE(data) AS image
				FROM dataset1.files
				WHERE content_type = 'image/jpeg'
				AND create_time > TIMESTAMP('23-11-1')
			)
		)`)
	tvf := sel.From.TVF
	if tvf == nil || tvf.Name != "ML.PREDICT" || tvf.Model != "dataset1.resnet50" {
		t.Fatalf("tvf = %+v", tvf)
	}
	inner := tvf.Input.Subquery
	if inner == nil {
		t.Fatal("tvf input should be a subquery")
	}
	decode := inner.Items[0].Expr.(Call)
	if decode.Name != "ML.DECODE_IMAGE" || inner.Items[0].Alias != "image" {
		t.Fatalf("decode = %+v", decode)
	}
	if inner.From.Name != "dataset1.files" {
		t.Fatal("inner from")
	}
	and := inner.Where.(Binary)
	if and.Op != "AND" {
		t.Fatalf("where = %v", inner.Where)
	}
}

func TestMLProcessDocumentTVF(t *testing.T) {
	// Listing 2 from the paper.
	sel := mustSelect(t, `SELECT *
		FROM ML.PROCESS_DOCUMENT(
			MODEL mydataset.invoice_parser,
			TABLE mydataset.documents
		)`)
	tvf := sel.From.TVF
	if tvf == nil || tvf.Name != "ML.PROCESS_DOCUMENT" || tvf.Model != "mydataset.invoice_parser" {
		t.Fatalf("tvf = %+v", tvf)
	}
	if tvf.Input.Name != "mydataset.documents" {
		t.Fatalf("input = %+v", tvf.Input)
	}
}

func TestInsertValues(t *testing.T) {
	stmt, err := Parse("INSERT INTO ds.t (a, b) VALUES (1, 'x'), (2, 'y')")
	if err != nil {
		t.Fatal(err)
	}
	ins := stmt.(*InsertStmt)
	if ins.Table != "ds.t" || len(ins.Columns) != 2 || len(ins.Rows) != 2 {
		t.Fatalf("ins = %+v", ins)
	}
	if ins.Rows[1][1].(Literal).Value.S != "y" {
		t.Fatal("row value")
	}
}

func TestInsertSelect(t *testing.T) {
	stmt, err := Parse("INSERT INTO ds.t SELECT * FROM ds.src")
	if err != nil {
		t.Fatal(err)
	}
	ins := stmt.(*InsertStmt)
	if ins.Select == nil || ins.Select.From.Name != "ds.src" {
		t.Fatalf("ins = %+v", ins)
	}
}

func TestUpdate(t *testing.T) {
	stmt, err := Parse("UPDATE ds.t SET a = 5, b = 'z' WHERE id = 3")
	if err != nil {
		t.Fatal(err)
	}
	upd := stmt.(*UpdateStmt)
	if upd.Table != "ds.t" || len(upd.Set) != 2 || upd.Where == nil {
		t.Fatalf("upd = %+v", upd)
	}
}

func TestDelete(t *testing.T) {
	stmt, err := Parse("DELETE FROM ds.t WHERE id < 100")
	if err != nil {
		t.Fatal(err)
	}
	del := stmt.(*DeleteStmt)
	if del.Table != "ds.t" || del.Where == nil {
		t.Fatalf("del = %+v", del)
	}
	stmt, _ = Parse("DELETE FROM ds.t")
	if stmt.(*DeleteStmt).Where != nil {
		t.Fatal("where should be nil")
	}
}

func TestCreateTableAs(t *testing.T) {
	stmt, err := Parse("CREATE OR REPLACE TABLE ds.dst AS SELECT a FROM ds.src WHERE a > 1")
	if err != nil {
		t.Fatal(err)
	}
	cta := stmt.(*CreateTableAsStmt)
	if cta.Table != "ds.dst" || !cta.OrReplace || cta.Select == nil {
		t.Fatalf("cta = %+v", cta)
	}
	stmt, err = Parse("CREATE TABLE ds.d2 AS SELECT 1")
	if err != nil || stmt.(*CreateTableAsStmt).OrReplace {
		t.Fatalf("plain create: %v", err)
	}
}

func TestKeywordsCaseInsensitive(t *testing.T) {
	if _, err := ParseSelect("select a from t where b = 1 group by a order by a limit 5"); err != nil {
		t.Fatal(err)
	}
}

func TestTrailingSemicolon(t *testing.T) {
	if _, err := Parse("SELECT 1;"); err != nil {
		t.Fatal(err)
	}
}

func TestQuotedIdentifiers(t *testing.T) {
	sel := mustSelect(t, "SELECT `weird name` FROM `ds`.`t`")
	if sel.Items[0].Expr.(ColumnRef).Name != "weird name" {
		t.Fatal("quoted column")
	}
	if sel.From.Name != "ds.t" {
		t.Fatalf("from = %q", sel.From.Name)
	}
}

func TestComments(t *testing.T) {
	sel := mustSelect(t, "SELECT a -- comment here\nFROM t")
	if sel.From.Name != "t" {
		t.Fatal("comment handling")
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"SELEKT a FROM t",
		"SELECT a FROM",
		"SELECT a FROM t WHERE",
		"SELECT a FROM t GROUP",
		"SELECT a FROM t LIMIT x",
		"SELECT 'unterminated FROM t",
		"SELECT a FROM t extra garbage (",
		"INSERT INTO t",
		"UPDATE t SET",
		"DELETE t",
		"CREATE TABLE t",
		"SELECT a FROM ML.PREDICT(dataset1.m, TABLE t)", // missing MODEL
		"SELECT a FROM t WHERE x ~ 3",
		"SELECT a FROM t JOIN u",
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) should fail", src)
		}
	}
}

func TestParseSelectRejectsDML(t *testing.T) {
	if _, err := ParseSelect("DELETE FROM t"); err == nil {
		t.Fatal("ParseSelect should reject DML")
	}
}

func TestExprStringRoundTrips(t *testing.T) {
	sel := mustSelect(t, "SELECT a FROM t WHERE x = 1 AND NOT y > 2.5 OR name = 'bob'")
	s := sel.Where.String()
	for _, frag := range []string{"x = 1", "NOT", "y > 2.5", "'bob'", "OR"} {
		if !strings.Contains(s, frag) {
			t.Fatalf("String() = %q missing %q", s, frag)
		}
	}
}

func TestImplicitAlias(t *testing.T) {
	sel := mustSelect(t, "SELECT amount total FROM t x")
	if sel.Items[0].Alias != "total" {
		t.Fatalf("implicit column alias = %q", sel.Items[0].Alias)
	}
	if sel.From.Alias != "x" || sel.From.DisplayName() != "x" {
		t.Fatalf("implicit table alias = %+v", sel.From)
	}
}

func TestTimestampLiteral(t *testing.T) {
	sel := mustSelect(t, "SELECT a FROM t WHERE ts > TIMESTAMP('2024-01-15')")
	cmp := sel.Where.(Binary)
	lit := cmp.R.(Literal)
	if lit.Value.Type != vector.Timestamp {
		t.Fatalf("lit = %+v", lit.Value)
	}
	early := mustSelect(t, "SELECT a FROM t WHERE ts > TIMESTAMP('2023-01-15')").Where.(Binary).R.(Literal)
	if early.Value.I >= lit.Value.I {
		t.Fatal("timestamp ordering not preserved")
	}
}

func TestInDesugarsToOr(t *testing.T) {
	sel := mustSelect(t, "SELECT a FROM t WHERE region IN ('us', 'eu', 'jp')")
	or, ok := sel.Where.(Binary)
	if !ok || or.Op != "OR" {
		t.Fatalf("where = %v", sel.Where)
	}
	// Rightmost equality is the last list element.
	eq := or.R.(Binary)
	if eq.Op != "=" || eq.R.(Literal).Value.S != "jp" {
		t.Fatalf("last eq = %v", eq)
	}
	// Single-element IN is a plain equality.
	sel = mustSelect(t, "SELECT a FROM t WHERE x IN (5)")
	if eq := sel.Where.(Binary); eq.Op != "=" || eq.R.(Literal).Value.AsInt() != 5 {
		t.Fatalf("single IN = %v", sel.Where)
	}
}

func TestNotIn(t *testing.T) {
	sel := mustSelect(t, "SELECT a FROM t WHERE x NOT IN (1, 2)")
	not, ok := sel.Where.(Not)
	if !ok {
		t.Fatalf("where = %v", sel.Where)
	}
	if or := not.E.(Binary); or.Op != "OR" {
		t.Fatalf("inner = %v", not.E)
	}
}

func TestBetweenDesugarsToRange(t *testing.T) {
	sel := mustSelect(t, "SELECT a FROM t WHERE x BETWEEN 10 AND 20")
	and := sel.Where.(Binary)
	if and.Op != "AND" {
		t.Fatalf("where = %v", sel.Where)
	}
	lo, hi := and.L.(Binary), and.R.(Binary)
	if lo.Op != ">=" || lo.R.(Literal).Value.AsInt() != 10 {
		t.Fatalf("lo = %v", lo)
	}
	if hi.Op != "<=" || hi.R.(Literal).Value.AsInt() != 20 {
		t.Fatalf("hi = %v", hi)
	}
}

func TestNotBetween(t *testing.T) {
	sel := mustSelect(t, "SELECT a FROM t WHERE x NOT BETWEEN 1 AND 2 AND y = 3")
	and := sel.Where.(Binary)
	if and.Op != "AND" {
		t.Fatalf("where = %v", sel.Where)
	}
	if _, ok := and.L.(Not); !ok {
		t.Fatalf("left = %v", and.L)
	}
}

func TestNotStillWorksAsBooleanNegation(t *testing.T) {
	sel := mustSelect(t, "SELECT a FROM t WHERE NOT x = 1")
	if _, ok := sel.Where.(Not); !ok {
		t.Fatalf("where = %v", sel.Where)
	}
}

func TestInErrors(t *testing.T) {
	for _, bad := range []string{
		"SELECT a FROM t WHERE x IN ()",
		"SELECT a FROM t WHERE x IN (1",
		"SELECT a FROM t WHERE x BETWEEN 1",
		"SELECT a FROM t WHERE x BETWEEN 1 OR 2",
	} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q) should fail", bad)
		}
	}
}

func TestDatasetNamedMLIsNotATVF(t *testing.T) {
	sel := mustSelect(t, "SELECT uri FROM ml.images")
	if sel.From.TVF != nil || sel.From.Name != "ml.images" {
		t.Fatalf("from = %+v", sel.From)
	}
}
