package sqlparse

import (
	"fmt"
	"strings"

	"biglake/internal/vector"
)

// Statement is any parsed SQL statement.
type Statement interface{ stmt() }

// SelectStmt is a SELECT query.
type SelectStmt struct {
	Items   []SelectItem
	From    *TableRef
	Joins   []Join
	Where   Expr // nil if absent
	GroupBy []Expr
	OrderBy []OrderItem
	Limit   int64 // -1 if absent
}

func (*SelectStmt) stmt() {}

// SelectItem is one projection: `*`, or an expression with an optional
// alias.
type SelectItem struct {
	Star  bool
	Expr  Expr
	Alias string
}

// OrderItem is one ORDER BY key.
type OrderItem struct {
	Expr Expr
	Desc bool
}

// JoinKind distinguishes join types (INNER only today; LEFT reserved).
type JoinKind int

// Join kinds.
const (
	InnerJoin JoinKind = iota
	LeftJoin
)

// Join is one JOIN clause with an equality condition.
type Join struct {
	Kind  JoinKind
	Table *TableRef
	// On is the join condition; the planner requires a conjunction of
	// column equalities.
	On Expr
}

// TableRef is a FROM-clause source: a named table, a subquery, or an
// ML table-valued function.
type TableRef struct {
	Name     string // "dataset.table" when a named table
	Alias    string
	Subquery *SelectStmt
	TVF      *TVFCall
}

// DisplayName returns the name results should be qualified by.
func (t *TableRef) DisplayName() string {
	if t.Alias != "" {
		return t.Alias
	}
	return t.Name
}

// TVFCall is an ML table-valued function in the FROM clause:
// ML.PREDICT(MODEL m, (subquery)) or
// ML.PROCESS_DOCUMENT(MODEL m, TABLE t).
type TVFCall struct {
	Name  string // "ML.PREDICT", "ML.PROCESS_DOCUMENT"
	Model string
	Input *TableRef // subquery or table input
}

// InsertStmt is INSERT INTO t [(cols)] VALUES (...),(...) | SELECT ...
type InsertStmt struct {
	Table   string
	Columns []string
	Rows    [][]Expr // literal rows; nil if Select is set
	Select  *SelectStmt
}

func (*InsertStmt) stmt() {}

// UpdateStmt is UPDATE t SET col = expr, ... WHERE ...
type UpdateStmt struct {
	Table string
	Set   map[string]Expr
	Where Expr
}

func (*UpdateStmt) stmt() {}

// DeleteStmt is DELETE FROM t WHERE ...
type DeleteStmt struct {
	Table string
	Where Expr
}

func (*DeleteStmt) stmt() {}

// CreateTableAsStmt is CREATE [OR REPLACE] TABLE t AS SELECT ...
type CreateTableAsStmt struct {
	Table     string
	OrReplace bool
	Select    *SelectStmt
}

func (*CreateTableAsStmt) stmt() {}

// BeginStmt is BEGIN [TRANSACTION]: it opens an interactive
// multi-statement transaction session.
type BeginStmt struct{}

func (*BeginStmt) stmt() {}

// CommitStmt is COMMIT [TRANSACTION]: it seals the open transaction's
// buffered writes atomically.
type CommitStmt struct{}

func (*CommitStmt) stmt() {}

// RollbackStmt is ROLLBACK [TRANSACTION]: it discards the open
// transaction's buffered writes.
type RollbackStmt struct{}

func (*RollbackStmt) stmt() {}

// Kind classifies a statement for routing, admission costing, and
// per-kind metrics: "select", "insert", "update", "delete", "ctas",
// "begin", "commit", or "rollback".
func Kind(s Statement) string {
	switch s.(type) {
	case *SelectStmt:
		return "select"
	case *InsertStmt:
		return "insert"
	case *UpdateStmt:
		return "update"
	case *DeleteStmt:
		return "delete"
	case *CreateTableAsStmt:
		return "ctas"
	case *BeginStmt:
		return "begin"
	case *CommitStmt:
		return "commit"
	case *RollbackStmt:
		return "rollback"
	}
	return "unknown"
}

// ReferencedTables returns every named table a statement reads or
// writes — subqueries, joins, and TVF inputs included — deduplicated
// in first-reference order. Callers use it to size admission costs
// before planning.
func ReferencedTables(s Statement) []string {
	var out []string
	seen := map[string]bool{}
	add := func(name string) {
		if name != "" && !seen[name] {
			seen[name] = true
			out = append(out, name)
		}
	}
	var walkSel func(sel *SelectStmt)
	var walkRef func(ref *TableRef)
	walkRef = func(ref *TableRef) {
		if ref == nil {
			return
		}
		add(ref.Name)
		if ref.Subquery != nil {
			walkSel(ref.Subquery)
		}
		if ref.TVF != nil {
			walkRef(ref.TVF.Input)
		}
	}
	walkSel = func(sel *SelectStmt) {
		if sel == nil {
			return
		}
		walkRef(sel.From)
		for i := range sel.Joins {
			walkRef(sel.Joins[i].Table)
		}
	}
	switch st := s.(type) {
	case *SelectStmt:
		walkSel(st)
	case *InsertStmt:
		add(st.Table)
		walkSel(st.Select)
	case *UpdateStmt:
		add(st.Table)
	case *DeleteStmt:
		add(st.Table)
	case *CreateTableAsStmt:
		add(st.Table)
		walkSel(st.Select)
	}
	return out
}

// Expr is any scalar expression.
type Expr interface {
	fmt.Stringer
	expr()
}

// ColumnRef names a column, optionally table-qualified.
type ColumnRef struct {
	Table string
	Name  string
}

func (ColumnRef) expr() {}

func (c ColumnRef) String() string {
	if c.Table != "" {
		return c.Table + "." + c.Name
	}
	return c.Name
}

// Literal is a constant value.
type Literal struct {
	Value vector.Value
}

func (Literal) expr() {}

func (l Literal) String() string {
	if l.Value.Type == vector.String {
		// Re-escape embedded quotes so the render re-parses.
		return "'" + strings.ReplaceAll(l.Value.S, "'", "''") + "'"
	}
	return l.Value.String()
}

// Binary is a binary operation: comparisons, AND, OR, and arithmetic
// (+ - * /).
type Binary struct {
	Op   string
	L, R Expr
}

func (Binary) expr() {}

func (b Binary) String() string {
	return "(" + b.L.String() + " " + b.Op + " " + b.R.String() + ")"
}

// Not negates a boolean expression.
type Not struct{ E Expr }

func (Not) expr() {}

func (n Not) String() string { return "NOT " + n.E.String() }

// Call is a function call: aggregates (COUNT/SUM/MIN/MAX/AVG) or
// scalar/ML functions (ML.DECODE_IMAGE, ...).
type Call struct {
	Name string // upper-cased
	Args []Expr
	Star bool // COUNT(*)
}

func (Call) expr() {}

func (c Call) String() string {
	if c.Star {
		return c.Name + "(*)"
	}
	args := make([]string, len(c.Args))
	for i, a := range c.Args {
		args[i] = a.String()
	}
	return c.Name + "(" + strings.Join(args, ", ") + ")"
}

// AggregateFuncs are the supported aggregate function names.
var AggregateFuncs = map[string]bool{
	"COUNT": true, "SUM": true, "MIN": true, "MAX": true, "AVG": true,
}

// IsAggregate reports whether the expression is (or contains at top
// level) an aggregate call.
func IsAggregate(e Expr) bool {
	c, ok := e.(Call)
	return ok && AggregateFuncs[c.Name]
}
