package sqlparse

// Table-driven grammar corpus: one entry per production, each pinned
// to a canonical re-render of the parsed AST, plus malformed inputs
// pinned to their error text (and, for lexer errors, the byte
// offset). When the differential fuzzer reports a SQL failure this
// corpus triages it: if the shape is covered here, the bug is in the
// engine, not the parser. Desugarings (IN → OR chain, BETWEEN →
// range conjunction, unary minus → 0-x, <> → !=) are visible in the
// canonical form on purpose.

import (
	"fmt"
	"sort"
	"strings"
	"testing"
)

// canon renders a parsed statement in a canonical textual form.
func canon(s Statement) string {
	switch t := s.(type) {
	case *SelectStmt:
		return canonSelect(t)
	case *InsertStmt:
		var rows []string
		for _, r := range t.Rows {
			parts := make([]string, len(r))
			for i, e := range r {
				parts[i] = e.String()
			}
			rows = append(rows, "("+strings.Join(parts, ", ")+")")
		}
		cols := ""
		if len(t.Columns) > 0 {
			cols = " (" + strings.Join(t.Columns, ", ") + ")"
		}
		return "INSERT " + t.Table + cols + " VALUES " + strings.Join(rows, ", ")
	case *UpdateStmt:
		keys := make([]string, 0, len(t.Set))
		for k := range t.Set {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		sets := make([]string, len(keys))
		for i, k := range keys {
			sets[i] = k + " = " + t.Set[k].String()
		}
		out := "UPDATE " + t.Table + " SET " + strings.Join(sets, ", ")
		if t.Where != nil {
			out += " WHERE " + t.Where.String()
		}
		return out
	case *DeleteStmt:
		out := "DELETE " + t.Table
		if t.Where != nil {
			out += " WHERE " + t.Where.String()
		}
		return out
	case *CreateTableAsStmt:
		out := "CTAS " + t.Table
		if t.OrReplace {
			out = "CTAS-REPLACE " + t.Table
		}
		return out + " AS " + canonSelect(t.Select)
	}
	return fmt.Sprintf("%T", s)
}

func canonSelect(s *SelectStmt) string {
	var sb strings.Builder
	sb.WriteString("SELECT ")
	for i, it := range s.Items {
		if i > 0 {
			sb.WriteString(", ")
		}
		if it.Star {
			sb.WriteString("*")
			continue
		}
		sb.WriteString(it.Expr.String())
		if it.Alias != "" {
			sb.WriteString(" AS " + it.Alias)
		}
	}
	if s.From != nil {
		sb.WriteString(" FROM " + canonRef(s.From))
		for _, j := range s.Joins {
			kind := " JOIN "
			if j.Kind == LeftJoin {
				kind = " LEFT-JOIN "
			}
			sb.WriteString(kind + canonRef(j.Table) + " ON " + j.On.String())
		}
	}
	if s.Where != nil {
		sb.WriteString(" WHERE " + s.Where.String())
	}
	if len(s.GroupBy) > 0 {
		parts := make([]string, len(s.GroupBy))
		for i, g := range s.GroupBy {
			parts[i] = g.String()
		}
		sb.WriteString(" GROUP-BY " + strings.Join(parts, ", "))
	}
	for i, o := range s.OrderBy {
		if i == 0 {
			sb.WriteString(" ORDER-BY ")
		} else {
			sb.WriteString(", ")
		}
		sb.WriteString(o.Expr.String())
		if o.Desc {
			sb.WriteString(" DESC")
		}
	}
	if s.Limit >= 0 {
		fmt.Fprintf(&sb, " LIMIT %d", s.Limit)
	}
	return sb.String()
}

func canonRef(t *TableRef) string {
	var out string
	switch {
	case t.Subquery != nil:
		out = "(" + canonSelect(t.Subquery) + ")"
	case t.TVF != nil:
		out = "TVF:" + t.TVF.Name
	default:
		out = t.Name
	}
	if t.Alias != "" {
		out += " AS " + t.Alias
	}
	return out
}

func TestParserCorpus(t *testing.T) {
	cases := []struct {
		name string
		sql  string
		want string
	}{
		// --- projection productions ---
		{"star", "SELECT * FROM ds.t", "SELECT * FROM ds.t"},
		{"column", "SELECT a FROM ds.t", "SELECT a FROM ds.t"},
		{"qualified-column", "SELECT t.a FROM ds.t AS t", "SELECT t.a FROM ds.t AS t"},
		{"explicit-alias", "SELECT a AS b FROM ds.t", "SELECT a AS b FROM ds.t"},
		{"implicit-alias", "SELECT a b FROM ds.t", "SELECT a AS b FROM ds.t"},
		{"multiple-items", "SELECT a, b, c FROM ds.t", "SELECT a, b, c FROM ds.t"},
		{"select-no-from", "SELECT 1", "SELECT 1"},

		// --- literal productions ---
		{"int-literal", "SELECT 42", "SELECT 42"},
		{"float-literal", "SELECT 1.5", "SELECT 1.5"},
		{"string-literal", "SELECT 'hi'", "SELECT 'hi'"},
		{"string-escape", "SELECT 'it''s'", "SELECT 'it''s'"},
		{"true-false-null", "SELECT TRUE, FALSE, NULL", "SELECT true, false, NULL"},
		{"timestamp-fn", "SELECT TIMESTAMP('2024-01-02')", "SELECT 20240102"},

		// --- expression productions ---
		{"unary-minus", "SELECT -a FROM ds.t", "SELECT (0 - a) FROM ds.t"},
		{"arith-precedence", "SELECT a + b * c FROM ds.t", "SELECT (a + (b * c)) FROM ds.t"},
		{"parens", "SELECT (a + b) * c FROM ds.t", "SELECT ((a + b) * c) FROM ds.t"},
		{"division", "SELECT a / 2 FROM ds.t", "SELECT (a / 2) FROM ds.t"},
		{"concat-plus", "SELECT s + 'x' FROM ds.t", "SELECT (s + 'x') FROM ds.t"},
		{"cmp-ops", "SELECT a FROM ds.t WHERE a >= 1 AND b <= 2 AND c != 3",
			"SELECT a FROM ds.t WHERE (((a >= 1) AND (b <= 2)) AND (c != 3))"},
		{"diamond-ne", "SELECT a FROM ds.t WHERE a <> 1", "SELECT a FROM ds.t WHERE (a != 1)"},
		{"not", "SELECT a FROM ds.t WHERE NOT a = 1", "SELECT a FROM ds.t WHERE NOT (a = 1)"},
		{"and-or-precedence", "SELECT a FROM ds.t WHERE a = 1 OR b = 2 AND c = 3",
			"SELECT a FROM ds.t WHERE ((a = 1) OR ((b = 2) AND (c = 3)))"},
		{"in-desugar", "SELECT a FROM ds.t WHERE a IN (1, 2)",
			"SELECT a FROM ds.t WHERE ((a = 1) OR (a = 2))"},
		{"not-in-desugar", "SELECT a FROM ds.t WHERE a NOT IN (1, 2)",
			"SELECT a FROM ds.t WHERE NOT ((a = 1) OR (a = 2))"},
		{"between-desugar", "SELECT a FROM ds.t WHERE a BETWEEN 1 AND 5",
			"SELECT a FROM ds.t WHERE ((a >= 1) AND (a <= 5))"},
		{"not-between", "SELECT a FROM ds.t WHERE a NOT BETWEEN 1 AND 5",
			"SELECT a FROM ds.t WHERE NOT ((a >= 1) AND (a <= 5))"},

		// --- calls ---
		{"count-star", "SELECT COUNT(*) FROM ds.t", "SELECT COUNT(*) FROM ds.t"},
		{"agg-calls", "SELECT SUM(a), MIN(b), MAX(c), AVG(d) FROM ds.t",
			"SELECT SUM(a), MIN(b), MAX(c), AVG(d) FROM ds.t"},
		{"call-expr-arg", "SELECT SUM(a * 2) FROM ds.t", "SELECT SUM((a * 2)) FROM ds.t"},

		// --- FROM productions ---
		{"from-alias-as", "SELECT a FROM ds.t AS x", "SELECT a FROM ds.t AS x"},
		{"from-alias-bare", "SELECT a FROM ds.t x", "SELECT a FROM ds.t AS x"},
		{"join", "SELECT a FROM ds.t AS x JOIN ds.u AS y ON x.a = y.b",
			"SELECT a FROM ds.t AS x JOIN ds.u AS y ON (x.a = y.b)"},
		{"left-join", "SELECT a FROM ds.t AS x LEFT JOIN ds.u AS y ON x.a = y.b",
			"SELECT a FROM ds.t AS x LEFT-JOIN ds.u AS y ON (x.a = y.b)"},
		{"join-compound-on", "SELECT a FROM ds.t AS x JOIN ds.u AS y ON x.a = y.b AND x.c = y.d",
			"SELECT a FROM ds.t AS x JOIN ds.u AS y ON ((x.a = y.b) AND (x.c = y.d))"},
		{"subquery", "SELECT a FROM (SELECT a FROM ds.t) AS s",
			"SELECT a FROM (SELECT a FROM ds.t) AS s"},

		// --- clause tail productions ---
		{"group-by", "SELECT a, COUNT(*) FROM ds.t GROUP BY a",
			"SELECT a, COUNT(*) FROM ds.t GROUP-BY a"},
		{"group-by-expr", "SELECT a * 2, COUNT(*) FROM ds.t GROUP BY a * 2",
			"SELECT (a * 2), COUNT(*) FROM ds.t GROUP-BY (a * 2)"},
		{"order-by", "SELECT a FROM ds.t ORDER BY a", "SELECT a FROM ds.t ORDER-BY a"},
		{"order-by-desc", "SELECT a FROM ds.t ORDER BY a DESC, b",
			"SELECT a FROM ds.t ORDER-BY a DESC, b"},
		{"limit", "SELECT a FROM ds.t LIMIT 7", "SELECT a FROM ds.t LIMIT 7"},
		{"kitchen-sink", "SELECT a, SUM(b) AS s FROM ds.t WHERE c > 0 GROUP BY a ORDER BY s DESC LIMIT 3",
			"SELECT a, SUM(b) AS s FROM ds.t WHERE (c > 0) GROUP-BY a ORDER-BY s DESC LIMIT 3"},

		// --- lexical forms ---
		{"line-comment", "SELECT a -- trailing\nFROM ds.t", "SELECT a FROM ds.t"},
		{"backtick-ident", "SELECT `a` FROM ds.t", "SELECT a FROM ds.t"},
		{"semicolon", "SELECT a FROM ds.t;", "SELECT a FROM ds.t"},
		{"case-insensitive-kw", "select a from ds.t where a = 1 order by a",
			"SELECT a FROM ds.t WHERE (a = 1) ORDER-BY a"},

		// --- DML / DDL statements ---
		{"insert", "INSERT INTO ds.t VALUES (1, 'a'), (2, 'b')",
			"INSERT ds.t VALUES (1, 'a'), (2, 'b')"},
		{"insert-columns", "INSERT INTO ds.t (a, b) VALUES (1, 2)",
			"INSERT ds.t (a, b) VALUES (1, 2)"},
		{"update", "UPDATE ds.t SET a = a + 1, b = 'x' WHERE a < 3",
			"UPDATE ds.t SET a = (a + 1), b = 'x' WHERE (a < 3)"},
		{"delete", "DELETE FROM ds.t WHERE a = 1", "DELETE ds.t WHERE (a = 1)"},
		{"delete-all", "DELETE FROM ds.t", "DELETE ds.t"},
		{"ctas", "CREATE TABLE ds.x AS SELECT a FROM ds.t",
			"CTAS ds.x AS SELECT a FROM ds.t"},
		{"ctas-replace", "CREATE OR REPLACE TABLE ds.x AS SELECT a FROM ds.t",
			"CTAS-REPLACE ds.x AS SELECT a FROM ds.t"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			stmt, err := Parse(tc.sql)
			if err != nil {
				t.Fatalf("Parse(%q): %v", tc.sql, err)
			}
			got := canon(stmt)
			if tc.want == "" {
				t.Logf("canon: %s", got)
				return
			}
			if got != tc.want {
				t.Fatalf("Parse(%q)\n  got:  %s\n  want: %s", tc.sql, got, tc.want)
			}
		})
	}
}

func TestParserCorpusMalformed(t *testing.T) {
	cases := []struct {
		name    string
		sql     string
		wantErr string // substring of the error, always prefixed "sqlparse:"
	}{
		{"empty", "", "sqlparse:"},
		{"unknown-stmt", "DROP TABLE ds.t", "sqlparse:"},
		{"trailing-input", "SELECT a FROM ds.t garbage extra", "sqlparse:"},
		{"unterminated-string", "SELECT 'abc", "sqlparse: unterminated string at 7"},
		{"unterminated-backtick", "SELECT `abc", "sqlparse: unterminated quoted identifier at 7"},
		{"bad-char", "SELECT a ? b", "sqlparse: unexpected character '?' at 9"},
		{"missing-from-table", "SELECT a FROM", "sqlparse:"},
		{"missing-on", "SELECT a FROM ds.t JOIN ds.u", "sqlparse:"},
		{"bad-limit", "SELECT a FROM ds.t LIMIT x", "sqlparse:"},
		{"unclosed-paren", "SELECT (a + 1 FROM ds.t", "sqlparse:"},
		{"insert-no-values", "INSERT INTO ds.t", "sqlparse:"},
		{"update-no-set", "UPDATE ds.t WHERE a = 1", "sqlparse:"},
		{"between-missing-and", "SELECT a FROM ds.t WHERE a BETWEEN 1", "sqlparse:"},
		{"in-empty", "SELECT a FROM ds.t WHERE a IN ()", "sqlparse:"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Parse(tc.sql)
			if err == nil {
				t.Fatalf("Parse(%q) unexpectedly succeeded", tc.sql)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("Parse(%q) error = %q, want substring %q", tc.sql, err, tc.wantErr)
			}
			if !strings.HasPrefix(err.Error(), "sqlparse:") {
				t.Fatalf("Parse(%q) error %q is not namespaced", tc.sql, err)
			}
		})
	}
}
