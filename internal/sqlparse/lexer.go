// Package sqlparse implements the SQL front-end for the Dremel
// stand-in: a lexer and recursive-descent parser for the GoogleSQL
// subset the paper's examples use — SELECT with joins, grouping,
// ordering, DML (INSERT/UPDATE/DELETE), CREATE TABLE AS SELECT, and
// the ML table-valued functions of §4.2 (ML.PREDICT,
// ML.DECODE_IMAGE, ML.PROCESS_DOCUMENT).
package sqlparse

import (
	"fmt"
	"strings"
	"unicode"
)

// tokenKind classifies lexical tokens.
type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokNumber
	tokString
	tokOp    // operators and punctuation
	tokParam // @name (reserved for future use)
)

type token struct {
	kind tokenKind
	text string
	pos  int
}

type lexer struct {
	src    string
	pos    int
	tokens []token
}

// lex tokenizes the input or returns a descriptive error.
func lex(src string) ([]token, error) {
	l := &lexer{src: src}
	for {
		l.skipSpace()
		if l.pos >= len(l.src) {
			l.tokens = append(l.tokens, token{kind: tokEOF, pos: l.pos})
			return l.tokens, nil
		}
		c := l.src[l.pos]
		switch {
		case isIdentStart(rune(c)):
			l.lexIdent()
		case c >= '0' && c <= '9':
			l.lexNumber()
		case c == '\'':
			if err := l.lexString(); err != nil {
				return nil, err
			}
		case c == '`':
			if err := l.lexQuotedIdent(); err != nil {
				return nil, err
			}
		case c == '-' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '-':
			l.skipLineComment()
		default:
			if err := l.lexOp(); err != nil {
				return nil, err
			}
		}
	}
}

func (l *lexer) skipSpace() {
	for l.pos < len(l.src) && unicode.IsSpace(rune(l.src[l.pos])) {
		l.pos++
	}
}

func (l *lexer) skipLineComment() {
	for l.pos < len(l.src) && l.src[l.pos] != '\n' {
		l.pos++
	}
}

func isIdentStart(r rune) bool {
	return unicode.IsLetter(r) || r == '_'
}

func isIdentPart(r rune) bool {
	return unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_'
}

func (l *lexer) lexIdent() {
	start := l.pos
	for l.pos < len(l.src) && isIdentPart(rune(l.src[l.pos])) {
		l.pos++
	}
	l.tokens = append(l.tokens, token{kind: tokIdent, text: l.src[start:l.pos], pos: start})
}

func (l *lexer) lexQuotedIdent() error {
	start := l.pos
	l.pos++ // consume backtick
	for l.pos < len(l.src) && l.src[l.pos] != '`' {
		l.pos++
	}
	if l.pos >= len(l.src) {
		return fmt.Errorf("sqlparse: unterminated quoted identifier at %d", start)
	}
	l.tokens = append(l.tokens, token{kind: tokIdent, text: l.src[start+1 : l.pos], pos: start})
	l.pos++
	return nil
}

func (l *lexer) lexNumber() {
	start := l.pos
	seenDot := false
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == '.' && !seenDot {
			seenDot = true
			l.pos++
			continue
		}
		if c < '0' || c > '9' {
			break
		}
		l.pos++
	}
	l.tokens = append(l.tokens, token{kind: tokNumber, text: l.src[start:l.pos], pos: start})
}

func (l *lexer) lexString() error {
	start := l.pos
	l.pos++ // opening quote
	var sb strings.Builder
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == '\'' {
			if l.pos+1 < len(l.src) && l.src[l.pos+1] == '\'' { // escaped quote
				sb.WriteByte('\'')
				l.pos += 2
				continue
			}
			l.pos++
			l.tokens = append(l.tokens, token{kind: tokString, text: sb.String(), pos: start})
			return nil
		}
		sb.WriteByte(c)
		l.pos++
	}
	return fmt.Errorf("sqlparse: unterminated string at %d", start)
}

var twoCharOps = map[string]bool{"<=": true, ">=": true, "!=": true, "<>": true}

func (l *lexer) lexOp() error {
	if l.pos+1 < len(l.src) {
		two := l.src[l.pos : l.pos+2]
		if twoCharOps[two] {
			l.tokens = append(l.tokens, token{kind: tokOp, text: two, pos: l.pos})
			l.pos += 2
			return nil
		}
	}
	c := l.src[l.pos]
	switch c {
	case '=', '<', '>', '(', ')', ',', '.', '*', '+', '-', '/', ';':
		l.tokens = append(l.tokens, token{kind: tokOp, text: string(c), pos: l.pos})
		l.pos++
		return nil
	}
	return fmt.Errorf("sqlparse: unexpected character %q at %d", c, l.pos)
}
