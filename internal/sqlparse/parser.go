package sqlparse

import (
	"fmt"
	"strconv"
	"strings"

	"biglake/internal/vector"
)

// Parse parses one SQL statement.
func Parse(src string) (Statement, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks, src: src}
	stmt, err := p.parseStatement()
	if err != nil {
		return nil, err
	}
	p.accept(";")
	if !p.atEOF() {
		return nil, p.errf("trailing input starting at %q", p.peek().text)
	}
	return stmt, nil
}

// ParseSelect parses a statement and requires it to be a SELECT.
func ParseSelect(src string) (*SelectStmt, error) {
	stmt, err := Parse(src)
	if err != nil {
		return nil, err
	}
	sel, ok := stmt.(*SelectStmt)
	if !ok {
		return nil, fmt.Errorf("sqlparse: expected a SELECT statement")
	}
	return sel, nil
}

type parser struct {
	toks []token
	i    int
	src  string
}

func (p *parser) peek() token { return p.toks[p.i] }
func (p *parser) atEOF() bool { return p.peek().kind == tokEOF }
func (p *parser) next() token { t := p.toks[p.i]; p.i++; return t }
func (p *parser) errf(format string, args ...interface{}) error {
	return fmt.Errorf("sqlparse: "+format, args...)
}

// isKeyword reports whether the current token is the given keyword
// (case-insensitive).
func (p *parser) isKeyword(kw string) bool {
	t := p.peek()
	return t.kind == tokIdent && strings.EqualFold(t.text, kw)
}

// acceptKeyword consumes the keyword if present.
func (p *parser) acceptKeyword(kw string) bool {
	if p.isKeyword(kw) {
		p.i++
		return true
	}
	return false
}

// expectKeyword consumes the keyword or errors.
func (p *parser) expectKeyword(kw string) error {
	if !p.acceptKeyword(kw) {
		return p.errf("expected %s, found %q", kw, p.peek().text)
	}
	return nil
}

// accept consumes an operator token if it matches.
func (p *parser) accept(op string) bool {
	t := p.peek()
	if t.kind == tokOp && t.text == op {
		p.i++
		return true
	}
	return false
}

// expect consumes an operator token or errors.
func (p *parser) expect(op string) error {
	if !p.accept(op) {
		return p.errf("expected %q, found %q", op, p.peek().text)
	}
	return nil
}

func (p *parser) parseStatement() (Statement, error) {
	switch {
	case p.isKeyword("SELECT"):
		return p.parseSelect()
	case p.isKeyword("INSERT"):
		return p.parseInsert()
	case p.isKeyword("UPDATE"):
		return p.parseUpdate()
	case p.isKeyword("DELETE"):
		return p.parseDelete()
	case p.isKeyword("CREATE"):
		return p.parseCreateTableAs()
	case p.isKeyword("BEGIN"):
		p.i++
		p.acceptKeyword("TRANSACTION")
		return &BeginStmt{}, nil
	case p.isKeyword("COMMIT"):
		p.i++
		p.acceptKeyword("TRANSACTION")
		return &CommitStmt{}, nil
	case p.isKeyword("ROLLBACK"):
		p.i++
		p.acceptKeyword("TRANSACTION")
		return &RollbackStmt{}, nil
	}
	return nil, p.errf("expected a statement, found %q", p.peek().text)
}

func (p *parser) parseSelect() (*SelectStmt, error) {
	if err := p.expectKeyword("SELECT"); err != nil {
		return nil, err
	}
	sel := &SelectStmt{Limit: -1}

	// Projection list.
	for {
		if p.accept("*") {
			sel.Items = append(sel.Items, SelectItem{Star: true})
		} else {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			item := SelectItem{Expr: e}
			if p.acceptKeyword("AS") {
				t := p.next()
				if t.kind != tokIdent {
					return nil, p.errf("expected alias after AS, found %q", t.text)
				}
				item.Alias = t.text
			} else if p.peek().kind == tokIdent && !p.isSelectClauseKeyword() {
				item.Alias = p.next().text
			}
			sel.Items = append(sel.Items, item)
		}
		if !p.accept(",") {
			break
		}
	}

	if p.acceptKeyword("FROM") {
		ref, err := p.parseTableRef()
		if err != nil {
			return nil, err
		}
		sel.From = ref
		for {
			kind := InnerJoin
			switch {
			case p.acceptKeyword("JOIN"):
			case p.isKeyword("INNER"):
				p.i++
				if err := p.expectKeyword("JOIN"); err != nil {
					return nil, err
				}
			case p.isKeyword("LEFT"):
				p.i++
				p.acceptKeyword("OUTER")
				if err := p.expectKeyword("JOIN"); err != nil {
					return nil, err
				}
				kind = LeftJoin
			default:
				goto joinsDone
			}
			jref, err := p.parseTableRef()
			if err != nil {
				return nil, err
			}
			if err := p.expectKeyword("ON"); err != nil {
				return nil, err
			}
			cond, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			sel.Joins = append(sel.Joins, Join{Kind: kind, Table: jref, On: cond})
		}
	}
joinsDone:

	if p.acceptKeyword("WHERE") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		sel.Where = e
	}
	if p.acceptKeyword("GROUP") {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			sel.GroupBy = append(sel.GroupBy, e)
			if !p.accept(",") {
				break
			}
		}
	}
	if p.acceptKeyword("ORDER") {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			item := OrderItem{Expr: e}
			if p.acceptKeyword("DESC") {
				item.Desc = true
			} else {
				p.acceptKeyword("ASC")
			}
			sel.OrderBy = append(sel.OrderBy, item)
			if !p.accept(",") {
				break
			}
		}
	}
	if p.acceptKeyword("LIMIT") {
		t := p.next()
		if t.kind != tokNumber {
			return nil, p.errf("expected number after LIMIT, found %q", t.text)
		}
		n, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return nil, p.errf("bad LIMIT %q", t.text)
		}
		sel.Limit = n
	}
	return sel, nil
}

// isSelectClauseKeyword guards implicit aliasing against clause
// keywords.
func (p *parser) isSelectClauseKeyword() bool {
	for _, kw := range []string{"FROM", "WHERE", "GROUP", "ORDER", "LIMIT", "JOIN", "INNER", "LEFT", "ON", "AS", "ASC", "DESC"} {
		if p.isKeyword(kw) {
			return true
		}
	}
	return false
}

func (p *parser) parseTableRef() (*TableRef, error) {
	// Subquery.
	if p.accept("(") {
		sub, err := p.parseSelect()
		if err != nil {
			return nil, err
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		ref := &TableRef{Subquery: sub}
		p.parseOptionalAlias(ref)
		return ref, nil
	}

	t := p.peek()
	if t.kind != tokIdent {
		return nil, p.errf("expected table name, found %q", t.text)
	}

	// ML table-valued functions: `ML.<fn>(` — the trailing paren
	// distinguishes the TVF from an ordinary table in a dataset that
	// happens to be named "ml".
	if strings.EqualFold(t.text, "ML") &&
		p.i+3 < len(p.toks) &&
		p.toks[p.i+1].kind == tokOp && p.toks[p.i+1].text == "." &&
		p.toks[p.i+2].kind == tokIdent &&
		p.toks[p.i+3].kind == tokOp && p.toks[p.i+3].text == "(" {
		return p.parseTVF()
	}

	name := p.next().text
	for p.accept(".") {
		part := p.next()
		if part.kind != tokIdent {
			return nil, p.errf("expected identifier after '.', found %q", part.text)
		}
		name += "." + part.text
	}
	ref := &TableRef{Name: name}
	p.parseOptionalAlias(ref)
	return ref, nil
}

func (p *parser) parseOptionalAlias(ref *TableRef) {
	if p.acceptKeyword("AS") {
		if p.peek().kind == tokIdent {
			ref.Alias = p.next().text
		}
		return
	}
	if p.peek().kind == tokIdent && !p.isSelectClauseKeyword() {
		ref.Alias = p.next().text
	}
}

func (p *parser) parseTVF() (*TableRef, error) {
	p.next() // ML
	if err := p.expect("."); err != nil {
		return nil, err
	}
	fn := p.next()
	if fn.kind != tokIdent {
		return nil, p.errf("expected ML function name, found %q", fn.text)
	}
	name := "ML." + strings.ToUpper(fn.text)
	if err := p.expect("("); err != nil {
		return nil, err
	}
	if err := p.expectKeyword("MODEL"); err != nil {
		return nil, err
	}
	model, err := p.parseDottedName()
	if err != nil {
		return nil, err
	}
	if err := p.expect(","); err != nil {
		return nil, err
	}
	tvf := &TVFCall{Name: name, Model: model}
	switch {
	case p.acceptKeyword("TABLE"):
		tbl, err := p.parseDottedName()
		if err != nil {
			return nil, err
		}
		tvf.Input = &TableRef{Name: tbl}
	case p.accept("("):
		sub, err := p.parseSelect()
		if err != nil {
			return nil, err
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		tvf.Input = &TableRef{Subquery: sub}
	default:
		return nil, p.errf("expected TABLE or a subquery in %s, found %q", name, p.peek().text)
	}
	if err := p.expect(")"); err != nil {
		return nil, err
	}
	ref := &TableRef{TVF: tvf}
	p.parseOptionalAlias(ref)
	return ref, nil
}

func (p *parser) parseDottedName() (string, error) {
	t := p.next()
	if t.kind != tokIdent {
		return "", p.errf("expected identifier, found %q", t.text)
	}
	name := t.text
	for p.accept(".") {
		part := p.next()
		if part.kind != tokIdent {
			return "", p.errf("expected identifier after '.', found %q", part.text)
		}
		name += "." + part.text
	}
	return name, nil
}

func (p *parser) parseInsert() (Statement, error) {
	p.next() // INSERT
	p.acceptKeyword("INTO")
	table, err := p.parseDottedName()
	if err != nil {
		return nil, err
	}
	ins := &InsertStmt{Table: table}
	if p.accept("(") {
		for {
			t := p.next()
			if t.kind != tokIdent {
				return nil, p.errf("expected column name, found %q", t.text)
			}
			ins.Columns = append(ins.Columns, t.text)
			if !p.accept(",") {
				break
			}
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
	}
	if p.acceptKeyword("VALUES") {
		for {
			if err := p.expect("("); err != nil {
				return nil, err
			}
			var row []Expr
			for {
				e, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				row = append(row, e)
				if !p.accept(",") {
					break
				}
			}
			if err := p.expect(")"); err != nil {
				return nil, err
			}
			ins.Rows = append(ins.Rows, row)
			if !p.accept(",") {
				break
			}
		}
		return ins, nil
	}
	if p.isKeyword("SELECT") {
		sel, err := p.parseSelect()
		if err != nil {
			return nil, err
		}
		ins.Select = sel
		return ins, nil
	}
	return nil, p.errf("expected VALUES or SELECT in INSERT")
}

func (p *parser) parseUpdate() (Statement, error) {
	p.next() // UPDATE
	table, err := p.parseDottedName()
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword("SET"); err != nil {
		return nil, err
	}
	upd := &UpdateStmt{Table: table, Set: map[string]Expr{}}
	for {
		col := p.next()
		if col.kind != tokIdent {
			return nil, p.errf("expected column in SET, found %q", col.text)
		}
		if err := p.expect("="); err != nil {
			return nil, err
		}
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		upd.Set[col.text] = e
		if !p.accept(",") {
			break
		}
	}
	if p.acceptKeyword("WHERE") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		upd.Where = e
	}
	return upd, nil
}

func (p *parser) parseDelete() (Statement, error) {
	p.next() // DELETE
	if err := p.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	table, err := p.parseDottedName()
	if err != nil {
		return nil, err
	}
	del := &DeleteStmt{Table: table}
	if p.acceptKeyword("WHERE") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		del.Where = e
	}
	return del, nil
}

func (p *parser) parseCreateTableAs() (Statement, error) {
	p.next() // CREATE
	orReplace := false
	if p.acceptKeyword("OR") {
		if err := p.expectKeyword("REPLACE"); err != nil {
			return nil, err
		}
		orReplace = true
	}
	if err := p.expectKeyword("TABLE"); err != nil {
		return nil, err
	}
	table, err := p.parseDottedName()
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword("AS"); err != nil {
		return nil, err
	}
	sel, err := p.parseSelect()
	if err != nil {
		return nil, err
	}
	return &CreateTableAsStmt{Table: table, OrReplace: orReplace, Select: sel}, nil
}

// Expression grammar (precedence climbing):
//
//	expr    := orExpr
//	orExpr  := andExpr (OR andExpr)*
//	andExpr := notExpr (AND notExpr)*
//	notExpr := NOT notExpr | cmpExpr
//	cmpExpr := addExpr ((= != <> < <= > >=) addExpr)?
//	addExpr := mulExpr ((+ -) mulExpr)*
//	mulExpr := unary ((* /) unary)*
//	unary   := primary
//	primary := literal | column | call | ( expr )
func (p *parser) parseExpr() (Expr, error) { return p.parseOr() }

func (p *parser) parseOr() (Expr, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.acceptKeyword("OR") {
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l = Binary{Op: "OR", L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseAnd() (Expr, error) {
	l, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.acceptKeyword("AND") {
		r, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		l = Binary{Op: "AND", L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseNot() (Expr, error) {
	if p.acceptKeyword("NOT") {
		e, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return Not{E: e}, nil
	}
	return p.parseCmp()
}

var cmpOps = map[string]bool{"=": true, "!=": true, "<>": true, "<": true, "<=": true, ">": true, ">=": true}

func (p *parser) parseCmp() (Expr, error) {
	l, err := p.parseAdd()
	if err != nil {
		return nil, err
	}

	// `x NOT IN (...)` / `x NOT BETWEEN a AND b`.
	if p.isKeyword("NOT") {
		save := p.i
		p.i++
		switch {
		case p.isKeyword("IN"):
			e, err := p.parseIn(l)
			if err != nil {
				return nil, err
			}
			return Not{E: e}, nil
		case p.isKeyword("BETWEEN"):
			e, err := p.parseBetween(l)
			if err != nil {
				return nil, err
			}
			return Not{E: e}, nil
		default:
			p.i = save // the NOT belongs to an outer context
		}
	}
	if p.isKeyword("IN") {
		return p.parseIn(l)
	}
	if p.isKeyword("BETWEEN") {
		return p.parseBetween(l)
	}

	t := p.peek()
	if t.kind == tokOp && cmpOps[t.text] {
		p.i++
		op := t.text
		if op == "<>" {
			op = "!="
		}
		r, err := p.parseAdd()
		if err != nil {
			return nil, err
		}
		return Binary{Op: op, L: l, R: r}, nil
	}
	return l, nil
}

// parseIn desugars `x IN (a, b, c)` into `x = a OR x = b OR x = c`, so
// the whole engine (evaluation, pruning) handles it with no new node
// type.
func (p *parser) parseIn(l Expr) (Expr, error) {
	p.i++ // IN
	if err := p.expect("("); err != nil {
		return nil, err
	}
	var out Expr
	for {
		item, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		eq := Binary{Op: "=", L: l, R: item}
		if out == nil {
			out = eq
		} else {
			out = Binary{Op: "OR", L: out, R: eq}
		}
		if !p.accept(",") {
			break
		}
	}
	if err := p.expect(")"); err != nil {
		return nil, err
	}
	if out == nil {
		return nil, p.errf("IN requires at least one value")
	}
	return out, nil
}

// parseBetween desugars `x BETWEEN a AND b` into `x >= a AND x <= b`,
// which the scan layer can push down as two range predicates.
func (p *parser) parseBetween(l Expr) (Expr, error) {
	p.i++ // BETWEEN
	lo, err := p.parseAdd()
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword("AND"); err != nil {
		return nil, err
	}
	hi, err := p.parseAdd()
	if err != nil {
		return nil, err
	}
	return Binary{
		Op: "AND",
		L:  Binary{Op: ">=", L: l, R: lo},
		R:  Binary{Op: "<=", L: l, R: hi},
	}, nil
}

func (p *parser) parseAdd() (Expr, error) {
	l, err := p.parseMul()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		if t.kind != tokOp || (t.text != "+" && t.text != "-") {
			return l, nil
		}
		p.i++
		r, err := p.parseMul()
		if err != nil {
			return nil, err
		}
		l = Binary{Op: t.text, L: l, R: r}
	}
}

func (p *parser) parseMul() (Expr, error) {
	l, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		if t.kind != tokOp || (t.text != "*" && t.text != "/") {
			return l, nil
		}
		p.i++
		r, err := p.parsePrimary()
		if err != nil {
			return nil, err
		}
		l = Binary{Op: t.text, L: l, R: r}
	}
}

func (p *parser) parsePrimary() (Expr, error) {
	t := p.peek()
	switch t.kind {
	case tokNumber:
		p.i++
		if strings.Contains(t.text, ".") {
			f, err := strconv.ParseFloat(t.text, 64)
			if err != nil {
				return nil, p.errf("bad number %q", t.text)
			}
			return Literal{Value: vector.FloatValue(f)}, nil
		}
		n, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return nil, p.errf("bad number %q", t.text)
		}
		return Literal{Value: vector.IntValue(n)}, nil
	case tokString:
		p.i++
		return Literal{Value: vector.StringValue(t.text)}, nil
	case tokOp:
		if t.text == "(" {
			p.i++
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expect(")"); err != nil {
				return nil, err
			}
			return e, nil
		}
		if t.text == "-" {
			p.i++
			e, err := p.parsePrimary()
			if err != nil {
				return nil, err
			}
			return Binary{Op: "-", L: Literal{Value: vector.IntValue(0)}, R: e}, nil
		}
		return nil, p.errf("unexpected %q in expression", t.text)
	case tokIdent:
		switch strings.ToUpper(t.text) {
		case "TRUE":
			p.i++
			return Literal{Value: vector.BoolValue(true)}, nil
		case "FALSE":
			p.i++
			return Literal{Value: vector.BoolValue(false)}, nil
		case "NULL":
			p.i++
			return Literal{Value: vector.NullValue}, nil
		case "TIMESTAMP":
			// TIMESTAMP('...') literal: parse as string payload.
			if p.toks[p.i+1].kind == tokOp && p.toks[p.i+1].text == "(" {
				p.i += 2
				arg := p.next()
				if arg.kind != tokString {
					return nil, p.errf("TIMESTAMP() expects a string literal")
				}
				if err := p.expect(")"); err != nil {
					return nil, err
				}
				return Literal{Value: vector.TimestampValue(hashTimestamp(arg.text))}, nil
			}
		}
		return p.parseIdentExpr()
	}
	return nil, p.errf("unexpected token %q", t.text)
}

// hashTimestamp converts a date-ish string into a monotonic simulated
// timestamp: YYYY-MM-DD maps to nanoseconds preserving order.
func hashTimestamp(s string) int64 {
	var y, m, d int
	if _, err := fmt.Sscanf(s, "%d-%d-%d", &y, &m, &d); err == nil {
		return int64(y)*10000 + int64(m)*100 + int64(d)
	}
	var h int64
	for _, c := range s {
		h = h*31 + int64(c)
	}
	return h
}

// parseIdentExpr handles column refs (a, t.a) and function calls
// (COUNT(x), ML.DECODE_IMAGE(col)).
func (p *parser) parseIdentExpr() (Expr, error) {
	first := p.next().text
	if p.accept("(") {
		return p.finishCall(strings.ToUpper(first))
	}
	if p.accept(".") {
		second := p.next()
		if second.kind != tokIdent {
			return nil, p.errf("expected identifier after '.', found %q", second.text)
		}
		if p.accept("(") {
			return p.finishCall(strings.ToUpper(first) + "." + strings.ToUpper(second.text))
		}
		return ColumnRef{Table: first, Name: second.text}, nil
	}
	return ColumnRef{Name: first}, nil
}

func (p *parser) finishCall(name string) (Expr, error) {
	call := Call{Name: name}
	if p.accept("*") {
		call.Star = true
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		return call, nil
	}
	if p.accept(")") {
		return call, nil
	}
	for {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		call.Args = append(call.Args, e)
		if !p.accept(",") {
			break
		}
	}
	if err := p.expect(")"); err != nil {
		return nil, err
	}
	return call, nil
}
