// Package arena provides per-query bump allocators recycled through a
// pool, so the hot execution path (morsel outputs, hash-table buckets,
// group-by state) stops feeding the Go GC. An Arena hands out typed
// slices carved from large slabs; nothing is freed individually —
// Release returns the whole arena to its Pool, where the slabs are
// retained for the next query.
//
// Ownership contract (see DESIGN.md "Memory discipline"): slices handed
// out by an Arena are valid only until Release. Anything that outlives
// the query — result batches crossing the Execute boundary, rows
// buffered by a transaction overlay, pages held by a serve cursor —
// must be deep-copied to the heap first (vector.DetachBatch).
//
// The package is dependency-free on purpose: it implements
// vector.Alloc structurally, avoiding an import cycle, and the engine
// mirrors its stats into the obs registry rather than arena importing
// obs.
package arena

import "sync"

const (
	// minSlabBytes is the smallest slab an allocator type grows by;
	// slabs double up to maxSlabBytes so huge queries amortize the
	// append while small queries stay small.
	minSlabBytes = 64 << 10
	maxSlabBytes = 8 << 20
)

// slab is one contiguous backing array plus a bump cursor.
type slab[T any] struct {
	buf []T
	off int
	// dirty marks a slab that has been reset (recycled): regions
	// carved from it must be cleared to preserve make() semantics.
	// Freshly made slabs are already zero.
	dirty bool
}

// typed is the per-element-type slab list. cur is the first slab that
// may still have room; next is the element count for the next slab.
type typed[T any] struct {
	slabs []slab[T]
	cur   int
	next  int
}

// Arena is a per-query bump allocator. It is safe for concurrent use
// by the worker goroutines of a single query (a mutex guards the bump
// pointers; the carved regions themselves are exclusively owned by the
// caller). All allocation methods return zeroed slices with cap ==
// len, or nil when n == 0, matching make().
type Arena struct {
	mu   sync.Mutex
	i64  typed[int64]
	f64  typed[float64]
	bl   typed[bool]
	str  typed[string]
	i32  typed[int32]
	u32  typed[uint32]
	u64  typed[uint64]
	ints typed[int]

	// bytes is total slab capacity (not live bytes); it only grows
	// until the arena is dropped by the pool.
	bytes int64

	pool *Pool
}

func allocT[T any](a *Arena, t *typed[T], n, elemSize int) []T {
	if n == 0 {
		return nil
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	for t.cur < len(t.slabs) {
		s := &t.slabs[t.cur]
		if len(s.buf)-s.off >= n {
			out := s.buf[s.off : s.off+n : s.off+n]
			s.off += n
			if s.dirty {
				clear(out)
			}
			return out
		}
		t.cur++
	}
	size := t.next
	if min := minSlabBytes / elemSize; size < min {
		size = min
	}
	if size < n {
		size = n
	}
	nx := size * 2
	if max := maxSlabBytes / elemSize; nx > max {
		nx = max
	}
	t.next = nx
	buf := make([]T, size)
	a.bytes += int64(size * elemSize)
	t.slabs = append(t.slabs, slab[T]{buf: buf, off: n})
	return buf[:n:n]
}

// resetT rewinds every slab for reuse. clearRefs additionally zeroes
// the slabs eagerly — required for pointer-bearing element types
// (strings) so a retained arena does not pin the old query's data.
func resetT[T any](t *typed[T], clearRefs bool) {
	for i := range t.slabs {
		s := &t.slabs[i]
		if clearRefs {
			clear(s.buf[:s.off])
			s.dirty = false
		} else if s.off > 0 {
			s.dirty = true
		}
		s.off = 0
	}
	t.cur = 0
}

// Int64s returns a zeroed []int64 of length n.
func (a *Arena) Int64s(n int) []int64 { return allocT(a, &a.i64, n, 8) }

// Float64s returns a zeroed []float64 of length n.
func (a *Arena) Float64s(n int) []float64 { return allocT(a, &a.f64, n, 8) }

// Bools returns a zeroed []bool of length n.
func (a *Arena) Bools(n int) []bool { return allocT(a, &a.bl, n, 1) }

// Strings returns a zeroed []string of length n. The header array is
// arena memory; the string contents referenced later are whatever the
// caller stores (usually dictionary entries owned by the heap).
func (a *Arena) Strings(n int) []string { return allocT(a, &a.str, n, 16) }

// Int32s returns a zeroed []int32 of length n.
func (a *Arena) Int32s(n int) []int32 { return allocT(a, &a.i32, n, 4) }

// Uint32s returns a zeroed []uint32 of length n.
func (a *Arena) Uint32s(n int) []uint32 { return allocT(a, &a.u32, n, 4) }

// Uint64s returns a zeroed []uint64 of length n.
func (a *Arena) Uint64s(n int) []uint64 { return allocT(a, &a.u64, n, 8) }

// Ints returns a zeroed []int of length n.
func (a *Arena) Ints(n int) []int { return allocT(a, &a.ints, n, 8) }

// Pooled reports that slices from this allocator are recycled —
// consumers must detach (deep-copy) anything that outlives the query.
func (a *Arena) Pooled() bool { return true }

// Bytes returns the total slab capacity owned by the arena.
func (a *Arena) Bytes() int64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.bytes
}

// tailBytes reports the byte size of a typed list's last slab (0 when
// the list is empty).
func tailBytes[T any](t *typed[T], elemSize int) int64 {
	if len(t.slabs) == 0 {
		return 0
	}
	return int64(len(t.slabs[len(t.slabs)-1].buf) * elemSize)
}

// dropTail releases a typed list's last slab to the GC.
func dropTail[T any](a *Arena, t *typed[T], elemSize int) {
	n := len(t.slabs)
	if n == 0 {
		return
	}
	a.bytes -= int64(len(t.slabs[n-1].buf) * elemSize)
	t.slabs[n-1] = slab[T]{}
	t.slabs = t.slabs[:n-1]
}

// trim releases slabs — largest trailing slab first, across all element
// types — until total capacity is at most max. Called by the pool on
// oversized arenas so one huge query sheds its peak without throwing
// away the warm slabs every normal query needs.
func (a *Arena) trim(max int64) {
	a.mu.Lock()
	defer a.mu.Unlock()
	for a.bytes > max {
		best, bestBytes := -1, int64(0)
		consider := func(i int, b int64) {
			if b > bestBytes {
				best, bestBytes = i, b
			}
		}
		consider(0, tailBytes(&a.i64, 8))
		consider(1, tailBytes(&a.f64, 8))
		consider(2, tailBytes(&a.bl, 1))
		consider(3, tailBytes(&a.str, 16))
		consider(4, tailBytes(&a.i32, 4))
		consider(5, tailBytes(&a.u32, 4))
		consider(6, tailBytes(&a.u64, 8))
		consider(7, tailBytes(&a.ints, 8))
		switch best {
		case 0:
			dropTail(a, &a.i64, 8)
		case 1:
			dropTail(a, &a.f64, 8)
		case 2:
			dropTail(a, &a.bl, 1)
		case 3:
			dropTail(a, &a.str, 16)
		case 4:
			dropTail(a, &a.i32, 4)
		case 5:
			dropTail(a, &a.u32, 4)
		case 6:
			dropTail(a, &a.u64, 8)
		case 7:
			dropTail(a, &a.ints, 8)
		default:
			return
		}
	}
}

// reset rewinds every allocator for the next query. String slabs are
// cleared eagerly so retained arenas do not pin result data.
func (a *Arena) reset() {
	a.mu.Lock()
	defer a.mu.Unlock()
	resetT(&a.i64, false)
	resetT(&a.f64, false)
	resetT(&a.bl, false)
	resetT(&a.str, true)
	resetT(&a.i32, false)
	resetT(&a.u32, false)
	resetT(&a.u64, false)
	resetT(&a.ints, false)
}

// Release returns the arena to its pool (no-op for pool-less arenas,
// which exist only in tests). The caller must not touch any slice
// obtained from the arena afterwards.
func (a *Arena) Release() {
	if a.pool != nil {
		a.pool.Put(a)
	}
}

// New returns a standalone arena (not attached to a pool); mostly for
// tests. Production arenas come from Pool.Get.
func New() *Arena { return &Arena{} }

// Pool recycles arenas across queries. Get prefers a retained arena
// (its slabs are already sized for the workload); Put rewinds the
// arena and retains it unless the pool is full or the arena grew past
// the per-arena retention cap.
type Pool struct {
	mu       sync.Mutex
	free     []*Arena
	retained int64
	recycled int64
	dropped  int64

	// MaxIdle bounds the free list; MaxArenaBytes drops arenas that
	// grew beyond it (a pathological query should not pin slabs
	// forever). Both are fixed at construction.
	maxIdle       int
	maxArenaBytes int64
}

// DefaultRetainBytes is the per-arena slab retention cap of NewPool.
const DefaultRetainBytes = 64 << 20

// NewPool returns a pool retaining up to 8 idle arenas of at most
// DefaultRetainBytes each.
func NewPool() *Pool {
	return NewPoolSized(8, DefaultRetainBytes)
}

// NewPoolSized returns a pool with explicit retention bounds. Sizing
// maxArenaBytes to the workload's per-query peak (engine
// Options.ArenaRetainBytes) keeps even the largest queries fully
// recycled; non-positive values fall back to the defaults.
func NewPoolSized(maxIdle int, maxArenaBytes int64) *Pool {
	if maxIdle <= 0 {
		maxIdle = 8
	}
	if maxArenaBytes <= 0 {
		maxArenaBytes = DefaultRetainBytes
	}
	return &Pool{maxIdle: maxIdle, maxArenaBytes: maxArenaBytes}
}

// Get returns an arena ready for a query: recycled if one is retained,
// fresh otherwise.
func (p *Pool) Get() *Arena {
	p.mu.Lock()
	defer p.mu.Unlock()
	if n := len(p.free); n > 0 {
		a := p.free[n-1]
		p.free[n-1] = nil
		p.free = p.free[:n-1]
		p.retained -= a.bytes
		p.recycled++
		return a
	}
	return &Arena{pool: p}
}

// Put rewinds the arena and retains it for the next Get. An arena
// that grew past the retention cap is trimmed back down (shedding its
// largest slabs) rather than discarded, so a single huge query does
// not cost every later query its warm slabs; overflow beyond MaxIdle
// is dropped to the GC.
func (p *Pool) Put(a *Arena) {
	if a == nil {
		return
	}
	a.reset()
	if a.Bytes() > p.maxArenaBytes {
		a.trim(p.maxArenaBytes)
	}
	sz := a.Bytes()
	p.mu.Lock()
	defer p.mu.Unlock()
	if len(p.free) >= p.maxIdle {
		p.dropped++
		return
	}
	p.free = append(p.free, a)
	p.retained += sz
}

// Stats is a point-in-time snapshot of pool behavior, mirrored into
// the obs registry by the engine (arena.bytes_in_use, arena.recycled).
type Stats struct {
	// BytesRetained is slab capacity currently held by idle arenas.
	BytesRetained int64
	// Idle is the number of arenas on the free list.
	Idle int64
	// Recycled counts Gets served by a retained arena.
	Recycled int64
	// Dropped counts arenas released to the GC at Put.
	Dropped int64
}

// Stats returns current pool counters.
func (p *Pool) Stats() Stats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return Stats{
		BytesRetained: p.retained,
		Idle:          int64(len(p.free)),
		Recycled:      p.recycled,
		Dropped:       p.dropped,
	}
}
