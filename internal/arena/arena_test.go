package arena

import (
	"sync"
	"testing"
)

func TestAllocZeroedAndSized(t *testing.T) {
	a := New()
	xs := a.Int64s(100)
	if len(xs) != 100 || cap(xs) != 100 {
		t.Fatalf("len=%d cap=%d, want 100/100", len(xs), cap(xs))
	}
	for i := range xs {
		if xs[i] != 0 {
			t.Fatalf("xs[%d] = %d, want 0", i, xs[i])
		}
		xs[i] = int64(i)
	}
	ys := a.Int64s(100)
	for i := range ys {
		if ys[i] != 0 {
			t.Fatalf("ys[%d] = %d, want 0 (second carve must be distinct)", i, ys[i])
		}
	}
	if a.Ints(0) != nil || a.Bools(0) != nil || a.Strings(0) != nil {
		t.Fatal("n==0 must return nil, matching the old append-to-nil behavior")
	}
}

func TestRecycledSlabsAreZeroed(t *testing.T) {
	p := NewPool()
	a := p.Get()
	xs := a.Int64s(1000)
	for i := range xs {
		xs[i] = -1
	}
	ss := a.Strings(10)
	ss[0] = "pinned"
	p.Put(a)

	b := p.Get()
	if b != a {
		t.Fatal("expected the pooled arena back")
	}
	ys := b.Int64s(1000)
	for i := range ys {
		if ys[i] != 0 {
			t.Fatalf("recycled carve not zeroed at %d: %d", i, ys[i])
		}
	}
	ts := b.Strings(10)
	for i := range ts {
		if ts[i] != "" {
			t.Fatalf("recycled string carve not cleared at %d: %q", i, ts[i])
		}
	}
}

func TestLargeAllocSpansSlab(t *testing.T) {
	a := New()
	n := (minSlabBytes / 8) * 3 // larger than the first slab
	xs := a.Int64s(n)
	if len(xs) != n {
		t.Fatalf("len=%d want %d", len(xs), n)
	}
	if a.Bytes() < int64(n*8) {
		t.Fatalf("bytes=%d, want >= %d", a.Bytes(), n*8)
	}
}

func TestPoolStats(t *testing.T) {
	p := NewPool()
	a := p.Get()
	a.Int64s(10)
	p.Put(a)
	st := p.Stats()
	if st.Idle != 1 || st.BytesRetained == 0 {
		t.Fatalf("after put: %+v", st)
	}
	b := p.Get()
	st = p.Stats()
	if st.Recycled != 1 || st.Idle != 0 || st.BytesRetained != 0 {
		t.Fatalf("after recycled get: %+v", st)
	}
	b.Release()
	if got := p.Stats().Idle; got != 1 {
		t.Fatalf("Release should return to pool, idle=%d", got)
	}
}

func TestPoolTrimsOversized(t *testing.T) {
	p := &Pool{maxIdle: 8, maxArenaBytes: 1024}
	a := p.Get()
	a.Int64s(100000)
	a.Strings(64)
	p.Put(a)
	st := p.Stats()
	if st.Idle != 1 {
		t.Fatalf("oversized arena should be trimmed and retained, not dropped: %+v", st)
	}
	if st.BytesRetained > 1024 {
		t.Fatalf("trim left %d retained bytes, cap 1024", st.BytesRetained)
	}
	// The trimmed arena still serves queries and regrows on demand.
	b := p.Get()
	if p.Stats().Recycled != 1 {
		t.Fatalf("trimmed arena was not recycled: %+v", p.Stats())
	}
	xs := b.Int64s(4096)
	for i, x := range xs {
		if x != 0 {
			t.Fatalf("regrown slab not zeroed at %d", i)
		}
	}
}

func TestConcurrentAlloc(t *testing.T) {
	a := New()
	var wg sync.WaitGroup
	const workers = 8
	out := make([][]int64, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				xs := a.Int64s(37)
				for j := range xs {
					xs[j] = int64(w)
				}
				out[w] = xs
			}
		}(w)
	}
	wg.Wait()
	for w, xs := range out {
		for j := range xs {
			if xs[j] != int64(w) {
				t.Fatalf("worker %d region overwritten: %d", w, xs[j])
			}
		}
	}
}
