// Package txn implements interactive multi-statement transactions on
// top of the Big Metadata log and the commit journal: BEGIN pins every
// read in the session to one log version across all tables (snapshot
// isolation), DML buffers intents in memory instead of committing
// per-statement, and COMMIT runs first-committer-wins optimistic
// validation before sealing a single multi-table record. There are no
// per-table locks anywhere — validation and seal happen atomically
// under the log's own commit mutex, so multi-table transactions cannot
// deadlock no matter how tables are ordered.
//
// Conflict detection is at file granularity, mirroring the log's unit
// of change:
//
//   - write-write: a concurrent committed transaction removed a file
//     this session also rewrites (UPDATE/DELETE on the same file).
//   - read-write: a concurrent committed transaction removed a file
//     this session read, or added any file to a table this session
//     read (the phantom guard: new files may contain rows the
//     session's predicates would have matched).
//
// Pure blind INSERTs record no reads and remove no files, so
// insert-only transactions always commute — the append-only fast path
// that keeps commit throughput flat under contention (E17).
package txn

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"biglake/internal/bigmeta"
	"biglake/internal/blmt"
	"biglake/internal/catalog"
	"biglake/internal/colfmt"
	"biglake/internal/crashpoint"
	"biglake/internal/engine"
	"biglake/internal/objstore"
	"biglake/internal/obs"
	"biglake/internal/resilience"
	"biglake/internal/security"
	"biglake/internal/sqlparse"
	"biglake/internal/vector"
	"biglake/internal/wal"
)

// Errors surfaced by the transaction layer.
var (
	// ErrConflict is a first-committer-wins validation failure: a
	// transaction that committed after this session's snapshot touched
	// an overlapping read or write set. The session is aborted; retry
	// by beginning a new transaction.
	ErrConflict = errors.New("txn: serialization conflict, transaction aborted")
	// ErrClosed reports a statement against a session that already
	// committed or aborted.
	ErrClosed = errors.New("txn: session is closed")
	// ErrNested reports BEGIN inside an open transaction.
	ErrNested = errors.New("txn: transaction already open (nested BEGIN)")
)

// Session states.
const (
	stateActive = iota
	stateCommitted
	stateAborted
)

// Abort causes, used as metric suffixes (txn.aborts.<cause>).
const (
	abortConflict = "conflict"
	abortDeadline = "deadline"
	abortFault    = "fault"
	abortExplicit = "explicit"
)

// Manager owns transaction sessions for one deployment. It reuses the
// engine's catalog, authority, log, stores, and retry policy, and the
// same journal the non-transactional DML path writes intents to — a
// recovered process replays single-statement and multi-table commits
// through one code path.
type Manager struct {
	Eng *engine.Engine
	// Journal, when set, records a durable intent covering every data
	// file a commit will write, before the first PUT. Nil disables
	// journaling (and with it the crash-exactly-once guarantee), same
	// as blmt.
	Journal *wal.Journal
	// Crash marks the commit protocol's crash points (nil = none).
	Crash *crashpoint.Injector
	// Res overrides the retry policy for commit-path object I/O; nil
	// falls back to the engine's policy.
	Res *resilience.Policy
	// Tracer, when set, records a span tree per session (BEGIN through
	// COMMIT/ROLLBACK) for EXPLAIN ANALYZE-style inspection.
	Tracer *obs.Tracer

	mu     sync.Mutex
	active int64

	tc txnCounters
}

// txnCounters holds pre-resolved registry handles so the per-statement
// path never takes the registry's name-lookup lock.
type txnCounters struct {
	reg       *obs.Registry
	activeG   *obs.Gauge
	begins    *obs.Counter
	commits   *obs.Counter
	commitsRO *obs.Counter
	retries   *obs.Counter
	tables    *obs.Counter
	files     *obs.Counter
	aborts    map[string]*obs.Counter
	pinAgeUS  *obs.Histogram
	validated *obs.Counter
	replays   *obs.Counter
}

// pinAgeBounds buckets snapshot-pin age (microseconds of simulated
// time between BEGIN and COMMIT) from sub-millisecond interactive
// sessions up to multi-second stragglers.
var pinAgeBounds = []int64{100, 1000, 10_000, 100_000, 1_000_000, 10_000_000}

// NewManager assembles a transaction manager around an engine and a
// journal, publishing txn.* metrics into the engine's registry.
func NewManager(eng *engine.Engine, j *wal.Journal) *Manager {
	m := &Manager{Eng: eng, Journal: j}
	m.UseObs(eng.Obs)
	return m
}

// UseObs re-resolves the manager's metric handles against reg. Call it
// after swapping the engine onto a shared registry.
func (m *Manager) UseObs(reg *obs.Registry) {
	m.mu.Lock()
	defer m.mu.Unlock()
	tc := txnCounters{reg: reg, aborts: make(map[string]*obs.Counter)}
	if reg != nil {
		tc.activeG = reg.Gauge("txn.sessions.active")
		tc.begins = reg.Counter("txn.begins")
		tc.commits = reg.Counter("txn.commits")
		tc.commitsRO = reg.Counter("txn.commits.readonly")
		tc.retries = reg.Counter("txn.commit.retries")
		tc.tables = reg.Counter("txn.commit.tables")
		tc.files = reg.Counter("txn.commit.files")
		tc.validated = reg.Counter("txn.commit.validated_records")
		tc.replays = reg.Counter("txn.commit.replays")
		for _, cause := range []string{abortConflict, abortDeadline, abortFault, abortExplicit} {
			tc.aborts[cause] = reg.Counter("txn.aborts." + cause)
		}
		tc.pinAgeUS = reg.Histogram("txn.snapshot.pin_age_us", pinAgeBounds)
	}
	m.tc = tc
}

func (m *Manager) res() *resilience.Policy {
	if m.Res != nil {
		return m.Res
	}
	return m.Eng.Res
}

func (m *Manager) sessionDelta(d int64) {
	m.mu.Lock()
	m.active += d
	g := m.tc.activeG
	v := m.active
	m.mu.Unlock()
	if g != nil {
		g.Set(v)
	}
}

// tableBuf is one table's buffered write set.
type tableBuf struct {
	// removed marks snapshot files this session's UPDATE/DELETE
	// statements rewrote; they are dropped from the session's own
	// scans and become the commit's Removed delta.
	removed map[string]bool
	// batches are buffered row sets (INSERT payloads and rewrite
	// survivors) visible to the session's own reads and materialized
	// as data files only at COMMIT.
	batches []*vector.Batch
}

// Session is one interactive transaction. It implements both
// engine.TxnView (pinned snapshot + overlay for reads) and
// engine.Mutator (buffered writes), so statements executed through it
// see their own uncommitted effects while the shared log sees nothing
// until COMMIT.
type Session struct {
	m         *Manager
	ID        string
	Principal security.Principal
	// Deadline, when > 0, bounds each statement and the commit
	// protocol to that much simulated time (engine.QueryContext
	// semantics). A stuck commit aborts cleanly instead of spinning.
	Deadline time.Duration

	mu       sync.Mutex
	state    int
	snapshot int64
	beganAt  time.Duration
	version  int64 // sealed commit version once committed
	stmtSeq  int
	// reads maps table -> set of snapshot file keys the session's
	// statements logically read; readTables tracks tables read at all
	// (for the phantom guard, even when the table was empty).
	reads      map[string]map[string]bool
	readTables map[string]bool
	bufs       map[string]*tableBuf
	intentSeq  int64

	trace *obs.Trace
	root  *obs.Span
}

var (
	_ engine.TxnView = (*Session)(nil)
	_ engine.Mutator = (*Session)(nil)
)

// Begin opens a session pinned to the log's current version. id is the
// transaction's idempotency identity: a session begun with the ID of
// an already-sealed transaction will discover that at COMMIT and
// no-op (crash-safe client retries).
func (m *Manager) Begin(principal security.Principal, id string) *Session {
	s := &Session{
		m:          m,
		ID:         id,
		Principal:  principal,
		snapshot:   m.Eng.Log.Version(),
		beganAt:    m.Eng.Clock.Now(),
		reads:      make(map[string]map[string]bool),
		readTables: make(map[string]bool),
		bufs:       make(map[string]*tableBuf),
	}
	if m.Tracer != nil {
		s.trace = m.Tracer.Start("txn-"+id, m.Eng.Clock)
		s.root = s.trace.Root()
		sp := s.root.ChildAt(m.Eng.Clock, "txn.begin")
		sp.SetInt("snapshot_version", s.snapshot)
		sp.End()
	}
	if m.tc.begins != nil {
		m.tc.begins.Add(1)
	}
	m.sessionDelta(1)
	return s
}

// Snapshot returns the log version the session's reads are pinned to.
func (s *Session) Snapshot() int64 { return s.snapshot }

// Active reports whether the session still accepts statements — false
// once committed, rolled back, or aborted.
func (s *Session) Active() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.state == stateActive
}

// Version returns the sealed commit version (0 until committed).
func (s *Session) Version() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.version
}

// --- engine.TxnView ---

// SnapshotVersion pins every managed-table scan in this session.
func (s *Session) SnapshotVersion() int64 { return s.snapshot }

// Overlay exposes the session's buffered writes to its own scans:
// files it rewrote disappear, rows it buffered appear.
func (s *Session) Overlay(table string) (map[string]bool, []*vector.Batch) {
	s.mu.Lock()
	defer s.mu.Unlock()
	b := s.bufs[table]
	if b == nil {
		return nil, nil
	}
	batches := append([]*vector.Batch(nil), b.batches...)
	removed := make(map[string]bool, len(b.removed))
	for k := range b.removed {
		removed[k] = true
	}
	return removed, batches
}

// ObserveRead records the snapshot files a statement logically read,
// before predicate pruning — the session's read set for validation.
func (s *Session) ObserveRead(table string, files []bigmeta.FileEntry) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.state != stateActive {
		return
	}
	s.readTables[table] = true
	set := s.reads[table]
	if set == nil {
		set = make(map[string]bool, len(files))
		s.reads[table] = set
	}
	for _, f := range files {
		set[f.Key] = true
	}
}

// --- statement execution ---

// newCtx builds a per-statement query context bound to this session.
func (s *Session) newCtx(tag string) *engine.QueryContext {
	s.mu.Lock()
	s.stmtSeq++
	seq := s.stmtSeq
	s.mu.Unlock()
	ctx := engine.NewContext(s.Principal, fmt.Sprintf("%s-%s%02d", s.ID, tag, seq))
	ctx.Txn = s
	ctx.Mutator = s
	ctx.Deadline = s.Deadline
	if s.trace != nil {
		ctx.Trace = s.trace
		ctx.Span = s.root
	}
	return ctx
}

// Exec parses and executes one SQL statement inside the transaction.
// BEGIN is rejected (no nesting); COMMIT and ROLLBACK resolve the
// session and return a one-row status batch.
func (s *Session) Exec(sql string) (*engine.Result, error) {
	stmt, _, err := s.m.Eng.Parse(sql)
	if err != nil {
		return nil, err
	}
	return s.ExecStmt(nil, stmt)
}

// ExecStmt executes a parsed statement inside the transaction. A nil
// ctx derives a session-tagged context; a caller-supplied one (the
// serve layer passes a context whose retry budget it can cancel) is
// bound to the session — its Txn/Mutator hooks are overwritten — so
// reads pin to the snapshot and DML lands in the write buffer.
func (s *Session) ExecStmt(ctx *engine.QueryContext, stmt sqlparse.Statement) (*engine.Result, error) {
	switch stmt.(type) {
	case *sqlparse.BeginStmt:
		return nil, ErrNested
	case *sqlparse.CommitStmt:
		v, err := s.Commit(ctx)
		if err != nil {
			return nil, err
		}
		out := vector.MustBatch(vector.NewSchema(vector.Field{Name: "commit_version", Type: vector.Int64}),
			[]*vector.Column{vector.NewInt64Column([]int64{v})})
		return &engine.Result{Batch: out}, nil
	case *sqlparse.RollbackStmt:
		if err := s.Rollback(); err != nil {
			return nil, err
		}
		out := vector.MustBatch(vector.NewSchema(vector.Field{Name: "rolled_back", Type: vector.Bool}),
			[]*vector.Column{vector.NewBoolColumn([]bool{true})})
		return &engine.Result{Batch: out}, nil
	}
	s.mu.Lock()
	closed := s.state != stateActive
	s.mu.Unlock()
	if closed {
		return nil, ErrClosed
	}
	if ctx == nil {
		ctx = s.newCtx("s")
	} else {
		ctx.Txn = s
		ctx.Mutator = s
	}
	return s.m.Eng.Execute(ctx, stmt)
}

// --- engine.Mutator: buffered writes ---

func (s *Session) managedTable(name string) (catalog.Table, *objstore.Store, objstore.Credential, error) {
	e := s.m.Eng
	t, err := e.Catalog.Table(name)
	if err != nil {
		return catalog.Table{}, nil, objstore.Credential{}, err
	}
	if t.Type != catalog.Managed && t.Type != catalog.Native {
		return catalog.Table{}, nil, objstore.Credential{}, fmt.Errorf("%w: %s is %v", blmt.ErrNotManaged, name, t.Type)
	}
	store, ok := e.Stores[t.Cloud]
	if !ok {
		return catalog.Table{}, nil, objstore.Credential{}, fmt.Errorf("txn: no object store for cloud %q", t.Cloud)
	}
	var cred objstore.Credential
	if t.Connection == "" {
		cred = e.ManagedCred
	} else {
		conn, err := e.Auth.Connection(t.Connection)
		if err != nil {
			return catalog.Table{}, nil, objstore.Credential{}, err
		}
		cred = conn.ServiceAccount
	}
	return t, store, cred, nil
}

func (s *Session) buf(table string) *tableBuf {
	b := s.bufs[table]
	if b == nil {
		b = &tableBuf{removed: make(map[string]bool)}
		s.bufs[table] = b
	}
	return b
}

// Insert buffers rows; nothing is written until COMMIT. Blind inserts
// record no reads, so insert-only transactions never conflict.
func (s *Session) Insert(ctx *engine.QueryContext, table string, rows *vector.Batch) error {
	t, _, _, err := s.managedTable(table)
	if err != nil {
		return err
	}
	aligned, err := blmt.AlignToSchema(rows, t.Schema)
	if err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.state != stateActive {
		return ErrClosed
	}
	if aligned.N > 0 {
		s.buf(table).batches = append(s.buf(table).batches, aligned)
	}
	return nil
}

// CreateTableAs is a DDL+DML compound; it commits catalog state
// outside the log and cannot be made transactional here.
func (s *Session) CreateTableAs(ctx *engine.QueryContext, table string, orReplace bool, rows *vector.Batch) error {
	return fmt.Errorf("txn: CREATE TABLE AS is not supported inside a transaction")
}

// Delete buffers a copy-on-write delete: matching snapshot files are
// marked removed and their surviving rows re-buffered.
func (s *Session) Delete(ctx *engine.QueryContext, table string, where func(*vector.Batch) ([]bool, error)) (int64, error) {
	return s.rewrite(ctx, table, func(b *vector.Batch) (*vector.Batch, bool, error) {
		mask, err := where(b)
		if err != nil {
			return nil, false, err
		}
		if vector.CountMask(mask) == 0 {
			return nil, false, nil
		}
		kept, err := vector.Filter(b, vector.Not(mask))
		if err != nil {
			return nil, false, err
		}
		return kept, true, nil
	})
}

// Update buffers a copy-on-write update.
func (s *Session) Update(ctx *engine.QueryContext, table string, set func(*vector.Batch) (*vector.Batch, error), where func(*vector.Batch) ([]bool, error)) (int64, error) {
	var updated int64
	_, err := s.rewrite(ctx, table, func(b *vector.Batch) (*vector.Batch, bool, error) {
		mask, err := where(b)
		if err != nil {
			return nil, false, err
		}
		n := vector.CountMask(mask)
		if n == 0 {
			return nil, false, nil
		}
		updated += int64(n)
		transformed, err := set(b)
		if err != nil {
			return nil, false, err
		}
		merged, err := blmt.MergeMasked(b, transformed, mask)
		if err != nil {
			return nil, false, err
		}
		return merged, true, nil
	})
	if err != nil {
		return 0, err
	}
	return updated, nil
}

// rewrite applies a per-file transform over the session's view of the
// table: pinned snapshot files (minus already-rewritten ones) plus
// buffered batches. Touched files move into the removed set with their
// survivors re-buffered; touched buffered batches are replaced in
// place. The whole table's live file set enters the read set — an
// UPDATE/DELETE logically reads everything it scans.
func (s *Session) rewrite(ctx *engine.QueryContext, table string, transform func(*vector.Batch) (*vector.Batch, bool, error)) (int64, error) {
	_, store, cred, err := s.managedTable(table)
	if err != nil {
		return 0, err
	}
	e := s.m.Eng
	files, _, err := e.Log.Snapshot(table, s.snapshot)
	if err != nil {
		return 0, err
	}
	s.mu.Lock()
	if s.state != stateActive {
		s.mu.Unlock()
		return 0, ErrClosed
	}
	b := s.buf(table)
	live := make([]bigmeta.FileEntry, 0, len(files))
	for _, f := range files {
		if !b.removed[f.Key] {
			live = append(live, f)
		}
	}
	pending := append([]*vector.Batch(nil), b.batches...)
	s.mu.Unlock()

	s.ObserveRead(table, live)

	var affected int64
	var newRemoved []string
	var outs []*vector.Batch
	for _, f := range live {
		var data []byte
		if err := s.m.res().Do(e.Clock, ctx.Budget, "GET "+f.Bucket+"/"+f.Key, func() error {
			var ge error
			data, _, ge = store.Get(cred, f.Bucket, f.Key)
			return ge
		}); err != nil {
			return 0, err
		}
		r, err := colfmt.NewVectorizedReader(data, nil, nil)
		if err != nil {
			return 0, err
		}
		batch, err := r.ReadAll()
		if err != nil {
			return 0, err
		}
		out, changed, err := transform(batch)
		if err != nil {
			return 0, err
		}
		if !changed {
			continue
		}
		affected += int64(batch.N)
		if out != nil {
			affected -= int64(out.N)
		}
		newRemoved = append(newRemoved, f.Key)
		if out != nil && out.N > 0 {
			outs = append(outs, out)
		}
	}
	// Buffered batches are this session's own uncommitted rows; the
	// transform rewrites them in place.
	replaced := make(map[int]*vector.Batch)
	for i, pb := range pending {
		out, changed, err := transform(pb)
		if err != nil {
			return 0, err
		}
		if !changed {
			continue
		}
		affected += int64(pb.N)
		if out != nil {
			affected -= int64(out.N)
		}
		replaced[i] = out
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.state != stateActive {
		return 0, ErrClosed
	}
	b = s.buf(table)
	for _, k := range newRemoved {
		b.removed[k] = true
	}
	if len(replaced) > 0 {
		next := b.batches[:0]
		for i, pb := range b.batches {
			if out, ok := replaced[i]; ok {
				if out != nil && out.N > 0 {
					next = append(next, out)
				}
				continue
			}
			next = append(next, pb)
		}
		b.batches = next
	}
	b.batches = append(b.batches, outs...)
	return affected, nil
}

// --- commit protocol ---

// plannedFile is one data file the commit will materialize.
type plannedFile struct {
	table string
	t     catalog.Table
	store *objstore.Store
	cred  objstore.Credential
	batch *vector.Batch
	key   string
}

func sanitizeTxn(id string) string {
	out := []byte(id)
	for i, c := range out {
		if c == '/' || c == ':' {
			out[i] = '-'
		}
	}
	return string(out)
}

// writePlan derives the commit's deterministic data-file keys: tables
// in sorted order, batches in buffer order, a single global index.
// A recovered retry of the same transaction re-derives identical keys
// and overwrites its crashed predecessor's files.
func (s *Session) writePlan() ([]plannedFile, error) {
	tables := make([]string, 0, len(s.bufs))
	for tn, b := range s.bufs {
		if len(b.batches) > 0 || len(b.removed) > 0 {
			tables = append(tables, tn)
		}
	}
	sort.Strings(tables)
	var plan []plannedFile
	idx := 0
	for _, tn := range tables {
		t, store, cred, err := s.managedTable(tn)
		if err != nil {
			return nil, err
		}
		for _, batch := range s.bufs[tn].batches {
			key := fmt.Sprintf("%sdata/%s-%06d.blk", t.Prefix, sanitizeTxn(s.ID), idx)
			idx++
			plan = append(plan, plannedFile{table: tn, t: t, store: store, cred: cred, batch: batch, key: key})
		}
	}
	return plan, nil
}

// conflicts validates this session's read/write sets against one
// concurrently committed record (first-committer-wins OCC).
func (s *Session) conflicts(rec bigmeta.CommitRecord) error {
	if s.m.tc.validated != nil {
		s.m.tc.validated.Add(1)
	}
	for table, d := range rec.Deltas {
		if b := s.bufs[table]; b != nil && len(b.removed) > 0 {
			for _, k := range d.Removed {
				if b.removed[k] {
					return fmt.Errorf("%w: write-write on %s file %s (committed v%d)", ErrConflict, table, k, rec.Version)
				}
			}
		}
		if !s.readTables[table] {
			continue
		}
		if len(d.Added) > 0 {
			return fmt.Errorf("%w: read-write phantom on %s (v%d added %d files)", ErrConflict, table, rec.Version, len(d.Added))
		}
		rf := s.reads[table]
		for _, k := range d.Removed {
			if rf[k] {
				return fmt.Errorf("%w: read-write on %s file %s (committed v%d)", ErrConflict, table, k, rec.Version)
			}
		}
	}
	return nil
}

// commitSpan opens the named child span under the session's root (or
// the caller's span when the session is untraced).
func (s *Session) commitSpan(ctx *engine.QueryContext, name string) *obs.Span {
	if s.root != nil {
		return s.root.ChildAt(s.m.Eng.Clock, name)
	}
	if ctx != nil && ctx.Span != nil {
		return ctx.Span.ChildAt(s.m.Eng.Clock, name)
	}
	return nil
}

// Commit runs the multi-table commit protocol. ctx may be nil (a
// context is derived from the session); when given, its deadline and
// retry budget govern the protocol's object I/O.
//
// Protocol: AppliedTx replay check → cheap pre-validation (a doomed
// transaction aborts before writing anything durable) → journal intent
// covering every planned key → data PUTs at txn-derived keys → sealed
// validate-and-commit under the log mutex (CommitTxIf). A conflict
// discovered at seal time aborts the intent so GC reclaims the debris
// eagerly.
func (s *Session) Commit(ctx *engine.QueryContext) (int64, error) {
	s.mu.Lock()
	switch s.state {
	case stateCommitted:
		v := s.version
		s.mu.Unlock()
		return v, nil
	case stateAborted:
		s.mu.Unlock()
		return 0, ErrClosed
	}
	s.mu.Unlock()

	m := s.m
	e := m.Eng
	if ctx == nil {
		ctx = s.newCtx("commit")
	}
	if ctx.Budget == nil {
		ctx.Budget = resilience.NewBudget(e.Clock, engine.QueryRetryBudget, resilience.Seed64(s.ID))
		if ctx.Deadline > 0 {
			ctx.Budget.SetDeadline(e.Clock.Now() + ctx.Deadline)
		}
	}
	sp := s.commitSpan(ctx, "txn.commit")
	defer sp.End()
	// Whatever slice of the query's retry budget this commit's I/O
	// consumes (transient PUT/seal faults absorbed by the resilience
	// policy) is the transaction layer's retry pressure.
	if m.tc.retries != nil && ctx.Budget != nil {
		before := ctx.Budget.Remaining()
		defer func() {
			if spent := before - ctx.Budget.Remaining(); spent > 0 {
				m.tc.retries.Add(int64(spent))
			}
		}()
	}

	// A crashed predecessor may already have sealed this transaction:
	// replaying its COMMIT is an exact no-op returning the original
	// version.
	if v, ok := e.Log.AppliedTx(s.ID); ok {
		if m.tc.replays != nil {
			m.tc.replays.Add(1)
		}
		s.finish(stateCommitted, v)
		sp.SetInt("replayed", 1)
		return v, nil
	}

	s.mu.Lock()
	plan, err := s.writePlan()
	s.mu.Unlock()
	if err != nil {
		return 0, s.abortWith(ctx, abortFault, err)
	}

	// Read-only transactions commit at their snapshot: nothing to
	// validate (snapshot isolation already made them consistent) and
	// nothing to write.
	readOnly := true
	for _, b := range s.bufs {
		if len(b.batches) > 0 || len(b.removed) > 0 {
			readOnly = false
			break
		}
	}
	if readOnly {
		if m.tc.commitsRO != nil {
			m.tc.commitsRO.Add(1)
		}
		s.observePinAge()
		s.finish(stateCommitted, s.snapshot)
		return s.snapshot, nil
	}

	// Cheap pre-validation: most conflicts are caught here, before the
	// transaction has written a single durable byte, so aborts cost
	// nothing but the session's buffered memory.
	vsp := s.commitSpan(ctx, "txn.validate")
	s.mu.Lock()
	var preErr error
	for _, rec := range e.Log.Since(s.snapshot) {
		if preErr = s.conflicts(rec); preErr != nil {
			break
		}
	}
	s.mu.Unlock()
	vsp.End()
	if preErr != nil {
		return 0, s.abortWith(ctx, abortConflict, preErr)
	}
	if err := ctx.Budget.CheckDeadline(e.Clock); err != nil {
		return 0, s.abortWith(ctx, abortDeadline, err)
	}

	// Durable intent: every key the commit may write, declared before
	// the first PUT, so recovery can enumerate (and GC) the debris of
	// a crash anywhere past this point.
	m.Crash.At("txn.before_intent")
	var intentSeq int64
	if m.Journal != nil {
		keys := make([]string, len(plan))
		for i, p := range plan {
			keys[i] = p.key
		}
		isp := s.commitSpan(ctx, "txn.intent")
		err := m.res().Do(e.Clock, ctx.Budget, "INTENT "+s.ID, func() error {
			var ie error
			intentSeq, ie = m.Journal.AppendIntent(s.ID, string(s.Principal), keys)
			return ie
		})
		isp.End()
		if err != nil {
			return 0, s.abortIOErr(ctx, err)
		}
		s.mu.Lock()
		s.intentSeq = intentSeq
		s.mu.Unlock()
	}
	m.Crash.At("txn.after_intent")

	// Data PUTs at deterministic keys. Each write retries under the
	// resilience policy against the commit's budget; chaos faults ride
	// the backoff, fatal errors abort.
	psp := s.commitSpan(ctx, "txn.put")
	deltas := make(map[string]bigmeta.TableDelta)
	for _, p := range plan {
		m.Crash.At("txn.before_put")
		entry, err := s.writeDataFile(ctx, p)
		if err != nil {
			psp.End()
			return 0, s.abortIOErr(ctx, err)
		}
		m.Crash.At("txn.after_put")
		d := deltas[p.table]
		d.Added = append(d.Added, entry)
		deltas[p.table] = d
	}
	psp.SetInt("files", int64(len(plan)))
	psp.End()
	s.mu.Lock()
	for tn, b := range s.bufs {
		if len(b.removed) == 0 {
			continue
		}
		d := deltas[tn]
		for k := range b.removed {
			d.Removed = append(d.Removed, k)
		}
		sort.Strings(d.Removed)
		deltas[tn] = d
	}
	s.mu.Unlock()

	// Seal: validation and the multi-table commit record happen
	// atomically under the log's single mutex — deadlock-free by
	// construction, no table lock ordering to get wrong. The journal's
	// before_seal/after_seal crash points fire inside.
	ssp := s.commitSpan(ctx, "txn.seal")
	var version int64
	err = m.res().Do(e.Clock, ctx.Budget, "SEAL "+s.ID, func() error {
		s.mu.Lock()
		defer s.mu.Unlock()
		v, se := e.Log.CommitTxIf(string(s.Principal),
			bigmeta.TxOptions{TxnID: s.ID, IntentSeq: intentSeq},
			deltas, s.snapshot, s.conflicts)
		if se != nil {
			return se
		}
		version = v
		return nil
	})
	ssp.End()
	if err != nil {
		if errors.Is(err, ErrConflict) {
			// Late conflict: the intent is already durable, so hand
			// the debris to GC eagerly with an abort record.
			return 0, s.abortWith(ctx, abortConflict, err)
		}
		return 0, s.abortIOErr(ctx, err)
	}
	m.Crash.At("txn.after_seal")

	if m.tc.commits != nil {
		m.tc.commits.Add(1)
		m.tc.tables.Add(int64(len(deltas)))
		m.tc.files.Add(int64(len(plan)))
	}
	s.observePinAge()
	sp.SetInt("version", version)
	sp.SetInt("tables", int64(len(deltas)))
	s.finish(stateCommitted, version)
	return version, nil
}

// writeDataFile materializes one planned batch, mirroring blmt's
// crash-consistent PUT (encode → retried PUT → footer stats).
func (s *Session) writeDataFile(ctx *engine.QueryContext, p plannedFile) (bigmeta.FileEntry, error) {
	file, err := colfmt.WriteFile(p.batch, colfmt.WriterOptions{})
	if err != nil {
		return bigmeta.FileEntry{}, err
	}
	var info objstore.ObjectInfo
	if err := s.m.res().Do(s.m.Eng.Clock, ctx.Budget, "PUT "+p.t.Bucket+"/"+p.key, func() error {
		var pe error
		info, pe = p.store.Put(p.cred, p.t.Bucket, p.key, file, "application/x-blk")
		return pe
	}); err != nil {
		return bigmeta.FileEntry{}, err
	}
	footer, err := colfmt.ReadFooter(file)
	if err != nil {
		return bigmeta.FileEntry{}, err
	}
	stats := make(map[string]colfmt.ColumnStats)
	for _, f := range footer.Fields {
		if st, ok := footer.ColumnStatsFor(f.Name); ok {
			stats[f.Name] = st
		}
	}
	return bigmeta.FileEntry{
		Bucket: p.t.Bucket, Key: p.key, Size: info.Size,
		Generation: info.Generation,
		RowCount:   footer.Rows, ColumnStats: stats,
	}, nil
}

// Rollback discards the session's buffered writes. It is cheap (no
// durable writes happened before COMMIT) and idempotent: rolling back
// a closed session is a no-op.
func (s *Session) Rollback() error {
	s.mu.Lock()
	if s.state != stateActive {
		s.mu.Unlock()
		return nil
	}
	s.mu.Unlock()
	s.recordAbort(abortExplicit)
	s.finish(stateAborted, 0)
	return nil
}

// abortIOErr classifies a commit-path I/O failure (deadline vs
// exhausted-retries fault) and aborts the session.
func (s *Session) abortIOErr(ctx *engine.QueryContext, err error) error {
	cause := abortFault
	if resilience.Classify(err) == resilience.Deadline {
		cause = abortDeadline
	}
	return s.abortWith(ctx, cause, err)
}

// abortWith aborts the session for the given cause, appending a
// journal abort record when an intent was already durable so GC
// reclaims the planned keys without waiting for recovery.
func (s *Session) abortWith(ctx *engine.QueryContext, cause string, err error) error {
	s.mu.Lock()
	intentSeq := s.intentSeq
	closed := s.state != stateActive
	s.mu.Unlock()
	if closed {
		return err
	}
	if intentSeq > 0 && s.m.Journal != nil {
		// Best-effort: if the abort record itself fails, recovery
		// still classifies the unsealed intent's keys as orphans.
		_ = s.m.res().Do(s.m.Eng.Clock, nil, "ABORT "+s.ID, func() error {
			return s.m.Journal.AppendAbort(s.ID, intentSeq)
		})
	}
	s.recordAbort(cause)
	s.finish(stateAborted, 0)
	return err
}

func (s *Session) recordAbort(cause string) {
	if c := s.m.tc.aborts[cause]; c != nil {
		c.Add(1)
	}
	if sp := s.commitSpan(nil, "txn.abort"); sp != nil {
		sp.SetStr("cause", cause)
		sp.End()
	}
}

func (s *Session) observePinAge() {
	if s.m.tc.pinAgeUS != nil {
		s.m.tc.pinAgeUS.Observe(int64((s.m.Eng.Clock.Now() - s.beganAt) / time.Microsecond))
	}
}

// finish closes the session exactly once, settling the active gauge
// and the trace.
func (s *Session) finish(state int, version int64) {
	s.mu.Lock()
	if s.state != stateActive {
		s.mu.Unlock()
		return
	}
	s.state = state
	s.version = version
	s.mu.Unlock()
	s.m.sessionDelta(-1)
	if s.trace != nil {
		s.trace.Finish()
	}
}

// Trace returns the session's span tree (nil without a Tracer).
func (s *Session) Trace() *obs.Trace { return s.trace }
