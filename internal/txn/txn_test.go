package txn

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"biglake/internal/bigmeta"
	"biglake/internal/blmt"
	"biglake/internal/catalog"
	"biglake/internal/crashpoint"
	"biglake/internal/engine"
	"biglake/internal/objstore"
	"biglake/internal/obs"
	"biglake/internal/resilience"
	"biglake/internal/security"
	"biglake/internal/sim"
	"biglake/internal/vector"
	"biglake/internal/wal"
)

const adminP = security.Principal("admin@corp")

type env struct {
	clock *sim.Clock
	store *objstore.Store
	cat   *catalog.Catalog
	auth  *security.Authority
	log   *bigmeta.Log
	blmt  *blmt.Manager
	eng   *engine.Engine
	mgr   *Manager
	j     *wal.Journal
	cp    *crashpoint.Injector
	cred  objstore.Credential
}

// newEnv wires the full stack: catalog + authority + log + journal +
// engine + blmt mutator (for non-transactional setup DML) + txn
// manager, on one simulated object store.
func newEnv(t *testing.T) *env {
	t.Helper()
	clock := sim.NewClock()
	store := objstore.New(sim.GCP, clock, nil)
	cred := objstore.Credential{Principal: "sa@corp"}
	for _, b := range []string{"customer-bucket", "journal-bucket"} {
		if err := store.CreateBucket(cred, b); err != nil {
			t.Fatal(err)
		}
	}
	cat := catalog.New()
	cat.CreateDataset(catalog.Dataset{Name: "ds", Region: "gcp-us", Cloud: "gcp"})
	auth := security.NewAuthority("secret", adminP)
	auth.RegisterConnection(adminP, security.Connection{Name: "conn", ServiceAccount: cred, Cloud: "gcp"})
	log := bigmeta.NewLog(clock, nil)
	j, err := wal.Open(store, cred, "journal-bucket", "")
	if err != nil {
		t.Fatal(err)
	}
	log.AttachJournal(j)
	cp := &crashpoint.Injector{}
	log.Crash = cp
	stores := map[string]*objstore.Store{"gcp": store}
	bm := blmt.New(cat, auth, log, clock, stores)
	bm.DefaultCloud, bm.DefaultBucket, bm.DefaultConnection = "gcp", "customer-bucket", "conn"
	bm.Journal, bm.Crash = j, cp
	meta := bigmeta.NewCache(clock, nil)
	eng := engine.New(cat, auth, meta, log, clock, stores, engine.DefaultOptions())
	eng.ManagedCred = cred
	eng.SetMutator(bm)
	mgr := NewManager(eng, j)
	mgr.Crash = cp
	return &env{clock: clock, store: store, cat: cat, auth: auth, log: log,
		blmt: bm, eng: eng, mgr: mgr, j: j, cp: cp, cred: cred}
}

func (ev *env) createTable(t *testing.T, name string) {
	t.Helper()
	if err := ev.cat.CreateTable(catalog.Table{
		Dataset: "ds", Name: name, Type: catalog.Managed,
		Schema: vector.NewSchema(
			vector.Field{Name: "id", Type: vector.Int64},
			vector.Field{Name: "v", Type: vector.Int64},
		),
		Cloud: "gcp", Bucket: "customer-bucket",
		Prefix: "blmt/ds/" + name + "/", Connection: "conn",
	}); err != nil {
		t.Fatal(err)
	}
}

// sql runs a statement outside any transaction (autocommit path).
func (ev *env) sql(t *testing.T, q string) *engine.Result {
	t.Helper()
	res, err := ev.eng.Query(engine.NewContext(adminP, fmt.Sprintf("q%d", ev.log.Version())), q)
	if err != nil {
		t.Fatalf("Query(%q): %v", q, err)
	}
	return res
}

func rowCount(t *testing.T) func(*engine.Result, error) int {
	return func(res *engine.Result, err error) int {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
		return res.Batch.N
	}
}

// gcOnce runs one orphan-GC pass over the data and journal prefixes.
func (ev *env) gcOnce(t *testing.T) wal.GCReport {
	t.Helper()
	rep, err := wal.GCOrphans(ev.store, ev.cred, "customer-bucket", []string{"blmt/"}, ev.log)
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

func TestSnapshotIsolation(t *testing.T) {
	ev := newEnv(t)
	ev.createTable(t, "acct")
	ev.sql(t, "INSERT INTO ds.acct VALUES (1, 100), (2, 200)")

	s := ev.mgr.Begin(adminP, "txn-si")
	if n := rowCount(t)(s.Exec("SELECT id FROM ds.acct")); n != 2 {
		t.Fatalf("pinned read = %d rows, want 2", n)
	}
	// A commit lands after the session began: invisible to the pinned
	// snapshot, visible outside.
	ev.sql(t, "INSERT INTO ds.acct VALUES (3, 300)")
	if n := rowCount(t)(s.Exec("SELECT id FROM ds.acct")); n != 2 {
		t.Fatalf("snapshot leaked: %d rows, want 2", n)
	}
	if n := rowCount(t)(ev.eng.Query(engine.NewContext(adminP, "qo"), "SELECT id FROM ds.acct")); n != 3 {
		t.Fatalf("outside read = %d rows, want 3", n)
	}
	// Read-only commit succeeds at the snapshot version despite the
	// concurrent write.
	v, err := s.Commit(nil)
	if err != nil {
		t.Fatalf("read-only commit: %v", err)
	}
	if v != s.Snapshot() {
		t.Fatalf("read-only commit version = %d, want snapshot %d", v, s.Snapshot())
	}
}

func TestReadYourWritesAndMultiTableAtomicity(t *testing.T) {
	ev := newEnv(t)
	ev.createTable(t, "a")
	ev.createTable(t, "b")
	ev.sql(t, "INSERT INTO ds.a VALUES (1, 10)")

	s := ev.mgr.Begin(adminP, "txn-ryw")
	if _, err := s.Exec("INSERT INTO ds.a VALUES (2, 20)"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Exec("INSERT INTO ds.b VALUES (9, 90)"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Exec("UPDATE ds.a SET v = 11 WHERE id = 1"); err != nil {
		t.Fatal(err)
	}
	// The session sees its own buffered effects...
	res, err := s.Exec("SELECT v FROM ds.a ORDER BY v")
	if err != nil {
		t.Fatal(err)
	}
	if res.Batch.N != 2 || res.Batch.Row(0)[0].I != 11 || res.Batch.Row(1)[0].I != 20 {
		t.Fatalf("read-your-writes: got %d rows, first=%v", res.Batch.N, res.Batch.Row(0))
	}
	// ...while the outside world sees nothing until COMMIT.
	if n := rowCount(t)(ev.eng.Query(engine.NewContext(adminP, "qo"), "SELECT id FROM ds.b")); n != 0 {
		t.Fatalf("uncommitted write leaked: %d rows in ds.b", n)
	}
	before := ev.log.Version()
	v, err := s.Commit(nil)
	if err != nil {
		t.Fatalf("commit: %v", err)
	}
	// Both tables moved in ONE log version: multi-table atomicity.
	if v != before+1 {
		t.Fatalf("commit version = %d, want %d (single atomic version)", v, before+1)
	}
	if res := ev.sql(t, "SELECT v FROM ds.a WHERE id = 1"); res.Batch.N != 1 || res.Batch.Row(0)[0].I != 11 {
		t.Fatalf("committed update lost: %v", res.Batch)
	}
	if n := rowCount(t)(ev.eng.Query(engine.NewContext(adminP, "qo2"), "SELECT id FROM ds.b")); n != 1 {
		t.Fatalf("ds.b rows = %d, want 1", n)
	}
	// Nothing to reclaim: the commit's files are all referenced.
	if rep := ev.gcOnce(t); len(rep.Deleted) != 0 {
		t.Fatalf("GC deleted %v after clean commit", rep.Deleted)
	}
}

func TestFirstCommitterWins(t *testing.T) {
	ev := newEnv(t)
	ev.createTable(t, "acct")
	ev.sql(t, "INSERT INTO ds.acct VALUES (1, 100)")

	s1 := ev.mgr.Begin(adminP, "txn-w1")
	s2 := ev.mgr.Begin(adminP, "txn-w2")
	if _, err := s1.Exec("UPDATE ds.acct SET v = 101 WHERE id = 1"); err != nil {
		t.Fatal(err)
	}
	if _, err := s2.Exec("UPDATE ds.acct SET v = 102 WHERE id = 1"); err != nil {
		t.Fatal(err)
	}
	if _, err := s1.Commit(nil); err != nil {
		t.Fatalf("first committer: %v", err)
	}
	_, err := s2.Commit(nil)
	if !errors.Is(err, ErrConflict) {
		t.Fatalf("second committer err = %v, want ErrConflict", err)
	}
	if got := ev.eng.Obs.Get("txn.aborts.conflict"); got != 1 {
		t.Fatalf("txn.aborts.conflict = %d, want 1", got)
	}
	// The winner's value survives; the loser wrote nothing.
	if res := ev.sql(t, "SELECT v FROM ds.acct WHERE id = 1"); res.Batch.Row(0)[0].I != 101 {
		t.Fatalf("v = %d, want 101", res.Batch.Row(0)[0].I)
	}
	if rep := ev.gcOnce(t); len(rep.Deleted) != 0 {
		t.Fatalf("conflict abort left orphans: %v", rep.Deleted)
	}
}

func TestBlindInsertsCommute(t *testing.T) {
	ev := newEnv(t)
	ev.createTable(t, "events")

	s1 := ev.mgr.Begin(adminP, "txn-i1")
	s2 := ev.mgr.Begin(adminP, "txn-i2")
	if _, err := s1.Exec("INSERT INTO ds.events VALUES (1, 1)"); err != nil {
		t.Fatal(err)
	}
	if _, err := s2.Exec("INSERT INTO ds.events VALUES (2, 2)"); err != nil {
		t.Fatal(err)
	}
	if _, err := s1.Commit(nil); err != nil {
		t.Fatalf("s1: %v", err)
	}
	// s2 also inserted into the same table from the same snapshot, but
	// a blind insert reads nothing and removes nothing — it commutes.
	if _, err := s2.Commit(nil); err != nil {
		t.Fatalf("blind insert should commute: %v", err)
	}
	if n := rowCount(t)(ev.eng.Query(engine.NewContext(adminP, "qo"), "SELECT id FROM ds.events")); n != 2 {
		t.Fatalf("rows = %d, want 2", n)
	}
}

func TestReadWriteConflictPhantom(t *testing.T) {
	ev := newEnv(t)
	ev.createTable(t, "acct")
	ev.createTable(t, "audit")
	ev.sql(t, "INSERT INTO ds.acct VALUES (1, 100)")

	// s reads acct and writes its sum into audit; meanwhile a
	// concurrent insert lands in acct. Serializability demands s
	// abort: its audit row no longer reflects acct.
	s := ev.mgr.Begin(adminP, "txn-ph")
	if _, err := s.Exec("SELECT v FROM ds.acct"); err != nil {
		t.Fatal(err)
	}
	ev.sql(t, "INSERT INTO ds.acct VALUES (2, 50)")
	if _, err := s.Exec("INSERT INTO ds.audit VALUES (1, 100)"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Commit(nil); !errors.Is(err, ErrConflict) {
		t.Fatalf("phantom commit err = %v, want ErrConflict", err)
	}
}

// TestRollbackLeavesNoOrphans is the satellite-3 matrix: explicit
// ROLLBACK, abort-on-conflict, and abort-on-chaos-fault each leave
// zero orphans after a single GCOrphans pass.
func TestRollbackLeavesNoOrphans(t *testing.T) {
	t.Run("explicit", func(t *testing.T) {
		ev := newEnv(t)
		ev.createTable(t, "x")
		s := ev.mgr.Begin(adminP, "txn-rb")
		if _, err := s.Exec("INSERT INTO ds.x VALUES (1, 1)"); err != nil {
			t.Fatal(err)
		}
		res, err := s.Exec("ROLLBACK")
		if err != nil || res.Batch.N != 1 {
			t.Fatalf("rollback: %v %v", err, res)
		}
		// Idempotent: a second rollback is a no-op.
		if err := s.Rollback(); err != nil {
			t.Fatalf("second rollback: %v", err)
		}
		if _, err := s.Exec("SELECT id FROM ds.x"); !errors.Is(err, ErrClosed) {
			t.Fatalf("statement after rollback err = %v, want ErrClosed", err)
		}
		if rep := ev.gcOnce(t); len(rep.Deleted) != 0 {
			t.Fatalf("explicit rollback left orphans: %v", rep.Deleted)
		}
		if n := ev.store.ObjectCount("customer-bucket", "blmt/ds/x/"); n != 0 {
			t.Fatalf("rollback wrote %d data files", n)
		}
		if got := ev.eng.Obs.Get("txn.aborts.explicit"); got != 1 {
			t.Fatalf("txn.aborts.explicit = %d, want 1", got)
		}
	})
	t.Run("conflict", func(t *testing.T) {
		ev := newEnv(t)
		ev.createTable(t, "x")
		ev.sql(t, "INSERT INTO ds.x VALUES (1, 1)")
		s := ev.mgr.Begin(adminP, "txn-cf")
		if _, err := s.Exec("DELETE FROM ds.x WHERE id = 1"); err != nil {
			t.Fatal(err)
		}
		ev.sql(t, "UPDATE ds.x SET v = 2 WHERE id = 1")
		if _, err := s.Commit(nil); !errors.Is(err, ErrConflict) {
			t.Fatal("want conflict")
		}
		// Pre-validation caught it before anything durable was
		// written: one GC pass finds nothing.
		if rep := ev.gcOnce(t); len(rep.Deleted) != 0 {
			t.Fatalf("conflict abort left orphans: %v", rep.Deleted)
		}
	})
	t.Run("chaos-fault", func(t *testing.T) {
		ev := newEnv(t)
		ev.createTable(t, "x")
		s := ev.mgr.Begin(adminP, "txn-ch")
		if _, err := s.Exec("INSERT INTO ds.x VALUES (1, 1)"); err != nil {
			t.Fatal(err)
		}
		// Every data-path call on the customer bucket faults; the
		// journal bucket stays healthy, so the intent and the abort
		// record both land while the PUTs exhaust their retries.
		ev.store.InjectFaults(objstore.FaultProfile{
			Seed: 7, PerBucket: map[string]float64{"customer-bucket": 1.0},
		})
		_, err := s.Commit(nil)
		if err == nil || errors.Is(err, ErrConflict) {
			t.Fatalf("commit under total fault err = %v", err)
		}
		if got := ev.eng.Obs.Get("txn.aborts.fault"); got != 1 {
			t.Fatalf("txn.aborts.fault = %d, want 1", got)
		}
		ev.store.InjectFaults(objstore.FaultProfile{})
		if rep := ev.gcOnce(t); len(rep.Deleted) != 0 {
			t.Fatalf("fault abort left orphans: %v", rep.Deleted)
		}
		// The journal holds intent + abort for the txn: recovery
		// classifies it as cleanly aborted, not unsealed.
		rec, err := wal.Recover(ev.j, ev.clock, nil)
		if err != nil {
			t.Fatal(err)
		}
		if len(rec.Report.AbortedIntents) != 1 || rec.Report.AbortedIntents[0] != "txn-ch" {
			t.Fatalf("aborted intents = %v, want [txn-ch]", rec.Report.AbortedIntents)
		}
	})
}

// TestCrashMidCommitDebrisCollected arms a crash between the data PUT
// and the seal: the stranded file is referenced by nothing, and a
// single GC pass reclaims it.
func TestCrashMidCommitDebrisCollected(t *testing.T) {
	ev := newEnv(t)
	ev.createTable(t, "x")
	s := ev.mgr.Begin(adminP, "txn-crash")
	if _, err := s.Exec("INSERT INTO ds.x VALUES (1, 1)"); err != nil {
		t.Fatal(err)
	}
	ev.cp.Arm("txn.after_put", 0)
	sig, err := crashpoint.Run(func() error {
		_, e := s.Commit(nil)
		return e
	})
	if sig == nil || sig.Label != "txn.after_put" {
		t.Fatalf("crash did not fire: sig=%v err=%v", sig, err)
	}
	ev.cp.Disarm()
	// The stranded data file exists but no sealed commit references it.
	if n := ev.store.ObjectCount("customer-bucket", "blmt/ds/x/"); n != 1 {
		t.Fatalf("stranded files = %d, want 1", n)
	}
	rep := ev.gcOnce(t)
	if len(rep.Deleted) != 1 {
		t.Fatalf("GC pass 1 deleted %v, want exactly the stranded file", rep.Deleted)
	}
	if rep2 := ev.gcOnce(t); len(rep2.Deleted) != 0 {
		t.Fatalf("GC pass 2 deleted %v, want none", rep2.Deleted)
	}
}

// TestCommitReplayIsNoop: a session begun with an already-sealed
// transaction ID discovers that at COMMIT and returns the original
// version without writing anything (crash-safe client retry).
func TestCommitReplayIsNoop(t *testing.T) {
	ev := newEnv(t)
	ev.createTable(t, "x")
	s1 := ev.mgr.Begin(adminP, "txn-dup")
	if _, err := s1.Exec("INSERT INTO ds.x VALUES (1, 1)"); err != nil {
		t.Fatal(err)
	}
	v1, err := s1.Commit(nil)
	if err != nil {
		t.Fatal(err)
	}
	s2 := ev.mgr.Begin(adminP, "txn-dup")
	if _, err := s2.Exec("INSERT INTO ds.x VALUES (2, 2)"); err != nil {
		t.Fatal(err)
	}
	v2, err := s2.Commit(nil)
	if err != nil || v2 != v1 {
		t.Fatalf("replay commit = (%d, %v), want (%d, nil)", v2, err, v1)
	}
	if got := ev.eng.Obs.Get("txn.commit.replays"); got != 1 {
		t.Fatalf("txn.commit.replays = %d, want 1", got)
	}
	if n := rowCount(t)(ev.eng.Query(engine.NewContext(adminP, "qo"), "SELECT id FROM ds.x")); n != 1 {
		t.Fatalf("replay applied twice: %d rows", n)
	}
}

// TestCommitDeadline is the satellite-1 regression: an injected
// storage slowdown pushes the commit past the session deadline, and
// the commit aborts with ErrDeadlineExceeded instead of spinning.
// TestCommitRetriesCounter: transient PUT faults absorbed by the
// resilience policy during COMMIT surface as txn.commit.retries, and
// the commit still succeeds.
func TestCommitRetriesCounter(t *testing.T) {
	ev := newEnv(t)
	ev.createTable(t, "x")
	s := ev.mgr.Begin(adminP, "txn-rty")
	if _, err := s.Exec("INSERT INTO ds.x VALUES (1, 1)"); err != nil {
		t.Fatal(err)
	}
	ev.store.InjectFaults(objstore.FaultProfile{Seed: 7, PerOp: map[objstore.Op]float64{objstore.OpPut: 0.4}})
	if _, err := s.Commit(nil); err != nil {
		t.Fatalf("commit under transient faults: %v", err)
	}
	ev.store.InjectFaults(objstore.FaultProfile{})
	if got := ev.eng.Obs.Get("txn.commit.retries"); got == 0 {
		t.Fatal("txn.commit.retries = 0 under a 40% transient PUT rate")
	}
}

func TestCommitDeadline(t *testing.T) {
	ev := newEnv(t)
	ev.createTable(t, "x")
	s := ev.mgr.Begin(adminP, "txn-dl")
	s.Deadline = 200 * time.Millisecond
	if _, err := s.Exec("INSERT INTO ds.x VALUES (1, 1)"); err != nil {
		t.Fatal(err)
	}
	ev.store.InjectFaults(objstore.FaultProfile{Seed: 3, SlowdownRate: 1.0, Slowdown: time.Second})
	start := ev.clock.Now()
	_, err := s.Commit(nil)
	if !errors.Is(err, resilience.ErrDeadlineExceeded) {
		t.Fatalf("commit err = %v, want deadline", err)
	}
	// It gave up promptly: a couple of slow calls, not a retry storm.
	if spent := ev.clock.Now() - start; spent > 5*time.Second {
		t.Fatalf("commit spun for %v past its 200ms deadline", spent)
	}
	if got := ev.eng.Obs.Get("txn.aborts.deadline"); got != 1 {
		t.Fatalf("txn.aborts.deadline = %d, want 1", got)
	}
	ev.store.InjectFaults(objstore.FaultProfile{})
	if rep := ev.gcOnce(t); len(rep.Deleted) != 0 {
		t.Fatalf("deadline abort left orphans: %v", rep.Deleted)
	}
}

// TestTxnMetricsAndSpans is the satellite-2 check: session counters,
// the snapshot-pin-age histogram, and BEGIN/COMMIT spans with their
// protocol children.
func TestTxnMetricsAndSpans(t *testing.T) {
	ev := newEnv(t)
	ev.createTable(t, "x")
	ev.mgr.Tracer = &obs.Tracer{}
	s := ev.mgr.Begin(adminP, "txn-obs")
	if got := ev.eng.Obs.Get("txn.begins"); got != 1 {
		t.Fatalf("txn.begins = %d", got)
	}
	if got := ev.eng.Obs.Gauge("txn.sessions.active").Get(); got != 1 {
		t.Fatalf("active = %d, want 1", got)
	}
	if _, err := s.Exec("INSERT INTO ds.x VALUES (1, 1)"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Commit(nil); err != nil {
		t.Fatal(err)
	}
	if got := ev.eng.Obs.Get("txn.commits"); got != 1 {
		t.Fatalf("txn.commits = %d", got)
	}
	if got := ev.eng.Obs.Gauge("txn.sessions.active").Get(); got != 0 {
		t.Fatalf("active = %d, want 0 after commit", got)
	}
	snap := ev.eng.Obs.Snapshot()
	if h := snap.Histograms["txn.snapshot.pin_age_us"]; h.Count != 1 {
		t.Fatalf("pin-age observations = %d, want 1", h.Count)
	}
	tr := s.Trace()
	if tr == nil {
		t.Fatal("no trace")
	}
	if sp := tr.Find("txn.begin"); len(sp) != 1 {
		t.Fatalf("txn.begin spans = %d", len(sp))
	} else if v, ok := sp[0].IntAttr("snapshot_version"); !ok || v != s.Snapshot() {
		t.Fatalf("begin span snapshot_version = %d,%v", v, ok)
	}
	cs := tr.Find("txn.commit")
	if len(cs) != 1 {
		t.Fatalf("txn.commit spans = %d", len(cs))
	}
	for _, child := range []string{"txn.intent", "txn.put", "txn.seal"} {
		if len(tr.Find(child)) != 1 {
			t.Fatalf("missing commit child span %s", child)
		}
	}
}

// TestEngineTxnControlStatements: BEGIN/COMMIT/ROLLBACK parse
// everywhere but only run inside a session.
func TestEngineTxnControlStatements(t *testing.T) {
	ev := newEnv(t)
	ev.createTable(t, "x")
	if _, err := ev.eng.Query(engine.NewContext(adminP, "q"), "BEGIN"); !errors.Is(err, engine.ErrNoTxn) {
		t.Fatalf("bare BEGIN err = %v, want ErrNoTxn", err)
	}
	s := ev.mgr.Begin(adminP, "txn-sql")
	if _, err := s.Exec("BEGIN TRANSACTION"); !errors.Is(err, ErrNested) {
		t.Fatalf("nested BEGIN err = %v", err)
	}
	if _, err := s.Exec("INSERT INTO ds.x VALUES (1, 1)"); err != nil {
		t.Fatal(err)
	}
	res, err := s.Exec("COMMIT")
	if err != nil {
		t.Fatal(err)
	}
	if res.Batch.Schema.Fields[0].Name != "commit_version" || res.Batch.Row(0)[0].I != s.Version() {
		t.Fatalf("COMMIT result = %v", res.Batch.Row(0))
	}
	// COMMIT on a committed session is idempotent (same version).
	if v, err := s.Commit(nil); err != nil || v != s.Version() {
		t.Fatalf("re-commit = (%d, %v)", v, err)
	}
	if _, err := s.Exec("INSERT INTO ds.x VALUES (2, 2)"); !errors.Is(err, ErrClosed) {
		t.Fatalf("statement after commit err = %v", err)
	}
}

// TestConcurrentSessions drives many goroutine-parallel sessions
// (race-detector food): blind inserts all commute, and the log lands
// exactly one version per committed transaction.
func TestConcurrentSessions(t *testing.T) {
	ev := newEnv(t)
	ev.createTable(t, "x")
	const n = 16
	before := ev.log.Version()
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			s := ev.mgr.Begin(adminP, fmt.Sprintf("txn-con-%02d", i))
			if _, err := s.Exec(fmt.Sprintf("INSERT INTO ds.x VALUES (%d, %d)", i, i)); err != nil {
				errs[i] = err
				return
			}
			_, errs[i] = s.Commit(nil)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("session %d: %v", i, err)
		}
	}
	if got := ev.log.Version(); got != before+n {
		t.Fatalf("log version = %d, want %d", got, before+n)
	}
	if n2 := rowCount(t)(ev.eng.Query(engine.NewContext(adminP, "qo"), "SELECT id FROM ds.x")); n2 != n {
		t.Fatalf("rows = %d, want %d", n2, n)
	}
	if got := ev.eng.Obs.Gauge("txn.sessions.active").Get(); got != 0 {
		t.Fatalf("active sessions = %d, want 0", got)
	}
}
