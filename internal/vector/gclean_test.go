package vector

import (
	"fmt"
	"testing"

	"biglake/internal/arena"
	"biglake/internal/sim"
)

// This file checks the GC-lean path — arena allocation plus dictionary
// late materialization — against the legacy heap/eager-decode path at
// the kernel level: same inputs, value-identical outputs, for every
// kernel the engine threads its Mem through. Whole-query parity is
// covered by the oracle matrix (which runs with GCLean on); this is
// the fast, targeted version that points at the broken kernel.

// randomLeanColumn builds a column of the given type with nulls, low
// cardinality (so joins and groups collide), and a random encoding:
// plain, dict, or RLE.
func randomLeanColumn(r *sim.RNG, t Type, n int) *Column {
	bl := NewBuilder(NewSchema(Field{Name: "c", Type: t}))
	for i := 0; i < n; i++ {
		if r.Intn(8) == 0 {
			bl.Append(Value{})
			continue
		}
		switch t {
		case Int64, Timestamp:
			bl.Append(Value{Type: t, I: int64(r.Intn(12))})
		case Float64:
			bl.Append(FloatValue(float64(r.Intn(12)) / 2))
		case Bool:
			bl.Append(BoolValue(r.Intn(2) == 0))
		case String, Bytes:
			bl.Append(Value{Type: t, S: fmt.Sprintf("v%02d", r.Intn(12))})
		}
	}
	c := bl.Build().Cols[0]
	switch r.Intn(3) {
	case 1:
		return DictEncode(c)
	case 2:
		return RLEncode(c)
	}
	return c
}

func randomLeanBatch(r *sim.RNG, n int) *Batch {
	types := []Type{Int64, Float64, String, Bool, Timestamp}
	fields := make([]Field, len(types))
	cols := make([]*Column, len(types))
	for i, t := range types {
		fields[i] = Field{Name: fmt.Sprintf("c%d", i), Type: t}
		cols[i] = randomLeanColumn(r, t, n)
	}
	return MustBatch(NewSchema(fields...), cols)
}

// sameValues compares two columns row by row at the Value level — the
// late-materialized side may still be Dict-encoded, which is exactly
// the point: encoding may differ, values may not.
func sameValues(t *testing.T, what string, a, b *Column) {
	t.Helper()
	if a.Len != b.Len {
		t.Fatalf("%s: len %d vs %d", what, a.Len, b.Len)
	}
	for i := 0; i < a.Len; i++ {
		av, bv := a.Value(i), b.Value(i)
		if !av.Equal(bv) {
			t.Fatalf("%s: row %d: %s vs %s", what, i, av, bv)
		}
	}
}

func sameBatches(t *testing.T, what string, a, b *Batch) {
	t.Helper()
	if a.N != b.N || len(a.Cols) != len(b.Cols) {
		t.Fatalf("%s: shape (%d,%d) vs (%d,%d)", what, a.N, len(a.Cols), b.N, len(b.Cols))
	}
	for i := range a.Cols {
		sameValues(t, fmt.Sprintf("%s col %d", what, i), a.Cols[i], b.Cols[i])
	}
}

func sameI32(t *testing.T, what string, a, b []int32) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("%s: len %d vs %d", what, len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("%s: [%d] = %d vs %d", what, i, a[i], b[i])
		}
	}
}

// TestGCLeanKernelParity drives every Mem-threaded kernel with the
// legacy policy and the lean policy on identical random inputs,
// including multi-morsel sizes and several worker counts, and demands
// value-identical results.
func TestGCLeanKernelParity(t *testing.T) {
	pool := arena.NewPool()
	for seed := uint64(1); seed <= 8; seed++ {
		for _, n := range []int{0, 1, 37, MorselRows + 511} {
			ar := pool.Get()
			lean := Mem{Al: ar, LateMat: true}
			heap := Mem{}
			r1 := sim.NewRNG(seed*1000 + uint64(n))
			r2 := sim.NewRNG(seed*1000 + uint64(n))
			b1 := randomLeanBatch(r1, n)
			b2 := randomLeanBatch(r2, n)
			workers := 1 + int(seed%4)

			// CompareConst + Filter.
			m1 := CompareConstWith(nil, b1.Cols[0], LE, IntValue(6))
			m2 := CompareConstWith(ar, b2.Cols[0], LE, IntValue(6))
			f1, err1 := FilterWith(heap, b1, m1)
			f2, err2 := FilterWith(lean, b2, m2)
			if (err1 == nil) != (err2 == nil) {
				t.Fatalf("filter err mismatch: %v vs %v", err1, err2)
			}
			sameBatches(t, "filter", f1, f2)

			// Gather (ORDER BY shape: arbitrary permutation w/ repeats).
			if n > 0 {
				ri := sim.NewRNG(seed ^ uint64(n))
				idx := make([]int, n/2+1)
				for i := range idx {
					idx[i] = ri.Intn(n)
				}
				for ci := range b1.Cols {
					g1 := GatherWith(heap, b1.Cols[ci], idx)
					g2 := GatherWith(lean, b2.Cols[ci], idx)
					sameValues(t, fmt.Sprintf("gather col %d", ci), g1, g2)
				}
			}

			// HashJoin + GatherNull (join output materialization shape).
			jb1 := randomLeanBatch(r1, n/2+1)
			jb2 := randomLeanBatch(r2, n/2+1)
			jr1, err1 := HashJoinWith(heap, b1, jb1, []int{0, 2}, []int{0, 2}, LeftOuterJoin, workers)
			jr2, err2 := HashJoinWith(lean, b2, jb2, []int{0, 2}, []int{0, 2}, LeftOuterJoin, workers)
			if (err1 == nil) != (err2 == nil) {
				t.Fatalf("join err mismatch: %v vs %v", err1, err2)
			}
			if err1 == nil {
				sameI32(t, "join left", jr1.Left, jr2.Left)
				sameI32(t, "join right", jr1.Right, jr2.Right)
				sameI32(t, "join outer", jr1.LeftOuter, jr2.LeftOuter)
				nullIdx1 := append(append([]int32{}, jr1.Right...), -1, -1)
				nullIdx2 := append(append([]int32{}, jr2.Right...), -1, -1)
				for ci := range jb1.Cols {
					g1 := GatherNullWith(heap, jb1.Cols[ci], nullIdx1)
					g2 := GatherNullWith(lean, jb2.Cols[ci], nullIdx2)
					sameValues(t, fmt.Sprintf("gathernull col %d", ci), g1, g2)
				}
			}

			// GroupKeys + GroupAggregate.
			gr1 := GroupKeysWith(heap, []*Column{b1.Cols[2], b1.Cols[4]}, n, workers)
			gr2 := GroupKeysWith(lean, []*Column{b2.Cols[2], b2.Cols[4]}, n, workers)
			if gr1.NumGroups != gr2.NumGroups {
				t.Fatalf("groups: %d vs %d", gr1.NumGroups, gr2.NumGroups)
			}
			sameI32(t, "group ids", gr1.IDs, gr2.IDs)
			sameI32(t, "group reps", gr1.Rep, gr2.Rep)
			specs1 := []AggSpec{{Kind: AggCount}, {Kind: AggSum, Col: b1.Cols[1]}, {Kind: AggMin, Col: b1.Cols[2]}, {Kind: AggMax, Col: b1.Cols[0]}}
			specs2 := []AggSpec{{Kind: AggCount}, {Kind: AggSum, Col: b2.Cols[1]}, {Kind: AggMin, Col: b2.Cols[2]}, {Kind: AggMax, Col: b2.Cols[0]}}
			a1 := GroupAggregateWith(heap, gr1.IDs, gr1.NumGroups, specs1, workers)
			a2 := GroupAggregateWith(lean, gr2.IDs, gr2.NumGroups, specs2, workers)
			for si := range a1 {
				for g := range a1[si] {
					if !a1[si][g].Equal(a2[si][g]) {
						t.Fatalf("agg spec %d group %d: %s vs %s", si, g, a1[si][g], a2[si][g])
					}
				}
			}

			ar.Release()
		}
	}
}

// TestGCLeanLateMatStaysEncoded pins the point of late materialization:
// a Dict string column gathered under the lean policy stays Dict and
// shares its dictionary arrays with the source (no per-row decode).
func TestGCLeanLateMatStaysEncoded(t *testing.T) {
	src := DictEncode(NewStringColumn([]string{"a", "b", "a", "c", "b", "a"}))
	ar := arena.New()
	lean := Mem{Al: ar, LateMat: true}

	g := GatherWith(lean, src, []int{5, 0, 3, 3, 1})
	if g.Enc != Dict {
		t.Fatalf("GatherWith under LateMat: enc = %v, want Dict", g.Enc)
	}
	if &g.Strs[0] != &src.Strs[0] {
		t.Fatalf("GatherWith under LateMat copied the dictionary")
	}
	if !g.Pooled {
		t.Fatalf("arena-backed gather output not marked Pooled")
	}

	gn := GatherNullWith(lean, src, []int32{2, -1, 4})
	if gn.Enc != Dict {
		t.Fatalf("GatherNullWith under LateMat: enc = %v, want Dict", gn.Enc)
	}
	if !gn.Value(1).IsNull() {
		t.Fatalf("negative index did not become NULL")
	}

	// Eager path for contrast: the same gather decodes to Plain.
	if g := GatherWith(Mem{}, src, []int{0, 1}); g.Enc != Plain {
		t.Fatalf("eager gather should decode, got %v", g.Enc)
	}
}

// TestGCLeanDetachOutlivesArena is the kernel-level lifetime property:
// a detached batch keeps its values after the arena that produced it is
// reset and recycled by later "queries" that scribble over the slabs.
func TestGCLeanDetachOutlivesArena(t *testing.T) {
	pool := arena.NewPool()
	ar := pool.Get()
	lean := Mem{Al: ar, LateMat: true}

	r := sim.NewRNG(7)
	src := randomLeanBatch(r, 500)
	mask := CompareConstWith(ar, src.Cols[0], GE, IntValue(3))
	got, err := FilterWith(lean, src, mask)
	if err != nil {
		t.Fatal(err)
	}
	want := make([][]Value, got.N)
	for i := range want {
		want[i] = got.Row(i)
	}

	detached := DetachBatch(got)
	for _, c := range detached.Cols {
		if c.Pooled {
			t.Fatalf("detached column still marked Pooled")
		}
	}
	ar.Release()

	// Recycle the arena several times and fill it with different data.
	for q := 0; q < 4; q++ {
		ar2 := pool.Get()
		for i := range ar2.Int64s(4096) {
			_ = i
		}
		s := ar2.Strings(4096)
		for i := range s {
			s[i] = "poison"
		}
		ar2.Release()
	}

	for i := range want {
		row := detached.Row(i)
		for j := range row {
			if !row[j].Equal(want[i][j]) {
				t.Fatalf("row %d col %d changed after recycle: %s vs %s", i, j, row[j], want[i][j])
			}
		}
	}
}
