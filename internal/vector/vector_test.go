package vector

import (
	"testing"
	"testing/quick"

	"biglake/internal/sim"
)

func TestTypeRoundTrip(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want Type
	}{
		{"INT64", Int64}, {"int", Int64}, {"FLOAT64", Float64}, {"double", Float64},
		{"bool", Bool}, {"STRING", String}, {"bytes", Bytes}, {"timestamp", Timestamp},
	} {
		got, err := TypeFromString(tc.in)
		if err != nil || got != tc.want {
			t.Fatalf("TypeFromString(%q) = %v, %v", tc.in, got, err)
		}
	}
	if _, err := TypeFromString("GEOGRAPHY"); err == nil {
		t.Fatal("unknown type should error")
	}
}

func TestSchemaOps(t *testing.T) {
	s := NewSchema(Field{"a", Int64}, Field{"b", String}, Field{"c", Float64})
	if s.Index("b") != 1 || s.Index("zzz") != -1 {
		t.Fatal("Index")
	}
	sub, err := s.Select([]string{"c", "a"})
	if err != nil {
		t.Fatal(err)
	}
	if sub.Len() != 2 || sub.Fields[0].Name != "c" || sub.Fields[1].Name != "a" {
		t.Fatalf("Select = %v", sub)
	}
	if _, err := s.Select([]string{"nope"}); err == nil {
		t.Fatal("select missing column should error")
	}
	if !s.Equal(s) || s.Equal(sub) {
		t.Fatal("Equal")
	}
}

func TestValueCompare(t *testing.T) {
	cases := []struct {
		a, b Value
		want int
	}{
		{IntValue(1), IntValue(2), -1},
		{IntValue(2), IntValue(2), 0},
		{IntValue(3), IntValue(2), 1},
		{IntValue(2), FloatValue(2.5), -1},
		{FloatValue(2.5), IntValue(2), 1},
		{StringValue("a"), StringValue("b"), -1},
		{BoolValue(false), BoolValue(true), -1},
		{BoolValue(true), BoolValue(true), 0},
		{TimestampValue(10), TimestampValue(5), 1},
	}
	for _, tc := range cases {
		if got := tc.a.Compare(tc.b); got != tc.want {
			t.Errorf("%v.Compare(%v) = %d, want %d", tc.a, tc.b, got, tc.want)
		}
	}
}

func TestValueEqualNulls(t *testing.T) {
	if !NullValue.Equal(NullValue) {
		t.Fatal("NULL == NULL for Equal (used for dedup, not SQL eval)")
	}
	if NullValue.Equal(IntValue(0)) || IntValue(0).Equal(NullValue) {
		t.Fatal("NULL != 0")
	}
	if !IntValue(2).Equal(FloatValue(2.0)) {
		t.Fatal("cross-numeric equality")
	}
}

func buildMixedColumn() *Column {
	c := NewStringColumn([]string{"us", "de", "us", "fr", "us", "de", "jp", "us"})
	return c
}

func TestDictEncodeDecode(t *testing.T) {
	c := buildMixedColumn()
	d := DictEncode(c)
	if d.Enc != Dict {
		t.Fatal("not dict encoded")
	}
	if len(d.Strs) != 4 {
		t.Fatalf("dictionary size %d, want 4", len(d.Strs))
	}
	back := d.Decode()
	for i := 0; i < c.Len; i++ {
		if !back.Value(i).Equal(c.Value(i)) {
			t.Fatalf("row %d: %v != %v", i, back.Value(i), c.Value(i))
		}
	}
}

func TestDictEncodeWithNulls(t *testing.T) {
	c := NewInt64Column([]int64{1, 0, 2, 1})
	c.Nulls = []bool{false, true, false, false}
	d := DictEncode(c)
	if d.Codes[1] != NullIdx {
		t.Fatal("null row should map to NullIdx")
	}
	if !d.Value(1).IsNull() {
		t.Fatal("Value at null row")
	}
	back := d.Decode()
	if !back.Value(1).IsNull() || back.Value(0).AsInt() != 1 {
		t.Fatal("decode round trip with nulls")
	}
}

func TestRLEncodeDecode(t *testing.T) {
	c := NewInt64Column([]int64{5, 5, 5, 7, 7, 9, 5, 5})
	r := RLEncode(c)
	if r.Enc != RLE {
		t.Fatal("not RLE")
	}
	if len(r.Runs) != 4 {
		t.Fatalf("runs = %d, want 4", len(r.Runs))
	}
	back := r.Decode()
	for i := 0; i < c.Len; i++ {
		if back.Value(i).AsInt() != c.Value(i).AsInt() {
			t.Fatalf("row %d mismatch", i)
		}
	}
}

func TestRLEncodeNullRuns(t *testing.T) {
	c := NewStringColumn([]string{"a", "", "", "b"})
	c.Nulls = []bool{false, true, true, false}
	r := RLEncode(c)
	if !r.Value(1).IsNull() || !r.Value(2).IsNull() {
		t.Fatal("null run lost")
	}
	if r.Value(3).S != "b" {
		t.Fatal("value after null run")
	}
}

func TestCompareConstPlain(t *testing.T) {
	c := NewInt64Column([]int64{1, 5, 3, 5, 9})
	mask := CompareConst(c, GE, IntValue(5))
	want := []bool{false, true, false, true, true}
	for i := range want {
		if mask[i] != want[i] {
			t.Fatalf("mask = %v", mask)
		}
	}
}

func TestCompareConstNullsAreFalse(t *testing.T) {
	c := NewInt64Column([]int64{1, 99, 3})
	c.Nulls = []bool{false, true, false}
	mask := CompareConst(c, GT, IntValue(0))
	if mask[1] {
		t.Fatal("NULL row must compare false")
	}
	if !mask[0] || !mask[2] {
		t.Fatal("non-null rows")
	}
}

func TestCompareConstDictMatchesPlain(t *testing.T) {
	plain := buildMixedColumn()
	dict := DictEncode(plain)
	for _, op := range []CmpOp{EQ, NE, LT, LE, GT, GE} {
		pm := CompareConst(plain, op, StringValue("fr"))
		dm := CompareConst(dict, op, StringValue("fr"))
		for i := range pm {
			if pm[i] != dm[i] {
				t.Fatalf("op %v row %d: plain %v dict %v", op, i, pm[i], dm[i])
			}
		}
	}
}

func TestCompareConstRLEMatchesPlain(t *testing.T) {
	plain := NewInt64Column([]int64{2, 2, 2, 8, 8, 1, 1, 1, 1})
	rle := RLEncode(plain)
	for _, op := range []CmpOp{EQ, NE, LT, LE, GT, GE} {
		pm := CompareConst(plain, op, IntValue(2))
		rm := CompareConst(rle, op, IntValue(2))
		for i := range pm {
			if pm[i] != rm[i] {
				t.Fatalf("op %v row %d", op, i)
			}
		}
	}
}

func TestCompareConstMixedNumeric(t *testing.T) {
	c := NewInt64Column([]int64{1, 2, 3})
	mask := CompareConst(c, GT, FloatValue(1.5))
	if mask[0] || !mask[1] || !mask[2] {
		t.Fatalf("mask = %v", mask)
	}
	f := NewFloat64Column([]float64{0.5, 2.5})
	mask = CompareConst(f, LT, IntValue(1))
	if !mask[0] || mask[1] {
		t.Fatalf("float col vs int const: %v", mask)
	}
}

func TestCompareCols(t *testing.T) {
	a := NewInt64Column([]int64{1, 5, 3})
	b := NewInt64Column([]int64{1, 4, 9})
	mask, err := CompareCols(a, b, EQ)
	if err != nil {
		t.Fatal(err)
	}
	if !mask[0] || mask[1] || mask[2] {
		t.Fatalf("mask = %v", mask)
	}
	short := NewInt64Column([]int64{1})
	if _, err := CompareCols(a, short, EQ); err == nil {
		t.Fatal("length mismatch should error")
	}
}

func TestBooleanKernels(t *testing.T) {
	a := []bool{true, true, false, false}
	b := []bool{true, false, true, false}
	and, or, not := And(a, b), Or(a, b), Not(a)
	if !and[0] || and[1] || and[2] || and[3] {
		t.Fatal("And")
	}
	if !or[0] || !or[1] || !or[2] || or[3] {
		t.Fatal("Or")
	}
	if not[0] || !not[2] {
		t.Fatal("Not")
	}
	if CountMask(a) != 2 {
		t.Fatal("CountMask")
	}
}

func TestFilterAndGather(t *testing.T) {
	schema := NewSchema(Field{"id", Int64}, Field{"name", String})
	b := MustBatch(schema, []*Column{
		NewInt64Column([]int64{1, 2, 3, 4}),
		NewStringColumn([]string{"a", "b", "c", "d"}),
	})
	out, err := Filter(b, []bool{true, false, true, false})
	if err != nil {
		t.Fatal(err)
	}
	if out.N != 2 || out.Cols[0].Ints[1] != 3 || out.Cols[1].Strs[0] != "a" {
		t.Fatalf("filtered = %+v", out)
	}
	if _, err := Filter(b, []bool{true}); err == nil {
		t.Fatal("bad mask length should error")
	}
}

func TestFilterPreservesNulls(t *testing.T) {
	schema := NewSchema(Field{"v", Int64})
	c := NewInt64Column([]int64{1, 2, 3})
	c.Nulls = []bool{false, true, false}
	b := MustBatch(schema, []*Column{c})
	out, _ := Filter(b, []bool{true, true, false})
	if !out.Cols[0].Value(1).IsNull() {
		t.Fatal("null lost through filter")
	}
}

func TestGatherFromRLE(t *testing.T) {
	c := RLEncode(NewStringColumn([]string{"x", "x", "y", "y", "z"}))
	out := Gather(c, []int{4, 0, 2})
	if out.Strs[0] != "z" || out.Strs[1] != "x" || out.Strs[2] != "y" {
		t.Fatalf("gather = %v", out.Strs)
	}
}

func TestIsNullMaskAcrossEncodings(t *testing.T) {
	plain := NewInt64Column([]int64{1, 0, 3})
	plain.Nulls = []bool{false, true, false}
	dict := DictEncode(plain)
	rle := RLEncode(plain)
	for _, c := range []*Column{plain, dict, rle} {
		m := IsNullMask(c)
		if m[0] || !m[1] || m[2] {
			t.Fatalf("enc %v mask = %v", c.Enc, m)
		}
	}
}

func TestMaskNullify(t *testing.T) {
	c := NewStringColumn([]string{"secret", "data"})
	m := ApplyMask(c, MaskNullify)
	if !m.Value(0).IsNull() || !m.Value(1).IsNull() {
		t.Fatal("nullify mask")
	}
}

func TestMaskDefault(t *testing.T) {
	c := NewInt64Column([]int64{42, 7})
	m := ApplyMask(c, MaskDefault)
	if m.Value(0).AsInt() != 0 || m.Value(1).AsInt() != 0 {
		t.Fatal("default mask")
	}
}

func TestMaskHashDeterministicAndIrreversible(t *testing.T) {
	c := NewStringColumn([]string{"alice@x.com", "bob@x.com", "alice@x.com"})
	m := ApplyMask(c, MaskHash)
	if m.Value(0).S != m.Value(2).S {
		t.Fatal("same input must hash identically")
	}
	if m.Value(0).S == m.Value(1).S {
		t.Fatal("different inputs collided")
	}
	if m.Value(0).S == "alice@x.com" {
		t.Fatal("hash must not leak the value")
	}
}

func TestMaskHashOnDictOperatesOnDictionary(t *testing.T) {
	c := DictEncode(buildMixedColumn())
	m := ApplyMask(c, MaskHash)
	if m.Enc != Dict {
		t.Fatal("dict encoding should be preserved through masking")
	}
	plainMasked := ApplyMask(buildMixedColumn(), MaskHash)
	for i := 0; i < c.Len; i++ {
		if m.Value(i).S != plainMasked.Value(i).S {
			t.Fatalf("row %d: dict-masked %q != plain-masked %q", i, m.Value(i).S, plainMasked.Value(i).S)
		}
	}
}

func TestMaskLastFour(t *testing.T) {
	c := NewStringColumn([]string{"4111111111111234", "abc"})
	m := ApplyMask(c, MaskLastFour)
	if m.Value(0).S != "XXXXXXXXXXXX1234" {
		t.Fatalf("masked = %q", m.Value(0).S)
	}
	if m.Value(1).S != "abc" {
		t.Fatalf("short string = %q", m.Value(1).S)
	}
}

func TestMaskPreservesNulls(t *testing.T) {
	c := NewStringColumn([]string{"a", ""})
	c.Nulls = []bool{false, true}
	m := ApplyMask(c, MaskHash)
	if !m.Value(1).IsNull() {
		t.Fatal("hash mask should keep NULL as NULL")
	}
}

func TestAggregates(t *testing.T) {
	c := NewInt64Column([]int64{5, 1, 9, 3})
	if got := Aggregate(c, AggCount, nil); got.AsInt() != 4 {
		t.Fatalf("count = %v", got)
	}
	if got := Aggregate(c, AggSum, nil); got.AsInt() != 18 {
		t.Fatalf("sum = %v", got)
	}
	if got := Aggregate(c, AggMin, nil); got.AsInt() != 1 {
		t.Fatalf("min = %v", got)
	}
	if got := Aggregate(c, AggMax, nil); got.AsInt() != 9 {
		t.Fatalf("max = %v", got)
	}
}

func TestAggregatesWithMaskAndNulls(t *testing.T) {
	c := NewInt64Column([]int64{5, 1, 9, 3})
	c.Nulls = []bool{false, false, true, false}
	mask := []bool{true, false, true, true}
	if got := Aggregate(c, AggCount, mask); got.AsInt() != 2 { // rows 0 and 3; row 2 null
		t.Fatalf("count = %v", got)
	}
	if got := Aggregate(c, AggSum, mask); got.AsInt() != 8 {
		t.Fatalf("sum = %v", got)
	}
}

func TestAggregateEmptyInput(t *testing.T) {
	c := NewFloat64Column(nil)
	if got := Aggregate(c, AggCount, nil); got.AsInt() != 0 {
		t.Fatal("count of empty")
	}
	if got := Aggregate(c, AggMin, nil); !got.IsNull() {
		t.Fatal("min of empty should be NULL")
	}
	if got := Aggregate(c, AggSum, nil); !got.IsNull() {
		t.Fatal("sum of empty should be NULL")
	}
}

func TestAggregateFloatSum(t *testing.T) {
	c := NewFloat64Column([]float64{1.5, 2.25})
	if got := Aggregate(c, AggSum, nil); got.AsFloat() != 3.75 {
		t.Fatalf("sum = %v", got)
	}
}

func TestMinMax(t *testing.T) {
	c := NewStringColumn([]string{"pear", "apple", "zebra"})
	c.Nulls = []bool{false, false, false}
	min, max, nulls := MinMax(c)
	if min.S != "apple" || max.S != "zebra" || nulls != 0 {
		t.Fatalf("MinMax = %v %v %d", min, max, nulls)
	}
	c.Nulls = []bool{true, false, true}
	min, max, nulls = MinMax(c)
	if min.S != "apple" || max.S != "apple" || nulls != 2 {
		t.Fatalf("MinMax with nulls = %v %v %d", min, max, nulls)
	}
}

func TestBuilderRoundTrip(t *testing.T) {
	schema := NewSchema(Field{"id", Int64}, Field{"name", String}, Field{"score", Float64})
	bl := NewBuilder(schema)
	bl.Append(IntValue(1), StringValue("a"), FloatValue(1.5))
	bl.Append(IntValue(2), NullValue, FloatValue(2.5))
	b := bl.Build()
	if b.N != 2 {
		t.Fatal("rows")
	}
	row := b.Row(1)
	if row[0].AsInt() != 2 || !row[1].IsNull() || row[2].AsFloat() != 2.5 {
		t.Fatalf("row = %v", row)
	}
}

func TestBuilderArityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("wrong arity should panic")
		}
	}()
	NewBuilder(NewSchema(Field{"a", Int64})).Append(IntValue(1), IntValue(2))
}

func TestBatchProject(t *testing.T) {
	schema := NewSchema(Field{"a", Int64}, Field{"b", String})
	b := MustBatch(schema, []*Column{NewInt64Column([]int64{1}), NewStringColumn([]string{"x"})})
	p, err := b.Project([]string{"b"})
	if err != nil {
		t.Fatal(err)
	}
	if p.Schema.Len() != 1 || p.Cols[0].Strs[0] != "x" {
		t.Fatal("project")
	}
}

func TestNewBatchValidation(t *testing.T) {
	schema := NewSchema(Field{"a", Int64})
	if _, err := NewBatch(schema, []*Column{NewStringColumn([]string{"x"})}); err == nil {
		t.Fatal("type mismatch should error")
	}
	if _, err := NewBatch(schema, nil); err == nil {
		t.Fatal("column count mismatch should error")
	}
	s2 := NewSchema(Field{"a", Int64}, Field{"b", Int64})
	if _, err := NewBatch(s2, []*Column{NewInt64Column([]int64{1}), NewInt64Column([]int64{1, 2})}); err == nil {
		t.Fatal("length mismatch should error")
	}
}

func TestAppendBatch(t *testing.T) {
	schema := NewSchema(Field{"a", Int64})
	b1 := MustBatch(schema, []*Column{NewInt64Column([]int64{1, 2})})
	b2 := MustBatch(schema, []*Column{NewInt64Column([]int64{3})})
	out, err := AppendBatch(b1, b2)
	if err != nil {
		t.Fatal(err)
	}
	if out.N != 3 || out.Cols[0].Ints[2] != 3 {
		t.Fatalf("append = %+v", out.Cols[0])
	}
	out, err = AppendBatch(nil, b2)
	if err != nil || out.N != 1 {
		t.Fatal("append to nil")
	}
	other := MustBatch(NewSchema(Field{"x", String}), []*Column{NewStringColumn([]string{"q"})})
	if _, err := AppendBatch(b1, other); err == nil {
		t.Fatal("schema mismatch should error")
	}
}

func TestWireRoundTripPlain(t *testing.T) {
	schema := NewSchema(Field{"id", Int64}, Field{"nm", String}, Field{"sc", Float64}, Field{"ok", Bool}, Field{"ts", Timestamp})
	bl := NewBuilder(schema)
	bl.Append(IntValue(-7), StringValue("héllo"), FloatValue(3.14), BoolValue(true), TimestampValue(999))
	bl.Append(IntValue(1<<40), NullValue, FloatValue(-0.5), BoolValue(false), TimestampValue(0))
	b := bl.Build()
	for _, keep := range []bool{false, true} {
		data := EncodeBatch(b, keep)
		back, err := DecodeBatch(data)
		if err != nil {
			t.Fatal(err)
		}
		if !back.Schema.Equal(b.Schema) || back.N != b.N {
			t.Fatal("schema/rows")
		}
		for i := 0; i < b.N; i++ {
			want, got := b.Row(i), back.Row(i)
			for j := range want {
				if !want[j].Equal(got[j]) {
					t.Fatalf("keep=%v row %d col %d: %v != %v", keep, i, j, got[j], want[j])
				}
			}
		}
	}
}

func TestWireKeepEncodingsPreservesDict(t *testing.T) {
	schema := NewSchema(Field{"c", String})
	dict := DictEncode(buildMixedColumn())
	b := MustBatch(schema, []*Column{dict})
	data := EncodeBatch(b, true)
	back, err := DecodeBatch(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.Cols[0].Enc != Dict {
		t.Fatal("dict encoding lost on wire")
	}
	plain := EncodeBatch(b, false)
	decoded, _ := DecodeBatch(plain)
	if decoded.Cols[0].Enc != Plain {
		t.Fatal("keep=false should decode")
	}
}

func TestWireEncodedSmallerForRepetitiveData(t *testing.T) {
	// The A4 ablation premise: dict/RLE retention shrinks the payload
	// for low-cardinality columns.
	n := 10000
	vals := make([]string, n)
	for i := range vals {
		vals[i] = []string{"alpha", "beta", "gamma"}[i%3]
	}
	schema := NewSchema(Field{"c", String})
	b := MustBatch(schema, []*Column{DictEncode(NewStringColumn(vals))})
	kept := len(EncodeBatch(b, true))
	plain := len(EncodeBatch(b, false))
	if kept*2 >= plain {
		t.Fatalf("dict wire %d should be <half of plain wire %d", kept, plain)
	}
}

func TestWireRejectsCorrupt(t *testing.T) {
	if _, err := DecodeBatch([]byte{1, 2, 3}); err == nil {
		t.Fatal("garbage should fail")
	}
	schema := NewSchema(Field{"a", Int64})
	b := MustBatch(schema, []*Column{NewInt64Column([]int64{1})})
	data := EncodeBatch(b, false)
	data[0] ^= 0xFF // corrupt magic
	if _, err := DecodeBatch(data); err == nil {
		t.Fatal("bad magic should fail")
	}
}

func TestPropertyWireRoundTrip(t *testing.T) {
	schema := NewSchema(Field{"i", Int64}, Field{"s", String})
	if err := quick.Check(func(ints []int64, strs []string) bool {
		n := len(ints)
		if len(strs) < n {
			n = len(strs)
		}
		bl := NewBuilder(schema)
		for i := 0; i < n; i++ {
			bl.Append(IntValue(ints[i]), StringValue(strs[i]))
		}
		b := bl.Build()
		back, err := DecodeBatch(EncodeBatch(b, false))
		if err != nil || back.N != n {
			return false
		}
		for i := 0; i < n; i++ {
			if back.Cols[0].Ints[i] != ints[i] || back.Cols[1].Strs[i] != strs[i] {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyEncodingsAgree(t *testing.T) {
	// For any generated int column, Plain/Dict/RLE must agree on every
	// comparison kernel — the invariant behind operating directly on
	// encoded data.
	r := sim.NewRNG(99)
	for trial := 0; trial < 25; trial++ {
		n := 1 + r.Intn(200)
		vals := make([]int64, n)
		for i := range vals {
			vals[i] = int64(r.Intn(5)) // low cardinality to exercise runs
		}
		plain := NewInt64Column(vals)
		dict := DictEncode(plain)
		rle := RLEncode(plain)
		target := IntValue(int64(r.Intn(5)))
		for _, op := range []CmpOp{EQ, NE, LT, LE, GT, GE} {
			pm := CompareConst(plain, op, target)
			dm := CompareConst(dict, op, target)
			rm := CompareConst(rle, op, target)
			for i := range pm {
				if pm[i] != dm[i] || pm[i] != rm[i] {
					t.Fatalf("trial %d op %v row %d disagree", trial, op, i)
				}
			}
		}
	}
}

func TestDistinctCount(t *testing.T) {
	plain := buildMixedColumn()
	if plain.DistinctCount() != 4 {
		t.Fatal("plain distinct")
	}
	if DictEncode(plain).DistinctCount() != 4 {
		t.Fatal("dict distinct")
	}
	if RLEncode(plain).DistinctCount() != 4 {
		t.Fatal("rle distinct")
	}
}

func TestEmptyBatch(t *testing.T) {
	schema := NewSchema(Field{"a", Int64})
	b := EmptyBatch(schema)
	if b.N != 0 || len(b.Cols) != 1 {
		t.Fatal("empty batch shape")
	}
	data := EncodeBatch(b, false)
	back, err := DecodeBatch(data)
	if err != nil || back.N != 0 {
		t.Fatalf("empty round trip: %v", err)
	}
}
