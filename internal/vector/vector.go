// Package vector implements the columnar in-memory batch format and
// vectorized evaluation kernels used throughout the repository — the
// stand-in for BigQuery's Superluminal library and the Apache Arrow
// batches the Storage Read API emits (§2.2.1, §3.4).
//
// Columns carry one of three physical encodings: PLAIN, DICT
// (dictionary codes over a value dictionary) and RLE (run-length
// runs over a per-run value array). Kernels evaluate predicates,
// projections, masking and partial aggregates directly on the encoded
// representation where possible — evaluating a dictionary predicate
// once per dictionary entry rather than once per row is the heart of
// the §3.4 vectorized-reader result.
package vector

import (
	"fmt"
	"strings"
)

// Type is a column's logical type.
type Type uint8

// Logical column types.
const (
	Invalid Type = iota
	Int64
	Float64
	Bool
	String
	Bytes
	Timestamp // int64 nanoseconds since simulated epoch
)

// String returns the SQL-ish name of the type.
func (t Type) String() string {
	switch t {
	case Int64:
		return "INT64"
	case Float64:
		return "FLOAT64"
	case Bool:
		return "BOOL"
	case String:
		return "STRING"
	case Bytes:
		return "BYTES"
	case Timestamp:
		return "TIMESTAMP"
	default:
		return "INVALID"
	}
}

// TypeFromString parses a type name (case-insensitive).
func TypeFromString(s string) (Type, error) {
	switch strings.ToUpper(s) {
	case "INT64", "INT", "INTEGER", "BIGINT":
		return Int64, nil
	case "FLOAT64", "FLOAT", "DOUBLE":
		return Float64, nil
	case "BOOL", "BOOLEAN":
		return Bool, nil
	case "STRING", "VARCHAR", "TEXT":
		return String, nil
	case "BYTES":
		return Bytes, nil
	case "TIMESTAMP":
		return Timestamp, nil
	}
	return Invalid, fmt.Errorf("vector: unknown type %q", s)
}

// Field is one named, typed column in a schema.
type Field struct {
	Name string
	Type Type
}

// Schema is an ordered list of fields.
type Schema struct {
	Fields []Field
}

// NewSchema builds a schema from fields.
func NewSchema(fields ...Field) Schema { return Schema{Fields: fields} }

// Index returns the position of the named field, or -1.
func (s Schema) Index(name string) int {
	for i, f := range s.Fields {
		if f.Name == name {
			return i
		}
	}
	return -1
}

// Len returns the number of fields.
func (s Schema) Len() int { return len(s.Fields) }

// Select returns a schema with only the named fields, in the given
// order.
func (s Schema) Select(names []string) (Schema, error) {
	out := Schema{Fields: make([]Field, 0, len(names))}
	for _, n := range names {
		i := s.Index(n)
		if i < 0 {
			return Schema{}, fmt.Errorf("vector: no column %q in schema", n)
		}
		out.Fields = append(out.Fields, s.Fields[i])
	}
	return out, nil
}

// Equal reports field-for-field schema equality.
func (s Schema) Equal(o Schema) bool {
	if len(s.Fields) != len(o.Fields) {
		return false
	}
	for i := range s.Fields {
		if s.Fields[i] != o.Fields[i] {
			return false
		}
	}
	return true
}

func (s Schema) String() string {
	parts := make([]string, len(s.Fields))
	for i, f := range s.Fields {
		parts[i] = f.Name + " " + f.Type.String()
	}
	return "(" + strings.Join(parts, ", ") + ")"
}

// Value is a single dynamically-typed SQL value. Null is represented
// by the zero Value (Type == Invalid).
type Value struct {
	Type Type
	I    int64   // Int64, Timestamp
	F    float64 // Float64
	S    string  // String, Bytes
	B    bool    // Bool
}

// Convenience constructors.
func IntValue(v int64) Value       { return Value{Type: Int64, I: v} }
func FloatValue(v float64) Value   { return Value{Type: Float64, F: v} }
func BoolValue(v bool) Value       { return Value{Type: Bool, B: v} }
func StringValue(v string) Value   { return Value{Type: String, S: v} }
func BytesValue(v []byte) Value    { return Value{Type: Bytes, S: string(v)} }
func TimestampValue(v int64) Value { return Value{Type: Timestamp, I: v} }

// NullValue is the SQL NULL.
var NullValue = Value{}

// IsNull reports whether the value is SQL NULL.
func (v Value) IsNull() bool { return v.Type == Invalid }

// Compare orders two non-null values of the same type family:
// -1, 0, +1. Numeric types compare across Int64/Float64/Timestamp.
func (v Value) Compare(o Value) int {
	if v.numeric() && o.numeric() {
		a, b := v.asFloat(), o.asFloat()
		switch {
		case a < b:
			return -1
		case a > b:
			return 1
		}
		return 0
	}
	switch v.Type {
	case String, Bytes:
		return strings.Compare(v.S, o.S)
	case Bool:
		switch {
		case !v.B && o.B:
			return -1
		case v.B && !o.B:
			return 1
		}
		return 0
	}
	return 0
}

func (v Value) numeric() bool {
	return v.Type == Int64 || v.Type == Float64 || v.Type == Timestamp
}

func (v Value) asFloat() float64 {
	if v.Type == Float64 {
		return v.F
	}
	return float64(v.I)
}

// AsFloat returns the numeric value as float64 (0 for non-numerics).
func (v Value) AsFloat() float64 {
	if !v.numeric() {
		return 0
	}
	return v.asFloat()
}

// AsInt returns the numeric value as int64.
func (v Value) AsInt() int64 {
	if v.Type == Float64 {
		return int64(v.F)
	}
	return v.I
}

// String renders the value for display.
func (v Value) String() string {
	switch v.Type {
	case Invalid:
		return "NULL"
	case Int64, Timestamp:
		return fmt.Sprintf("%d", v.I)
	case Float64:
		return fmt.Sprintf("%g", v.F)
	case Bool:
		return fmt.Sprintf("%t", v.B)
	case String:
		return v.S
	case Bytes:
		return fmt.Sprintf("%x", v.S)
	}
	return "?"
}

// Equal reports deep equality including null-ness.
func (v Value) Equal(o Value) bool {
	if v.IsNull() || o.IsNull() {
		return v.IsNull() && o.IsNull()
	}
	if v.numeric() && o.numeric() {
		return v.asFloat() == o.asFloat()
	}
	if v.Type != o.Type {
		return false
	}
	return v.Compare(o) == 0
}

// Encoding is a column's physical representation.
type Encoding uint8

// Physical encodings.
const (
	Plain Encoding = iota
	Dict           // Codes index into the value arrays (the dictionary)
	RLE            // Runs of (count, value-index) pairs
)

func (e Encoding) String() string {
	switch e {
	case Plain:
		return "PLAIN"
	case Dict:
		return "DICT"
	case RLE:
		return "RLE"
	}
	return "?"
}

// Run is one run-length run: Count repetitions of the value at
// ValIdx in the column's value arrays. ValIdx == NullIdx means a run
// of NULLs.
type Run struct {
	Count  uint32
	ValIdx uint32
}

// NullIdx is the sentinel value-index that marks NULL in Dict codes
// and RLE runs.
const NullIdx = ^uint32(0)

// Column is one column of data in some physical encoding.
//
//   - Plain: value arrays have Len entries; Nulls (if non-nil) flags
//     NULL rows.
//   - Dict: Codes has Len entries indexing the value arrays (the
//     dictionary); code NullIdx is NULL.
//   - RLE: Runs' counts sum to Len; each run's ValIdx indexes the
//     value arrays; ValIdx NullIdx is NULL.
type Column struct {
	Type  Type
	Len   int
	Enc   Encoding
	Nulls []bool // Plain only; nil means no nulls

	Ints   []int64   // Int64, Timestamp
	Floats []float64 // Float64
	Bools  []bool    // Bool
	Strs   []string  // String, Bytes

	Codes []uint32 // Dict
	Runs  []Run    // RLE

	// Pooled marks backing arrays carved from a recycled query arena:
	// the column is only valid until the query releases its arena, so
	// any consumer retaining it past that point must DetachColumn
	// first. Heap-owned columns leave this false.
	Pooled bool
}

// NewInt64Column builds a plain Int64 column.
func NewInt64Column(vals []int64) *Column {
	return &Column{Type: Int64, Len: len(vals), Enc: Plain, Ints: vals}
}

// NewFloat64Column builds a plain Float64 column.
func NewFloat64Column(vals []float64) *Column {
	return &Column{Type: Float64, Len: len(vals), Enc: Plain, Floats: vals}
}

// NewStringColumn builds a plain String column.
func NewStringColumn(vals []string) *Column {
	return &Column{Type: String, Len: len(vals), Enc: Plain, Strs: vals}
}

// NewBoolColumn builds a plain Bool column.
func NewBoolColumn(vals []bool) *Column {
	return &Column{Type: Bool, Len: len(vals), Enc: Plain, Bools: vals}
}

// NewTimestampColumn builds a plain Timestamp column.
func NewTimestampColumn(vals []int64) *Column {
	return &Column{Type: Timestamp, Len: len(vals), Enc: Plain, Ints: vals}
}

// dictLen returns the number of dictionary/run values stored.
func (c *Column) dictLen() int {
	switch c.Type {
	case Int64, Timestamp:
		return len(c.Ints)
	case Float64:
		return len(c.Floats)
	case Bool:
		return len(c.Bools)
	case String, Bytes:
		return len(c.Strs)
	}
	return 0
}

// valueAtIdx returns the dictionary value at idx.
func (c *Column) valueAtIdx(idx uint32) Value {
	if idx == NullIdx {
		return NullValue
	}
	switch c.Type {
	case Int64:
		return IntValue(c.Ints[idx])
	case Timestamp:
		return TimestampValue(c.Ints[idx])
	case Float64:
		return FloatValue(c.Floats[idx])
	case Bool:
		return BoolValue(c.Bools[idx])
	case String:
		return StringValue(c.Strs[idx])
	case Bytes:
		return Value{Type: Bytes, S: c.Strs[idx]}
	}
	return NullValue
}

// Value returns the logical value at row i, resolving the encoding.
func (c *Column) Value(i int) Value {
	switch c.Enc {
	case Plain:
		if c.Nulls != nil && c.Nulls[i] {
			return NullValue
		}
		return c.valueAtIdx(uint32(i))
	case Dict:
		return c.valueAtIdx(c.Codes[i])
	case RLE:
		pos := 0
		for _, r := range c.Runs {
			if i < pos+int(r.Count) {
				return c.valueAtIdx(r.ValIdx)
			}
			pos += int(r.Count)
		}
		return NullValue
	}
	return NullValue
}

// IsNullAt reports whether row i is NULL.
func (c *Column) IsNullAt(i int) bool { return c.Value(i).IsNull() }

// Decode returns a PLAIN copy of the column, expanding Dict/RLE.
func (c *Column) Decode() *Column {
	if c.Enc == Plain {
		return c
	}
	out := &Column{Type: c.Type, Len: c.Len, Enc: Plain}
	var nulls []bool
	appendVal := func(i int, v Value) {
		if v.IsNull() {
			if nulls == nil {
				nulls = make([]bool, c.Len)
			}
			nulls[i] = true
			v = zeroOf(c.Type)
		}
		switch c.Type {
		case Int64, Timestamp:
			out.Ints = append(out.Ints, v.I)
		case Float64:
			out.Floats = append(out.Floats, v.F)
		case Bool:
			out.Bools = append(out.Bools, v.B)
		case String, Bytes:
			out.Strs = append(out.Strs, v.S)
		}
	}
	switch c.Enc {
	case Dict:
		for i, code := range c.Codes {
			appendVal(i, c.valueAtIdx(code))
		}
	case RLE:
		i := 0
		for _, r := range c.Runs {
			v := c.valueAtIdx(r.ValIdx)
			for k := uint32(0); k < r.Count; k++ {
				appendVal(i, v)
				i++
			}
		}
	}
	out.Nulls = nulls
	return out
}

func zeroOf(t Type) Value {
	switch t {
	case Int64:
		return IntValue(0)
	case Timestamp:
		return TimestampValue(0)
	case Float64:
		return FloatValue(0)
	case Bool:
		return BoolValue(false)
	case String:
		return StringValue("")
	case Bytes:
		return Value{Type: Bytes}
	}
	return NullValue
}

// Batch is a set of equal-length columns with a schema.
type Batch struct {
	Schema Schema
	Cols   []*Column
	N      int
}

// NewBatch assembles a batch, validating column lengths.
func NewBatch(schema Schema, cols []*Column) (*Batch, error) {
	if len(cols) != schema.Len() {
		return nil, fmt.Errorf("vector: %d columns for %d fields", len(cols), schema.Len())
	}
	n := 0
	if len(cols) > 0 {
		n = cols[0].Len
	}
	for i, c := range cols {
		if c.Len != n {
			return nil, fmt.Errorf("vector: column %d length %d != %d", i, c.Len, n)
		}
		if c.Type != schema.Fields[i].Type {
			return nil, fmt.Errorf("vector: column %d type %v != field type %v", i, c.Type, schema.Fields[i].Type)
		}
	}
	return &Batch{Schema: schema, Cols: cols, N: n}, nil
}

// MustBatch is NewBatch panicking on error, for tests and literals.
func MustBatch(schema Schema, cols []*Column) *Batch {
	b, err := NewBatch(schema, cols)
	if err != nil {
		panic(err)
	}
	return b
}

// EmptyBatch returns a zero-row batch for a schema.
func EmptyBatch(schema Schema) *Batch {
	cols := make([]*Column, schema.Len())
	for i, f := range schema.Fields {
		cols[i] = &Column{Type: f.Type, Enc: Plain}
	}
	return &Batch{Schema: schema, Cols: cols}
}

// Column returns the column for a field name, or nil.
func (b *Batch) Column(name string) *Column {
	i := b.Schema.Index(name)
	if i < 0 {
		return nil
	}
	return b.Cols[i]
}

// Row materializes row i as a value slice (slow path, for tests, row
// readers and result rendering).
func (b *Batch) Row(i int) []Value {
	out := make([]Value, len(b.Cols))
	for j, c := range b.Cols {
		out[j] = c.Value(i)
	}
	return out
}

// Project returns a batch with only the named columns.
func (b *Batch) Project(names []string) (*Batch, error) {
	schema, err := b.Schema.Select(names)
	if err != nil {
		return nil, err
	}
	cols := make([]*Column, len(names))
	for i, n := range names {
		cols[i] = b.Cols[b.Schema.Index(n)]
	}
	return &Batch{Schema: schema, Cols: cols, N: b.N}, nil
}

// AppendBatch concatenates src onto dst (both plain-decoded), returning
// the combined batch. Schemas must match.
func AppendBatch(dst, src *Batch) (*Batch, error) {
	if dst == nil {
		return src, nil
	}
	if !dst.Schema.Equal(src.Schema) {
		return nil, fmt.Errorf("vector: append schema mismatch %v vs %v", dst.Schema, src.Schema)
	}
	cols := make([]*Column, len(dst.Cols))
	for i := range dst.Cols {
		a, b := dst.Cols[i].Decode(), src.Cols[i].Decode()
		out := &Column{Type: a.Type, Len: a.Len + b.Len, Enc: Plain}
		out.Ints = append(append([]int64{}, a.Ints...), b.Ints...)
		out.Floats = append(append([]float64{}, a.Floats...), b.Floats...)
		out.Bools = append(append([]bool{}, a.Bools...), b.Bools...)
		out.Strs = append(append([]string{}, a.Strs...), b.Strs...)
		if a.Nulls != nil || b.Nulls != nil {
			nulls := make([]bool, a.Len+b.Len)
			if a.Nulls != nil {
				copy(nulls, a.Nulls)
			}
			if b.Nulls != nil {
				copy(nulls[a.Len:], b.Nulls)
			}
			out.Nulls = nulls
		}
		cols[i] = out
	}
	return &Batch{Schema: dst.Schema, Cols: cols, N: dst.N + src.N}, nil
}

// Builder builds a batch row-at-a-time; used by loaders and tests.
type Builder struct {
	schema Schema
	rows   [][]Value
}

// NewBuilder returns a builder for schema.
func NewBuilder(schema Schema) *Builder { return &Builder{schema: schema} }

// Append adds a row. It panics if the arity is wrong (programmer
// error).
func (bl *Builder) Append(vals ...Value) {
	if len(vals) != bl.schema.Len() {
		panic(fmt.Sprintf("vector: row arity %d != schema %d", len(vals), bl.schema.Len()))
	}
	bl.rows = append(bl.rows, vals)
}

// Len returns the number of buffered rows.
func (bl *Builder) Len() int { return len(bl.rows) }

// Build materializes the plain-encoded batch.
func (bl *Builder) Build() *Batch {
	n := len(bl.rows)
	cols := make([]*Column, bl.schema.Len())
	for j, f := range bl.schema.Fields {
		c := &Column{Type: f.Type, Len: n, Enc: Plain}
		var nulls []bool
		for i := 0; i < n; i++ {
			v := bl.rows[i][j]
			if v.IsNull() {
				if nulls == nil {
					nulls = make([]bool, n)
				}
				nulls[i] = true
				v = zeroOf(f.Type)
			}
			switch f.Type {
			case Int64, Timestamp:
				c.Ints = append(c.Ints, v.I)
			case Float64:
				c.Floats = append(c.Floats, v.F)
			case Bool:
				c.Bools = append(c.Bools, v.B)
			case String, Bytes:
				c.Strs = append(c.Strs, v.S)
			}
		}
		c.Nulls = nulls
		cols[j] = c
	}
	return &Batch{Schema: bl.schema, Cols: cols, N: n}
}

// DictEncode returns a dictionary-encoded copy of a plain column (or
// the column itself if already encoded).
func DictEncode(c *Column) *Column {
	if c.Enc != Plain {
		return c
	}
	out := &Column{Type: c.Type, Len: c.Len, Enc: Dict, Codes: make([]uint32, c.Len)}
	switch c.Type {
	case Int64, Timestamp:
		seen := make(map[int64]uint32)
		for i, v := range c.Ints {
			if c.Nulls != nil && c.Nulls[i] {
				out.Codes[i] = NullIdx
				continue
			}
			code, ok := seen[v]
			if !ok {
				code = uint32(len(out.Ints))
				seen[v] = code
				out.Ints = append(out.Ints, v)
			}
			out.Codes[i] = code
		}
	case Float64:
		seen := make(map[float64]uint32)
		for i, v := range c.Floats {
			if c.Nulls != nil && c.Nulls[i] {
				out.Codes[i] = NullIdx
				continue
			}
			code, ok := seen[v]
			if !ok {
				code = uint32(len(out.Floats))
				seen[v] = code
				out.Floats = append(out.Floats, v)
			}
			out.Codes[i] = code
		}
	case Bool:
		seen := make(map[bool]uint32)
		for i, v := range c.Bools {
			if c.Nulls != nil && c.Nulls[i] {
				out.Codes[i] = NullIdx
				continue
			}
			code, ok := seen[v]
			if !ok {
				code = uint32(len(out.Bools))
				seen[v] = code
				out.Bools = append(out.Bools, v)
			}
			out.Codes[i] = code
		}
	case String, Bytes:
		seen := make(map[string]uint32)
		for i, v := range c.Strs {
			if c.Nulls != nil && c.Nulls[i] {
				out.Codes[i] = NullIdx
				continue
			}
			code, ok := seen[v]
			if !ok {
				code = uint32(len(out.Strs))
				seen[v] = code
				out.Strs = append(out.Strs, v)
			}
			out.Codes[i] = code
		}
	}
	return out
}

// RLEncode returns a run-length-encoded copy of a plain column.
func RLEncode(c *Column) *Column {
	if c.Enc != Plain {
		return c
	}
	out := &Column{Type: c.Type, Len: c.Len, Enc: RLE}
	var prev Value
	first := true
	for i := 0; i < c.Len; i++ {
		v := c.Value(i)
		if !first && v.Equal(prev) {
			out.Runs[len(out.Runs)-1].Count++
			continue
		}
		first = false
		prev = v
		idx := NullIdx
		if !v.IsNull() {
			idx = uint32(out.dictLen())
			switch c.Type {
			case Int64, Timestamp:
				out.Ints = append(out.Ints, v.I)
			case Float64:
				out.Floats = append(out.Floats, v.F)
			case Bool:
				out.Bools = append(out.Bools, v.B)
			case String, Bytes:
				out.Strs = append(out.Strs, v.S)
			}
		}
		out.Runs = append(out.Runs, Run{Count: 1, ValIdx: idx})
	}
	return out
}

// DistinctCount returns the number of distinct non-null values stored
// in an encoded column's dictionary (Dict/RLE), or a full scan count
// for Plain.
func (c *Column) DistinctCount() int {
	switch c.Enc {
	case Dict:
		return c.dictLen()
	case RLE:
		seen := map[Value]bool{}
		for _, r := range c.Runs {
			if r.ValIdx != NullIdx {
				seen[c.valueAtIdx(r.ValIdx)] = true
			}
		}
		return len(seen)
	default:
		seen := map[Value]bool{}
		for i := 0; i < c.Len; i++ {
			if v := c.Value(i); !v.IsNull() {
				seen[v] = true
			}
		}
		return len(seen)
	}
}
