package vector

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// Wire format for batches — the stand-in for the Arrow IPC payload the
// Read API streams to clients (§2.2.1). EncodeBatch can either retain
// dictionary/RLE encodings on the wire (the §3.4 "future work"
// payload-efficiency optimization, ablation A4) or fully decode
// columns first (the baseline payload).

const wireMagic = uint32(0xB161AC3) // "BIGLAKe"

// EncodeBatch serializes the batch. If keepEncodings is false, all
// columns are decoded to PLAIN before serialization.
func EncodeBatch(b *Batch, keepEncodings bool) []byte {
	var buf bytes.Buffer
	writeU32(&buf, wireMagic)
	writeUvarint(&buf, uint64(len(b.Schema.Fields)))
	for _, f := range b.Schema.Fields {
		writeString(&buf, f.Name)
		buf.WriteByte(byte(f.Type))
	}
	writeUvarint(&buf, uint64(b.N))
	for _, c := range b.Cols {
		col := c
		if !keepEncodings {
			col = c.Decode()
		}
		encodeColumn(&buf, col)
	}
	return buf.Bytes()
}

func encodeColumn(buf *bytes.Buffer, c *Column) {
	buf.WriteByte(byte(c.Type))
	buf.WriteByte(byte(c.Enc))
	writeUvarint(buf, uint64(c.Len))

	// Value arrays (plain values or the dictionary).
	switch c.Type {
	case Int64, Timestamp:
		writeUvarint(buf, uint64(len(c.Ints)))
		for _, v := range c.Ints {
			writeVarint(buf, v)
		}
	case Float64:
		writeUvarint(buf, uint64(len(c.Floats)))
		for _, v := range c.Floats {
			var tmp [8]byte
			binary.LittleEndian.PutUint64(tmp[:], floatBits(v))
			buf.Write(tmp[:])
		}
	case Bool:
		writeUvarint(buf, uint64(len(c.Bools)))
		for _, v := range c.Bools {
			if v {
				buf.WriteByte(1)
			} else {
				buf.WriteByte(0)
			}
		}
	case String, Bytes:
		writeUvarint(buf, uint64(len(c.Strs)))
		for _, v := range c.Strs {
			writeString(buf, v)
		}
	}

	switch c.Enc {
	case Plain:
		if c.Nulls == nil {
			buf.WriteByte(0)
		} else {
			buf.WriteByte(1)
			for _, v := range c.Nulls {
				if v {
					buf.WriteByte(1)
				} else {
					buf.WriteByte(0)
				}
			}
		}
	case Dict:
		for _, code := range c.Codes {
			writeUvarint(buf, uint64(code))
		}
	case RLE:
		writeUvarint(buf, uint64(len(c.Runs)))
		for _, r := range c.Runs {
			writeUvarint(buf, uint64(r.Count))
			writeUvarint(buf, uint64(r.ValIdx))
		}
	}
}

// DecodeBatch parses a batch from wire bytes.
func DecodeBatch(data []byte) (*Batch, error) {
	r := bytes.NewReader(data)
	var magic uint32
	if err := binary.Read(r, binary.LittleEndian, &magic); err != nil {
		return nil, fmt.Errorf("vector: short batch header: %w", err)
	}
	if magic != wireMagic {
		return nil, fmt.Errorf("vector: bad batch magic %#x", magic)
	}
	nFields, err := binary.ReadUvarint(r)
	if err != nil {
		return nil, err
	}
	schema := Schema{Fields: make([]Field, nFields)}
	for i := range schema.Fields {
		name, err := readString(r)
		if err != nil {
			return nil, err
		}
		tb, err := r.ReadByte()
		if err != nil {
			return nil, err
		}
		schema.Fields[i] = Field{Name: name, Type: Type(tb)}
	}
	n, err := binary.ReadUvarint(r)
	if err != nil {
		return nil, err
	}
	cols := make([]*Column, nFields)
	for i := range cols {
		c, err := decodeColumn(r)
		if err != nil {
			return nil, fmt.Errorf("vector: column %d: %w", i, err)
		}
		if c.Len != int(n) {
			return nil, fmt.Errorf("vector: column %d length %d != batch %d", i, c.Len, n)
		}
		cols[i] = c
	}
	return &Batch{Schema: schema, Cols: cols, N: int(n)}, nil
}

func decodeColumn(r *bytes.Reader) (*Column, error) {
	tb, err := r.ReadByte()
	if err != nil {
		return nil, err
	}
	eb, err := r.ReadByte()
	if err != nil {
		return nil, err
	}
	clen, err := binary.ReadUvarint(r)
	if err != nil {
		return nil, err
	}
	c := &Column{Type: Type(tb), Enc: Encoding(eb), Len: int(clen)}

	nVals, err := binary.ReadUvarint(r)
	if err != nil {
		return nil, err
	}
	switch c.Type {
	case Int64, Timestamp:
		c.Ints = make([]int64, nVals)
		for i := range c.Ints {
			v, err := binary.ReadVarint(r)
			if err != nil {
				return nil, err
			}
			c.Ints[i] = v
		}
	case Float64:
		c.Floats = make([]float64, nVals)
		var tmp [8]byte
		for i := range c.Floats {
			if _, err := io.ReadFull(r, tmp[:]); err != nil {
				return nil, err
			}
			c.Floats[i] = floatFromBits(binary.LittleEndian.Uint64(tmp[:]))
		}
	case Bool:
		c.Bools = make([]bool, nVals)
		for i := range c.Bools {
			b, err := r.ReadByte()
			if err != nil {
				return nil, err
			}
			c.Bools[i] = b != 0
		}
	case String, Bytes:
		c.Strs = make([]string, nVals)
		for i := range c.Strs {
			s, err := readString(r)
			if err != nil {
				return nil, err
			}
			c.Strs[i] = s
		}
	default:
		return nil, fmt.Errorf("unknown column type %d", tb)
	}

	switch c.Enc {
	case Plain:
		hasNulls, err := r.ReadByte()
		if err != nil {
			return nil, err
		}
		if hasNulls == 1 {
			c.Nulls = make([]bool, c.Len)
			for i := range c.Nulls {
				b, err := r.ReadByte()
				if err != nil {
					return nil, err
				}
				c.Nulls[i] = b != 0
			}
		}
	case Dict:
		c.Codes = make([]uint32, c.Len)
		for i := range c.Codes {
			v, err := binary.ReadUvarint(r)
			if err != nil {
				return nil, err
			}
			c.Codes[i] = uint32(v)
		}
	case RLE:
		nRuns, err := binary.ReadUvarint(r)
		if err != nil {
			return nil, err
		}
		c.Runs = make([]Run, nRuns)
		for i := range c.Runs {
			cnt, err := binary.ReadUvarint(r)
			if err != nil {
				return nil, err
			}
			idx, err := binary.ReadUvarint(r)
			if err != nil {
				return nil, err
			}
			c.Runs[i] = Run{Count: uint32(cnt), ValIdx: uint32(idx)}
		}
	default:
		return nil, fmt.Errorf("unknown encoding %d", eb)
	}
	return c, nil
}

// EncodeColumn serializes one column (with its physical encoding) to
// bytes; the columnar file format stores column chunks this way.
func EncodeColumn(c *Column) []byte {
	var buf bytes.Buffer
	encodeColumn(&buf, c)
	return buf.Bytes()
}

// DecodeColumn parses a column serialized by EncodeColumn.
func DecodeColumn(data []byte) (*Column, error) {
	return decodeColumn(bytes.NewReader(data))
}

func writeU32(buf *bytes.Buffer, v uint32) {
	var tmp [4]byte
	binary.LittleEndian.PutUint32(tmp[:], v)
	buf.Write(tmp[:])
}

func writeUvarint(buf *bytes.Buffer, v uint64) {
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(tmp[:], v)
	buf.Write(tmp[:n])
}

func writeVarint(buf *bytes.Buffer, v int64) {
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutVarint(tmp[:], v)
	buf.Write(tmp[:n])
}

func writeString(buf *bytes.Buffer, s string) {
	writeUvarint(buf, uint64(len(s)))
	buf.WriteString(s)
}

func readString(r *bytes.Reader) (string, error) {
	n, err := binary.ReadUvarint(r)
	if err != nil {
		return "", err
	}
	if n > uint64(r.Len()) {
		return "", fmt.Errorf("vector: string length %d exceeds remaining %d", n, r.Len())
	}
	b := make([]byte, n)
	if _, err := io.ReadFull(r, b); err != nil {
		return "", err
	}
	return string(b), nil
}

func floatBits(f float64) uint64 { return math.Float64bits(f) }

func floatFromBits(u uint64) float64 { return math.Float64frombits(u) }
