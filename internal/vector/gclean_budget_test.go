//go:build !race

package vector

import (
	"testing"

	"biglake/internal/arena"
	"biglake/internal/sim"
)

// Per-operator allocs/op budgets, enforced in CI (`make gclean`). Each
// budget is the measured steady-state heap allocation count of the
// kernel running on a warm arena, plus a little headroom for runtime
// jitter — NOT a target to grow into. A failure here means someone put
// a make() or a boxed value back on a hot path; fix the kernel, don't
// raise the number unless the change is deliberate and reviewed.
//
// The counts that remain are output descriptors (Column/Batch headers,
// per-spec accumulator structs), not per-row data: per-row buffers all
// come from the arena.
const (
	budgetCompareConst   = 0
	budgetFilter         = 10 // Column+Batch headers for a 5-col batch
	budgetGather         = 2
	budgetGatherNull     = 2
	budgetHashJoin       = 12 // partition headers + result assembly
	budgetGroupKeys      = 9  // per-worker table headers + Grouping
	budgetGroupAggregate = 14 // per-spec partial structs + Value rows
)

// warmKernelWorld builds deterministic inputs sized well past one
// morsel and pre-runs each kernel once so arena slabs exist before
// counting.
type warmKernelWorld struct {
	ar   *arena.Arena
	pool *arena.Pool
	lean Mem
	b    *Batch
	jb   *Batch
	idx  []int
	jidx []int32
	keys []*Column
}

// budgetBatch builds the shapes the scan feeds operators — Plain
// numerics, Dict strings — with deterministic values and nulls. (RLE
// is excluded on purpose: RLE random access decodes eagerly to the
// heap at the operator edge, which is a known cost outside these
// budgets.)
func budgetBatch(r *sim.RNG, n int) *Batch {
	ints := make([]int64, n)
	floats := make([]float64, n)
	strs := make([]string, n)
	bools := make([]bool, n)
	ts := make([]int64, n)
	for i := 0; i < n; i++ {
		ints[i] = int64(r.Intn(12))
		floats[i] = float64(r.Intn(12)) / 2
		strs[i] = [3]string{"aa", "bb", "cc"}[r.Intn(3)]
		bools[i] = r.Intn(2) == 0
		ts[i] = int64(r.Intn(5))
	}
	cols := []*Column{
		NewInt64Column(ints),
		NewFloat64Column(floats),
		DictEncode(NewStringColumn(strs)),
		NewBoolColumn(bools),
		DictEncode(NewTimestampColumn(ts)),
	}
	return MustBatch(NewSchema(
		Field{Name: "c0", Type: Int64}, Field{Name: "c1", Type: Float64},
		Field{Name: "c2", Type: String}, Field{Name: "c3", Type: Bool},
		Field{Name: "c4", Type: Timestamp}), cols)
}

func newWarmKernelWorld() *warmKernelWorld {
	w := &warmKernelWorld{pool: arena.NewPool()}
	w.ar = w.pool.Get()
	w.lean = Mem{Al: w.ar, LateMat: true}
	r := sim.NewRNG(42)
	n := MorselRows + 777
	w.b = budgetBatch(r, n)
	w.jb = budgetBatch(r, n/2)
	ri := sim.NewRNG(43)
	w.idx = make([]int, n)
	for i := range w.idx {
		w.idx[i] = ri.Intn(n)
	}
	w.jidx = make([]int32, n)
	for i := range w.jidx {
		w.jidx[i] = int32(ri.Intn(n/2+1)) - 1
	}
	w.keys = []*Column{w.b.Cols[2], w.b.Cols[4]}
	return w
}

// recycle rewinds the arena between measured runs, exactly as the
// engine does between queries, so slab growth never counts as allocs.
func (w *warmKernelWorld) recycle() {
	w.ar.Release()
	w.ar = w.pool.Get()
	w.lean = Mem{Al: w.ar, LateMat: true}
}

func measureKernel(t *testing.T, w *warmKernelWorld, name string, budget int, fn func(m Mem)) {
	t.Helper()
	fn(w.lean) // warm slabs
	got := testing.AllocsPerRun(10, func() {
		w.recycle()
		fn(w.lean)
	})
	t.Logf("%s: measured %v allocs/op (budget %d)", name, got, budget)
	if int(got) > budget {
		t.Errorf("%s: %v allocs/op, budget %d — a hot-path heap allocation crept back in", name, got, budget)
	}
}

func TestGCLeanAllocBudgets(t *testing.T) {
	w := newWarmKernelWorld()
	var mask []bool

	measureKernel(t, w, "CompareConstWith", budgetCompareConst, func(m Mem) {
		mask = CompareConstWith(m.Al, w.b.Cols[0], LE, IntValue(6))
	})
	measureKernel(t, w, "FilterWith", budgetFilter, func(m Mem) {
		if _, err := FilterWith(m, w.b, mask); err != nil {
			t.Fatal(err)
		}
	})
	measureKernel(t, w, "GatherWith", budgetGather, func(m Mem) {
		GatherWith(m, w.b.Cols[2], w.idx)
	})
	measureKernel(t, w, "GatherNullWith", budgetGatherNull, func(m Mem) {
		GatherNullWith(m, w.jb.Cols[2], w.jidx)
	})
	measureKernel(t, w, "HashJoinWith", budgetHashJoin, func(m Mem) {
		if _, err := HashJoinWith(m, w.b, w.jb, []int{0, 2}, []int{0, 2}, InnerJoin, 1); err != nil {
			t.Fatal(err)
		}
	})
	var gr Grouping
	measureKernel(t, w, "GroupKeysWith", budgetGroupKeys, func(m Mem) {
		gr = GroupKeysWith(m, w.keys, w.b.N, 1)
	})
	specs := []AggSpec{{Kind: AggCount}, {Kind: AggSum, Col: w.b.Cols[0]}, {Kind: AggMin, Col: w.b.Cols[2]}}
	measureKernel(t, w, "GroupAggregateWith", budgetGroupAggregate, func(m Mem) {
		GroupAggregateWith(m, gr.IDs, gr.NumGroups, specs, 1)
	})
}
