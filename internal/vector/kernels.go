package vector

import (
	"fmt"
	"hash/fnv"
)

// CmpOp is a comparison operator for predicate kernels.
type CmpOp uint8

// Comparison operators.
const (
	EQ CmpOp = iota
	NE
	LT
	LE
	GT
	GE
)

func (op CmpOp) String() string {
	switch op {
	case EQ:
		return "="
	case NE:
		return "!="
	case LT:
		return "<"
	case LE:
		return "<="
	case GT:
		return ">"
	case GE:
		return ">="
	}
	return "?"
}

// Eval applies the operator to an ordering result from Value.Compare.
func (op CmpOp) Eval(cmp int) bool {
	switch op {
	case EQ:
		return cmp == 0
	case NE:
		return cmp != 0
	case LT:
		return cmp < 0
	case LE:
		return cmp <= 0
	case GT:
		return cmp > 0
	case GE:
		return cmp >= 0
	}
	return false
}

// CompareConst evaluates `col op val` producing a selection mask.
// NULL rows compare false (SQL semantics). The kernel operates
// directly on the physical encoding: for Dict columns the predicate is
// evaluated once per dictionary entry and then mapped over codes; for
// RLE it is evaluated once per run.
func CompareConst(c *Column, op CmpOp, val Value) []bool {
	return CompareConstWith(nil, c, op, val)
}

// CompareConstWith is CompareConst allocating the mask (and dictionary
// verdict scratch) from al; nil falls back to the heap.
func CompareConstWith(al Alloc, c *Column, op CmpOp, val Value) []bool {
	if al == nil {
		al = Heap
	}
	mask := al.Bools(c.Len)
	if c.Len == 0 {
		// Preserve the non-nil empty mask of the make() era.
		mask = []bool{}
	}
	switch c.Enc {
	case Dict:
		verdicts := dictVerdicts(al, c, op, val)
		for i, code := range c.Codes {
			if code != NullIdx {
				mask[i] = verdicts[code]
			}
		}
	case RLE:
		pos := 0
		for _, r := range c.Runs {
			v := false
			if r.ValIdx != NullIdx {
				v = op.Eval(c.valueAtIdx(r.ValIdx).Compare(val))
			}
			if v {
				for k := 0; k < int(r.Count); k++ {
					mask[pos+k] = true
				}
			}
			pos += int(r.Count)
		}
	default:
		// Plain: typed fast paths avoid Value boxing per row.
		switch c.Type {
		case Int64, Timestamp:
			target := val.AsInt()
			if val.Type == Float64 {
				// Mixed numeric comparison falls back to float.
				ft := val.F
				for i, v := range c.Ints {
					if c.Nulls == nil || !c.Nulls[i] {
						mask[i] = op.Eval(cmpFloat(float64(v), ft))
					}
				}
				return mask
			}
			compareIntsConst(mask, c.Ints, c.Nulls, op, target)
		case Float64:
			compareFloatsConst(mask, c.Floats, c.Nulls, op, val.AsFloat())
		case String, Bytes:
			target := val.S
			for i, v := range c.Strs {
				if c.Nulls == nil || !c.Nulls[i] {
					mask[i] = op.Eval(cmpString(v, target))
				}
			}
		case Bool:
			for i, v := range c.Bools {
				if c.Nulls == nil || !c.Nulls[i] {
					mask[i] = op.Eval(cmpBool(v, val.B))
				}
			}
		}
	}
	return mask
}

func dictVerdicts(al Alloc, c *Column, op CmpOp, val Value) []bool {
	n := c.dictLen()
	verdicts := al.Bools(n)
	for i := 0; i < n; i++ {
		verdicts[i] = op.Eval(c.valueAtIdx(uint32(i)).Compare(val))
	}
	return verdicts
}

// compareIntsConst writes `xs[i] op target` into mask with dedicated
// per-operator loops on the null-free path: the operator dispatch runs
// once per column instead of once per row, which roughly halves the
// cost of the hottest scan kernel (point lookups spend most of their
// CPU here).
func compareIntsConst(mask []bool, xs []int64, nulls []bool, op CmpOp, target int64) {
	if nulls != nil {
		for i, v := range xs {
			if !nulls[i] {
				mask[i] = op.Eval(cmpInt(v, target))
			}
		}
		return
	}
	switch op {
	case EQ:
		for i, v := range xs {
			mask[i] = v == target
		}
	case NE:
		for i, v := range xs {
			mask[i] = v != target
		}
	case LT:
		for i, v := range xs {
			mask[i] = v < target
		}
	case LE:
		for i, v := range xs {
			mask[i] = v <= target
		}
	case GT:
		for i, v := range xs {
			mask[i] = v > target
		}
	case GE:
		for i, v := range xs {
			mask[i] = v >= target
		}
	}
}

// compareFloatsConst is compareIntsConst for float64 columns. The
// loops are written in terms of < and > only so NaN keeps cmpFloat's
// semantics exactly: NaN is neither below nor above anything, so
// cmpFloat reports 0 and EQ/LE/GE match it while NE/LT/GT do not.
func compareFloatsConst(mask []bool, xs []float64, nulls []bool, op CmpOp, target float64) {
	if nulls != nil {
		for i, v := range xs {
			if !nulls[i] {
				mask[i] = op.Eval(cmpFloat(v, target))
			}
		}
		return
	}
	switch op {
	case EQ:
		for i, v := range xs {
			mask[i] = !(v < target) && !(v > target)
		}
	case NE:
		for i, v := range xs {
			mask[i] = v < target || v > target
		}
	case LT:
		for i, v := range xs {
			mask[i] = v < target
		}
	case LE:
		for i, v := range xs {
			mask[i] = !(v > target)
		}
	case GT:
		for i, v := range xs {
			mask[i] = v > target
		}
	case GE:
		for i, v := range xs {
			mask[i] = !(v < target)
		}
	}
}

func cmpInt(a, b int64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	}
	return 0
}

func cmpFloat(a, b float64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	}
	return 0
}

func cmpString(a, b string) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	}
	return 0
}

func cmpBool(a, b bool) int {
	switch {
	case !a && b:
		return -1
	case a && !b:
		return 1
	}
	return 0
}

// CompareCols evaluates `a op b` element-wise over two columns of the
// same length (the join/filter-on-two-columns path). NULLs compare
// false.
func CompareCols(a, b *Column, op CmpOp) ([]bool, error) {
	if a.Len != b.Len {
		return nil, fmt.Errorf("vector: column length mismatch %d vs %d", a.Len, b.Len)
	}
	mask := make([]bool, a.Len)
	for i := 0; i < a.Len; i++ {
		av, bv := a.Value(i), b.Value(i)
		if av.IsNull() || bv.IsNull() {
			continue
		}
		mask[i] = op.Eval(av.Compare(bv))
	}
	return mask, nil
}

// IsNullMask returns a mask that is true where the column is NULL.
func IsNullMask(c *Column) []bool {
	mask := make([]bool, c.Len)
	switch c.Enc {
	case Plain:
		if c.Nulls != nil {
			copy(mask, c.Nulls)
		}
	case Dict:
		for i, code := range c.Codes {
			mask[i] = code == NullIdx
		}
	case RLE:
		pos := 0
		for _, r := range c.Runs {
			if r.ValIdx == NullIdx {
				for k := 0; k < int(r.Count); k++ {
					mask[pos+k] = true
				}
			}
			pos += int(r.Count)
		}
	}
	return mask
}

// And combines masks in place into a new mask.
func And(a, b []bool) []bool {
	out := make([]bool, len(a))
	for i := range a {
		out[i] = a[i] && b[i]
	}
	return out
}

// Or combines masks.
func Or(a, b []bool) []bool {
	out := make([]bool, len(a))
	for i := range a {
		out[i] = a[i] || b[i]
	}
	return out
}

// Not negates a mask.
func Not(a []bool) []bool {
	out := make([]bool, len(a))
	for i := range a {
		out[i] = !a[i]
	}
	return out
}

// CountMask returns the number of set positions.
func CountMask(mask []bool) int {
	n := 0
	for _, b := range mask {
		if b {
			n++
		}
	}
	return n
}

// Filter returns a batch containing only the rows where mask is true.
// Output columns are plain-encoded.
func Filter(b *Batch, mask []bool) (*Batch, error) {
	return FilterWith(Mem{}, b, mask)
}

// FilterWith is Filter with an explicit memory policy: selection
// scratch and output arrays come from m's allocator, and Dict columns
// stay dictionary-encoded when m.LateMat is set.
func FilterWith(m Mem, b *Batch, mask []bool) (*Batch, error) {
	if len(mask) != b.N {
		return nil, fmt.Errorf("vector: mask length %d != batch %d", len(mask), b.N)
	}
	al := m.Allocator()
	// Count first so the index scratch is sized to the selection, not
	// the batch: selective filters (point lookups) would otherwise pay
	// a full-width zeroing pass for a handful of surviving rows.
	n := 0
	for _, mv := range mask {
		if mv {
			n++
		}
	}
	idx := al.Ints(n)[:0]
	for i, mv := range mask {
		if mv {
			idx = append(idx, i)
		}
	}
	cols := make([]*Column, len(b.Cols))
	for i, c := range b.Cols {
		cols[i] = GatherWith(m, c, idx)
	}
	return &Batch{Schema: b.Schema, Cols: cols, N: len(idx)}, nil
}

// Gather materializes the rows at idx into a new plain column.
func Gather(c *Column, idx []int) *Column {
	return GatherWith(Mem{}, c, idx)
}

// GatherWith gathers the rows at idx. Under late materialization a
// Dict input stays Dict: only the codes are gathered and the
// dictionary value arrays are shared, so strings are not copied until
// result emission (Column.Value decodes on read). Otherwise the
// output is plain-encoded, matching Gather.
func GatherWith(m Mem, c *Column, idx []int) *Column {
	al := m.Allocator()
	dec := c
	if c.Enc == RLE {
		dec = c.Decode() // random access over RLE is O(runs); decode once
	}
	if m.LateMat && dec.Enc == Dict {
		out := &Column{Type: c.Type, Len: len(idx), Enc: Dict, Pooled: m.Pooled() || dec.Pooled}
		out.Ints, out.Floats, out.Bools, out.Strs = dec.Ints, dec.Floats, dec.Bools, dec.Strs
		codes := al.Uint32s(len(idx))
		for outI, i := range idx {
			codes[outI] = dec.Codes[i]
		}
		out.Codes = codes
		return out
	}
	out := &Column{Type: c.Type, Len: len(idx), Enc: Plain, Pooled: m.Pooled()}
	var nulls []bool
	nullAt := func(outI int) {
		if nulls == nil {
			nulls = al.Bools(len(idx))
		}
		nulls[outI] = true
	}
	if dec.Enc == Dict {
		switch c.Type {
		case Int64, Timestamp:
			out.Ints = al.Int64s(len(idx))
			for outI, i := range idx {
				if code := dec.Codes[i]; code != NullIdx {
					out.Ints[outI] = dec.Ints[code]
				} else {
					nullAt(outI)
				}
			}
		case Float64:
			out.Floats = al.Float64s(len(idx))
			for outI, i := range idx {
				if code := dec.Codes[i]; code != NullIdx {
					out.Floats[outI] = dec.Floats[code]
				} else {
					nullAt(outI)
				}
			}
		case Bool:
			out.Bools = al.Bools(len(idx))
			for outI, i := range idx {
				if code := dec.Codes[i]; code != NullIdx {
					out.Bools[outI] = dec.Bools[code]
				} else {
					nullAt(outI)
				}
			}
		case String, Bytes:
			out.Strs = al.Strings(len(idx))
			for outI, i := range idx {
				if code := dec.Codes[i]; code != NullIdx {
					out.Strs[outI] = dec.Strs[code]
				} else {
					nullAt(outI)
				}
			}
		}
		out.Nulls = nulls
		return out
	}
	isNull := func(i int) bool { return dec.Nulls != nil && dec.Nulls[i] }
	switch c.Type {
	case Int64, Timestamp:
		out.Ints = al.Int64s(len(idx))
		for outI, i := range idx {
			if isNull(i) {
				nullAt(outI)
			} else {
				out.Ints[outI] = dec.Ints[i]
			}
		}
	case Float64:
		out.Floats = al.Float64s(len(idx))
		for outI, i := range idx {
			if isNull(i) {
				nullAt(outI)
			} else {
				out.Floats[outI] = dec.Floats[i]
			}
		}
	case Bool:
		out.Bools = al.Bools(len(idx))
		for outI, i := range idx {
			if isNull(i) {
				nullAt(outI)
			} else {
				out.Bools[outI] = dec.Bools[i]
			}
		}
	case String, Bytes:
		out.Strs = al.Strings(len(idx))
		for outI, i := range idx {
			if isNull(i) {
				nullAt(outI)
			} else {
				out.Strs[outI] = dec.Strs[i]
			}
		}
	}
	out.Nulls = nulls
	return out
}

// MaskKind is a data-masking transform (§3.2: "data masking" applied
// inside the Read API trust boundary).
type MaskKind uint8

// Masking transforms.
const (
	MaskNone     MaskKind = iota
	MaskNullify           // replace with NULL
	MaskHash              // replace with a deterministic hash token
	MaskDefault           // replace with the type's zero value
	MaskLastFour          // strings: keep last 4 chars, X out the rest
)

func (m MaskKind) String() string {
	switch m {
	case MaskNone:
		return "NONE"
	case MaskNullify:
		return "NULLIFY"
	case MaskHash:
		return "HASH"
	case MaskDefault:
		return "DEFAULT"
	case MaskLastFour:
		return "LAST_FOUR"
	}
	return "?"
}

// ApplyMask returns a masked copy of the column. For Dict columns the
// transform runs once per dictionary entry — masking is vectorized
// over the encoding just like predicates.
func ApplyMask(c *Column, kind MaskKind) *Column {
	switch kind {
	case MaskNone:
		return c
	case MaskNullify:
		out := &Column{Type: c.Type, Len: c.Len, Enc: Plain, Nulls: make([]bool, c.Len)}
		for i := range out.Nulls {
			out.Nulls[i] = true
		}
		switch c.Type {
		case Int64, Timestamp:
			out.Ints = make([]int64, c.Len)
		case Float64:
			out.Floats = make([]float64, c.Len)
		case Bool:
			out.Bools = make([]bool, c.Len)
		case String, Bytes:
			out.Strs = make([]string, c.Len)
		}
		return out
	case MaskDefault:
		out := &Column{Type: c.Type, Len: c.Len, Enc: Plain}
		switch c.Type {
		case Int64, Timestamp:
			out.Ints = make([]int64, c.Len)
		case Float64:
			out.Floats = make([]float64, c.Len)
		case Bool:
			out.Bools = make([]bool, c.Len)
		case String, Bytes:
			out.Strs = make([]string, c.Len)
		}
		return out
	}

	// Value-transforming masks: operate on the dictionary when the
	// column is Dict/RLE encoded.
	transform := func(v Value) Value {
		switch kind {
		case MaskHash:
			h := fnv.New64a()
			fmt.Fprintf(h, "%d:%s:%d:%g:%t", v.Type, v.S, v.I, v.F, v.B)
			return StringValue(fmt.Sprintf("hash_%016x", h.Sum64()))
		case MaskLastFour:
			s := v.String()
			if len(s) <= 4 {
				return StringValue(s)
			}
			masked := make([]byte, len(s))
			for i := range masked {
				masked[i] = 'X'
			}
			copy(masked[len(s)-4:], s[len(s)-4:])
			return StringValue(string(masked))
		}
		return v
	}

	if c.Enc == Dict || c.Enc == RLE {
		out := &Column{Type: String, Len: c.Len, Enc: c.Enc}
		out.Codes = c.Codes
		out.Runs = c.Runs
		n := c.dictLen()
		out.Strs = make([]string, n)
		for i := 0; i < n; i++ {
			out.Strs[i] = transform(c.valueAtIdx(uint32(i))).S
		}
		return out
	}
	out := &Column{Type: String, Len: c.Len, Enc: Plain, Strs: make([]string, c.Len)}
	var nulls []bool
	for i := 0; i < c.Len; i++ {
		v := c.Value(i)
		if v.IsNull() {
			if nulls == nil {
				nulls = make([]bool, c.Len)
			}
			nulls[i] = true
			continue
		}
		out.Strs[i] = transform(v).S
	}
	out.Nulls = nulls
	return out
}

// AggKind is a partial-aggregate function the Read API can push down
// (§3.4 future work, implemented here).
type AggKind uint8

// Aggregate kinds.
const (
	AggCount AggKind = iota
	AggSum
	AggMin
	AggMax
)

func (a AggKind) String() string {
	switch a {
	case AggCount:
		return "COUNT"
	case AggSum:
		return "SUM"
	case AggMin:
		return "MIN"
	case AggMax:
		return "MAX"
	}
	return "?"
}

// Aggregate computes a partial aggregate over the column under an
// optional selection mask (nil = all rows). COUNT counts non-null
// selected rows. SUM/MIN/MAX skip NULLs; an empty input yields NULL
// for MIN/MAX/SUM and 0 for COUNT.
func Aggregate(c *Column, kind AggKind, mask []bool) Value {
	count := int64(0)
	var acc Value
	accSet := false
	var sumI int64
	var sumF float64
	for i := 0; i < c.Len; i++ {
		if mask != nil && !mask[i] {
			continue
		}
		v := c.Value(i)
		if v.IsNull() {
			continue
		}
		count++
		switch kind {
		case AggSum:
			if c.Type == Float64 {
				sumF += v.F
			} else {
				sumI += v.I
			}
		case AggMin:
			if !accSet || v.Compare(acc) < 0 {
				acc, accSet = v, true
			}
		case AggMax:
			if !accSet || v.Compare(acc) > 0 {
				acc, accSet = v, true
			}
		}
	}
	switch kind {
	case AggCount:
		return IntValue(count)
	case AggSum:
		if count == 0 {
			return NullValue
		}
		if c.Type == Float64 {
			return FloatValue(sumF)
		}
		return IntValue(sumI)
	case AggMin, AggMax:
		if !accSet {
			return NullValue
		}
		return acc
	}
	return NullValue
}

// MinMax scans a plain column once and returns (min, max, nullCount);
// used when collecting file statistics for Big Metadata.
func MinMax(c *Column) (min, max Value, nullCount int64) {
	for i := 0; i < c.Len; i++ {
		v := c.Value(i)
		if v.IsNull() {
			nullCount++
			continue
		}
		if min.IsNull() || v.Compare(min) < 0 {
			min = v
		}
		if max.IsNull() || v.Compare(max) > 0 {
			max = v
		}
	}
	return min, max, nullCount
}
