package vector

// Alloc hands out typed scratch slices for the execution kernels. The
// production implementation is *arena.Arena (matched structurally to
// avoid an import cycle); Heap is the fallback that preserves the
// pre-arena make() behavior. Implementations must return zeroed
// slices with cap == len, or nil when n == 0.
type Alloc interface {
	Int64s(n int) []int64
	Float64s(n int) []float64
	Bools(n int) []bool
	Strings(n int) []string
	Int32s(n int) []int32
	Uint32s(n int) []uint32
	Uint64s(n int) []uint64
	Ints(n int) []int
	// Pooled reports whether slices are recycled after the query:
	// kernels mark output columns Pooled so escape points know to
	// detach them.
	Pooled() bool
}

type heapAlloc struct{}

func (heapAlloc) Int64s(n int) []int64 {
	if n == 0 {
		return nil
	}
	return make([]int64, n)
}

func (heapAlloc) Float64s(n int) []float64 {
	if n == 0 {
		return nil
	}
	return make([]float64, n)
}

func (heapAlloc) Bools(n int) []bool {
	if n == 0 {
		return nil
	}
	return make([]bool, n)
}

func (heapAlloc) Strings(n int) []string {
	if n == 0 {
		return nil
	}
	return make([]string, n)
}

func (heapAlloc) Int32s(n int) []int32 {
	if n == 0 {
		return nil
	}
	return make([]int32, n)
}

func (heapAlloc) Uint32s(n int) []uint32 {
	if n == 0 {
		return nil
	}
	return make([]uint32, n)
}

func (heapAlloc) Uint64s(n int) []uint64 {
	if n == 0 {
		return nil
	}
	return make([]uint64, n)
}

func (heapAlloc) Ints(n int) []int {
	if n == 0 {
		return nil
	}
	return make([]int, n)
}

func (heapAlloc) Pooled() bool { return false }

// Heap is the allocator used when no arena is attached.
var Heap Alloc = heapAlloc{}

// Mem bundles the memory policy a query threads through the kernels:
// where scratch and outputs come from, and whether dictionary columns
// stay encoded (late materialization) through gather/join/group. The
// zero value is the legacy behavior: heap allocation, eager decode.
type Mem struct {
	Al      Alloc
	LateMat bool
}

// Allocator returns the active allocator, defaulting to Heap.
func (m Mem) Allocator() Alloc {
	if m.Al == nil {
		return Heap
	}
	return m.Al
}

// Pooled reports whether kernel outputs must be marked Column.Pooled
// (the allocator recycles its slices after the query).
func (m Mem) Pooled() bool { return m.Al != nil && m.Al.Pooled() }

// appendI32 appends v to s, growing through al with doubling so the
// hot probe loops never touch the heap once warm.
func appendI32(al Alloc, s []int32, v int32) []int32 {
	if len(s) == cap(s) {
		ncap := cap(s) * 2
		if ncap < 64 {
			ncap = 64
		}
		ns := al.Int32s(ncap)[:len(s)]
		copy(ns, s)
		s = ns
	}
	return append(s, v)
}

// DetachColumn returns a column whose backing arrays are heap-owned:
// pooled (arena-backed) columns are deep-copied, everything else is
// returned as-is. This is the copy-out at every boundary where data
// outlives the query arena (Execute results, txn insert buffers,
// serve cursor pages).
func DetachColumn(c *Column) *Column {
	if c == nil || !c.Pooled {
		return c
	}
	out := *c
	out.Pooled = false
	if c.Nulls != nil {
		out.Nulls = append([]bool(nil), c.Nulls...)
	}
	if c.Ints != nil {
		out.Ints = append([]int64(nil), c.Ints...)
	}
	if c.Floats != nil {
		out.Floats = append([]float64(nil), c.Floats...)
	}
	if c.Bools != nil {
		out.Bools = append([]bool(nil), c.Bools...)
	}
	if c.Strs != nil {
		out.Strs = append([]string(nil), c.Strs...)
	}
	if c.Codes != nil {
		out.Codes = append([]uint32(nil), c.Codes...)
	}
	if c.Runs != nil {
		out.Runs = append([]Run(nil), c.Runs...)
	}
	return &out
}

// DetachBatch deep-copies any pooled columns so the batch is safe to
// retain after the query's arena is recycled. Batches with no pooled
// columns are returned unchanged.
func DetachBatch(b *Batch) *Batch {
	if b == nil {
		return nil
	}
	any := false
	for _, c := range b.Cols {
		if c != nil && c.Pooled {
			any = true
			break
		}
	}
	if !any {
		return b
	}
	cols := make([]*Column, len(b.Cols))
	for i, c := range b.Cols {
		cols[i] = DetachColumn(c)
	}
	return &Batch{Schema: b.Schema, Cols: cols, N: b.N}
}
