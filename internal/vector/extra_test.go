package vector

import (
	"strings"
	"testing"
)

func TestStringerCoverage(t *testing.T) {
	for typ, want := range map[Type]string{
		Int64: "INT64", Float64: "FLOAT64", Bool: "BOOL",
		String: "STRING", Bytes: "BYTES", Timestamp: "TIMESTAMP", Invalid: "INVALID",
	} {
		if typ.String() != want {
			t.Errorf("%d.String() = %q", typ, typ.String())
		}
	}
	for op, want := range map[CmpOp]string{
		EQ: "=", NE: "!=", LT: "<", LE: "<=", GT: ">", GE: ">=",
	} {
		if op.String() != want {
			t.Errorf("op String = %q, want %q", op.String(), want)
		}
	}
	for m, want := range map[MaskKind]string{
		MaskNone: "NONE", MaskNullify: "NULLIFY", MaskHash: "HASH",
		MaskDefault: "DEFAULT", MaskLastFour: "LAST_FOUR",
	} {
		if m.String() != want {
			t.Errorf("mask String = %q, want %q", m.String(), want)
		}
	}
	for a, want := range map[AggKind]string{
		AggCount: "COUNT", AggSum: "SUM", AggMin: "MIN", AggMax: "MAX",
	} {
		if a.String() != want {
			t.Errorf("agg String = %q, want %q", a.String(), want)
		}
	}
	for e, want := range map[Encoding]string{Plain: "PLAIN", Dict: "DICT", RLE: "RLE"} {
		if e.String() != want {
			t.Errorf("enc String = %q, want %q", e.String(), want)
		}
	}
}

func TestValueStringRendering(t *testing.T) {
	cases := map[string]Value{
		"NULL": NullValue,
		"42":   IntValue(42),
		"1.5":  FloatValue(1.5),
		"true": BoolValue(true),
		"hi":   StringValue("hi"),
		"6869": BytesValue([]byte("hi")), // hex
		"99":   TimestampValue(99),
	}
	for want, v := range cases {
		if got := v.String(); got != want {
			t.Errorf("%+v.String() = %q, want %q", v, got, want)
		}
	}
}

func TestSchemaString(t *testing.T) {
	s := NewSchema(Field{"a", Int64}, Field{"b", String})
	if got := s.String(); !strings.Contains(got, "a INT64") || !strings.Contains(got, "b STRING") {
		t.Fatalf("schema String = %q", got)
	}
}

func TestBoolAndTimestampColumns(t *testing.T) {
	bc := NewBoolColumn([]bool{true, false, true})
	if bc.Len != 3 || !bc.Value(0).B || bc.Value(1).B {
		t.Fatalf("bool column = %+v", bc)
	}
	if bc.IsNullAt(0) {
		t.Fatal("IsNullAt on non-null")
	}
	tc := NewTimestampColumn([]int64{10, 20})
	if tc.Type != Timestamp || tc.Value(1).AsInt() != 20 {
		t.Fatalf("ts column = %+v", tc)
	}

	// Comparisons on bool columns exercise cmpBool.
	mask := CompareConst(bc, EQ, BoolValue(true))
	if !mask[0] || mask[1] || !mask[2] {
		t.Fatalf("bool compare = %v", mask)
	}
	mask = CompareConst(bc, LT, BoolValue(true)) // false < true
	if mask[0] || !mask[1] {
		t.Fatalf("bool LT = %v", mask)
	}
}

func TestDictEncodeAllTypes(t *testing.T) {
	cols := []*Column{
		NewInt64Column([]int64{1, 1, 2}),
		NewFloat64Column([]float64{0.5, 0.5, 1.5}),
		NewBoolColumn([]bool{true, true, false}),
		NewTimestampColumn([]int64{7, 7, 9}),
	}
	for _, c := range cols {
		d := DictEncode(c)
		if d.Enc != Dict {
			t.Fatalf("%v not dict encoded", c.Type)
		}
		for i := 0; i < c.Len; i++ {
			if !d.Value(i).Equal(c.Value(i)) {
				t.Fatalf("%v round trip row %d", c.Type, i)
			}
		}
		// Re-encoding an encoded column is a no-op.
		if DictEncode(d) != d {
			t.Fatal("double encode should return the column")
		}
	}
}

func TestBatchColumnLookup(t *testing.T) {
	b := MustBatch(NewSchema(Field{"a", Int64}), []*Column{NewInt64Column([]int64{1})})
	if b.Column("a") == nil || b.Column("ghost") != nil {
		t.Fatal("Column lookup")
	}
	if b.Schema.Len() != 1 {
		t.Fatal("Len")
	}
}

func TestEncodeDecodeColumnStandalone(t *testing.T) {
	c := DictEncode(NewStringColumn([]string{"x", "y", "x"}))
	data := EncodeColumn(c)
	back, err := DecodeColumn(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.Enc != Dict || back.Len != 3 || back.Value(2).S != "x" {
		t.Fatalf("column round trip = %+v", back)
	}
	if _, err := DecodeColumn([]byte{0xFF}); err == nil {
		t.Fatal("garbage column should fail")
	}
	if _, err := DecodeColumn(nil); err == nil {
		t.Fatal("empty column should fail")
	}
}

func TestDecodeColumnTruncations(t *testing.T) {
	c := RLEncode(NewInt64Column([]int64{5, 5, 6}))
	data := EncodeColumn(c)
	for cut := 1; cut < len(data); cut += 3 {
		if _, err := DecodeColumn(data[:cut]); err == nil {
			t.Fatalf("truncation at %d decoded successfully", cut)
		}
	}
}

func TestAppendBatchWithNullsOnBothSides(t *testing.T) {
	schema := NewSchema(Field{"v", Int64})
	a := NewInt64Column([]int64{1, 2})
	a.Nulls = []bool{false, true}
	bcol := NewInt64Column([]int64{3})
	bcol.Nulls = []bool{true}
	got, err := AppendBatch(
		MustBatch(schema, []*Column{a}),
		MustBatch(schema, []*Column{bcol}),
	)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Cols[0].Value(1).IsNull() || !got.Cols[0].Value(2).IsNull() || got.Cols[0].Value(0).AsInt() != 1 {
		t.Fatalf("append nulls = %v %v %v", got.Cols[0].Value(0), got.Cols[0].Value(1), got.Cols[0].Value(2))
	}
}

func TestValueAsFloatNonNumeric(t *testing.T) {
	if StringValue("x").AsFloat() != 0 {
		t.Fatal("non-numeric AsFloat should be 0")
	}
	if FloatValue(2.5).AsInt() != 2 {
		t.Fatal("AsInt truncates floats")
	}
}
