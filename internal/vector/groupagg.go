package vector

// This file implements the grouped-aggregation kernel: GroupKeys
// assigns every row a dense group ID from typed multi-column keys
// (morsel-parallel, first-encounter group order), and GroupAggregate
// folds SUM/COUNT/MIN/MAX partials per group without per-row Value
// boxing.
//
// Determinism contract: results are bit-identical for every worker
// count. Group IDs follow global first-encounter (row) order because
// per-morsel local groupings are merged sequentially in morsel order.
// Integer adds and tie-broken min/max merge commutatively across
// workers; float SUM/MIN/MAX are not associative (and min/max folds
// are order-sensitive in the presence of NaN), so those run in a
// dedicated sequential pass in ascending row order — exactly the
// order the row-at-a-time path used.

// nullKeyHash is the hash contribution of a NULL group-key value.
// Unlike join keys, GROUP BY treats NULL as a regular key (all NULLs
// form one group).
var nullKeyHash = mix64(^uint64(0))

// Grouping is the outcome of GroupKeys: a dense group ID per row plus
// one representative row per group, both in first-encounter order.
type Grouping struct {
	NumGroups int
	IDs       []int32 // len == n; IDs[i] is row i's group
	Rep       []int32 // len == NumGroups; first row of each group (-1 if none)
}

// groupHashRange fills hashes[lo:hi] for grouping: like hashKeyRange
// but NULL key values contribute nullKeyHash instead of poisoning the
// row.
func groupHashRange(keys []keyAccess, hashes []uint64, lo, hi int) {
	for i := lo; i < hi; i++ {
		hashes[i] = 0x9e3779b97f4a7c15
	}
	for _, k := range keys {
		for i := lo; i < hi; i++ {
			if k.null(i) {
				hashes[i] = combineHash(hashes[i], nullKeyHash)
			} else {
				hashes[i] = combineHash(hashes[i], k.hash(i))
			}
		}
	}
}

// groupKeysEq reports group-key equality between rows i and j of the
// same key columns (NULL == NULL for grouping).
func groupKeysEq(keys []keyAccess, i, j int) bool {
	for k := range keys {
		ni, nj := keys[k].null(i), keys[k].null(j)
		if ni || nj {
			if ni != nj {
				return false
			}
			continue
		}
		if !valEq(keys[k], i, keys[k], j) {
			return false
		}
	}
	return true
}

// GroupKeys computes the grouping of n rows by the given key columns.
// With no key columns it returns the single global group (even over
// zero rows, matching SQL's global-aggregate-of-empty-input one-row
// semantics; Rep[0] is -1 in that case).
func GroupKeys(keys []*Column, n, workers int) Grouping {
	return GroupKeysWith(Mem{}, keys, n, workers)
}

// localTableSize is the per-worker open-addressing table used for
// morsel-local grouping: a power of two at least 2x MorselRows, so
// the table never exceeds half load and never needs to grow. Exact
// hash+key comparison makes the table size invisible in results.
const localTableSize = 8192

// GroupKeysWith is GroupKeys with an explicit memory policy. The
// per-morsel map[uint64][]int32 tables of the original implementation
// are replaced by reusable per-worker open-addressing tables and flat
// representative buffers — zero steady-state allocation — while
// producing the identical grouping (global first-encounter order,
// merged sequentially in morsel order).
func GroupKeysWith(m Mem, keys []*Column, n, workers int) Grouping {
	if workers < 1 {
		workers = 1
	}
	al := m.Allocator()
	if len(keys) == 0 {
		rep := []int32{0}
		if n == 0 {
			rep[0] = -1
		}
		return Grouping{NumGroups: 1, IDs: al.Int32s(n), Rep: rep}
	}
	if n == 0 {
		return Grouping{}
	}
	ka := make([]keyAccess, len(keys))
	for i, c := range keys {
		ka[i] = newKeyAccessWith(al, c)
	}

	hashes := al.Uint64s(n)
	forMorsels(n, workers, func(_, _, lo, hi int) {
		groupHashRange(ka, hashes, lo, hi)
	})

	mc := morselCount(n)
	nw := workers
	if nw > mc {
		nw = mc
	}
	ids := al.Int32s(n)

	// Per-morsel local grouping (parallel): local IDs in local
	// first-encounter order written straight into ids, representatives
	// appended to a flat per-worker buffer. tabs hold the local row of
	// each occupied slot's representative relative to the morsel's
	// base; touched lists make the reset between morsels O(groups).
	tabs := make([][]int32, nw)
	touch := make([][]int32, nw)
	repBufs := make([][]int32, nw)
	repWorker := al.Int32s(mc)
	repOff := al.Int32s(mc)
	repLen := al.Int32s(mc)
	forMorsels(n, nw, func(w, mor, lo, hi int) {
		tab := tabs[w]
		if tab == nil {
			tab = al.Int32s(localTableSize)
			for i := range tab {
				tab[i] = -1
			}
			tabs[w] = tab
		}
		tb := touch[w][:0]
		rb := repBufs[w]
		base := int32(len(rb))
		for i := lo; i < hi; i++ {
			h := hashes[i]
			slot := int(h & (localTableSize - 1))
			var id int32
			for {
				cand := tab[slot]
				if cand < 0 {
					id = int32(len(rb)) - base
					rb = appendI32(al, rb, int32(i))
					tab[slot] = id
					tb = appendI32(al, tb, int32(slot))
					break
				}
				rep := rb[base+cand]
				if hashes[rep] == h && groupKeysEq(ka, i, int(rep)) {
					id = cand
					break
				}
				slot = (slot + 1) & (localTableSize - 1)
			}
			ids[i] = id
		}
		for _, s := range tb {
			tab[s] = -1
		}
		repBufs[w] = rb
		touch[w] = tb[:0]
		repWorker[mor], repOff[mor], repLen[mor] = int32(w), base, int32(len(rb))-base
	})

	// Sequential merge in morsel order: global group IDs come out in
	// global first-encounter order regardless of worker count. The
	// global table is open-addressing too, sized for half load.
	totalReps := 0
	for m2 := 0; m2 < mc; m2++ {
		totalReps += int(repLen[m2])
	}
	gsize := 8
	for gsize < 2*totalReps {
		gsize <<= 1
	}
	gtab := al.Int32s(gsize)
	for i := range gtab {
		gtab[i] = -1
	}
	gmask := gsize - 1
	repArr := al.Int32s(totalReps)
	trans := al.Int32s(totalReps)
	tBase := al.Int32s(mc)
	nGroups := 0
	tb := 0
	for m2 := 0; m2 < mc; m2++ {
		tBase[m2] = int32(tb)
		rb := repBufs[repWorker[m2]]
		for li := 0; li < int(repLen[m2]); li++ {
			r := rb[int(repOff[m2])+li]
			h := hashes[r]
			slot := int(h) & gmask
			var gid int32
			for {
				cand := gtab[slot]
				if cand < 0 {
					gid = int32(nGroups)
					repArr[nGroups] = r
					nGroups++
					gtab[slot] = gid
					break
				}
				gr := repArr[cand]
				if hashes[gr] == h && groupKeysEq(ka, int(r), int(gr)) {
					gid = cand
					break
				}
				slot = (slot + 1) & gmask
			}
			trans[tb+li] = gid
		}
		tb += int(repLen[m2])
	}

	// Parallel translation of local IDs to global IDs.
	forMorsels(n, nw, func(_, mor, lo, hi int) {
		b := int(tBase[mor])
		for i := lo; i < hi; i++ {
			ids[i] = trans[b+int(ids[i])]
		}
	})
	return Grouping{NumGroups: nGroups, IDs: ids, Rep: repArr[:nGroups]}
}

// AggSpec describes one grouped aggregate: Kind applied to Col. A nil
// Col means COUNT(*) — every row of the group counts, NULL or not
// (only valid with AggCount).
type AggSpec struct {
	Kind AggKind
	Col  *Column
}

// aggPartial holds one worker's (or the sequential pass's) per-group
// accumulator state for a single spec.
type aggPartial struct {
	cnt    []int64   // rows folded (non-null; all rows for COUNT(*))
	sumI   []int64   // integer SUM
	sumF   []float64 // float SUM (sequential pass only)
	set    []bool    // MIN/MAX: group has a value
	accI   []int64   // MIN/MAX acc for Int64/Timestamp
	accF   []float64 // MIN/MAX acc for Float64 (sequential pass only)
	accS   []string  // MIN/MAX acc for String/Bytes
	accB   []bool    // MIN/MAX acc for Bool
	accRow []int32   // row index of the current MIN/MAX acc (merge tie-break)
}

func newAggPartial(al Alloc, sp AggSpec, numGroups int) *aggPartial {
	p := &aggPartial{cnt: al.Int64s(numGroups)}
	if sp.Col == nil {
		return p
	}
	switch sp.Kind {
	case AggSum:
		if sp.Col.Type == Float64 {
			p.sumF = al.Float64s(numGroups)
		} else {
			p.sumI = al.Int64s(numGroups)
		}
	case AggMin, AggMax:
		p.set = al.Bools(numGroups)
		p.accRow = al.Int32s(numGroups)
		switch sp.Col.Type {
		case Int64, Timestamp:
			p.accI = al.Int64s(numGroups)
		case Float64:
			p.accF = al.Float64s(numGroups)
		case Bool:
			p.accB = al.Bools(numGroups)
		default:
			p.accS = al.Strings(numGroups)
		}
	}
	return p
}

// sequentialSpec reports whether a spec must be folded in ascending
// row order on one goroutine: float accumulation is not associative
// (SUM), and the historical min/max fold is order-sensitive when NaNs
// are present, so all Float64 folds except COUNT stay sequential.
func sequentialSpec(sp AggSpec) bool {
	return sp.Col != nil && sp.Col.Type == Float64 && sp.Kind != AggCount
}

// accumRange folds rows [lo, hi) of one spec into a partial. The
// caller guarantees each worker's ranges arrive in ascending row
// order, so the strict-replace min/max fold records the smallest row
// of the worker's best tie class in accRow.
func accumRange(p *aggPartial, sp AggSpec, ka keyAccess, ids []int32, lo, hi int) {
	if sp.Col == nil {
		for i := lo; i < hi; i++ {
			p.cnt[ids[i]]++
		}
		return
	}
	switch sp.Kind {
	case AggCount:
		for i := lo; i < hi; i++ {
			if !ka.null(i) {
				p.cnt[ids[i]]++
			}
		}
	case AggSum:
		switch ka.c.Type {
		case Int64, Timestamp:
			for i := lo; i < hi; i++ {
				if ka.null(i) {
					continue
				}
				g := ids[i]
				p.cnt[g]++
				p.sumI[g] += ka.c.Ints[ka.valIdx(i)]
			}
		case Float64:
			for i := lo; i < hi; i++ {
				if ka.null(i) {
					continue
				}
				g := ids[i]
				p.cnt[g]++
				p.sumF[g] += ka.c.Floats[ka.valIdx(i)]
			}
		default:
			// Bool/String/Bytes SUM historically summed Value.I, which
			// is always 0 for these types: count rows, sum stays 0.
			for i := lo; i < hi; i++ {
				if !ka.null(i) {
					p.cnt[ids[i]]++
				}
			}
		}
	case AggMin, AggMax:
		min := sp.Kind == AggMin
		switch ka.c.Type {
		case Int64, Timestamp:
			for i := lo; i < hi; i++ {
				if ka.null(i) {
					continue
				}
				g := ids[i]
				v := ka.c.Ints[ka.valIdx(i)]
				if !p.set[g] {
					p.set[g], p.accI[g], p.accRow[g] = true, v, int32(i)
					continue
				}
				// Historical ordering compares numerics as float64.
				c := cmpFloat(float64(v), float64(p.accI[g]))
				if (min && c < 0) || (!min && c > 0) {
					p.accI[g], p.accRow[g] = v, int32(i)
				}
			}
		case Float64:
			for i := lo; i < hi; i++ {
				if ka.null(i) {
					continue
				}
				g := ids[i]
				v := ka.c.Floats[ka.valIdx(i)]
				if !p.set[g] {
					p.set[g], p.accF[g], p.accRow[g] = true, v, int32(i)
					continue
				}
				c := cmpFloat(v, p.accF[g])
				if (min && c < 0) || (!min && c > 0) {
					p.accF[g], p.accRow[g] = v, int32(i)
				}
			}
		case Bool:
			for i := lo; i < hi; i++ {
				if ka.null(i) {
					continue
				}
				g := ids[i]
				v := ka.c.Bools[ka.valIdx(i)]
				if !p.set[g] {
					p.set[g], p.accB[g], p.accRow[g] = true, v, int32(i)
					continue
				}
				c := cmpBool(v, p.accB[g])
				if (min && c < 0) || (!min && c > 0) {
					p.accB[g], p.accRow[g] = v, int32(i)
				}
			}
		default:
			for i := lo; i < hi; i++ {
				if ka.null(i) {
					continue
				}
				g := ids[i]
				v := ka.c.Strs[ka.valIdx(i)]
				if !p.set[g] {
					p.set[g], p.accS[g], p.accRow[g] = true, v, int32(i)
					continue
				}
				c := cmpString(v, p.accS[g])
				if (min && c < 0) || (!min && c > 0) {
					p.accS[g], p.accRow[g] = v, int32(i)
				}
			}
		}
	}
}

// mergePartial folds src into dst. Sums and counts add; min/max keeps
// the strictly better value and breaks ties toward the smaller row
// index, which is commutative and reproduces the sequential
// keep-first fold for every type this path handles (no NaNs: Float64
// never takes this path).
func mergePartial(dst, src *aggPartial, sp AggSpec, numGroups int) {
	for g := 0; g < numGroups; g++ {
		dst.cnt[g] += src.cnt[g]
	}
	if sp.Col == nil {
		return
	}
	switch sp.Kind {
	case AggSum:
		if dst.sumI != nil {
			for g := 0; g < numGroups; g++ {
				dst.sumI[g] += src.sumI[g]
			}
		}
	case AggMin, AggMax:
		min := sp.Kind == AggMin
		for g := 0; g < numGroups; g++ {
			if !src.set[g] {
				continue
			}
			if !dst.set[g] {
				dst.set[g], dst.accRow[g] = true, src.accRow[g]
				copyAcc(dst, src, sp.Col.Type, g)
				continue
			}
			var c int
			switch sp.Col.Type {
			case Int64, Timestamp:
				c = cmpFloat(float64(src.accI[g]), float64(dst.accI[g]))
			case Bool:
				c = cmpBool(src.accB[g], dst.accB[g])
			default:
				c = cmpString(src.accS[g], dst.accS[g])
			}
			better := (min && c < 0) || (!min && c > 0)
			if better || (c == 0 && src.accRow[g] < dst.accRow[g]) {
				dst.accRow[g] = src.accRow[g]
				copyAcc(dst, src, sp.Col.Type, g)
			}
		}
	}
}

func copyAcc(dst, src *aggPartial, t Type, g int) {
	switch t {
	case Int64, Timestamp:
		dst.accI[g] = src.accI[g]
	case Bool:
		dst.accB[g] = src.accB[g]
	default:
		dst.accS[g] = src.accS[g]
	}
}

// finishSpec materializes the per-group result Values of one spec,
// matching the row-at-a-time semantics: COUNT is never NULL; SUM and
// MIN/MAX over zero non-null rows are NULL; integer-family SUM yields
// Int64 (even for Timestamp inputs); MIN/MAX keep the column's type.
func finishSpec(p *aggPartial, sp AggSpec, out []Value) {
	switch sp.Kind {
	case AggCount:
		for g := range out {
			out[g] = IntValue(p.cnt[g])
		}
	case AggSum:
		for g := range out {
			if p.cnt[g] == 0 {
				out[g] = NullValue
			} else if p.sumF != nil {
				out[g] = FloatValue(p.sumF[g])
			} else {
				out[g] = IntValue(p.sumI[g])
			}
		}
	case AggMin, AggMax:
		for g := range out {
			if !p.set[g] {
				out[g] = NullValue
				continue
			}
			switch sp.Col.Type {
			case Int64:
				out[g] = IntValue(p.accI[g])
			case Timestamp:
				out[g] = TimestampValue(p.accI[g])
			case Float64:
				out[g] = FloatValue(p.accF[g])
			case Bool:
				out[g] = BoolValue(p.accB[g])
			case String:
				out[g] = StringValue(p.accS[g])
			default:
				out[g] = Value{Type: Bytes, S: p.accS[g]}
			}
		}
	}
}

// GroupAggregate computes the given aggregates per group and returns
// results[spec][group]. ids and numGroups come from GroupKeys;
// workers bounds the morsel-parallel fan-out. Associative folds
// (COUNT, integer SUM, tie-broken MIN/MAX) run morsel-parallel with
// per-worker partials; Float64 SUM/MIN/MAX fold sequentially in row
// order so float results stay bit-identical to the sequential path.
func GroupAggregate(ids []int32, numGroups int, specs []AggSpec, workers int) [][]Value {
	return GroupAggregateWith(Mem{}, ids, numGroups, specs, workers)
}

// GroupAggregateWith is GroupAggregate taking accumulator arrays (and
// dictionary hash caches) from m's allocator.
func GroupAggregateWith(m Mem, ids []int32, numGroups int, specs []AggSpec, workers int) [][]Value {
	if workers < 1 {
		workers = 1
	}
	al := m.Allocator()
	n := len(ids)

	kas := make([]keyAccess, len(specs))
	for s, sp := range specs {
		if sp.Col != nil {
			kas[s] = newKeyAccessWith(al, sp.Col)
		}
	}

	nWorkers := workers
	if m := morselCount(n); nWorkers > m {
		nWorkers = m
	}
	if nWorkers < 1 {
		nWorkers = 1
	}
	partials := make([][]*aggPartial, nWorkers)
	for w := range partials {
		partials[w] = make([]*aggPartial, len(specs))
		for s := range specs {
			if !sequentialSpec(specs[s]) {
				partials[w][s] = newAggPartial(al, specs[s], numGroups)
			}
		}
	}
	forMorsels(n, nWorkers, func(w, _, lo, hi int) {
		for s := range specs {
			if p := partials[w][s]; p != nil {
				accumRange(p, specs[s], kas[s], ids, lo, hi)
			}
		}
	})

	// Result rows for all specs share one flat backing array — the
	// group count is known, so per-spec appends would only fragment.
	out := make([][]Value, len(specs))
	flat := make([]Value, len(specs)*numGroups)
	for s, sp := range specs {
		var merged *aggPartial
		if sequentialSpec(sp) {
			merged = newAggPartial(al, sp, numGroups)
			accumRange(merged, sp, kas[s], ids, 0, n)
		} else {
			merged = partials[0][s]
			for w := 1; w < nWorkers; w++ {
				mergePartial(merged, partials[w][s], sp, numGroups)
			}
		}
		out[s] = flat[s*numGroups : (s+1)*numGroups]
		finishSpec(merged, sp, out[s])
	}
	return out
}
