package vector

import (
	"fmt"
	"math"
	"reflect"
	"strings"
	"testing"
)

// refKey renders the historical string join/group key for a row:
// "%d|%s|" per column — the semantics the typed kernels must match.
func refKey(cols []*Column, row int) (string, bool) {
	var sb strings.Builder
	anyNull := false
	for _, c := range cols {
		v := c.Value(row)
		if v.IsNull() {
			anyNull = true
		}
		fmt.Fprintf(&sb, "%d|%s|", v.Type, v.String())
	}
	return sb.String(), anyNull
}

// refJoin is the sequential string-keyed join the engine used to run.
func refJoin(left, right *Batch, lk, rk []int, kind JoinKind) JoinResult {
	pick := func(b *Batch, keys []int) []*Column {
		out := make([]*Column, len(keys))
		for i, k := range keys {
			out[i] = b.Cols[k]
		}
		return out
	}
	lc, rc := pick(left, lk), pick(right, rk)
	build := map[string][]int32{}
	for r := 0; r < right.N; r++ {
		key, null := refKey(rc, r)
		if null {
			continue
		}
		build[key] = append(build[key], int32(r))
	}
	var res JoinResult
	for l := 0; l < left.N; l++ {
		key, null := refKey(lc, l)
		matches := build[key]
		if null || len(matches) == 0 {
			if kind == LeftOuterJoin {
				res.LeftOuter = append(res.LeftOuter, int32(l))
			}
			continue
		}
		for _, r := range matches {
			res.Left = append(res.Left, int32(l))
			res.Right = append(res.Right, r)
		}
	}
	return res
}

func joinEq(a, b JoinResult) bool {
	norm := func(s []int32) []int32 {
		if len(s) == 0 {
			return nil
		}
		return s
	}
	return reflect.DeepEqual(norm(a.Left), norm(b.Left)) &&
		reflect.DeepEqual(norm(a.Right), norm(b.Right)) &&
		reflect.DeepEqual(norm(a.LeftOuter), norm(b.LeftOuter))
}

func intCol(vals []int64, nulls ...int) *Column {
	c := NewInt64Column(vals)
	for _, i := range nulls {
		if c.Nulls == nil {
			c.Nulls = make([]bool, len(vals))
		}
		c.Nulls[i] = true
	}
	return c
}

func batchOf(cols ...*Column) *Batch {
	fields := make([]Field, len(cols))
	for i, c := range cols {
		fields[i] = Field{Name: fmt.Sprintf("c%d", i), Type: c.Type}
	}
	return MustBatch(Schema{Fields: fields}, cols)
}

var workerCounts = []int{1, 2, 3, 4, 8}

func checkJoinAllWorkers(t *testing.T, left, right *Batch, lk, rk []int, kind JoinKind) {
	t.Helper()
	want := refJoin(left, right, lk, rk, kind)
	for _, w := range workerCounts {
		got, err := HashJoin(left, right, lk, rk, kind, w)
		if err != nil {
			t.Fatalf("HashJoin(workers=%d): %v", w, err)
		}
		if !joinEq(got, want) {
			t.Fatalf("HashJoin(workers=%d) mismatch:\n got %+v\nwant %+v", w, got, want)
		}
	}
}

func TestHashJoinMatchesReference(t *testing.T) {
	left := batchOf(
		intCol([]int64{1, 2, 3, 2, 5, 0}, 5),
		NewStringColumn([]string{"a", "b", "c", "b", "e", "f"}),
	)
	right := batchOf(
		intCol([]int64{2, 2, 3, 7, 0}, 4),
		NewStringColumn([]string{"b", "x", "c", "y", "f"}),
	)
	for _, kind := range []JoinKind{InnerJoin, LeftOuterJoin} {
		checkJoinAllWorkers(t, left, right, []int{0}, []int{0}, kind)
		checkJoinAllWorkers(t, left, right, []int{0, 1}, []int{0, 1}, kind)
	}
}

func TestHashJoinEncodedKeys(t *testing.T) {
	strs := make([]string, 500)
	ints := make([]int64, 500)
	for i := range strs {
		strs[i] = fmt.Sprintf("k%d", i%7)
		ints[i] = int64(i % 5)
	}
	left := batchOf(DictEncode(NewStringColumn(strs)), RLEncode(NewInt64Column(ints)))
	right := batchOf(NewStringColumn(strs[:40]), NewInt64Column(ints[:40]))
	for _, kind := range []JoinKind{InnerJoin, LeftOuterJoin} {
		checkJoinAllWorkers(t, left, right, []int{0, 1}, []int{0, 1}, kind)
	}
}

func TestHashJoinFloatKeys(t *testing.T) {
	nan := math.NaN()
	left := batchOf(NewFloat64Column([]float64{1.5, nan, math.Copysign(0, -1), 0, 2.5}))
	right := batchOf(NewFloat64Column([]float64{nan, 0, 1.5, math.Copysign(0, -1)}))
	for _, kind := range []JoinKind{InnerJoin, LeftOuterJoin} {
		checkJoinAllWorkers(t, left, right, []int{0}, []int{0}, kind)
	}
}

func TestHashJoinTypeMismatchNeverMatches(t *testing.T) {
	// Int64(1) must not match Timestamp(1) or Float64(1.0): type is
	// part of key identity.
	left := batchOf(NewInt64Column([]int64{1, 2}))
	for _, rc := range []*Column{
		NewTimestampColumn([]int64{1, 2}),
		NewFloat64Column([]float64{1, 2}),
	} {
		right := batchOf(rc)
		got, err := HashJoin(left, right, []int{0}, []int{0}, InnerJoin, 2)
		if err != nil || len(got.Left) != 0 {
			t.Fatalf("type-mismatched join produced %d pairs (err %v)", len(got.Left), err)
		}
		got, err = HashJoin(left, right, []int{0}, []int{0}, LeftOuterJoin, 2)
		if err != nil || len(got.LeftOuter) != 2 {
			t.Fatalf("type-mismatched LEFT join: outer=%v err=%v", got.LeftOuter, err)
		}
	}
}

func TestHashJoinEmptyInputs(t *testing.T) {
	empty := batchOf(NewInt64Column(nil))
	full := batchOf(NewInt64Column([]int64{1, 2, 3}))
	for _, kind := range []JoinKind{InnerJoin, LeftOuterJoin} {
		checkJoinAllWorkers(t, empty, full, []int{0}, []int{0}, kind)
		checkJoinAllWorkers(t, full, empty, []int{0}, []int{0}, kind)
		checkJoinAllWorkers(t, empty, empty, []int{0}, []int{0}, kind)
	}
}

func TestHashJoinLarge(t *testing.T) {
	n := 3*MorselRows + 137
	lk := make([]int64, n)
	for i := range lk {
		lk[i] = int64(i*2654435761) % 997
	}
	rk := make([]int64, 2000)
	for i := range rk {
		rk[i] = int64(i*40503) % 997
	}
	left := batchOf(intCol(lk, 17, 4096, 9000))
	right := batchOf(intCol(rk, 3))
	for _, kind := range []JoinKind{InnerJoin, LeftOuterJoin} {
		checkJoinAllWorkers(t, left, right, []int{0}, []int{0}, kind)
	}
}

// refGroup is the sequential string-keyed grouping the engine used.
func refGroup(cols []*Column, n int) (ids []int32, reps []int32) {
	ids = make([]int32, n)
	seen := map[string]int32{}
	for r := 0; r < n; r++ {
		key, _ := refKey(cols, r)
		id, ok := seen[key]
		if !ok {
			id = int32(len(reps))
			seen[key] = id
			reps = append(reps, int32(r))
		}
		ids[r] = id
	}
	return ids, reps
}

func checkGroupAllWorkers(t *testing.T, cols []*Column, n int) Grouping {
	t.Helper()
	wantIDs, wantReps := refGroup(cols, n)
	var first Grouping
	for _, w := range workerCounts {
		g := GroupKeys(cols, n, w)
		if g.NumGroups != len(wantReps) ||
			!reflect.DeepEqual(norm32(g.IDs), norm32(wantIDs)) ||
			!reflect.DeepEqual(norm32(g.Rep), norm32(wantReps)) {
			t.Fatalf("GroupKeys(workers=%d):\n got %+v\nwant ids=%v reps=%v", w, g, wantIDs, wantReps)
		}
		if w == 1 {
			first = g
		}
	}
	return first
}

func norm32(s []int32) []int32 {
	if len(s) == 0 {
		return nil
	}
	return s
}

func TestGroupKeysMatchesReference(t *testing.T) {
	n := 2*MorselRows + 333
	ints := make([]int64, n)
	strs := make([]string, n)
	var nullRows []int
	for i := range ints {
		ints[i] = int64(i % 13)
		strs[i] = fmt.Sprintf("g%d", i%4)
		if i%97 == 0 {
			nullRows = append(nullRows, i)
		}
	}
	ic := intCol(ints, nullRows...)
	checkGroupAllWorkers(t, []*Column{ic}, n)
	checkGroupAllWorkers(t, []*Column{ic, NewStringColumn(strs)}, n)
	checkGroupAllWorkers(t, []*Column{DictEncode(NewStringColumn(strs)), RLEncode(ic.Decode())}, n)
}

func TestGroupKeysFloatAndTypeIdentity(t *testing.T) {
	nan := math.NaN()
	// NaNs group together; -0 and +0 are distinct groups (they render
	// differently); NULL forms its own group.
	c := NewFloat64Column([]float64{nan, 0, math.Copysign(0, -1), nan, 0, 1})
	c.Nulls = []bool{false, false, false, false, false, true}
	checkGroupAllWorkers(t, []*Column{c}, c.Len)
}

func TestGroupKeysNoKeys(t *testing.T) {
	g := GroupKeys(nil, 10, 4)
	if g.NumGroups != 1 || g.Rep[0] != 0 || len(g.IDs) != 10 {
		t.Fatalf("no-key grouping: %+v", g)
	}
	g = GroupKeys(nil, 0, 4)
	if g.NumGroups != 1 || g.Rep[0] != -1 || len(g.IDs) != 0 {
		t.Fatalf("no-key empty grouping: %+v", g)
	}
	g = GroupKeys([]*Column{NewInt64Column(nil)}, 0, 4)
	if g.NumGroups != 0 || len(g.IDs) != 0 {
		t.Fatalf("keyed empty grouping: %+v", g)
	}
}

// refAggregate folds one spec with the historical mask-based path.
func refAggregate(sp AggSpec, ids []int32, numGroups, n int) []Value {
	out := make([]Value, numGroups)
	for g := 0; g < numGroups; g++ {
		mask := make([]bool, n)
		rows := 0
		for i, id := range ids {
			if int(id) == g {
				mask[i] = true
				rows++
			}
		}
		if sp.Col == nil {
			out[g] = IntValue(int64(rows))
			continue
		}
		out[g] = Aggregate(sp.Col, sp.Kind, mask)
	}
	return out
}

func TestGroupAggregateMatchesReference(t *testing.T) {
	n := 2*MorselRows + 501
	keys := make([]int64, n)
	ints := make([]int64, n)
	floats := make([]float64, n)
	strs := make([]string, n)
	ts := make([]int64, n)
	var nullRows []int
	for i := 0; i < n; i++ {
		keys[i] = int64(i % 37)
		ints[i] = int64((i*7919)%1000) - 500
		floats[i] = float64(i%100) * 0.1
		strs[i] = fmt.Sprintf("s%03d", (i*31)%200)
		ts[i] = int64(i * 1000)
		if i%53 == 0 {
			nullRows = append(nullRows, i)
		}
	}
	floats[5] = math.NaN()
	floats[MorselRows+7] = math.NaN()
	floats[17] = math.Copysign(0, -1)
	fc := NewFloat64Column(floats)
	g := GroupKeys([]*Column{NewInt64Column(keys)}, n, 4)

	specs := []AggSpec{
		{Kind: AggCount, Col: nil},
		{Kind: AggCount, Col: intCol(ints, nullRows...)},
		{Kind: AggSum, Col: intCol(ints, nullRows...)},
		{Kind: AggSum, Col: fc},
		{Kind: AggSum, Col: NewStringColumn(strs)},
		{Kind: AggMin, Col: intCol(ints, nullRows...)},
		{Kind: AggMax, Col: intCol(ints, nullRows...)},
		{Kind: AggMin, Col: fc},
		{Kind: AggMax, Col: fc},
		{Kind: AggMin, Col: NewStringColumn(strs)},
		{Kind: AggMax, Col: NewStringColumn(strs)},
		{Kind: AggMin, Col: NewTimestampColumn(ts)},
		{Kind: AggMax, Col: NewTimestampColumn(ts)},
		{Kind: AggMin, Col: DictEncode(NewStringColumn(strs))},
		{Kind: AggMax, Col: RLEncode(intCol(ints, nullRows...))},
		{Kind: AggMin, Col: NewBoolColumn(makeBools(n))},
		{Kind: AggMax, Col: NewBoolColumn(makeBools(n))},
	}
	for _, w := range workerCounts {
		got := GroupAggregate(g.IDs, g.NumGroups, specs, w)
		for s, sp := range specs {
			want := refAggregate(sp, g.IDs, g.NumGroups, n)
			if !valuesBitEqual(got[s], want) {
				t.Fatalf("spec %d (%v, col %v) workers=%d:\n got %v\nwant %v",
					s, sp.Kind, colType(sp.Col), w, got[s], want)
			}
		}
	}
}

func TestGroupAggregateEmptyAndAllNull(t *testing.T) {
	// Zero rows with grouping: no groups, no values.
	out := GroupAggregate(nil, 0, []AggSpec{{Kind: AggCount}}, 4)
	if len(out[0]) != 0 {
		t.Fatalf("empty aggregate: %v", out)
	}
	// All-null column: SUM/MIN/MAX are NULL, COUNT is 0.
	n := 6
	c := intCol(make([]int64, n), 0, 1, 2, 3, 4, 5)
	ids := make([]int32, n)
	out = GroupAggregate(ids, 1, []AggSpec{
		{Kind: AggSum, Col: c}, {Kind: AggMin, Col: c}, {Kind: AggCount, Col: c},
	}, 4)
	if !out[0][0].IsNull() || !out[1][0].IsNull() || out[2][0].I != 0 {
		t.Fatalf("all-null aggregate: %v", out)
	}
}

func makeBools(n int) []bool {
	out := make([]bool, n)
	for i := range out {
		out[i] = i%3 == 0
	}
	return out
}

func colType(c *Column) Type {
	if c == nil {
		return Invalid
	}
	return c.Type
}

// valuesBitEqual compares aggregate outputs bit-exactly (floats by
// bits, so +0 != -0 and NaN == NaN — result determinism, not SQL
// equality).
func valuesBitEqual(a, b []Value) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		x, y := a[i], b[i]
		if x.Type != y.Type || x.I != y.I || x.S != y.S || x.B != y.B {
			return false
		}
		if math.Float64bits(x.F) != math.Float64bits(y.F) {
			return false
		}
	}
	return true
}

func TestHeadAndGatherNull(t *testing.T) {
	base := intCol([]int64{10, 20, 30, 40, 50}, 2)
	for _, c := range []*Column{base, DictEncode(base.Decode()), RLEncode(base.Decode())} {
		h := Head(c, 3)
		if h.Len != 3 {
			t.Fatalf("Head len %d", h.Len)
		}
		for i := 0; i < 3; i++ {
			if !h.Value(i).Equal(c.Value(i)) {
				t.Fatalf("Head(%v) row %d: %v != %v", c.Enc, i, h.Value(i), c.Value(i))
			}
		}
		g := GatherNull(c, []int32{4, -1, 2, 0})
		want := []Value{IntValue(50), NullValue, NullValue, IntValue(10)}
		for i, wv := range want {
			if !g.Value(i).Equal(wv) {
				t.Fatalf("GatherNull(%v) row %d: %v != %v", c.Enc, i, g.Value(i), wv)
			}
		}
	}
	nc := NullColumn(String, 4)
	for i := 0; i < 4; i++ {
		if !nc.Value(i).IsNull() {
			t.Fatalf("NullColumn row %d not null", i)
		}
	}
}
