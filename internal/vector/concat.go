package vector

import "fmt"

// ConcatBatchesWith concatenates batches in order into one batch in a
// single pass — the multi-file scan merge. Unlike pairwise AppendBatch
// (which decodes both sides and re-copies the accumulated prefix for
// every part, O(parts²) bytes), this sizes the output once and copies
// each part exactly once, drawing output arrays from m's allocator.
// Dict and RLE parts are expanded in place without materializing an
// intermediate Decode copy; under m.LateMat a string column whose
// parts are all Dict stays Dict, with the per-file dictionaries merged
// and codes translated, so strings keep flowing as codes past the
// scan boundary.
//
// Nil parts are skipped. Returns (nil, nil) when no parts remain, and
// the sole part unchanged when only one remains (zero copy, matching
// the AppendBatch(nil, b) fold it replaces).
func ConcatBatchesWith(m Mem, parts []*Batch) (*Batch, error) {
	live := parts[:0:0]
	total := 0
	for _, p := range parts {
		if p == nil {
			continue
		}
		live = append(live, p)
		total += p.N
	}
	if len(live) == 0 {
		return nil, nil
	}
	if len(live) == 1 {
		return live[0], nil
	}
	schema := live[0].Schema
	for _, p := range live[1:] {
		if !p.Schema.Equal(schema) {
			return nil, fmt.Errorf("vector: concat schema mismatch %v vs %v", schema, p.Schema)
		}
	}
	al := m.Allocator()
	cols := make([]*Column, len(live[0].Cols))
	for ci := range cols {
		t := live[0].Cols[ci].Type
		out := &Column{Type: t, Len: total, Enc: Plain, Pooled: m.Pooled()}
		var nulls []bool
		nullAt := func(i int) {
			if nulls == nil {
				nulls = al.Bools(total)
			}
			nulls[i] = true
		}
		switch t {
		case Int64, Timestamp:
			out.Ints = al.Int64s(total)
			concatCol(out.Ints, func(c *Column) []int64 { return c.Ints }, live, ci, nullAt)
		case Float64:
			out.Floats = al.Float64s(total)
			concatCol(out.Floats, func(c *Column) []float64 { return c.Floats }, live, ci, nullAt)
		case Bool:
			out.Bools = al.Bools(total)
			concatCol(out.Bools, func(c *Column) []bool { return c.Bools }, live, ci, nullAt)
		case String, Bytes:
			if m.LateMat && allDictParts(live, ci) {
				cols[ci] = concatDictStrings(al, m, total, live, ci)
				continue
			}
			out.Strs = al.Strings(total)
			concatCol(out.Strs, func(c *Column) []string { return c.Strs }, live, ci, nullAt)
		}
		out.Nulls = nulls
		cols[ci] = out
	}
	return &Batch{Schema: schema, Cols: cols, N: total}, nil
}

// concatCol copies one column position of every part into dst,
// expanding Dict codes and RLE runs without an intermediate decode.
func concatCol[T any](dst []T, arr func(*Column) []T, parts []*Batch, ci int, nullAt func(int)) {
	off := 0
	for _, p := range parts {
		c := p.Cols[ci]
		src := arr(c)
		switch c.Enc {
		case Plain:
			copy(dst[off:], src)
			for i, isNull := range c.Nulls {
				if isNull {
					nullAt(off + i)
				}
			}
		case Dict:
			for i, code := range c.Codes {
				if code == NullIdx {
					nullAt(off + i)
				} else {
					dst[off+i] = src[code]
				}
			}
		case RLE:
			i := off
			for _, r := range c.Runs {
				if r.ValIdx == NullIdx {
					for k := uint32(0); k < r.Count; k++ {
						nullAt(i)
						i++
					}
				} else {
					v := src[r.ValIdx]
					for k := uint32(0); k < r.Count; k++ {
						dst[i] = v
						i++
					}
				}
			}
		}
		off += c.Len
	}
}

// allDictParts reports whether every non-empty part at ci is Dict.
func allDictParts(parts []*Batch, ci int) bool {
	for _, p := range parts {
		if c := p.Cols[ci]; c.Len > 0 && c.Enc != Dict {
			return false
		}
	}
	return true
}

// concatDictStrings merges per-part string dictionaries into one and
// translates codes, keeping the column Dict across the scan merge. The
// merged dictionary is heap-owned (it is small and shared downstream);
// the code array comes from the allocator.
func concatDictStrings(al Alloc, m Mem, total int, parts []*Batch, ci int) *Column {
	out := &Column{Type: parts[0].Cols[ci].Type, Len: total, Enc: Dict, Pooled: m.Pooled()}
	codes := al.Uint32s(total)
	var vals []string
	merged := map[string]uint32{}
	off := 0
	for _, p := range parts {
		c := p.Cols[ci]
		if c.Len == 0 {
			continue
		}
		trans := al.Uint32s(len(c.Strs))
		for i, s := range c.Strs {
			code, ok := merged[s]
			if !ok {
				code = uint32(len(vals))
				merged[s] = code
				vals = append(vals, s)
			}
			trans[i] = code
		}
		for i, code := range c.Codes {
			if code == NullIdx {
				codes[off+i] = NullIdx
			} else {
				codes[off+i] = trans[code]
			}
		}
		off += c.Len
	}
	out.Codes = codes
	out.Strs = vals
	return out
}
