package vector

import (
	"sync"
	"sync/atomic"
)

// MorselRows is the fixed morsel size of the parallel kernels. It is a
// constant — never derived from the worker count — so the unit of work
// (and therefore every morsel-indexed merge order) is identical no
// matter how many workers execute the plan. That is what makes the
// operators deterministic: worker count changes scheduling, not
// results.
const MorselRows = 4096

// morselCount returns the number of fixed-size morsels covering n rows.
func morselCount(n int) int {
	return (n + MorselRows - 1) / MorselRows
}

// morselBounds returns the [lo, hi) row range of morsel m.
func morselBounds(m, n int) (int, int) {
	lo := m * MorselRows
	hi := lo + MorselRows
	if hi > n {
		hi = n
	}
	return lo, hi
}

// forMorsels fans fn out over the morsels of n rows using at most
// `workers` goroutines. fn receives (worker, morsel, lo, hi); morsels
// are claimed dynamically (work stealing via a shared counter), so a
// given worker's morsel set is scheduling-dependent — callers must
// only produce output that is indexed by morsel or commutative per
// worker. With one worker (or one morsel) everything runs inline on
// the calling goroutine.
func forMorsels(n, workers int, fn func(worker, morsel, lo, hi int)) {
	morsels := morselCount(n)
	if workers > morsels {
		workers = morsels
	}
	if workers <= 1 {
		for m := 0; m < morsels; m++ {
			lo, hi := morselBounds(m, n)
			fn(0, m, lo, hi)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for {
				m := int(next.Add(1)) - 1
				if m >= morsels {
					return
				}
				lo, hi := morselBounds(m, n)
				fn(w, m, lo, hi)
			}
		}(w)
	}
	wg.Wait()
}

// parallelEach runs fn(i) for i in [0, n) over at most `workers`
// goroutines; used for per-column / per-partition fan-out.
func parallelEach(n, workers int, fn func(i int)) {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

// JoinKind selects the join semantics of HashJoin.
type JoinKind uint8

// Join kinds.
const (
	InnerJoin JoinKind = iota
	LeftOuterJoin
)

// JoinResult is the index-pair outcome of a hash join. Matched pairs
// are ordered by probe (left) row, and for one probe row by build
// (right) row ascending — exactly the order a sequential
// build-then-probe loop produces. LeftOuter lists the probe rows with
// no match (or a NULL key) in ascending order; it is only populated
// for LeftOuterJoin.
type JoinResult struct {
	Left      []int32
	Right     []int32
	LeftOuter []int32
}

// HashJoin executes a typed equi-join between the key columns of two
// batches and returns matched index pairs. The build side (right) is
// hash-partitioned and the partition tables are built in parallel; the
// probe side (left) is split into fixed-size morsels fanned out over
// the worker pool, with per-morsel outputs concatenated in morsel
// order so results are deterministic for any worker count. Rows where
// any key column is NULL never match.
func HashJoin(left, right *Batch, leftKeys, rightKeys []int, kind JoinKind, workers int) (JoinResult, error) {
	if workers < 1 {
		workers = 1
	}
	la := make([]keyAccess, len(leftKeys))
	ra := make([]keyAccess, len(rightKeys))
	typesMatch := true
	for i := range leftKeys {
		la[i] = newKeyAccess(left.Cols[leftKeys[i]])
		ra[i] = newKeyAccess(right.Cols[rightKeys[i]])
		if la[i].c.Type != ra[i].c.Type {
			// Key identity includes the logical type, so differently
			// typed key columns (e.g. INT64 vs FLOAT64) can never
			// produce a match — only LEFT JOIN null-extension survives.
			typesMatch = false
		}
	}

	var out JoinResult
	if !typesMatch || right.N == 0 || left.N == 0 {
		if kind == LeftOuterJoin {
			out.LeftOuter = make([]int32, left.N)
			for i := range out.LeftOuter {
				out.LeftOuter[i] = int32(i)
			}
		}
		return out, nil
	}

	// Hash both sides' keys (probe hashes morsel-parallel).
	rh := make([]uint64, right.N)
	rnull := make([]bool, right.N)
	forMorsels(right.N, workers, func(_, _, lo, hi int) {
		hashKeyRange(ra, rh, rnull, lo, hi)
	})
	lh := make([]uint64, left.N)
	lnull := make([]bool, left.N)
	forMorsels(left.N, workers, func(_, _, lo, hi int) {
		hashKeyRange(la, lh, lnull, lo, hi)
	})

	// Partitioned build: scatter build rows by hash (sequential, so
	// each partition keeps ascending row order), then build the
	// per-partition tables in parallel.
	nPart := 1
	for nPart < workers {
		nPart <<= 1
	}
	mask := uint64(nPart - 1)
	partRows := make([][]int32, nPart)
	for r := 0; r < right.N; r++ {
		if rnull[r] {
			continue
		}
		p := rh[r] & mask
		partRows[p] = append(partRows[p], int32(r))
	}
	tables := make([]map[uint64][]int32, nPart)
	parallelEach(nPart, workers, func(p int) {
		m := make(map[uint64][]int32, len(partRows[p]))
		for _, r := range partRows[p] {
			h := rh[r]
			m[h] = append(m[h], r)
		}
		tables[p] = m
	})

	// Morsel-parallel probe; per-morsel outputs concatenated in morsel
	// order preserve the sequential probe order.
	type probeOut struct {
		left, right []int32
		outer       []int32
	}
	outs := make([]probeOut, morselCount(left.N))
	forMorsels(left.N, workers, func(_, m, lo, hi int) {
		var po probeOut
		for l := lo; l < hi; l++ {
			if lnull[l] {
				if kind == LeftOuterJoin {
					po.outer = append(po.outer, int32(l))
				}
				continue
			}
			h := lh[l]
			matched := false
			for _, r := range tables[h&mask][h] {
				if keysEq(la, l, ra, int(r)) {
					po.left = append(po.left, int32(l))
					po.right = append(po.right, r)
					matched = true
				}
			}
			if !matched && kind == LeftOuterJoin {
				po.outer = append(po.outer, int32(l))
			}
		}
		outs[m] = po
	})

	var nPairs, nOuter int
	for _, po := range outs {
		nPairs += len(po.left)
		nOuter += len(po.outer)
	}
	out.Left = make([]int32, 0, nPairs)
	out.Right = make([]int32, 0, nPairs)
	if nOuter > 0 {
		out.LeftOuter = make([]int32, 0, nOuter)
	}
	for _, po := range outs {
		out.Left = append(out.Left, po.left...)
		out.Right = append(out.Right, po.right...)
		out.LeftOuter = append(out.LeftOuter, po.outer...)
	}
	return out, nil
}
