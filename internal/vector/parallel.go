package vector

import (
	"sync"
	"sync/atomic"
)

// MorselRows is the fixed morsel size of the parallel kernels. It is a
// constant — never derived from the worker count — so the unit of work
// (and therefore every morsel-indexed merge order) is identical no
// matter how many workers execute the plan. That is what makes the
// operators deterministic: worker count changes scheduling, not
// results.
const MorselRows = 4096

// morselCount returns the number of fixed-size morsels covering n rows.
func morselCount(n int) int {
	return (n + MorselRows - 1) / MorselRows
}

// morselBounds returns the [lo, hi) row range of morsel m.
func morselBounds(m, n int) (int, int) {
	lo := m * MorselRows
	hi := lo + MorselRows
	if hi > n {
		hi = n
	}
	return lo, hi
}

// forMorsels fans fn out over the morsels of n rows using at most
// `workers` goroutines. fn receives (worker, morsel, lo, hi); morsels
// are claimed dynamically (work stealing via a shared counter), so a
// given worker's morsel set is scheduling-dependent — callers must
// only produce output that is indexed by morsel or commutative per
// worker. With one worker (or one morsel) everything runs inline on
// the calling goroutine.
func forMorsels(n, workers int, fn func(worker, morsel, lo, hi int)) {
	morsels := morselCount(n)
	if workers > morsels {
		workers = morsels
	}
	if workers <= 1 {
		for m := 0; m < morsels; m++ {
			lo, hi := morselBounds(m, n)
			fn(0, m, lo, hi)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for {
				m := int(next.Add(1)) - 1
				if m >= morsels {
					return
				}
				lo, hi := morselBounds(m, n)
				fn(w, m, lo, hi)
			}
		}(w)
	}
	wg.Wait()
}

// parallelEach runs fn(i) for i in [0, n) over at most `workers`
// goroutines; used for per-column / per-partition fan-out.
func parallelEach(n, workers int, fn func(i int)) {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

// JoinKind selects the join semantics of HashJoin.
type JoinKind uint8

// Join kinds.
const (
	InnerJoin JoinKind = iota
	LeftOuterJoin
)

// JoinResult is the index-pair outcome of a hash join. Matched pairs
// are ordered by probe (left) row, and for one probe row by build
// (right) row ascending — exactly the order a sequential
// build-then-probe loop produces. LeftOuter lists the probe rows with
// no match (or a NULL key) in ascending order; it is only populated
// for LeftOuterJoin.
type JoinResult struct {
	Left      []int32
	Right     []int32
	LeftOuter []int32
}

// HashJoin executes a typed equi-join between the key columns of two
// batches and returns matched index pairs. The build side (right) is
// hash-partitioned and the partition tables are built in parallel; the
// probe side (left) is split into fixed-size morsels fanned out over
// the worker pool, with per-morsel outputs concatenated in morsel
// order so results are deterministic for any worker count. Rows where
// any key column is NULL never match.
func HashJoin(left, right *Batch, leftKeys, rightKeys []int, kind JoinKind, workers int) (JoinResult, error) {
	return HashJoinWith(Mem{}, left, right, leftKeys, rightKeys, kind, workers)
}

// probeSpan records where one probe morsel's output landed inside its
// worker's scratch buffers, so the final concatenation replays morsel
// order no matter which worker ran which morsel.
type probeSpan struct {
	worker           int32
	pairOff, pairLen int32
	outOff, outLen   int32
}

// probeScratch is one worker's growing probe output. The buffers are
// append-only, so span offsets recorded earlier stay valid across
// regrowth.
type probeScratch struct {
	left, right, outer []int32
}

// HashJoinWith is HashJoin with an explicit memory policy: hashes,
// partition scatter, bucket arrays and outputs come from m's
// allocator, and per-worker scratch buffers replace the old per-morsel
// append-to-nil slices. The build table is an open chain (head per
// bucket + shared next array) instead of per-hash map buckets — same
// candidate set, same order, no map allocation.
func HashJoinWith(m Mem, left, right *Batch, leftKeys, rightKeys []int, kind JoinKind, workers int) (JoinResult, error) {
	if workers < 1 {
		workers = 1
	}
	al := m.Allocator()
	la := make([]keyAccess, len(leftKeys))
	ra := make([]keyAccess, len(rightKeys))
	typesMatch := true
	for i := range leftKeys {
		la[i] = newKeyAccessWith(al, left.Cols[leftKeys[i]])
		ra[i] = newKeyAccessWith(al, right.Cols[rightKeys[i]])
		if la[i].c.Type != ra[i].c.Type {
			// Key identity includes the logical type, so differently
			// typed key columns (e.g. INT64 vs FLOAT64) can never
			// produce a match — only LEFT JOIN null-extension survives.
			typesMatch = false
		}
	}

	var out JoinResult
	if !typesMatch || right.N == 0 || left.N == 0 {
		if kind == LeftOuterJoin {
			out.LeftOuter = al.Int32s(left.N)
			for i := range out.LeftOuter {
				out.LeftOuter[i] = int32(i)
			}
		}
		return out, nil
	}

	// Hash both sides' keys (morsel-parallel).
	rh := al.Uint64s(right.N)
	rnull := al.Bools(right.N)
	forMorsels(right.N, workers, func(_, _, lo, hi int) {
		hashKeyRange(ra, rh, rnull, lo, hi)
	})
	lh := al.Uint64s(left.N)
	lnull := al.Bools(left.N)
	forMorsels(left.N, workers, func(_, _, lo, hi int) {
		hashKeyRange(la, lh, lnull, lo, hi)
	})

	// Partitioned build: counting-sort build rows by hash into one flat
	// array (sequential, so each partition keeps ascending row order).
	nPart := 1
	partBits := 0
	for nPart < workers {
		nPart <<= 1
		partBits++
	}
	mask := uint64(nPart - 1)
	cnt := al.Ints(nPart)
	nBuild := 0
	for r := 0; r < right.N; r++ {
		if !rnull[r] {
			cnt[rh[r]&mask]++
			nBuild++
		}
	}
	start := al.Ints(nPart + 1)
	sum := 0
	for p := 0; p < nPart; p++ {
		start[p] = sum
		sum += cnt[p]
		cnt[p] = start[p] // reused as the scatter cursor
	}
	start[nPart] = sum
	flat := al.Int32s(nBuild)
	for r := 0; r < right.N; r++ {
		if rnull[r] {
			continue
		}
		p := rh[r] & mask
		flat[cnt[p]] = int32(r)
		cnt[p]++
	}

	// Per-partition chained tables: a power-of-two head array per
	// partition plus one shared next array indexed by build row
	// (partitions own disjoint row sets, so parallel build is
	// race-free). Rows are inserted in descending order so each
	// push-front chain reads back ascending — preserving the
	// "build rows ascending per probe row" contract. Bucket index
	// uses the hash bits above the partition bits.
	next := al.Int32s(right.N)
	heads := make([][]int32, nPart)
	parallelEach(nPart, workers, func(p int) {
		rows := flat[start[p]:start[p+1]]
		if len(rows) == 0 {
			return
		}
		size := 8
		for size < 2*len(rows) {
			size <<= 1
		}
		h := al.Int32s(size)
		for i := range h {
			h[i] = -1
		}
		bmask := uint64(size - 1)
		for i := len(rows) - 1; i >= 0; i-- {
			r := rows[i]
			b := (rh[r] >> partBits) & bmask
			next[r] = h[b]
			h[b] = r
		}
		heads[p] = h
	})

	// Morsel-parallel probe into per-worker scratch; spans record each
	// morsel's slice of its worker's buffers for in-order assembly.
	spans := make([]probeSpan, morselCount(left.N))
	scratch := make([]probeScratch, workers)
	forMorsels(left.N, workers, func(w, mor, lo, hi int) {
		sc := &scratch[w]
		p0, o0 := len(sc.left), len(sc.outer)
		for l := lo; l < hi; l++ {
			if lnull[l] {
				if kind == LeftOuterJoin {
					sc.outer = appendI32(al, sc.outer, int32(l))
				}
				continue
			}
			h := lh[l]
			matched := false
			if hd := heads[h&mask]; hd != nil {
				b := (h >> partBits) & uint64(len(hd)-1)
				for r := hd[b]; r >= 0; r = next[r] {
					if rh[r] == h && keysEq(la, l, ra, int(r)) {
						sc.left = appendI32(al, sc.left, int32(l))
						sc.right = appendI32(al, sc.right, r)
						matched = true
					}
				}
			}
			if !matched && kind == LeftOuterJoin {
				sc.outer = appendI32(al, sc.outer, int32(l))
			}
		}
		spans[mor] = probeSpan{
			worker:  int32(w),
			pairOff: int32(p0), pairLen: int32(len(sc.left) - p0),
			outOff: int32(o0), outLen: int32(len(sc.outer) - o0),
		}
	})

	var nPairs, nOuter int
	for _, s := range spans {
		nPairs += int(s.pairLen)
		nOuter += int(s.outLen)
	}
	out.Left = al.Int32s(nPairs)
	out.Right = al.Int32s(nPairs)
	if nOuter > 0 {
		out.LeftOuter = al.Int32s(nOuter)
	}
	po, oo := 0, 0
	for _, s := range spans {
		sc := &scratch[s.worker]
		copy(out.Left[po:], sc.left[s.pairOff:s.pairOff+s.pairLen])
		copy(out.Right[po:], sc.right[s.pairOff:s.pairOff+s.pairLen])
		po += int(s.pairLen)
		copy(out.LeftOuter[oo:], sc.outer[s.outOff:s.outOff+s.outLen])
		oo += int(s.outLen)
	}
	return out, nil
}
