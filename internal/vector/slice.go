package vector

// This file holds zero-copy / typed materialization helpers used by
// the execution engine: LIMIT as a column prefix slice instead of a
// full gather, null-column construction for LEFT JOIN extension, and
// a gather that treats negative indices as NULL so a join's matched
// and null-extended rows materialize in one pass per column.

// Head returns the first n rows of a column. Plain and Dict columns
// share the underlying arrays (zero copy); RLE trims runs.
func Head(c *Column, n int) *Column {
	if n >= c.Len {
		return c
	}
	out := &Column{Type: c.Type, Len: n, Enc: c.Enc}
	switch c.Enc {
	case Plain:
		if c.Nulls != nil {
			out.Nulls = c.Nulls[:n]
		}
		switch c.Type {
		case Int64, Timestamp:
			out.Ints = c.Ints[:n]
		case Float64:
			out.Floats = c.Floats[:n]
		case Bool:
			out.Bools = c.Bools[:n]
		case String, Bytes:
			out.Strs = c.Strs[:n]
		}
	case Dict:
		out.Codes = c.Codes[:n]
		out.Ints, out.Floats, out.Bools, out.Strs = c.Ints, c.Floats, c.Bools, c.Strs
	case RLE:
		out.Ints, out.Floats, out.Bools, out.Strs = c.Ints, c.Floats, c.Bools, c.Strs
		left := n
		for _, r := range c.Runs {
			if left <= 0 {
				break
			}
			if int(r.Count) > left {
				r.Count = uint32(left)
			}
			out.Runs = append(out.Runs, r)
			left -= int(r.Count)
		}
	}
	return out
}

// HeadBatch returns the first n rows of a batch (zero copy for
// Plain/Dict columns).
func HeadBatch(b *Batch, n int) *Batch {
	if n >= b.N {
		return b
	}
	cols := make([]*Column, len(b.Cols))
	for i, c := range b.Cols {
		cols[i] = Head(c, n)
	}
	return &Batch{Schema: b.Schema, Cols: cols, N: n}
}

// NullColumn returns a plain column of n NULLs of the given type,
// with zero-valued backing arrays like the Builder would produce.
func NullColumn(t Type, n int) *Column {
	out := &Column{Type: t, Len: n, Enc: Plain, Nulls: make([]bool, n)}
	for i := range out.Nulls {
		out.Nulls[i] = true
	}
	switch t {
	case Int64, Timestamp:
		out.Ints = make([]int64, n)
	case Float64:
		out.Floats = make([]float64, n)
	case Bool:
		out.Bools = make([]bool, n)
	case String, Bytes:
		out.Strs = make([]string, n)
	}
	return out
}

// GatherNull materializes the rows at idx into a new plain column,
// with negative indices producing NULL — the LEFT JOIN null-extension
// path. Values are copied type-directly, without per-row boxing.
func GatherNull(c *Column, idx []int32) *Column {
	return GatherNullWith(Mem{}, c, idx)
}

// GatherNullWith is GatherNull with an explicit memory policy. Under
// late materialization a Dict input stays Dict: codes are gathered
// (negative indices become the NULL code) and the dictionary value
// arrays are shared, so join outputs carry strings as codes until
// result emission.
func GatherNullWith(m Mem, c *Column, idx []int32) *Column {
	al := m.Allocator()
	if c.Enc == RLE {
		c = c.Decode()
	}
	n := len(idx)
	if m.LateMat && c.Enc == Dict {
		out := &Column{Type: c.Type, Len: n, Enc: Dict, Pooled: m.Pooled() || c.Pooled}
		out.Ints, out.Floats, out.Bools, out.Strs = c.Ints, c.Floats, c.Bools, c.Strs
		codes := al.Uint32s(n)
		for i, src := range idx {
			if src < 0 {
				codes[i] = NullIdx
			} else {
				codes[i] = c.Codes[src]
			}
		}
		out.Codes = codes
		return out
	}
	out := &Column{Type: c.Type, Len: n, Enc: Plain, Pooled: m.Pooled()}
	var nulls []bool
	setNull := func(i int) {
		if nulls == nil {
			nulls = al.Bools(n)
		}
		nulls[i] = true
	}
	// resolve maps a source row to its value-array index, or NullIdx.
	resolve := func(src int32) uint32 {
		if c.Enc == Dict {
			return c.Codes[src]
		}
		if c.Nulls != nil && c.Nulls[src] {
			return NullIdx
		}
		return uint32(src)
	}
	switch c.Type {
	case Int64, Timestamp:
		out.Ints = al.Int64s(n)
		for i, src := range idx {
			if src < 0 {
				setNull(i)
				continue
			}
			if vi := resolve(src); vi != NullIdx {
				out.Ints[i] = c.Ints[vi]
			} else {
				setNull(i)
			}
		}
	case Float64:
		out.Floats = al.Float64s(n)
		for i, src := range idx {
			if src < 0 {
				setNull(i)
				continue
			}
			if vi := resolve(src); vi != NullIdx {
				out.Floats[i] = c.Floats[vi]
			} else {
				setNull(i)
			}
		}
	case Bool:
		out.Bools = al.Bools(n)
		for i, src := range idx {
			if src < 0 {
				setNull(i)
				continue
			}
			if vi := resolve(src); vi != NullIdx {
				out.Bools[i] = c.Bools[vi]
			} else {
				setNull(i)
			}
		}
	case String, Bytes:
		out.Strs = al.Strings(n)
		for i, src := range idx {
			if src < 0 {
				setNull(i)
				continue
			}
			if vi := resolve(src); vi != NullIdx {
				out.Strs[i] = c.Strs[vi]
			} else {
				setNull(i)
			}
		}
	}
	out.Nulls = nulls
	return out
}
