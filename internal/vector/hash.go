package vector

import "math"

// This file implements the typed columnar hashing layer under the
// parallel join and grouped-aggregation kernels. Keys are hashed
// directly from their physical representation — int64/float64/bool
// values straight from the column arrays, strings once per dictionary
// entry when dict-encoded — so no per-row Value boxing or string key
// materialization happens on the hot path.
//
// Key identity deliberately mirrors the engine's historical
// `Type|String()` rendering (shared with the differential oracle):
// values of different logical types never compare equal (Int64(5) is
// not Timestamp(5) and not Float64(5.0)), every NaN is one key, and
// -0.0 and +0.0 are distinct keys (they render differently under %g).

// canonicalNaN is the single bit pattern all NaNs collapse to for key
// identity; "%g" renders every NaN as "NaN".
var canonicalNaN = math.Float64bits(math.NaN())

// floatKeyBits returns the key-identity bits of a float: raw IEEE bits
// with NaNs collapsed. ±0.0 keep their distinct bit patterns.
func floatKeyBits(f float64) uint64 {
	if f != f {
		return canonicalNaN
	}
	return math.Float64bits(f)
}

// mix64 is the splitmix64 finalizer; good avalanche for cheap.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// hashString is FNV-1a 64 over the string bytes, finalized with mix64.
func hashString(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return mix64(h)
}

// combineHash folds one column's contribution into a row hash.
func combineHash(h, contrib uint64) uint64 {
	return (h ^ contrib) * 0x9e3779b97f4a7c15
}

// keyAccess is boxing-free random access to one key column. RLE
// columns are decoded once up front (random access over runs is
// O(runs)); Plain and Dict are accessed in place.
type keyAccess struct {
	c *Column
	// dictHash caches per-dictionary-entry hashes for Dict columns so
	// string (and every other) dictionary value is hashed exactly once
	// regardless of row count.
	dictHash []uint64
}

func newKeyAccess(c *Column) keyAccess {
	return newKeyAccessWith(nil, c)
}

// newKeyAccessWith is newKeyAccess taking the dictionary hash cache
// from al (nil = heap).
func newKeyAccessWith(al Alloc, c *Column) keyAccess {
	if al == nil {
		al = Heap
	}
	if c.Enc == RLE {
		c = c.Decode()
	}
	ka := keyAccess{c: c}
	if c.Enc == Dict {
		n := c.dictLen()
		ka.dictHash = al.Uint64s(n)
		for i := 0; i < n; i++ {
			ka.dictHash[i] = hashValIdx(c, uint32(i))
		}
	}
	return ka
}

// hashValIdx hashes the dictionary/array value at idx.
func hashValIdx(c *Column, idx uint32) uint64 {
	switch c.Type {
	case Int64, Timestamp:
		return mix64(uint64(c.Ints[idx]))
	case Float64:
		return mix64(floatKeyBits(c.Floats[idx]))
	case Bool:
		if c.Bools[idx] {
			return mix64(1)
		}
		return mix64(0)
	default: // String, Bytes
		return hashString(c.Strs[idx])
	}
}

// null reports whether row i is NULL.
func (k keyAccess) null(i int) bool {
	if k.c.Enc == Dict {
		return k.c.Codes[i] == NullIdx
	}
	return k.c.Nulls != nil && k.c.Nulls[i]
}

// valIdx returns the value-array index for row i (caller ensures the
// row is non-null).
func (k keyAccess) valIdx(i int) uint32 {
	if k.c.Enc == Dict {
		return k.c.Codes[i]
	}
	return uint32(i)
}

// hash returns the hash contribution of row i (caller ensures
// non-null).
func (k keyAccess) hash(i int) uint64 {
	if k.dictHash != nil {
		return k.dictHash[k.c.Codes[i]]
	}
	return hashValIdx(k.c, uint32(i))
}

// valEq reports key equality between row i of a and row j of b. The
// caller has already verified the column types are identical and both
// rows are non-null.
func valEq(a keyAccess, i int, b keyAccess, j int) bool {
	ai, bi := a.valIdx(i), b.valIdx(j)
	switch a.c.Type {
	case Int64, Timestamp:
		return a.c.Ints[ai] == b.c.Ints[bi]
	case Float64:
		return floatKeyBits(a.c.Floats[ai]) == floatKeyBits(b.c.Floats[bi])
	case Bool:
		return a.c.Bools[ai] == b.c.Bools[bi]
	default:
		return a.c.Strs[ai] == b.c.Strs[bi]
	}
}

// keysEq reports multi-column key equality between row i of a and row
// j of b.
func keysEq(a []keyAccess, i int, b []keyAccess, j int) bool {
	for k := range a {
		if !valEq(a[k], i, b[k], j) {
			return false
		}
	}
	return true
}

// hashKeyRange fills hashes[lo:hi] and null[lo:hi] for the combined
// key columns: null[i] is true when any key column is NULL at row i
// (SQL join/group semantics treat such rows as matching nothing).
func hashKeyRange(keys []keyAccess, hashes []uint64, null []bool, lo, hi int) {
	for i := lo; i < hi; i++ {
		hashes[i] = 0x9e3779b97f4a7c15
	}
	for _, k := range keys {
		for i := lo; i < hi; i++ {
			if null[i] {
				continue
			}
			if k.null(i) {
				null[i] = true
				continue
			}
			hashes[i] = combineHash(hashes[i], k.hash(i))
		}
	}
}
