package core

import (
	"errors"
	"testing"
	"time"

	"biglake/internal/catalog"
	"biglake/internal/objstore"
	"biglake/internal/security"
	"biglake/internal/vector"
)

const admin = security.Principal("admin@test")

func newLH(t *testing.T) *Lakehouse {
	t.Helper()
	lh, err := New(Options{Admin: admin})
	if err != nil {
		t.Fatal(err)
	}
	return lh
}

func TestNewDefaults(t *testing.T) {
	lh, err := New(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if lh.Cloud() != "gcp" || lh.Admin != "admin@biglake" {
		t.Fatalf("defaults: cloud=%q admin=%q", lh.Cloud(), lh.Admin)
	}
	// The default connection exists and managed storage is provisioned.
	if _, err := lh.Auth.Connection("default"); err != nil {
		t.Fatal(err)
	}
	if _, err := lh.Catalog.Dataset("_system"); err != nil {
		t.Fatal(err)
	}
}

func TestNewOnForeignCloud(t *testing.T) {
	lh, err := New(Options{Cloud: "aws", Admin: admin})
	if err != nil {
		t.Fatal(err)
	}
	if lh.Cloud() != "aws" || lh.Store.Profile().Name != "aws" {
		t.Fatalf("cloud = %q profile = %q", lh.Cloud(), lh.Store.Profile().Name)
	}
}

func TestCreateConnectionGrantsBucketAccess(t *testing.T) {
	lh := newLH(t)
	if err := lh.CreateBucket("b1"); err != nil {
		t.Fatal(err)
	}
	conn, err := lh.CreateConnection("c1", "b1")
	if err != nil {
		t.Fatal(err)
	}
	if err := lh.Upload("b1", "k", []byte("v"), ""); err != nil {
		t.Fatal(err)
	}
	if _, _, err := lh.Store.Get(conn.ServiceAccount, "b1", "k"); err != nil {
		t.Fatalf("connection SA read: %v", err)
	}
	// A different connection's SA has no access.
	other, _ := lh.CreateConnection("c2")
	if _, _, err := lh.Store.Get(other.ServiceAccount, "b1", "k"); !errors.Is(err, objstore.ErrAccessDenied) {
		t.Fatalf("ungranted SA read: %v", err)
	}
}

func TestCreateTableHelpersSetTypes(t *testing.T) {
	lh := newLH(t)
	lh.CreateDataset("d")
	lh.CreateBucket("b")
	lh.CreateConnection("c", "b")
	schema := simpleSchema()
	if err := lh.CreateBigLakeTable(admin, BigLakeTableSpec{
		Dataset: "d", Name: "bl", Schema: schema, Bucket: "b", Prefix: "bl/",
		Connection: "c", MetadataCaching: true, MetadataStaleness: time.Minute,
	}); err != nil {
		t.Fatal(err)
	}
	if err := lh.CreateManagedTable(admin, "d", "m", schema, "bq-managed"); err != nil {
		t.Fatal(err)
	}
	if err := lh.CreateObjectTable(admin, "d", "o", "b", "objs/"); err != nil {
		t.Fatal(err)
	}
	for name, want := range map[string]catalog.TableType{
		"d.bl": catalog.BigLake, "d.m": catalog.Managed, "d.o": catalog.Object,
	} {
		tab, err := lh.Catalog.Table(name)
		if err != nil || tab.Type != want {
			t.Fatalf("%s type = %v, %v", name, tab.Type, err)
		}
	}
	tab, _ := lh.Catalog.Table("d.bl")
	if tab.MetadataStaleness != time.Minute {
		t.Fatal("staleness lost")
	}
}

func TestQuerySequencesIDs(t *testing.T) {
	lh := newLH(t)
	if _, err := lh.Query(admin, "SELECT 1 AS one"); err != nil {
		t.Fatal(err)
	}
	if _, err := lh.Query(admin, "SELECT 2 AS two"); err != nil {
		t.Fatal(err)
	}
	if lh.Now() < 0 {
		t.Fatal("clock")
	}
}

func TestRefreshMetadataCacheErrors(t *testing.T) {
	lh := newLH(t)
	if _, err := lh.RefreshMetadataCache("ghost.t"); !errors.Is(err, catalog.ErrNotFound) {
		t.Fatalf("err = %v", err)
	}
}

func simpleSchema() vector.Schema {
	return vector.NewSchema(vector.Field{Name: "id", Type: vector.Int64})
}

// TestQueryInteractiveTransaction drives the shell's transaction
// surface: BEGIN routes the principal's statements into a session
// (buffered writes visible inside, invisible to other principals),
// COMMIT seals and the session closes; a lone COMMIT is an error.
func TestQueryInteractiveTransaction(t *testing.T) {
	lh := newLH(t)
	if err := lh.CreateDataset("d"); err != nil {
		t.Fatal(err)
	}
	if err := lh.CreateBucket("data"); err != nil {
		t.Fatal(err)
	}
	schema := vector.NewSchema(
		vector.Field{Name: "id", Type: vector.Int64},
		vector.Field{Name: "v", Type: vector.Int64},
	)
	if err := lh.CreateManagedTable(admin, "d", "t", schema, "data"); err != nil {
		t.Fatal(err)
	}
	other := security.Principal("other@test")
	if err := lh.Auth.GrantTable(admin, "d.t", other, security.RoleViewer); err != nil {
		t.Fatal(err)
	}

	if _, err := lh.Query(admin, "BEGIN"); err != nil {
		t.Fatal(err)
	}
	if _, err := lh.Query(admin, "INSERT INTO d.t VALUES (1, 10)"); err != nil {
		t.Fatal(err)
	}
	count := func(p security.Principal) int {
		res, err := lh.Query(p, "SELECT id FROM d.t")
		if err != nil {
			t.Fatal(err)
		}
		return res.Batch.N
	}
	if got := count(admin); got != 1 {
		t.Fatalf("inside txn: %d rows, want 1 (read-your-writes)", got)
	}
	if got := count(other); got != 0 {
		t.Fatalf("other principal saw %d uncommitted rows", got)
	}
	res, err := lh.Query(admin, "COMMIT")
	if err != nil {
		t.Fatal(err)
	}
	if res.Batch.Schema.Fields[0].Name != "commit_version" {
		t.Fatalf("commit result schema: %v", res.Batch.Schema.Fields)
	}
	if got := count(other); got != 1 {
		t.Fatalf("after commit: other sees %d rows, want 1", got)
	}
	// The session is closed: the next statement runs autocommit, and a
	// bare COMMIT is a transaction-control error again.
	if _, err := lh.Query(admin, "COMMIT"); err == nil {
		t.Fatal("bare COMMIT outside a session succeeded")
	}
	// ROLLBACK path: buffered delete discarded.
	if _, err := lh.Query(admin, "BEGIN"); err != nil {
		t.Fatal(err)
	}
	if _, err := lh.Query(admin, "DELETE FROM d.t WHERE id = 1"); err != nil {
		t.Fatal(err)
	}
	if _, err := lh.Query(admin, "ROLLBACK"); err != nil {
		t.Fatal(err)
	}
	if got := count(admin); got != 1 {
		t.Fatalf("after rollback: %d rows, want 1", got)
	}
}
