// Package core assembles the BigLake lakehouse: it wires the catalog,
// IAM authority, Big Metadata, the Dremel engine, the Storage APIs,
// the BLMT manager and the BQML inference runtime into one coherent
// deployment object — the "single core platform that solves the
// difficult data management problems once, but has it work across
// storage substrates and analytics stacks" of §3.
package core

import (
	"fmt"
	"time"

	"biglake/internal/bigmeta"
	"biglake/internal/blmt"
	"biglake/internal/catalog"
	"biglake/internal/engine"
	"biglake/internal/inference"
	"biglake/internal/objstore"
	"biglake/internal/security"
	"biglake/internal/sim"
	"biglake/internal/sqlparse"
	"biglake/internal/storageapi"
	"biglake/internal/txn"
	"biglake/internal/vector"
	"biglake/internal/wal"
)

// Options configures a lakehouse deployment.
type Options struct {
	// Cloud names the hosting cloud ("gcp" default).
	Cloud string
	// Region is the deployment region name.
	Region string
	// Admin is the deployment administrator principal.
	Admin security.Principal
	// Engine tunes query execution (defaults to production settings).
	Engine *engine.Options
}

// Lakehouse is a single-region BigLake deployment.
type Lakehouse struct {
	Clock      *sim.Clock
	Catalog    *catalog.Catalog
	Auth       *security.Authority
	Meta       *bigmeta.Cache
	Log        *bigmeta.Log
	Engine     *engine.Engine
	StorageAPI *storageapi.Server
	Manager    *blmt.Manager
	Inference  *inference.Runtime
	Store      *objstore.Store
	Journal    *wal.Journal
	Txns       *txn.Manager
	Admin      security.Principal

	cloud     string
	serviceSA objstore.Credential
	querySeq  int
	sessions  map[security.Principal]*txn.Session
}

// New builds a ready-to-use lakehouse.
func New(opts Options) (*Lakehouse, error) {
	if opts.Cloud == "" {
		opts.Cloud = "gcp"
	}
	if opts.Region == "" {
		opts.Region = opts.Cloud + "-us"
	}
	if opts.Admin == "" {
		opts.Admin = "admin@biglake"
	}
	engOpts := engine.DefaultOptions()
	if opts.Engine != nil {
		engOpts = *opts.Engine
	}

	clock := sim.NewClock()
	store := objstore.New(sim.ProfileFor(opts.Cloud), clock, nil)
	sa := objstore.Credential{Principal: "sa-biglake@" + opts.Region}
	if err := store.CreateBucket(sa, "bq-managed"); err != nil {
		return nil, err
	}
	cat := catalog.New()
	auth := security.NewAuthority("lakehouse-"+opts.Region, opts.Admin)
	meta := bigmeta.NewCache(clock, nil)
	log := bigmeta.NewLog(clock, nil)
	stores := map[string]*objstore.Store{opts.Cloud: store}

	eng := engine.New(cat, auth, meta, log, clock, stores, engOpts)
	eng.ManagedCred = sa
	srv := storageapi.NewServer(cat, auth, meta, log, clock, stores)
	srv.ManagedCred = sa
	mgr := blmt.New(cat, auth, log, clock, stores)
	mgr.DefaultCloud = opts.Cloud
	mgr.DefaultBucket = "bq-managed"
	eng.SetMutator(mgr)
	j, err := wal.Open(store, sa, "bq-managed", "")
	if err != nil {
		return nil, err
	}
	log.AttachJournal(j)
	mgr.Journal = j
	rt := inference.NewRuntime(auth, stores, clock, sa)
	rt.Attach(eng)

	lh := &Lakehouse{
		Clock: clock, Catalog: cat, Auth: auth, Meta: meta, Log: log,
		Engine: eng, StorageAPI: srv, Manager: mgr, Inference: rt,
		Store: store, Journal: j, Txns: txn.NewManager(eng, j),
		Admin: opts.Admin, cloud: opts.Cloud, serviceSA: sa,
		sessions: make(map[security.Principal]*txn.Session),
	}
	// A default connection for managed tables and examples.
	if err := auth.RegisterConnection(opts.Admin, security.Connection{
		Name: "default", ServiceAccount: sa, Cloud: opts.Cloud,
	}); err != nil {
		return nil, err
	}
	mgr.DefaultConnection = "default"
	if err := cat.CreateDataset(catalog.Dataset{Name: "_system", Region: opts.Region, Cloud: opts.Cloud}); err != nil {
		return nil, err
	}
	return lh, nil
}

// Cloud returns the hosting cloud name.
func (lh *Lakehouse) Cloud() string { return lh.cloud }

// ServiceAccount returns the deployment's default delegated service
// account credential.
func (lh *Lakehouse) ServiceAccount() objstore.Credential { return lh.serviceSA }

// CreateDataset registers a dataset in the hosting region.
func (lh *Lakehouse) CreateDataset(name string) error {
	return lh.Catalog.CreateDataset(catalog.Dataset{Name: name, Region: lh.cloud + "-us", Cloud: lh.cloud})
}

// CreateBucket provisions a customer bucket readable by the default
// connection.
func (lh *Lakehouse) CreateBucket(name string) error {
	return lh.Store.CreateBucket(lh.serviceSA, name)
}

// CreateConnection provisions a delegated-access connection with a
// fresh service account (§3.1) and grants it read access to the named
// buckets.
func (lh *Lakehouse) CreateConnection(name string, buckets ...string) (security.Connection, error) {
	sa := objstore.Credential{Principal: fmt.Sprintf("sa-%s@biglake", name)}
	conn := security.Connection{Name: name, ServiceAccount: sa, Cloud: lh.cloud}
	if err := lh.Auth.RegisterConnection(lh.Admin, conn); err != nil {
		return security.Connection{}, err
	}
	for _, b := range buckets {
		if err := lh.Store.Grant(lh.serviceSA, b, sa.Principal, objstore.PermRead); err != nil {
			return security.Connection{}, err
		}
	}
	return conn, nil
}

// BigLakeTableSpec describes a BigLake table over open-format files.
type BigLakeTableSpec struct {
	Dataset, Name   string
	Schema          vector.Schema
	Bucket, Prefix  string
	Connection      string
	PartitionColumn string
	// MetadataCaching enables §3.3 acceleration (default true via
	// CreateBigLakeTable).
	MetadataCaching bool
	// MetadataStaleness bounds cache age before an automatic
	// background refresh (0 = on demand only).
	MetadataStaleness time.Duration
}

// CreateBigLakeTable registers a BigLake table and grants the creator
// ownership.
func (lh *Lakehouse) CreateBigLakeTable(creator security.Principal, spec BigLakeTableSpec) error {
	if spec.Connection == "" {
		spec.Connection = "default"
	}
	t := catalog.Table{
		Dataset: spec.Dataset, Name: spec.Name, Type: catalog.BigLake,
		Schema: spec.Schema, Cloud: lh.cloud, Bucket: spec.Bucket, Prefix: spec.Prefix,
		Connection: spec.Connection, PartitionColumn: spec.PartitionColumn,
		MetadataCaching: spec.MetadataCaching, MetadataStaleness: spec.MetadataStaleness,
		CreatedAt: lh.Clock.Now(),
	}
	if err := lh.Catalog.CreateTable(t); err != nil {
		return err
	}
	return lh.Auth.GrantTable(lh.Admin, t.FullName(), creator, security.RoleOwner)
}

// CreateManagedTable registers a BLMT storing data on a customer
// bucket (§3.5).
func (lh *Lakehouse) CreateManagedTable(creator security.Principal, dataset, name string, schema vector.Schema, bucket string) error {
	t := catalog.Table{
		Dataset: dataset, Name: name, Type: catalog.Managed,
		Schema: schema, Cloud: lh.cloud, Bucket: bucket,
		Prefix:     fmt.Sprintf("blmt/%s/%s/", dataset, name),
		Connection: "default", CreatedAt: lh.Clock.Now(),
	}
	if err := lh.Catalog.CreateTable(t); err != nil {
		return err
	}
	return lh.Auth.GrantTable(lh.Admin, t.FullName(), creator, security.RoleOwner)
}

// CreateObjectTable registers an Object table over a bucket prefix of
// unstructured objects (§4.1).
func (lh *Lakehouse) CreateObjectTable(creator security.Principal, dataset, name, bucket, prefix string) error {
	t := catalog.Table{
		Dataset: dataset, Name: name, Type: catalog.Object,
		Cloud: lh.cloud, Bucket: bucket, Prefix: prefix,
		Connection: "default", MetadataCaching: true, CreatedAt: lh.Clock.Now(),
	}
	if err := lh.Catalog.CreateTable(t); err != nil {
		return err
	}
	return lh.Auth.GrantTable(lh.Admin, t.FullName(), creator, security.RoleOwner)
}

// Query runs SQL as a principal. BEGIN opens an interactive
// transaction for that principal; until it commits or rolls back,
// the principal's statements run inside the session — reads pinned to
// the BEGIN-time snapshot, writes buffered until COMMIT seals them
// atomically across every table touched.
func (lh *Lakehouse) Query(p security.Principal, sql string) (*engine.Result, error) {
	lh.querySeq++
	stmt, err := sqlparse.Parse(sql)
	if err != nil {
		return nil, err
	}
	if s := lh.sessions[p]; s != nil {
		res, err := s.Exec(sql)
		if !s.Active() {
			delete(lh.sessions, p)
		}
		return res, err
	}
	if _, ok := stmt.(*sqlparse.BeginStmt); ok {
		s := lh.Txns.Begin(p, fmt.Sprintf("q-%d", lh.querySeq))
		lh.sessions[p] = s
		out := vector.MustBatch(vector.NewSchema(vector.Field{Name: "snapshot_version", Type: vector.Int64}),
			[]*vector.Column{vector.NewInt64Column([]int64{s.Snapshot()})})
		return &engine.Result{Batch: out}, nil
	}
	return lh.Engine.Query(engine.NewContext(p, fmt.Sprintf("q-%d", lh.querySeq)), sql)
}

// RefreshMetadataCache rebuilds the §3.3 cache for a table in the
// background.
func (lh *Lakehouse) RefreshMetadataCache(table string) (int, error) {
	t, err := lh.Catalog.Table(table)
	if err != nil {
		return 0, err
	}
	conn, err := lh.Auth.Connection(t.Connection)
	if err != nil {
		return 0, err
	}
	return lh.Meta.Refresh(table, lh.Store, conn.ServiceAccount, t.Bucket, t.Prefix, bigmeta.RefreshOptions{
		WithFileStats: t.Type != catalog.Object,
		Background:    true,
	})
}

// Upload writes an object through the default service account (a
// loader convenience for examples and tests).
func (lh *Lakehouse) Upload(bucket, key string, data []byte, contentType string) error {
	_, err := lh.Store.Put(lh.serviceSA, bucket, key, data, contentType)
	return err
}

// Now returns the deployment's simulated time.
func (lh *Lakehouse) Now() time.Duration { return lh.Clock.Now() }
