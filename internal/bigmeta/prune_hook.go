//go:build !oraclebug

package bigmeta

import "biglake/internal/colfmt"

// statsCanSatisfy is the production pruning decision. The oraclebug
// build tag (see prune_hook_bug.go) replaces it with a deliberately
// broken version used to validate that the differential oracle in
// internal/oracle detects pruning bugs with a minimized report.
func statsCanSatisfy(p colfmt.Predicate, st colfmt.ColumnStats) bool {
	return p.StatsCanSatisfy(st)
}
