package bigmeta

import (
	"fmt"
	"sort"
	"time"
)

// Quarantine: the containment half of the integrity pipeline. When the
// scan path detects corruption in a data file and a fresh re-fetch
// confirms it (the stored copy itself is damaged, not just one
// response), the file is quarantined *in the transaction log* — a
// sealed, journaled commit like any other metadata change, so the mark
// survives crashes, replicates through recovery, and leaves an audit
// trail of what rotted, when, and why. Quarantined files stay in every
// snapshot (time travel still names them); the scan path consults
// IsQuarantined and either fails with a typed error or, under an
// explicit opt-in, skips the file and warns. blmt.Repair lifts the
// mark with an Unquarantine entry in the same commit that swaps in the
// rewritten file.

// QuarantineMark records one quarantined data file.
type QuarantineMark struct {
	// Key is the object key of the quarantined data file.
	Key string `json:"key"`
	// Source is the verification site that detected the damage
	// ("colfmt.chunk", "colfmt.footer", "engine.stale", "scrub", ...).
	Source string `json:"source"`
	// Reason is the human-readable integrity error that triggered it.
	Reason string `json:"reason"`
	// Time is the simulated time of quarantine.
	Time time.Duration `json:"time"`
}

// applyQuarantineLocked folds one committed record's quarantine and
// unquarantine entries into the log's current-state map. Removing a
// file also clears its mark: a key that no longer exists has nothing
// left to quarantine. Caller holds l.mu.
func (l *Log) applyQuarantineLocked(rec CommitRecord) {
	for table, d := range rec.Deltas {
		if len(d.Quarantine) == 0 && len(d.Unquarantine) == 0 && len(d.Removed) == 0 {
			continue
		}
		marks := l.quarantined[table]
		for _, m := range d.Quarantine {
			if marks == nil {
				marks = make(map[string]QuarantineMark)
				if l.quarantined == nil {
					l.quarantined = make(map[string]map[string]QuarantineMark)
				}
				l.quarantined[table] = marks
			}
			if _, ok := marks[m.Key]; !ok {
				l.msink.Add("meta_quarantines", 1)
			}
			marks[m.Key] = m
		}
		for _, k := range d.Unquarantine {
			if _, ok := marks[k]; ok {
				delete(marks, k)
				l.msink.Add("meta_unquarantines", 1)
			}
		}
		for _, k := range d.Removed {
			delete(marks, k)
		}
	}
}

// IsQuarantined reports whether the table's file is currently
// quarantined, and returns its mark.
func (l *Log) IsQuarantined(table, key string) (QuarantineMark, bool) {
	l.mu.RLock()
	defer l.mu.RUnlock()
	m, ok := l.quarantined[table][key]
	return m, ok
}

// Quarantined returns the table's current quarantine marks, sorted by
// key. An empty slice means the table is healthy.
func (l *Log) Quarantined(table string) []QuarantineMark {
	l.mu.RLock()
	defer l.mu.RUnlock()
	out := make([]QuarantineMark, 0, len(l.quarantined[table]))
	for _, m := range l.quarantined[table] {
		out = append(out, m)
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Key < out[b].Key })
	return out
}

// AllQuarantined returns the current quarantine marks for every table,
// keyed by table name with each table's marks sorted by key — the
// enumeration behind the system.quarantine virtual table. Tables with
// no live marks are absent.
func (l *Log) AllQuarantined() map[string][]QuarantineMark {
	l.mu.RLock()
	defer l.mu.RUnlock()
	out := make(map[string][]QuarantineMark, len(l.quarantined))
	for table, marks := range l.quarantined {
		if len(marks) == 0 {
			continue
		}
		list := make([]QuarantineMark, 0, len(marks))
		for _, m := range marks {
			list = append(list, m)
		}
		sort.Slice(list, func(a, b int) bool { return list[a].Key < list[b].Key })
		out[table] = list
	}
	return out
}

// QuarantineFile seals a quarantine mark for one file through the
// normal commit path (write-ahead journaled when a sink is attached).
// Re-quarantining an already-marked file is a no-op returning the
// current version, so concurrent scan workers that both detect the
// same rotten file don't pile up commits.
func (l *Log) QuarantineFile(principal, table string, mark QuarantineMark) (int64, error) {
	if mark.Key == "" {
		return 0, fmt.Errorf("bigmeta: quarantine with empty key")
	}
	if _, ok := l.IsQuarantined(table, mark.Key); ok {
		return l.Version(), nil
	}
	return l.Commit(principal, map[string]TableDelta{
		table: {Quarantine: []QuarantineMark{mark}},
	})
}
