package bigmeta

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"biglake/internal/colfmt"
	"biglake/internal/objstore"
	"biglake/internal/sim"
	"biglake/internal/vector"
)

func testEnv() (*objstore.Store, objstore.Credential, *sim.Clock) {
	clock := sim.NewClock()
	st := objstore.New(sim.GCP, clock, nil)
	cred := objstore.Credential{Principal: "sa@lake"}
	if err := st.CreateBucket(cred, "lake"); err != nil {
		panic(err)
	}
	return st, cred, clock
}

// writePartitionedTable writes files partitioned by date with an id
// column spanning [0, rowsPerFile) per file.
func writePartitionedTable(st *objstore.Store, cred objstore.Credential, prefix string, dates []string, filesPerDate, rowsPerFile int) error {
	schema := vector.NewSchema(
		vector.Field{Name: "id", Type: vector.Int64},
		vector.Field{Name: "amount", Type: vector.Int64},
	)
	next := int64(0)
	for _, d := range dates {
		for f := 0; f < filesPerDate; f++ {
			bl := vector.NewBuilder(schema)
			for r := 0; r < rowsPerFile; r++ {
				bl.Append(vector.IntValue(next), vector.IntValue(next%500))
				next++
			}
			file, err := colfmt.WriteFile(bl.Build(), colfmt.WriterOptions{})
			if err != nil {
				return err
			}
			key := fmt.Sprintf("%sdate=%s/part-%03d.blk", prefix, d, f)
			if _, err := st.Put(cred, "lake", key, file, "application/x-blk"); err != nil {
				return err
			}
		}
	}
	return nil
}

func TestPartitionOf(t *testing.T) {
	got := PartitionOf("tables/t/", "tables/t/date=2024-01-01/region=us/f.blk")
	if got["date"] != "2024-01-01" || got["region"] != "us" {
		t.Fatalf("partition = %v", got)
	}
	if PartitionOf("p/", "p/file.blk") != nil {
		t.Fatal("unpartitioned key should yield nil")
	}
	if PartitionOf("p/", "p/=bad/f") != nil {
		t.Fatal("empty partition name should be ignored")
	}
}

func TestRefreshCollectsEntriesAndStats(t *testing.T) {
	st, cred, clock := testEnv()
	if err := writePartitionedTable(st, cred, "t/", []string{"2024-01-01", "2024-01-02"}, 3, 100); err != nil {
		t.Fatal(err)
	}
	cache := NewCache(clock, nil)
	n, err := cache.Refresh("ds.t", st, cred, "lake", "t/", RefreshOptions{WithFileStats: true})
	if err != nil {
		t.Fatal(err)
	}
	if n != 6 {
		t.Fatalf("refreshed %d files, want 6", n)
	}
	files, err := cache.Files("ds.t")
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range files {
		if f.RowCount != 100 {
			t.Fatalf("file %s rows = %d", f.Key, f.RowCount)
		}
		if f.Partition["date"] == "" {
			t.Fatalf("file %s has no partition", f.Key)
		}
		if _, ok := f.ColumnStats["id"]; !ok {
			t.Fatalf("file %s missing id stats", f.Key)
		}
	}
	if _, ok := cache.RefreshedAt("ds.t"); !ok {
		t.Fatal("refresh timestamp missing")
	}
}

func TestCacheMissIsError(t *testing.T) {
	_, _, clock := testEnv()
	cache := NewCache(clock, nil)
	if _, err := cache.Files("ghost"); !errors.Is(err, ErrNotCached) {
		t.Fatalf("err = %v", err)
	}
	if _, err := cache.Prune("ghost", nil, PruneFiles); !errors.Is(err, ErrNotCached) {
		t.Fatalf("err = %v", err)
	}
}

func TestInvalidate(t *testing.T) {
	st, cred, clock := testEnv()
	writePartitionedTable(st, cred, "t/", []string{"d"}, 1, 10)
	cache := NewCache(clock, nil)
	cache.Refresh("ds.t", st, cred, "lake", "t/", RefreshOptions{})
	cache.Invalidate("ds.t")
	if _, err := cache.Files("ds.t"); !errors.Is(err, ErrNotCached) {
		t.Fatal("invalidate did not drop entries")
	}
}

func TestPrunePartitions(t *testing.T) {
	st, cred, clock := testEnv()
	writePartitionedTable(st, cred, "t/", []string{"2024-01-01", "2024-01-02", "2024-01-03"}, 2, 50)
	cache := NewCache(clock, nil)
	cache.Refresh("ds.t", st, cred, "lake", "t/", RefreshOptions{WithFileStats: true})

	preds := []colfmt.Predicate{{Column: "date", Op: vector.EQ, Value: vector.StringValue("2024-01-02")}}
	files, err := cache.Prune("ds.t", preds, PrunePartitionsOnly)
	if err != nil {
		t.Fatal(err)
	}
	if len(files) != 2 {
		t.Fatalf("pruned to %d files, want 2", len(files))
	}
	for _, f := range files {
		if f.Partition["date"] != "2024-01-02" {
			t.Fatal("wrong partition survived pruning")
		}
	}
}

func TestPruneFileStatsFinerThanPartitions(t *testing.T) {
	st, cred, clock := testEnv()
	// One partition, 10 files, ids are globally increasing, so an id
	// point-predicate hits exactly one file — but partition-only
	// pruning keeps all 10 (the Hive-metastore granularity, ablation
	// A1).
	writePartitionedTable(st, cred, "t/", []string{"d1"}, 10, 100)
	cache := NewCache(clock, nil)
	cache.Refresh("ds.t", st, cred, "lake", "t/", RefreshOptions{WithFileStats: true})

	preds := []colfmt.Predicate{{Column: "id", Op: vector.EQ, Value: vector.IntValue(555)}}
	byPartition, _ := cache.Prune("ds.t", preds, PrunePartitionsOnly)
	byFile, _ := cache.Prune("ds.t", preds, PruneFiles)
	if len(byPartition) != 10 {
		t.Fatalf("partition-only pruning kept %d, want 10", len(byPartition))
	}
	if len(byFile) != 1 {
		t.Fatalf("file-stat pruning kept %d, want 1", len(byFile))
	}
}

func TestPruneIntPartitionValues(t *testing.T) {
	st, cred, clock := testEnv()
	schema := vector.NewSchema(vector.Field{Name: "v", Type: vector.Int64})
	for _, h := range []int{1, 2, 3} {
		bl := vector.NewBuilder(schema)
		bl.Append(vector.IntValue(int64(h)))
		file, _ := colfmt.WriteFile(bl.Build(), colfmt.WriterOptions{})
		st.Put(cred, "lake", fmt.Sprintf("t/hour=%d/f.blk", h), file, "")
	}
	cache := NewCache(clock, nil)
	cache.Refresh("ds.t", st, cred, "lake", "t/", RefreshOptions{WithFileStats: true})
	preds := []colfmt.Predicate{{Column: "hour", Op: vector.GE, Value: vector.IntValue(2)}}
	files, _ := cache.Prune("ds.t", preds, PrunePartitionsOnly)
	if len(files) != 2 {
		t.Fatalf("int partition pruning kept %d, want 2", len(files))
	}
}

func TestPruneNoCacheStatsKeepsFile(t *testing.T) {
	e := FileEntry{Key: "f"}
	preds := []colfmt.Predicate{{Column: "x", Op: vector.EQ, Value: vector.IntValue(1)}}
	if !FileCanMatch(e, preds, PruneFiles) {
		t.Fatal("file without stats must be conservatively kept")
	}
}

func TestRefreshChargesClockForegroundOnly(t *testing.T) {
	st, cred, clock := testEnv()
	writePartitionedTable(st, cred, "t/", []string{"d"}, 8, 50)
	cache := NewCache(clock, nil)

	before := clock.Now()
	if _, err := cache.Refresh("ds.t", st, cred, "lake", "t/", RefreshOptions{WithFileStats: true}); err != nil {
		t.Fatal(err)
	}
	fg := clock.Now() - before
	if fg == 0 {
		t.Fatal("foreground refresh must cost simulated time")
	}

	before = clock.Now()
	if _, err := cache.Refresh("ds.t", st, cred, "lake", "t/", RefreshOptions{WithFileStats: true, Background: true}); err != nil {
		t.Fatal(err)
	}
	bg := clock.Now() - before
	if bg != 0 {
		t.Fatalf("background refresh charged %v to the critical path", bg)
	}
}

func TestStatsMerging(t *testing.T) {
	st, cred, clock := testEnv()
	writePartitionedTable(st, cred, "t/", []string{"d1", "d2"}, 2, 100)
	cache := NewCache(clock, nil)
	cache.Refresh("ds.t", st, cred, "lake", "t/", RefreshOptions{WithFileStats: true})
	ts, err := cache.Stats("ds.t")
	if err != nil {
		t.Fatal(err)
	}
	if ts.Files != 4 || ts.Rows != 400 {
		t.Fatalf("stats = %+v", ts)
	}
	idStats := ts.ColumnStats["id"]
	if idStats.Min.ToValue().AsInt() != 0 || idStats.Max.ToValue().AsInt() != 399 {
		t.Fatalf("merged id stats = %+v", idStats)
	}
}

// --- transaction log tests ---

func entry(key string, rows int64) FileEntry {
	return FileEntry{Bucket: "lake", Key: key, RowCount: rows}
}

func TestLogCommitAndSnapshot(t *testing.T) {
	clock := sim.NewClock()
	l := NewLog(clock, nil)
	v1, err := l.Commit("writer", map[string]TableDelta{
		"ds.t": {Added: []FileEntry{entry("f1", 10), entry("f2", 20)}},
	})
	if err != nil || v1 != 1 {
		t.Fatalf("commit: v=%d err=%v", v1, err)
	}
	v2, _ := l.Commit("writer", map[string]TableDelta{
		"ds.t": {Added: []FileEntry{entry("f3", 30)}, Removed: []string{"f1"}},
	})
	files, ver, err := l.Snapshot("ds.t", -1)
	if err != nil || ver != v2 {
		t.Fatalf("snapshot: %v ver=%d", err, ver)
	}
	if len(files) != 2 || files[0].Key != "f2" || files[1].Key != "f3" {
		t.Fatalf("files = %+v", files)
	}
	// Point-in-time read at v1.
	files, _, err = l.Snapshot("ds.t", v1)
	if err != nil || len(files) != 2 || files[0].Key != "f1" {
		t.Fatalf("snapshot@v1 = %+v, %v", files, err)
	}
}

func TestLogEmptyCommitRejected(t *testing.T) {
	l := NewLog(sim.NewClock(), nil)
	if _, err := l.Commit("w", nil); err == nil {
		t.Fatal("empty commit should fail")
	}
}

func TestLogMultiTableTransaction(t *testing.T) {
	l := NewLog(sim.NewClock(), nil)
	v, err := l.Commit("writer", map[string]TableDelta{
		"ds.a": {Added: []FileEntry{entry("a1", 1)}},
		"ds.b": {Added: []FileEntry{entry("b1", 1)}},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Both tables see the same version atomically.
	fa, va, _ := l.Snapshot("ds.a", -1)
	fb, vb, _ := l.Snapshot("ds.b", -1)
	if va != v || vb != v || len(fa) != 1 || len(fb) != 1 {
		t.Fatalf("multi-table commit not atomic: va=%d vb=%d", va, vb)
	}
}

func TestLogFutureVersionRejected(t *testing.T) {
	l := NewLog(sim.NewClock(), nil)
	l.Commit("w", map[string]TableDelta{"t": {Added: []FileEntry{entry("f", 1)}}})
	if _, _, err := l.Snapshot("t", 99); !errors.Is(err, ErrNoSnapshot) {
		t.Fatalf("future snapshot: %v", err)
	}
}

func TestLogCompactionPreservesReads(t *testing.T) {
	l := NewLog(sim.NewClock(), nil)
	l.BaselineEvery = 0 // manual compaction
	for i := 0; i < 50; i++ {
		l.Commit("w", map[string]TableDelta{
			"t": {Added: []FileEntry{entry(fmt.Sprintf("f%03d", i), 1)}},
		})
	}
	before, _, _ := l.Snapshot("t", -1)
	l.Compact()
	if l.TailLen() != 0 || l.BaselineVersion() != 50 {
		t.Fatalf("tail=%d baseline=%d", l.TailLen(), l.BaselineVersion())
	}
	after, _, _ := l.Snapshot("t", -1)
	if len(before) != len(after) {
		t.Fatalf("compaction changed file count %d -> %d", len(before), len(after))
	}
	// Reads older than the baseline replay history.
	old, _, err := l.Snapshot("t", 10)
	if err != nil || len(old) != 10 {
		t.Fatalf("pre-baseline snapshot = %d files, %v", len(old), err)
	}
	// Post-compaction commits reconcile baseline + tail.
	l.Commit("w", map[string]TableDelta{"t": {Removed: []string{"f000"}}})
	final, _, _ := l.Snapshot("t", -1)
	if len(final) != 49 {
		t.Fatalf("after remove: %d files", len(final))
	}
}

func TestLogAutoCompaction(t *testing.T) {
	l := NewLog(sim.NewClock(), nil)
	l.BaselineEvery = 8
	for i := 0; i < 20; i++ {
		l.Commit("w", map[string]TableDelta{"t": {Added: []FileEntry{entry(fmt.Sprintf("f%d", i), 1)}}})
	}
	if l.TailLen() >= 8 {
		t.Fatalf("tail = %d, auto compaction did not run", l.TailLen())
	}
	files, _, _ := l.Snapshot("t", -1)
	if len(files) != 20 {
		t.Fatalf("files = %d", len(files))
	}
}

func TestLogReplayMatchesSnapshot(t *testing.T) {
	l := NewLog(sim.NewClock(), nil)
	for i := 0; i < 30; i++ {
		d := TableDelta{Added: []FileEntry{entry(fmt.Sprintf("f%02d", i), 1)}}
		if i%5 == 4 {
			d.Removed = []string{fmt.Sprintf("f%02d", i-2)}
		}
		l.Commit("w", map[string]TableDelta{"t": d})
	}
	a, _, _ := l.Snapshot("t", -1)
	b, _, _ := l.SnapshotByReplay("t", -1)
	if len(a) != len(b) {
		t.Fatalf("snapshot %d files, replay %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Key != b[i].Key {
			t.Fatalf("file %d: %s vs %s", i, a[i].Key, b[i].Key)
		}
	}
}

func TestLogHistoryIsTamperEvident(t *testing.T) {
	l := NewLog(sim.NewClock(), nil)
	l.Commit("alice", map[string]TableDelta{"t": {Added: []FileEntry{entry("f1", 1)}}})
	l.Commit("bob", map[string]TableDelta{"t": {Removed: []string{"f1"}}})
	hist := l.History("t")
	if len(hist) != 2 || hist[0].Principal != "alice" || hist[1].Principal != "bob" {
		t.Fatalf("history = %+v", hist)
	}
	// Mutating the returned copy must not alter the log.
	hist[0].Principal = "mallory"
	if l.History("t")[0].Principal != "alice" {
		t.Fatal("history was tampered via returned slice")
	}
	if got := len(l.History("")); got != 2 {
		t.Fatalf("full history = %d", got)
	}
	if got := len(l.History("other")); got != 0 {
		t.Fatalf("other-table history = %d", got)
	}
}

func TestLogCommitThroughputBeatsObjectStore(t *testing.T) {
	// The §3.5 shape: N commits through Big Metadata advance simulated
	// time far less than N conditional object-store commits.
	clockA := sim.NewClock()
	l := NewLog(clockA, nil)
	for i := 0; i < 50; i++ {
		l.Commit("w", map[string]TableDelta{"t": {Added: []FileEntry{entry(fmt.Sprintf("f%d", i), 1)}}})
	}
	metaTime := clockA.Now()

	clockB := sim.NewClock()
	st := objstore.New(sim.GCP, clockB, nil)
	cred := objstore.Credential{Principal: "w"}
	st.CreateBucket(cred, "b")
	gen := int64(0)
	for i := 0; i < 50; i++ {
		info, err := st.PutIfGeneration(cred, "b", "metadata.json", []byte("snap"), "", gen)
		if err != nil {
			t.Fatal(err)
		}
		gen = info.Generation
	}
	storeTime := clockB.Now()

	if metaTime*10 >= storeTime {
		t.Fatalf("Big Metadata commits (%v) should be >10x faster than object-store commits (%v)", metaTime, storeTime)
	}
}

func TestCommitDeltasAreCopied(t *testing.T) {
	l := NewLog(sim.NewClock(), nil)
	added := []FileEntry{entry("f1", 1)}
	l.Commit("w", map[string]TableDelta{"t": {Added: added}})
	added[0].Key = "tampered"
	files, _, _ := l.Snapshot("t", -1)
	if files[0].Key != "f1" {
		t.Fatal("commit did not copy its input")
	}
}

func TestMergeStatsEmptyAndDisjoint(t *testing.T) {
	ts := MergeStats(nil)
	if ts.Files != 0 || ts.Rows != 0 {
		t.Fatal("empty merge")
	}
	e1 := FileEntry{Size: 10, RowCount: 1, ColumnStats: map[string]colfmt.ColumnStats{
		"a": {Min: colfmt.FromValue(vector.IntValue(5)), Max: colfmt.FromValue(vector.IntValue(9))},
	}}
	e2 := FileEntry{Size: 20, RowCount: 2, ColumnStats: map[string]colfmt.ColumnStats{
		"a": {Min: colfmt.FromValue(vector.IntValue(1)), Max: colfmt.FromValue(vector.IntValue(7))},
		"b": {Min: colfmt.FromValue(vector.StringValue("x")), Max: colfmt.FromValue(vector.StringValue("y"))},
	}}
	ts = MergeStats([]FileEntry{e1, e2})
	if ts.TotalBytes != 30 || ts.Rows != 3 {
		t.Fatalf("merge = %+v", ts)
	}
	a := ts.ColumnStats["a"]
	if a.Min.ToValue().AsInt() != 1 || a.Max.ToValue().AsInt() != 9 {
		t.Fatalf("a stats = %+v", a)
	}
	if _, ok := ts.ColumnStats["b"]; !ok {
		t.Fatal("disjoint column lost")
	}
}

func TestRefreshLatencyFarBelowPerQueryListing(t *testing.T) {
	// E1/E6 shape precondition: answering "which files?" from the
	// cache is free, while listing + footer-peeking on the query path
	// costs seconds.
	st, cred, clock := testEnv()
	writePartitionedTable(st, cred, "t/", []string{"d1", "d2", "d3", "d4"}, 5, 20)
	cache := NewCache(clock, nil)
	cache.Refresh("ds.t", st, cred, "lake", "t/", RefreshOptions{WithFileStats: true, Background: true})

	before := clock.Now()
	if _, err := cache.Prune("ds.t", []colfmt.Predicate{{Column: "date", Op: vector.EQ, Value: vector.StringValue("d2")}}, PruneFiles); err != nil {
		t.Fatal(err)
	}
	if cost := clock.Now() - before; cost != 0 {
		t.Fatalf("cache-served pruning cost %v of simulated time", cost)
	}

	before = clock.Now()
	if _, err := st.ListAll(cred, "lake", "t/"); err != nil {
		t.Fatal(err)
	}
	if cost := clock.Now() - before; cost < 50*time.Millisecond {
		t.Fatalf("direct listing cost only %v", cost)
	}
}

func TestSnapshotPinCacheServesHistoricalVersions(t *testing.T) {
	meter := &sim.Meter{}
	l := NewLog(sim.NewClock(), meter)
	l.BaselineEvery = 0 // manual compaction
	for i := 0; i < 20; i++ {
		l.Commit("w", map[string]TableDelta{
			"t": {Added: []FileEntry{entry(fmt.Sprintf("f%03d", i), 1)}},
		})
	}
	l.Compact()
	// First pre-baseline read pays a replay and fills the pin cache...
	f1, _, err := l.Snapshot("t", 5)
	if err != nil || len(f1) != 5 {
		t.Fatalf("snapshot@5 = %d files, %v", len(f1), err)
	}
	if meter.Get("meta_snapshot_pin_misses") != 1 || meter.Get("meta_snapshot_replays") != 1 {
		t.Fatalf("first read: misses=%d replays=%d, want 1/1",
			meter.Get("meta_snapshot_pin_misses"), meter.Get("meta_snapshot_replays"))
	}
	// ...the caller may mutate its copy without corrupting the cache...
	f1[0].Key = "clobbered"
	// ...and every subsequent read of the same (table, version) is a
	// cache hit with no further replay.
	for i := 0; i < 3; i++ {
		f, _, err := l.Snapshot("t", 5)
		if err != nil || len(f) != 5 || f[0].Key != "f000" {
			t.Fatalf("pinned read %d = %+v, %v", i, f, err)
		}
	}
	if hits := meter.Get("meta_snapshot_pin_hits"); hits != 3 {
		t.Fatalf("pin hits = %d, want 3", hits)
	}
	if meter.Get("meta_snapshot_replays") != 1 {
		t.Fatalf("replays = %d, want 1 (cache must serve repeats)", meter.Get("meta_snapshot_replays"))
	}
}

func TestCommitTxIfValidatesAgainstConcurrentCommits(t *testing.T) {
	meter := &sim.Meter{}
	l := NewLog(sim.NewClock(), meter)
	snap, _ := l.Commit("w", map[string]TableDelta{"t": {Added: []FileEntry{entry("f1", 1)}}})
	// A concurrent commit lands after the snapshot.
	l.Commit("w", map[string]TableDelta{"t": {Removed: []string{"f1"}, Added: []FileEntry{entry("f2", 1)}}})

	wantErr := errors.New("conflict on f1")
	check := func(rec CommitRecord) error {
		for _, d := range rec.Deltas {
			for _, k := range d.Removed {
				if k == "f1" {
					return wantErr
				}
			}
		}
		return nil
	}
	// Validation sees exactly the records after snap and rejects.
	if _, err := l.CommitTxIf("w", TxOptions{}, map[string]TableDelta{"t": {Added: []FileEntry{entry("f3", 1)}}}, snap, check); !errors.Is(err, wantErr) {
		t.Fatalf("CommitTxIf err = %v, want conflict", err)
	}
	if meter.Get("meta_commit_conflicts") != 1 {
		t.Fatalf("meta_commit_conflicts = %d, want 1", meter.Get("meta_commit_conflicts"))
	}
	// Validating from the later version passes: nothing new to check.
	if _, err := l.CommitTxIf("w", TxOptions{}, map[string]TableDelta{"t": {Added: []FileEntry{entry("f3", 1)}}}, l.Version(), check); err != nil {
		t.Fatalf("CommitTxIf at head: %v", err)
	}
}

// TestQuarantineLifecycle pins the containment bookkeeping: sealed
// quarantine commits, idempotent re-quarantine, lifting by
// Unquarantine, and the Removed-clears-marks rule that lets repair
// swap a file and lift its mark in one commit.
func TestQuarantineLifecycle(t *testing.T) {
	_, _, clock := testEnv()
	log := NewLog(clock, nil)
	if _, err := log.Commit("loader", map[string]TableDelta{"ds.t": {Added: []FileEntry{
		{Bucket: "lake", Key: "t/a.blk", Size: 1},
		{Bucket: "lake", Key: "t/b.blk", Size: 1},
	}}}); err != nil {
		t.Fatal(err)
	}

	mark := QuarantineMark{Key: "t/a.blk", Source: "scrub", Reason: "crc mismatch", Time: clock.Now()}
	v1, err := log.QuarantineFile("scrubber", "ds.t", mark)
	if err != nil {
		t.Fatal(err)
	}
	if got, ok := log.IsQuarantined("ds.t", "t/a.blk"); !ok || got.Reason != "crc mismatch" {
		t.Fatalf("IsQuarantined = %+v, %v", got, ok)
	}
	if _, ok := log.IsQuarantined("ds.t", "t/b.blk"); ok {
		t.Fatal("healthy file quarantined")
	}
	// Re-quarantining the same key is a no-op: no extra commit.
	v2, err := log.QuarantineFile("scrubber", "ds.t", mark)
	if err != nil {
		t.Fatal(err)
	}
	if v2 != v1 || log.Version() != v1 {
		t.Fatalf("re-quarantine committed: v1=%d v2=%d version=%d", v1, v2, log.Version())
	}
	if _, err := log.QuarantineFile("scrubber", "ds.t", QuarantineMark{}); err == nil {
		t.Fatal("empty-key quarantine accepted")
	}

	// Unquarantine lifts the mark.
	if _, err := log.Commit("repair", map[string]TableDelta{"ds.t": {Unquarantine: []string{"t/a.blk"}}}); err != nil {
		t.Fatal(err)
	}
	if marks := log.Quarantined("ds.t"); len(marks) != 0 {
		t.Fatalf("marks after unquarantine = %+v", marks)
	}

	// Removing a quarantined file clears its mark in the same commit —
	// the repair path's atomic swap.
	if _, err := log.QuarantineFile("scrubber", "ds.t", mark); err != nil {
		t.Fatal(err)
	}
	if _, err := log.Commit("repair", map[string]TableDelta{"ds.t": {
		Removed: []string{"t/a.blk"},
		Added:   []FileEntry{{Bucket: "lake", Key: "t/a2.blk", Size: 1}},
	}}); err != nil {
		t.Fatal(err)
	}
	if marks := log.Quarantined("ds.t"); len(marks) != 0 {
		t.Fatalf("Removed did not clear the mark: %+v", marks)
	}
	files, _, err := log.Snapshot("ds.t", -1)
	if err != nil {
		t.Fatal(err)
	}
	if len(files) != 2 {
		t.Fatalf("snapshot = %+v", files)
	}
}
