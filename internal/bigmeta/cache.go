// Package bigmeta implements the repository's version of Big Metadata
// (Edara & Pasumansky, VLDB'21), the scalable physical-metadata system
// BigLake reuses for two roles:
//
//   - the metadata cache of §3.3: a columnar-grained cache of file
//     names, partitioning information, sizes, row counts and per-file
//     column statistics, refreshed in the background with the table's
//     delegated connection, letting queries avoid object-store LIST
//     calls and footer peeks entirely while enabling partition and
//     file pruning; and
//
//   - the BLMT transaction log of §3.5: a stateful service that holds
//     the tail of each table's commit log in memory and periodically
//     converts it to columnar baselines, supporting commit rates far
//     beyond object-store-committed table formats, multi-table
//     transactions and a tamper-proof audit history.
package bigmeta

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"biglake/internal/colfmt"
	"biglake/internal/objstore"
	"biglake/internal/obs"
	"biglake/internal/resilience"
	"biglake/internal/sim"
	"biglake/internal/vector"
)

// Errors returned by bigmeta.
var (
	ErrNotCached  = errors.New("bigmeta: table not in metadata cache")
	ErrNoSnapshot = errors.New("bigmeta: no snapshot at requested version")
)

// FileEntry is the cached physical metadata for one object — the unit
// the §3.3 cache tracks, "at a finer granularity than systems like the
// Hive Metastore".
type FileEntry struct {
	Bucket      string
	Key         string
	Size        int64
	RowCount    int64
	Partition   map[string]string
	ColumnStats map[string]colfmt.ColumnStats
	ContentType string
	Created     time.Duration
	Updated     time.Duration
	Generation  int64
	Custom      map[string]string
}

// PartitionOf parses hive-style partition components out of an object
// key relative to a table prefix: "p/date=2024-01-01/f.blk" yields
// {"date": "2024-01-01"}.
func PartitionOf(prefix, key string) map[string]string {
	rel := strings.TrimPrefix(key, prefix)
	parts := strings.Split(rel, "/")
	var out map[string]string
	for _, p := range parts[:max(0, len(parts)-1)] {
		if i := strings.IndexByte(p, '='); i > 0 {
			if out == nil {
				out = make(map[string]string)
			}
			out[p[:i]] = p[i+1:]
		}
	}
	return out
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// RefreshWorkers is the parallelism of the background refresh
// pipeline that collects footer statistics.
const RefreshWorkers = 16

// Cache is the metadata cache for BigLake and Object tables.
type Cache struct {
	clock *sim.Clock
	meter *sim.Meter
	sink  obs.Sink

	// Res is the retry policy for the store operations a refresh
	// issues; a refresh that hits a transient LIST/GET fault retries
	// rather than leaving the cache unbuilt. Nil means no retries.
	Res *resilience.Policy

	mu        sync.RWMutex
	entries   map[string][]FileEntry
	refreshed map[string]time.Duration
}

// NewCache returns an empty cache charging background work to clock.
func NewCache(clock *sim.Clock, meter *sim.Meter) *Cache {
	if meter == nil {
		meter = &sim.Meter{}
	}
	res := resilience.DefaultPolicy()
	res.Meter = meter
	return &Cache{
		clock:     clock,
		meter:     meter,
		sink:      meter,
		Res:       res,
		entries:   make(map[string][]FileEntry),
		refreshed: make(map[string]time.Duration),
	}
}

// UseObs tees the cache's counters into a shared registry under
// "bigmeta."-prefixed names (legacy meter names keep working) and
// routes refresh retry metrics under "resilience.*".
func (c *Cache) UseObs(r *obs.Registry) {
	if r == nil {
		return
	}
	c.sink = obs.Tee(c.meter, r.Prefixed("bigmeta."))
	if c.Res != nil {
		c.Res.Meter = obs.Tee(c.meter, r.Prefixed("resilience."))
	}
}

// RefreshOptions configures one refresh pass.
type RefreshOptions struct {
	// WithFileStats reads each data file's footer to collect row
	// counts and column statistics (BigLake tables). Object tables
	// refresh with this disabled: object attributes suffice.
	WithFileStats bool
	// Background charges refresh latency to a side track rather than
	// the global clock's critical path, modelling asynchronous cache
	// maintenance. When false the caller waits for the refresh.
	Background bool
}

// Refresh (re)builds the cache for table from the object store using
// the table's delegated connection credential — the maintenance
// operation of §3.1 that must run outside any user query context.
func (c *Cache) Refresh(table string, store *objstore.Store, cred objstore.Credential, bucket, prefix string, opts RefreshOptions) (int, error) {
	// The listing itself is sequential pagination. In background mode
	// every charge lands on side tracks that are never joined, keeping
	// maintenance off the query critical path.
	var listCharger sim.Charger = c.clock
	if opts.Background {
		listCharger = c.clock.StartTrack()
	}
	// Each refresh gets its own retry budget, seeded by the table name
	// so fault sequences reproduce.
	bud := resilience.NewBudget(c.clock, refreshRetryBudget, resilience.Seed64(table))
	infos, err := resilience.ListAll(c.Res, listCharger, bud, store, cred, bucket, prefix)
	if err != nil {
		return 0, err
	}

	entries := make([]FileEntry, len(infos))
	var firstErr error
	var errMu sync.Mutex

	// Footer collection fans out over parallel tracks.
	var wg sync.WaitGroup
	sem := make(chan struct{}, RefreshWorkers)
	tracks := make([]*sim.Track, RefreshWorkers)
	for i := range tracks {
		tracks[i] = c.clock.StartTrack()
	}
	for i, info := range infos {
		entries[i] = FileEntry{
			Bucket:      bucket,
			Key:         info.Key,
			Size:        info.Size,
			Partition:   PartitionOf(prefix, info.Key),
			ContentType: info.ContentType,
			Created:     info.Created,
			Updated:     info.Updated,
			Generation:  info.Generation,
			Custom:      info.Custom,
		}
		if !opts.WithFileStats {
			continue
		}
		wg.Add(1)
		go func(i int, key string) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			tr := tracks[i%RefreshWorkers]
			stats, rows, err := readFooterStats(c.Res, bud, store, cred, bucket, key, tr)
			if err != nil {
				errMu.Lock()
				if firstErr == nil {
					firstErr = err
				}
				errMu.Unlock()
				return
			}
			entries[i].ColumnStats = stats
			entries[i].RowCount = rows
		}(i, info.Key)
	}
	wg.Wait()
	if firstErr != nil {
		return 0, firstErr
	}
	if !opts.Background {
		for _, tr := range tracks {
			tr.Join()
		}
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].Key < entries[j].Key })

	c.mu.Lock()
	c.entries[table] = entries
	c.refreshed[table] = c.clock.Now()
	c.mu.Unlock()
	c.sink.Add("cache_refreshes", 1)
	return len(entries), nil
}

// refreshRetryBudget bounds the retries one refresh pass may spend
// across its LIST pages and footer reads.
const refreshRetryBudget = 64

// readFooterStats performs the two ranged reads a real engine does:
// the trailer to learn the footer size, then the footer itself. Remote
// calls retry under the cache's policy; ranged reads are hedged.
func readFooterStats(res *resilience.Policy, bud *resilience.Budget, store *objstore.Store, cred objstore.Credential, bucket, key string, tr *sim.Track) (map[string]colfmt.ColumnStats, int64, error) {
	var info objstore.ObjectInfo
	if err := res.Do(tr, bud, "HEAD "+bucket+"/"+key, func() error {
		var e error
		info, e = store.HeadOn(tr, cred, bucket, key)
		return e
	}); err != nil {
		return nil, 0, err
	}
	var tail []byte
	if err := res.HedgedDo(tr, bud, "GET "+bucket+"/"+key, func(ch sim.Charger) error {
		d, _, e := store.GetRangeOn(ch, cred, bucket, key, max64(0, info.Size-64*1024), -1)
		if e != nil {
			return e
		}
		tail = d
		return nil
	}); err != nil {
		return nil, 0, err
	}
	footer, err := colfmt.ReadFooter(tail)
	if err != nil {
		// Footer larger than our 64KB guess: fall back to full read.
		var full []byte
		if err2 := res.HedgedDo(tr, bud, "GET "+bucket+"/"+key, func(ch sim.Charger) error {
			d, _, e := store.GetOn(ch, cred, bucket, key)
			if e != nil {
				return e
			}
			full = d
			return nil
		}); err2 != nil {
			return nil, 0, err2
		}
		footer, err = colfmt.ReadFooter(full)
		if err != nil {
			return nil, 0, fmt.Errorf("bigmeta: %s/%s: %w", bucket, key, err)
		}
	}
	stats := make(map[string]colfmt.ColumnStats)
	for _, f := range footer.Fields {
		if st, ok := footer.ColumnStatsFor(f.Name); ok {
			stats[f.Name] = st
		}
	}
	return stats, footer.Rows, nil
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// Files returns the cached entries for a table.
func (c *Cache) Files(table string) ([]FileEntry, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	entries, ok := c.entries[table]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotCached, table)
	}
	out := make([]FileEntry, len(entries))
	copy(out, entries)
	return out, nil
}

// RefreshedAt reports when the table's cache was last rebuilt.
func (c *Cache) RefreshedAt(table string) (time.Duration, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	ts, ok := c.refreshed[table]
	return ts, ok
}

// Invalidate drops a table's cached metadata.
func (c *Cache) Invalidate(table string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	delete(c.entries, table)
	delete(c.refreshed, table)
}

// PruneGranularity selects how much of the cached metadata pruning may
// use (ablation A1).
type PruneGranularity int

// Pruning granularities.
const (
	// PrunePartitionsOnly uses only hive partition values, like a
	// Hive-metastore-backed engine.
	PrunePartitionsOnly PruneGranularity = iota
	// PruneFiles additionally applies per-file column statistics —
	// the finer granularity Big Metadata tracks.
	PruneFiles
)

// Prune returns the cached files that could contain rows matching all
// predicates, using partition values and (at PruneFiles granularity)
// per-file column statistics. It never touches the object store.
func (c *Cache) Prune(table string, preds []colfmt.Predicate, g PruneGranularity) ([]FileEntry, error) {
	entries, err := c.Files(table)
	if err != nil {
		return nil, err
	}
	out := entries[:0]
	for _, e := range entries {
		if FileCanMatch(e, preds, g) {
			out = append(out, e)
		}
	}
	return out, nil
}

// FileCanMatch reports whether a file's metadata admits rows matching
// every predicate.
func FileCanMatch(e FileEntry, preds []colfmt.Predicate, g PruneGranularity) bool {
	for _, p := range preds {
		// Partition pruning: exact-typed comparison on the partition
		// value.
		if pv, ok := e.Partition[p.Column]; ok {
			v := parsePartitionValue(pv, p.Value.Type)
			if !v.IsNull() && !p.Op.Eval(v.Compare(p.Value)) {
				return false
			}
			continue
		}
		if g == PruneFiles && e.ColumnStats != nil {
			// statsCanSatisfy is a build-tag seam: the oraclebug tag
			// swaps in a deliberately wrong comparison so the
			// differential fuzzer can prove it catches pruning bugs.
			if st, ok := e.ColumnStats[p.Column]; ok && !statsCanSatisfy(p, st) {
				return false
			}
		}
	}
	return true
}

func parsePartitionValue(s string, t vector.Type) vector.Value {
	switch t {
	case vector.Int64, vector.Timestamp:
		var v int64
		if _, err := fmt.Sscanf(s, "%d", &v); err != nil {
			return vector.NullValue
		}
		return vector.Value{Type: t, I: v}
	case vector.Float64:
		var v float64
		if _, err := fmt.Sscanf(s, "%g", &v); err != nil {
			return vector.NullValue
		}
		return vector.FloatValue(v)
	case vector.Bool:
		return vector.BoolValue(s == "true")
	default:
		return vector.StringValue(s)
	}
}

// TableStats aggregates cached stats for planner use (§3.4: the Read
// API returns these to external engines).
type TableStats struct {
	Files       int64
	Rows        int64
	TotalBytes  int64
	ColumnStats map[string]colfmt.ColumnStats
}

// Stats merges all file entries into table-level statistics.
func (c *Cache) Stats(table string) (TableStats, error) {
	entries, err := c.Files(table)
	if err != nil {
		return TableStats{}, err
	}
	return MergeStats(entries), nil
}

// MergeStats folds file entries into table-level statistics.
func MergeStats(entries []FileEntry) TableStats {
	ts := TableStats{ColumnStats: make(map[string]colfmt.ColumnStats)}
	for _, e := range entries {
		ts.Files++
		ts.Rows += e.RowCount
		ts.TotalBytes += e.Size
		for col, st := range e.ColumnStats {
			cur, ok := ts.ColumnStats[col]
			if !ok {
				ts.ColumnStats[col] = st
				continue
			}
			if min := st.Min.ToValue(); !min.IsNull() && (cur.Min.ToValue().IsNull() || min.Compare(cur.Min.ToValue()) < 0) {
				cur.Min = st.Min
			}
			if max := st.Max.ToValue(); !max.IsNull() && (cur.Max.ToValue().IsNull() || max.Compare(cur.Max.ToValue()) > 0) {
				cur.Max = st.Max
			}
			cur.Nulls += st.Nulls
			cur.Distinct += st.Distinct
			ts.ColumnStats[col] = cur
		}
	}
	return ts
}
