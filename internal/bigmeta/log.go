package bigmeta

import (
	"fmt"
	"sync"
	"time"

	"biglake/internal/sim"
)

// CommitLatency is the simulated cost of one Big Metadata commit: the
// stateful service appends to an in-memory tail backed by a replicated
// small-state store (Spanner in production). Contrast with the
// ~200ms-per-mutation object-store commit path of open table formats
// (§3.5).
const CommitLatency = 2 * time.Millisecond

// TableDelta is the change one commit applies to one table.
type TableDelta struct {
	Added   []FileEntry
	Removed []string // object keys
}

// CommitRecord is one entry in a table's tamper-proof history.
type CommitRecord struct {
	Version   int64
	Time      time.Duration
	Principal string
	Tables    []string
	Deltas    map[string]TableDelta
}

// Log is the Big Metadata transaction log service. Writers never touch
// the log representation directly — all mutations go through Commit,
// which is what makes BLMT history tamper-proof with a reliable audit
// trail (§3.5).
type Log struct {
	clock *sim.Clock
	meter *sim.Meter

	mu      sync.RWMutex
	version int64
	tail    []CommitRecord // commits after the baseline
	history []CommitRecord // full audit history (append-only)

	// Columnar baselines: per-table compacted file lists as of
	// baselineVersion.
	baselineVersion int64
	baseline        map[string][]FileEntry

	// BaselineEvery triggers automatic compaction after this many tail
	// commits (0 disables).
	BaselineEvery int
}

// NewLog returns an empty transaction log.
func NewLog(clock *sim.Clock, meter *sim.Meter) *Log {
	if meter == nil {
		meter = &sim.Meter{}
	}
	return &Log{
		clock:         clock,
		meter:         meter,
		baseline:      make(map[string][]FileEntry),
		BaselineEvery: 64,
	}
}

// Commit atomically applies deltas to every named table — a
// multi-table transaction, the §3.5 feature open table formats lack —
// and returns the new log version.
func (l *Log) Commit(principal string, deltas map[string]TableDelta) (int64, error) {
	if len(deltas) == 0 {
		return 0, fmt.Errorf("bigmeta: empty commit")
	}
	l.clock.Advance(CommitLatency)
	l.mu.Lock()
	defer l.mu.Unlock()
	l.version++
	rec := CommitRecord{
		Version:   l.version,
		Time:      l.clock.Now(),
		Principal: principal,
		Deltas:    make(map[string]TableDelta, len(deltas)),
	}
	for table, d := range deltas {
		rec.Tables = append(rec.Tables, table)
		cp := TableDelta{
			Added:   append([]FileEntry(nil), d.Added...),
			Removed: append([]string(nil), d.Removed...),
		}
		rec.Deltas[table] = cp
	}
	l.tail = append(l.tail, rec)
	l.history = append(l.history, rec)
	l.meter.Add("meta_commits", 1)
	if l.BaselineEvery > 0 && len(l.tail) >= l.BaselineEvery {
		l.compactLocked()
	}
	return l.version, nil
}

// Version returns the latest committed version.
func (l *Log) Version() int64 {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return l.version
}

// Compact converts the tail into columnar baselines ("Big Metadata
// periodically converts the transaction log to columnar baselines for
// read efficiency").
func (l *Log) Compact() {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.compactLocked()
}

func (l *Log) compactLocked() {
	for _, rec := range l.tail {
		for table, d := range rec.Deltas {
			l.baseline[table] = applyDelta(l.baseline[table], d)
		}
	}
	l.baselineVersion = l.version
	l.tail = nil
	l.meter.Add("meta_compactions", 1)
}

func applyDelta(files []FileEntry, d TableDelta) []FileEntry {
	if len(d.Removed) > 0 {
		rm := make(map[string]bool, len(d.Removed))
		for _, k := range d.Removed {
			rm[k] = true
		}
		kept := files[:0]
		for _, f := range files {
			if !rm[f.Key] {
				kept = append(kept, f)
			}
		}
		files = kept
	}
	return append(files, d.Added...)
}

// Snapshot returns the table's file list as of version (-1 = latest)
// along with the snapshot version. Reads reconcile the columnar
// baseline with the in-memory tail.
func (l *Log) Snapshot(table string, version int64) ([]FileEntry, int64, error) {
	l.mu.RLock()
	defer l.mu.RUnlock()
	if version < 0 {
		version = l.version
	}
	if version > l.version {
		return nil, 0, fmt.Errorf("%w: version %d > latest %d", ErrNoSnapshot, version, l.version)
	}
	if version < l.baselineVersion {
		// Point-in-time reads older than the baseline replay the full
		// audit history.
		files := replay(l.history, table, version)
		return files, version, nil
	}
	files := append([]FileEntry(nil), l.baseline[table]...)
	for _, rec := range l.tail {
		if rec.Version > version {
			break
		}
		if d, ok := rec.Deltas[table]; ok {
			files = applyDelta(files, d)
		}
	}
	return files, version, nil
}

// SnapshotByReplay reconstructs the file list by replaying the entire
// history with no baseline — the A3 ablation baseline for read cost.
func (l *Log) SnapshotByReplay(table string, version int64) ([]FileEntry, int64, error) {
	l.mu.RLock()
	defer l.mu.RUnlock()
	if version < 0 {
		version = l.version
	}
	if version > l.version {
		return nil, 0, fmt.Errorf("%w: version %d > latest %d", ErrNoSnapshot, version, l.version)
	}
	return replay(l.history, table, version), version, nil
}

func replay(history []CommitRecord, table string, version int64) []FileEntry {
	var files []FileEntry
	for _, rec := range history {
		if rec.Version > version {
			break
		}
		if d, ok := rec.Deltas[table]; ok {
			files = applyDelta(files, d)
		}
	}
	return files
}

// History returns the audit records touching a table (all records if
// table is empty). The returned slice is a copy; callers cannot alter
// history.
func (l *Log) History(table string) []CommitRecord {
	l.mu.RLock()
	defer l.mu.RUnlock()
	var out []CommitRecord
	for _, rec := range l.history {
		if table == "" {
			out = append(out, rec)
			continue
		}
		if _, ok := rec.Deltas[table]; ok {
			out = append(out, rec)
		}
	}
	return out
}

// TailLen reports the current in-memory tail length (observability).
func (l *Log) TailLen() int {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return len(l.tail)
}

// BaselineVersion reports the version the baselines are compacted to.
func (l *Log) BaselineVersion() int64 {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return l.baselineVersion
}
