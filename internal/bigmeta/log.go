package bigmeta

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"biglake/internal/crashpoint"
	"biglake/internal/obs"
	"biglake/internal/sim"
)

// CommitLatency is the simulated cost of one Big Metadata commit: the
// stateful service appends to an in-memory tail backed by a replicated
// small-state store (Spanner in production). Contrast with the
// ~200ms-per-mutation object-store commit path of open table formats
// (§3.5).
const CommitLatency = 2 * time.Millisecond

// TableDelta is the change one commit applies to one table.
type TableDelta struct {
	Added   []FileEntry
	Removed []string // object keys
	// Quarantine marks files as integrity-quarantined; Unquarantine
	// lifts marks (a successful repair). Both ride inside sealed
	// commits so containment state is as durable as the data it
	// protects. See quarantine.go.
	Quarantine   []QuarantineMark
	Unquarantine []string
}

// CommitRecord is one entry in a table's tamper-proof history.
type CommitRecord struct {
	Version   int64
	Time      time.Duration
	Principal string
	Tables    []string
	Deltas    map[string]TableDelta
}

// StreamState is the durable per-write-stream state a commit carries
// into the journal: the offsets a crashed Write API client may resume
// AppendRows from. In production BigQuery this state lives in the same
// Spanner-backed small-state store as the log itself; here it rides
// inside sealed commit records so recovery rebuilds both atomically.
type StreamState struct {
	Table     string `json:"table"`
	Principal string `json:"principal"`
	// Mode mirrors storageapi.WriteMode (0 committed, 1 pending,
	// 2 buffered) without importing it.
	Mode int `json:"mode"`
	// Offset is the durable row offset: rows below it are committed
	// (committed mode) or flushed (buffered mode). A recovered stream
	// accepts AppendRows at exactly this offset.
	Offset int64 `json:"offset"`
	// FlushSeq numbers the stream's successful flushes, so recovered
	// streams keep minting the same deterministic data-file keys.
	FlushSeq  int64 `json:"flush_seq"`
	Finalized bool  `json:"finalized"`
	Committed bool  `json:"committed"`
}

// TxCommit is the journal-facing form of one sealed commit: everything
// a recovery replay needs to reproduce the in-memory CommitRecord plus
// the idempotency and stream bookkeeping around it.
type TxCommit struct {
	TxnID     string                 `json:"txn_id,omitempty"`
	IntentSeq int64                  `json:"intent_seq,omitempty"`
	Principal string                 `json:"principal"`
	Version   int64                  `json:"version"`
	Time      time.Duration          `json:"time"`
	Deltas    map[string]TableDelta  `json:"deltas"`
	Streams   map[string]StreamState `json:"streams,omitempty"`
}

// CommitSink is the durable write-ahead hook: when attached, every
// commit is appended to the sink *before* it becomes visible in
// memory, so a commit that was acknowledged is always recoverable and
// a commit that never reached the sink never happened. internal/wal
// implements this against the object store.
type CommitSink interface {
	AppendCommit(rec TxCommit) error
}

// TxOptions carries the transactional envelope of one commit.
type TxOptions struct {
	// TxnID is the client-supplied idempotency ID. A commit replayed
	// with a TxnID the log has already applied is an exact no-op that
	// returns the original version. Empty disables deduplication.
	TxnID string
	// IntentSeq links the sealed commit to the journal intent record
	// that opened the transaction (0 = none).
	IntentSeq int64
	// Streams is durable Write API stream state sealed atomically with
	// the commit.
	Streams map[string]StreamState
}

// Log is the Big Metadata transaction log service. Writers never touch
// the log representation directly — all mutations go through Commit,
// which is what makes BLMT history tamper-proof with a reliable audit
// trail (§3.5).
type Log struct {
	clock *sim.Clock
	meter *sim.Meter
	msink obs.Sink

	mu      sync.RWMutex
	version int64
	tail    []CommitRecord // commits after the baseline
	history []CommitRecord // full audit history (append-only)

	// Columnar baselines: per-table compacted file lists as of
	// baselineVersion.
	baselineVersion int64
	baseline        map[string][]FileEntry

	// sink, when attached, durably journals every commit before it is
	// applied; applied maps idempotency IDs to the version that
	// committed them.
	sink    CommitSink
	applied map[string]int64

	// quarantined is current-state containment: table → key → mark.
	// Maintained incrementally as commits apply (and on Restore), not
	// versioned — a file that is sick now is sick for pinned readers of
	// old snapshots too.
	quarantined map[string]map[string]QuarantineMark

	// pins caches historical (pre-baseline) snapshots so a pinned
	// reader replays the audit history at most once per (table,
	// version); repeat reads are served from the cache. Guarded by
	// pinMu, which is only ever taken while holding mu (never the
	// reverse).
	pinMu    sync.Mutex
	pins     map[pinKey][]FileEntry
	pinOrder []pinKey

	// BaselineEvery triggers automatic compaction after this many tail
	// commits (0 disables).
	BaselineEvery int

	// Crash marks the seal protocol's crash points (nil = none).
	Crash *crashpoint.Injector
}

// NewLog returns an empty transaction log.
func NewLog(clock *sim.Clock, meter *sim.Meter) *Log {
	if meter == nil {
		meter = &sim.Meter{}
	}
	return &Log{
		clock:         clock,
		meter:         meter,
		msink:         meter,
		baseline:      make(map[string][]FileEntry),
		applied:       make(map[string]int64),
		pins:          make(map[pinKey][]FileEntry),
		BaselineEvery: 64,
	}
}

// pinKey identifies one cached historical snapshot. Snapshots are
// immutable once their version is sealed, so entries never invalidate.
type pinKey struct {
	table   string
	version int64
}

// pinCacheMax bounds the historical-snapshot cache.
const pinCacheMax = 256

// UseObs tees the log's commit counters into a shared registry under
// "bigmeta."-prefixed names; legacy meter names keep working.
func (l *Log) UseObs(r *obs.Registry) {
	if r == nil {
		return
	}
	l.msink = obs.Tee(l.meter, r.Prefixed("bigmeta."))
}

// AttachJournal installs the durable commit sink. Commits made after
// attachment are write-ahead journaled; the sink must be in place
// before any commit that needs to survive a crash.
func (l *Log) AttachJournal(sink CommitSink) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.sink = sink
}

// AppliedTx reports whether the idempotency ID has already committed,
// and at which version. Writers check this before re-executing a
// transaction after a crash: a sealed transaction replays as a no-op.
func (l *Log) AppliedTx(txnID string) (int64, bool) {
	if txnID == "" {
		return 0, false
	}
	l.mu.RLock()
	defer l.mu.RUnlock()
	v, ok := l.applied[txnID]
	return v, ok
}

// Commit atomically applies deltas to every named table — a
// multi-table transaction, the §3.5 feature open table formats lack —
// and returns the new log version.
func (l *Log) Commit(principal string, deltas map[string]TableDelta) (int64, error) {
	return l.CommitTx(principal, TxOptions{}, deltas)
}

// CommitTx is Commit with a transactional envelope: an idempotency ID
// (replays are exact no-ops returning the original version), an
// optional journal intent link, and durable Write API stream state.
// When a journal sink is attached the sealed commit record is written
// durably *before* the in-memory log mutates — the write-ahead
// ordering that makes an acknowledged commit survive any crash, and an
// unsealed one vanish completely.
func (l *Log) CommitTx(principal string, opts TxOptions, deltas map[string]TableDelta) (int64, error) {
	return l.CommitTxIf(principal, opts, deltas, 0, nil)
}

// CommitTxIf is CommitTx with first-committer-wins validation: before
// sealing, check is invoked — still under the log's single mutex —
// for every commit record with Version > since. If any invocation
// returns an error the commit is rejected with nothing written,
// durable or in-memory. Holding one lock across validate+seal is what
// makes a multi-table commit conflict-atomic without per-table locks,
// so no lock ordering exists for concurrent committers to deadlock on.
// An already-applied TxnID replays as a no-op before validation runs
// (a crashed committer's retry must not conflict with itself).
func (l *Log) CommitTxIf(principal string, opts TxOptions, deltas map[string]TableDelta, since int64, check func(CommitRecord) error) (int64, error) {
	if len(deltas) == 0 {
		return 0, fmt.Errorf("bigmeta: empty commit")
	}
	l.clock.Advance(CommitLatency)
	l.mu.Lock()
	defer l.mu.Unlock()
	if opts.TxnID != "" {
		if v, ok := l.applied[opts.TxnID]; ok {
			l.msink.Add("meta_commit_replays", 1)
			return v, nil
		}
	}
	if check != nil {
		// History versions are contiguous from 1, so the records after
		// `since` start at index `since`.
		start := since
		if start < 0 {
			start = 0
		}
		for i := int(start); i < len(l.history); i++ {
			if err := check(l.history[i]); err != nil {
				l.msink.Add("meta_commit_conflicts", 1)
				return 0, err
			}
		}
	}
	rec := CommitRecord{
		Version:   l.version + 1,
		Time:      l.clock.Now(),
		Principal: principal,
		Deltas:    make(map[string]TableDelta, len(deltas)),
	}
	for table, d := range deltas {
		rec.Tables = append(rec.Tables, table)
		cp := TableDelta{
			Added:        append([]FileEntry(nil), d.Added...),
			Removed:      append([]string(nil), d.Removed...),
			Quarantine:   append([]QuarantineMark(nil), d.Quarantine...),
			Unquarantine: append([]string(nil), d.Unquarantine...),
		}
		rec.Deltas[table] = cp
	}
	sort.Strings(rec.Tables)
	if l.sink != nil {
		// Seal the commit durably before it exists in memory. A crash
		// on either side of this write is binary: before it the
		// transaction never happened; after it recovery rolls the
		// commit forward even though no caller was acknowledged.
		l.Crash.At("journal.before_seal")
		if err := l.sink.AppendCommit(TxCommit{
			TxnID:     opts.TxnID,
			IntentSeq: opts.IntentSeq,
			Principal: principal,
			Version:   rec.Version,
			Time:      rec.Time,
			Deltas:    rec.Deltas,
			Streams:   opts.Streams,
		}); err != nil {
			return 0, fmt.Errorf("bigmeta: journal seal: %w", err)
		}
		l.Crash.At("journal.after_seal")
	}
	l.version = rec.Version
	l.tail = append(l.tail, rec)
	l.history = append(l.history, rec)
	l.applyQuarantineLocked(rec)
	if opts.TxnID != "" {
		l.applied[opts.TxnID] = rec.Version
	}
	l.msink.Add("meta_commits", 1)
	if l.BaselineEvery > 0 && len(l.tail) >= l.BaselineEvery {
		l.compactLocked()
	}
	return l.version, nil
}

// Restore replays journal-recovered commits into an empty log,
// preserving version numbers, commit times, principals, and
// idempotency IDs. It is the recovery path's inverse of the sink:
// Restore(sealed records) reproduces exactly the state whose commits
// sealed those records. Commits must arrive in version order with no
// gaps from version+1.
func (l *Log) Restore(commits []TxCommit) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if len(l.history) > 0 {
		return fmt.Errorf("bigmeta: Restore on a non-empty log")
	}
	for _, c := range commits {
		if c.Version != l.version+1 {
			return fmt.Errorf("bigmeta: restore gap: have version %d, next record %d", l.version, c.Version)
		}
		rec := CommitRecord{
			Version:   c.Version,
			Time:      c.Time,
			Principal: c.Principal,
			Deltas:    make(map[string]TableDelta, len(c.Deltas)),
		}
		for table, d := range c.Deltas {
			rec.Tables = append(rec.Tables, table)
			rec.Deltas[table] = TableDelta{
				Added:        append([]FileEntry(nil), d.Added...),
				Removed:      append([]string(nil), d.Removed...),
				Quarantine:   append([]QuarantineMark(nil), d.Quarantine...),
				Unquarantine: append([]string(nil), d.Unquarantine...),
			}
		}
		sort.Strings(rec.Tables)
		l.version = c.Version
		l.tail = append(l.tail, rec)
		l.history = append(l.history, rec)
		l.applyQuarantineLocked(rec)
		if c.TxnID != "" {
			l.applied[c.TxnID] = c.Version
		}
	}
	l.msink.Add("meta_commits_restored", int64(len(commits)))
	return nil
}

// Version returns the latest committed version.
func (l *Log) Version() int64 {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return l.version
}

// Compact converts the tail into columnar baselines ("Big Metadata
// periodically converts the transaction log to columnar baselines for
// read efficiency").
func (l *Log) Compact() {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.compactLocked()
}

func (l *Log) compactLocked() {
	for _, rec := range l.tail {
		for table, d := range rec.Deltas {
			l.baseline[table] = applyDelta(l.baseline[table], d)
		}
	}
	l.baselineVersion = l.version
	l.tail = nil
	l.msink.Add("meta_compactions", 1)
}

func applyDelta(files []FileEntry, d TableDelta) []FileEntry {
	if len(d.Removed) > 0 {
		rm := make(map[string]bool, len(d.Removed))
		for _, k := range d.Removed {
			rm[k] = true
		}
		kept := files[:0]
		for _, f := range files {
			if !rm[f.Key] {
				kept = append(kept, f)
			}
		}
		files = kept
	}
	return append(files, d.Added...)
}

// Snapshot returns the table's file list as of version (-1 = latest)
// along with the snapshot version. Reads reconcile the columnar
// baseline with the in-memory tail.
func (l *Log) Snapshot(table string, version int64) ([]FileEntry, int64, error) {
	l.mu.RLock()
	defer l.mu.RUnlock()
	if version < 0 {
		version = l.version
	}
	if version > l.version {
		return nil, 0, fmt.Errorf("%w: version %d > latest %d", ErrNoSnapshot, version, l.version)
	}
	if version < l.baselineVersion {
		// Point-in-time reads older than the baseline are served from
		// the pin cache when resident; only the first read of a given
		// (table, version) pays a full audit-history replay. Snapshot
		// immutability makes the cached entry valid forever.
		k := pinKey{table: table, version: version}
		l.pinMu.Lock()
		if cached, ok := l.pins[k]; ok {
			l.pinMu.Unlock()
			l.msink.Add("meta_snapshot_pin_hits", 1)
			return append([]FileEntry(nil), cached...), version, nil
		}
		files := replay(l.history, table, version)
		if len(l.pinOrder) >= pinCacheMax {
			oldest := l.pinOrder[0]
			l.pinOrder = l.pinOrder[1:]
			delete(l.pins, oldest)
		}
		l.pins[k] = append([]FileEntry(nil), files...)
		l.pinOrder = append(l.pinOrder, k)
		l.pinMu.Unlock()
		l.msink.Add("meta_snapshot_pin_misses", 1)
		l.msink.Add("meta_snapshot_replays", 1)
		return files, version, nil
	}
	files := append([]FileEntry(nil), l.baseline[table]...)
	for _, rec := range l.tail {
		if rec.Version > version {
			break
		}
		if d, ok := rec.Deltas[table]; ok {
			files = applyDelta(files, d)
		}
	}
	return files, version, nil
}

// SnapshotByReplay reconstructs the file list by replaying the entire
// history with no baseline — the A3 ablation baseline for read cost.
func (l *Log) SnapshotByReplay(table string, version int64) ([]FileEntry, int64, error) {
	l.mu.RLock()
	defer l.mu.RUnlock()
	if version < 0 {
		version = l.version
	}
	if version > l.version {
		return nil, 0, fmt.Errorf("%w: version %d > latest %d", ErrNoSnapshot, version, l.version)
	}
	return replay(l.history, table, version), version, nil
}

func replay(history []CommitRecord, table string, version int64) []FileEntry {
	var files []FileEntry
	for _, rec := range history {
		if rec.Version > version {
			break
		}
		if d, ok := rec.Deltas[table]; ok {
			files = applyDelta(files, d)
		}
	}
	return files
}

// History returns the audit records touching a table (all records if
// table is empty). The returned slice is a copy; callers cannot alter
// history.
func (l *Log) History(table string) []CommitRecord {
	l.mu.RLock()
	defer l.mu.RUnlock()
	var out []CommitRecord
	for _, rec := range l.history {
		if table == "" {
			out = append(out, rec)
			continue
		}
		if _, ok := rec.Deltas[table]; ok {
			out = append(out, rec)
		}
	}
	return out
}

// Since returns copies of the commit records with Version > version,
// in version order — the history a transaction that began at
// `version` must validate against. Used for cheap pre-validation
// outside the commit lock; the authoritative check reruns under
// CommitTxIf.
func (l *Log) Since(version int64) []CommitRecord {
	l.mu.RLock()
	defer l.mu.RUnlock()
	start := version
	if start < 0 {
		start = 0
	}
	if start >= int64(len(l.history)) {
		return nil
	}
	return append([]CommitRecord(nil), l.history[start:]...)
}

// TailLen reports the current in-memory tail length (observability).
func (l *Log) TailLen() int {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return len(l.tail)
}

// BaselineVersion reports the version the baselines are compacted to.
func (l *Log) BaselineVersion() int64 {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return l.baselineVersion
}
