//go:build oraclebug

package bigmeta

import (
	"biglake/internal/colfmt"
	"biglake/internal/vector"
)

// statsCanSatisfy under the oraclebug tag plants a classic off-by-one
// pruning bug: `col <= x` is evaluated as `col < x`, so a file whose
// minimum equals the literal is wrongly skipped and its rows silently
// vanish from results. The differential fuzzer must catch this
// (go test -tags oraclebug ./internal/oracle -run TestForcedBug).
func statsCanSatisfy(p colfmt.Predicate, st colfmt.ColumnStats) bool {
	if p.Op == vector.LE {
		p.Op = vector.LT
	}
	return p.StatsCanSatisfy(st)
}
