package storageapi

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"biglake/internal/bigmeta"
	"biglake/internal/catalog"
	"biglake/internal/colfmt"
	"biglake/internal/objstore"
	"biglake/internal/security"
	"biglake/internal/sim"
	"biglake/internal/vector"
)

const (
	adminP = security.Principal("admin@corp")
	aliceP = security.Principal("alice@corp")
	evilP  = security.Principal("mallory@evil")
)

type env struct {
	clock *sim.Clock
	store *objstore.Store
	cat   *catalog.Catalog
	auth  *security.Authority
	meta  *bigmeta.Cache
	log   *bigmeta.Log
	srv   *Server
	cred  objstore.Credential
}

func newEnv(t *testing.T) *env {
	t.Helper()
	clock := sim.NewClock()
	store := objstore.New(sim.GCP, clock, nil)
	cred := objstore.Credential{Principal: "sa-lake@corp"}
	if err := store.CreateBucket(cred, "lake"); err != nil {
		t.Fatal(err)
	}
	cat := catalog.New()
	cat.CreateDataset(catalog.Dataset{Name: "ds", Region: "gcp-us", Cloud: "gcp"})
	auth := security.NewAuthority("secret", adminP)
	auth.RegisterConnection(adminP, security.Connection{Name: "conn", ServiceAccount: cred, Cloud: "gcp"})
	meta := bigmeta.NewCache(clock, nil)
	log := bigmeta.NewLog(clock, nil)
	srv := NewServer(cat, auth, meta, log, clock, map[string]*objstore.Store{"gcp": store})
	srv.ManagedCred = cred
	return &env{clock: clock, store: store, cat: cat, auth: auth, meta: meta, log: log, srv: srv, cred: cred}
}

func salesSchema() vector.Schema {
	return vector.NewSchema(
		vector.Field{Name: "id", Type: vector.Int64},
		vector.Field{Name: "region", Type: vector.String},
		vector.Field{Name: "email", Type: vector.String},
		vector.Field{Name: "amount", Type: vector.Int64},
	)
}

func (ev *env) createSales(t *testing.T, files, rowsPerFile int) {
	t.Helper()
	next := int64(0)
	regions := []string{"us", "eu"}
	for f := 0; f < files; f++ {
		bl := vector.NewBuilder(salesSchema())
		for r := 0; r < rowsPerFile; r++ {
			bl.Append(
				vector.IntValue(next),
				vector.StringValue(regions[int(next)%2]),
				vector.StringValue(fmt.Sprintf("u%d@x.com", next)),
				vector.IntValue(next*10),
			)
			next++
		}
		file, err := colfmt.WriteFile(bl.Build(), colfmt.WriterOptions{})
		if err != nil {
			t.Fatal(err)
		}
		ev.store.Put(ev.cred, "lake", fmt.Sprintf("sales/part-%02d.blk", f), file, "")
	}
	if err := ev.cat.CreateTable(catalog.Table{
		Dataset: "ds", Name: "sales", Type: catalog.BigLake, Schema: salesSchema(),
		Cloud: "gcp", Bucket: "lake", Prefix: "sales/", Connection: "conn", MetadataCaching: true,
	}); err != nil {
		t.Fatal(err)
	}
	ev.auth.GrantTable(adminP, "ds.sales", aliceP, security.RoleViewer)
}

func TestCreateReadSessionAndReadAll(t *testing.T) {
	ev := newEnv(t)
	ev.createSales(t, 6, 50)
	sess, err := ev.srv.CreateReadSession(ReadSessionRequest{
		Table: "ds.sales", Principal: adminP, SnapshotVersion: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(sess.Streams) == 0 || sess.EstimatedRows != 300 {
		t.Fatalf("session = %+v", sess)
	}
	got, err := ev.srv.ReadAll(sess)
	if err != nil {
		t.Fatal(err)
	}
	if got.N != 300 {
		t.Fatalf("rows = %d", got.N)
	}
}

func TestReadDeniedWithoutRole(t *testing.T) {
	ev := newEnv(t)
	ev.createSales(t, 1, 10)
	_, err := ev.srv.CreateReadSession(ReadSessionRequest{Table: "ds.sales", Principal: evilP})
	if !errors.Is(err, security.ErrDenied) {
		t.Fatalf("err = %v", err)
	}
}

func TestProjectionAndPushdown(t *testing.T) {
	ev := newEnv(t)
	ev.createSales(t, 4, 25)
	sess, err := ev.srv.CreateReadSession(ReadSessionRequest{
		Table: "ds.sales", Principal: adminP,
		Columns:    []string{"id", "amount"},
		Predicates: []colfmt.Predicate{{Column: "id", Op: vector.GE, Value: vector.IntValue(90)}},
	})
	if err != nil {
		t.Fatal(err)
	}
	got, err := ev.srv.ReadAll(sess)
	if err != nil {
		t.Fatal(err)
	}
	if got.N != 10 || got.Schema.Len() != 2 {
		t.Fatalf("rows = %d schema = %v", got.N, got.Schema)
	}
	// Pruning: only the last file (ids 75..99) survives.
	if len(sess.Streams) != 1 {
		t.Fatalf("streams = %d, want 1 (one unpruned file)", len(sess.Streams))
	}
}

func TestGovernanceInsideBoundary(t *testing.T) {
	ev := newEnv(t)
	ev.createSales(t, 2, 10)
	ev.auth.SetColumnPolicy(adminP, "ds.sales", security.ColumnPolicy{
		Column: "email", Allowed: map[security.Principal]bool{adminP: true}, Mask: vector.MaskHash,
	})
	ev.auth.AddRowPolicy(adminP, "ds.sales", security.RowPolicy{
		Name: "us", Grantees: map[security.Principal]bool{aliceP: true},
		Filter: []colfmt.Predicate{{Column: "region", Op: vector.EQ, Value: vector.StringValue("us")}},
	})

	sess, err := ev.srv.CreateReadSession(ReadSessionRequest{Table: "ds.sales", Principal: aliceP})
	if err != nil {
		t.Fatal(err)
	}
	got, err := ev.srv.ReadAll(sess)
	if err != nil {
		t.Fatal(err)
	}
	if got.N != 10 { // half the 20 rows are us
		t.Fatalf("alice rows = %d, want 10", got.N)
	}
	for i := 0; i < got.N; i++ {
		row := got.Row(i)
		if row[1].S != "us" {
			t.Fatal("row policy leaked through the Read API")
		}
		if !strings.HasPrefix(row[2].S, "hash_") {
			t.Fatalf("email not masked: %v", row[2])
		}
	}
}

func TestDeniedColumnFailsSession(t *testing.T) {
	ev := newEnv(t)
	ev.createSales(t, 1, 5)
	ev.auth.SetColumnPolicy(adminP, "ds.sales", security.ColumnPolicy{
		Column: "email", Allowed: map[security.Principal]bool{adminP: true}, Mask: vector.MaskNone,
	})
	_, err := ev.srv.CreateReadSession(ReadSessionRequest{
		Table: "ds.sales", Principal: aliceP, Columns: []string{"email"},
	})
	if !errors.Is(err, security.ErrDenied) {
		t.Fatalf("err = %v", err)
	}
	// Unprotected columns remain readable.
	if _, err := ev.srv.CreateReadSession(ReadSessionRequest{
		Table: "ds.sales", Principal: aliceP, Columns: []string{"id"},
	}); err != nil {
		t.Fatal(err)
	}
}

func TestHostileClientCannotBypassGovernance(t *testing.T) {
	// E12's core property: nothing a client passes in the request can
	// widen what comes back. A malicious engine asking for everything
	// still gets filtered, masked rows only.
	ev := newEnv(t)
	ev.createSales(t, 2, 10)
	ev.auth.AddRowPolicy(adminP, "ds.sales", security.RowPolicy{
		Name: "none", Grantees: map[security.Principal]bool{}, // alice granted by nothing
		Filter: []colfmt.Predicate{{Column: "id", Op: vector.GE, Value: vector.IntValue(0)}},
	})
	sess, err := ev.srv.CreateReadSession(ReadSessionRequest{
		Table: "ds.sales", Principal: aliceP, MaxStreams: 100,
		Predicates: []colfmt.Predicate{{Column: "id", Op: vector.GE, Value: vector.IntValue(0)}},
	})
	if err != nil {
		t.Fatal(err)
	}
	got, err := ev.srv.ReadAll(sess)
	if err != nil {
		t.Fatal(err)
	}
	if got.N != 0 {
		t.Fatalf("hostile client read %d rows through row policies", got.N)
	}
}

func TestSessionReuse(t *testing.T) {
	ev := newEnv(t)
	ev.createSales(t, 3, 10)
	req := ReadSessionRequest{Table: "ds.sales", Principal: adminP}
	s1, err := ev.srv.CreateReadSession(req)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := ev.srv.CreateReadSession(req)
	if err != nil {
		t.Fatal(err)
	}
	if !s2.Reused || s2.ID != s1.ID {
		t.Fatalf("expected reuse: %+v", s2)
	}
	// A different predicate set gets a fresh session.
	req.Predicates = []colfmt.Predicate{{Column: "id", Op: vector.GT, Value: vector.IntValue(5)}}
	s3, _ := ev.srv.CreateReadSession(req)
	if s3.Reused {
		t.Fatal("different request must not reuse")
	}
	// TTL expiry forces a new session.
	ev.clock.Advance(ev.srv.SessionTTL * 2)
	s4, _ := ev.srv.CreateReadSession(ReadSessionRequest{Table: "ds.sales", Principal: adminP})
	if s4.Reused {
		t.Fatal("expired cache entry must not reuse")
	}
}

func TestSessionStatsForPlanner(t *testing.T) {
	ev := newEnv(t)
	ev.createSales(t, 4, 25)
	sess, err := ev.srv.CreateReadSession(ReadSessionRequest{Table: "ds.sales", Principal: adminP})
	if err != nil {
		t.Fatal(err)
	}
	if sess.Stats.Rows != 100 || sess.Stats.Files != 4 {
		t.Fatalf("stats = %+v", sess.Stats)
	}
	idStats := sess.Stats.ColumnStats["id"]
	if idStats.Min.ToValue().AsInt() != 0 || idStats.Max.ToValue().AsInt() != 99 {
		t.Fatalf("id stats = %+v", idStats)
	}
}

func TestStreamsArePartitioned(t *testing.T) {
	ev := newEnv(t)
	ev.createSales(t, 10, 10)
	sess, err := ev.srv.CreateReadSession(ReadSessionRequest{
		Table: "ds.sales", Principal: adminP, MaxStreams: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(sess.Streams) != 4 {
		t.Fatalf("streams = %d", len(sess.Streams))
	}
	total := 0
	for _, stream := range sess.Streams {
		for {
			payload, err := ev.srv.ReadRows(sess.ID, stream)
			if errors.Is(err, ErrEndOfStream) {
				break
			}
			if err != nil {
				t.Fatal(err)
			}
			b, err := vector.DecodeBatch(payload)
			if err != nil {
				t.Fatal(err)
			}
			total += b.N
		}
	}
	if total != 100 {
		t.Fatalf("total rows across streams = %d", total)
	}
}

func TestSplitStream(t *testing.T) {
	ev := newEnv(t)
	ev.createSales(t, 8, 5)
	sess, err := ev.srv.CreateReadSession(ReadSessionRequest{
		Table: "ds.sales", Principal: adminP, MaxStreams: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	newStream, err := ev.srv.SplitStream(sess.ID, sess.Streams[0])
	if err != nil {
		t.Fatal(err)
	}
	count := func(stream string) int {
		n := 0
		for {
			payload, err := ev.srv.ReadRows(sess.ID, stream)
			if errors.Is(err, ErrEndOfStream) {
				return n
			}
			if err != nil {
				t.Fatal(err)
			}
			b, _ := vector.DecodeBatch(payload)
			n += b.N
		}
	}
	a, b := count(sess.Streams[0]), count(newStream)
	if a+b != 40 || a == 0 || b == 0 {
		t.Fatalf("split rows = %d + %d", a, b)
	}
	// Empty stream cannot split again.
	if _, err := ev.srv.SplitStream(sess.ID, sess.Streams[0]); err == nil {
		t.Fatal("exhausted stream should not split")
	}
}

func TestUnknownSessionAndStream(t *testing.T) {
	ev := newEnv(t)
	ev.createSales(t, 1, 5)
	if _, err := ev.srv.ReadRows("ghost", "s"); !errors.Is(err, ErrNoSession) {
		t.Fatalf("err = %v", err)
	}
	sess, _ := ev.srv.CreateReadSession(ReadSessionRequest{Table: "ds.sales", Principal: adminP})
	if _, err := ev.srv.ReadRows(sess.ID, "ghost"); !errors.Is(err, ErrNoStream) {
		t.Fatalf("err = %v", err)
	}
}

func TestKeepEncodingsShrinksPayload(t *testing.T) {
	ev := newEnv(t)
	ev.createSales(t, 1, 2000) // low-cardinality region column
	read := func(keep bool) int {
		sess, err := ev.srv.CreateReadSession(ReadSessionRequest{
			Table: "ds.sales", Principal: adminP, Columns: []string{"region"}, KeepEncodings: keep,
		})
		if err != nil {
			t.Fatal(err)
		}
		total := 0
		for _, stream := range sess.Streams {
			for {
				payload, err := ev.srv.ReadRows(sess.ID, stream)
				if errors.Is(err, ErrEndOfStream) {
					break
				}
				if err != nil {
					t.Fatal(err)
				}
				total += len(payload)
			}
		}
		return total
	}
	encoded := read(true)
	plain := read(false)
	if encoded*2 >= plain {
		t.Fatalf("encoded payload %d should be <half of plain %d", encoded, plain)
	}
}

func TestRowOrientedMatchesVectorized(t *testing.T) {
	ev := newEnv(t)
	ev.createSales(t, 3, 40)
	preds := []colfmt.Predicate{{Column: "region", Op: vector.EQ, Value: vector.StringValue("eu")}}
	run := func(rowOriented bool) *vector.Batch {
		sess, err := ev.srv.CreateReadSession(ReadSessionRequest{
			Table: "ds.sales", Principal: adminP, Predicates: preds, RowOriented: rowOriented,
		})
		if err != nil {
			t.Fatal(err)
		}
		b, err := ev.srv.ReadAll(sess)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	v, r := run(false), run(true)
	if v.N != r.N || v.N != 60 {
		t.Fatalf("vectorized %d rows, row-oriented %d", v.N, r.N)
	}
}

func TestAggregatePushdown(t *testing.T) {
	ev := newEnv(t)
	ev.createSales(t, 4, 25)
	sess, err := ev.srv.CreateReadSession(ReadSessionRequest{
		Table: "ds.sales", Principal: adminP,
		Aggregates: []AggregateRequest{
			{Column: "amount", Kind: vector.AggSum},
			{Column: "id", Kind: vector.AggMax},
			{Column: "id", Kind: vector.AggCount},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	got, err := ev.srv.ReadAll(sess)
	if err != nil {
		t.Fatal(err)
	}
	if got.N != 1 {
		t.Fatalf("aggregate rows = %d", got.N)
	}
	row := got.Row(0)
	wantSum := int64(0)
	for i := int64(0); i < 100; i++ {
		wantSum += i * 10
	}
	if row[0].AsInt() != wantSum || row[1].AsInt() != 99 || row[2].AsInt() != 100 {
		t.Fatalf("aggregates = %v", row)
	}
}

func TestAggregatePushdownPayloadTiny(t *testing.T) {
	ev := newEnv(t)
	ev.createSales(t, 2, 500)
	sessAgg, _ := ev.srv.CreateReadSession(ReadSessionRequest{
		Table: "ds.sales", Principal: adminP,
		Aggregates: []AggregateRequest{{Column: "amount", Kind: vector.AggSum}},
	})
	payload, err := ev.srv.ReadRows(sessAgg.ID, sessAgg.Streams[0])
	if err != nil {
		t.Fatal(err)
	}
	if len(payload) > 200 {
		t.Fatalf("aggregate payload = %d bytes, should be tiny", len(payload))
	}
}

// --- Write API ---

func (ev *env) createManaged(t *testing.T) {
	t.Helper()
	if err := ev.cat.CreateTable(catalog.Table{
		Dataset: "ds", Name: "events", Type: catalog.Managed, Schema: salesSchema(),
		Cloud: "gcp", Bucket: "lake", Prefix: "blmt/events/", Connection: "conn",
	}); err != nil {
		t.Fatal(err)
	}
	ev.auth.GrantTable(adminP, "ds.events", aliceP, security.RoleEditor)
}

func rowsBatch(start, n int) *vector.Batch {
	bl := vector.NewBuilder(salesSchema())
	for i := 0; i < n; i++ {
		id := int64(start + i)
		bl.Append(vector.IntValue(id), vector.StringValue("us"),
			vector.StringValue(fmt.Sprintf("u%d@x.com", id)), vector.IntValue(id))
	}
	return bl.Build()
}

func TestCommittedStreamVisibleImmediately(t *testing.T) {
	ev := newEnv(t)
	ev.createManaged(t)
	id, err := ev.srv.CreateWriteStream(string(aliceP), "ds.events", CommittedMode)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ev.srv.AppendRows(id, -1, rowsBatch(0, 10)); err != nil {
		t.Fatal(err)
	}
	files, _, _ := ev.log.Snapshot("ds.events", -1)
	if len(files) != 1 || files[0].RowCount != 10 {
		t.Fatalf("files = %+v", files)
	}
	// Readable through the Read API.
	sess, err := ev.srv.CreateReadSession(ReadSessionRequest{Table: "ds.events", Principal: adminP, SnapshotVersion: -1})
	if err != nil {
		t.Fatal(err)
	}
	got, _ := ev.srv.ReadAll(sess)
	if got.N != 10 {
		t.Fatalf("read back %d rows", got.N)
	}
}

func TestExactlyOnceOffsets(t *testing.T) {
	ev := newEnv(t)
	ev.createManaged(t)
	id, _ := ev.srv.CreateWriteStream(string(aliceP), "ds.events", PendingMode)
	off, err := ev.srv.AppendRows(id, 0, rowsBatch(0, 5))
	if err != nil || off != 5 {
		t.Fatalf("append: off=%d err=%v", off, err)
	}
	// Retry of the same offset is detected (client treats as success).
	if _, err := ev.srv.AppendRows(id, 0, rowsBatch(0, 5)); !errors.Is(err, ErrOffsetExists) {
		t.Fatalf("dup append: %v", err)
	}
	// Gap is rejected.
	if _, err := ev.srv.AppendRows(id, 99, rowsBatch(0, 5)); !errors.Is(err, ErrBadOffset) {
		t.Fatalf("gap append: %v", err)
	}
	// Correct next offset works.
	if off, err := ev.srv.AppendRows(id, 5, rowsBatch(5, 5)); err != nil || off != 10 {
		t.Fatalf("next append: off=%d err=%v", off, err)
	}
}

func TestPendingStreamInvisibleUntilCommit(t *testing.T) {
	ev := newEnv(t)
	ev.createManaged(t)
	id, _ := ev.srv.CreateWriteStream(string(aliceP), "ds.events", PendingMode)
	ev.srv.AppendRows(id, -1, rowsBatch(0, 7))
	if files, _, _ := ev.log.Snapshot("ds.events", -1); len(files) != 0 {
		t.Fatal("pending rows leaked before commit")
	}
	if err := ev.srv.BatchCommitStreams([]string{id}); err == nil {
		t.Fatal("commit before finalize should fail")
	}
	if _, err := ev.srv.FinalizeStream(id); err != nil {
		t.Fatal(err)
	}
	if _, err := ev.srv.AppendRows(id, -1, rowsBatch(7, 1)); !errors.Is(err, ErrFinalized) {
		t.Fatalf("append after finalize: %v", err)
	}
	if err := ev.srv.BatchCommitStreams([]string{id}); err != nil {
		t.Fatal(err)
	}
	files, _, _ := ev.log.Snapshot("ds.events", -1)
	if len(files) != 1 || files[0].RowCount != 7 {
		t.Fatalf("files = %+v", files)
	}
	// Double commit rejected.
	if err := ev.srv.BatchCommitStreams([]string{id}); err == nil {
		t.Fatal("double commit should fail")
	}
}

func TestCrossStreamAtomicCommit(t *testing.T) {
	ev := newEnv(t)
	ev.createManaged(t)
	var ids []string
	for i := 0; i < 3; i++ {
		id, _ := ev.srv.CreateWriteStream(string(aliceP), "ds.events", PendingMode)
		ev.srv.AppendRows(id, -1, rowsBatch(i*10, 10))
		ev.srv.FinalizeStream(id)
		ids = append(ids, id)
	}
	verBefore := ev.log.Version()
	if err := ev.srv.BatchCommitStreams(ids); err != nil {
		t.Fatal(err)
	}
	if ev.log.Version() != verBefore+1 {
		t.Fatal("cross-stream commit must be one atomic log commit")
	}
	files, _, _ := ev.log.Snapshot("ds.events", -1)
	if len(files) != 3 {
		t.Fatalf("files = %d", len(files))
	}
}

func TestWriteRequiresEditor(t *testing.T) {
	ev := newEnv(t)
	ev.createManaged(t)
	if _, err := ev.srv.CreateWriteStream(string(evilP), "ds.events", CommittedMode); !errors.Is(err, security.ErrDenied) {
		t.Fatalf("err = %v", err)
	}
}

func TestWriteStreamRequiresManagedTable(t *testing.T) {
	ev := newEnv(t)
	ev.createSales(t, 1, 5)
	if _, err := ev.srv.CreateWriteStream(string(adminP), "ds.sales", CommittedMode); err == nil {
		t.Fatal("biglake (non-managed) tables should reject write streams")
	}
}

func TestSnapshotReadsArePointInTime(t *testing.T) {
	ev := newEnv(t)
	ev.createManaged(t)
	id, _ := ev.srv.CreateWriteStream(string(aliceP), "ds.events", CommittedMode)
	ev.srv.AppendRows(id, -1, rowsBatch(0, 5))
	v1 := ev.log.Version()
	id2, _ := ev.srv.CreateWriteStream(string(aliceP), "ds.events", CommittedMode)
	ev.srv.AppendRows(id2, -1, rowsBatch(5, 5))

	sess, err := ev.srv.CreateReadSession(ReadSessionRequest{
		Table: "ds.events", Principal: adminP, SnapshotVersion: v1,
	})
	if err != nil {
		t.Fatal(err)
	}
	got, _ := ev.srv.ReadAll(sess)
	if got.N != 5 {
		t.Fatalf("snapshot read %d rows, want 5", got.N)
	}
}

func BenchmarkReadRowsVectorizedVsRowOriented(b *testing.B) {
	clock := sim.NewClock()
	store := objstore.New(sim.GCP, clock, nil)
	cred := objstore.Credential{Principal: "sa"}
	store.CreateBucket(cred, "lake")
	cat := catalog.New()
	cat.CreateDataset(catalog.Dataset{Name: "ds", Region: "gcp-us", Cloud: "gcp"})
	auth := security.NewAuthority("s", adminP)
	auth.RegisterConnection(adminP, security.Connection{Name: "conn", ServiceAccount: cred, Cloud: "gcp"})
	meta := bigmeta.NewCache(clock, nil)
	log := bigmeta.NewLog(clock, nil)
	srv := NewServer(cat, auth, meta, log, clock, map[string]*objstore.Store{"gcp": store})
	srv.ManagedCred = cred

	bl := vector.NewBuilder(salesSchema())
	for i := 0; i < 30000; i++ {
		bl.Append(vector.IntValue(int64(i)), vector.StringValue([]string{"us", "eu", "jp"}[i%3]),
			vector.StringValue("user@x.com"), vector.IntValue(int64(i%97)))
	}
	file, _ := colfmt.WriteFile(bl.Build(), colfmt.WriterOptions{RowGroupRows: 4096})
	store.Put(cred, "lake", "sales/f.blk", file, "")
	cat.CreateTable(catalog.Table{
		Dataset: "ds", Name: "sales", Type: catalog.BigLake, Schema: salesSchema(),
		Cloud: "gcp", Bucket: "lake", Prefix: "sales/", Connection: "conn", MetadataCaching: true,
	})

	for _, mode := range []struct {
		name        string
		rowOriented bool
	}{{"vectorized", false}, {"row_oriented", true}} {
		b.Run(mode.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				srv.SessionTTL = 0 // force fresh sessions
				sess, err := srv.CreateReadSession(ReadSessionRequest{
					Table: "ds.sales", Principal: adminP, RowOriented: mode.rowOriented,
					Predicates: []colfmt.Predicate{{Column: "region", Op: vector.EQ, Value: vector.StringValue("eu")}},
				})
				if err != nil {
					b.Fatal(err)
				}
				if _, err := srv.ReadAll(sess); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func TestReadPartitionedTableWithPartitionPredicate(t *testing.T) {
	// Hive-partitioned BigLake table: the partition column exists in
	// the declared schema but not in the data files. A partition
	// predicate must prune files, not break the file scan.
	ev := newEnv(t)
	rowSchema := vector.NewSchema(vector.Field{Name: "v", Type: vector.Int64})
	for day := 1; day <= 3; day++ {
		bl := vector.NewBuilder(rowSchema)
		bl.Append(vector.IntValue(int64(day * 100)))
		file, err := colfmt.WriteFile(bl.Build(), colfmt.WriterOptions{})
		if err != nil {
			t.Fatal(err)
		}
		ev.store.Put(ev.cred, "lake", fmt.Sprintf("pt/day=%d/f.blk", day), file, "")
	}
	fullSchema := vector.NewSchema(
		vector.Field{Name: "v", Type: vector.Int64},
		vector.Field{Name: "day", Type: vector.Int64},
	)
	if err := ev.cat.CreateTable(catalog.Table{
		Dataset: "ds", Name: "pt", Type: catalog.BigLake, Schema: fullSchema,
		Cloud: "gcp", Bucket: "lake", Prefix: "pt/", Connection: "conn",
		PartitionColumn: "day", MetadataCaching: true,
	}); err != nil {
		t.Fatal(err)
	}
	sess, err := ev.srv.CreateReadSession(ReadSessionRequest{
		Table: "ds.pt", Principal: adminP, Columns: []string{"v"},
		Predicates: []colfmt.Predicate{{Column: "day", Op: vector.GE, Value: vector.IntValue(2)}},
	})
	if err != nil {
		t.Fatal(err)
	}
	got, err := ev.srv.ReadAll(sess)
	if err != nil {
		t.Fatal(err)
	}
	if got.N != 2 {
		t.Fatalf("rows = %d, want 2 (partitions pruned to day>=2)", got.N)
	}
}

func TestBufferedStreamFlushRows(t *testing.T) {
	ev := newEnv(t)
	ev.createManaged(t)
	id, err := ev.srv.CreateWriteStream(string(aliceP), "ds.events", BufferedMode)
	if err != nil {
		t.Fatal(err)
	}
	ev.srv.AppendRows(id, -1, rowsBatch(0, 10))
	// Nothing visible before the flush point advances.
	if files, _, _ := ev.log.Snapshot("ds.events", -1); len(files) != 0 {
		t.Fatal("buffered rows leaked before flush")
	}
	off, err := ev.srv.FlushRows(id, 4)
	if err != nil || off != 4 {
		t.Fatalf("flush: off=%d err=%v", off, err)
	}
	files, _, _ := ev.log.Snapshot("ds.events", -1)
	if len(files) != 1 || files[0].RowCount != 4 {
		t.Fatalf("after flush: %+v", files)
	}
	// Re-flushing at or behind the flush point is a no-op.
	if off, err := ev.srv.FlushRows(id, 4); err != nil || off != 4 {
		t.Fatalf("idempotent flush: off=%d err=%v", off, err)
	}
	// Flushing beyond appended rows is rejected.
	if _, err := ev.srv.FlushRows(id, 99); !errors.Is(err, ErrBadOffset) {
		t.Fatalf("overflush: %v", err)
	}
	// Later appends keep buffering; a second flush exposes them.
	ev.srv.AppendRows(id, -1, rowsBatch(10, 5))
	if off, err := ev.srv.FlushRows(id, 15); err != nil || off != 15 {
		t.Fatalf("second flush: off=%d err=%v", off, err)
	}
	var total int64
	files, _, _ = ev.log.Snapshot("ds.events", -1)
	for _, f := range files {
		total += f.RowCount
	}
	if total != 15 {
		t.Fatalf("visible rows = %d, want 15", total)
	}
}

func TestFlushRowsRequiresBufferedMode(t *testing.T) {
	ev := newEnv(t)
	ev.createManaged(t)
	id, _ := ev.srv.CreateWriteStream(string(aliceP), "ds.events", PendingMode)
	if _, err := ev.srv.FlushRows(id, 1); err == nil {
		t.Fatal("pending stream should reject FlushRows")
	}
	if _, err := ev.srv.FlushRows("ghost", 1); !errors.Is(err, ErrNoStream) {
		t.Fatalf("missing stream: %v", err)
	}
}
