package storageapi

import (
	"errors"
	"testing"

	"biglake/internal/objstore"
	"biglake/internal/resilience"
	"biglake/internal/vector"
)

// TestReadRowsResumesAtFailedFile: a mid-stream transient fault must
// not lose or duplicate rows — the stream cursor rolls back so the
// retried ReadRows call picks up exactly the file that failed.
func TestReadRowsResumesAtFailedFile(t *testing.T) {
	ev := newEnv(t)
	ev.createSales(t, 4, 10)
	ev.srv.Res = resilience.NoRetry() // surface the raw fault to the client

	sess, err := ev.srv.CreateReadSession(ReadSessionRequest{
		Table: "ds.sales", Principal: adminP, MaxStreams: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(sess.Streams) != 1 {
		t.Fatalf("streams = %d", len(sess.Streams))
	}
	stream := sess.Streams[0]

	// First file reads clean.
	payload, err := ev.srv.ReadRows(sess.ID, stream)
	if err != nil {
		t.Fatal(err)
	}
	ids := map[int64]bool{}
	collect := func(payload []byte) {
		b, err := vector.DecodeBatch(payload)
		if err != nil {
			t.Fatal(err)
		}
		col := b.Column("id")
		for i := 0; i < b.N; i++ {
			id := col.Value(i).AsInt()
			if ids[id] {
				t.Fatalf("row id %d delivered twice", id)
			}
			ids[id] = true
		}
	}
	collect(payload)

	// Second file faults mid-stream.
	ev.store.FailNext(1)
	if _, err := ev.srv.ReadRows(sess.ID, stream); !errors.Is(err, objstore.ErrTransient) {
		t.Fatalf("err = %v, want ErrTransient", err)
	}

	// The same call retried resumes at the failed file; draining the
	// stream yields every remaining row exactly once.
	for {
		payload, err := ev.srv.ReadRows(sess.ID, stream)
		if errors.Is(err, ErrEndOfStream) {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		collect(payload)
	}
	if len(ids) != 40 {
		t.Fatalf("delivered %d distinct rows, want 40", len(ids))
	}
}

// TestReadRowsRetriesAbsorbFault: under the default policy the client
// never sees the fault at all.
func TestReadRowsRetriesAbsorbFault(t *testing.T) {
	ev := newEnv(t)
	ev.createSales(t, 4, 10)

	sess, err := ev.srv.CreateReadSession(ReadSessionRequest{
		Table: "ds.sales", Principal: adminP, MaxStreams: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	ev.store.FailNext(1)
	batch, err := ev.srv.ReadAll(sess)
	if err != nil {
		t.Fatal(err)
	}
	if batch.N != 40 {
		t.Fatalf("rows = %d", batch.N)
	}
	if ev.srv.Meter.Get("retries") == 0 {
		t.Fatal("expected a metered retry")
	}
}
