// Package storageapi implements the BigQuery Storage APIs of §2.2: the
// Read API (CreateReadSession/ReadRows with parallel streams, filter
// pushdown, column projection, snapshot reads, dynamic stream
// splitting, table statistics, and optional aggregate pushdown) and
// the Write API (multi-stream append with exactly-once offsets,
// pending/committed modes, and cross-stream atomic commits).
//
// The Read API is the trust boundary of §3.2: every batch has row
// policies, column ACLs and masking applied *before* it is serialized
// to the (untrusted) external engine, using the same
// security.Authority implementation the engine's own scans use.
package storageapi

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"biglake/internal/bigmeta"
	"biglake/internal/catalog"
	"biglake/internal/colfmt"
	"biglake/internal/crashpoint"
	"biglake/internal/objstore"
	"biglake/internal/obs"
	"biglake/internal/resilience"
	"biglake/internal/security"
	"biglake/internal/sim"
	"biglake/internal/vector"
	"biglake/internal/wal"
)

// Errors returned by the storage APIs.
var (
	ErrNoSession    = errors.New("storageapi: no such read session")
	ErrNoStream     = errors.New("storageapi: no such stream")
	ErrEndOfStream  = errors.New("storageapi: end of stream")
	ErrOffsetExists = errors.New("storageapi: rows at offset already appended")
	ErrBadOffset    = errors.New("storageapi: unexpected append offset")
	ErrFinalized    = errors.New("storageapi: stream finalized")
)

// SessionLatency models the server-side cost of creating a read
// session: enumerating/pruning files and persisting stream metadata to
// the small-state store ("expensive on the server side", §3.4).
const SessionLatency = 12 * time.Millisecond

// AggregateRequest asks the server to compute a partial aggregate
// instead of shipping rows (§3.4 future work: aggregate pushdown).
type AggregateRequest struct {
	Column string
	Kind   vector.AggKind
}

// ReadSessionRequest are the CreateReadSession parameters (§2.2.1).
type ReadSessionRequest struct {
	Table     string
	Principal security.Principal
	// Columns projects a subset (nil = all readable columns).
	Columns []string
	// Predicates are pushed-down row restrictions.
	Predicates []colfmt.Predicate
	// SnapshotVersion pins managed-table reads to a log version
	// (-1 = latest). BigLake tables read the current cache snapshot.
	SnapshotVersion int64
	// MaxStreams caps read parallelism (0 = server default).
	MaxStreams int
	// KeepEncodings retains dictionary/RLE encodings on the wire
	// (ablation A4).
	KeepEncodings bool
	// Aggregates, when set, turns the session into an aggregate
	// pushdown session.
	Aggregates []AggregateRequest
	// RowOriented selects the legacy row-oriented reader (the §3.4
	// first prototype; E2's baseline).
	RowOriented bool
}

// ReadSession is the session handle returned to clients.
type ReadSession struct {
	ID      string
	Table   string
	Schema  vector.Schema
	Streams []string
	// Stats carries Big Metadata table statistics for client-side
	// planning (§3.4: "We extended CreateReadSession to return data
	// statistics collected in Big Metadata").
	Stats bigmeta.TableStats
	// EstimatedRows is the post-pruning row estimate.
	EstimatedRows int64
	// Reused reports that an equivalent cached session was returned
	// instead of creating a new one (§3.4 future work: session reuse).
	Reused bool
}

type streamState struct {
	files []bigmeta.FileEntry
	next  int
	done  bool
}

type session struct {
	req    ReadSessionRequest
	table  catalog.Table
	cred   objstore.Credential
	schema vector.Schema // projected, post-governance schema
	// plan is the immutable file partitioning computed at creation;
	// each acquisition of the session (including reuse) gets fresh
	// one-shot streams over it.
	plan    [][]bigmeta.FileEntry
	streams map[string]*streamState
	order   []string
	gen     int
	mu      sync.Mutex
	agg     bool
	aggDone bool
	// budget is the session-lifetime retry allowance shared by every
	// ReadRows call, seeded from the session ID for reproducibility.
	budget *resilience.Budget
}

// openStreams instantiates fresh streams over the session plan and
// returns their names.
func (sess *session) openStreams(id string) []string {
	sess.mu.Lock()
	defer sess.mu.Unlock()
	sess.gen++
	sess.aggDone = false
	names := make([]string, len(sess.plan))
	for i, files := range sess.plan {
		name := fmt.Sprintf("%s/streams/g%d-%d", id, sess.gen, i)
		sess.streams[name] = &streamState{files: files}
		names[i] = name
	}
	sess.order = names
	return names
}

// Server is one region's Storage API frontend.
type Server struct {
	Catalog *catalog.Catalog
	Auth    *security.Authority
	Meta    *bigmeta.Cache
	Log     *bigmeta.Log
	Clock   *sim.Clock
	Meter   *sim.Meter
	Stores  map[string]*objstore.Store
	// ManagedCred reads native tables.
	ManagedCred objstore.Credential
	// SessionTTL bounds read-session reuse (simulated time).
	SessionTTL time.Duration
	// Res is the retry/hedging policy for object-store reads and
	// write-path data-file puts. Nil behaves like resilience.NoRetry.
	Res *resilience.Policy
	// Journal, when set, opens a durable intent for every write-path
	// transaction before data-file PUTs, so crashes between PUT and
	// commit leave reclaimable (not invisible) debris. The same journal
	// must be attached to Log as its commit sink.
	Journal *wal.Journal
	// Crash marks the write protocols' labeled crash points (nil = none).
	Crash *crashpoint.Injector

	// msink fans session/read counters into the legacy meter and (via
	// UseObs) a shared registry under "storageapi.*" names.
	msink obs.Sink

	mu       sync.Mutex
	sessions map[string]*session
	cache    map[string]cachedSession
	seq      int
	wmu      sync.Mutex
	writes   map[string]*writeStream
	wseq     int
}

type cachedSession struct {
	id      string
	expires time.Duration
}

// NewServer assembles a Storage API server.
func NewServer(cat *catalog.Catalog, auth *security.Authority, meta *bigmeta.Cache, log *bigmeta.Log, clock *sim.Clock, stores map[string]*objstore.Store) *Server {
	meter := &sim.Meter{}
	res := resilience.DefaultPolicy()
	res.Meter = meter
	return &Server{
		msink:      meter,
		Catalog:    cat,
		Auth:       auth,
		Meta:       meta,
		Log:        log,
		Clock:      clock,
		Meter:      meter,
		Stores:     stores,
		SessionTTL: 10 * time.Minute,
		Res:        res,
		sessions:   make(map[string]*session),
		cache:      make(map[string]cachedSession),
		writes:     make(map[string]*writeStream),
	}
}

// UseObs tees the server's counters into a shared registry under
// "storageapi."-prefixed names and its retry metrics under
// "resilience.*"; legacy meter names keep working.
func (s *Server) UseObs(r *obs.Registry) {
	if r == nil {
		return
	}
	s.msink = obs.Tee(s.Meter, r.Prefixed("storageapi."))
	if s.Res != nil {
		s.Res.Meter = obs.Tee(s.Meter, r.Prefixed("resilience."))
	}
}

func (s *Server) store(cloud string) (*objstore.Store, error) {
	st, ok := s.Stores[cloud]
	if !ok {
		return nil, fmt.Errorf("storageapi: no object store for cloud %q", cloud)
	}
	return st, nil
}

func (s *Server) credFor(t catalog.Table) (objstore.Credential, error) {
	if t.Connection == "" {
		return s.ManagedCred, nil
	}
	conn, err := s.Auth.Connection(t.Connection)
	if err != nil {
		return objstore.Credential{}, err
	}
	return conn.ServiceAccount, nil
}

func sessionKey(req ReadSessionRequest) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s|%s|%v|%d|%v|%v|%v", req.Table, req.Principal, req.Columns, req.SnapshotVersion, req.KeepEncodings, req.RowOriented, req.Aggregates)
	preds := make([]string, len(req.Predicates))
	for i, p := range req.Predicates {
		preds[i] = p.String()
	}
	sort.Strings(preds)
	sb.WriteString(strings.Join(preds, "&"))
	return sb.String()
}

// DefaultStreams is the stream count when the caller does not specify
// one.
const DefaultStreams = 8

// sessionRetryBudget bounds the total object-store retries one read
// session may spend across all its streams.
const sessionRetryBudget = 64

// CreateReadSession plans a consistent point-in-time read and returns
// stream handles (§2.2.1). Governance is resolved here: selecting a
// column the principal has no access to fails the whole session.
func (s *Server) CreateReadSession(req ReadSessionRequest) (*ReadSession, error) {
	if err := s.Auth.CheckRead(req.Principal, req.Table); err != nil {
		return nil, err
	}
	t, err := s.Catalog.Table(req.Table)
	if err != nil {
		return nil, err
	}

	// Session reuse from the cache (§3.4 future work) — same request
	// shape within the TTL returns the existing session.
	key := sessionKey(req)
	s.mu.Lock()
	if c, ok := s.cache[key]; ok && s.Clock.Now() <= c.expires {
		if sess, ok := s.sessions[c.id]; ok {
			s.mu.Unlock()
			s.msink.Add("sessions_reused", 1)
			sess.openStreams(c.id)
			return s.describe(c.id, sess, true), nil
		}
	}
	s.mu.Unlock()

	cred, err := s.credFor(t)
	if err != nil {
		return nil, err
	}

	// Column-level security: fail early on denied columns.
	cols := req.Columns
	if cols == nil {
		for _, f := range t.Schema.Fields {
			cols = append(cols, f.Name)
		}
	}
	for _, d := range s.Auth.ColumnDecisionsFor(req.Principal, req.Table, cols) {
		if d.Denied {
			return nil, fmt.Errorf("%w: column %s.%s", security.ErrDenied, req.Table, d.Column)
		}
	}

	// Enumerate and prune files.
	var files []bigmeta.FileEntry
	switch t.Type {
	case catalog.Native, catalog.Managed:
		files, _, err = s.Log.Snapshot(req.Table, req.SnapshotVersion)
		if err != nil {
			return nil, err
		}
		kept := files[:0]
		for _, f := range files {
			if bigmeta.FileCanMatch(f, req.Predicates, bigmeta.PruneFiles) {
				kept = append(kept, f)
			}
		}
		files = kept
	case catalog.BigLake:
		store, err := s.store(t.Cloud)
		if err != nil {
			return nil, err
		}
		if _, ok := s.Meta.RefreshedAt(req.Table); !ok {
			if _, err := s.Meta.Refresh(req.Table, store, cred, t.Bucket, t.Prefix, bigmeta.RefreshOptions{WithFileStats: true, Background: true}); err != nil {
				return nil, err
			}
		}
		files, err = s.Meta.Prune(req.Table, req.Predicates, bigmeta.PruneFiles)
		if err != nil {
			return nil, err
		}
	default:
		return nil, fmt.Errorf("storageapi: table type %v not readable through the Read API", t.Type)
	}

	// Projected output schema (types may change under masking).
	schema, err := t.Schema.Select(cols)
	if err != nil {
		return nil, err
	}
	for i, d := range s.Auth.ColumnDecisionsFor(req.Principal, req.Table, cols) {
		if d.Mask != vector.MaskNone {
			schema.Fields[i].Type = vector.String
		}
	}

	// Partition files across streams.
	nStreams := req.MaxStreams
	if nStreams <= 0 {
		nStreams = DefaultStreams
	}
	if nStreams > len(files) && len(files) > 0 {
		nStreams = len(files)
	}
	if nStreams == 0 {
		nStreams = 1
	}
	sess := &session{
		req:     req,
		table:   t,
		cred:    cred,
		schema:  schema,
		plan:    make([][]bigmeta.FileEntry, nStreams),
		streams: make(map[string]*streamState),
		agg:     len(req.Aggregates) > 0,
	}
	for i, f := range files {
		sess.plan[i%nStreams] = append(sess.plan[i%nStreams], f)
	}
	s.mu.Lock()
	s.seq++
	id := fmt.Sprintf("sessions/%d", s.seq)
	s.sessions[id] = sess
	s.cache[key] = cachedSession{id: id, expires: s.Clock.Now() + s.SessionTTL}
	s.mu.Unlock()
	sess.budget = resilience.NewBudget(s.Clock, sessionRetryBudget, resilience.Seed64(id))
	sess.openStreams(id)

	// Server-side session creation cost.
	s.Clock.Advance(SessionLatency)
	s.msink.Add("sessions_created", 1)
	return s.describe(id, sess, false), nil
}

func (s *Server) describe(id string, sess *session, reused bool) *ReadSession {
	var all []bigmeta.FileEntry
	for _, part := range sess.plan {
		all = append(all, part...)
	}
	stats := bigmeta.MergeStats(all)
	rows := stats.Rows
	return &ReadSession{
		ID:            id,
		Table:         sess.req.Table,
		Schema:        sess.schema,
		Streams:       append([]string(nil), sess.order...),
		Stats:         stats,
		EstimatedRows: rows,
		Reused:        reused,
	}
}

// ReadRows drains the next chunk of a stream, returning a wire-encoded
// batch. io semantics: (nil, ErrEndOfStream) once the stream is
// exhausted. Each call reads one file's worth of data, applies
// pushdown predicates during the scan, enforces governance, projects,
// and serializes.
func (s *Server) ReadRows(sessionID, streamName string) ([]byte, error) {
	return s.readRowsOn(s.Clock, sessionID, streamName)
}

// ReadRowsOn is ReadRows with latency charged to a parallel client
// track.
func (s *Server) ReadRowsOn(ch sim.Charger, sessionID, streamName string) ([]byte, error) {
	return s.readRowsOn(ch, sessionID, streamName)
}

func (s *Server) readRowsOn(ch sim.Charger, sessionID, streamName string) ([]byte, error) {
	s.mu.Lock()
	sess, ok := s.sessions[sessionID]
	s.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNoSession, sessionID)
	}
	sess.mu.Lock()
	st, ok := sess.streams[streamName]
	if !ok {
		sess.mu.Unlock()
		return nil, fmt.Errorf("%w: %s", ErrNoStream, streamName)
	}

	if sess.agg {
		// Aggregate pushdown: one result payload on the first stream.
		if sess.aggDone {
			sess.mu.Unlock()
			return nil, ErrEndOfStream
		}
		sess.aggDone = true
		var files []bigmeta.FileEntry
		for _, part := range sess.plan {
			files = append(files, part...)
		}
		sess.mu.Unlock()
		return s.computeAggregates(ch, sess, files)
	}

	if st.next >= len(st.files) {
		st.done = true
		sess.mu.Unlock()
		return nil, ErrEndOfStream
	}
	idx := st.next
	file := st.files[idx]
	st.next++
	sess.mu.Unlock()

	batch, err := s.readGoverned(ch, sess, file)
	if err != nil {
		// Roll the cursor back so the stream resumes at the failed file:
		// a client retrying the same ReadRows call after a transient
		// fault re-reads this file rather than silently skipping it.
		sess.mu.Lock()
		if st.next == idx+1 {
			st.next = idx
		}
		sess.mu.Unlock()
		return nil, err
	}
	payload := vector.EncodeBatch(batch, sess.req.KeepEncodings)
	s.msink.Add("readrows_bytes", int64(len(payload)))
	s.msink.Add("readrows_calls", 1)
	return payload, nil
}

// readGoverned reads one file and applies the full governance +
// projection pipeline inside the trust boundary.
func (s *Server) readGoverned(ch sim.Charger, sess *session, file bigmeta.FileEntry) (*vector.Batch, error) {
	store, err := s.store(sess.table.Cloud)
	if err != nil {
		return nil, err
	}
	var data []byte
	if err := s.Res.HedgedDo(ch, sess.budget, "GET "+file.Bucket+"/"+file.Key, func(hch sim.Charger) error {
		d, _, ge := store.GetOn(hch, sess.cred, file.Bucket, file.Key)
		if ge != nil {
			return ge
		}
		data = d
		return nil
	}); err != nil {
		return nil, err
	}

	// Predicates on columns the file physically stores; partition
	// predicates were consumed by pruning, and hive-partitioned files
	// do not store the partition column itself.
	footer, err := colfmt.ReadFooter(data)
	if err != nil {
		return nil, fmt.Errorf("storageapi: %s/%s: %w", file.Bucket, file.Key, err)
	}
	fileSchema := footer.Schema()
	var filePreds []colfmt.Predicate
	for _, p := range sess.req.Predicates {
		if fileSchema.Index(p.Column) >= 0 {
			filePreds = append(filePreds, p)
		}
	}

	var batch *vector.Batch
	if sess.req.RowOriented {
		// Legacy pipeline: row-oriented reader, rows re-columnarized.
		r, err := colfmt.NewRowReader(data, nil, filePreds)
		if err != nil {
			return nil, err
		}
		batch, err = r.ReadAllColumnar()
		if err != nil {
			return nil, err
		}
	} else {
		r, err := colfmt.NewVectorizedReader(data, nil, filePreds)
		if err != nil {
			return nil, err
		}
		batch, err = r.ReadAll()
		if err != nil {
			return nil, err
		}
	}

	// Governance: the Read API applies row filters and masking before
	// data leaves the boundary (§3.2).
	governed, err := s.Auth.ApplyGovernance(sess.req.Principal, sess.req.Table, batch)
	if err != nil {
		return nil, err
	}

	cols := sess.req.Columns
	if cols == nil {
		return governed, nil
	}
	return governed.Project(cols)
}

// computeAggregates evaluates the requested partial aggregates
// server-side and returns one small payload.
func (s *Server) computeAggregates(ch sim.Charger, sess *session, files []bigmeta.FileEntry) ([]byte, error) {
	// Accumulate per aggregate.
	n := len(sess.req.Aggregates)
	partials := make([]vector.Value, n)
	counts := make([]int64, n)
	for _, f := range files {
		batch, err := s.readGovernedAll(ch, sess, f)
		if err != nil {
			return nil, err
		}
		for i, a := range sess.req.Aggregates {
			c := batch.Column(a.Column)
			if c == nil {
				return nil, fmt.Errorf("storageapi: aggregate column %q not found", a.Column)
			}
			v := vector.Aggregate(c, a.Kind, nil)
			partials[i] = mergeAgg(a.Kind, partials[i], v)
			counts[i]++
		}
	}
	fields := make([]vector.Field, n)
	builder := make([]*vector.Column, n)
	for i, a := range sess.req.Aggregates {
		v := partials[i]
		typ := v.Type
		if v.IsNull() {
			typ = vector.Int64
		}
		fields[i] = vector.Field{Name: fmt.Sprintf("%s_%s", strings.ToLower(a.Kind.String()), a.Column), Type: typ}
		bl := vector.NewBuilder(vector.NewSchema(fields[i]))
		bl.Append(v)
		builder[i] = bl.Build().Cols[0]
	}
	batch, err := vector.NewBatch(vector.Schema{Fields: fields}, builder)
	if err != nil {
		return nil, err
	}
	payload := vector.EncodeBatch(batch, false)
	s.msink.Add("readrows_bytes", int64(len(payload)))
	s.msink.Add("readrows_calls", 1)
	return payload, nil
}

func mergeAgg(kind vector.AggKind, acc, v vector.Value) vector.Value {
	if acc.IsNull() {
		return v
	}
	if v.IsNull() {
		return acc
	}
	switch kind {
	case vector.AggCount, vector.AggSum:
		if acc.Type == vector.Float64 || v.Type == vector.Float64 {
			return vector.FloatValue(acc.AsFloat() + v.AsFloat())
		}
		return vector.IntValue(acc.AsInt() + v.AsInt())
	case vector.AggMin:
		if v.Compare(acc) < 0 {
			return v
		}
		return acc
	case vector.AggMax:
		if v.Compare(acc) > 0 {
			return v
		}
		return acc
	}
	return acc
}

// readGovernedAll is readGoverned without the projection, used by the
// aggregate path (aggregates may reference unprojected columns).
func (s *Server) readGovernedAll(ch sim.Charger, sess *session, file bigmeta.FileEntry) (*vector.Batch, error) {
	saved := sess.req.Columns
	defer func() { sess.req.Columns = saved }()
	sess.req.Columns = nil
	return s.readGoverned(ch, sess, file)
}

// SplitStream divides a stream's remaining work in two for dynamic
// rebalancing (§2.2.1), returning the new stream's name.
func (s *Server) SplitStream(sessionID, streamName string) (string, error) {
	s.mu.Lock()
	sess, ok := s.sessions[sessionID]
	s.mu.Unlock()
	if !ok {
		return "", fmt.Errorf("%w: %s", ErrNoSession, sessionID)
	}
	sess.mu.Lock()
	defer sess.mu.Unlock()
	st, ok := sess.streams[streamName]
	if !ok {
		return "", fmt.Errorf("%w: %s", ErrNoStream, streamName)
	}
	remaining := len(st.files) - st.next
	if remaining < 2 {
		return "", fmt.Errorf("storageapi: stream %s has too little work to split", streamName)
	}
	half := st.next + remaining/2
	newName := fmt.Sprintf("%s-split%d", streamName, len(sess.order))
	sess.streams[newName] = &streamState{files: append([]bigmeta.FileEntry(nil), st.files[half:]...)}
	st.files = st.files[:half]
	sess.order = append(sess.order, newName)
	return newName, nil
}

// ReadAll is a client convenience: drain every stream of a session
// (sequentially) and decode into one batch.
func (s *Server) ReadAll(sess *ReadSession) (*vector.Batch, error) {
	var out *vector.Batch
	for _, stream := range sess.Streams {
		for {
			payload, err := s.ReadRows(sess.ID, stream)
			if errors.Is(err, ErrEndOfStream) {
				break
			}
			if err != nil {
				return nil, err
			}
			b, err := vector.DecodeBatch(payload)
			if err != nil {
				return nil, err
			}
			out, err = vector.AppendBatch(out, b)
			if err != nil {
				return nil, err
			}
		}
		if sess.Streams[0] == stream && len(sess.Streams) > 0 {
			// aggregate sessions answer entirely on the first stream
			s.mu.Lock()
			real, ok := s.sessions[sess.ID]
			s.mu.Unlock()
			if ok && real.agg {
				break
			}
		}
	}
	if out == nil {
		out = vector.EmptyBatch(sess.Schema)
	}
	return out, nil
}
