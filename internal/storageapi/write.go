package storageapi

import (
	"fmt"

	"biglake/internal/bigmeta"
	"biglake/internal/catalog"
	"biglake/internal/colfmt"
	"biglake/internal/objstore"
	"biglake/internal/security"
	"biglake/internal/vector"
)

func securityPrincipal(p string) security.Principal { return security.Principal(p) }

// WriteMode selects commit semantics for a write stream (§2.2.2).
type WriteMode int

// Write modes.
const (
	// CommittedMode makes rows visible as soon as each append returns
	// (real-time streaming).
	CommittedMode WriteMode = iota
	// PendingMode buffers rows until the stream is finalized and
	// explicitly committed (batch commit), enabling cross-stream
	// transactions.
	PendingMode
	// BufferedMode holds appended rows until the client advances the
	// flush offset with FlushRows; rows up to the flush point become
	// visible, later rows stay buffered.
	BufferedMode
)

func (m WriteMode) String() string {
	switch m {
	case PendingMode:
		return "PENDING"
	case BufferedMode:
		return "BUFFERED"
	}
	return "COMMITTED"
}

type writeStream struct {
	id        string
	table     string
	mode      WriteMode
	principal string
	rows      *vector.Batch
	offset    int64
	// flushed is the row offset already made visible (BufferedMode).
	flushed int64
	// flushSeq numbers this stream's successful flushes; data-file keys
	// derive from it, so a retried flush overwrites its own earlier
	// attempt instead of stranding it.
	flushSeq  int64
	finalized bool
	committed bool
}

// state snapshots the stream's durable fields for sealing inside a
// commit record; atOffset is the row offset the commit makes durable.
func (ws *writeStream) state(atOffset int64) bigmeta.StreamState {
	return bigmeta.StreamState{
		Table:     ws.table,
		Principal: ws.principal,
		Mode:      int(ws.mode),
		Offset:    atOffset,
		FlushSeq:  ws.flushSeq,
		Finalized: ws.finalized,
		Committed: ws.committed,
	}
}

// CreateWriteStream opens a write stream against a managed table.
func (s *Server) CreateWriteStream(principal, table string, mode WriteMode) (string, error) {
	if err := s.Auth.CheckWrite(securityPrincipal(principal), table); err != nil {
		return "", err
	}
	t, err := s.Catalog.Table(table)
	if err != nil {
		return "", err
	}
	if t.Type != catalog.Managed && t.Type != catalog.Native {
		return "", fmt.Errorf("storageapi: write streams require a managed table, %s is %v", table, t.Type)
	}
	s.wmu.Lock()
	defer s.wmu.Unlock()
	s.wseq++
	id := fmt.Sprintf("writeStreams/%d", s.wseq)
	s.writes[id] = &writeStream{id: id, table: table, mode: mode, principal: principal}
	return id, nil
}

// RestoreStreams reinstalls durable write-stream state after a crash.
// Each restored stream resumes at exactly its last sealed offset:
// buffered-but-unflushed rows died with the process, so clients
// re-append from Offset; appends the crashed process already sealed
// answer ErrOffsetExists, which exactly-once clients treat as success.
func (s *Server) RestoreStreams(states map[string]bigmeta.StreamState) {
	s.wmu.Lock()
	defer s.wmu.Unlock()
	for id, st := range states {
		s.writes[id] = &writeStream{
			id:        id,
			table:     st.Table,
			mode:      WriteMode(st.Mode),
			principal: st.Principal,
			offset:    st.Offset,
			flushed:   st.Offset,
			flushSeq:  st.FlushSeq,
			finalized: st.Finalized,
			committed: st.Committed,
		}
		// Keep the ID allocator ahead of every restored stream so new
		// streams cannot collide with recovered ones.
		var n int
		if _, err := fmt.Sscanf(id, "writeStreams/%d", &n); err == nil && n > s.wseq {
			s.wseq = n
		}
	}
}

// AppendRows appends a batch at the given offset. Offsets provide
// exactly-once semantics: re-sending an already-applied offset is an
// idempotent no-op reporting ErrOffsetExists; appending beyond the end
// is ErrBadOffset. Pass offset -1 for "at end".
func (s *Server) AppendRows(streamID string, offset int64, rows *vector.Batch) (int64, error) {
	s.wmu.Lock()
	defer s.wmu.Unlock()
	ws, ok := s.writes[streamID]
	if !ok {
		return 0, fmt.Errorf("%w: %s", ErrNoStream, streamID)
	}
	if ws.finalized {
		return 0, fmt.Errorf("%w: %s", ErrFinalized, streamID)
	}
	if offset >= 0 {
		if offset < ws.offset {
			return ws.offset, fmt.Errorf("%w: offset %d already applied (next %d)", ErrOffsetExists, offset, ws.offset)
		}
		if offset > ws.offset {
			return ws.offset, fmt.Errorf("%w: offset %d beyond next %d", ErrBadOffset, offset, ws.offset)
		}
	}
	savedRows, savedOffset := ws.rows, ws.offset
	merged, err := vector.AppendBatch(ws.rows, rows)
	if err != nil {
		return ws.offset, err
	}
	ws.rows = merged
	ws.offset += int64(rows.N)
	s.msink.Add("appended_rows", int64(rows.N))

	if ws.mode == CommittedMode {
		if err := s.flushStreamLocked(ws, ws.offset); err != nil {
			// Roll the append back entirely: a committed-mode append is
			// acked only once its rows are committed, so a failed flush
			// must leave the stream where the client left it — the retry
			// re-sends the same offset and succeeds rather than colliding
			// with ErrOffsetExists over rows that never became visible.
			ws.rows, ws.offset = savedRows, savedOffset
			return ws.offset, err
		}
	}
	return ws.offset, nil
}

// flushStreamLocked materializes buffered rows as a data file and
// commits it to the table's transaction log, sealing the stream's
// durable state (offset atOffset, next flush sequence) in the same
// commit record. The protocol is crash-consistent: journal intent →
// data PUT → sealed commit. The data-file key derives from the
// stream's flush sequence, so a retried flush overwrites its own
// earlier attempt; a flush that dies between PUT and seal leaves one
// orphan the journal intent has already declared for GC.
func (s *Server) flushStreamLocked(ws *writeStream, atOffset int64) error {
	if ws.rows == nil || ws.rows.N == 0 {
		return nil
	}
	txnID := fmt.Sprintf("%s:f%d", ws.id, ws.flushSeq)
	if _, done := s.Log.AppliedTx(txnID); done {
		// A crashed predecessor sealed this exact flush; nothing to redo.
		ws.rows = nil
		ws.flushSeq++
		return nil
	}
	t, err := s.Catalog.Table(ws.table)
	if err != nil {
		return err
	}
	store, err := s.store(t.Cloud)
	if err != nil {
		return err
	}
	cred, err := s.credFor(t)
	if err != nil {
		return err
	}
	file, err := colfmt.WriteFile(ws.rows, colfmt.WriterOptions{})
	if err != nil {
		return err
	}
	key := fmt.Sprintf("%sdata/%s-f%06d.blk", t.Prefix, sanitize(ws.id), ws.flushSeq)
	var intentSeq int64
	if s.Journal != nil {
		if intentSeq, err = s.Journal.AppendIntent(txnID, ws.principal, []string{key}); err != nil {
			return err
		}
	}
	s.Crash.At("flush.before_put")
	var info objstore.ObjectInfo
	if err := s.Res.Do(s.Clock, nil, "PUT "+t.Bucket+"/"+key, func() error {
		var pe error
		info, pe = store.Put(cred, t.Bucket, key, file, "application/x-blk")
		return pe
	}); err != nil {
		return err
	}
	s.Crash.At("flush.after_put")
	footer, err := colfmt.ReadFooter(file)
	if err != nil {
		return err
	}
	stats := make(map[string]colfmt.ColumnStats)
	for _, f := range footer.Fields {
		if st, ok := footer.ColumnStatsFor(f.Name); ok {
			stats[f.Name] = st
		}
	}
	sealed := ws.state(atOffset)
	sealed.FlushSeq = ws.flushSeq + 1 // the retried flush mints the next key
	_, err = s.Log.CommitTx(ws.principal, bigmeta.TxOptions{
		TxnID:     txnID,
		IntentSeq: intentSeq,
		Streams:   map[string]bigmeta.StreamState{ws.id: sealed},
	}, map[string]bigmeta.TableDelta{
		ws.table: {Added: []bigmeta.FileEntry{{
			Bucket: t.Bucket, Key: key, Size: info.Size,
			Generation: info.Generation,
			RowCount:   footer.Rows, ColumnStats: stats,
		}}},
	})
	if err != nil {
		return err
	}
	s.Crash.At("flush.after_commit")
	ws.rows = nil
	ws.flushSeq++
	return nil
}

func sanitize(s string) string {
	out := []byte(s)
	for i, c := range out {
		if c == '/' {
			out[i] = '-'
		}
	}
	return string(out)
}

// FlushRows makes a buffered stream's rows visible up to offset
// (exclusive). Flushing at or behind the current flush point is a
// no-op; flushing beyond the appended rows is an error. Returns the
// new flush offset.
func (s *Server) FlushRows(streamID string, offset int64) (int64, error) {
	s.wmu.Lock()
	defer s.wmu.Unlock()
	ws, ok := s.writes[streamID]
	if !ok {
		return 0, fmt.Errorf("%w: %s", ErrNoStream, streamID)
	}
	if ws.mode != BufferedMode {
		return 0, fmt.Errorf("storageapi: FlushRows requires a BUFFERED stream, %s is %v", streamID, ws.mode)
	}
	if offset > ws.offset {
		return ws.flushed, fmt.Errorf("%w: flush offset %d beyond appended %d", ErrBadOffset, offset, ws.offset)
	}
	if offset <= ws.flushed {
		return ws.flushed, nil
	}
	// Materialize rows [flushed, offset) as one visible file. The
	// buffered batch holds rows starting at ws.flushed.
	n := int(offset - ws.flushed)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	cols := make([]*vector.Column, len(ws.rows.Cols))
	for i, c := range ws.rows.Cols {
		cols[i] = vector.Gather(c, idx)
	}
	visible, err := vector.NewBatch(ws.rows.Schema, cols)
	if err != nil {
		return ws.flushed, err
	}
	rest := ws.rows.N - n
	restIdx := make([]int, rest)
	for i := range restIdx {
		restIdx[i] = n + i
	}
	restCols := make([]*vector.Column, len(ws.rows.Cols))
	for i, c := range ws.rows.Cols {
		restCols[i] = vector.Gather(c, restIdx)
	}
	remaining, err := vector.NewBatch(ws.rows.Schema, restCols)
	if err != nil {
		return ws.flushed, err
	}
	saved := ws.rows
	ws.rows = visible
	if err := s.flushStreamLocked(ws, offset); err != nil {
		ws.rows = saved
		return ws.flushed, err
	}
	ws.rows = remaining
	ws.flushed = offset
	return ws.flushed, nil
}

// FinalizeStream seals a stream against further appends and returns
// the final row offset. Finalizing an already-finalized stream is an
// idempotent no-op returning the same offset, and the caller's
// authority over the table is re-verified like every other stream RPC.
func (s *Server) FinalizeStream(streamID string) (int64, error) {
	s.wmu.Lock()
	defer s.wmu.Unlock()
	ws, ok := s.writes[streamID]
	if !ok {
		return 0, fmt.Errorf("%w: %s", ErrNoStream, streamID)
	}
	if err := s.Auth.CheckWrite(securityPrincipal(ws.principal), ws.table); err != nil {
		return 0, err
	}
	if ws.finalized {
		return ws.offset, nil
	}
	ws.finalized = true
	return ws.offset, nil
}

// BatchCommitStreams atomically commits a set of finalized pending
// streams into their table(s) — the cross-stream transaction of
// §2.2.2. Streams for different tables commit in one multi-table Big
// Metadata transaction. Committing an already-committed stream is an
// error; crash-safe clients that need a retryable commit use
// BatchCommitStreamsTx.
func (s *Server) BatchCommitStreams(streamIDs []string) error {
	return s.batchCommit("", streamIDs)
}

// BatchCommitStreamsTx is BatchCommitStreams with a client-supplied
// idempotency ID: retrying after a crash or timeout is an exact no-op
// once the original commit sealed, so the transaction applies exactly
// once no matter how many times it is driven to completion.
func (s *Server) BatchCommitStreamsTx(txnID string, streamIDs []string) error {
	if txnID == "" {
		return fmt.Errorf("storageapi: BatchCommitStreamsTx requires a txn ID")
	}
	return s.batchCommit(txnID, streamIDs)
}

// batchStream is one validated stream's prepared work.
type batchStream struct {
	ws    *writeStream
	table catalog.Table
	store *objstore.Store
	cred  objstore.Credential
	file  []byte
	key   string
}

func (s *Server) batchCommit(txnID string, streamIDs []string) error {
	s.wmu.Lock()
	defer s.wmu.Unlock()

	if txnID != "" {
		if _, done := s.Log.AppliedTx(txnID); done {
			// The original commit sealed before the caller heard the ack;
			// converge local stream state and succeed idempotently.
			for _, id := range streamIDs {
				if ws, ok := s.writes[id]; ok {
					ws.committed = true
					ws.rows = nil
				}
			}
			return nil
		}
	}

	// Phase 1 — validate every stream before touching the store, so a
	// bad stream ID midway can no longer strand earlier PUTs.
	principal := ""
	var prepared []batchStream
	for _, id := range streamIDs {
		ws, ok := s.writes[id]
		if !ok {
			return fmt.Errorf("%w: %s", ErrNoStream, id)
		}
		if !ws.finalized {
			return fmt.Errorf("storageapi: stream %s must be finalized before commit", id)
		}
		if ws.committed {
			if txnID != "" {
				continue // an already-durable member of this transaction
			}
			return fmt.Errorf("storageapi: stream %s already committed", id)
		}
		if ws.mode != PendingMode {
			return fmt.Errorf("storageapi: stream %s is %v, not PENDING", id, ws.mode)
		}
		principal = ws.principal
		if ws.rows == nil || ws.rows.N == 0 {
			prepared = append(prepared, batchStream{ws: ws})
			continue
		}
		t, err := s.Catalog.Table(ws.table)
		if err != nil {
			return err
		}
		store, err := s.store(t.Cloud)
		if err != nil {
			return err
		}
		cred, err := s.credFor(t)
		if err != nil {
			return err
		}
		file, err := colfmt.WriteFile(ws.rows, colfmt.WriterOptions{})
		if err != nil {
			return err
		}
		prepared = append(prepared, batchStream{
			ws: ws, table: t, store: store, cred: cred, file: file,
			key: fmt.Sprintf("%sdata/%s.blk", t.Prefix, sanitize(ws.id)),
		})
	}

	// Phase 2 — declare every key in a journal intent, then PUT. Keys
	// are deterministic per stream, so a crashed attempt's files are
	// overwritten by the retry; a PUT failure aborts the intent and
	// hands the debris to orphan GC.
	var intentSeq int64
	if s.Journal != nil && txnID != "" {
		var keys []string
		for _, b := range prepared {
			if b.file != nil {
				keys = append(keys, b.key)
			}
		}
		var err error
		if intentSeq, err = s.Journal.AppendIntent(txnID, principal, keys); err != nil {
			return err
		}
	}
	deltas := map[string]bigmeta.TableDelta{}
	streams := map[string]bigmeta.StreamState{}
	for _, b := range prepared {
		sealed := b.ws.state(b.ws.offset)
		sealed.Committed = true // committed iff the seal below lands
		streams[b.ws.id] = sealed
		if b.file == nil {
			continue
		}
		s.Crash.At("batch.before_put")
		var info objstore.ObjectInfo
		if err := s.Res.Do(s.Clock, nil, "PUT "+b.table.Bucket+"/"+b.key, func() error {
			var pe error
			info, pe = b.store.Put(b.cred, b.table.Bucket, b.key, b.file, "application/x-blk")
			return pe
		}); err != nil {
			if s.Journal != nil && txnID != "" {
				if aerr := s.Journal.AppendAbort(txnID, intentSeq); aerr != nil {
					return fmt.Errorf("%w (abort also failed: %v)", err, aerr)
				}
			}
			return err
		}
		s.Crash.At("batch.after_put")
		footer, err := colfmt.ReadFooter(b.file)
		if err != nil {
			return err
		}
		stats := make(map[string]colfmt.ColumnStats)
		for _, f := range footer.Fields {
			if st, ok := footer.ColumnStatsFor(f.Name); ok {
				stats[f.Name] = st
			}
		}
		d := deltas[b.ws.table]
		d.Added = append(d.Added, bigmeta.FileEntry{
			Bucket: b.table.Bucket, Key: b.key, Size: info.Size,
			Generation: info.Generation,
			RowCount:   footer.Rows, ColumnStats: stats,
		})
		deltas[b.ws.table] = d
	}

	// Phase 3 — one multi-table commit seals the data files and every
	// stream's committed state atomically.
	if len(deltas) > 0 {
		if _, err := s.Log.CommitTx(principal, bigmeta.TxOptions{
			TxnID:     txnID,
			IntentSeq: intentSeq,
			Streams:   streams,
		}, deltas); err != nil {
			return err
		}
		s.Crash.At("batch.after_commit")
	}
	for _, b := range prepared {
		b.ws.committed = true
		b.ws.rows = nil
	}
	return nil
}
