package storageapi

import (
	"fmt"
	"time"

	"biglake/internal/bigmeta"
	"biglake/internal/catalog"
	"biglake/internal/colfmt"
	"biglake/internal/objstore"
	"biglake/internal/security"
	"biglake/internal/vector"
)

func securityPrincipal(p string) security.Principal { return security.Principal(p) }

// WriteMode selects commit semantics for a write stream (§2.2.2).
type WriteMode int

// Write modes.
const (
	// CommittedMode makes rows visible as soon as each append returns
	// (real-time streaming).
	CommittedMode WriteMode = iota
	// PendingMode buffers rows until the stream is finalized and
	// explicitly committed (batch commit), enabling cross-stream
	// transactions.
	PendingMode
	// BufferedMode holds appended rows until the client advances the
	// flush offset with FlushRows; rows up to the flush point become
	// visible, later rows stay buffered.
	BufferedMode
)

func (m WriteMode) String() string {
	switch m {
	case PendingMode:
		return "PENDING"
	case BufferedMode:
		return "BUFFERED"
	}
	return "COMMITTED"
}

type writeStream struct {
	id        string
	table     string
	mode      WriteMode
	principal string
	rows      *vector.Batch
	offset    int64
	// flushed is the row offset already made visible (BufferedMode).
	flushed   int64
	finalized bool
	committed bool
}

// CreateWriteStream opens a write stream against a managed table.
func (s *Server) CreateWriteStream(principal, table string, mode WriteMode) (string, error) {
	if err := s.Auth.CheckWrite(securityPrincipal(principal), table); err != nil {
		return "", err
	}
	t, err := s.Catalog.Table(table)
	if err != nil {
		return "", err
	}
	if t.Type != catalog.Managed && t.Type != catalog.Native {
		return "", fmt.Errorf("storageapi: write streams require a managed table, %s is %v", table, t.Type)
	}
	s.wmu.Lock()
	defer s.wmu.Unlock()
	s.wseq++
	id := fmt.Sprintf("writeStreams/%d", s.wseq)
	s.writes[id] = &writeStream{id: id, table: table, mode: mode, principal: principal}
	return id, nil
}

// AppendRows appends a batch at the given offset. Offsets provide
// exactly-once semantics: re-sending an already-applied offset is an
// idempotent no-op reporting ErrOffsetExists; appending beyond the end
// is ErrBadOffset. Pass offset -1 for "at end".
func (s *Server) AppendRows(streamID string, offset int64, rows *vector.Batch) (int64, error) {
	s.wmu.Lock()
	defer s.wmu.Unlock()
	ws, ok := s.writes[streamID]
	if !ok {
		return 0, fmt.Errorf("%w: %s", ErrNoStream, streamID)
	}
	if ws.finalized {
		return 0, fmt.Errorf("%w: %s", ErrFinalized, streamID)
	}
	if offset >= 0 {
		if offset < ws.offset {
			return ws.offset, fmt.Errorf("%w: offset %d already applied (next %d)", ErrOffsetExists, offset, ws.offset)
		}
		if offset > ws.offset {
			return ws.offset, fmt.Errorf("%w: offset %d beyond next %d", ErrBadOffset, offset, ws.offset)
		}
	}
	merged, err := vector.AppendBatch(ws.rows, rows)
	if err != nil {
		return ws.offset, err
	}
	ws.rows = merged
	ws.offset += int64(rows.N)
	s.Meter.Add("appended_rows", int64(rows.N))

	if ws.mode == CommittedMode {
		if err := s.flushStreamLocked(ws); err != nil {
			return ws.offset, err
		}
	}
	return ws.offset, nil
}

// flushStreamLocked materializes buffered rows as a data file and
// commits it to the table's transaction log.
func (s *Server) flushStreamLocked(ws *writeStream) error {
	if ws.rows == nil || ws.rows.N == 0 {
		return nil
	}
	t, err := s.Catalog.Table(ws.table)
	if err != nil {
		return err
	}
	store, err := s.store(t.Cloud)
	if err != nil {
		return err
	}
	cred, err := s.credFor(t)
	if err != nil {
		return err
	}
	file, err := colfmt.WriteFile(ws.rows, colfmt.WriterOptions{})
	if err != nil {
		return err
	}
	key := fmt.Sprintf("%sdata/%s-%d.blk", t.Prefix, sanitize(ws.id), s.Clock.Now()/time.Microsecond)
	var info objstore.ObjectInfo
	if err := s.Res.Do(s.Clock, nil, "PUT "+t.Bucket+"/"+key, func() error {
		var pe error
		info, pe = store.Put(cred, t.Bucket, key, file, "application/x-blk")
		return pe
	}); err != nil {
		return err
	}
	footer, err := colfmt.ReadFooter(file)
	if err != nil {
		return err
	}
	stats := make(map[string]colfmt.ColumnStats)
	for _, f := range footer.Fields {
		if st, ok := footer.ColumnStatsFor(f.Name); ok {
			stats[f.Name] = st
		}
	}
	_, err = s.Log.Commit(ws.principal, map[string]bigmeta.TableDelta{
		ws.table: {Added: []bigmeta.FileEntry{{
			Bucket: t.Bucket, Key: key, Size: info.Size,
			RowCount: footer.Rows, ColumnStats: stats,
		}}},
	})
	if err != nil {
		return err
	}
	ws.rows = nil
	return nil
}

func sanitize(s string) string {
	out := []byte(s)
	for i, c := range out {
		if c == '/' {
			out[i] = '-'
		}
	}
	return string(out)
}

// FlushRows makes a buffered stream's rows visible up to offset
// (exclusive). Flushing at or behind the current flush point is a
// no-op; flushing beyond the appended rows is an error. Returns the
// new flush offset.
func (s *Server) FlushRows(streamID string, offset int64) (int64, error) {
	s.wmu.Lock()
	defer s.wmu.Unlock()
	ws, ok := s.writes[streamID]
	if !ok {
		return 0, fmt.Errorf("%w: %s", ErrNoStream, streamID)
	}
	if ws.mode != BufferedMode {
		return 0, fmt.Errorf("storageapi: FlushRows requires a BUFFERED stream, %s is %v", streamID, ws.mode)
	}
	if offset > ws.offset {
		return ws.flushed, fmt.Errorf("%w: flush offset %d beyond appended %d", ErrBadOffset, offset, ws.offset)
	}
	if offset <= ws.flushed {
		return ws.flushed, nil
	}
	// Materialize rows [flushed, offset) as one visible file. The
	// buffered batch holds rows starting at ws.flushed.
	n := int(offset - ws.flushed)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	cols := make([]*vector.Column, len(ws.rows.Cols))
	for i, c := range ws.rows.Cols {
		cols[i] = vector.Gather(c, idx)
	}
	visible, err := vector.NewBatch(ws.rows.Schema, cols)
	if err != nil {
		return ws.flushed, err
	}
	rest := ws.rows.N - n
	restIdx := make([]int, rest)
	for i := range restIdx {
		restIdx[i] = n + i
	}
	restCols := make([]*vector.Column, len(ws.rows.Cols))
	for i, c := range ws.rows.Cols {
		restCols[i] = vector.Gather(c, restIdx)
	}
	remaining, err := vector.NewBatch(ws.rows.Schema, restCols)
	if err != nil {
		return ws.flushed, err
	}
	saved := ws.rows
	ws.rows = visible
	if err := s.flushStreamLocked(ws); err != nil {
		ws.rows = saved
		return ws.flushed, err
	}
	ws.rows = remaining
	ws.flushed = offset
	return ws.flushed, nil
}

// FinalizeStream seals a stream against further appends and returns
// the final row offset.
func (s *Server) FinalizeStream(streamID string) (int64, error) {
	s.wmu.Lock()
	defer s.wmu.Unlock()
	ws, ok := s.writes[streamID]
	if !ok {
		return 0, fmt.Errorf("%w: %s", ErrNoStream, streamID)
	}
	ws.finalized = true
	return ws.offset, nil
}

// BatchCommitStreams atomically commits a set of finalized pending
// streams into their table(s) — the cross-stream transaction of
// §2.2.2. Streams for different tables commit in one multi-table Big
// Metadata transaction.
func (s *Server) BatchCommitStreams(streamIDs []string) error {
	s.wmu.Lock()
	defer s.wmu.Unlock()
	deltas := map[string]bigmeta.TableDelta{}
	principal := ""
	for _, id := range streamIDs {
		ws, ok := s.writes[id]
		if !ok {
			return fmt.Errorf("%w: %s", ErrNoStream, id)
		}
		if !ws.finalized {
			return fmt.Errorf("storageapi: stream %s must be finalized before commit", id)
		}
		if ws.committed {
			return fmt.Errorf("storageapi: stream %s already committed", id)
		}
		if ws.mode != PendingMode {
			return fmt.Errorf("storageapi: stream %s is %v, not PENDING", id, ws.mode)
		}
		principal = ws.principal
		if ws.rows == nil || ws.rows.N == 0 {
			continue
		}
		t, err := s.Catalog.Table(ws.table)
		if err != nil {
			return err
		}
		store, err := s.store(t.Cloud)
		if err != nil {
			return err
		}
		cred, err := s.credFor(t)
		if err != nil {
			return err
		}
		file, err := colfmt.WriteFile(ws.rows, colfmt.WriterOptions{})
		if err != nil {
			return err
		}
		key := fmt.Sprintf("%sdata/%s.blk", t.Prefix, sanitize(ws.id))
		var info objstore.ObjectInfo
		if err := s.Res.Do(s.Clock, nil, "PUT "+t.Bucket+"/"+key, func() error {
			var pe error
			info, pe = store.Put(cred, t.Bucket, key, file, "application/x-blk")
			return pe
		}); err != nil {
			return err
		}
		footer, err := colfmt.ReadFooter(file)
		if err != nil {
			return err
		}
		stats := make(map[string]colfmt.ColumnStats)
		for _, f := range footer.Fields {
			if st, ok := footer.ColumnStatsFor(f.Name); ok {
				stats[f.Name] = st
			}
		}
		d := deltas[ws.table]
		d.Added = append(d.Added, bigmeta.FileEntry{
			Bucket: t.Bucket, Key: key, Size: info.Size,
			RowCount: footer.Rows, ColumnStats: stats,
		})
		deltas[ws.table] = d
	}
	if len(deltas) > 0 {
		if _, err := s.Log.Commit(principal, deltas); err != nil {
			return err
		}
	}
	for _, id := range streamIDs {
		s.writes[id].committed = true
		s.writes[id].rows = nil
	}
	return nil
}
