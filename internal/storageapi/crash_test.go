package storageapi

// Crash-consistency regression tests for the Write API protocols: the
// S1 batch-commit orphan fix, the S2 flush-retry orphan fix, the S3
// idempotent/authorized FinalizeStream, and exactly-once stream resume
// after a simulated process crash. The full every-crash-point sweep
// lives in internal/oracle.

import (
	"errors"
	"fmt"
	"testing"

	"biglake/internal/crashpoint"
	"biglake/internal/objstore"
	"biglake/internal/security"
	"biglake/internal/wal"
)

// journaled attaches a durable commit journal and crash injector to an
// env, as the crash-consistent assembly would.
func journaled(t *testing.T, ev *env) *wal.Journal {
	t.Helper()
	j, err := wal.Open(ev.store, ev.cred, "lake", "")
	if err != nil {
		t.Fatal(err)
	}
	ev.log.AttachJournal(j)
	ev.srv.Journal = j
	cp := crashpoint.New()
	ev.srv.Crash = cp
	ev.log.Crash = cp
	return j
}

func dataObjects(ev *env) int {
	return ev.store.ObjectCount("lake", "blmt/events/data/")
}

// S2: a flush whose commit seal fails after the data PUT must not
// strand that file — the retry reuses the same deterministic key, and
// the sealed log ends up referencing exactly one object.
func TestFlushRetryDoesNotOrphan(t *testing.T) {
	ev := newEnv(t)
	ev.createManaged(t)
	journaled(t, ev)
	id, err := ev.srv.CreateWriteStream(string(aliceP), "ds.events", BufferedMode)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ev.srv.AppendRows(id, -1, rowsBatch(0, 10)); err != nil {
		t.Fatal(err)
	}

	// Intent and data PUT land; the seal PUT dies.
	ev.store.FailNextMatching("-commit.rec", 1)
	if _, err := ev.srv.FlushRows(id, 10); err == nil {
		t.Fatal("flush succeeded despite seal failure")
	}
	if n := dataObjects(ev); n != 1 {
		t.Fatalf("%d data objects after failed flush, want 1 (the not-yet-referenced attempt)", n)
	}

	// The retry overwrites the same key instead of minting a second one.
	if off, err := ev.srv.FlushRows(id, 10); err != nil || off != 10 {
		t.Fatalf("retry: off=%d err=%v", off, err)
	}
	if n := dataObjects(ev); n != 1 {
		t.Fatalf("%d data objects after retry, want 1", n)
	}
	files, _, _ := ev.log.Snapshot("ds.events", -1)
	if len(files) != 1 || files[0].RowCount != 10 {
		t.Fatalf("files = %+v", files)
	}
	// Nothing unreachable: GC finds no orphans.
	rep, err := wal.GCOrphans(ev.store, ev.cred, "lake", []string{"blmt/events/data/"}, ev.log)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Deleted) != 0 {
		t.Fatalf("GC deleted %v, want none", rep.Deleted)
	}
}

// The committed-mode variant of S2: a failed flush rolls the append
// back entirely, so the client's retry at the same offset succeeds
// instead of hitting ErrOffsetExists over rows that never committed.
func TestCommittedAppendRollsBackOnFlushFailure(t *testing.T) {
	ev := newEnv(t)
	ev.createManaged(t)
	journaled(t, ev)
	id, _ := ev.srv.CreateWriteStream(string(aliceP), "ds.events", CommittedMode)
	if _, err := ev.srv.AppendRows(id, 0, rowsBatch(0, 5)); err != nil {
		t.Fatal(err)
	}

	ev.store.FailNextMatching("-commit.rec", 1)
	if _, err := ev.srv.AppendRows(id, 5, rowsBatch(5, 5)); err == nil {
		t.Fatal("append succeeded despite seal failure")
	}
	// Retry the exact same append: the offset must still be open.
	if off, err := ev.srv.AppendRows(id, 5, rowsBatch(5, 5)); err != nil || off != 10 {
		t.Fatalf("retry: off=%d err=%v", off, err)
	}
	files, _, _ := ev.log.Snapshot("ds.events", -1)
	var rows int64
	for _, f := range files {
		rows += f.RowCount
	}
	if rows != 10 {
		t.Fatalf("committed rows = %d, want 10 (no loss, no duplicates)", rows)
	}
	if n := dataObjects(ev); n != len(files) {
		t.Fatalf("%d objects vs %d referenced files", n, len(files))
	}
}

// S1: a bad stream ID anywhere in the batch fails validation before
// any PUT happens.
func TestBatchCommitValidatesBeforeAnyPut(t *testing.T) {
	ev := newEnv(t)
	ev.createManaged(t)
	id, _ := ev.srv.CreateWriteStream(string(aliceP), "ds.events", PendingMode)
	ev.srv.AppendRows(id, -1, rowsBatch(0, 8))
	ev.srv.FinalizeStream(id)

	err := ev.srv.BatchCommitStreams([]string{id, "writeStreams/999"})
	if !errors.Is(err, ErrNoStream) {
		t.Fatalf("err = %v", err)
	}
	if n := dataObjects(ev); n != 0 {
		t.Fatalf("%d data objects PUT before validation failed, want 0", n)
	}
	// The good stream is untouched and commits cleanly afterwards.
	if err := ev.srv.BatchCommitStreams([]string{id}); err != nil {
		t.Fatal(err)
	}
	files, _, _ := ev.log.Snapshot("ds.events", -1)
	if len(files) != 1 || files[0].RowCount != 8 {
		t.Fatalf("files = %+v", files)
	}
}

// S1: a PUT failure midway through the batch aborts the journal intent
// so orphan GC reclaims the earlier streams' files, and the idempotent
// retry commits everything exactly once.
func TestBatchCommitPutFailureIsReclaimedAndRetryable(t *testing.T) {
	ev := newEnv(t)
	ev.createManaged(t)
	journaled(t, ev)
	var ids []string
	for i := 0; i < 2; i++ {
		id, _ := ev.srv.CreateWriteStream(string(aliceP), "ds.events", PendingMode)
		ev.srv.AppendRows(id, -1, rowsBatch(i*10, 10))
		ev.srv.FinalizeStream(id)
		ids = append(ids, id)
	}

	// Kill every attempt at the second stream's PUT (the retry policy
	// makes up to MaxAttempts tries).
	key2 := fmt.Sprintf("data/%s.blk", sanitize(ids[1]))
	ev.store.FailNextMatching(key2, 10)
	if err := ev.srv.BatchCommitStreamsTx("batch-tx", ids); err == nil {
		t.Fatal("batch commit succeeded despite PUT failure")
	}
	if v := ev.log.Version(); v != 0 {
		t.Fatalf("log advanced to %d on a failed batch", v)
	}
	// Stream 1's file is stranded but declared: GC reclaims it.
	rep, err := wal.GCOrphans(ev.store, ev.cred, "lake", []string{"blmt/events/data/"}, ev.log)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Deleted) != 1 {
		t.Fatalf("GC deleted %v, want exactly the stranded file", rep.Deleted)
	}

	// Same txn ID retries to completion, exactly once.
	ev.store.FailNextMatching("", 0)
	if err := ev.srv.BatchCommitStreamsTx("batch-tx", ids); err != nil {
		t.Fatal(err)
	}
	if err := ev.srv.BatchCommitStreamsTx("batch-tx", ids); err != nil {
		t.Fatalf("idempotent replay errored: %v", err)
	}
	files, _, _ := ev.log.Snapshot("ds.events", -1)
	var rows int64
	for _, f := range files {
		rows += f.RowCount
	}
	if len(files) != 2 || rows != 20 || ev.log.Version() != 1 {
		t.Fatalf("files=%d rows=%d version=%d", len(files), rows, ev.log.Version())
	}
}

// S3: FinalizeStream is idempotent and re-verifies the principal.
func TestFinalizeIdempotentAndAuthorityChecked(t *testing.T) {
	ev := newEnv(t)
	ev.createManaged(t)
	id, _ := ev.srv.CreateWriteStream(string(aliceP), "ds.events", PendingMode)
	ev.srv.AppendRows(id, -1, rowsBatch(0, 7))
	off1, err := ev.srv.FinalizeStream(id)
	if err != nil || off1 != 7 {
		t.Fatalf("off=%d err=%v", off1, err)
	}
	off2, err := ev.srv.FinalizeStream(id)
	if err != nil || off2 != 7 {
		t.Fatalf("re-finalize: off=%d err=%v", off2, err)
	}

	// Demote the stream's principal to viewer: the RPC must now refuse.
	id2, _ := ev.srv.CreateWriteStream(string(aliceP), "ds.events", PendingMode)
	if err := ev.auth.GrantTable(adminP, "ds.events", aliceP, security.RoleViewer); err != nil {
		t.Fatal(err)
	}
	if _, err := ev.srv.FinalizeStream(id2); !errors.Is(err, security.ErrDenied) {
		t.Fatalf("finalize with revoked write access: err = %v", err)
	}
}

// Exactly-once resume: a committed-mode append that crashes after the
// seal is already durable; the restored stream answers the client's
// retry with ErrOffsetExists (success for an exactly-once client) and
// no row is duplicated or lost.
func TestStreamResumeAfterCrash(t *testing.T) {
	ev := newEnv(t)
	ev.createManaged(t)
	j := journaled(t, ev)
	id, _ := ev.srv.CreateWriteStream(string(aliceP), "ds.events", CommittedMode)
	if _, err := ev.srv.AppendRows(id, 0, rowsBatch(0, 5)); err != nil {
		t.Fatal(err)
	}

	ev.srv.Crash.Reset() // the first append's flush already counted hits
	ev.srv.Crash.Arm("flush.after_commit", 0)
	sig, err := crashpoint.Run(func() error {
		_, e := ev.srv.AppendRows(id, 5, rowsBatch(5, 5))
		return e
	})
	if err != nil || sig == nil || sig.Label != "flush.after_commit" {
		t.Fatalf("sig=%v err=%v", sig, err)
	}

	// "Restart": recover a fresh log and server from the journal alone.
	rec, err := wal.Recover(j, ev.clock, nil)
	if err != nil {
		t.Fatal(err)
	}
	ev.log = rec.Log
	srv2 := NewServer(ev.cat, ev.auth, ev.meta, rec.Log, ev.clock, map[string]*objstore.Store{"gcp": ev.store})
	srv2.ManagedCred = ev.cred
	srv2.Journal = j
	srv2.RestoreStreams(rec.Streams)

	// The crashed append sealed before dying: the retry reports
	// ErrOffsetExists with the stream already past it.
	off, err := srv2.AppendRows(id, 5, rowsBatch(5, 5))
	if !errors.Is(err, ErrOffsetExists) || off != 10 {
		t.Fatalf("resume append: off=%d err=%v", off, err)
	}
	// The next fresh append lands normally.
	if off, err := srv2.AppendRows(id, 10, rowsBatch(10, 5)); err != nil || off != 15 {
		t.Fatalf("next append: off=%d err=%v", off, err)
	}
	files, _, _ := rec.Log.Snapshot("ds.events", -1)
	var rows int64
	for _, f := range files {
		rows += f.RowCount
	}
	if rows != 15 {
		t.Fatalf("rows = %d, want 15", rows)
	}
	// Stream IDs minted after recovery do not collide with restored ones.
	id2, err := srv2.CreateWriteStream(string(aliceP), "ds.events", CommittedMode)
	if err != nil {
		t.Fatal(err)
	}
	if id2 == id {
		t.Fatalf("recovered server re-minted stream ID %s", id2)
	}
}
