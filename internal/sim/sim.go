// Package sim provides the simulation substrate shared by every
// BigLake component in this repository: a virtual clock, calibrated
// latency/cost models for cloud services, seeded randomness, and
// metering of simulated time, bytes moved, and request counts.
//
// The paper's latency-bound results (metadata caching, BLMT commit
// throughput, object-table listing, cross-cloud queries) are driven by
// cloud-API behaviour — slow paginated LISTs, per-request overheads,
// bounded mutation rates, and cross-cloud round trips — rather than by
// CPU work. The virtual clock lets benchmarks reproduce those shapes
// deterministically on a laptop: components charge the clock with the
// simulated latency of each remote operation while CPU-bound work
// (scans, vectorized evaluation) runs for real.
package sim

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Clock is a virtual monotonic clock. Components charge it with the
// simulated duration of remote operations. A Clock also supports
// parallel "tracks": concurrent workers advance private frontiers and
// the clock's global time is the maximum frontier, modelling wall
// clock under parallelism without real sleeping.
type Clock struct {
	mu  sync.Mutex
	now time.Duration
}

// NewClock returns a clock at simulated time zero.
func NewClock() *Clock { return &Clock{} }

// Now returns the current simulated time since the clock's epoch.
func (c *Clock) Now() time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// Advance moves simulated time forward by d (sequential work on the
// critical path). It returns the new simulated time.
func (c *Clock) Advance(d time.Duration) time.Duration {
	if d < 0 {
		d = 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now += d
	return c.now
}

// AdvanceTo moves the clock forward to t if t is later than the
// current simulated time; used to merge a parallel track's frontier
// back into the global clock.
func (c *Clock) AdvanceTo(t time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if t > c.now {
		c.now = t
	}
}

// Charger is anything simulated latency can be charged to: the global
// Clock (critical path) or a Track (one parallel worker).
type Charger interface {
	Charge(d time.Duration)
}

// Charge advances the clock; it makes *Clock a Charger.
func (c *Clock) Charge(d time.Duration) { c.Advance(d) }

// Track is a private time frontier for one concurrent worker. Charges
// to the track accumulate locally; Join folds the frontier into the
// parent clock, so N parallel workers each doing d of work advance the
// global clock by d, not N*d. Tracks are safe for concurrent use:
// goroutines sharing a track model one worker executing their
// operations back to back.
type Track struct {
	clock *Clock
	now   atomic.Int64 // time.Duration in nanoseconds
}

// StartTrack opens a parallel track at the current simulated time.
func (c *Clock) StartTrack() *Track {
	t := &Track{clock: c}
	t.now.Store(int64(c.Now()))
	return t
}

// Advance charges d of simulated time to this track only.
func (t *Track) Advance(d time.Duration) {
	if d > 0 {
		t.now.Add(int64(d))
	}
}

// Charge advances the track; it makes *Track a Charger.
func (t *Track) Charge(d time.Duration) { t.Advance(d) }

// Now returns the track's local frontier.
func (t *Track) Now() time.Duration { return time.Duration(t.now.Load()) }

// Join merges the track's frontier into the parent clock.
func (t *Track) Join() { t.clock.AdvanceTo(t.Now()) }

// Meter accumulates named counters (requests, bytes, simulated
// nanoseconds) for one component or one experiment run. The zero value
// is ready to use.
type Meter struct {
	mu     sync.Mutex
	counts map[string]int64
}

// Add increments counter name by v.
func (m *Meter) Add(name string, v int64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.counts == nil {
		m.counts = make(map[string]int64)
	}
	m.counts[name] += v
}

// Get returns the current value of counter name.
func (m *Meter) Get(name string) int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.counts[name]
}

// Reset zeroes all counters.
func (m *Meter) Reset() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.counts = nil
}

// Snapshot returns a copy of all counters.
func (m *Meter) Snapshot() map[string]int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make(map[string]int64, len(m.counts))
	for k, v := range m.counts {
		out[k] = v
	}
	return out
}

// String renders the counters in sorted order, for logs and harness
// output.
func (m *Meter) String() string {
	snap := m.Snapshot()
	keys := make([]string, 0, len(snap))
	for k := range snap {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	s := ""
	for i, k := range keys {
		if i > 0 {
			s += " "
		}
		s += fmt.Sprintf("%s=%d", k, snap[k])
	}
	return s
}

// RNG is a small deterministic PRNG (xorshift64*) used everywhere a
// component needs reproducible pseudo-randomness without pulling in
// math/rand state coupling between packages.
type RNG struct {
	state uint64
}

// NewRNG returns a deterministic generator for the given seed.
func NewRNG(seed uint64) *RNG {
	if seed == 0 {
		seed = 0x9E3779B97F4A7C15
	}
	return &RNG{state: seed}
}

// Uint64 returns the next pseudo-random value.
func (r *RNG) Uint64() uint64 {
	x := r.state
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	r.state = x
	return x * 0x2545F4914F6CDD1D
}

// Intn returns a value in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Int63 returns a non-negative pseudo-random int64.
func (r *RNG) Int63() int64 { return int64(r.Uint64() >> 1) }

// Float64 returns a value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / float64(1<<53)
}

// Norm returns an approximately normal deviate with mean 0 and
// standard deviation 1 (sum of uniforms; adequate for latency jitter).
func (r *RNG) Norm() float64 {
	s := 0.0
	for i := 0; i < 12; i++ {
		s += r.Float64()
	}
	return s - 6
}
