package sim

import "time"

// CloudProfile calibrates the simulated latency and cost behaviour of
// one cloud's object store and network, loosely matching publicly
// observable behaviour of GCS / S3 / Azure Blob and cross-cloud WAN
// paths. All the paper-shaped results flow from these parameters; they
// are surfaced here in one place so experiments can cite them.
type CloudProfile struct {
	Name string

	// Object store request latencies.
	ListPageLatency  time.Duration // one LIST page (up to ListPageSize objects)
	ListPageSize     int           // objects returned per LIST page
	GetFirstByte     time.Duration // GET request overhead before streaming
	PutOverhead      time.Duration // PUT request overhead
	HeadLatency      time.Duration // metadata-only HEAD / footer peek request
	DeleteLatency    time.Duration // DELETE request
	ReadPerMB        time.Duration // streaming read time per MiB
	WritePerMB       time.Duration // streaming write time per MiB
	MutationInterval time.Duration // minimum spacing between conditional
	// overwrites of the same object; models "object stores can
	// update/replace an object only a handful of times per second"
	// (§3.5). 200ms ≈ 5 mutations/s.

	// Network.
	IntraRegionRTT time.Duration // engine worker <-> same-region store
	CrossCloudRTT  time.Duration // VPN round trip to another cloud (§5.2)
	EgressPerMB    time.Duration // cross-cloud streaming per MiB
}

// Calibrated profiles. The absolute numbers are order-of-magnitude
// public-cloud figures; only ratios matter for reproducing the paper's
// shapes.
var (
	// GCP models Google Cloud Storage as seen from a same-region
	// Dremel worker.
	GCP = CloudProfile{
		Name:             "gcp",
		ListPageLatency:  60 * time.Millisecond,
		ListPageSize:     1000,
		GetFirstByte:     30 * time.Millisecond,
		PutOverhead:      40 * time.Millisecond,
		HeadLatency:      25 * time.Millisecond,
		DeleteLatency:    30 * time.Millisecond,
		ReadPerMB:        4 * time.Millisecond,
		WritePerMB:       6 * time.Millisecond,
		MutationInterval: 200 * time.Millisecond,
		IntraRegionRTT:   1 * time.Millisecond,
		CrossCloudRTT:    70 * time.Millisecond,
		EgressPerMB:      9 * time.Millisecond,
	}

	// AWS models S3 from an Omni data plane in the same AWS region.
	AWS = CloudProfile{
		Name:             "aws",
		ListPageLatency:  65 * time.Millisecond,
		ListPageSize:     1000,
		GetFirstByte:     32 * time.Millisecond,
		PutOverhead:      42 * time.Millisecond,
		HeadLatency:      26 * time.Millisecond,
		DeleteLatency:    32 * time.Millisecond,
		ReadPerMB:        4 * time.Millisecond,
		WritePerMB:       6 * time.Millisecond,
		MutationInterval: 200 * time.Millisecond,
		IntraRegionRTT:   1 * time.Millisecond,
		CrossCloudRTT:    70 * time.Millisecond,
		EgressPerMB:      9 * time.Millisecond,
	}

	// Azure models Azure Blob Storage / ADLS.
	Azure = CloudProfile{
		Name:             "azure",
		ListPageLatency:  70 * time.Millisecond,
		ListPageSize:     1000,
		GetFirstByte:     34 * time.Millisecond,
		PutOverhead:      45 * time.Millisecond,
		HeadLatency:      28 * time.Millisecond,
		DeleteLatency:    33 * time.Millisecond,
		ReadPerMB:        5 * time.Millisecond,
		WritePerMB:       7 * time.Millisecond,
		MutationInterval: 200 * time.Millisecond,
		IntraRegionRTT:   1 * time.Millisecond,
		CrossCloudRTT:    75 * time.Millisecond,
		EgressPerMB:      10 * time.Millisecond,
	}
)

// ProfileFor returns the calibrated profile for a cloud name,
// defaulting to GCP for unknown names.
func ProfileFor(name string) CloudProfile {
	switch name {
	case "aws":
		return AWS
	case "azure":
		return Azure
	default:
		p := GCP
		if name != "" {
			p.Name = name
		}
		return p
	}
}

// MB is one mebibyte, the unit the cost model charges streaming time
// in.
const MB = 1 << 20

// StreamTime returns the simulated time to move n bytes at perMB.
func StreamTime(n int64, perMB time.Duration) time.Duration {
	if n <= 0 {
		return 0
	}
	return time.Duration(float64(perMB) * float64(n) / float64(MB))
}
