package sim

import (
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestClockAdvance(t *testing.T) {
	c := NewClock()
	if c.Now() != 0 {
		t.Fatalf("new clock at %v, want 0", c.Now())
	}
	c.Advance(5 * time.Millisecond)
	c.Advance(7 * time.Millisecond)
	if got := c.Now(); got != 12*time.Millisecond {
		t.Fatalf("Now = %v, want 12ms", got)
	}
}

func TestClockAdvanceNegativeIgnored(t *testing.T) {
	c := NewClock()
	c.Advance(10 * time.Millisecond)
	c.Advance(-5 * time.Millisecond)
	if got := c.Now(); got != 10*time.Millisecond {
		t.Fatalf("Now = %v, want 10ms", got)
	}
}

func TestClockAdvanceTo(t *testing.T) {
	c := NewClock()
	c.Advance(10 * time.Millisecond)
	c.AdvanceTo(5 * time.Millisecond) // earlier: no-op
	if got := c.Now(); got != 10*time.Millisecond {
		t.Fatalf("Now = %v after stale AdvanceTo, want 10ms", got)
	}
	c.AdvanceTo(30 * time.Millisecond)
	if got := c.Now(); got != 30*time.Millisecond {
		t.Fatalf("Now = %v, want 30ms", got)
	}
}

func TestParallelTracksTakeMaxNotSum(t *testing.T) {
	c := NewClock()
	// Start all tracks at the same simulated instant, then advance and
	// join them concurrently — the pattern parallel scan workers use.
	tracks := make([]*Track, 8)
	for i := range tracks {
		tracks[i] = c.StartTrack()
	}
	var wg sync.WaitGroup
	for _, tr := range tracks {
		wg.Add(1)
		go func(tr *Track) {
			defer wg.Done()
			tr.Advance(100 * time.Millisecond)
			tr.Join()
		}(tr)
	}
	wg.Wait()
	if got := c.Now(); got != 100*time.Millisecond {
		t.Fatalf("parallel tracks advanced clock to %v, want 100ms (max, not sum)", got)
	}
}

func TestTrackSequentialCharges(t *testing.T) {
	c := NewClock()
	tr := c.StartTrack()
	tr.Advance(3 * time.Millisecond)
	tr.Advance(4 * time.Millisecond)
	if tr.Now() != 7*time.Millisecond {
		t.Fatalf("track frontier %v, want 7ms", tr.Now())
	}
	tr.Join()
	if c.Now() != 7*time.Millisecond {
		t.Fatalf("clock %v after join, want 7ms", c.Now())
	}
}

func TestTrackStartsAtClockTime(t *testing.T) {
	c := NewClock()
	c.Advance(time.Second)
	tr := c.StartTrack()
	tr.Advance(time.Millisecond)
	tr.Join()
	if got := c.Now(); got != time.Second+time.Millisecond {
		t.Fatalf("clock %v, want 1.001s", got)
	}
}

func TestMeter(t *testing.T) {
	var m Meter
	m.Add("reads", 3)
	m.Add("reads", 4)
	m.Add("bytes", 100)
	if m.Get("reads") != 7 || m.Get("bytes") != 100 {
		t.Fatalf("meter = %v", m.Snapshot())
	}
	if m.Get("missing") != 0 {
		t.Fatal("missing counter should read 0")
	}
	s := m.String()
	if s != "bytes=100 reads=7" {
		t.Fatalf("String() = %q", s)
	}
	m.Reset()
	if m.Get("reads") != 0 {
		t.Fatal("reset did not clear counters")
	}
}

func TestMeterConcurrent(t *testing.T) {
	var m Meter
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				m.Add("n", 1)
			}
		}()
	}
	wg.Wait()
	if got := m.Get("n"); got != 16000 {
		t.Fatalf("concurrent adds = %d, want 16000", got)
	}
}

func TestRNGDeterministic(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed diverged")
		}
	}
	c := NewRNG(43)
	same := true
	a42 := NewRNG(42)
	for i := 0; i < 10; i++ {
		if a42.Uint64() != c.Uint64() {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical streams")
	}
}

func TestRNGZeroSeed(t *testing.T) {
	r := NewRNG(0)
	if r.Uint64() == 0 && r.Uint64() == 0 {
		t.Fatal("zero seed must still produce a usable stream")
	}
}

func TestRNGIntnRange(t *testing.T) {
	r := NewRNG(7)
	if err := quick.Check(func(nRaw uint16) bool {
		n := int(nRaw%1000) + 1
		v := r.Intn(n)
		return v >= 0 && v < n
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRNGFloat64Range(t *testing.T) {
	r := NewRNG(9)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
}

func TestRNGIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) should panic")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestStreamTime(t *testing.T) {
	if got := StreamTime(0, time.Millisecond); got != 0 {
		t.Fatalf("StreamTime(0) = %v", got)
	}
	if got := StreamTime(-5, time.Millisecond); got != 0 {
		t.Fatalf("StreamTime(neg) = %v", got)
	}
	if got := StreamTime(2*MB, 4*time.Millisecond); got != 8*time.Millisecond {
		t.Fatalf("StreamTime(2MB) = %v, want 8ms", got)
	}
	if got := StreamTime(MB/2, 4*time.Millisecond); got != 2*time.Millisecond {
		t.Fatalf("StreamTime(0.5MB) = %v, want 2ms", got)
	}
}

func TestProfileFor(t *testing.T) {
	if ProfileFor("aws").Name != "aws" {
		t.Fatal("aws profile")
	}
	if ProfileFor("azure").Name != "azure" {
		t.Fatal("azure profile")
	}
	if ProfileFor("gcp").Name != "gcp" {
		t.Fatal("gcp profile")
	}
	p := ProfileFor("on-prem")
	if p.Name != "on-prem" || p.ListPageLatency != GCP.ListPageLatency {
		t.Fatalf("unknown cloud should inherit GCP timings, got %+v", p)
	}
}

func TestProfilesMutationRateMatchesPaper(t *testing.T) {
	// §3.5: object stores allow only a handful of mutations per second
	// on a single object. All profiles must model that at <= 10/s.
	for _, p := range []CloudProfile{GCP, AWS, Azure} {
		perSec := time.Second / p.MutationInterval
		if perSec > 10 {
			t.Errorf("%s allows %d mutations/s; paper requires 'a handful'", p.Name, perSec)
		}
	}
}

func TestRNGNormRoughMoments(t *testing.T) {
	r := NewRNG(1234)
	n := 20000
	var sum, sq float64
	for i := 0; i < n; i++ {
		v := r.Norm()
		sum += v
		sq += v * v
	}
	mean := sum / float64(n)
	variance := sq/float64(n) - mean*mean
	if mean < -0.05 || mean > 0.05 {
		t.Fatalf("Norm mean %v, want ~0", mean)
	}
	if variance < 0.9 || variance > 1.1 {
		t.Fatalf("Norm variance %v, want ~1", variance)
	}
}
