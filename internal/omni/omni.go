// Package omni implements BigQuery Omni (§5): running the BigQuery
// data plane on non-GCP clouds while keeping the control plane on GCP.
//
// A Deployment holds the control plane — the global catalog, the IAM
// authority, and the job server — plus one Region per deployed
// location. Each Region is a full data plane: its cloud's object
// store, a Big Metadata instance, a Dremel engine, a Storage API
// server and a BLMT manager, mirroring the "minimal borg-like
// environment" of §5.4. Regions are connected to the control plane by
// a simulated zero-trust VPN (§5.2) that charges cross-cloud RTTs,
// meters egress, enforces a per-region security realm (§5.3.3), and
// validates per-query session tokens at an untrusted proxy (§5.3.2).
//
// Cross-cloud queries (§5.6.1) split multi-region SQL into per-region
// subqueries with filter pushdown, stream the (small) subquery results
// back to the primary region as temporary tables, and rewrite the
// original query to join locally. Cross-cloud materialized views
// (§5.6.2) replicate managed tables incrementally, copying only
// changed files and recreating only the partitions touched by
// upserts/deletes.
package omni

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"biglake/internal/bigmeta"
	"biglake/internal/blmt"
	"biglake/internal/catalog"
	"biglake/internal/engine"
	"biglake/internal/objstore"
	"biglake/internal/obs"
	"biglake/internal/resilience"
	"biglake/internal/security"
	"biglake/internal/sim"
	"biglake/internal/storageapi"
)

// Errors returned by Omni.
var (
	ErrNoRegion       = errors.New("omni: no such region")
	ErrRealmViolation = errors.New("omni: principal not in region security realm")
	ErrVPNDenied      = errors.New("omni: vpn policy denied the connection")
)

// Region is one deployed location's data plane.
type Region struct {
	Name  string // e.g. "aws-us-east-1"
	Cloud string // "gcp", "aws", "azure"

	Store      *objstore.Store
	Meta       *bigmeta.Cache
	Log        *bigmeta.Log
	Engine     *engine.Engine
	StorageAPI *storageapi.Server
	Manager    *blmt.Manager

	// realm is the region's private principal namespace (§5.3.3):
	// service identities allowed to operate inside this region. Every
	// Omni region gets a unique set, never shared with other regions.
	realm map[security.Principal]bool
}

// AllowPrincipal adds a service identity to the region's realm.
func (r *Region) AllowPrincipal(p security.Principal) {
	r.realm[p] = true
}

// InRealm reports whether a principal may operate in this region.
func (r *Region) InRealm(p security.Principal) bool { return r.realm[p] }

// VPN is the QUIC-based zero-trust channel between the control plane
// and data planes (§5.2). Calls charge cross-cloud round trips,
// validate the allow-list, and meter the bytes moved.
type VPN struct {
	clock *sim.Clock
	meter *sim.Meter
	// sink fans the VPN counters into the legacy meter plus (via
	// Deployment.UseObs) a registry under "omni."-prefixed names.
	sink obs.Sink

	mu      sync.Mutex
	allowed map[string]bool // region names admitted to the VPN
}

// NewVPN builds the channel.
func NewVPN(clock *sim.Clock, meter *sim.Meter) *VPN {
	if meter == nil {
		meter = &sim.Meter{}
	}
	return &VPN{clock: clock, meter: meter, sink: meter, allowed: make(map[string]bool)}
}

// Admit allow-lists a region endpoint.
func (v *VPN) Admit(region string) {
	v.mu.Lock()
	defer v.mu.Unlock()
	v.allowed[region] = true
}

// Call models one control-plane <-> data-plane RPC carrying
// payloadBytes, returning an error if the endpoint is not
// allow-listed. Latency lands on ch.
func (v *VPN) Call(ch sim.Charger, fromRegion, toRegion string, payloadBytes int64, profile sim.CloudProfile) error {
	v.mu.Lock()
	ok := v.allowed[toRegion]
	v.mu.Unlock()
	if !ok {
		return fmt.Errorf("%w: %s", ErrVPNDenied, toRegion)
	}
	if fromRegion == toRegion {
		ch.Charge(profile.IntraRegionRTT)
		return nil
	}
	ch.Charge(profile.CrossCloudRTT + sim.StreamTime(payloadBytes, profile.EgressPerMB))
	v.sink.Add("vpn_calls", 1)
	v.sink.Add("vpn_bytes", payloadBytes)
	if fromRegion != toRegion {
		v.sink.Add("egress_bytes", payloadBytes)
	}
	return nil
}

// Meter exposes the VPN's counters.
func (v *VPN) Meter() *sim.Meter { return v.meter }

// Deployment is the whole multi-cloud installation.
type Deployment struct {
	Clock   *sim.Clock
	Catalog *catalog.Catalog
	Auth    *security.Authority
	VPN     *VPN
	Meter   *sim.Meter
	// Obs is the deployment-wide metrics registry: control-plane
	// counters land under "omni.*" and every region's data plane
	// (object store, Big Metadata, engine, Storage API) is teed into
	// it, so one snapshot covers the whole installation.
	Obs *obs.Registry
	// Tracer, when set, records one span tree per submitted query with
	// per-region subquery spans and egress-byte attributes.
	Tracer *obs.Tracer
	// msink fans Deployment counters into Meter and Obs.
	msink obs.Sink
	// Res is the retry policy for cross-cloud transfer operations
	// (CCMV file copies/deletes). Nil behaves like resilience.NoRetry.
	Res *resilience.Policy

	// Primary is the control plane's home region (a GCP region).
	Primary string

	mu      sync.Mutex
	regions map[string]*Region
	tempSeq int
}

// NewDeployment creates a deployment with a control plane and no
// regions yet.
func NewDeployment(clock *sim.Clock, admins ...security.Principal) *Deployment {
	admins = append(admins, ControlPrincipal)
	meter := &sim.Meter{}
	reg := obs.NewRegistry()
	res := resilience.DefaultPolicy()
	res.Meter = obs.Tee(meter, reg.Prefixed("resilience."))
	d := &Deployment{
		Clock:   clock,
		Catalog: catalog.New(),
		Auth:    security.NewAuthority("omni-deployment-secret", admins...),
		VPN:     NewVPN(clock, nil),
		Meter:   meter,
		Obs:     reg,
		msink:   obs.Tee(meter, reg.Prefixed("omni.")),
		Res:     res,
		regions: make(map[string]*Region),
	}
	d.VPN.sink = obs.Tee(d.VPN.meter, reg.Prefixed("omni."))
	return d
}

// AddRegion deploys a data plane in a region. The first GCP region
// becomes the primary.
func (d *Deployment) AddRegion(name, cloud string) (*Region, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if _, ok := d.regions[name]; ok {
		return nil, fmt.Errorf("omni: region %q already deployed", name)
	}
	store := objstore.New(sim.ProfileFor(cloud), d.Clock, nil)
	meta := bigmeta.NewCache(d.Clock, nil)
	log := bigmeta.NewLog(d.Clock, nil)
	stores := map[string]*objstore.Store{cloud: store}
	eng := engine.New(d.Catalog, d.Auth, meta, log, d.Clock, stores, engine.DefaultOptions())
	srv := storageapi.NewServer(d.Catalog, d.Auth, meta, log, d.Clock, stores)
	mgr := blmt.New(d.Catalog, d.Auth, log, d.Clock, stores)
	mgr.DefaultCloud = cloud
	eng.SetMutator(mgr)

	// Region-unique service identity (the realm's LOAS user).
	svc := security.Principal(fmt.Sprintf("svc-%s@omni", name))
	managed := objstore.Credential{Principal: string(svc)}
	eng.ManagedCred = managed
	srv.ManagedCred = managed
	if err := store.CreateBucket(managed, "bq-managed-"+name); err != nil {
		return nil, err
	}
	mgr.DefaultBucket = "bq-managed-" + name
	mgr.DefaultConnection = "omni-" + name
	if err := d.Auth.RegisterConnection(ControlPrincipal, security.Connection{
		Name: "omni-" + name, ServiceAccount: managed, Cloud: cloud,
	}); err != nil {
		return nil, err
	}

	store.UseObs(d.Obs)
	meta.UseObs(d.Obs)
	log.UseObs(d.Obs)
	eng.UseObs(d.Obs)
	srv.UseObs(d.Obs)
	r := &Region{
		Name: name, Cloud: cloud,
		Store: store, Meta: meta, Log: log,
		Engine: eng, StorageAPI: srv, Manager: mgr,
		realm: map[security.Principal]bool{svc: true},
	}
	d.regions[name] = r
	d.VPN.Admit(name)
	if d.Primary == "" && cloud == "gcp" {
		d.Primary = name
	}
	return r, nil
}

// Region resolves a deployed region.
func (d *Deployment) Region(name string) (*Region, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	r, ok := d.regions[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNoRegion, name)
	}
	return r, nil
}

// UntrustedProxy sits between foreign-cloud Dremel workers and
// control-plane services (§5.3.2): it terminates the worker's
// connection, validates the per-query session token (signature,
// expiry, table scope) and the region realm, and only then forwards
// the request.
type UntrustedProxy struct {
	dep *Deployment
}

// Proxy returns the deployment's untrusted proxy.
func (d *Deployment) Proxy() *UntrustedProxy { return &UntrustedProxy{dep: d} }

// Authorize validates one data-plane request against its session
// token: the token must verify, the table must be in the query's
// scope, and the calling service identity must belong to the region's
// realm.
func (p *UntrustedProxy) Authorize(tok security.SessionToken, region string, svc security.Principal, table string) error {
	r, err := p.dep.Region(region)
	if err != nil {
		return err
	}
	if !r.InRealm(svc) {
		return fmt.Errorf("%w: %s in %s", ErrRealmViolation, svc, region)
	}
	if tok.Region != region {
		return fmt.Errorf("%w: token for region %s used in %s", security.ErrBadToken, tok.Region, region)
	}
	return p.dep.Auth.ValidateToken(tok, p.dep.Clock.Now(), table)
}

// scopeFor computes the object-path superset a query over the given
// tables needs (§5.3.1), for credential down-scoping.
func (d *Deployment) scopeFor(tables []string) ([]string, error) {
	var out []string
	for _, name := range tables {
		t, err := d.Catalog.Table(name)
		if err != nil {
			return nil, err
		}
		if t.Prefix != "" {
			out = append(out, t.Prefix)
		}
	}
	return out, nil
}

// TokenTTL bounds per-query session tokens.
const TokenTTL = 15 * time.Minute
