package omni

import (
	"fmt"

	"biglake/internal/bigmeta"
	"biglake/internal/catalog"
	"biglake/internal/colfmt"
	"biglake/internal/engine"
	"biglake/internal/obs"
	"biglake/internal/security"
	"biglake/internal/sqlparse"
	"biglake/internal/vector"
)

// ControlPrincipal is the control plane's own identity, an implicit
// deployment admin used for internal grants and temp-table plumbing.
const ControlPrincipal = security.Principal("omni-control@system")

// SubmitOptions tunes cross-cloud execution for experiments.
type SubmitOptions struct {
	// DisablePushdown ships whole remote tables instead of filtered
	// subqueries (ablation A5).
	DisablePushdown bool
}

// Submit is the Job Server entry point (§5.1): it validates the query,
// performs IAM authorization and metadata lookup on the control plane,
// mints per-query session tokens, down-scopes credentials, and routes
// execution — single-region queries to their region's data plane,
// multi-region queries through the cross-cloud split of §5.6.1.
func (d *Deployment) Submit(principal security.Principal, sql string) (*engine.Result, error) {
	return d.SubmitWith(principal, sql, SubmitOptions{})
}

// SubmitWith is Submit with experiment options.
func (d *Deployment) SubmitWith(principal security.Principal, sql string, opts SubmitOptions) (*engine.Result, error) {
	stmt, err := sqlparse.Parse(sql)
	if err != nil {
		return nil, err
	}
	queryID := fmt.Sprintf("omni-q-%d", d.nextSeq())

	// Per-query trace (nil Tracer disables it end to end). The
	// deployment started the trace, so it — not the region engines,
	// which see ctx.Trace already set — finishes it.
	tr := d.Tracer.Start(queryID, d.Clock)
	root := tr.Root()
	defer tr.Finish()

	sel, isSelect := stmt.(*sqlparse.SelectStmt)
	tables := referencedTables(stmt)
	for _, t := range tables {
		if err := d.Auth.CheckRead(principal, t); err != nil {
			return nil, err
		}
	}

	// Resolve each table's region.
	regionOf := map[string]string{}
	regions := map[string]bool{}
	for _, t := range tables {
		region, err := d.Catalog.RegionOf(t)
		if err != nil {
			return nil, err
		}
		regionOf[t] = region
		regions[region] = true
	}

	// Choose the home region: single-region queries run where the data
	// is; multi-region queries are homed in the deployment's primary.
	home := d.Primary
	if len(regions) == 1 {
		for r := range regions {
			home = r
		}
	}
	homeRegion, err := d.Region(home)
	if err != nil {
		return nil, err
	}

	// Per-query security: scoped credentials + session tokens validated
	// at each region's untrusted proxy before dispatch.
	scope, err := d.scopeFor(tables)
	if err != nil {
		return nil, err
	}
	proxy := d.Proxy()
	for region := range regions {
		var regionTables []string
		for _, t := range tables {
			if regionOf[t] == region {
				regionTables = append(regionTables, t)
			}
		}
		tok := d.Auth.MintToken(queryID, principal, region, regionTables, d.Clock.Now()+TokenTTL)
		svc := security.Principal(fmt.Sprintf("svc-%s@omni", region))
		for _, t := range regionTables {
			if err := proxy.Authorize(tok, region, svc, t); err != nil {
				return nil, err
			}
		}
	}

	// Single-region (or statement) path: dispatch to that region over
	// the VPN.
	if len(regions) <= 1 || !isSelect {
		target := homeRegion
		if err := d.VPN.Call(d.Clock, d.Primary, target.Name, 1024, target.Store.Profile()); err != nil {
			return nil, err
		}
		ctx := engine.NewContext(principal, queryID)
		ctx.Region = target.Name
		ctx.Scope = scope
		ctx.Trace = tr
		if root != nil {
			sp := root.Child("dispatch " + target.Name)
			sp.SetStr("cloud", target.Cloud)
			ctx.Span = sp
			defer sp.End()
		}
		res, err := target.Engine.Execute(ctx, stmt)
		if err != nil {
			return nil, err
		}
		// Result bytes ride the VPN back to the control plane.
		payload := int64(len(vector.EncodeBatch(res.Batch, true)))
		if err := d.VPN.Call(d.Clock, target.Name, d.Primary, payload, target.Store.Profile()); err != nil {
			return nil, err
		}
		ctx.Span.SetInt("result_bytes", payload)
		return res, nil
	}

	// Cross-cloud query (§5.6.1): run remote subqueries with filter
	// pushdown, stream results back as temp tables, rewrite, and join
	// locally.
	d.msink.Add("cross_cloud_queries", 1)
	rewritten := cloneSelect(sel)
	for _, t := range tables {
		if regionOf[t] == home {
			continue
		}
		remote, err := d.Region(regionOf[t])
		if err != nil {
			return nil, err
		}
		alias := aliasFor(rewritten, t)
		var preds []colfmt.Predicate
		if !opts.DisablePushdown {
			tab, err := d.Catalog.Table(t)
			if err != nil {
				return nil, err
			}
			preds = extractPushdown(sel.Where, alias, tab)
		}
		sub := &sqlparse.SelectStmt{
			Items: []sqlparse.SelectItem{{Star: true}},
			From:  &sqlparse.TableRef{Name: t},
			Where: predsToExpr(preds),
			Limit: -1,
		}
		ctx := engine.NewContext(principal, queryID)
		ctx.Region = remote.Name
		ctx.Scope = scope
		ctx.Trace = tr
		var ssp *obs.Span
		if root != nil {
			ssp = root.Child("subquery " + remote.Name)
			ssp.SetStr("cloud", remote.Cloud)
			ssp.SetStr("table", t)
			ctx.Span = ssp
		}
		res, err := remote.Engine.Execute(ctx, sub)
		if err != nil {
			ssp.End()
			return nil, fmt.Errorf("omni: remote subquery on %s: %w", remote.Name, err)
		}
		// High-throughput streaming of the filtered result back to the
		// home region over the VPN.
		payload := vector.EncodeBatch(res.Batch, true)
		if err := d.VPN.Call(d.Clock, remote.Name, home, int64(len(payload)), remote.Store.Profile()); err != nil {
			ssp.End()
			return nil, err
		}
		ssp.SetInt("rows", int64(res.Batch.N))
		ssp.SetInt("egress_bytes", int64(len(payload)))
		ssp.End()
		tempName, err := d.createTempTable(homeRegion, principal, res.Batch)
		if err != nil {
			return nil, err
		}
		replaceTable(rewritten, t, tempName)
	}

	ctx := engine.NewContext(principal, queryID)
	ctx.Region = home
	ctx.Trace = tr
	if root != nil {
		jsp := root.Child("local join " + home)
		ctx.Span = jsp
		defer jsp.End()
	}
	res, err := homeRegion.Engine.Execute(ctx, rewritten)
	if err != nil {
		return nil, err
	}
	return res, nil
}

func (d *Deployment) nextSeq() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.tempSeq++
	return d.tempSeq
}

// createTempTable materializes a batch as a Native temp table in the
// home region and grants the querying principal read access.
func (d *Deployment) createTempTable(home *Region, principal security.Principal, rows *vector.Batch) (string, error) {
	if _, err := d.Catalog.Dataset("_omni_tmp"); err != nil {
		if err := d.Catalog.CreateDataset(catalog.Dataset{Name: "_omni_tmp", Region: home.Name, Cloud: home.Cloud}); err != nil {
			return "", err
		}
	}
	name := fmt.Sprintf("_omni_tmp.t%d", d.nextSeq())
	file, err := colfmt.WriteFile(rows, colfmt.WriterOptions{})
	if err != nil {
		return "", err
	}
	cred := home.Engine.ManagedCred
	key := fmt.Sprintf("tmp/%s.blk", name)
	info, err := home.Store.Put(cred, home.Manager.DefaultBucket, key, file, "application/x-blk")
	if err != nil {
		return "", err
	}
	if err := d.Catalog.CreateTable(catalog.Table{
		Dataset: "_omni_tmp", Name: name[len("_omni_tmp."):], Type: catalog.Native,
		Schema: rows.Schema, Cloud: home.Cloud, Bucket: home.Manager.DefaultBucket,
		Prefix: "tmp/", CreatedAt: d.Clock.Now(),
	}); err != nil {
		return "", err
	}
	footer, err := colfmt.ReadFooter(file)
	if err != nil {
		return "", err
	}
	if _, err := home.Log.Commit(string(ControlPrincipal), map[string]bigmeta.TableDelta{
		name: {Added: []bigmeta.FileEntry{{
			Bucket: home.Manager.DefaultBucket, Key: key, Size: info.Size, RowCount: footer.Rows,
		}}},
	}); err != nil {
		return "", err
	}
	if err := d.Auth.GrantTable(ControlPrincipal, name, principal, security.RoleViewer); err != nil {
		return "", err
	}
	return name, nil
}

// referencedTables walks a statement and returns every named table.
func referencedTables(stmt sqlparse.Statement) []string {
	seen := map[string]bool{}
	var out []string
	add := func(name string) {
		if name != "" && !seen[name] {
			seen[name] = true
			out = append(out, name)
		}
	}
	var walkSel func(*sqlparse.SelectStmt)
	var walkRef func(*sqlparse.TableRef)
	walkRef = func(r *sqlparse.TableRef) {
		if r == nil {
			return
		}
		add(r.Name)
		if r.Subquery != nil {
			walkSel(r.Subquery)
		}
		if r.TVF != nil {
			walkRef(r.TVF.Input)
		}
	}
	walkSel = func(s *sqlparse.SelectStmt) {
		if s == nil {
			return
		}
		walkRef(s.From)
		for i := range s.Joins {
			walkRef(s.Joins[i].Table)
		}
	}
	switch s := stmt.(type) {
	case *sqlparse.SelectStmt:
		walkSel(s)
	case *sqlparse.InsertStmt:
		add(s.Table)
		walkSel(s.Select)
	case *sqlparse.UpdateStmt:
		add(s.Table)
	case *sqlparse.DeleteStmt:
		add(s.Table)
	case *sqlparse.CreateTableAsStmt:
		add(s.Table)
		walkSel(s.Select)
	}
	return out
}

// aliasFor returns the alias the query uses for a table (or its name).
func aliasFor(sel *sqlparse.SelectStmt, table string) string {
	if sel.From != nil && sel.From.Name == table {
		return sel.From.DisplayName()
	}
	for i := range sel.Joins {
		if sel.Joins[i].Table.Name == table {
			return sel.Joins[i].Table.DisplayName()
		}
	}
	return table
}

// extractPushdown pulls `col op literal` conjuncts for one table alias
// out of a WHERE tree, keeping only columns of the table's schema.
func extractPushdown(where sqlparse.Expr, alias string, t catalog.Table) []colfmt.Predicate {
	var out []colfmt.Predicate
	var walk func(e sqlparse.Expr)
	walk = func(e sqlparse.Expr) {
		bin, ok := e.(sqlparse.Binary)
		if !ok {
			return
		}
		if bin.Op == "AND" {
			walk(bin.L)
			walk(bin.R)
			return
		}
		op, ok := cmpOps[bin.Op]
		if !ok {
			return
		}
		ref, refOK := bin.L.(sqlparse.ColumnRef)
		lit, litOK := bin.R.(sqlparse.Literal)
		if !refOK || !litOK || lit.Value.IsNull() {
			return
		}
		if ref.Table != "" && ref.Table != alias {
			return
		}
		if t.Schema.Index(ref.Name) < 0 {
			return
		}
		out = append(out, colfmt.Predicate{Column: ref.Name, Op: op, Value: lit.Value})
	}
	if where != nil {
		walk(where)
	}
	return out
}

var cmpOps = map[string]vector.CmpOp{
	"=": vector.EQ, "!=": vector.NE, "<": vector.LT, "<=": vector.LE, ">": vector.GT, ">=": vector.GE,
}

// predsToExpr renders predicates back into an AND expression tree.
func predsToExpr(preds []colfmt.Predicate) sqlparse.Expr {
	var out sqlparse.Expr
	for _, p := range preds {
		cmp := sqlparse.Binary{
			Op: p.Op.String(),
			L:  sqlparse.ColumnRef{Name: p.Column},
			R:  sqlparse.Literal{Value: p.Value},
		}
		if out == nil {
			out = cmp
		} else {
			out = sqlparse.Binary{Op: "AND", L: out, R: cmp}
		}
	}
	return out
}

// cloneSelect deep-copies the parts of a SELECT the rewriter mutates.
func cloneSelect(sel *sqlparse.SelectStmt) *sqlparse.SelectStmt {
	cp := *sel
	if sel.From != nil {
		fromCp := *sel.From
		cp.From = &fromCp
	}
	cp.Joins = make([]sqlparse.Join, len(sel.Joins))
	for i, j := range sel.Joins {
		cp.Joins[i] = j
		refCp := *j.Table
		cp.Joins[i].Table = &refCp
	}
	return &cp
}

// replaceTable rewrites a table reference to point at a temp table,
// preserving the alias so column references keep resolving.
func replaceTable(sel *sqlparse.SelectStmt, oldName, newName string) {
	fix := func(r *sqlparse.TableRef) {
		if r != nil && r.Name == oldName {
			if r.Alias == "" {
				r.Alias = oldName
			}
			r.Name = newName
		}
	}
	fix(sel.From)
	for i := range sel.Joins {
		fix(sel.Joins[i].Table)
	}
}
