package omni

import (
	"errors"
	"testing"
	"time"

	"biglake/internal/catalog"
	"biglake/internal/engine"
	"biglake/internal/security"
	"biglake/internal/sim"
	"biglake/internal/sqlparse"
	"biglake/internal/vector"
)

const (
	adminP   = security.Principal("admin@corp")
	analystP = security.Principal("analyst@corp")
)

type env struct {
	clock *sim.Clock
	dep   *Deployment
	gcp   *Region
	aws   *Region
}

func newEnv(t *testing.T) *env {
	t.Helper()
	clock := sim.NewClock()
	dep := NewDeployment(clock, adminP)
	gcp, err := dep.AddRegion("gcp-us", "gcp")
	if err != nil {
		t.Fatal(err)
	}
	aws, err := dep.AddRegion("aws-us-east-1", "aws")
	if err != nil {
		t.Fatal(err)
	}
	if dep.Primary != "gcp-us" {
		t.Fatalf("primary = %q", dep.Primary)
	}
	return &env{clock: clock, dep: dep, gcp: gcp, aws: aws}
}

func adsSchema() vector.Schema {
	return vector.NewSchema(
		vector.Field{Name: "id", Type: vector.Int64},
		vector.Field{Name: "customer_id", Type: vector.Int64},
	)
}

func ordersSchema() vector.Schema {
	return vector.NewSchema(
		vector.Field{Name: "order_id", Type: vector.Int64},
		vector.Field{Name: "customer_id", Type: vector.Int64},
		vector.Field{Name: "order_total", Type: vector.Float64},
	)
}

// seedTables creates local_dataset.ads_impressions on GCP and
// aws_dataset.customer_orders on AWS, the Listing 3 setup.
func (ev *env) seedTables(t *testing.T, adsRows, orderRows int) {
	t.Helper()
	d := ev.dep
	if err := d.Catalog.CreateDataset(catalog.Dataset{Name: "local_dataset", Region: "gcp-us", Cloud: "gcp"}); err != nil {
		t.Fatal(err)
	}
	if err := d.Catalog.CreateDataset(catalog.Dataset{Name: "aws_dataset", Region: "aws-us-east-1", Cloud: "aws"}); err != nil {
		t.Fatal(err)
	}
	if err := d.Catalog.CreateTable(catalog.Table{
		Dataset: "local_dataset", Name: "ads_impressions", Type: catalog.Managed,
		Schema: adsSchema(), Cloud: "gcp", Bucket: ev.gcp.Manager.DefaultBucket,
		Prefix: "blmt/ads/", Connection: "omni-gcp-us",
	}); err != nil {
		t.Fatal(err)
	}
	if err := d.Catalog.CreateTable(catalog.Table{
		Dataset: "aws_dataset", Name: "customer_orders", Type: catalog.Managed,
		Schema: ordersSchema(), Cloud: "aws", Bucket: ev.aws.Manager.DefaultBucket,
		Prefix: "blmt/orders/", Connection: "omni-aws-us-east-1",
	}); err != nil {
		t.Fatal(err)
	}
	for _, tbl := range []string{"local_dataset.ads_impressions", "aws_dataset.customer_orders"} {
		d.Auth.GrantTable(ControlPrincipal, tbl, adminP, security.RoleOwner)
		d.Auth.GrantTable(ControlPrincipal, tbl, analystP, security.RoleViewer)
	}

	bl := vector.NewBuilder(adsSchema())
	for i := 0; i < adsRows; i++ {
		bl.Append(vector.IntValue(int64(i)), vector.IntValue(int64(i%50)))
	}
	ctx := engine.NewContext(adminP, "seed")
	if err := ev.gcp.Manager.Insert(ctx, "local_dataset.ads_impressions", bl.Build()); err != nil {
		t.Fatal(err)
	}
	bo := vector.NewBuilder(ordersSchema())
	for i := 0; i < orderRows; i++ {
		bo.Append(vector.IntValue(int64(i)), vector.IntValue(int64(i%50)), vector.FloatValue(float64(i)*1.5))
	}
	if err := ev.aws.Manager.Insert(ctx, "aws_dataset.customer_orders", bo.Build()); err != nil {
		t.Fatal(err)
	}
}

func TestSingleRegionQueryOnForeignCloud(t *testing.T) {
	ev := newEnv(t)
	ev.seedTables(t, 10, 20)
	res, err := ev.dep.Submit(analystP, "SELECT COUNT(*) AS n FROM aws_dataset.customer_orders")
	if err != nil {
		t.Fatal(err)
	}
	if res.Batch.Column("n").Value(0).AsInt() != 20 {
		t.Fatalf("count = %v", res.Batch.Row(0))
	}
}

func TestCrossCloudJoinListing3(t *testing.T) {
	ev := newEnv(t)
	ev.seedTables(t, 100, 200)
	res, err := ev.dep.Submit(analystP, `SELECT o.order_id, o.order_total, ads.id
		FROM local_dataset.ads_impressions AS ads
		JOIN aws_dataset.customer_orders AS o ON o.customer_id = ads.customer_id`)
	if err != nil {
		t.Fatal(err)
	}
	// 100 ads x 200 orders joined on customer_id%50: each ad matches 4
	// orders.
	if res.Batch.N != 400 {
		t.Fatalf("rows = %d, want 400", res.Batch.N)
	}
	if ev.dep.Meter.Get("cross_cloud_queries") != 1 {
		t.Fatal("cross-cloud path not taken")
	}
}

func TestCrossCloudPushdownReducesEgress(t *testing.T) {
	// E10: a selective predicate on the remote table ships a fraction
	// of its bytes.
	ev := newEnv(t)
	ev.seedTables(t, 100, 2000)
	query := `SELECT o.order_id, ads.id
		FROM local_dataset.ads_impressions AS ads
		JOIN aws_dataset.customer_orders AS o ON o.customer_id = ads.customer_id
		WHERE o.order_total > 2800.0`

	ev.dep.VPN.Meter().Reset()
	resPush, err := ev.dep.Submit(analystP, query)
	if err != nil {
		t.Fatal(err)
	}
	egressPush := ev.dep.VPN.Meter().Get("egress_bytes")

	ev.dep.VPN.Meter().Reset()
	resFull, err := ev.dep.SubmitWith(analystP, query, SubmitOptions{DisablePushdown: true})
	if err != nil {
		t.Fatal(err)
	}
	egressFull := ev.dep.VPN.Meter().Get("egress_bytes")

	if resPush.Batch.N != resFull.Batch.N {
		t.Fatalf("pushdown changed the answer: %d vs %d", resPush.Batch.N, resFull.Batch.N)
	}
	if egressPush*3 >= egressFull {
		t.Fatalf("pushdown egress %d should be far below full-shipping %d", egressPush, egressFull)
	}
}

func TestCrossCloudQueryChargesVPNLatency(t *testing.T) {
	ev := newEnv(t)
	ev.seedTables(t, 10, 10)
	before := ev.clock.Now()
	if _, err := ev.dep.Submit(analystP, `SELECT o.order_id, ads.id
		FROM local_dataset.ads_impressions AS ads
		JOIN aws_dataset.customer_orders AS o ON o.customer_id = ads.customer_id`); err != nil {
		t.Fatal(err)
	}
	if elapsed := ev.clock.Now() - before; elapsed < sim.AWS.CrossCloudRTT {
		t.Fatalf("cross-cloud query took %v, must include at least one RTT", elapsed)
	}
}

func TestIAMCheckedBeforeDispatch(t *testing.T) {
	ev := newEnv(t)
	ev.seedTables(t, 5, 5)
	_, err := ev.dep.Submit("evil@x", "SELECT * FROM aws_dataset.customer_orders")
	if !errors.Is(err, security.ErrDenied) {
		t.Fatalf("err = %v", err)
	}
}

func TestUntrustedProxyRejectsTamperedToken(t *testing.T) {
	ev := newEnv(t)
	ev.seedTables(t, 5, 5)
	proxy := ev.dep.Proxy()
	svc := security.Principal("svc-aws-us-east-1@omni")
	tok := ev.dep.Auth.MintToken("q1", analystP, "aws-us-east-1",
		[]string{"aws_dataset.customer_orders"}, ev.clock.Now()+time.Minute)

	// Legitimate request passes.
	if err := proxy.Authorize(tok, "aws-us-east-1", svc, "aws_dataset.customer_orders"); err != nil {
		t.Fatal(err)
	}
	// A compromised worker widening scope is rejected.
	tok2 := tok
	tok2.Tables = append([]string{}, tok.Tables...)
	tok2.Tables = append(tok2.Tables, "local_dataset.ads_impressions")
	if err := proxy.Authorize(tok2, "aws-us-east-1", svc, "local_dataset.ads_impressions"); !errors.Is(err, security.ErrBadToken) {
		t.Fatalf("tampered token: %v", err)
	}
	// Out-of-scope table with a valid token is rejected.
	if err := proxy.Authorize(tok, "aws-us-east-1", svc, "local_dataset.ads_impressions"); !errors.Is(err, security.ErrBadToken) {
		t.Fatalf("out of scope: %v", err)
	}
	// Expired token.
	ev.clock.Advance(2 * time.Minute)
	if err := proxy.Authorize(tok, "aws-us-east-1", svc, "aws_dataset.customer_orders"); !errors.Is(err, security.ErrBadToken) {
		t.Fatalf("expired token: %v", err)
	}
}

func TestSecurityRealmsIsolateRegions(t *testing.T) {
	// §5.3.3: each region has a unique principal namespace; a service
	// identity from one region cannot operate in another.
	ev := newEnv(t)
	ev.seedTables(t, 1, 1)
	proxy := ev.dep.Proxy()
	awsSvc := security.Principal("svc-aws-us-east-1@omni")
	gcpSvc := security.Principal("svc-gcp-us@omni")
	tok := ev.dep.Auth.MintToken("q", analystP, "gcp-us",
		[]string{"local_dataset.ads_impressions"}, ev.clock.Now()+time.Minute)
	if err := proxy.Authorize(tok, "gcp-us", gcpSvc, "local_dataset.ads_impressions"); err != nil {
		t.Fatal(err)
	}
	if err := proxy.Authorize(tok, "gcp-us", awsSvc, "local_dataset.ads_impressions"); !errors.Is(err, ErrRealmViolation) {
		t.Fatalf("cross-realm access: %v", err)
	}
	// Region mismatch in the token itself.
	if err := proxy.Authorize(tok, "aws-us-east-1", awsSvc, "local_dataset.ads_impressions"); !errors.Is(err, security.ErrBadToken) {
		t.Fatalf("wrong-region token: %v", err)
	}
}

func TestVPNAllowList(t *testing.T) {
	clock := sim.NewClock()
	vpn := NewVPN(clock, nil)
	vpn.Admit("gcp-us")
	if err := vpn.Call(clock, "gcp-us", "gcp-us", 10, sim.GCP); err != nil {
		t.Fatal(err)
	}
	if err := vpn.Call(clock, "gcp-us", "rogue-region", 10, sim.GCP); !errors.Is(err, ErrVPNDenied) {
		t.Fatalf("err = %v", err)
	}
}

func TestVPNEgressMetering(t *testing.T) {
	clock := sim.NewClock()
	vpn := NewVPN(clock, nil)
	vpn.Admit("a")
	vpn.Admit("b")
	vpn.Call(clock, "a", "b", 5000, sim.AWS)
	vpn.Call(clock, "b", "b", 7000, sim.AWS) // intra-region: no egress
	if got := vpn.Meter().Get("egress_bytes"); got != 5000 {
		t.Fatalf("egress = %d", got)
	}
}

func TestScopedCredentialLimitsBlastRadius(t *testing.T) {
	// §5.3.1: queries run with credentials scoped to the exact paths
	// they need; a compromised worker cannot read other tables' data.
	ev := newEnv(t)
	ev.seedTables(t, 5, 5)
	scope, err := ev.dep.scopeFor([]string{"aws_dataset.customer_orders"})
	if err != nil {
		t.Fatal(err)
	}
	conn, _ := ev.dep.Auth.Connection("omni-aws-us-east-1")
	scoped, err := conn.ServiceAccount.WithScope(scope...)
	if err != nil {
		t.Fatal(err)
	}
	// The scoped credential reads the query's own table fine.
	files, _, _ := ev.aws.Log.Snapshot("aws_dataset.customer_orders", -1)
	if _, _, err := ev.aws.Store.Get(scoped, files[0].Bucket, files[0].Key); err != nil {
		t.Fatalf("in-scope read: %v", err)
	}
	// Another table's data under the same bucket is out of reach.
	other := "blmt/other/data/secret.blk"
	ev.aws.Store.Put(conn.ServiceAccount, files[0].Bucket, other, []byte("x"), "")
	if _, _, err := ev.aws.Store.Get(scoped, files[0].Bucket, other); err == nil {
		t.Fatal("scoped credential escaped its paths")
	}
}

func TestOmniParityAcrossClouds(t *testing.T) {
	// E9 shape: the same workload costs comparable simulated time on
	// GCP and on the foreign cloud (within the clouds' modest profile
	// differences).
	ev := newEnv(t)
	ev.seedTables(t, 300, 300)
	// Compare data-plane execution time (engine SimElapsed): the §5.4
	// parity claim is about Dremel-on-foreign-cloud performance, not
	// the constant control-plane dispatch RTT.
	run := func(table string) time.Duration {
		res, err := ev.dep.Submit(analystP, "SELECT COUNT(*) AS n FROM "+table+" WHERE customer_id < 25")
		if err != nil {
			t.Fatal(err)
		}
		return res.Stats.SimElapsed
	}
	gcpTime := run("local_dataset.ads_impressions")
	awsTime := run("aws_dataset.customer_orders")
	ratio := float64(awsTime) / float64(gcpTime)
	if ratio > 1.6 || ratio < 0.6 {
		t.Fatalf("aws/gcp time ratio %.2f — Omni should be near parity (gcp=%v aws=%v)", ratio, gcpTime, awsTime)
	}
}

func TestCCMVIncrementalRefresh(t *testing.T) {
	ev := newEnv(t)
	ev.seedTables(t, 5, 50)
	mv, err := ev.dep.CreateCCMV("orders_mv", "aws_dataset.customer_orders", "gcp-us")
	if err != nil {
		t.Fatal(err)
	}
	rep, err := ev.dep.Refresh(mv, true)
	if err != nil {
		t.Fatal(err)
	}
	if rep.FilesCopied != 1 || rep.BytesCopied == 0 {
		t.Fatalf("initial refresh = %+v", rep)
	}
	// Replica is queryable in the GCP region.
	ev.dep.GrantReplicaAccess(mv, analystP)
	res, err := ev.dep.Submit(analystP, "SELECT COUNT(*) AS n FROM "+mv.Replica)
	if err != nil {
		t.Fatal(err)
	}
	if res.Batch.Column("n").Value(0).AsInt() != 50 {
		t.Fatalf("replica rows = %v", res.Batch.Row(0))
	}
	// No changes: refresh is a no-op.
	rep, _ = ev.dep.Refresh(mv, true)
	if !rep.UpToDate || rep.FilesCopied != 0 {
		t.Fatalf("idle refresh = %+v", rep)
	}
}

func TestCCMVIncrementalBeatsFullOnEgress(t *testing.T) {
	// E11: after a small source change, incremental refresh copies one
	// file; full recreation recopies everything.
	ev := newEnv(t)
	ev.seedTables(t, 5, 50)
	ctx := engine.NewContext(adminP, "seed2")
	// Several more source commits -> several files.
	for i := 0; i < 4; i++ {
		bo := vector.NewBuilder(ordersSchema())
		for j := 0; j < 50; j++ {
			bo.Append(vector.IntValue(int64(1000+i*50+j)), vector.IntValue(int64(j%50)), vector.FloatValue(1))
		}
		if err := ev.aws.Manager.Insert(ctx, "aws_dataset.customer_orders", bo.Build()); err != nil {
			t.Fatal(err)
		}
	}
	mv, err := ev.dep.CreateCCMV("orders_mv2", "aws_dataset.customer_orders", "gcp-us")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ev.dep.Refresh(mv, true); err != nil {
		t.Fatal(err)
	}

	// One more small source insert.
	bo := vector.NewBuilder(ordersSchema())
	bo.Append(vector.IntValue(9999), vector.IntValue(1), vector.FloatValue(1))
	if err := ev.aws.Manager.Insert(ctx, "aws_dataset.customer_orders", bo.Build()); err != nil {
		t.Fatal(err)
	}

	inc, err := ev.dep.Refresh(mv, true)
	if err != nil {
		t.Fatal(err)
	}
	full, err := ev.dep.Refresh(mv, false)
	if err != nil {
		t.Fatal(err)
	}
	if inc.FilesCopied != 1 {
		t.Fatalf("incremental copied %d files, want 1", inc.FilesCopied)
	}
	if full.FilesCopied <= inc.FilesCopied || full.BytesCopied <= inc.BytesCopied {
		t.Fatalf("full refresh (files=%d bytes=%d) should dwarf incremental (files=%d bytes=%d)",
			full.FilesCopied, full.BytesCopied, inc.FilesCopied, inc.BytesCopied)
	}
}

func TestCCMVDeleteRecreatesOnlyAffectedPartition(t *testing.T) {
	ev := newEnv(t)
	ev.seedTables(t, 5, 50)
	ctx := engine.NewContext(adminP, "seed")
	// Second file.
	bo := vector.NewBuilder(ordersSchema())
	for j := 0; j < 50; j++ {
		bo.Append(vector.IntValue(int64(100+j)), vector.IntValue(int64(j%50)), vector.FloatValue(2))
	}
	ev.aws.Manager.Insert(ctx, "aws_dataset.customer_orders", bo.Build())

	mv, _ := ev.dep.CreateCCMV("orders_mv3", "aws_dataset.customer_orders", "gcp-us")
	ev.dep.Refresh(mv, true)

	// Delete rows living in the first file only.
	if _, err := ev.aws.Manager.Delete(ctx, "aws_dataset.customer_orders", func(b *vector.Batch) ([]bool, error) {
		c := b.Column("order_id")
		mask := make([]bool, b.N)
		for i := 0; i < b.N; i++ {
			mask[i] = c.Value(i).AsInt() < 10
		}
		return mask, nil
	}); err != nil {
		t.Fatal(err)
	}

	rep, err := ev.dep.Refresh(mv, true)
	if err != nil {
		t.Fatal(err)
	}
	// The delete rewrote one source file: one replica partition
	// retired, one copied — not the whole view.
	if rep.FilesDeleted != 1 || rep.FilesCopied != 1 {
		t.Fatalf("partition-level refresh = %+v", rep)
	}
	ev.dep.GrantReplicaAccess(mv, analystP)
	res, err := ev.dep.Submit(analystP, "SELECT COUNT(*) AS n FROM "+mv.Replica)
	if err != nil {
		t.Fatal(err)
	}
	if res.Batch.Column("n").Value(0).AsInt() != 90 {
		t.Fatalf("replica rows = %v, want 90", res.Batch.Row(0))
	}
}

func TestCCMVValidation(t *testing.T) {
	ev := newEnv(t)
	ev.seedTables(t, 1, 1)
	if _, err := ev.dep.CreateCCMV("bad", "aws_dataset.customer_orders", "aws-us-east-1"); err == nil {
		t.Fatal("same-region CCMV should fail")
	}
	if _, err := ev.dep.CreateCCMV("bad2", "ghost.table", "gcp-us"); !errors.Is(err, catalog.ErrNotFound) {
		t.Fatalf("missing source: %v", err)
	}
}

func TestAddRegionValidation(t *testing.T) {
	ev := newEnv(t)
	if _, err := ev.dep.AddRegion("gcp-us", "gcp"); err == nil {
		t.Fatal("duplicate region should fail")
	}
	if _, err := ev.dep.Region("mars-1"); !errors.Is(err, ErrNoRegion) {
		t.Fatalf("missing region: %v", err)
	}
	az, err := ev.dep.AddRegion("azure-eastus", "azure")
	if err != nil || az.Cloud != "azure" {
		t.Fatalf("azure region: %v", err)
	}
}

func TestReferencedTables(t *testing.T) {
	stmts := map[string][]string{
		"SELECT a FROM x.y JOIN p.q AS q2 ON q2.a = b":                {"x.y", "p.q"},
		"SELECT a FROM (SELECT b FROM inner_ds.t) s":                  {"inner_ds.t"},
		"INSERT INTO d.t SELECT * FROM s.u":                           {"d.t", "s.u"},
		"DELETE FROM d.t":                                             {"d.t"},
		"CREATE TABLE d.new AS SELECT * FROM s.old":                   {"d.new", "s.old"},
		"SELECT * FROM ML.PREDICT(MODEL m.x, (SELECT a FROM ds.obj))": {"ds.obj"},
	}
	for sql, want := range stmts {
		stmt, err := sqlparse.Parse(sql)
		if err != nil {
			t.Fatalf("parse %q: %v", sql, err)
		}
		got := referencedTables(stmt)
		if len(got) != len(want) {
			t.Fatalf("%q tables = %v, want %v", sql, got, want)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%q tables = %v, want %v", sql, got, want)
			}
		}
	}
}

func TestResultsMatchSingleCloudBaseline(t *testing.T) {
	// Correctness invariant: the cross-cloud split returns exactly
	// what a hypothetical single-region join would.
	ev := newEnv(t)
	ev.seedTables(t, 30, 60)
	res, err := ev.dep.Submit(analystP, `SELECT ads.id, o.order_total
		FROM local_dataset.ads_impressions AS ads
		JOIN aws_dataset.customer_orders AS o ON o.customer_id = ads.customer_id
		WHERE o.order_total >= 30.0 ORDER BY ads.id, o.order_total`)
	if err != nil {
		t.Fatal(err)
	}
	// Recompute expectation in plain Go.
	want := 0
	for ads := 0; ads < 30; ads++ {
		for o := 0; o < 60; o++ {
			if o%50 == ads%50 && float64(o)*1.5 >= 30.0 {
				want++
			}
		}
	}
	if res.Batch.N != want {
		t.Fatalf("rows = %d, want %d", res.Batch.N, want)
	}
	for i := 0; i < res.Batch.N; i++ {
		if res.Batch.Row(i)[1].AsFloat() < 30.0 {
			t.Fatal("predicate violated")
		}
	}
}
