package omni

import (
	"fmt"
	"sync"

	"biglake/internal/bigmeta"
	"biglake/internal/catalog"
	"biglake/internal/objstore"
	"biglake/internal/resilience"
	"biglake/internal/security"
)

// CCMV is a cross-cloud materialized view (§5.6.2, Figure 10): a local
// materialized view of a managed source table in a foreign region,
// incrementally replicated into the primary region by stateful
// file-based copying. Each source data file is a replication unit —
// when an upsert/delete rewrites a file, only that file's partition is
// re-replicated, never the whole view.
type CCMV struct {
	Name         string
	Source       string // managed table in a foreign region
	SourceRegion string
	TargetRegion string
	// Replica is the catalog name of the replicated table in the
	// target region.
	Replica string
	// RefreshInterval is advisory metadata for auto-refresh tooling.
	RefreshInterval int64

	mu          sync.Mutex
	lastVersion int64
	// replicated maps source object keys to the replica object keys
	// holding their copies.
	replicated map[string]string
}

// refreshRetryBudget bounds total retries within one CCMV refresh.
const refreshRetryBudget = 64

// RefreshReport summarizes one CCMV refresh.
type RefreshReport struct {
	Incremental  bool
	FilesCopied  int
	FilesDeleted int
	BytesCopied  int64
	UpToDate     bool
}

// CreateCCMV defines a cross-cloud materialized view over a managed
// source table and registers the replica table in the target region.
func (d *Deployment) CreateCCMV(name, sourceTable, targetRegion string) (*CCMV, error) {
	srcRegionName, err := d.Catalog.RegionOf(sourceTable)
	if err != nil {
		return nil, err
	}
	if srcRegionName == targetRegion {
		return nil, fmt.Errorf("omni: CCMV source %q already lives in %s", sourceTable, targetRegion)
	}
	src, err := d.Catalog.Table(sourceTable)
	if err != nil {
		return nil, err
	}
	if src.Type != catalog.Managed && src.Type != catalog.Native {
		return nil, fmt.Errorf("omni: CCMV sources must be managed tables, %s is %v", sourceTable, src.Type)
	}
	target, err := d.Region(targetRegion)
	if err != nil {
		return nil, err
	}
	if _, err := d.Catalog.Dataset("_ccmv"); err != nil {
		if err := d.Catalog.CreateDataset(catalog.Dataset{Name: "_ccmv", Region: targetRegion, Cloud: target.Cloud}); err != nil {
			return nil, err
		}
	}
	replica := "_ccmv." + name
	if err := d.Catalog.CreateTable(catalog.Table{
		Dataset: "_ccmv", Name: name, Type: catalog.Managed,
		Schema: src.Schema, Cloud: target.Cloud, Bucket: target.Manager.DefaultBucket,
		Prefix: "ccmv/" + name + "/", Connection: "omni-" + targetRegion,
		CreatedAt: d.Clock.Now(),
	}); err != nil {
		return nil, err
	}
	return &CCMV{
		Name:         name,
		Source:       sourceTable,
		SourceRegion: srcRegionName,
		TargetRegion: targetRegion,
		Replica:      replica,
		replicated:   make(map[string]string),
	}, nil
}

// Refresh brings the replica up to date. In incremental mode only
// files added or removed since the last refresh move across the VPN;
// in full mode (the ablation baseline / "recreate everything"
// traditional ETL) every current source file is re-copied.
func (d *Deployment) Refresh(mv *CCMV, incremental bool) (RefreshReport, error) {
	mv.mu.Lock()
	defer mv.mu.Unlock()

	srcRegion, err := d.Region(mv.SourceRegion)
	if err != nil {
		return RefreshReport{}, err
	}
	dstRegion, err := d.Region(mv.TargetRegion)
	if err != nil {
		return RefreshReport{}, err
	}
	src, err := d.Catalog.Table(mv.Source)
	if err != nil {
		return RefreshReport{}, err
	}
	dst, err := d.Catalog.Table(mv.Replica)
	if err != nil {
		return RefreshReport{}, err
	}
	srcCred, err := d.connCred(src.Connection, srcRegion)
	if err != nil {
		return RefreshReport{}, err
	}
	dstCred, err := d.connCred(dst.Connection, dstRegion)
	if err != nil {
		return RefreshReport{}, err
	}

	files, version, err := srcRegion.Log.Snapshot(mv.Source, -1)
	if err != nil {
		return RefreshReport{}, err
	}
	report := RefreshReport{Incremental: incremental}
	if incremental && version == mv.lastVersion {
		report.UpToDate = true
		return report, nil
	}

	current := make(map[string]bigmeta.FileEntry, len(files))
	for _, f := range files {
		current[f.Key] = f
	}

	// Per-refresh retry budget: cross-cloud copies are long-haul and the
	// most fault-exposed path in the system, so every Get/Put/Delete
	// retries under the deployment policy, bounded per refresh.
	bud := resilience.NewBudget(d.Clock, refreshRetryBudget, resilience.Seed64(mv.Name))

	var delta bigmeta.TableDelta
	copyFile := func(f bigmeta.FileEntry) error {
		var data []byte
		if err := d.Res.Do(d.Clock, bud, "GET "+f.Bucket+"/"+f.Key, func() error {
			var ge error
			data, _, ge = srcRegion.Store.Get(srcCred, f.Bucket, f.Key)
			return ge
		}); err != nil {
			return err
		}
		// Cross-cloud transfer over the VPN (Colossus-bound file copy
		// in production; egress metered either way).
		if err := d.VPN.Call(d.Clock, mv.SourceRegion, mv.TargetRegion, int64(len(data)), srcRegion.Store.Profile()); err != nil {
			return err
		}
		replicaKey := dst.Prefix + "data/" + sanitizeKey(f.Key)
		var info objstore.ObjectInfo
		if err := d.Res.Do(d.Clock, bud, "PUT "+dst.Bucket+"/"+replicaKey, func() error {
			var pe error
			info, pe = dstRegion.Store.Put(dstCred, dst.Bucket, replicaKey, data, "application/x-blk")
			return pe
		}); err != nil {
			return err
		}
		delta.Added = append(delta.Added, bigmeta.FileEntry{
			Bucket: dst.Bucket, Key: replicaKey, Size: info.Size,
			RowCount: f.RowCount, ColumnStats: f.ColumnStats, Partition: f.Partition,
		})
		mv.replicated[f.Key] = replicaKey
		report.FilesCopied++
		report.BytesCopied += int64(len(data))
		return nil
	}

	if incremental {
		// Copy new source files.
		for key, f := range current {
			if _, ok := mv.replicated[key]; ok {
				continue
			}
			if err := copyFile(f); err != nil {
				return report, err
			}
		}
		// Retire replicas of removed source files (the partition an
		// upsert/delete rewrote).
		for key, replicaKey := range mv.replicated {
			if _, ok := current[key]; ok {
				continue
			}
			delta.Removed = append(delta.Removed, replicaKey)
			rk := replicaKey
			if err := d.Res.Do(d.Clock, bud, "DELETE "+dst.Bucket+"/"+rk, func() error {
				return dstRegion.Store.Delete(dstCred, dst.Bucket, rk)
			}); err != nil {
				return report, err
			}
			delete(mv.replicated, key)
			report.FilesDeleted++
		}
	} else {
		// Full recreation: drop all replicas, recopy everything.
		for key, replicaKey := range mv.replicated {
			delta.Removed = append(delta.Removed, replicaKey)
			rk := replicaKey
			if err := d.Res.Do(d.Clock, bud, "DELETE "+dst.Bucket+"/"+rk, func() error {
				return dstRegion.Store.Delete(dstCred, dst.Bucket, rk)
			}); err != nil {
				return report, err
			}
			delete(mv.replicated, key)
			report.FilesDeleted++
		}
		for _, f := range files {
			if err := copyFile(f); err != nil {
				return report, err
			}
		}
	}

	if len(delta.Added) > 0 || len(delta.Removed) > 0 {
		if _, err := dstRegion.Log.Commit(string(ControlPrincipal), map[string]bigmeta.TableDelta{
			mv.Replica: delta,
		}); err != nil {
			return report, err
		}
	}
	mv.lastVersion = version
	d.msink.Add("ccmv_refreshes", 1)
	d.msink.Add("ccmv_bytes_copied", report.BytesCopied)
	return report, nil
}

func (d *Deployment) connCred(connection string, r *Region) (objstore.Credential, error) {
	if connection == "" {
		return r.Engine.ManagedCred, nil
	}
	conn, err := d.Auth.Connection(connection)
	if err != nil {
		return objstore.Credential{}, err
	}
	return conn.ServiceAccount, nil
}

func sanitizeKey(key string) string {
	out := []byte(key)
	for i, c := range out {
		if c == '/' {
			out[i] = '_'
		}
	}
	return string(out)
}

// GrantReplicaAccess grants a principal read access to the CCMV
// replica.
func (d *Deployment) GrantReplicaAccess(mv *CCMV, p security.Principal) error {
	return d.Auth.GrantTable(ControlPrincipal, mv.Replica, p, security.RoleViewer)
}

// LastReplicatedVersion reports the source log version the replica
// reflects.
func (mv *CCMV) LastReplicatedVersion() int64 {
	mv.mu.Lock()
	defer mv.mu.Unlock()
	return mv.lastVersion
}
