package security

import (
	"errors"
	"strings"
	"testing"
	"time"

	"biglake/internal/colfmt"
	"biglake/internal/objstore"
	"biglake/internal/vector"
)

const (
	admin   = Principal("admin@corp")
	alice   = Principal("alice@corp")
	bob     = Principal("bob@corp")
	mallory = Principal("mallory@evil")
)

func newAuth() *Authority { return NewAuthority("test-secret", admin) }

func salesBatch() *vector.Batch {
	schema := vector.NewSchema(
		vector.Field{Name: "region", Type: vector.String},
		vector.Field{Name: "email", Type: vector.String},
		vector.Field{Name: "amount", Type: vector.Int64},
	)
	bl := vector.NewBuilder(schema)
	bl.Append(vector.StringValue("emea"), vector.StringValue("a@x.com"), vector.IntValue(100))
	bl.Append(vector.StringValue("amer"), vector.StringValue("b@x.com"), vector.IntValue(200))
	bl.Append(vector.StringValue("emea"), vector.StringValue("c@x.com"), vector.IntValue(300))
	bl.Append(vector.StringValue("apac"), vector.StringValue("d@x.com"), vector.IntValue(400))
	return bl.Build()
}

func TestRoleGrants(t *testing.T) {
	a := newAuth()
	if err := a.GrantTable(admin, "t", alice, RoleViewer); err != nil {
		t.Fatal(err)
	}
	if a.RoleOn(alice, "t") != RoleViewer {
		t.Fatal("role not set")
	}
	if a.RoleOn(admin, "t") != RoleOwner {
		t.Fatal("admin should be implicit owner")
	}
	if err := a.CheckRead(alice, "t"); err != nil {
		t.Fatal(err)
	}
	if err := a.CheckWrite(alice, "t"); !errors.Is(err, ErrDenied) {
		t.Fatalf("viewer write: %v", err)
	}
	if err := a.CheckRead(mallory, "t"); !errors.Is(err, ErrDenied) {
		t.Fatalf("stranger read: %v", err)
	}
}

func TestOnlyOwnersGrant(t *testing.T) {
	a := newAuth()
	a.GrantTable(admin, "t", alice, RoleViewer)
	if err := a.GrantTable(alice, "t", mallory, RoleOwner); !errors.Is(err, ErrDenied) {
		t.Fatalf("viewer grant: %v", err)
	}
	a.GrantTable(admin, "t", bob, RoleOwner)
	if err := a.GrantTable(bob, "t", mallory, RoleViewer); err != nil {
		t.Fatalf("owner grant: %v", err)
	}
}

func TestColumnPolicyDenied(t *testing.T) {
	a := newAuth()
	a.GrantTable(admin, "t", alice, RoleViewer)
	if err := a.SetColumnPolicy(admin, "t", ColumnPolicy{
		Column: "email", Allowed: map[Principal]bool{admin: true}, Mask: vector.MaskNone,
	}); err != nil {
		t.Fatal(err)
	}
	// The denied column is removed from the governed batch entirely.
	got, err := a.ApplyGovernance(alice, "t", salesBatch())
	if err != nil {
		t.Fatal(err)
	}
	if got.Schema.Index("email") >= 0 {
		t.Fatal("denied column leaked")
	}
	if got.Schema.Index("region") < 0 || got.N != 4 {
		t.Fatalf("other columns damaged: %v x %d", got.Schema, got.N)
	}
	// Allowed principal reads raw.
	out, err := a.ApplyGovernance(admin, "t", salesBatch())
	if err != nil {
		t.Fatal(err)
	}
	if out.Column("email").Value(0).S != "a@x.com" {
		t.Fatal("allowed principal should see raw values")
	}
}

func TestColumnPolicyMasking(t *testing.T) {
	a := newAuth()
	a.GrantTable(admin, "t", alice, RoleViewer)
	a.SetColumnPolicy(admin, "t", ColumnPolicy{
		Column: "email", Allowed: map[Principal]bool{admin: true}, Mask: vector.MaskHash,
	})
	out, err := a.ApplyGovernance(alice, "t", salesBatch())
	if err != nil {
		t.Fatal(err)
	}
	got := out.Column("email").Value(0).S
	if got == "a@x.com" || !strings.HasPrefix(got, "hash_") {
		t.Fatalf("masked email = %q", got)
	}
	// Other columns untouched.
	if out.Column("amount").Value(0).AsInt() != 100 {
		t.Fatal("unmasked column changed")
	}
}

func TestSetColumnPolicyReplaces(t *testing.T) {
	a := newAuth()
	a.SetColumnPolicy(admin, "t", ColumnPolicy{Column: "email", Mask: vector.MaskHash})
	a.SetColumnPolicy(admin, "t", ColumnPolicy{Column: "email", Mask: vector.MaskNullify})
	tp := a.PolicyFor("t")
	if len(tp.ColumnPolices) != 1 || tp.ColumnPolices[0].Mask != vector.MaskNullify {
		t.Fatalf("policies = %+v", tp.ColumnPolices)
	}
}

func TestRowPolicies(t *testing.T) {
	a := newAuth()
	a.GrantTable(admin, "t", alice, RoleViewer)
	a.GrantTable(admin, "t", bob, RoleViewer)
	a.AddRowPolicy(admin, "t", RowPolicy{
		Name:     "emea_only",
		Grantees: map[Principal]bool{alice: true},
		Filter:   []colfmt.Predicate{{Column: "region", Op: vector.EQ, Value: vector.StringValue("emea")}},
	})

	// Alice sees only emea rows.
	out, err := a.ApplyGovernance(alice, "t", salesBatch())
	if err != nil {
		t.Fatal(err)
	}
	if out.N != 2 {
		t.Fatalf("alice sees %d rows, want 2", out.N)
	}
	for i := 0; i < out.N; i++ {
		if out.Column("region").Value(i).S != "emea" {
			t.Fatal("row policy leaked a non-emea row")
		}
	}

	// Bob is granted by no policy: zero rows (BigQuery semantics).
	out, err = a.ApplyGovernance(bob, "t", salesBatch())
	if err != nil {
		t.Fatal(err)
	}
	if out.N != 0 {
		t.Fatalf("bob sees %d rows, want 0", out.N)
	}
}

func TestRowPoliciesUnion(t *testing.T) {
	a := newAuth()
	a.GrantTable(admin, "t", alice, RoleViewer)
	a.AddRowPolicy(admin, "t", RowPolicy{
		Name: "emea", Grantees: map[Principal]bool{alice: true},
		Filter: []colfmt.Predicate{{Column: "region", Op: vector.EQ, Value: vector.StringValue("emea")}},
	})
	a.AddRowPolicy(admin, "t", RowPolicy{
		Name: "big", Grantees: map[Principal]bool{alice: true},
		Filter: []colfmt.Predicate{{Column: "amount", Op: vector.GE, Value: vector.IntValue(400)}},
	})
	out, err := a.ApplyGovernance(alice, "t", salesBatch())
	if err != nil {
		t.Fatal(err)
	}
	if out.N != 3 { // 2 emea + 1 apac@400
		t.Fatalf("union rows = %d, want 3", out.N)
	}
}

func TestNoPoliciesMeansUnrestricted(t *testing.T) {
	a := newAuth()
	a.GrantTable(admin, "t", alice, RoleViewer)
	out, err := a.ApplyGovernance(alice, "t", salesBatch())
	if err != nil {
		t.Fatal(err)
	}
	if out.N != 4 {
		t.Fatalf("rows = %d, want 4", out.N)
	}
}

func TestGovernanceRequiresReadRole(t *testing.T) {
	a := newAuth()
	if _, err := a.ApplyGovernance(mallory, "t", salesBatch()); !errors.Is(err, ErrDenied) {
		t.Fatalf("err = %v", err)
	}
}

func TestRowAndColumnPoliciesCompose(t *testing.T) {
	a := newAuth()
	a.GrantTable(admin, "t", alice, RoleViewer)
	a.SetColumnPolicy(admin, "t", ColumnPolicy{Column: "email", Mask: vector.MaskLastFour})
	a.AddRowPolicy(admin, "t", RowPolicy{
		Name: "emea", Grantees: map[Principal]bool{alice: true},
		Filter: []colfmt.Predicate{{Column: "region", Op: vector.EQ, Value: vector.StringValue("emea")}},
	})
	out, err := a.ApplyGovernance(alice, "t", salesBatch())
	if err != nil {
		t.Fatal(err)
	}
	if out.N != 2 {
		t.Fatalf("rows = %d", out.N)
	}
	if got := out.Column("email").Value(0).S; got != "XXX.com" {
		t.Fatalf("masked email = %q", got)
	}
}

func TestOnlyOwnersSetPolicies(t *testing.T) {
	a := newAuth()
	a.GrantTable(admin, "t", alice, RoleViewer)
	if err := a.SetColumnPolicy(alice, "t", ColumnPolicy{Column: "email"}); !errors.Is(err, ErrDenied) {
		t.Fatalf("viewer set column policy: %v", err)
	}
	if err := a.AddRowPolicy(alice, "t", RowPolicy{}); !errors.Is(err, ErrDenied) {
		t.Fatalf("viewer add row policy: %v", err)
	}
}

func TestConnections(t *testing.T) {
	a := newAuth()
	conn := Connection{
		Name:           "lake-conn",
		ServiceAccount: objstore.Credential{Principal: "sa-biglake@corp"},
		Cloud:          "gcp",
	}
	if err := a.RegisterConnection(alice, conn); !errors.Is(err, ErrDenied) {
		t.Fatalf("non-admin register: %v", err)
	}
	if err := a.RegisterConnection(admin, conn); err != nil {
		t.Fatal(err)
	}
	got, err := a.Connection("lake-conn")
	if err != nil || got.ServiceAccount.Principal != "sa-biglake@corp" {
		t.Fatalf("connection = %+v, %v", got, err)
	}
	if _, err := a.Connection("ghost"); !errors.Is(err, ErrNoConnection) {
		t.Fatalf("missing connection: %v", err)
	}
}

func TestSessionTokens(t *testing.T) {
	a := newAuth()
	tok := a.MintToken("q1", alice, "aws-us-east-1", []string{"ds.orders"}, 10*time.Second)
	if err := a.ValidateToken(tok, 5*time.Second, "ds.orders"); err != nil {
		t.Fatal(err)
	}
	// Expired.
	if err := a.ValidateToken(tok, 11*time.Second, "ds.orders"); !errors.Is(err, ErrBadToken) {
		t.Fatalf("expired: %v", err)
	}
	// Out-of-scope table.
	if err := a.ValidateToken(tok, 5*time.Second, "ds.secrets"); !errors.Is(err, ErrBadToken) {
		t.Fatalf("out of scope: %v", err)
	}
}

func TestSessionTokenTamperDetected(t *testing.T) {
	a := newAuth()
	tok := a.MintToken("q1", alice, "aws", []string{"ds.orders"}, 10*time.Second)
	// A compromised worker widens its scope.
	tok.Tables = append(tok.Tables, "ds.secrets")
	if err := a.ValidateToken(tok, time.Second, "ds.secrets"); !errors.Is(err, ErrBadToken) {
		t.Fatalf("tampered token accepted: %v", err)
	}
	// Forged with a different secret.
	other := NewAuthority("other-secret", admin)
	forged := other.MintToken("q1", alice, "aws", []string{"ds.orders"}, 10*time.Second)
	if err := a.ValidateToken(forged, time.Second, "ds.orders"); !errors.Is(err, ErrBadToken) {
		t.Fatalf("forged token accepted: %v", err)
	}
}

func TestColumnDecisions(t *testing.T) {
	a := newAuth()
	a.SetColumnPolicy(admin, "t", ColumnPolicy{Column: "ssn", Mask: vector.MaskNone, Allowed: map[Principal]bool{admin: true}})
	a.SetColumnPolicy(admin, "t", ColumnPolicy{Column: "email", Mask: vector.MaskHash})
	ds := a.ColumnDecisionsFor(alice, "t", []string{"ssn", "email", "open"})
	if !ds[0].Denied {
		t.Fatal("ssn should be denied")
	}
	if ds[1].Mask != vector.MaskHash || ds[1].Denied {
		t.Fatal("email should be masked")
	}
	if ds[2].Mask != vector.MaskNone || ds[2].Denied {
		t.Fatal("open column should be raw")
	}
	dAdmin := a.ColumnDecisionsFor(admin, "t", []string{"ssn"})
	if dAdmin[0].Denied {
		t.Fatal("allowed principal denied")
	}
}

func TestPolicyForSnapshotIsolation(t *testing.T) {
	a := newAuth()
	a.AddRowPolicy(admin, "t", RowPolicy{Name: "p1", Grantees: map[Principal]bool{alice: true}})
	snap := a.PolicyFor("t")
	snap.RowPolicies = append(snap.RowPolicies, RowPolicy{Name: "injected"})
	if got := len(a.PolicyFor("t").RowPolicies); got != 1 {
		t.Fatalf("snapshot mutation leaked into authority: %d policies", got)
	}
}

func TestRowFilterFor(t *testing.T) {
	a := newAuth()
	if _, unrestricted := a.RowFilterFor(alice, "t"); !unrestricted {
		t.Fatal("no policies should be unrestricted")
	}
	a.AddRowPolicy(admin, "t", RowPolicy{Name: "p", Grantees: map[Principal]bool{alice: true}})
	filters, unrestricted := a.RowFilterFor(alice, "t")
	if unrestricted || len(filters) != 1 {
		t.Fatal("policy should apply")
	}
	filters, unrestricted = a.RowFilterFor(bob, "t")
	if unrestricted || len(filters) != 0 {
		t.Fatal("non-grantee should be restricted to nothing")
	}
}
