// Package security implements BigLake's governance layer: IAM
// principals and roles, connection objects for the delegated access
// model (§3.1), and the fine-grained access controls of §3.2 —
// column-level security, data masking, and row-level filtering — that
// are enforced uniformly for BigQuery and for external engines inside
// the Storage Read API trust boundary, with zero trust granted to the
// query engine itself.
package security

import (
	"crypto/hmac"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"biglake/internal/colfmt"
	"biglake/internal/objstore"
	"biglake/internal/vector"
)

// Errors returned by governance checks.
var (
	ErrDenied       = errors.New("security: access denied")
	ErrNoConnection = errors.New("security: no such connection")
	ErrBadToken     = errors.New("security: invalid session token")
)

// Principal is a user or service-account identity.
type Principal string

// Role is a coarse-grained access level on a resource.
type Role int

// Roles, ordered by privilege.
const (
	RoleNone Role = iota
	RoleViewer
	RoleEditor
	RoleOwner
)

func (r Role) String() string {
	switch r {
	case RoleViewer:
		return "VIEWER"
	case RoleEditor:
		return "EDITOR"
	case RoleOwner:
		return "OWNER"
	}
	return "NONE"
}

// Connection is the delegated-access object of §3.1: it binds a name
// to a service-account credential that has (read) access to the object
// store. Queries and background maintenance use the connection's
// credential, never the querying user's, so users need no direct
// access to raw data files.
type Connection struct {
	Name           string
	ServiceAccount objstore.Credential
	// Cloud names which cloud's object store the connection targets
	// ("gcp", "aws", "azure"); Omni uses it for routing.
	Cloud string
}

// ColumnPolicy protects one column. Principals in Allowed see raw
// values. Everyone else sees the Mask transform; Mask == MaskNone
// means the column is access-denied rather than masked (BigQuery
// column-level security semantics).
type ColumnPolicy struct {
	Column  string
	Allowed map[Principal]bool
	Mask    vector.MaskKind
}

// RowPolicy grants its grantees visibility of the rows matching the
// predicate conjunction. BigQuery semantics: once any row policy
// exists on a table, a principal sees exactly the union of rows from
// policies that list it; a principal granted by no policy sees no
// rows.
type RowPolicy struct {
	Name     string
	Grantees map[Principal]bool
	Filter   []colfmt.Predicate
}

// TablePolicy is the full governance state for one table.
type TablePolicy struct {
	ACL           map[Principal]Role
	ColumnPolices []ColumnPolicy
	RowPolicies   []RowPolicy
}

// Authority is the central policy store and enforcement engine — the
// "security/governance" horizontal service of Figure 1. One Authority
// instance governs a deployment; Omni regions hold replicas keyed by
// the same table names (metadata lives in the control plane).
type Authority struct {
	mu          sync.RWMutex
	tables      map[string]*TablePolicy
	connections map[string]Connection
	admins      map[Principal]bool
	tokenSecret []byte
}

// NewAuthority creates an Authority with the given administrators and
// an HMAC secret for session tokens.
func NewAuthority(tokenSecret string, admins ...Principal) *Authority {
	a := &Authority{
		tables:      make(map[string]*TablePolicy),
		connections: make(map[string]Connection),
		admins:      make(map[Principal]bool),
		tokenSecret: []byte(tokenSecret),
	}
	for _, p := range admins {
		a.admins[p] = true
	}
	return a
}

// IsAdmin reports whether the principal is a deployment admin.
func (a *Authority) IsAdmin(p Principal) bool {
	a.mu.RLock()
	defer a.mu.RUnlock()
	return a.admins[p]
}

func (a *Authority) policy(table string) *TablePolicy {
	tp, ok := a.tables[table]
	if !ok {
		tp = &TablePolicy{ACL: make(map[Principal]Role)}
		a.tables[table] = tp
	}
	return tp
}

// GrantTable sets a principal's role on a table. Only admins and table
// owners may grant.
func (a *Authority) GrantTable(granter Principal, table string, p Principal, r Role) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	tp := a.policy(table)
	if !a.admins[granter] && tp.ACL[granter] < RoleOwner {
		return fmt.Errorf("%w: %s cannot grant on %s", ErrDenied, granter, table)
	}
	tp.ACL[p] = r
	return nil
}

// RoleOn returns the principal's role on a table (admins are owners
// everywhere).
func (a *Authority) RoleOn(p Principal, table string) Role {
	a.mu.RLock()
	defer a.mu.RUnlock()
	if a.admins[p] {
		return RoleOwner
	}
	tp, ok := a.tables[table]
	if !ok {
		return RoleNone
	}
	return tp.ACL[p]
}

// CheckRead verifies read access to the table.
func (a *Authority) CheckRead(p Principal, table string) error {
	if a.RoleOn(p, table) < RoleViewer {
		return fmt.Errorf("%w: %s cannot read %s", ErrDenied, p, table)
	}
	return nil
}

// CheckWrite verifies write access to the table.
func (a *Authority) CheckWrite(p Principal, table string) error {
	if a.RoleOn(p, table) < RoleEditor {
		return fmt.Errorf("%w: %s cannot write %s", ErrDenied, p, table)
	}
	return nil
}

// SetColumnPolicy installs or replaces the policy for one column.
func (a *Authority) SetColumnPolicy(setter Principal, table string, cp ColumnPolicy) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	tp := a.policy(table)
	if !a.admins[setter] && tp.ACL[setter] < RoleOwner {
		return fmt.Errorf("%w: %s cannot set policies on %s", ErrDenied, setter, table)
	}
	for i, existing := range tp.ColumnPolices {
		if existing.Column == cp.Column {
			tp.ColumnPolices[i] = cp
			return nil
		}
	}
	tp.ColumnPolices = append(tp.ColumnPolices, cp)
	return nil
}

// AddRowPolicy installs a row access policy.
func (a *Authority) AddRowPolicy(setter Principal, table string, rp RowPolicy) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	tp := a.policy(table)
	if !a.admins[setter] && tp.ACL[setter] < RoleOwner {
		return fmt.Errorf("%w: %s cannot set policies on %s", ErrDenied, setter, table)
	}
	tp.RowPolicies = append(tp.RowPolicies, rp)
	return nil
}

// PolicyFor returns a snapshot of the table's governance state.
func (a *Authority) PolicyFor(table string) TablePolicy {
	a.mu.RLock()
	defer a.mu.RUnlock()
	tp, ok := a.tables[table]
	if !ok {
		return TablePolicy{}
	}
	out := TablePolicy{ACL: make(map[Principal]Role, len(tp.ACL))}
	for k, v := range tp.ACL {
		out.ACL[k] = v
	}
	out.ColumnPolices = append(out.ColumnPolices, tp.ColumnPolices...)
	out.RowPolicies = append(out.RowPolicies, tp.RowPolicies...)
	return out
}

// RegisterConnection stores a connection object (admin-only: creating
// a connection provisions a service account).
func (a *Authority) RegisterConnection(creator Principal, c Connection) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	if !a.admins[creator] {
		return fmt.Errorf("%w: %s cannot create connections", ErrDenied, creator)
	}
	a.connections[c.Name] = c
	return nil
}

// Connection resolves a connection by name.
func (a *Authority) Connection(name string) (Connection, error) {
	a.mu.RLock()
	defer a.mu.RUnlock()
	c, ok := a.connections[name]
	if !ok {
		return Connection{}, fmt.Errorf("%w: %q", ErrNoConnection, name)
	}
	return c, nil
}

// RowFilterFor computes the row-level predicate sets visible to a
// principal: (filters, unrestricted). If unrestricted is true the
// principal sees all rows. If false and filters is empty, the
// principal sees no rows.
func (a *Authority) RowFilterFor(p Principal, table string) (filters [][]colfmt.Predicate, unrestricted bool) {
	a.mu.RLock()
	defer a.mu.RUnlock()
	tp, ok := a.tables[table]
	if !ok || len(tp.RowPolicies) == 0 {
		return nil, true
	}
	for _, rp := range tp.RowPolicies {
		if rp.Grantees[p] {
			filters = append(filters, rp.Filter)
		}
	}
	return filters, false
}

// ColumnDecision is what a principal may do with one column.
type ColumnDecision struct {
	Column string
	Mask   vector.MaskKind // MaskNone = raw access
	Denied bool            // column-level security: selection fails
}

// ColumnDecisionsFor returns the per-column governance decisions for
// the principal over the requested columns.
func (a *Authority) ColumnDecisionsFor(p Principal, table string, columns []string) []ColumnDecision {
	a.mu.RLock()
	defer a.mu.RUnlock()
	tp := a.tables[table]
	out := make([]ColumnDecision, len(columns))
	for i, col := range columns {
		out[i] = ColumnDecision{Column: col}
		if tp == nil {
			continue
		}
		for _, cp := range tp.ColumnPolices {
			if cp.Column != col || cp.Allowed[p] {
				continue
			}
			if cp.Mask == vector.MaskNone {
				out[i].Denied = true
			} else {
				out[i].Mask = cp.Mask
			}
		}
	}
	return out
}

// ApplyGovernance enforces the full fine-grained policy for principal
// over a batch read from table: row policies filter rows, column
// policies mask or deny columns. This single implementation is invoked
// by the Dremel scan path and by the Storage Read API, giving the
// paper's "same implementation for data in object stores or in native
// storage" property (§3.2).
func (a *Authority) ApplyGovernance(p Principal, table string, b *vector.Batch) (*vector.Batch, error) {
	if err := a.CheckRead(p, table); err != nil {
		return nil, err
	}

	// Column-level decisions first. Columns the principal is denied
	// are removed from the result entirely (fail closed); explicitly
	// selecting a denied column is rejected earlier, at session
	// creation or column resolution.
	names := make([]string, len(b.Schema.Fields))
	for i, f := range b.Schema.Fields {
		names[i] = f.Name
	}
	decisions := a.ColumnDecisionsFor(p, table, names)
	hasDenied := false
	for _, d := range decisions {
		if d.Denied {
			hasDenied = true
		}
	}
	if hasDenied {
		fields := make([]vector.Field, 0, len(b.Schema.Fields))
		cols := make([]*vector.Column, 0, len(b.Cols))
		kept := decisions[:0]
		for i, d := range decisions {
			if d.Denied {
				continue
			}
			fields = append(fields, b.Schema.Fields[i])
			cols = append(cols, b.Cols[i])
			kept = append(kept, d)
		}
		nb, err := vector.NewBatch(vector.Schema{Fields: fields}, cols)
		if err != nil {
			return nil, err
		}
		b = nb
		decisions = kept
	}

	// Row-level filtering.
	filters, unrestricted := a.RowFilterFor(p, table)
	out := b
	if !unrestricted {
		mask := make([]bool, b.N) // default: no rows
		for _, conj := range filters {
			m, err := colfmt.EvalPredicates(b, conj)
			if err != nil {
				return nil, err
			}
			mask = vector.Or(mask, m)
		}
		var err error
		out, err = vector.Filter(b, mask)
		if err != nil {
			return nil, err
		}
	}

	// Masking.
	masked := false
	cols := make([]*vector.Column, len(out.Cols))
	copy(cols, out.Cols)
	fields := make([]vector.Field, len(out.Schema.Fields))
	copy(fields, out.Schema.Fields)
	for i, d := range decisions {
		if d.Mask == vector.MaskNone {
			continue
		}
		masked = true
		cols[i] = vector.ApplyMask(out.Cols[i], d.Mask)
		fields[i].Type = cols[i].Type
	}
	if !masked {
		return out, nil
	}
	return vector.NewBatch(vector.Schema{Fields: fields}, cols)
}

// SessionToken is the per-query token Omni's untrusted proxy validates
// (§5.3.2): it scopes what a data-plane worker may ask the control
// plane for, and is HMAC-signed so a compromised worker cannot forge
// or widen one.
type SessionToken struct {
	QueryID   string
	Principal Principal
	Region    string
	Tables    []string
	Expires   time.Duration // simulated time
	MAC       string
}

func (a *Authority) tokenMAC(t SessionToken) string {
	mac := hmac.New(sha256.New, a.tokenSecret)
	tables := append([]string(nil), t.Tables...)
	sort.Strings(tables)
	fmt.Fprintf(mac, "%s|%s|%s|%s|%d", t.QueryID, t.Principal, t.Region, strings.Join(tables, ","), t.Expires)
	return hex.EncodeToString(mac.Sum(nil))
}

// MintToken issues a signed per-query session token.
func (a *Authority) MintToken(queryID string, p Principal, region string, tables []string, expires time.Duration) SessionToken {
	t := SessionToken{QueryID: queryID, Principal: p, Region: region, Tables: tables, Expires: expires}
	t.MAC = a.tokenMAC(t)
	return t
}

// ValidateToken verifies signature, expiry (against now) and that the
// requested table is within the token's scope.
func (a *Authority) ValidateToken(t SessionToken, now time.Duration, table string) error {
	if !hmac.Equal([]byte(t.MAC), []byte(a.tokenMAC(t))) {
		return fmt.Errorf("%w: bad signature", ErrBadToken)
	}
	if now > t.Expires {
		return fmt.Errorf("%w: expired", ErrBadToken)
	}
	for _, allowed := range t.Tables {
		if allowed == table {
			return nil
		}
	}
	return fmt.Errorf("%w: table %q outside query scope", ErrBadToken, table)
}
