package catalog

import (
	"errors"
	"testing"

	"biglake/internal/vector"
)

func simpleSchema() vector.Schema {
	return vector.NewSchema(vector.Field{Name: "id", Type: vector.Int64})
}

func newCat(t *testing.T) *Catalog {
	t.Helper()
	c := New()
	if err := c.CreateDataset(Dataset{Name: "ds", Region: "gcp-us", Cloud: "gcp"}); err != nil {
		t.Fatal(err)
	}
	return c
}

func TestDatasetLifecycle(t *testing.T) {
	c := newCat(t)
	d, err := c.Dataset("ds")
	if err != nil || d.Region != "gcp-us" {
		t.Fatalf("dataset = %+v, %v", d, err)
	}
	if err := c.CreateDataset(Dataset{Name: "ds"}); !errors.Is(err, ErrAlreadyExists) {
		t.Fatalf("dup dataset: %v", err)
	}
	if err := c.CreateDataset(Dataset{}); !errors.Is(err, ErrInvalid) {
		t.Fatalf("empty dataset: %v", err)
	}
	if _, err := c.Dataset("ghost"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("missing dataset: %v", err)
	}
}

func TestCreateTableValidation(t *testing.T) {
	c := newCat(t)
	base := Table{Dataset: "ds", Name: "t", Type: BigLake, Schema: simpleSchema(),
		Cloud: "gcp", Bucket: "b", Prefix: "p/", Connection: "conn"}
	if err := c.CreateTable(base); err != nil {
		t.Fatal(err)
	}
	if err := c.CreateTable(base); !errors.Is(err, ErrAlreadyExists) {
		t.Fatalf("dup table: %v", err)
	}
	noConn := base
	noConn.Name, noConn.Connection = "t2", ""
	if err := c.CreateTable(noConn); !errors.Is(err, ErrInvalid) {
		t.Fatalf("biglake without connection: %v", err)
	}
	noSchema := base
	noSchema.Name, noSchema.Schema = "t3", vector.Schema{}
	if err := c.CreateTable(noSchema); !errors.Is(err, ErrInvalid) {
		t.Fatalf("no schema: %v", err)
	}
	badDs := base
	badDs.Dataset = "ghost"
	if err := c.CreateTable(badDs); !errors.Is(err, ErrNotFound) {
		t.Fatalf("missing dataset: %v", err)
	}
	dotted := base
	dotted.Name = "a.b"
	if err := c.CreateTable(dotted); !errors.Is(err, ErrInvalid) {
		t.Fatalf("dotted name: %v", err)
	}
}

func TestExternalTableNeedsNoConnection(t *testing.T) {
	c := newCat(t)
	err := c.CreateTable(Table{Dataset: "ds", Name: "ext", Type: External,
		Schema: simpleSchema(), Cloud: "gcp", Bucket: "b"})
	if err != nil {
		t.Fatal(err)
	}
}

func TestObjectTableGetsFixedSchema(t *testing.T) {
	c := newCat(t)
	err := c.CreateTable(Table{Dataset: "ds", Name: "objs", Type: Object,
		Cloud: "gcp", Bucket: "b", Connection: "conn"})
	if err != nil {
		t.Fatal(err)
	}
	got, _ := c.Table("ds.objs")
	if got.Schema.Index("uri") < 0 || got.Schema.Index("content_type") < 0 {
		t.Fatalf("object schema = %v", got.Schema)
	}
	if !got.Schema.Equal(ObjectTableSchema()) {
		t.Fatal("object table schema should be the fixed one")
	}
}

func TestTableLookupAndDrop(t *testing.T) {
	c := newCat(t)
	c.CreateTable(Table{Dataset: "ds", Name: "t", Type: Native, Schema: simpleSchema()})
	got, err := c.Table("ds.t")
	if err != nil || got.FullName() != "ds.t" {
		t.Fatalf("lookup: %+v, %v", got, err)
	}
	if err := c.DropTable("ds.t"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Table("ds.t"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("after drop: %v", err)
	}
	if err := c.DropTable("ds.t"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("double drop: %v", err)
	}
}

func TestUpdateTable(t *testing.T) {
	c := newCat(t)
	tab := Table{Dataset: "ds", Name: "t", Type: Native, Schema: simpleSchema()}
	c.CreateTable(tab)
	tab.MetadataCaching = true
	if err := c.UpdateTable(tab); err != nil {
		t.Fatal(err)
	}
	got, _ := c.Table("ds.t")
	if !got.MetadataCaching {
		t.Fatal("update lost")
	}
	ghost := Table{Dataset: "ds", Name: "ghost", Schema: simpleSchema()}
	if err := c.UpdateTable(ghost); !errors.Is(err, ErrNotFound) {
		t.Fatalf("update missing: %v", err)
	}
}

func TestListTables(t *testing.T) {
	c := newCat(t)
	c.CreateDataset(Dataset{Name: "other", Region: "aws-us-east-1", Cloud: "aws"})
	c.CreateTable(Table{Dataset: "ds", Name: "b", Type: Native, Schema: simpleSchema()})
	c.CreateTable(Table{Dataset: "ds", Name: "a", Type: Native, Schema: simpleSchema()})
	c.CreateTable(Table{Dataset: "other", Name: "x", Type: Native, Schema: simpleSchema()})
	got := c.ListTables("ds")
	if len(got) != 2 || got[0] != "ds.a" || got[1] != "ds.b" {
		t.Fatalf("list = %v", got)
	}
	if len(c.ListTables("empty")) != 0 {
		t.Fatal("empty dataset list")
	}
}

func TestRegionOf(t *testing.T) {
	c := newCat(t)
	c.CreateDataset(Dataset{Name: "aws_ds", Region: "aws-us-east-1", Cloud: "aws"})
	c.CreateTable(Table{Dataset: "aws_ds", Name: "orders", Type: BigLake,
		Schema: simpleSchema(), Cloud: "aws", Bucket: "b", Connection: "conn"})
	region, err := c.RegionOf("aws_ds.orders")
	if err != nil || region != "aws-us-east-1" {
		t.Fatalf("region = %q, %v", region, err)
	}
	if _, err := c.RegionOf("ghost.t"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("missing: %v", err)
	}
}

func TestTableTypeStrings(t *testing.T) {
	for ty, want := range map[TableType]string{
		Native: "NATIVE", External: "EXTERNAL", BigLake: "BIGLAKE", Managed: "MANAGED", Object: "OBJECT",
	} {
		if ty.String() != want {
			t.Errorf("%d.String() = %q", ty, ty.String())
		}
	}
}
