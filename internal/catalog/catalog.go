// Package catalog implements BigQuery's logical catalog: datasets and
// table definitions. For BigLake tables the catalog — not
// self-describing files — is the source of truth for schema,
// location, connection and governance attachment (§3), which is what
// makes fine-grained security enforceable. The catalog lives in the
// control plane; Omni regions consult it cross-region (§5.6.1
// "BigQuery cross-region metadata availability").
package catalog

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"biglake/internal/vector"
)

// Errors returned by catalog operations.
var (
	ErrNotFound      = errors.New("catalog: not found")
	ErrAlreadyExists = errors.New("catalog: already exists")
	ErrInvalid       = errors.New("catalog: invalid definition")
)

// TableType distinguishes the storage/feature tiers a table can have.
type TableType int

// Table types, in historical order of introduction (§2.1, §3).
const (
	// Native tables live in BigQuery managed storage.
	Native TableType = iota
	// External tables are the legacy read-only in-situ tables:
	// self-describing files, user-credential access, no governance,
	// no acceleration.
	External
	// BigLake tables are external data promoted to first-class
	// citizens: delegated access, fine-grained governance, metadata
	// caching (§3.1–3.4).
	BigLake
	// Managed tables (BLMTs) are fully managed tables in open format
	// on customer buckets (§3.5).
	Managed
	// Object tables expose object-store metadata over unstructured
	// data as rows (§4.1).
	Object
)

func (t TableType) String() string {
	switch t {
	case Native:
		return "NATIVE"
	case External:
		return "EXTERNAL"
	case BigLake:
		return "BIGLAKE"
	case Managed:
		return "MANAGED"
	case Object:
		return "OBJECT"
	}
	return "?"
}

// Dataset is a named collection of tables pinned to a region.
type Dataset struct {
	Name   string
	Region string // e.g. "gcp-us", "aws-us-east-1", "azure-eastus"
	Cloud  string // "gcp", "aws", "azure"
}

// Table is a catalog table definition.
type Table struct {
	Dataset string
	Name    string
	Type    TableType
	Schema  vector.Schema

	// Storage location for External/BigLake/Managed/Object tables.
	Cloud  string
	Bucket string
	Prefix string

	// Connection names the delegated-access connection (§3.1);
	// required for BigLake, Managed, and Object tables.
	Connection string

	// PartitionColumn, if set, names the hive-style partition key
	// encoded in file paths (prefix/<col>=<val>/file).
	PartitionColumn string

	// MetadataCaching enables Big Metadata acceleration (§3.3).
	MetadataCaching bool
	// MetadataStaleness bounds how old the cached metadata may be
	// before the engine triggers a background refresh (0 = refresh
	// only on demand).
	MetadataStaleness time.Duration

	CreatedAt time.Duration
}

// FullName returns "dataset.table".
func (t Table) FullName() string { return t.Dataset + "." + t.Name }

// RequiresConnection reports whether this table type must carry a
// delegated-access connection.
func (t Table) RequiresConnection() bool {
	switch t.Type {
	case BigLake, Managed, Object:
		return true
	}
	return false
}

// ObjectTableSchema is the fixed schema Object tables expose (§4.1):
// one row per object with its attributes.
func ObjectTableSchema() vector.Schema {
	return vector.NewSchema(
		vector.Field{Name: "uri", Type: vector.String},
		vector.Field{Name: "size", Type: vector.Int64},
		vector.Field{Name: "content_type", Type: vector.String},
		vector.Field{Name: "create_time", Type: vector.Timestamp},
		vector.Field{Name: "update_time", Type: vector.Timestamp},
		vector.Field{Name: "generation", Type: vector.Int64},
	)
}

// Catalog is the metadata service. It is safe for concurrent use.
type Catalog struct {
	mu       sync.RWMutex
	datasets map[string]Dataset
	tables   map[string]Table
}

// New returns an empty catalog.
func New() *Catalog {
	return &Catalog{
		datasets: make(map[string]Dataset),
		tables:   make(map[string]Table),
	}
}

// CreateDataset registers a dataset.
func (c *Catalog) CreateDataset(d Dataset) error {
	if d.Name == "" {
		return fmt.Errorf("%w: dataset needs a name", ErrInvalid)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.datasets[d.Name]; ok {
		return fmt.Errorf("%w: dataset %q", ErrAlreadyExists, d.Name)
	}
	c.datasets[d.Name] = d
	return nil
}

// Dataset looks up a dataset.
func (c *Catalog) Dataset(name string) (Dataset, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	d, ok := c.datasets[name]
	if !ok {
		return Dataset{}, fmt.Errorf("%w: dataset %q", ErrNotFound, name)
	}
	return d, nil
}

// CreateTable validates and registers a table definition.
func (c *Catalog) CreateTable(t Table) error {
	if t.Dataset == "" || t.Name == "" {
		return fmt.Errorf("%w: table needs dataset and name", ErrInvalid)
	}
	if strings.Contains(t.Name, ".") {
		return fmt.Errorf("%w: table name %q must not contain '.'", ErrInvalid, t.Name)
	}
	if t.RequiresConnection() && t.Connection == "" {
		return fmt.Errorf("%w: %s tables require a connection", ErrInvalid, t.Type)
	}
	if t.Type == Object {
		t.Schema = ObjectTableSchema()
	}
	if t.Schema.Len() == 0 {
		return fmt.Errorf("%w: table %s has no schema", ErrInvalid, t.FullName())
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.datasets[t.Dataset]; !ok {
		return fmt.Errorf("%w: dataset %q", ErrNotFound, t.Dataset)
	}
	key := t.FullName()
	if _, ok := c.tables[key]; ok {
		return fmt.Errorf("%w: table %q", ErrAlreadyExists, key)
	}
	c.tables[key] = t
	return nil
}

// Table resolves "dataset.table".
func (c *Catalog) Table(fullName string) (Table, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	t, ok := c.tables[fullName]
	if !ok {
		return Table{}, fmt.Errorf("%w: table %q", ErrNotFound, fullName)
	}
	return t, nil
}

// DropTable removes a table definition.
func (c *Catalog) DropTable(fullName string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.tables[fullName]; !ok {
		return fmt.Errorf("%w: table %q", ErrNotFound, fullName)
	}
	delete(c.tables, fullName)
	return nil
}

// UpdateTable replaces an existing definition (schema evolution,
// toggling metadata caching, ...).
func (c *Catalog) UpdateTable(t Table) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	key := t.FullName()
	if _, ok := c.tables[key]; !ok {
		return fmt.Errorf("%w: table %q", ErrNotFound, key)
	}
	c.tables[key] = t
	return nil
}

// ListTables returns the sorted full names of tables in a dataset.
func (c *Catalog) ListTables(dataset string) []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	var out []string
	for name, t := range c.tables {
		if t.Dataset == dataset {
			out = append(out, name)
		}
	}
	sort.Strings(out)
	return out
}

// RegionOf returns the region hosting a table's dataset.
func (c *Catalog) RegionOf(fullName string) (string, error) {
	t, err := c.Table(fullName)
	if err != nil {
		return "", err
	}
	d, err := c.Dataset(t.Dataset)
	if err != nil {
		return "", err
	}
	return d.Region, nil
}
