// Package mlmodel implements the model substrate for §4's inference
// experiments: a small tensor runtime, a synthetic image codec (the
// JPEG stand-in), a deterministic MLP image classifier (the ResNet-50
// stand-in), and a template document parser (the Document AI
// stand-in). The paper's §4 results concern *where* inference runs and
// how data flows — raw objects vs preprocessed tensors, worker memory,
// sandboxing, remote endpoints — not model accuracy, so the models
// here are tiny but exercise exactly those code paths.
package mlmodel

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"strings"

	"biglake/internal/sim"
)

// Errors returned by the model runtime.
var (
	ErrBadImage  = errors.New("mlmodel: malformed image")
	ErrBadTensor = errors.New("mlmodel: malformed tensor")
	ErrShape     = errors.New("mlmodel: tensor shape mismatch")
)

// Tensor is a dense n-dimensional array.
type Tensor struct {
	Shape []int
	Data  []float64
}

// NewTensor allocates a zero tensor.
func NewTensor(shape ...int) Tensor {
	n := 1
	for _, d := range shape {
		n *= d
	}
	return Tensor{Shape: append([]int(nil), shape...), Data: make([]float64, n)}
}

// Len returns the element count.
func (t Tensor) Len() int { return len(t.Data) }

// Bytes returns the serialized size, the unit exchanged between
// workers in Figure 7.
func (t Tensor) Bytes() int { return 8 + 4*len(t.Shape) + 8*len(t.Data) }

// Encode serializes the tensor.
func (t Tensor) Encode() []byte {
	out := make([]byte, 0, t.Bytes())
	var tmp [8]byte
	binary.LittleEndian.PutUint64(tmp[:], uint64(len(t.Shape)))
	out = append(out, tmp[:]...)
	for _, d := range t.Shape {
		binary.LittleEndian.PutUint32(tmp[:4], uint32(d))
		out = append(out, tmp[:4]...)
	}
	for _, v := range t.Data {
		binary.LittleEndian.PutUint64(tmp[:], math.Float64bits(v))
		out = append(out, tmp[:]...)
	}
	return out
}

// DecodeTensor parses a serialized tensor.
func DecodeTensor(data []byte) (Tensor, error) {
	if len(data) < 8 {
		return Tensor{}, ErrBadTensor
	}
	nd := int(binary.LittleEndian.Uint64(data[:8]))
	data = data[8:]
	if nd <= 0 || nd > 8 || len(data) < 4*nd {
		return Tensor{}, ErrBadTensor
	}
	shape := make([]int, nd)
	n := 1
	for i := range shape {
		shape[i] = int(binary.LittleEndian.Uint32(data[:4]))
		data = data[4:]
		n *= shape[i]
	}
	if len(data) != 8*n {
		return Tensor{}, fmt.Errorf("%w: want %d elements, have %d bytes", ErrBadTensor, n, len(data))
	}
	t := Tensor{Shape: shape, Data: make([]float64, n)}
	for i := range t.Data {
		t.Data[i] = math.Float64frombits(binary.LittleEndian.Uint64(data[:8]))
		data = data[8:]
	}
	return t, nil
}

// Image is a decoded grayscale image.
type Image struct {
	Width  int
	Height int
	Pixels []byte // row-major, one byte per pixel
}

// sjpgMagic heads the synthetic image format ("simulated JPEG").
const sjpgMagic = "SJPG"

// EncodeImage serializes an image in the synthetic format.
func EncodeImage(img Image) ([]byte, error) {
	if img.Width <= 0 || img.Height <= 0 || len(img.Pixels) != img.Width*img.Height {
		return nil, fmt.Errorf("%w: %dx%d with %d pixels", ErrBadImage, img.Width, img.Height, len(img.Pixels))
	}
	out := make([]byte, 0, 12+len(img.Pixels))
	out = append(out, sjpgMagic...)
	var tmp [4]byte
	binary.LittleEndian.PutUint32(tmp[:], uint32(img.Width))
	out = append(out, tmp[:]...)
	binary.LittleEndian.PutUint32(tmp[:], uint32(img.Height))
	out = append(out, tmp[:]...)
	out = append(out, img.Pixels...)
	return out, nil
}

// DecodeImage parses the synthetic image format — the sandboxed,
// memory-hungry step of §4.2.1 (the raw image is much larger than the
// tensor it becomes).
func DecodeImage(data []byte) (Image, error) {
	if len(data) < 12 || string(data[:4]) != sjpgMagic {
		return Image{}, ErrBadImage
	}
	w := int(binary.LittleEndian.Uint32(data[4:8]))
	h := int(binary.LittleEndian.Uint32(data[8:12]))
	if w <= 0 || h <= 0 || len(data) != 12+w*h {
		return Image{}, fmt.Errorf("%w: header %dx%d, %d bytes", ErrBadImage, w, h, len(data))
	}
	return Image{Width: w, Height: h, Pixels: data[12:]}, nil
}

// RandomImage generates a deterministic test image whose dominant
// intensity encodes a class, so classifier behaviour is verifiable.
func RandomImage(rng *sim.RNG, w, h int, class int, numClasses int) Image {
	img := Image{Width: w, Height: h, Pixels: make([]byte, w*h)}
	base := byte((class*256/numClasses + 128/numClasses) % 256)
	for i := range img.Pixels {
		jitter := byte(rng.Intn(16))
		img.Pixels[i] = base + jitter - 8
	}
	return img
}

// Preprocess decodes an encoded image and converts it to a normalized
// side x side input tensor (decode, resize, color-convert — §4.2.1).
func Preprocess(encoded []byte, side int) (Tensor, error) {
	img, err := DecodeImage(encoded)
	if err != nil {
		return Tensor{}, err
	}
	t := NewTensor(side, side)
	for y := 0; y < side; y++ {
		for x := 0; x < side; x++ {
			sx := x * img.Width / side
			sy := y * img.Height / side
			t.Data[y*side+x] = float64(img.Pixels[sy*img.Width+sx]) / 255.0
		}
	}
	return t, nil
}

// Classifier is a deterministic one-hidden-layer MLP image
// classifier.
type Classifier struct {
	Name      string
	InputSide int // input tensor is InputSide x InputSide
	Hidden    int
	Classes   []string
	SizeBytes int64 // declared model size; drives the §4.2 memory limit
	w1, b1    []float64
	w2, b2    []float64
}

// NewClassifier builds a classifier with hand-constructed weights that
// make the network classify inputs by mean intensity band: hidden unit
// h computes relu(mean(x) - h/H) (all first-layer weights are 1/in
// with bias -h/H), and class k rewards activations below its band
// center and penalizes ones above it, so the argmax class peaks when
// mean(x) sits at the class's band center. Predictions are therefore
// verifiable in tests while the forward pass is a genuine MLP. A small
// seed-derived jitter keeps weights non-degenerate.
func NewClassifier(name string, inputSide, hidden int, classes []string, seed uint64) *Classifier {
	rng := sim.NewRNG(seed)
	in := inputSide * inputSide
	nc := len(classes)
	c := &Classifier{
		Name: name, InputSide: inputSide, Hidden: hidden, Classes: classes,
		SizeBytes: int64(8 * (in*hidden + hidden + hidden*nc + nc)),
		w1:        make([]float64, in*hidden),
		b1:        make([]float64, hidden),
		w2:        make([]float64, hidden*nc),
		b2:        make([]float64, nc),
	}
	for h := 0; h < hidden; h++ {
		for i := 0; i < in; i++ {
			c.w1[h*in+i] = 1.0/float64(in) + (rng.Float64()-0.5)*1e-9
		}
		c.b1[h] = -float64(h) / float64(hidden)
	}
	for h := 0; h < hidden; h++ {
		for k := 0; k < nc; k++ {
			// Class k rewards activations below its band's upper edge
			// (k+1)/nc and penalizes ones above it, putting the
			// decision boundary between classes k and k+1 exactly at
			// that edge.
			edge := float64(k+1) / float64(nc)
			if float64(h)/float64(hidden) < edge {
				c.w2[h*nc+k] = 1
			} else {
				c.w2[h*nc+k] = -1
			}
		}
	}
	return c
}

// Predict runs the MLP forward pass over one preprocessed input
// tensor, returning the argmax label and per-class scores.
func (c *Classifier) Predict(t Tensor) (string, []float64, error) {
	in := c.InputSide * c.InputSide
	if t.Len() != in {
		return "", nil, fmt.Errorf("%w: got %d elements, model wants %d", ErrShape, t.Len(), in)
	}
	nc := len(c.Classes)
	act := make([]float64, c.Hidden)
	for h := 0; h < c.Hidden; h++ {
		sum := c.b1[h]
		w := c.w1[h*in : (h+1)*in]
		for i, v := range t.Data {
			sum += v * w[i]
		}
		act[h] = math.Max(0, sum) // ReLU
	}
	scores := make([]float64, nc)
	for k := 0; k < nc; k++ {
		sum := c.b2[k]
		for h := 0; h < c.Hidden; h++ {
			sum += act[h] * c.w2[h*nc+k]
		}
		scores[k] = sum
	}
	best := 0
	for k := 1; k < nc; k++ {
		if scores[k] > scores[best] {
			best = k
		}
	}
	return c.Classes[best], scores, nil
}

// DocParser extracts key/value entities from the synthetic document
// format: UTF-8 text with "key: value" lines — the Document AI
// stand-in for ML.PROCESS_DOCUMENT.
type DocParser struct {
	Name string
	// Fields restricts extraction to these keys (nil = all).
	Fields []string
}

// Parse extracts entities from one document.
func (p *DocParser) Parse(doc []byte) (map[string]string, error) {
	out := make(map[string]string)
	for _, line := range strings.Split(string(doc), "\n") {
		i := strings.IndexByte(line, ':')
		if i <= 0 {
			continue
		}
		key := strings.TrimSpace(line[:i])
		val := strings.TrimSpace(line[i+1:])
		if key == "" {
			continue
		}
		if p.Fields != nil {
			keep := false
			for _, f := range p.Fields {
				if f == key {
					keep = true
				}
			}
			if !keep {
				continue
			}
		}
		out[key] = val
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("mlmodel: document has no extractable fields")
	}
	return out, nil
}

// MakeInvoice renders a synthetic invoice document for tests and
// examples.
func MakeInvoice(id int, vendor string, total float64) []byte {
	return []byte(fmt.Sprintf("invoice_id: INV-%05d\nvendor: %s\ntotal: %.2f\ncurrency: USD\n", id, vendor, total))
}
