package mlmodel

import (
	"errors"
	"testing"
	"testing/quick"

	"biglake/internal/sim"
)

func TestTensorEncodeDecode(t *testing.T) {
	tn := NewTensor(2, 3)
	for i := range tn.Data {
		tn.Data[i] = float64(i) * 1.5
	}
	back, err := DecodeTensor(tn.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Shape) != 2 || back.Shape[0] != 2 || back.Shape[1] != 3 {
		t.Fatalf("shape = %v", back.Shape)
	}
	for i := range tn.Data {
		if back.Data[i] != tn.Data[i] {
			t.Fatalf("data[%d] = %v", i, back.Data[i])
		}
	}
}

func TestTensorDecodeRejectsGarbage(t *testing.T) {
	for _, data := range [][]byte{nil, {1, 2, 3}, make([]byte, 20)} {
		if _, err := DecodeTensor(data); !errors.Is(err, ErrBadTensor) {
			t.Errorf("DecodeTensor(%d bytes) = %v", len(data), err)
		}
	}
	// Truncated payload.
	tn := NewTensor(4, 4)
	enc := tn.Encode()
	if _, err := DecodeTensor(enc[:len(enc)-3]); err == nil {
		t.Fatal("truncated tensor should fail")
	}
}

func TestTensorBytes(t *testing.T) {
	tn := NewTensor(8, 8)
	if got := len(tn.Encode()); got != tn.Bytes() {
		t.Fatalf("Bytes() = %d, encoded = %d", tn.Bytes(), got)
	}
}

func TestImageRoundTrip(t *testing.T) {
	img := Image{Width: 4, Height: 2, Pixels: []byte{0, 1, 2, 3, 4, 5, 6, 7}}
	enc, err := EncodeImage(img)
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodeImage(enc)
	if err != nil {
		t.Fatal(err)
	}
	if back.Width != 4 || back.Height != 2 || back.Pixels[5] != 5 {
		t.Fatalf("back = %+v", back)
	}
}

func TestImageValidation(t *testing.T) {
	if _, err := EncodeImage(Image{Width: 2, Height: 2, Pixels: []byte{1}}); !errors.Is(err, ErrBadImage) {
		t.Fatal("bad pixel count should fail")
	}
	if _, err := DecodeImage([]byte("JPEG")); !errors.Is(err, ErrBadImage) {
		t.Fatal("bad magic should fail")
	}
	enc, _ := EncodeImage(Image{Width: 2, Height: 2, Pixels: make([]byte, 4)})
	if _, err := DecodeImage(enc[:len(enc)-1]); !errors.Is(err, ErrBadImage) {
		t.Fatal("truncated image should fail")
	}
}

func TestPreprocessShapeAndRange(t *testing.T) {
	rng := sim.NewRNG(1)
	img := RandomImage(rng, 64, 48, 2, 4)
	enc, _ := EncodeImage(img)
	tn, err := Preprocess(enc, 8)
	if err != nil {
		t.Fatal(err)
	}
	if tn.Len() != 64 {
		t.Fatalf("tensor len = %d", tn.Len())
	}
	for _, v := range tn.Data {
		if v < 0 || v > 1 {
			t.Fatalf("unnormalized value %v", v)
		}
	}
}

func TestPreprocessShrinksData(t *testing.T) {
	// The Figure 7 premise: tensors are much smaller than raw images.
	rng := sim.NewRNG(2)
	img := RandomImage(rng, 512, 512, 0, 4)
	enc, _ := EncodeImage(img)
	tn, _ := Preprocess(enc, 16)
	if tn.Bytes()*10 >= len(enc) {
		t.Fatalf("tensor %d bytes vs image %d — want >10x reduction", tn.Bytes(), len(enc))
	}
}

func TestClassifierPredictsIntensityBands(t *testing.T) {
	classes := []string{"dark", "dim", "bright", "blinding"}
	model := NewClassifier("resnet50", 8, 16, classes, 42)
	rng := sim.NewRNG(3)
	for class := range classes {
		correct := 0
		for trial := 0; trial < 20; trial++ {
			img := RandomImage(rng, 32, 32, class, len(classes))
			enc, _ := EncodeImage(img)
			tn, err := Preprocess(enc, 8)
			if err != nil {
				t.Fatal(err)
			}
			label, scores, err := model.Predict(tn)
			if err != nil {
				t.Fatal(err)
			}
			if len(scores) != len(classes) {
				t.Fatal("score arity")
			}
			if label == classes[class] {
				correct++
			}
		}
		if correct < 16 {
			t.Fatalf("class %q: %d/20 correct", classes[class], correct)
		}
	}
}

func TestClassifierDeterministic(t *testing.T) {
	m1 := NewClassifier("m", 8, 8, []string{"a", "b"}, 7)
	m2 := NewClassifier("m", 8, 8, []string{"a", "b"}, 7)
	tn := NewTensor(8, 8)
	for i := range tn.Data {
		tn.Data[i] = 0.3
	}
	l1, s1, _ := m1.Predict(tn)
	l2, s2, _ := m2.Predict(tn)
	if l1 != l2 || s1[0] != s2[0] {
		t.Fatal("same seed must give identical models")
	}
}

func TestClassifierShapeMismatch(t *testing.T) {
	m := NewClassifier("m", 8, 8, []string{"a", "b"}, 1)
	if _, _, err := m.Predict(NewTensor(4, 4)); !errors.Is(err, ErrShape) {
		t.Fatalf("err = %v", err)
	}
}

func TestClassifierSizeBytes(t *testing.T) {
	m := NewClassifier("m", 8, 16, []string{"a", "b", "c"}, 1)
	want := int64(8 * (64*16 + 16 + 16*3 + 3))
	if m.SizeBytes != want {
		t.Fatalf("SizeBytes = %d, want %d", m.SizeBytes, want)
	}
}

func TestDocParser(t *testing.T) {
	p := &DocParser{Name: "invoice_parser"}
	doc := MakeInvoice(7, "ACME Corp", 123.45)
	got, err := p.Parse(doc)
	if err != nil {
		t.Fatal(err)
	}
	if got["invoice_id"] != "INV-00007" || got["vendor"] != "ACME Corp" || got["total"] != "123.45" {
		t.Fatalf("parsed = %v", got)
	}
}

func TestDocParserFieldFilter(t *testing.T) {
	p := &DocParser{Name: "p", Fields: []string{"vendor"}}
	got, err := p.Parse(MakeInvoice(1, "X", 1))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got["vendor"] != "X" {
		t.Fatalf("filtered = %v", got)
	}
}

func TestDocParserEmptyDocument(t *testing.T) {
	p := &DocParser{Name: "p"}
	if _, err := p.Parse([]byte("no fields here")); err == nil {
		t.Fatal("field-free document should fail")
	}
}

func TestPropertyImageRoundTrip(t *testing.T) {
	if err := quick.Check(func(wRaw, hRaw uint8, seed uint64) bool {
		w, h := int(wRaw%32)+1, int(hRaw%32)+1
		rng := sim.NewRNG(seed)
		img := RandomImage(rng, w, h, 1, 3)
		enc, err := EncodeImage(img)
		if err != nil {
			return false
		}
		back, err := DecodeImage(enc)
		if err != nil || back.Width != w || back.Height != h {
			return false
		}
		for i := range img.Pixels {
			if back.Pixels[i] != img.Pixels[i] {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyTensorRoundTrip(t *testing.T) {
	if err := quick.Check(func(vals []float64) bool {
		if len(vals) == 0 {
			return true
		}
		tn := Tensor{Shape: []int{len(vals)}, Data: vals}
		back, err := DecodeTensor(tn.Encode())
		if err != nil {
			return false
		}
		for i := range vals {
			if back.Data[i] != vals[i] && !(back.Data[i] != back.Data[i] && vals[i] != vals[i]) { // NaN-safe
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
