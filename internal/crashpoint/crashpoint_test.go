package crashpoint

import "testing"

func TestNilInjectorIsNoop(t *testing.T) {
	var in *Injector
	in.At("anything") // must not panic
}

func TestArmFiresAtExactHit(t *testing.T) {
	in := New()
	in.Arm("step.b", 1)
	ran := 0
	sig, err := Run(func() error {
		in.At("step.a")
		ran++
		in.At("step.b") // hit 0: survives
		ran++
		in.At("step.b") // hit 1: dies here
		ran++
		return nil
	})
	if err != nil {
		t.Fatalf("err = %v", err)
	}
	if sig == nil || sig.Label != "step.b" || sig.Hit != 1 {
		t.Fatalf("sig = %v", sig)
	}
	if ran != 2 {
		t.Fatalf("ran %d steps past the crash", ran)
	}
	if f := in.Fired(); f == nil || *f != *sig {
		t.Fatalf("Fired = %v", f)
	}
	// Disarmed after firing: the retry survives the same step.
	if sig, _ := Run(func() error { in.At("step.b"); return nil }); sig != nil {
		t.Fatalf("re-crashed after auto-disarm: %v", sig)
	}
}

func TestRecordingEnumeratesHits(t *testing.T) {
	in := New()
	if sig, err := Run(func() error {
		in.At("x")
		in.At("y")
		in.At("x")
		return nil
	}); sig != nil || err != nil {
		t.Fatalf("sig=%v err=%v", sig, err)
	}
	hits := in.Hits()
	want := []Hit{{"x", 0}, {"y", 0}, {"x", 1}}
	if len(hits) != len(want) {
		t.Fatalf("hits = %v", hits)
	}
	for i := range want {
		if hits[i] != want[i] {
			t.Fatalf("hit %d = %v, want %v", i, hits[i], want[i])
		}
	}
}

func TestChaosIsDeterministic(t *testing.T) {
	fire := func(seed uint64) *Signal {
		in := New()
		in.Chaos(seed, 0.3)
		sig, _ := Run(func() error {
			for i := 0; i < 50; i++ {
				in.At("loop.step")
			}
			return nil
		})
		return sig
	}
	a, b := fire(7), fire(7)
	if (a == nil) != (b == nil) {
		t.Fatalf("non-deterministic: %v vs %v", a, b)
	}
	if a != nil && *a != *b {
		t.Fatalf("non-deterministic: %v vs %v", a, b)
	}
}

func TestRunPassesThroughErrorsAndForeignPanics(t *testing.T) {
	sentinel := &struct{ s string }{"boom"}
	defer func() {
		if r := recover(); r != sentinel {
			t.Fatalf("foreign panic swallowed: %v", r)
		}
	}()
	if sig, err := Run(func() error { return nil }); sig != nil || err != nil {
		t.Fatalf("clean run: sig=%v err=%v", sig, err)
	}
	Run(func() error { panic(sentinel) })
}
