// Package crashpoint simulates whole-process crashes at labeled
// protocol steps. Where internal/objstore's fault injection models a
// flaky *remote* (the call fails, the process lives on and may retry),
// a crash point models the local process dying mid-protocol: execution
// unwinds immediately to a recovery boundary, all in-memory state is
// presumed lost, and only durable state — object-store contents,
// journal records, the catalog — survives. Recovery code then has to
// reconstruct a consistent world from that durable state alone.
//
// Protocol code marks its steps with labels:
//
//	s.Crash.At("flush.after_put")
//
// At is nil-safe and free when nothing is armed, so production paths
// carry their labels unconditionally. A test arms one (label, hit)
// pair — or a seeded probabilistic profile — and wraps the operation
// in Run, which converts the injected panic into a *Signal:
//
//	sig, err := crashpoint.Run(func() error { return op() })
//	if sig != nil { /* the "process" died at sig.Label; recover */ }
//
// Determinism contract: in Chaos mode, whether a given At call fires
// is a pure function of (seed, label, per-label hit index), exactly
// like objstore.FaultProfile — two runs of the same workload under the
// same seed crash at the same step.
package crashpoint

import (
	"fmt"
	"sync"
)

// Signal is the panic payload of an injected crash. It is not an
// error: nothing in the crashed call stack is supposed to handle it.
type Signal struct {
	Label string
	// Hit is the 0-based occurrence index of Label at which the crash
	// fired.
	Hit int
}

func (s Signal) String() string { return fmt.Sprintf("crash at %s #%d", s.Label, s.Hit) }

// Hit records one At call, for enumerating a protocol's crash surface.
type Hit struct {
	Label string
	N     int // 0-based occurrence index of this label
}

// Injector decides, per labeled step, whether the process "dies"
// there. The zero value and the nil injector inject nothing.
type Injector struct {
	mu     sync.Mutex
	counts map[string]int
	hits   []Hit

	armed    bool
	armLabel string
	armHit   int

	seed uint64
	rate float64

	fired *Signal
}

// New returns an idle injector that records every labeled step it
// passes through.
func New() *Injector { return &Injector{counts: make(map[string]int)} }

// Arm schedules a crash at the hit-th occurrence (0-based) of label.
// Arming replaces any previous schedule. The injector disarms itself
// when it fires: the recovered process does not re-crash at the same
// step while retrying.
func (in *Injector) Arm(label string, hit int) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.armed = true
	in.armLabel = label
	in.armHit = hit
	in.fired = nil
}

// Chaos arms a seeded probabilistic profile: each (label, hit) fires
// with probability rate, decided purely by (seed, label, hit). Like
// Arm, the injector disarms after firing.
func (in *Injector) Chaos(seed uint64, rate float64) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.seed = seed
	in.rate = rate
	in.fired = nil
}

// Disarm cancels any pending schedule or profile.
func (in *Injector) Disarm() {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.armed = false
	in.rate = 0
}

// Reset clears hit counters and the fired record, keeping nothing
// armed; used between recording and replay passes.
func (in *Injector) Reset() {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.counts = make(map[string]int)
	in.hits = nil
	in.armed = false
	in.rate = 0
	in.fired = nil
}

// Hits returns every labeled step passed so far, in order.
func (in *Injector) Hits() []Hit {
	in.mu.Lock()
	defer in.mu.Unlock()
	return append([]Hit(nil), in.hits...)
}

// Fired reports the crash that fired, if any.
func (in *Injector) Fired() *Signal {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.fired
}

// splitmix64 finalizer, as in objstore's fault roll.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return x
}

func hash64(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

func roll(seed uint64, label string, hit int) float64 {
	x := mix64(seed ^ hash64(label) + uint64(hit)*0x9E3779B97F4A7C15)
	return float64(x>>11) / float64(1<<53)
}

// At marks one labeled protocol step. If a crash is scheduled here it
// panics with a Signal, which Run converts back into a value at the
// recovery boundary. Nil-safe: a nil injector is a no-op, so wiring
// can leave the field unset in production assemblies.
func (in *Injector) At(label string) {
	if in == nil {
		return
	}
	in.mu.Lock()
	if in.counts == nil {
		in.counts = make(map[string]int)
	}
	n := in.counts[label]
	in.counts[label]++
	in.hits = append(in.hits, Hit{Label: label, N: n})

	fire := false
	if in.armed && label == in.armLabel && n == in.armHit {
		fire = true
		in.armed = false
	} else if in.rate > 0 && roll(in.seed, label, n) < in.rate {
		fire = true
		in.rate = 0
	}
	if !fire {
		in.mu.Unlock()
		return
	}
	sig := Signal{Label: label, Hit: n}
	in.fired = &sig
	in.mu.Unlock()
	panic(sig)
}

// Run executes op inside a recovery boundary: an injected crash
// unwinds to here and is returned as a *Signal instead of a panic.
// Any other panic propagates untouched. When sig is non-nil the
// operation's in-memory effects must be considered lost — callers
// rebuild state from durable storage, they do not keep using the
// crashed structures.
func Run(op func() error) (sig *Signal, err error) {
	defer func() {
		if r := recover(); r != nil {
			if s, ok := r.(Signal); ok {
				sig = &s
				return
			}
			panic(r)
		}
	}()
	err = op()
	return
}
