// Package oracle implements a deliberately slow, obviously-correct
// reference executor for the SQL subset the engine supports, plus a
// seeded query/DML generator and a differential harness that
// cross-checks every acceleration path (metadata caching, partition
// and file pruning, DPP, vectorized kernels, BLMT compaction, chaos
// retries) against this oracle.
//
// The executor interprets queries row-at-a-time over plain Go slices
// of vector.Value. It shares no code with the engine's scan, prune,
// cache or kernel layers: its only inputs are the parsed AST and the
// in-memory table rows, so any divergence between the two implicates
// the engine's fast paths, not a shared bug. Where the engine's
// semantics are deliberate (two-valued boolean logic with NULL
// treated as false, integer division producing float, NULL on divide
// by zero, first-encounter group ordering, NULLs-first sorting) the
// oracle mirrors them from the SQL semantics definition, not from the
// engine's code paths.
package oracle

import (
	"fmt"
	"sort"
	"strings"

	"biglake/internal/sqlparse"
	"biglake/internal/vector"
)

// Table is one in-memory reference table: a schema with bare column
// names and the authoritative row set.
type Table struct {
	Name   string // full "dataset.table" name
	Schema vector.Schema
	Rows   [][]vector.Value
}

// Clone deep-copies the table (rows are copied; values are value
// types already).
func (t *Table) Clone() *Table {
	rows := make([][]vector.Value, len(t.Rows))
	for i, r := range t.Rows {
		rows[i] = append([]vector.Value(nil), r...)
	}
	return &Table{Name: t.Name, Schema: t.Schema, Rows: rows}
}

// DB is the oracle's world: the set of reference tables DML mutates.
type DB struct {
	Tables map[string]*Table
}

// NewDB builds an empty oracle database.
func NewDB() *DB { return &DB{Tables: map[string]*Table{}} }

// Add installs a table (replacing any previous definition).
func (db *DB) Add(t *Table) { db.Tables[t.Name] = t }

// Clone deep-copies the database.
func (db *DB) Clone() *DB {
	out := NewDB()
	for _, t := range db.Tables {
		out.Add(t.Clone())
	}
	return out
}

// Resultset is the oracle's answer to a statement: ordered rows with
// named, typed columns — the reference shape engine batches are
// compared against.
type Resultset struct {
	Names []string
	Types []vector.Type
	Rows  [][]vector.Value
}

// ExecSQL parses and executes one statement against the database.
func (db *DB) ExecSQL(sql string) (*Resultset, error) {
	stmt, err := sqlparse.Parse(sql)
	if err != nil {
		return nil, err
	}
	return db.Exec(stmt)
}

// Exec executes a parsed statement. SELECT returns its rows; DML
// mutates the database and returns the same result shape the engine
// reports (rows_deleted / rows_updated counts, empty batch for
// INSERT).
func (db *DB) Exec(stmt sqlparse.Statement) (*Resultset, error) {
	switch s := stmt.(type) {
	case *sqlparse.SelectStmt:
		r, err := db.execSelect(s)
		if err != nil {
			return nil, err
		}
		return r.toResultset(), nil
	case *sqlparse.InsertStmt:
		return db.execInsert(s)
	case *sqlparse.DeleteStmt:
		return db.execDelete(s)
	case *sqlparse.UpdateStmt:
		return db.execUpdate(s)
	case *sqlparse.CreateTableAsStmt:
		return db.execCTAS(s)
	}
	return nil, fmt.Errorf("oracle: unsupported statement %T", stmt)
}

// rel is an intermediate relation: column names (possibly
// "qualifier.column"), column types, and rows.
type rel struct {
	names []string
	types []vector.Type
	rows  [][]vector.Value
}

func (r *rel) toResultset() *Resultset {
	return &Resultset{Names: r.names, Types: r.types, Rows: r.rows}
}

// index returns the position of an exact column name, or -1.
func (r *rel) index(name string) int {
	for i, n := range r.names {
		if n == name {
			return i
		}
	}
	return -1
}

// resolve finds the column a reference names: exact match first, then
// a unique ".name" suffix for bare references over qualified schemas.
func (r *rel) resolve(ref sqlparse.ColumnRef) (int, error) {
	if ref.Table != "" {
		if i := r.index(ref.Table + "." + ref.Name); i >= 0 {
			return i, nil
		}
		return -1, fmt.Errorf("oracle: unknown column %s.%s", ref.Table, ref.Name)
	}
	if i := r.index(ref.Name); i >= 0 {
		return i, nil
	}
	found := -1
	for i, n := range r.names {
		if strings.HasSuffix(n, "."+ref.Name) {
			if found >= 0 {
				return -1, fmt.Errorf("oracle: ambiguous column %q", ref.Name)
			}
			found = i
		}
	}
	if found < 0 {
		return -1, fmt.Errorf("oracle: unknown column %q", ref.Name)
	}
	return found, nil
}

// typeOf statically types an expression the way the engine's column
// pipeline would, surfacing the same class of semantic errors
// (unknown columns, non-boolean conditions, arithmetic over
// non-numeric types) even over zero rows.
func (r *rel) typeOf(e sqlparse.Expr) (vector.Type, error) {
	switch ex := e.(type) {
	case sqlparse.ColumnRef:
		i, err := r.resolve(ex)
		if err != nil {
			return vector.Invalid, err
		}
		return r.types[i], nil
	case sqlparse.Literal:
		if ex.Value.IsNull() {
			return vector.Int64, nil // typed-NULL columns are INT64
		}
		return ex.Value.Type, nil
	case sqlparse.Not:
		if err := r.boolCheck(ex.E); err != nil {
			return vector.Invalid, err
		}
		return vector.Bool, nil
	case sqlparse.Binary:
		switch ex.Op {
		case "AND", "OR":
			if err := r.boolCheck(ex.L); err != nil {
				return vector.Invalid, err
			}
			if err := r.boolCheck(ex.R); err != nil {
				return vector.Invalid, err
			}
			return vector.Bool, nil
		case "=", "!=", "<", "<=", ">", ">=":
			// Comparisons type-check their operands only as columns.
			if _, err := r.cmpOperandType(ex); err != nil {
				return vector.Invalid, err
			}
			return vector.Bool, nil
		case "+", "-", "*", "/":
			lt, err := r.typeOf(ex.L)
			if err != nil {
				return vector.Invalid, err
			}
			rt, err := r.typeOf(ex.R)
			if err != nil {
				return vector.Invalid, err
			}
			if !numericType(lt) || !numericType(rt) {
				if ex.Op == "+" && (lt == vector.String || rt == vector.String) {
					return vector.String, nil
				}
				return vector.Invalid, fmt.Errorf("oracle: arithmetic over %v and %v", lt, rt)
			}
			if ex.Op == "/" || lt == vector.Float64 || rt == vector.Float64 {
				return vector.Float64, nil
			}
			return vector.Int64, nil
		}
		return vector.Invalid, fmt.Errorf("oracle: operator %q", ex.Op)
	case sqlparse.Call:
		if sqlparse.AggregateFuncs[ex.Name] {
			return vector.Invalid, fmt.Errorf("oracle: aggregate %s outside GROUP BY context", ex.Name)
		}
		return vector.Invalid, fmt.Errorf("oracle: no such function %s", ex.Name)
	}
	return vector.Invalid, fmt.Errorf("oracle: expression %T", e)
}

// cmpOperandType types both sides of a comparison. The engine's
// comparison kernels accept any operand types, so this only surfaces
// resolution/arithmetic errors from the operand subtrees.
func (r *rel) cmpOperandType(ex sqlparse.Binary) (vector.Type, error) {
	// Mirror the engine's evaluation order: with a literal on the
	// right only the left side is evaluated, and vice versa.
	if _, ok := ex.R.(sqlparse.Literal); ok {
		return r.typeOf(ex.L)
	}
	if _, ok := ex.L.(sqlparse.Literal); ok {
		return r.typeOf(ex.R)
	}
	if _, err := r.typeOf(ex.L); err != nil {
		return vector.Invalid, err
	}
	return r.typeOf(ex.R)
}

// boolCheck requires the expression to be statically boolean.
func (r *rel) boolCheck(e sqlparse.Expr) error {
	t, err := r.typeOf(e)
	if err != nil {
		return err
	}
	if t != vector.Bool {
		return fmt.Errorf("oracle: expected BOOL condition, got %v", t)
	}
	return nil
}

func numericType(t vector.Type) bool {
	return t == vector.Int64 || t == vector.Float64 || t == vector.Timestamp
}

var cmpOpMap = map[string]vector.CmpOp{
	"=": vector.EQ, "!=": vector.NE, "<": vector.LT, "<=": vector.LE, ">": vector.GT, ">=": vector.GE,
}

// evalRow evaluates a scalar expression over one row.
func (r *rel) evalRow(row []vector.Value, e sqlparse.Expr) (vector.Value, error) {
	switch ex := e.(type) {
	case sqlparse.ColumnRef:
		i, err := r.resolve(ex)
		if err != nil {
			return vector.NullValue, err
		}
		return row[i], nil
	case sqlparse.Literal:
		return ex.Value, nil
	case sqlparse.Not:
		b, err := r.evalBoolRow(row, ex.E)
		if err != nil {
			return vector.NullValue, err
		}
		return vector.BoolValue(!b), nil
	case sqlparse.Binary:
		return r.evalBinaryRow(row, ex)
	case sqlparse.Call:
		if sqlparse.AggregateFuncs[ex.Name] {
			return vector.NullValue, fmt.Errorf("oracle: aggregate %s outside GROUP BY context", ex.Name)
		}
		return vector.NullValue, fmt.Errorf("oracle: no such function %s", ex.Name)
	}
	return vector.NullValue, fmt.Errorf("oracle: expression %T", e)
}

// evalBoolRow evaluates a boolean condition over one row with SQL's
// two-valued semantics: NULL counts as false.
func (r *rel) evalBoolRow(row []vector.Value, e sqlparse.Expr) (bool, error) {
	if err := r.boolCheck(e); err != nil {
		return false, err
	}
	v, err := r.evalRow(row, e)
	if err != nil {
		return false, err
	}
	return !v.IsNull() && v.B, nil
}

func (r *rel) evalBinaryRow(row []vector.Value, ex sqlparse.Binary) (vector.Value, error) {
	switch ex.Op {
	case "AND", "OR":
		// Both sides are always evaluated (no short-circuit), like the
		// engine's mask kernels.
		l, err := r.evalBoolRow(row, ex.L)
		if err != nil {
			return vector.NullValue, err
		}
		rv, err := r.evalBoolRow(row, ex.R)
		if err != nil {
			return vector.NullValue, err
		}
		if ex.Op == "AND" {
			return vector.BoolValue(l && rv), nil
		}
		return vector.BoolValue(l || rv), nil
	}

	if op, ok := cmpOpMap[ex.Op]; ok {
		// Literal-vs-column comparisons evaluate only the non-literal
		// side; NULL operands compare false.
		if lit, ok := ex.R.(sqlparse.Literal); ok {
			lv, err := r.evalRow(row, ex.L)
			if err != nil {
				return vector.NullValue, err
			}
			if lv.IsNull() {
				return vector.BoolValue(false), nil
			}
			return vector.BoolValue(op.Eval(lv.Compare(lit.Value))), nil
		}
		if lit, ok := ex.L.(sqlparse.Literal); ok {
			rv, err := r.evalRow(row, ex.R)
			if err != nil {
				return vector.NullValue, err
			}
			if rv.IsNull() {
				return vector.BoolValue(false), nil
			}
			return vector.BoolValue(flipOp(op).Eval(rv.Compare(lit.Value))), nil
		}
		lv, err := r.evalRow(row, ex.L)
		if err != nil {
			return vector.NullValue, err
		}
		rv, err := r.evalRow(row, ex.R)
		if err != nil {
			return vector.NullValue, err
		}
		if lv.IsNull() || rv.IsNull() {
			return vector.BoolValue(false), nil
		}
		return vector.BoolValue(op.Eval(lv.Compare(rv))), nil
	}

	switch ex.Op {
	case "+", "-", "*", "/":
		t, err := r.typeOf(ex)
		if err != nil {
			return vector.NullValue, err
		}
		lv, err := r.evalRow(row, ex.L)
		if err != nil {
			return vector.NullValue, err
		}
		rv, err := r.evalRow(row, ex.R)
		if err != nil {
			return vector.NullValue, err
		}
		if t == vector.String { // concatenation
			if lv.IsNull() || rv.IsNull() {
				return vector.NullValue, nil
			}
			return vector.StringValue(lv.String() + rv.String()), nil
		}
		if lv.IsNull() || rv.IsNull() {
			return vector.NullValue, nil
		}
		if t == vector.Float64 {
			x, y := lv.AsFloat(), rv.AsFloat()
			switch ex.Op {
			case "+":
				return vector.FloatValue(x + y), nil
			case "-":
				return vector.FloatValue(x - y), nil
			case "*":
				return vector.FloatValue(x * y), nil
			case "/":
				if y == 0 {
					return vector.NullValue, nil
				}
				return vector.FloatValue(x / y), nil
			}
		}
		x, y := lv.AsInt(), rv.AsInt()
		switch ex.Op {
		case "+":
			return vector.IntValue(x + y), nil
		case "-":
			return vector.IntValue(x - y), nil
		case "*":
			return vector.IntValue(x * y), nil
		}
	}
	return vector.NullValue, fmt.Errorf("oracle: operator %q", ex.Op)
}

func flipOp(op vector.CmpOp) vector.CmpOp {
	switch op {
	case vector.LT:
		return vector.GT
	case vector.LE:
		return vector.GE
	case vector.GT:
		return vector.LT
	case vector.GE:
		return vector.LE
	}
	return op
}

// --- SELECT ---

func (db *DB) execSelect(sel *sqlparse.SelectStmt) (*rel, error) {
	in, err := db.execFrom(sel)
	if err != nil {
		return nil, err
	}

	if sel.Where != nil {
		if err := in.boolCheck(sel.Where); err != nil {
			return nil, err
		}
		var kept [][]vector.Value
		for _, row := range in.rows {
			ok, err := in.evalBoolRow(row, sel.Where)
			if err != nil {
				return nil, err
			}
			if ok {
				kept = append(kept, row)
			}
		}
		in = &rel{names: in.names, types: in.types, rows: kept}
	}

	hasAgg := len(sel.GroupBy) > 0
	for _, item := range sel.Items {
		if !item.Star && sqlparse.IsAggregate(item.Expr) {
			hasAgg = true
		}
	}
	var out *rel
	if hasAgg {
		out, err = db.execAggregate(sel, in)
	} else {
		out, err = db.execProject(sel, in)
	}
	if err != nil {
		return nil, err
	}

	if len(sel.OrderBy) > 0 {
		out, err = execOrderBy(sel, out, in)
		if err != nil {
			return nil, err
		}
	}
	if sel.Limit >= 0 && int64(len(out.rows)) > sel.Limit {
		out = &rel{names: out.names, types: out.types, rows: out.rows[:sel.Limit]}
	}
	return out, nil
}

// execFrom evaluates the FROM clause, qualifying columns when more
// than one source (or an alias) is present and folding joins
// left-to-right.
func (db *DB) execFrom(sel *sqlparse.SelectStmt) (*rel, error) {
	if sel.From == nil {
		return &rel{
			names: []string{"__one"},
			types: []vector.Type{vector.Int64},
			rows:  [][]vector.Value{{vector.IntValue(0)}},
		}, nil
	}
	qualify := len(sel.Joins) > 0 || sel.From.Alias != ""

	load := func(ref *sqlparse.TableRef) (*rel, error) {
		r, err := db.execTableRef(ref)
		if err != nil {
			return nil, err
		}
		if qualify {
			q := ref.DisplayName()
			names := make([]string, len(r.names))
			for i, n := range r.names {
				names[i] = q + "." + n
			}
			r = &rel{names: names, types: r.types, rows: r.rows}
		}
		return r, nil
	}

	out, err := load(sel.From)
	if err != nil {
		return nil, err
	}
	for i := range sel.Joins {
		right, err := load(sel.Joins[i].Table)
		if err != nil {
			return nil, err
		}
		out, err = hashJoin(out, right, sel.Joins[i])
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

func (db *DB) execTableRef(ref *sqlparse.TableRef) (*rel, error) {
	switch {
	case ref.Subquery != nil:
		return db.execSelect(ref.Subquery)
	case ref.Name != "":
		t, ok := db.Tables[ref.Name]
		if !ok {
			return nil, fmt.Errorf("oracle: no such table %q", ref.Name)
		}
		names := make([]string, len(t.Schema.Fields))
		types := make([]vector.Type, len(t.Schema.Fields))
		for i, f := range t.Schema.Fields {
			names[i] = f.Name
			types[i] = f.Type
		}
		rows := make([][]vector.Value, len(t.Rows))
		copy(rows, t.Rows)
		return &rel{names: names, types: types, rows: rows}, nil
	}
	return nil, fmt.Errorf("oracle: unsupported table reference")
}

// equiPairs extracts the column-equality conjunction from a join
// condition; everything else in ON is ignored, exactly as the
// engine's planner does.
func equiPairs(on sqlparse.Expr) [][2]sqlparse.ColumnRef {
	var out [][2]sqlparse.ColumnRef
	var walk func(e sqlparse.Expr)
	walk = func(e sqlparse.Expr) {
		bin, ok := e.(sqlparse.Binary)
		if !ok {
			return
		}
		if bin.Op == "AND" {
			walk(bin.L)
			walk(bin.R)
			return
		}
		if bin.Op != "=" {
			return
		}
		l, lok := bin.L.(sqlparse.ColumnRef)
		r, rok := bin.R.(sqlparse.ColumnRef)
		if lok && rok {
			out = append(out, [2]sqlparse.ColumnRef{l, r})
		}
	}
	walk(on)
	return out
}

func renderKey(vals []vector.Value) (string, bool) {
	var sb strings.Builder
	for _, v := range vals {
		if v.IsNull() {
			return "", true
		}
		fmt.Fprintf(&sb, "%d|%s|", v.Type, v.String())
	}
	return sb.String(), false
}

// hashJoin mirrors the engine's join: build on the right, probe with
// the left in order, and for LEFT JOIN append unmatched left rows
// null-extended after all matched rows.
func hashJoin(left, right *rel, j sqlparse.Join) (*rel, error) {
	pairs := equiPairs(j.On)
	if len(pairs) == 0 {
		return nil, fmt.Errorf("oracle: JOIN requires at least one column equality, got %s", j.On)
	}
	var leftKeys, rightKeys []int
	for _, pr := range pairs {
		a, b := pr[0], pr[1]
		li, errA := left.resolve(a)
		if errA != nil {
			var err error
			li, err = left.resolve(b)
			if err != nil {
				return nil, fmt.Errorf("oracle: join key %s matches neither side", b)
			}
			b = a
		}
		ri, err := right.resolve(b)
		if err != nil {
			return nil, err
		}
		leftKeys = append(leftKeys, li)
		rightKeys = append(rightKeys, ri)
	}

	keyVals := func(row []vector.Value, keys []int) []vector.Value {
		out := make([]vector.Value, len(keys))
		for i, k := range keys {
			out[i] = row[k]
		}
		return out
	}
	build := map[string][]int{}
	for ri, row := range right.rows {
		key, null := renderKey(keyVals(row, rightKeys))
		if null {
			continue
		}
		build[key] = append(build[key], ri)
	}

	names := append(append([]string(nil), left.names...), right.names...)
	types := append(append([]vector.Type(nil), left.types...), right.types...)
	var rows [][]vector.Value
	var leftOnly [][]vector.Value
	for _, lrow := range left.rows {
		key, null := renderKey(keyVals(lrow, leftKeys))
		matches := build[key]
		if null || len(matches) == 0 {
			if j.Kind == sqlparse.LeftJoin {
				ext := append(append([]vector.Value(nil), lrow...), make([]vector.Value, len(right.names))...)
				leftOnly = append(leftOnly, ext)
			}
			continue
		}
		for _, ri := range matches {
			rows = append(rows, append(append([]vector.Value(nil), lrow...), right.rows[ri]...))
		}
	}
	rows = append(rows, leftOnly...)
	return &rel{names: names, types: types, rows: rows}, nil
}

// outputName mirrors the engine's projection naming.
func outputName(item sqlparse.SelectItem, pos int) string {
	if item.Alias != "" {
		return item.Alias
	}
	if ref, ok := item.Expr.(sqlparse.ColumnRef); ok {
		return ref.Name
	}
	if call, ok := item.Expr.(sqlparse.Call); ok {
		return fmt.Sprintf("%s_%d", strings.ToLower(strings.ReplaceAll(call.Name, ".", "_")), pos)
	}
	return fmt.Sprintf("f%d", pos)
}

// execProject evaluates a plain (non-aggregate) projection.
func (db *DB) execProject(sel *sqlparse.SelectStmt, in *rel) (*rel, error) {
	var names []string
	var types []vector.Type
	var pick []func(row []vector.Value) (vector.Value, error)

	for pos, item := range sel.Items {
		if item.Star {
			for i, n := range in.names {
				if n == "__one" {
					continue
				}
				name := n
				if i2 := strings.LastIndexByte(name, '.'); i2 >= 0 && in.index(name[i2+1:]) < 0 {
					// Unqualify when unambiguous.
					bare := name[i2+1:]
					conflict := false
					for k, other := range in.names {
						if k != i && strings.HasSuffix(other, "."+bare) {
							conflict = true
						}
					}
					if !conflict {
						name = bare
					}
				}
				names = append(names, name)
				types = append(types, in.types[i])
				i := i
				pick = append(pick, func(row []vector.Value) (vector.Value, error) { return row[i], nil })
			}
			continue
		}
		t, err := in.typeOf(item.Expr)
		if err != nil {
			return nil, err
		}
		names = append(names, outputName(item, pos))
		types = append(types, t)
		expr := item.Expr
		pick = append(pick, func(row []vector.Value) (vector.Value, error) { return in.evalRow(row, expr) })
	}

	rows := make([][]vector.Value, len(in.rows))
	for ri, row := range in.rows {
		out := make([]vector.Value, len(pick))
		for i, f := range pick {
			v, err := f(row)
			if err != nil {
				return nil, err
			}
			out[i] = v
		}
		rows[ri] = out
	}
	return &rel{names: names, types: types, rows: rows}, nil
}

// execAggregate mirrors the engine's GROUP BY operator: groups are
// keyed by a type-tagged rendering of the key values and emitted in
// first-encounter order; output column types are inferred from the
// first non-null value (INT64 when a column is entirely null or the
// result is empty).
func (db *DB) execAggregate(sel *sqlparse.SelectStmt, in *rel) (*rel, error) {
	// Evaluate group keys per row.
	for _, g := range sel.GroupBy {
		if _, err := in.typeOf(g); err != nil {
			return nil, err
		}
	}
	type group struct {
		rows []int
		key  []vector.Value
	}
	groups := map[string]*group{}
	var orderKeys []string
	for ri, row := range in.rows {
		key := make([]vector.Value, len(sel.GroupBy))
		var sb strings.Builder
		for i, g := range sel.GroupBy {
			v, err := in.evalRow(row, g)
			if err != nil {
				return nil, err
			}
			key[i] = v
			fmt.Fprintf(&sb, "%d|%s|", v.Type, v.String())
		}
		ks := sb.String()
		grp, ok := groups[ks]
		if !ok {
			grp = &group{key: key}
			groups[ks] = grp
			orderKeys = append(orderKeys, ks)
		}
		grp.rows = append(grp.rows, ri)
	}
	if len(sel.GroupBy) == 0 && len(groups) == 0 {
		groups[""] = &group{}
		orderKeys = append(orderKeys, "")
	}

	// Pre-typecheck aggregate arguments (the engine evaluates them
	// eagerly over the whole input, so resolution errors surface even
	// when every group is empty).
	argType := map[string]vector.Type{}
	argExpr := map[string]sqlparse.Expr{}
	var prepare func(expr sqlparse.Expr) error
	prepare = func(expr sqlparse.Expr) error {
		call, ok := expr.(sqlparse.Call)
		if !ok || !sqlparse.AggregateFuncs[call.Name] {
			return nil
		}
		if call.Star || len(call.Args) == 0 {
			return nil
		}
		key := call.Args[0].String()
		if _, ok := argType[key]; ok {
			return nil
		}
		t, err := in.typeOf(call.Args[0])
		if err != nil {
			return err
		}
		argType[key] = t
		argExpr[key] = call.Args[0]
		return nil
	}
	for _, item := range sel.Items {
		if item.Star {
			return nil, fmt.Errorf("oracle: SELECT * with GROUP BY")
		}
		if err := prepare(item.Expr); err != nil {
			return nil, err
		}
	}

	groupExprIndex := map[string]int{}
	for i, g := range sel.GroupBy {
		groupExprIndex[g.String()] = i
		if ref, ok := g.(sqlparse.ColumnRef); ok {
			groupExprIndex[ref.Name] = i
		}
	}

	evalAgg := func(call sqlparse.Call, g *group) (vector.Value, error) {
		if call.Name == "COUNT" && (call.Star || len(call.Args) == 0) {
			return vector.IntValue(int64(len(g.rows))), nil
		}
		if len(call.Args) != 1 {
			return vector.NullValue, fmt.Errorf("oracle: %s expects one argument", call.Name)
		}
		key := call.Args[0].String()
		at, ok := argType[key]
		if !ok {
			return vector.NullValue, fmt.Errorf("oracle: aggregate argument %s not prepared", call.Args[0])
		}
		expr := argExpr[key]
		var vals []vector.Value
		for _, ri := range g.rows {
			v, err := in.evalRow(in.rows[ri], expr)
			if err != nil {
				return vector.NullValue, err
			}
			if !v.IsNull() {
				vals = append(vals, v)
			}
		}
		switch call.Name {
		case "COUNT":
			return vector.IntValue(int64(len(vals))), nil
		case "SUM", "AVG":
			if len(vals) == 0 {
				return vector.NullValue, nil
			}
			var sum vector.Value
			if at == vector.Float64 {
				var f float64
				for _, v := range vals {
					f += v.F
				}
				sum = vector.FloatValue(f)
			} else {
				var n int64
				for _, v := range vals {
					n += v.I
				}
				sum = vector.IntValue(n)
			}
			if call.Name == "SUM" {
				return sum, nil
			}
			return vector.FloatValue(sum.AsFloat() / float64(len(vals))), nil
		case "MIN", "MAX":
			if len(vals) == 0 {
				return vector.NullValue, nil
			}
			acc := vals[0]
			for _, v := range vals[1:] {
				cmp := v.Compare(acc)
				if (call.Name == "MIN" && cmp < 0) || (call.Name == "MAX" && cmp > 0) {
					acc = v
				}
			}
			return acc, nil
		}
		return vector.NullValue, fmt.Errorf("oracle: aggregate %s", call.Name)
	}

	evalItem := func(item sqlparse.SelectItem, g *group) (vector.Value, error) {
		if call, ok := item.Expr.(sqlparse.Call); ok && sqlparse.AggregateFuncs[call.Name] {
			return evalAgg(call, g)
		}
		if i, ok := groupExprIndex[item.Expr.String()]; ok {
			return g.key[i], nil
		}
		if ref, ok := item.Expr.(sqlparse.ColumnRef); ok {
			if i, ok := groupExprIndex[ref.Name]; ok {
				return g.key[i], nil
			}
		}
		return vector.NullValue, fmt.Errorf("oracle: %s must appear in GROUP BY or an aggregate", item.Expr)
	}

	var rows [][]vector.Value
	for _, ks := range orderKeys {
		g := groups[ks]
		row := make([]vector.Value, len(sel.Items))
		for i, item := range sel.Items {
			v, err := evalItem(item, g)
			if err != nil {
				return nil, err
			}
			row[i] = v
		}
		rows = append(rows, row)
	}

	names := make([]string, len(sel.Items))
	types := make([]vector.Type, len(sel.Items))
	for i, item := range sel.Items {
		t := vector.Int64
		for _, row := range rows {
			if !row[i].IsNull() {
				t = row[i].Type
				break
			}
		}
		names[i] = outputName(item, i)
		types[i] = t
	}
	return &rel{names: names, types: types, rows: rows}, nil
}

// compareForSort orders values with NULLs first.
func compareForSort(a, b vector.Value) int {
	switch {
	case a.IsNull() && b.IsNull():
		return 0
	case a.IsNull():
		return -1
	case b.IsNull():
		return 1
	}
	return a.Compare(b)
}

// execOrderBy mirrors the engine's sort resolution: an ORDER BY
// column reference binds to the output schema by bare name first;
// other expressions evaluate over the output, falling back to the
// pre-projection input when the row counts line up.
func execOrderBy(sel *sqlparse.SelectStmt, out, in *rel) (*rel, error) {
	n := len(out.rows)
	keys := make([][]vector.Value, len(sel.OrderBy))
	for i, item := range sel.OrderBy {
		if ref, ok := item.Expr.(sqlparse.ColumnRef); ok {
			if idx := out.index(ref.Name); idx >= 0 {
				col := make([]vector.Value, n)
				for ri, row := range out.rows {
					col[ri] = row[idx]
				}
				keys[i] = col
				continue
			}
		}
		col, err := evalColumn(out, item.Expr)
		if err != nil {
			if in == nil || len(in.rows) != n {
				return nil, err
			}
			col, err = evalColumn(in, item.Expr)
			if err != nil {
				return nil, err
			}
		}
		keys[i] = col
	}
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		for k, item := range sel.OrderBy {
			cmp := compareForSort(keys[k][idx[a]], keys[k][idx[b]])
			if cmp == 0 {
				continue
			}
			if item.Desc {
				return cmp > 0
			}
			return cmp < 0
		}
		return false
	})
	rows := make([][]vector.Value, n)
	for i, j := range idx {
		rows[i] = out.rows[j]
	}
	return &rel{names: out.names, types: out.types, rows: rows}, nil
}

// evalColumn evaluates an expression over every row of a relation.
func evalColumn(r *rel, e sqlparse.Expr) ([]vector.Value, error) {
	if _, err := r.typeOf(e); err != nil {
		return nil, err
	}
	out := make([]vector.Value, len(r.rows))
	for i, row := range r.rows {
		v, err := r.evalRow(row, e)
		if err != nil {
			return nil, err
		}
		out[i] = v
	}
	return out, nil
}

// --- DML ---

// coerce adapts a literal to a column type (int literals into float
// or timestamp columns, strings into bytes), mirroring the engine.
func coerce(v vector.Value, t vector.Type) vector.Value {
	if v.IsNull() || v.Type == t {
		return v
	}
	switch t {
	case vector.Float64:
		if v.Type == vector.Int64 {
			return vector.FloatValue(float64(v.I))
		}
	case vector.Timestamp:
		if v.Type == vector.Int64 {
			return vector.TimestampValue(v.I)
		}
	case vector.Bytes:
		if v.Type == vector.String {
			return vector.Value{Type: vector.Bytes, S: v.S}
		}
	}
	return v
}

func (db *DB) table(name string) (*Table, error) {
	t, ok := db.Tables[name]
	if !ok {
		return nil, fmt.Errorf("oracle: no such table %q", name)
	}
	return t, nil
}

func (db *DB) execInsert(ins *sqlparse.InsertStmt) (*Resultset, error) {
	t, err := db.table(ins.Table)
	if err != nil {
		return nil, err
	}
	if ins.Select != nil {
		return nil, fmt.Errorf("oracle: INSERT ... SELECT not supported")
	}
	cols := ins.Columns
	if len(cols) == 0 {
		for _, f := range t.Schema.Fields {
			cols = append(cols, f.Name)
		}
	}
	colIdx := make([]int, len(cols))
	for i, c := range cols {
		idx := t.Schema.Index(c)
		if idx < 0 {
			return nil, fmt.Errorf("oracle: no column %q in %s", c, ins.Table)
		}
		colIdx[i] = idx
	}
	for _, row := range ins.Rows {
		if len(row) != len(cols) {
			return nil, fmt.Errorf("oracle: INSERT row arity %d != %d columns", len(row), len(cols))
		}
		full := make([]vector.Value, len(t.Schema.Fields)) // NULL-filled
		for i, expr := range row {
			lit, ok := expr.(sqlparse.Literal)
			if !ok {
				return nil, fmt.Errorf("oracle: INSERT VALUES must be literals")
			}
			ft := t.Schema.Fields[colIdx[i]].Type
			v := coerce(lit.Value, ft)
			if !v.IsNull() && v.Type != ft {
				return nil, fmt.Errorf("oracle: value %s is %v, column %q is %v",
					v, v.Type, cols[i], ft)
			}
			full[colIdx[i]] = v
		}
		t.Rows = append(t.Rows, full)
	}
	names := make([]string, len(t.Schema.Fields))
	types := make([]vector.Type, len(t.Schema.Fields))
	for i, f := range t.Schema.Fields {
		names[i] = f.Name
		types[i] = f.Type
	}
	return &Resultset{Names: names, Types: types}, nil
}

// tableRel exposes a stored table as a relation with bare names.
func tableRel(t *Table) *rel {
	names := make([]string, len(t.Schema.Fields))
	types := make([]vector.Type, len(t.Schema.Fields))
	for i, f := range t.Schema.Fields {
		names[i] = f.Name
		types[i] = f.Type
	}
	return &rel{names: names, types: types, rows: t.Rows}
}

func (db *DB) execDelete(del *sqlparse.DeleteStmt) (*Resultset, error) {
	t, err := db.table(del.Table)
	if err != nil {
		return nil, err
	}
	r := tableRel(t)
	var kept [][]vector.Value
	deleted := int64(0)
	for _, row := range t.Rows {
		match := true
		if del.Where != nil {
			match, err = r.evalBoolRow(row, del.Where)
			if err != nil {
				return nil, err
			}
		}
		if match {
			deleted++
		} else {
			kept = append(kept, row)
		}
	}
	t.Rows = kept
	return &Resultset{
		Names: []string{"rows_deleted"},
		Types: []vector.Type{vector.Int64},
		Rows:  [][]vector.Value{{vector.IntValue(deleted)}},
	}, nil
}

func (db *DB) execUpdate(upd *sqlparse.UpdateStmt) (*Resultset, error) {
	t, err := db.table(upd.Table)
	if err != nil {
		return nil, err
	}
	r := tableRel(t)
	// Static checks first: the engine type-checks SET expressions over
	// the whole batch before looking at the mask.
	setIdx := map[string]int{}
	setType := map[string]vector.Type{}
	for col, expr := range upd.Set {
		i := t.Schema.Index(col)
		if i < 0 {
			return nil, fmt.Errorf("oracle: unknown column %q in UPDATE", col)
		}
		st, err := r.typeOf(expr)
		if err != nil {
			return nil, err
		}
		setIdx[col] = i
		setType[col] = st
	}
	updated := int64(0)
	for ri, row := range t.Rows {
		match := true
		if upd.Where != nil {
			match, err = r.evalBoolRow(row, upd.Where)
			if err != nil {
				return nil, err
			}
		}
		// SET expressions are evaluated against the original row.
		newRow := append([]vector.Value(nil), row...)
		for col, expr := range upd.Set {
			v, err := r.evalRow(row, expr)
			if err != nil {
				return nil, err
			}
			ft := t.Schema.Fields[setIdx[col]].Type
			if setType[col] != ft {
				v = coerce(v, ft)
			}
			newRow[setIdx[col]] = v
		}
		if match {
			t.Rows[ri] = newRow
			updated++
		}
	}
	return &Resultset{
		Names: []string{"rows_updated"},
		Types: []vector.Type{vector.Int64},
		Rows:  [][]vector.Value{{vector.IntValue(updated)}},
	}, nil
}

func (db *DB) execCTAS(cta *sqlparse.CreateTableAsStmt) (*Resultset, error) {
	out, err := db.execSelect(cta.Select)
	if err != nil {
		return nil, err
	}
	if _, exists := db.Tables[cta.Table]; exists && !cta.OrReplace {
		return nil, fmt.Errorf("oracle: table %q already exists", cta.Table)
	}
	fields := make([]vector.Field, len(out.names))
	for i := range out.names {
		fields[i] = vector.Field{Name: out.names[i], Type: out.types[i]}
	}
	rows := make([][]vector.Value, len(out.rows))
	copy(rows, out.rows)
	db.Add(&Table{Name: cta.Table, Schema: vector.Schema{Fields: fields}, Rows: rows})
	return out.toResultset(), nil
}

// FromBatch converts an engine batch into the oracle's result shape
// for comparison.
func FromBatch(b *vector.Batch) *Resultset {
	rs := &Resultset{}
	for _, f := range b.Schema.Fields {
		rs.Names = append(rs.Names, f.Name)
		rs.Types = append(rs.Types, f.Type)
	}
	for r := 0; r < b.N; r++ {
		row := make([]vector.Value, len(b.Cols))
		for c, col := range b.Cols {
			row[c] = col.Value(r)
		}
		rs.Rows = append(rs.Rows, row)
	}
	return rs
}
