package oracle

// Differential test entry points. Replay a failure with:
//
//	go test ./internal/oracle -run TestDifferential -seed=<n>
//
// The -trials/-queries flags widen the soak (the benchlake fuzz
// subcommand does the same from the CLI).

import (
	"flag"
	"testing"

	"biglake/internal/obs"
	"biglake/internal/vector"
)

func tSchema() vector.Schema {
	return vector.NewSchema(
		vector.Field{Name: "k", Type: vector.Int64},
		vector.Field{Name: "s", Type: vector.String},
		vector.Field{Name: "f", Type: vector.Float64},
	)
}

var (
	seedFlag    = flag.Uint64("seed", 1, "differential fuzzer base seed")
	trialsFlag  = flag.Int("trials", 0, "worlds per run (0 = default)")
	queriesFlag = flag.Int("queries", 0, "queries per world per phase (0 = default)")
	serveFlag   = flag.Bool("serve", false, "also diff every SELECT through the serve session path")
)

// TestDifferential is the main cross-check: every generated query
// must return identical rows from the engine (under every cell of
// the acceleration matrix, pre and post compaction) and the oracle.
func TestDifferential(t *testing.T) {
	opts := Options{
		Seed:    *seedFlag,
		Trials:  *trialsFlag,
		Queries: *queriesFlag,
		Serve:   *serveFlag,
		Log:     t.Logf,
	}
	rep, err := Run(opts)
	if err != nil {
		t.Fatalf("differential run failed: %v", err)
	}
	if rep.Divergence != nil {
		t.Fatal(rep.Divergence.Format())
	}
	if rep.Queries < 200 {
		t.Fatalf("short-mode coverage too thin: %d generated queries (< 200)", rep.Queries)
	}
	t.Logf("ok: %d trials, %d queries, %d engine executions, %d accepted fault errors",
		rep.Trials, rep.Queries, rep.Executions, rep.FaultErrors)
}

// TestDifferentialServe routes every matrix SELECT through the serve
// session path (parse -> prepare -> admit -> paged cursor) alongside
// the direct library call: the server layer must never change an
// answer. A smaller campaign than TestDifferential since every SELECT
// runs twice per cell.
func TestDifferentialServe(t *testing.T) {
	rep, err := Run(Options{Seed: *seedFlag, Trials: 1, Queries: 24, Serve: true, Log: t.Logf})
	if err != nil {
		t.Fatalf("serve-mode differential run failed: %v", err)
	}
	if rep.Divergence != nil {
		t.Fatal(rep.Divergence.Format())
	}
	t.Logf("ok: %d queries, %d executions (serve arm included), %d accepted fault errors",
		rep.Queries, rep.Executions, rep.FaultErrors)
}

// TestDifferentialDeterministic asserts the whole campaign is a pure
// function of the seed: same seed, same counts, same outcome.
func TestDifferentialDeterministic(t *testing.T) {
	run := func() Report {
		rep, err := Run(Options{Seed: 42, Trials: 1, Queries: 16})
		if err != nil {
			t.Fatalf("run failed: %v", err)
		}
		return rep
	}
	a, b := run(), run()
	if a.Queries != b.Queries || a.Executions != b.Executions || a.FaultErrors != b.FaultErrors {
		t.Fatalf("non-deterministic: %+v vs %+v", a, b)
	}
	if (a.Divergence == nil) != (b.Divergence == nil) {
		t.Fatalf("non-deterministic divergence: %v vs %v", a.Divergence, b.Divergence)
	}
}

// FuzzDifferential lets `go test -fuzz` drive the seed space.
func FuzzDifferential(f *testing.F) {
	f.Add(uint64(1))
	f.Add(uint64(7))
	f.Add(uint64(1234567))
	f.Fuzz(func(t *testing.T, seed uint64) {
		rep, err := Run(Options{Seed: seed, Trials: 1, Queries: 10})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if rep.Divergence != nil {
			t.Fatal(rep.Divergence.Format())
		}
	})
}

// TestOracleSmoke pins a few hand-checked answers so the oracle
// itself has a baseline independent of the engine.
func TestOracleSmoke(t *testing.T) {
	db := NewDB()
	if _, err := db.ExecSQL("SELECT k FROM ds.missing"); err == nil {
		t.Fatal("unknown table should error")
	}
	mk := func(sqls ...string) {
		for _, s := range sqls {
			if _, err := db.ExecSQL(s); err != nil {
				t.Fatalf("%s: %v", s, err)
			}
		}
	}
	db.Add(&Table{Name: "ds.t", Schema: tSchema()})
	mk(
		"INSERT INTO ds.t VALUES (1, 'a', 2.5), (2, 'b', NULL), (2, 'a', 1.0)",
	)
	rs, err := db.ExecSQL("SELECT k, SUM(f) AS s FROM ds.t GROUP BY k ORDER BY k")
	if err != nil {
		t.Fatal(err)
	}
	if len(rs.Rows) != 2 {
		t.Fatalf("groups = %d", len(rs.Rows))
	}
	if rs.Rows[0][1].F != 2.5 || rs.Rows[1][1].F != 1.0 {
		t.Fatalf("sums = %v / %v", rs.Rows[0][1], rs.Rows[1][1])
	}
	cnt, err := db.ExecSQL("SELECT COUNT(*) AS c FROM ds.t WHERE s = 'a'")
	if err != nil {
		t.Fatal(err)
	}
	if cnt.Rows[0][0].I != 2 {
		t.Fatalf("count = %v", cnt.Rows[0][0])
	}
	del, err := db.ExecSQL("DELETE FROM ds.t WHERE k = 2")
	if err != nil {
		t.Fatal(err)
	}
	if del.Rows[0][0].I != 2 {
		t.Fatalf("deleted = %v", del.Rows[0][0])
	}
}

// TestDifferentialWithProfiling re-runs a small differential matrix
// with span tracing enabled on every engine cell: profiling must not
// perturb results (zero divergences) and must actually record traces.
func TestDifferentialWithProfiling(t *testing.T) {
	tracer := &obs.Tracer{Cap: 32}
	rep, err := Run(Options{Seed: 7, Trials: 1, Queries: 12, Tracer: tracer})
	if err != nil {
		t.Fatalf("profiled run failed: %v", err)
	}
	if rep.Divergence != nil {
		t.Fatalf("profiling changed results:\n%s", rep.Divergence.Format())
	}
	traces := tracer.Traces()
	if len(traces) == 0 {
		t.Fatal("no traces recorded under profiling")
	}
	if len(traces) > 32 {
		t.Fatalf("tracer cap not honored: %d traces retained", len(traces))
	}
	for _, tr := range traces {
		root := tr.Root()
		if root == nil || !root.Ended() {
			t.Fatalf("trace %s has unfinished root", tr.QueryID)
		}
		if data, err := obs.ChromeTrace(tr); err != nil || len(data) == 0 {
			t.Fatalf("trace %s: chrome export failed: %v", tr.QueryID, err)
		}
	}
}
