//go:build oraclebug

package oracle

// Validation that the differential harness actually catches engine
// bugs: the oraclebug build tag plants a flipped pruning comparison
// in bigmeta (<= treated as < against file stats), and this test
// demands the fuzzer finds it and produces a minimized seed+SQL
// report. Run with:
//
//	go test -tags oraclebug ./internal/oracle -run TestForcedBug -v
//
// The regular TestDifferential is expected to FAIL under this tag —
// that is the point — so select tests with -run.

import "testing"

func TestForcedBugCaught(t *testing.T) {
	for seed := uint64(1); seed <= 8; seed++ {
		rep, err := Run(Options{Seed: seed, Trials: 2, Queries: 40})
		if err != nil {
			t.Fatalf("seed %d: infrastructure error: %v", seed, err)
		}
		if d := rep.Divergence; d != nil {
			if d.SQL == "" || d.MinSQL == "" || d.Detail == "" {
				t.Fatalf("divergence found but report incomplete: %+v", d)
			}
			if len(d.MinSQL) > len(d.SQL) {
				t.Fatalf("minimized SQL longer than original:\n%s\nvs\n%s", d.MinSQL, d.SQL)
			}
			t.Logf("caught planted pruning bug:\n%s", d.Format())
			return
		}
	}
	t.Fatal("planted pruning bug not detected in 8 seeds — the oracle harness is not sensitive enough")
}
