package oracle

import (
	"flag"
	"testing"
)

var integSeed = flag.Uint64("integ-seed", 11, "integrity sweep base seed")

// TestIntegritySweep is the corruption-sweep gate: seeded silent
// corruption of GET responses across {scan cache, chaos, compaction}
// cells must never produce a wrong answer, every injected corruption
// campaign must be visible in the detected counters, and stored
// damage must end in quarantine, degrade under the explicit opt-in,
// and come back bit-identical after repair from a replica.
func TestIntegritySweep(t *testing.T) {
	rep, err := RunIntegritySweep(IntegrityOptions{
		Seed: *integSeed,
		Log:  t.Logf,
	})
	if err != nil {
		t.Fatalf("sweep: %v (report: %+v)", err, rep)
	}
	if rep.WrongAnswers != 0 {
		t.Fatalf("%d silent wrong answers: %s", rep.WrongAnswers, rep.WrongDetail)
	}
	if rep.Injected == 0 {
		t.Fatalf("corruption injector never fired (executions=%d)", rep.Executions)
	}
	if rep.Detected == 0 {
		t.Fatalf("injected %d corruptions, detected none — checksums are not being checked", rep.Injected)
	}
	// The engine's alternate-source re-fetch should have healed at
	// least some in-flight corruption: with response-level corruption
	// the second fetch is usually clean.
	if rep.IntegrityErrors+int(rep.Recovered) == 0 {
		t.Fatalf("no integrity errors and no recoveries with %d injected corruptions", rep.Injected)
	}
	// Stored-damage leg assertions.
	if rep.StoredQuarantine == 0 || !rep.SkippedRows || rep.Repaired == 0 || !rep.RepairVerified {
		t.Fatalf("stored-damage leg incomplete: %+v", rep)
	}
	t.Logf("sweep: %d executions, %d typed integrity failures, %d other errors, injected=%d detected=%d recovered=%d quarantines=%d repaired=%d",
		rep.Executions, rep.IntegrityErrors, rep.OtherErrors, rep.Injected, rep.Detected, rep.Recovered, rep.Quarantines, rep.Repaired)
}
