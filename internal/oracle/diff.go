package oracle

// The differential harness: builds a simulated lakehouse world, fills
// it with generated tables, and runs every generated query through
// the real engine under the full acceleration-configuration matrix —
// {metadata cache on/off} × {DPP on/off} × {prune granularity} ×
// {chaos faults on/off} — comparing each answer against the
// row-at-a-time oracle, before and after DML + BLMT compaction.
//
// Comparison contract: a query whose ORDER BY covers every output
// column is compared as an exact row sequence; anything else is
// compared as a multiset of rendered rows. Under injected faults the
// engine is allowed to *fail* (retry budgets are finite) but never to
// return a wrong answer: an error in a fault cell is counted, a wrong
// row anywhere is a divergence.
//
// On divergence the harness greedily shrinks the statement (drop
// LIMIT/ORDER BY/items/joins/predicate branches) while it still
// reproduces, and reports seed, cell, SQL, minimized SQL, and the
// first differing row.

import (
	"fmt"
	"sort"
	"strings"

	"biglake/internal/bigmeta"
	"biglake/internal/blmt"
	"biglake/internal/catalog"
	"biglake/internal/colfmt"
	"biglake/internal/engine"
	"biglake/internal/objstore"
	"biglake/internal/obs"
	"biglake/internal/security"
	"biglake/internal/serve"
	"biglake/internal/sim"
	"biglake/internal/sqlparse"
	"biglake/internal/vector"
)

const (
	diffBucket = "lake"
	diffConn   = "conn"
	diffAdmin  = security.Principal("admin@corp")
)

// Config is one cell of the acceleration matrix.
type Config struct {
	Cache       bool
	DPP         bool
	Granularity bigmeta.PruneGranularity
	Faults      bool
	// ScanCache enables the generation-keyed decoded-file cache; the
	// matrix keeps it on everywhere so every differential query also
	// cross-checks cached-decode reuse against the oracle.
	ScanCache bool
}

func (c Config) String() string {
	onOff := func(b bool) string {
		if b {
			return "on"
		}
		return "off"
	}
	gran := "partitions"
	if c.Granularity == bigmeta.PruneFiles {
		gran = "files"
	}
	return fmt.Sprintf("cache=%s dpp=%s prune=%s faults=%s scancache=%s",
		onOff(c.Cache), onOff(c.DPP), gran, onOff(c.Faults), onOff(c.ScanCache))
}

// Matrix enumerates all 16 configuration cells.
func Matrix() []Config {
	var out []Config
	for _, cache := range []bool{false, true} {
		for _, dpp := range []bool{false, true} {
			for _, gran := range []bigmeta.PruneGranularity{bigmeta.PrunePartitionsOnly, bigmeta.PruneFiles} {
				for _, faults := range []bool{false, true} {
					out = append(out, Config{Cache: cache, DPP: dpp, Granularity: gran, Faults: faults, ScanCache: true})
				}
			}
		}
	}
	return out
}

// Options configures a differential run.
type Options struct {
	Seed    uint64
	Trials  int // generated worlds; default 2
	Queries int // SELECTs per world per phase; default 70
	Log     func(format string, args ...any)
	// Tracer, when set, records a span tree for every engine query the
	// run executes (profiling soak: set a Cap to bound retention).
	Tracer *obs.Tracer
	// Serve additionally routes every matrix SELECT through a serve
	// session (parse -> prepare -> admit -> paged cursor) on the same
	// engine and diffs the reassembled stream against the direct
	// library execution — the session layer must be invisible to
	// results.
	Serve bool
}

// Report is the outcome of a differential run.
type Report struct {
	Trials      int
	Queries     int // generated statements (SELECT + DML + CTAS)
	Executions  int // engine runs across all matrix cells
	FaultErrors int // engine errors accepted in fault-injection cells
	Divergence  *Divergence
}

// Divergence is one engine-vs-oracle mismatch, minimized.
type Divergence struct {
	Seed   uint64
	Trial  int
	Phase  string // "pre", "dml", or "post" (relative to compaction)
	Cell   Config
	SQL    string
	MinSQL string
	Detail string
}

// Format renders the reproduction recipe a human needs.
func (d *Divergence) Format() string {
	return fmt.Sprintf(
		"divergence: seed=%d trial=%d phase=%s cell={%s}\n  sql: %s\n  minimized: %s\n  %s\n  replay: go test ./internal/oracle -run TestDifferential -seed=%d",
		d.Seed, d.Trial, d.Phase, d.Cell, d.SQL, d.MinSQL, d.Detail, d.Seed)
}

// world is the shared simulated infrastructure for one trial. Every
// matrix cell gets a fresh metadata cache and engine, but the object
// store, catalog, and commit log are shared — that is the state the
// acceleration paths must agree about.
type world struct {
	clock  *sim.Clock
	store  *objstore.Store
	stores map[string]*objstore.Store
	cat    *catalog.Catalog
	auth   *security.Authority
	log    *bigmeta.Log
	mgr    *blmt.Manager
	cred   objstore.Credential
}

func newWorld() (*world, error) {
	clock := sim.NewClock()
	store := objstore.New(sim.GCP, clock, nil)
	cred := objstore.Credential{Principal: "sa-lake@corp"}
	if err := store.CreateBucket(cred, diffBucket); err != nil {
		return nil, err
	}
	cat := catalog.New()
	if err := cat.CreateDataset(catalog.Dataset{Name: "ds", Region: "gcp-us", Cloud: "gcp"}); err != nil {
		return nil, err
	}
	auth := security.NewAuthority("secret", diffAdmin)
	if err := auth.RegisterConnection(diffAdmin, security.Connection{
		Name: diffConn, ServiceAccount: cred, Cloud: "gcp",
	}); err != nil {
		return nil, err
	}
	log := bigmeta.NewLog(clock, nil)
	stores := map[string]*objstore.Store{"gcp": store}
	mgr := blmt.New(cat, auth, log, clock, stores)
	mgr.DefaultCloud = "gcp"
	mgr.DefaultBucket = diffBucket
	mgr.DefaultConnection = diffConn
	return &world{
		clock: clock, store: store, stores: stores, cat: cat,
		auth: auth, log: log, mgr: mgr, cred: cred,
	}, nil
}

type harness struct {
	w      *world
	db     *DB
	seed   uint64
	trial  int
	rep    *Report
	logf   func(format string, args ...any)
	tracer *obs.Tracer
	serve  bool
	// sessions caches one serve session per cell engine so the serve
	// arm reuses warmed server state the way a real client would.
	sessions map[*engine.Engine]*serve.Session
}

// serveSession returns (building on first use) the serve-path session
// for one cell engine. Small pages on purpose: most results span
// several pages, so reassembly is actually exercised.
func (h *harness) serveSession(eng *engine.Engine) (*serve.Session, error) {
	if s, ok := h.sessions[eng]; ok {
		return s, nil
	}
	srv := serve.New(eng, nil, serve.Config{PageRows: 7})
	s, err := srv.Open(diffAdmin, fmt.Sprintf("fzs-%d", len(h.sessions)))
	if err != nil {
		return nil, err
	}
	h.sessions[eng] = s
	return s, nil
}

// serveRun executes one SELECT through the serve session path —
// pinning the same query ID as the direct run so the retry budget's
// jitter seed matches — and reassembles the paged stream.
func (h *harness) serveRun(eng *engine.Engine, qid, sql string) (*Resultset, error) {
	sess, err := h.serveSession(eng)
	if err != nil {
		return nil, err
	}
	p, err := sess.Parse(sql)
	if err != nil {
		return nil, err
	}
	p.SetQueryID(qid)
	cur, err := p.Execute()
	if err != nil {
		return nil, err
	}
	b, err := cur.All()
	if err != nil {
		return nil, err
	}
	return FromBatch(b), nil
}

// engineFor builds a fresh engine (and metadata cache) for one cell.
func (h *harness) engineFor(cfg Config) *engine.Engine {
	meta := bigmeta.NewCache(h.w.clock, nil)
	eng := engine.New(h.w.cat, h.w.auth, meta, h.w.log, h.w.clock, h.w.stores, engine.Options{
		UseMetadataCache: cfg.Cache,
		EnableDPP:        cfg.DPP,
		PruneGranularity: cfg.Granularity,
		EnableScanCache:  cfg.ScanCache,
		// GC-lean on: every differential query also cross-checks the
		// arena + late-materialization path against the oracle.
		GCLean: true,
	})
	eng.ManagedCred = h.w.cred
	eng.SetMutator(h.w.mgr)
	eng.Tracer = h.tracer
	return eng
}

// defaultCell is the fault-free all-accelerations cell used for
// bootstrap DML and minimization baselines.
func defaultCell() Config {
	return Config{Cache: true, DPP: true, Granularity: bigmeta.PruneFiles, ScanCache: true}
}

// install materializes the generated tables: BigLake tables become
// hive-partitioned colfmt files on the object store plus a catalog
// entry; the managed table is created empty and filled through
// chunked engine INSERTs (so the commit log holds several small
// files for compaction to coalesce). The oracle database is loaded
// with exactly the same rows.
func (h *harness) install(tables []*GenTable) error {
	for _, t := range tables {
		short := strings.TrimPrefix(t.Full, "ds.")
		if t.Managed {
			if err := h.w.cat.CreateTable(catalog.Table{
				Dataset: "ds", Name: short, Type: catalog.Managed, Schema: t.Schema,
				Cloud: "gcp", Bucket: diffBucket, Prefix: "blmt/ds/" + short + "/",
				Connection: diffConn,
			}); err != nil {
				return err
			}
			h.db.Add(&Table{Name: t.Full, Schema: t.Schema})
			eng := h.engineFor(defaultCell())
			const chunk = 12
			for start := 0; start < len(t.Rows); start += chunk {
				end := start + chunk
				if end > len(t.Rows) {
					end = len(t.Rows)
				}
				sql := insertSQL(t, t.Rows[start:end])
				qid := fmt.Sprintf("fz-install-%d-%d-%d", h.seed, h.trial, start)
				if _, err := eng.Query(engine.NewContext(diffAdmin, qid), sql); err != nil {
					return fmt.Errorf("install %s: %w", t.Full, err)
				}
				if _, err := h.db.ExecSQL(sql); err != nil {
					return fmt.Errorf("oracle install %s: %w", t.Full, err)
				}
			}
			continue
		}
		// BigLake: group rows by partition value (first-encounter
		// order) and write each partition as one or more files.
		pi := t.Schema.Index(t.PartitionCol)
		var parts []string
		byPart := map[string][][]vector.Value{}
		for _, row := range t.Rows {
			pv := row[pi].S
			if _, ok := byPart[pv]; !ok {
				parts = append(parts, pv)
			}
			byPart[pv] = append(byPart[pv], row)
		}
		for _, pv := range parts {
			rows := byPart[pv]
			const perFile = 18
			file := 0
			for start := 0; start < len(rows); start += perFile {
				end := start + perFile
				if end > len(rows) {
					end = len(rows)
				}
				bl := vector.NewBuilder(t.Schema)
				for _, row := range rows[start:end] {
					bl.Append(row...)
				}
				data, err := colfmt.WriteFile(bl.Build(), colfmt.WriterOptions{})
				if err != nil {
					return err
				}
				key := fmt.Sprintf("%s/%s=%s/part-%03d.blk", short, t.PartitionCol, pv, file)
				if _, err := h.w.store.Put(h.w.cred, diffBucket, key, data, "application/x-blk"); err != nil {
					return err
				}
				file++
			}
		}
		if err := h.w.cat.CreateTable(catalog.Table{
			Dataset: "ds", Name: short, Type: catalog.BigLake, Schema: t.Schema,
			Cloud: "gcp", Bucket: diffBucket, Prefix: short + "/", Connection: diffConn,
			PartitionColumn: t.PartitionCol, MetadataCaching: true,
		}); err != nil {
			return err
		}
		ot := &Table{Name: t.Full, Schema: t.Schema}
		for _, row := range t.Rows {
			ot.Rows = append(ot.Rows, append([]vector.Value(nil), row...))
		}
		h.db.Add(ot)
	}
	return nil
}

// insertSQL renders rows as one INSERT statement.
func insertSQL(t *GenTable, rows [][]vector.Value) string {
	var sb strings.Builder
	sb.WriteString("INSERT INTO " + t.Full + " VALUES ")
	for r, row := range rows {
		if r > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString("(")
		for c, v := range row {
			if c > 0 {
				sb.WriteString(", ")
			}
			sb.WriteString(renderValue(v))
		}
		sb.WriteString(")")
	}
	return sb.String()
}

// --- result comparison ---

// renderCell gives one value a type-tagged textual form so INT64 5,
// FLOAT 5.0, and STRING '5' never collide.
func renderCell(v vector.Value) string {
	if v.Type == vector.Invalid {
		return "NULL"
	}
	return fmt.Sprintf("%d:%s", v.Type, v.String())
}

func renderRow(row []vector.Value) string {
	parts := make([]string, len(row))
	for i, v := range row {
		parts[i] = renderCell(v)
	}
	return strings.Join(parts, "|")
}

// diffResults compares engine output against the oracle answer and
// returns a human-readable description of the first difference, or
// "" when they agree.
func diffResults(got, want *Resultset, ordered bool) string {
	if len(got.Names) != len(want.Names) {
		return fmt.Sprintf("column count: engine %d vs oracle %d (%v vs %v)",
			len(got.Names), len(want.Names), got.Names, want.Names)
	}
	for i := range got.Names {
		if got.Names[i] != want.Names[i] {
			return fmt.Sprintf("column %d name: engine %q vs oracle %q", i, got.Names[i], want.Names[i])
		}
		if got.Types[i] != want.Types[i] {
			return fmt.Sprintf("column %q type: engine %v vs oracle %v", got.Names[i], got.Types[i], want.Types[i])
		}
	}
	if len(got.Rows) != len(want.Rows) {
		return fmt.Sprintf("row count: engine %d vs oracle %d", len(got.Rows), len(want.Rows))
	}
	g := make([]string, len(got.Rows))
	w := make([]string, len(want.Rows))
	for i := range got.Rows {
		g[i] = renderRow(got.Rows[i])
		w[i] = renderRow(want.Rows[i])
	}
	mode := "ordered"
	if !ordered {
		mode = "multiset"
		sort.Strings(g)
		sort.Strings(w)
	}
	for i := range g {
		if g[i] != w[i] {
			return fmt.Sprintf("first divergent row (%s, index %d):\n    engine: %s\n    oracle: %s", mode, i, g[i], w[i])
		}
	}
	return ""
}

// engRun executes one statement on the engine and converts the batch.
func (h *harness) engRun(eng *engine.Engine, qid, sql string) (*Resultset, error) {
	res, err := eng.Query(engine.NewContext(diffAdmin, qid), sql)
	if err != nil {
		return nil, err
	}
	return FromBatch(res.Batch), nil
}

// faultProfile derives a deterministic chaos profile for one cell.
func (h *harness) faultProfile(phase string, cell int) objstore.FaultProfile {
	seed := h.seed*1315423911 + uint64(cell)<<20 + uint64(len(phase))<<8 + uint64(h.trial)
	return objstore.FaultProfile{Seed: seed, Rate: 0.025, StreakLen: 2}
}

// runMatrix executes every query in every matrix cell against the
// current world state and compares against the oracle.
func (h *harness) runMatrix(phase string, queries []GenQuery) *Divergence {
	type oresult struct {
		rs  *Resultset
		err error
	}
	oras := make([]oresult, len(queries))
	for i, q := range queries {
		rs, err := h.db.ExecSQL(q.SQL)
		oras[i] = oresult{rs, err}
	}
	defer h.w.store.ClearFaults()
	for ci, cfg := range Matrix() {
		if cfg.Faults {
			h.w.store.InjectFaults(h.faultProfile(phase, ci))
		} else {
			h.w.store.ClearFaults()
		}
		eng := h.engineFor(cfg)
		for qi, q := range queries {
			qid := fmt.Sprintf("fz-%d-%d-%s-%d-%d", h.seed, h.trial, phase, ci, qi)
			got, err := h.engRun(eng, qid, q.SQL)
			h.rep.Executions++
			switch {
			case err != nil && oras[qi].err != nil:
				// Consistent rejection: both sides call the statement
				// invalid. Message equality is not required.
			case err != nil:
				if cfg.Faults {
					h.rep.FaultErrors++
					continue
				}
				return h.diverge(phase, cfg, q, "engine error: "+err.Error()+" (oracle succeeded)")
			case oras[qi].err != nil:
				return h.diverge(phase, cfg, q, "oracle error: "+oras[qi].err.Error()+" (engine succeeded)")
			default:
				if d := diffResults(got, oras[qi].rs, q.Ordered); d != "" {
					return h.diverge(phase, cfg, q, d)
				}
			}
			if h.serve {
				sgot, serr := h.serveRun(eng, qid, q.SQL)
				h.rep.Executions++
				switch {
				case serr != nil && err != nil:
					// Both paths reject the statement: consistent.
				case cfg.Faults && (serr != nil) != (err != nil):
					// The serve arm replays the query against a fault
					// injector that has advanced, so its failures (or
					// successes where the direct arm drew a fault) are
					// accepted the same way direct fault errors are.
					h.rep.FaultErrors++
				case serr != nil:
					return h.diverge(phase, cfg, q, "serve path error: "+serr.Error()+" (direct execution succeeded)")
				case err != nil:
					return h.diverge(phase, cfg, q, "serve path succeeded where direct execution was rejected")
				default:
					if d := diffResults(sgot, got, true); d != "" {
						return h.diverge(phase, cfg, q, "serve path diverged from direct execution: "+d)
					}
				}
			}
		}
	}
	return nil
}

func (h *harness) diverge(phase string, cfg Config, q GenQuery, detail string) *Divergence {
	h.w.store.ClearFaults()
	d := &Divergence{
		Seed: h.seed, Trial: h.trial, Phase: phase, Cell: cfg,
		SQL: q.SQL, MinSQL: q.SQL, Detail: detail,
	}
	d.MinSQL = h.minimize(cfg, q.SQL)
	return d
}

// runDML replays a generated DML sequence plus one CTAS through both
// executors, cross-checking the reported row counts (and for CTAS the
// produced rows). Runs fault-free: DML mutates shared state, so an
// injected fault would fork the two worlds rather than test them.
func (h *harness) runDML(gen *Gen, managed *GenTable, ctasName string) (*GenTable, *Divergence) {
	eng := h.engineFor(defaultCell())
	n := 5 + gen.intn(5)
	for i := 0; i < n; i++ {
		sql := gen.DML(managed)
		h.rep.Queries++
		qid := fmt.Sprintf("fz-dml-%d-%d-%d", h.seed, h.trial, i)
		got, gerr := h.engRun(eng, qid, sql)
		want, werr := h.db.ExecSQL(sql)
		h.rep.Executions++
		switch {
		case gerr != nil && werr != nil:
		case gerr != nil:
			return nil, &Divergence{Seed: h.seed, Trial: h.trial, Phase: "dml", Cell: defaultCell(),
				SQL: sql, MinSQL: sql, Detail: "engine error: " + gerr.Error() + " (oracle succeeded)"}
		case werr != nil:
			return nil, &Divergence{Seed: h.seed, Trial: h.trial, Phase: "dml", Cell: defaultCell(),
				SQL: sql, MinSQL: sql, Detail: "oracle error: " + werr.Error() + " (engine succeeded)"}
		default:
			if d := diffResults(got, want, true); d != "" {
				return nil, &Divergence{Seed: h.seed, Trial: h.trial, Phase: "dml", Cell: defaultCell(),
					SQL: sql, MinSQL: sql, Detail: d}
			}
		}
	}
	ctasSQL, ctasT := gen.CTAS(managed, ctasName)
	h.rep.Queries++
	qid := fmt.Sprintf("fz-ctas-%d-%d", h.seed, h.trial)
	got, gerr := h.engRun(eng, qid, ctasSQL)
	want, werr := h.db.ExecSQL(ctasSQL)
	h.rep.Executions++
	switch {
	case gerr != nil && werr != nil:
		return nil, nil // consistently rejected; no CTAS table exists
	case gerr != nil:
		return nil, &Divergence{Seed: h.seed, Trial: h.trial, Phase: "dml", Cell: defaultCell(),
			SQL: ctasSQL, MinSQL: ctasSQL, Detail: "engine error: " + gerr.Error() + " (oracle succeeded)"}
	case werr != nil:
		return nil, &Divergence{Seed: h.seed, Trial: h.trial, Phase: "dml", Cell: defaultCell(),
			SQL: ctasSQL, MinSQL: ctasSQL, Detail: "oracle error: " + werr.Error() + " (engine succeeded)"}
	}
	if d := diffResults(got, want, false); d != "" {
		return nil, &Divergence{Seed: h.seed, Trial: h.trial, Phase: "dml", Cell: defaultCell(),
			SQL: ctasSQL, MinSQL: ctasSQL, Detail: d}
	}
	return ctasT, nil
}

// --- minimization ---

// minimize greedily shrinks a divergent SELECT while it still
// diverges. Candidates are compared as multisets with faults off; if
// the divergence only reproduces under ordering or faults, the
// original SQL is returned unchanged.
func (h *harness) minimize(cfg Config, sql string) string {
	stmt, err := sqlparse.Parse(sql)
	if err != nil {
		return sql
	}
	sel, ok := stmt.(*sqlparse.SelectStmt)
	if !ok {
		return sql
	}
	cfg.Faults = false
	diverges := func(s *sqlparse.SelectStmt) bool {
		cand := RenderSelect(s)
		eng := h.engineFor(cfg)
		got, gerr := h.engRun(eng, "fz-min", cand)
		want, werr := h.db.ExecSQL(cand)
		if gerr != nil || werr != nil {
			return (gerr == nil) != (werr == nil)
		}
		return diffResults(got, want, false) != ""
	}
	if !diverges(sel) {
		return sql
	}
	attempts := 0
	for changed := true; changed && attempts < 60; {
		changed = false
		for _, cand := range shrinkSteps(sel) {
			attempts++
			if diverges(cand) {
				sel = cand
				changed = true
				break
			}
			if attempts >= 60 {
				break
			}
		}
	}
	return RenderSelect(sel)
}

func cloneSel(s *sqlparse.SelectStmt) *sqlparse.SelectStmt {
	c := *s
	c.Items = append([]sqlparse.SelectItem(nil), s.Items...)
	c.Joins = append([]sqlparse.Join(nil), s.Joins...)
	c.GroupBy = append([]sqlparse.Expr(nil), s.GroupBy...)
	c.OrderBy = append([]sqlparse.OrderItem(nil), s.OrderBy...)
	return &c
}

// shrinkSteps proposes one-step-smaller variants of the statement.
func shrinkSteps(s *sqlparse.SelectStmt) []*sqlparse.SelectStmt {
	var out []*sqlparse.SelectStmt
	if s.Limit >= 0 {
		c := cloneSel(s)
		c.Limit = -1
		out = append(out, c)
	}
	if len(s.OrderBy) > 0 {
		c := cloneSel(s)
		c.OrderBy = nil
		out = append(out, c)
	}
	if s.Where != nil {
		c := cloneSel(s)
		c.Where = nil
		out = append(out, c)
		switch w := s.Where.(type) {
		case sqlparse.Binary:
			if w.Op == "AND" || w.Op == "OR" {
				cl := cloneSel(s)
				cl.Where = w.L
				cr := cloneSel(s)
				cr.Where = w.R
				out = append(out, cl, cr)
			}
		case sqlparse.Not:
			c := cloneSel(s)
			c.Where = w.E
			out = append(out, c)
		}
	}
	for i := range s.Joins {
		c := cloneSel(s)
		c.Joins = append(append([]sqlparse.Join(nil), s.Joins[:i]...), s.Joins[i+1:]...)
		out = append(out, c)
	}
	if len(s.Items) > 1 {
		for i := range s.Items {
			c := cloneSel(s)
			c.Items = append(append([]sqlparse.SelectItem(nil), s.Items[:i]...), s.Items[i+1:]...)
			out = append(out, c)
		}
	}
	for i := range s.GroupBy {
		c := cloneSel(s)
		c.GroupBy = append(append([]sqlparse.Expr(nil), s.GroupBy[:i]...), s.GroupBy[i+1:]...)
		out = append(out, c)
	}
	return out
}

// RenderSelect turns a parsed SELECT back into SQL. Expressions use
// their AST String() form, which the parser round-trips.
func RenderSelect(s *sqlparse.SelectStmt) string {
	var sb strings.Builder
	sb.WriteString("SELECT ")
	for i, it := range s.Items {
		if i > 0 {
			sb.WriteString(", ")
		}
		if it.Star {
			sb.WriteString("*")
			continue
		}
		sb.WriteString(it.Expr.String())
		if it.Alias != "" {
			sb.WriteString(" AS " + it.Alias)
		}
	}
	if s.From != nil {
		sb.WriteString(" FROM " + renderTableRef(s.From))
		for _, j := range s.Joins {
			if j.Kind == sqlparse.LeftJoin {
				sb.WriteString(" LEFT JOIN ")
			} else {
				sb.WriteString(" JOIN ")
			}
			sb.WriteString(renderTableRef(j.Table) + " ON " + j.On.String())
		}
	}
	if s.Where != nil {
		sb.WriteString(" WHERE " + s.Where.String())
	}
	if len(s.GroupBy) > 0 {
		parts := make([]string, len(s.GroupBy))
		for i, g := range s.GroupBy {
			parts[i] = g.String()
		}
		sb.WriteString(" GROUP BY " + strings.Join(parts, ", "))
	}
	if len(s.OrderBy) > 0 {
		parts := make([]string, len(s.OrderBy))
		for i, o := range s.OrderBy {
			parts[i] = o.Expr.String()
			if o.Desc {
				parts[i] += " DESC"
			}
		}
		sb.WriteString(" ORDER BY " + strings.Join(parts, ", "))
	}
	if s.Limit >= 0 {
		fmt.Fprintf(&sb, " LIMIT %d", s.Limit)
	}
	return sb.String()
}

func renderTableRef(t *sqlparse.TableRef) string {
	if t.Subquery != nil {
		s := "(" + RenderSelect(t.Subquery) + ")"
		if t.Alias != "" {
			s += " AS " + t.Alias
		}
		return s
	}
	s := t.Name
	if t.Alias != "" {
		s += " AS " + t.Alias
	}
	return s
}

// --- top-level driver ---

// Run executes the full differential campaign: Trials independent
// worlds, each checked pre-DML, through a DML+CTAS sequence, and
// again post-compaction, across the whole matrix. It stops at the
// first divergence. The returned error reports infrastructure
// failures (install, compaction), not divergences.
func Run(opts Options) (Report, error) {
	if opts.Trials <= 0 {
		opts.Trials = 2
	}
	if opts.Queries <= 0 {
		opts.Queries = 70
	}
	logf := opts.Log
	if logf == nil {
		logf = func(string, ...any) {}
	}
	rep := Report{}
	for trial := 0; trial < opts.Trials; trial++ {
		seed := opts.Seed + uint64(trial)*0x9E3779B97F4A7C15
		rep.Trials++
		div, err := runTrial(&rep, seed, trial, opts, logf)
		if err != nil {
			return rep, fmt.Errorf("trial %d (seed %d): %w", trial, seed, err)
		}
		if div != nil {
			rep.Divergence = div
			return rep, nil
		}
		logf("trial %d (seed %d): ok — %d queries, %d executions, %d fault errors",
			trial, seed, rep.Queries, rep.Executions, rep.FaultErrors)
	}
	return rep, nil
}

func runTrial(rep *Report, seed uint64, trial int, opts Options, logf func(string, ...any)) (*Divergence, error) {
	w, err := newWorld()
	if err != nil {
		return nil, err
	}
	gen := NewGen(seed)
	tables := gen.Tables()
	h := &harness{
		w: w, db: NewDB(), seed: seed, trial: trial, rep: rep, logf: logf, tracer: opts.Tracer,
		serve: opts.Serve, sessions: map[*engine.Engine]*serve.Session{},
	}
	if err := h.install(tables); err != nil {
		return nil, err
	}

	pre := make([]GenQuery, opts.Queries)
	for i := range pre {
		pre[i] = gen.Query(tables)
	}
	rep.Queries += len(pre)
	if d := h.runMatrix("pre", pre); d != nil {
		return d, nil
	}

	var managed *GenTable
	for _, t := range tables {
		if t.Managed {
			managed = t
		}
	}
	ctasT, d := h.runDML(gen, managed, fmt.Sprintf("ds.c%d", trial))
	if d != nil {
		return d, nil
	}
	if _, err := w.mgr.Optimize(string(diffAdmin), managed.Full, ""); err != nil {
		return nil, fmt.Errorf("optimize %s: %w", managed.Full, err)
	}
	if ctasT != nil {
		if _, err := w.mgr.Optimize(string(diffAdmin), ctasT.Full, ""); err != nil {
			return nil, fmt.Errorf("optimize %s: %w", ctasT.Full, err)
		}
	}

	all := append([]*GenTable{}, tables...)
	if ctasT != nil {
		all = append(all, ctasT)
	}
	post := append([]GenQuery{}, pre...)
	extra := opts.Queries / 2
	for i := 0; i < extra; i++ {
		post = append(post, gen.Query(all))
	}
	rep.Queries += extra
	if d := h.runMatrix("post", post); d != nil {
		return d, nil
	}
	return nil, nil
}
