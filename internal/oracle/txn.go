package oracle

// The interleaved-transaction oracle: a seeded generator produces a
// schedule of concurrent interactive transactions (overlapping
// lifetimes, overlapping read/write sets across two tables), a driver
// executes it through the real txn layer, and verification replays the
// transactions that actually committed — in commit-version order —
// through the row-at-a-time reference oracle, diffing EVERY table at
// EVERY log version against the decoded data files. That is the
// serializability check in its strongest usable form: the multi-table
// log history must equal some serial execution, and first-committer-
// wins OCC pins that serial order to commit order.
//
// The same schedule runs under the crash-point sweep: for every
// labeled protocol step any transaction passes through (intent, data
// PUT, seal), a fresh world crashes exactly there, recovers from the
// journal + object store alone, re-drives the full schedule (sealed
// transactions no-op via their idempotency IDs), and must converge to
// a serializable, orphan-free state.

import (
	"errors"
	"fmt"

	"biglake/internal/bigmeta"
	"biglake/internal/blmt"
	"biglake/internal/catalog"
	"biglake/internal/colfmt"
	"biglake/internal/crashpoint"
	"biglake/internal/engine"
	"biglake/internal/txn"
	"biglake/internal/vector"
	"biglake/internal/wal"
)

var txnTables = []string{"ds.tx_a", "ds.tx_b"}

func txnPrefix(table string) string {
	return "blmt/ds/" + table[len("ds."):] + "/"
}

func txnSchema() vector.Schema {
	return vector.NewSchema(
		vector.Field{Name: "id", Type: vector.Int64},
		vector.Field{Name: "v", Type: vector.Int64},
	)
}

// Step kinds in a transaction schedule.
const (
	stepBegin = iota
	stepStmt
	stepCommit
	stepRollback
)

type txnStep struct {
	sess int // session index (-1..): setup sessions use negative slots
	kind int
	sql  string // stepStmt only
}

// txnSchedule is one seed-derived interleaved workload. stmts holds
// each transaction's statements in session order — the serial-replay
// script for transactions that end up committing.
type txnSchedule struct {
	seed  uint64
	steps []txnStep
	ids   []string            // txn ID per session index
	stmts map[string][]string // txn ID -> statements
}

// txnID is the stable idempotency identity of one session of one
// seeded schedule: identical across the record pass and every
// crash-resume, so a resumed COMMIT of a sealed transaction no-ops.
func txnID(seed uint64, sess int) string {
	return fmt.Sprintf("itx-%d-s%d", seed, sess)
}

// GenTxnSchedule derives an interleaved schedule from the seed:
// sessions transactions with 2-5 statements each (blind inserts,
// id-targeted updates/deletes on the shared seed rows, table scans),
// begun and committed in seed-shuffled interleaved order. Roughly one
// in five sessions rolls back instead of committing.
func GenTxnSchedule(seed uint64, sessions int) txnSchedule {
	x := seed*2862933555777941757 + 3037000493
	next := func(lo, span int) int {
		x = x*6364136223846793005 + 1442695040888963407
		return lo + int((x>>33)%uint64(span))
	}
	sc := txnSchedule{seed: seed, stmts: make(map[string][]string)}

	// Setup transactions seed both tables with the contended rows
	// (ids 1..4). They run to completion before the interleaved part,
	// so every later session observes them.
	for ti, table := range txnTables {
		sess := -(ti + 1)
		id := txnID(seed, sess)
		sql := fmt.Sprintf("INSERT INTO %s VALUES (1, 10), (2, 20), (3, 30), (4, 40)", table)
		sc.steps = append(sc.steps,
			txnStep{sess: sess, kind: stepBegin},
			txnStep{sess: sess, kind: stepStmt, sql: sql},
			txnStep{sess: sess, kind: stepCommit},
		)
		sc.ids = append(sc.ids, id)
		sc.stmts[id] = []string{sql}
	}

	// Per-session statement scripts.
	perSess := make([][]txnStep, sessions)
	for i := 0; i < sessions; i++ {
		id := txnID(seed, i)
		sc.ids = append(sc.ids, id)
		var script []txnStep
		script = append(script, txnStep{sess: i, kind: stepBegin})
		nOps := next(2, 4)
		for op := 0; op < nOps; op++ {
			table := txnTables[next(0, len(txnTables))]
			var sql string
			switch roll := next(0, 100); {
			case roll < 40: // blind insert: always commutes
				base := 1000*(i+1) + 10*op
				sql = fmt.Sprintf("INSERT INTO %s VALUES (%d, %d), (%d, %d)",
					table, base, base+next(1, 9), base+1, base+next(1, 9))
			case roll < 65: // contended read-modify-write on a seed row
				sql = fmt.Sprintf("UPDATE %s SET v = v + %d WHERE id = %d",
					table, next(1, 9), next(1, 4))
			case roll < 80: // contended delete
				sql = fmt.Sprintf("DELETE FROM %s WHERE id = %d", table, next(1, 4))
			default: // pure read: still enters the read set
				sql = "SELECT id, v FROM " + table
			}
			script = append(script, txnStep{sess: i, kind: stepStmt, sql: sql})
			sc.stmts[id] = append(sc.stmts[id], sql)
		}
		if next(0, 10) < 8 {
			script = append(script, txnStep{sess: i, kind: stepCommit})
		} else {
			script = append(script, txnStep{sess: i, kind: stepRollback})
		}
		perSess[i] = script
	}

	// Interleave: repeatedly pick a live session and emit its next
	// step. Sessions overlap arbitrarily — that is the point.
	live := make([]int, sessions)
	for i := range live {
		live[i] = i
	}
	for len(live) > 0 {
		k := next(0, len(live))
		i := live[k]
		sc.steps = append(sc.steps, perSess[i][0])
		perSess[i] = perSess[i][1:]
		if len(perSess[i]) == 0 {
			live = append(live[:k], live[k+1:]...)
		}
	}

	// Tail transaction: begins after every interleaved session has
	// resolved, writes BOTH tables, and commits uncontended — so every
	// seed's crash surface includes a multi-table, multi-file seal.
	tail := sessions
	tid := txnID(seed, tail)
	sc.ids = append(sc.ids, tid)
	sc.steps = append(sc.steps, txnStep{sess: tail, kind: stepBegin})
	for ti, table := range txnTables {
		base := 9000 + 100*ti
		sql := fmt.Sprintf("INSERT INTO %s VALUES (%d, %d)", table, base, base+next(1, 9))
		sc.steps = append(sc.steps, txnStep{sess: tail, kind: stepStmt, sql: sql})
		sc.stmts[tid] = append(sc.stmts[tid], sql)
	}
	sc.steps = append(sc.steps, txnStep{sess: tail, kind: stepCommit})
	return sc
}

// txnWorld is one journaled, crash-instrumented lakehouse whose only
// write path is the interactive transaction layer.
type txnWorld struct {
	w     *world
	j     *wal.Journal
	cp    *crashpoint.Injector
	eng   *engine.Engine
	tm    *txn.Manager
	acked int64
}

func newTxnWorld() (*txnWorld, error) {
	w, err := newWorld()
	if err != nil {
		return nil, err
	}
	for _, table := range txnTables {
		if err := w.cat.CreateTable(catalog.Table{
			Dataset: "ds", Name: table[len("ds."):], Type: catalog.Managed, Schema: txnSchema(),
			Cloud: "gcp", Bucket: diffBucket, Prefix: txnPrefix(table), Connection: diffConn,
		}); err != nil {
			return nil, err
		}
	}
	j, err := wal.Open(w.store, w.cred, diffBucket, "")
	if err != nil {
		return nil, err
	}
	tw := &txnWorld{w: w, j: j, cp: crashpoint.New()}
	tw.wire()
	return tw, nil
}

// wire (re)assembles the engine and transaction manager around the
// world's current log — at boot and after recovery swaps in a
// replayed one.
func (tw *txnWorld) wire() {
	w := tw.w
	w.log.AttachJournal(tw.j)
	w.log.Crash = tw.cp

	meta := bigmeta.NewCache(w.clock, nil)
	eng := engine.New(w.cat, w.auth, meta, w.log, w.clock, w.stores, engine.Options{
		UseMetadataCache: true, EnableDPP: true, PruneGranularity: bigmeta.PruneFiles,
		GCLean: true,
	})
	eng.ManagedCred = w.cred
	mgr := blmt.New(w.cat, w.auth, w.log, w.clock, w.stores)
	mgr.DefaultCloud, mgr.DefaultBucket, mgr.DefaultConnection = "gcp", diffBucket, diffConn
	mgr.Journal, mgr.Crash = tw.j, tw.cp
	w.mgr = mgr
	eng.SetMutator(mgr)
	tw.eng = eng

	tm := txn.NewManager(eng, tw.j)
	tm.Crash = tw.cp
	tw.tm = tm
}

// run drives (or, after a crash, re-drives) the schedule. Conflict
// and rollback aborts are expected outcomes, not failures; any other
// error is. Returns the set of transactions that the driver saw
// commit this run.
func (tw *txnWorld) run(sc txnSchedule) (map[string]int64, error) {
	sessions := make(map[int]*txn.Session)
	committed := make(map[string]int64)
	for _, st := range sc.steps {
		s := sessions[st.sess]
		switch st.kind {
		case stepBegin:
			sessions[st.sess] = tw.tm.Begin(diffAdmin, txnID(sc.seed, st.sess))
		case stepStmt:
			if _, err := s.Exec(st.sql); err != nil {
				return nil, fmt.Errorf("s%d %q: %w", st.sess, st.sql, err)
			}
		case stepCommit:
			v, err := s.Commit(nil)
			if err != nil {
				if errors.Is(err, txn.ErrConflict) {
					break // loser of first-committer-wins: expected
				}
				return nil, fmt.Errorf("s%d commit: %w", st.sess, err)
			}
			committed[s.ID] = v
			tw.ack()
		case stepRollback:
			if err := s.Rollback(); err != nil {
				return nil, fmt.Errorf("s%d rollback: %w", st.sess, err)
			}
		}
	}
	return committed, nil
}

func (tw *txnWorld) ack() { tw.acked = tw.w.log.Version() }

// recoverWorld discards everything in memory and rebuilds from the
// journal + object store, then collects orphaned data files.
func (tw *txnWorld) recoverWorld() error {
	j, err := wal.Open(tw.w.store, tw.w.cred, diffBucket, "")
	if err != nil {
		return fmt.Errorf("reopen journal: %w", err)
	}
	rec, err := wal.Recover(j, tw.w.clock, nil)
	if err != nil {
		return fmt.Errorf("recover: %w", err)
	}
	v := rec.Log.Version()
	if v < tw.acked || v > tw.acked+1 {
		return fmt.Errorf("recovered version %d outside [acked %d, acked+1]", v, tw.acked)
	}
	tw.j = j
	tw.w.log = rec.Log
	tw.wire()
	var prefixes []string
	for _, table := range txnTables {
		prefixes = append(prefixes, txnPrefix(table)+"data/")
	}
	if _, err := wal.GCOrphans(tw.w.store, tw.w.cred, diffBucket, prefixes, rec.Log); err != nil {
		return fmt.Errorf("orphan gc: %w", err)
	}
	return nil
}

// tableStateAt decodes a table's actual data files at one pinned log
// version into a resultset.
func (tw *txnWorld) tableStateAt(table string, version int64) (*Resultset, error) {
	files, _, err := tw.w.log.Snapshot(table, version)
	if err != nil {
		return nil, err
	}
	merged := vector.NewBuilder(txnSchema()).Build()
	for _, f := range files {
		data, _, err := tw.w.store.Get(tw.w.cred, f.Bucket, f.Key)
		if err != nil {
			return nil, fmt.Errorf("GET %s: %w", f.Key, err)
		}
		r, err := colfmt.NewVectorizedReader(data, nil, nil)
		if err != nil {
			return nil, err
		}
		b, err := r.ReadAll()
		if err != nil {
			return nil, err
		}
		if merged, err = vector.AppendBatch(merged, b); err != nil {
			return nil, err
		}
	}
	return FromBatch(merged), nil
}

// verifySerializable replays the transactions that actually sealed —
// in commit-version order — through the reference oracle, and diffs
// both tables at every version against the decoded lakehouse state.
// It then checks the orphan-free contract: one GC pass after the fact
// deletes nothing, and every referenced file exists.
func (tw *txnWorld) verifySerializable(sc txnSchedule) error {
	head := tw.w.log.Version()
	// Map each sealed version to its transaction via the idempotency
	// index; every version must belong to a known transaction.
	byVersion := make(map[int64]string)
	for _, id := range sc.ids {
		if v, ok := tw.w.log.AppliedTx(id); ok {
			byVersion[v] = id
		}
	}
	if int64(len(byVersion)) != head {
		return fmt.Errorf("%d sealed versions but %d committed transactions known", head, len(byVersion))
	}

	db := NewDB()
	for _, table := range txnTables {
		db.Add(&Table{Name: table, Schema: txnSchema()})
	}
	for v := int64(1); v <= head; v++ {
		id, ok := byVersion[v]
		if !ok {
			return fmt.Errorf("version %d sealed by unknown transaction", v)
		}
		for _, sql := range sc.stmts[id] {
			if _, err := db.ExecSQL(sql); err != nil {
				return fmt.Errorf("oracle replay %s %q: %w", id, sql, err)
			}
		}
		for _, table := range txnTables {
			got, err := tw.tableStateAt(table, v)
			if err != nil {
				return err
			}
			want, err := db.ExecSQL("SELECT id, v FROM " + table)
			if err != nil {
				return err
			}
			if d := diffResults(got, want, false); d != "" {
				return fmt.Errorf("%s at v%d diverges from serial execution of committed history: %s", table, v, d)
			}
		}
	}

	// Orphan-free: one GC pass finds nothing left to delete, and every
	// referenced file exists.
	var prefixes []string
	for _, table := range txnTables {
		prefixes = append(prefixes, txnPrefix(table)+"data/")
	}
	rep, err := wal.GCOrphans(tw.w.store, tw.w.cred, diffBucket, prefixes, tw.w.log)
	if err != nil {
		return err
	}
	if len(rep.Deleted) != 0 {
		return fmt.Errorf("orphaned objects survived recovery GC: %v", rep.Deleted)
	}
	for _, table := range txnTables {
		files, _, err := tw.w.log.Snapshot(table, -1)
		if err != nil {
			return err
		}
		for _, f := range files {
			if _, err := tw.w.store.Head(tw.w.cred, f.Bucket, f.Key); err != nil {
				return fmt.Errorf("referenced file %s missing: %w", f.Key, err)
			}
		}
	}
	return nil
}

// TxnSweepOptions configures an interleaved-transaction crash sweep.
type TxnSweepOptions struct {
	Seed     uint64
	Sessions int // interleaved sessions beyond the two setup txns (default 3)
	Log      func(format string, args ...any)
}

// TxnSweepReport summarizes one sweep.
type TxnSweepReport struct {
	Points    int      // crash points exercised (one fresh world each)
	Labels    []string // distinct crash labels covered
	Committed int      // transactions sealed in the record pass
	Failure   *CrashFailure
}

// requiredTxnLabels is the coverage contract for the transaction
// commit protocol: the sweep fails if the schedule stops exercising
// any of these steps.
var requiredTxnLabels = []string{
	"txn.before_intent", "txn.after_intent",
	"txn.before_put", "txn.after_put", "txn.after_seal",
	"journal.before_seal", "journal.after_seal",
}

// RunTxnOracle executes one interleaved schedule with no crashes and
// verifies serializability — the fast differential check.
func RunTxnOracle(seed uint64, sessions int) error {
	if sessions <= 0 {
		sessions = 3
	}
	sc := GenTxnSchedule(seed, sessions)
	tw, err := newTxnWorld()
	if err != nil {
		return err
	}
	if _, err := tw.run(sc); err != nil {
		return err
	}
	return tw.verifySerializable(sc)
}

// RunTxnCrashSweep enumerates every crash point the interleaved
// schedule passes through, and for each one: crash there, recover,
// re-drive the full schedule (sealed transactions no-op), verify
// serializability and the orphan-free contract.
func RunTxnCrashSweep(opts TxnSweepOptions) (TxnSweepReport, error) {
	logf := opts.Log
	if logf == nil {
		logf = func(string, ...any) {}
	}
	if opts.Sessions <= 0 {
		opts.Sessions = 3
	}
	sc := GenTxnSchedule(opts.Seed, opts.Sessions)
	rep := TxnSweepReport{}

	// Record pass: enumerate the crash surface, pin the baseline.
	tw, err := newTxnWorld()
	if err != nil {
		return rep, err
	}
	committed, err := tw.run(sc)
	if err != nil {
		return rep, fmt.Errorf("record pass: %w", err)
	}
	rep.Committed = len(committed)
	if err := tw.verifySerializable(sc); err != nil {
		return rep, fmt.Errorf("record pass (no crash): %w", err)
	}
	hits := tw.cp.Hits()
	seen := map[string]bool{}
	for _, h := range hits {
		if !seen[h.Label] {
			seen[h.Label] = true
			rep.Labels = append(rep.Labels, h.Label)
		}
	}
	for _, l := range requiredTxnLabels {
		if !seen[l] {
			return rep, fmt.Errorf("schedule no longer reaches crash point %q", l)
		}
	}
	logf("txn crash surface: %d points across %d labels, %d committed txns (seed %d)",
		len(hits), len(rep.Labels), rep.Committed, opts.Seed)

	for _, h := range hits {
		if fail := txnSweepOne(opts.Seed, sc, h); fail != nil {
			rep.Failure = fail
			return rep, nil
		}
		rep.Points++
	}
	logf("swept %d txn crash points: every recovery serializable, zero orphans", rep.Points)
	return rep, nil
}

func txnSweepOne(seed uint64, sc txnSchedule, h crashpoint.Hit) *CrashFailure {
	fail := func(format string, args ...any) *CrashFailure {
		return &CrashFailure{Seed: seed, Label: h.Label, Hit: h.N,
			Detail: fmt.Sprintf(format, args...) + " (txn sweep)"}
	}
	tw, err := newTxnWorld()
	if err != nil {
		return fail("world: %v", err)
	}
	tw.cp.Arm(h.Label, h.N)
	sig, runErr := crashpoint.Run(func() error {
		_, e := tw.run(sc)
		return e
	})
	if runErr != nil {
		return fail("schedule failed before the armed point: %v", runErr)
	}
	if sig == nil {
		return fail("armed point never fired (schedule drifted from record pass)")
	}
	// Process death: every in-memory session is gone. Recovery
	// rebuilds from durable state; the client re-drives the whole
	// schedule with the same transaction IDs — sealed commits no-op,
	// everything else applies exactly once.
	if err := tw.recoverWorld(); err != nil {
		return fail("recovery: %v", err)
	}
	if _, err := tw.run(sc); err != nil {
		return fail("re-drive after recovery: %v", err)
	}
	if err := tw.verifySerializable(sc); err != nil {
		return fail("%v", err)
	}
	return nil
}
