package oracle

// Crash-point sweep entry point. Replay a failure with:
//
//	go test ./internal/oracle -run TestCrashSweep -seed=<n>
//
// (the -seed flag is shared with TestDifferential).

import "testing"

// TestCrashSweep kills the "process" at every labeled step of the
// write/commit/compaction/export protocols and verifies recovery:
// no acked commit lost, no unacked commit visible, no duplicate rows,
// zero unreachable objects after GC, converged Iceberg hint.
func TestCrashSweep(t *testing.T) {
	rep, err := RunCrashSweep(CrashOptions{Seed: *seedFlag, Log: t.Logf})
	if err != nil {
		t.Fatalf("crash sweep failed to run: %v", err)
	}
	if rep.Failure != nil {
		t.Fatal(rep.Failure.Format())
	}
	if rep.Points == 0 {
		t.Fatal("sweep exercised no crash points")
	}
	t.Logf("ok: %d crash points across %d labels, seed=%d (replay: go test ./internal/oracle -run TestCrashSweep -seed=%d)",
		rep.Points, len(rep.Labels), *seedFlag, *seedFlag)
}

// TestCrashSweepDeterministic pins the sweep as a pure function of the
// seed: the enumerated crash surface must be identical across runs.
func TestCrashSweepDeterministic(t *testing.T) {
	run := func() CrashReport {
		rep, err := RunCrashSweep(CrashOptions{Seed: 7})
		if err != nil {
			t.Fatalf("run failed: %v", err)
		}
		if rep.Failure != nil {
			t.Fatal(rep.Failure.Format())
		}
		return rep
	}
	a, b := run(), run()
	if a.Points != b.Points || len(a.Labels) != len(b.Labels) {
		t.Fatalf("non-deterministic sweep: %d/%d points, %d/%d labels",
			a.Points, b.Points, len(a.Labels), len(b.Labels))
	}
}
