package oracle

import (
	"fmt"
	"strconv"
	"strings"

	"biglake/internal/sim"
	"biglake/internal/vector"
)

// GenTable describes one generated table: where it lives, its schema,
// its partition column (BigLake tables only), and the initial rows.
type GenTable struct {
	Full         string // "ds.t0"
	Managed      bool
	PartitionCol string // "" for managed tables
	Schema       vector.Schema
	Rows         [][]vector.Value
}

// GenQuery is one generated SELECT plus the comparison contract it
// supports: Ordered queries carry an ORDER BY over every output
// column, so engine and oracle must agree on the exact row sequence;
// unordered queries are compared as multisets.
type GenQuery struct {
	SQL     string
	Ordered bool
}

// Gen is the seeded statement generator. All randomness flows from
// one sim.RNG, so a (seed, call sequence) pair is fully reproducible.
type Gen struct {
	rng *sim.RNG
	seq int // fresh-alias counter
}

// NewGen builds a generator for the seed.
func NewGen(seed uint64) *Gen { return &Gen{rng: sim.NewRNG(seed)} }

func (g *Gen) intn(n int) int        { return g.rng.Intn(n) }
func (g *Gen) chance(p float64) bool { return g.rng.Float64() < p }
func (g *Gen) pick(n int) int        { return g.rng.Intn(n) }

var stringPool = []string{"alpha", "beta", "gamma", "delta", "omega"}
var partitionPool = []string{"pa", "pb", "pc", "pd"}

// Tables generates the trial's world: two partitioned BigLake tables
// and one managed (DML-able) table, with globally unique bare column
// names so unqualified references never become ambiguous.
func (g *Gen) Tables() []*GenTable {
	var out []*GenTable
	for i := 0; i < 2; i++ {
		schema := vector.NewSchema(
			vector.Field{Name: fmt.Sprintf("p%d", i), Type: vector.String},
			vector.Field{Name: fmt.Sprintf("k%d", i), Type: vector.Int64},
			vector.Field{Name: fmt.Sprintf("v%d", i), Type: vector.Int64},
			vector.Field{Name: fmt.Sprintf("f%d", i), Type: vector.Float64},
			vector.Field{Name: fmt.Sprintf("s%d", i), Type: vector.String},
			vector.Field{Name: fmt.Sprintf("b%d", i), Type: vector.Bool},
			vector.Field{Name: fmt.Sprintf("ts%d", i), Type: vector.Timestamp},
		)
		t := &GenTable{
			Full:         fmt.Sprintf("ds.t%d", i),
			PartitionCol: fmt.Sprintf("p%d", i),
			Schema:       schema,
		}
		nparts := 2 + g.intn(3)
		rows := 30 + g.intn(50)
		for r := 0; r < rows; r++ {
			t.Rows = append(t.Rows, []vector.Value{
				vector.StringValue(partitionPool[g.intn(nparts)]),
				vector.IntValue(int64(g.intn(10))),
				g.maybeNull(0.15, vector.IntValue(int64(g.intn(50)))),
				g.maybeNull(0.10, g.dyadic()),
				g.maybeNull(0.10, vector.StringValue(stringPool[g.intn(len(stringPool))])),
				g.maybeNull(0.10, vector.BoolValue(g.chance(0.5))),
				g.maybeNull(0.10, vector.TimestampValue(int64(20240100+g.intn(100)))),
			})
		}
		out = append(out, t)
	}
	m := &GenTable{
		Full:    "ds.m2",
		Managed: true,
		Schema: vector.NewSchema(
			vector.Field{Name: "k2", Type: vector.Int64},
			vector.Field{Name: "v2", Type: vector.Int64},
			vector.Field{Name: "f2", Type: vector.Float64},
			vector.Field{Name: "s2", Type: vector.String},
			vector.Field{Name: "b2", Type: vector.Bool},
		),
	}
	rows := 25 + g.intn(40)
	for r := 0; r < rows; r++ {
		m.Rows = append(m.Rows, []vector.Value{
			vector.IntValue(int64(g.intn(10))),
			g.maybeNull(0.15, vector.IntValue(int64(g.intn(50)))),
			g.maybeNull(0.10, g.dyadic()),
			g.maybeNull(0.10, vector.StringValue(stringPool[g.intn(len(stringPool))])),
			g.maybeNull(0.10, vector.BoolValue(g.chance(0.5))),
		})
	}
	out = append(out, m)
	return out
}

// dyadic returns a non-negative float that is exactly representable
// with few mantissa bits (k * 0.25), so sums are exact and therefore
// independent of accumulation order — the engine and oracle may visit
// rows in different orders.
func (g *Gen) dyadic() vector.Value {
	return vector.FloatValue(float64(g.intn(8000)) * 0.25)
}

func (g *Gen) maybeNull(p float64, v vector.Value) vector.Value {
	if g.chance(p) {
		return vector.NullValue
	}
	return v
}

// --- literal rendering ---

func renderValue(v vector.Value) string {
	switch v.Type {
	case vector.Invalid:
		return "NULL"
	case vector.Int64, vector.Timestamp:
		return strconv.FormatInt(v.I, 10)
	case vector.Float64:
		s := strconv.FormatFloat(v.F, 'f', -1, 64)
		if !strings.Contains(s, ".") {
			s += ".0"
		}
		return s
	case vector.Bool:
		if v.B {
			return "TRUE"
		}
		return "FALSE"
	case vector.String:
		return "'" + strings.ReplaceAll(v.S, "'", "''") + "'"
	}
	return "NULL"
}

// scopeCol is one referencable column while generating a query.
type scopeCol struct {
	qual string // table alias/qualifier; "" when unqualified is fine
	name string
	typ  vector.Type
	t    *GenTable
	idx  int // column index in t.Schema
}

func (c scopeCol) ref(g *Gen) string {
	if c.qual != "" && g.chance(0.7) {
		return c.qual + "." + c.name
	}
	return c.name
}

// litFor draws a comparison literal for the column: usually an actual
// data value (so predicates are selective and pruning boundaries get
// exercised), otherwise a fresh random value of the right type.
func (g *Gen) litFor(c scopeCol) string {
	if len(c.t.Rows) > 0 && g.chance(0.7) {
		for try := 0; try < 4; try++ {
			v := c.t.Rows[g.intn(len(c.t.Rows))][c.idx]
			if !v.IsNull() {
				return renderValue(v)
			}
		}
	}
	switch c.typ {
	case vector.Int64:
		return strconv.Itoa(g.intn(60))
	case vector.Float64:
		return renderValue(g.dyadic())
	case vector.String:
		return renderValue(vector.StringValue(stringPool[g.intn(len(stringPool))]))
	case vector.Bool:
		return renderValue(vector.BoolValue(g.chance(0.5)))
	case vector.Timestamp:
		return strconv.Itoa(20240100 + g.intn(100))
	}
	return "0"
}

var numOps = []string{"=", "!=", "<", "<=", ">", ">="}

// predicate generates a boolean expression tree over the scope.
func (g *Gen) predicate(scope []scopeCol, depth int) string {
	if depth > 0 && g.chance(0.4) {
		switch g.pick(3) {
		case 0:
			return "(" + g.predicate(scope, depth-1) + " AND " + g.predicate(scope, depth-1) + ")"
		case 1:
			return "(" + g.predicate(scope, depth-1) + " OR " + g.predicate(scope, depth-1) + ")"
		default:
			return "NOT (" + g.predicate(scope, depth-1) + ")"
		}
	}
	return g.leaf(scope)
}

func (g *Gen) leaf(scope []scopeCol) string {
	c := scope[g.intn(len(scope))]
	// Partition columns get extra weight so partition pruning fires.
	for _, sc := range scope {
		if sc.t.PartitionCol == sc.name && g.chance(0.25) {
			c = sc
			break
		}
	}
	switch {
	case c.typ == vector.Bool && g.chance(0.4):
		if g.chance(0.5) {
			return c.ref(g)
		}
		return "NOT " + c.ref(g)
	case g.chance(0.12): // col op col of the same type
		for try := 0; try < 6; try++ {
			o := scope[g.intn(len(scope))]
			if o.typ == c.typ && !(o.qual == c.qual && o.name == c.name) {
				return c.ref(g) + " " + numOps[g.intn(len(numOps))] + " " + o.ref(g)
			}
		}
		fallthrough
	case g.chance(0.12) && c.typ != vector.Bool: // IN list
		n := 2 + g.intn(3)
		items := make([]string, n)
		for i := range items {
			items[i] = g.litFor(c)
		}
		if g.chance(0.25) {
			return c.ref(g) + " NOT IN (" + strings.Join(items, ", ") + ")"
		}
		return c.ref(g) + " IN (" + strings.Join(items, ", ") + ")"
	case g.chance(0.12) && numericType(c.typ): // BETWEEN range
		lo, hi := g.litFor(c), g.litFor(c)
		if g.chance(0.2) {
			return c.ref(g) + " NOT BETWEEN " + lo + " AND " + hi
		}
		return c.ref(g) + " BETWEEN " + lo + " AND " + hi
	case g.chance(0.10) && c.typ == vector.Int64: // arithmetic comparand
		return "(" + c.ref(g) + " + " + strconv.Itoa(g.intn(5)) + ") " + numOps[g.intn(len(numOps))] + " " + g.litFor(c)
	case g.chance(0.06) && c.typ == vector.Float64: // division, incl. by zero
		return "(" + c.ref(g) + " / " + strconv.Itoa(g.intn(3)) + ".0) >= " + g.litFor(c)
	}
	ops := numOps
	if c.typ == vector.String {
		ops = []string{"=", "!=", "<", ">"}
	}
	if c.typ == vector.Bool {
		ops = []string{"=", "!="}
	}
	return c.ref(g) + " " + ops[g.intn(len(ops))] + " " + g.litFor(c)
}

// tableScope lists a table's columns under a qualifier.
func tableScope(t *GenTable, qual string) []scopeCol {
	var out []scopeCol
	for i, f := range t.Schema.Fields {
		out = append(out, scopeCol{qual: qual, name: f.Name, typ: f.Type, t: t, idx: i})
	}
	return out
}

// Query generates one SELECT over the given tables.
func (g *Gen) Query(tables []*GenTable) GenQuery {
	// Choose sources: one table, or a two-table join. Joins need an
	// INT64 key on both sides (CTAS tables may have none).
	t1 := tables[g.intn(len(tables))]
	join := len(tables) > 1 && g.chance(0.4) && hasIntCol(t1)
	var joinable []*GenTable
	if join {
		for _, t := range tables {
			if t != t1 && hasIntCol(t) {
				joinable = append(joinable, t)
			}
		}
		join = len(joinable) > 0
	}
	var scope []scopeCol
	var from string
	if join {
		t2 := joinable[g.intn(len(joinable))]
		s1, s2 := tableScope(t1, "ga"), tableScope(t2, "gb")
		// Join on same-type int columns so keys actually collide.
		k1 := g.intCol(s1)
		k2 := g.intCol(s2)
		on := "ga." + k1 + " = gb." + k2
		if g.chance(0.2) {
			on += " AND ga." + g.intCol(s1) + " = gb." + g.intCol(s2)
		}
		kind := "JOIN"
		if g.chance(0.3) {
			kind = "LEFT JOIN"
		}
		from = t1.Full + " AS ga " + kind + " " + t2.Full + " AS gb ON " + on
		scope = append(s1, s2...)
	} else if g.chance(0.25) {
		from = t1.Full + " AS ga"
		scope = tableScope(t1, "ga")
	} else {
		from = t1.Full
		scope = tableScope(t1, "")
	}

	agg := g.chance(0.35)
	if agg {
		return g.aggQuery(from, scope)
	}
	return g.plainQuery(from, scope)
}

func hasIntCol(t *GenTable) bool {
	for _, f := range t.Schema.Fields {
		if f.Type == vector.Int64 {
			return true
		}
	}
	return false
}

func (g *Gen) intCol(scope []scopeCol) string {
	var ints []string
	for _, c := range scope {
		if c.typ == vector.Int64 {
			ints = append(ints, c.name)
		}
	}
	return ints[g.intn(len(ints))]
}

// plainQuery generates a non-aggregate SELECT.
func (g *Gen) plainQuery(from string, scope []scopeCol) GenQuery {
	var items []string
	var outNames []string
	if g.chance(0.2) {
		items = []string{"*"}
		for _, c := range scope {
			outNames = append(outNames, c.name) // unique bare names unqualify
		}
	} else {
		n := 1 + g.intn(4)
		perm := g.perm(len(scope))
		for i := 0; i < n && i < len(scope); i++ {
			c := scope[perm[i]]
			items = append(items, c.ref(g))
			outNames = append(outNames, c.name)
		}
		if g.chance(0.35) {
			expr, name := g.computedItem(scope)
			items = append(items, expr+" AS "+name)
			outNames = append(outNames, name)
		}
	}

	var sb strings.Builder
	sb.WriteString("SELECT " + strings.Join(items, ", ") + " FROM " + from)
	if g.chance(0.7) {
		sb.WriteString(" WHERE " + g.predicate(scope, 2))
	}

	ordered := false
	if g.chance(0.7) {
		// Total order: every output column, shuffled, random direction.
		ordered = true
		sb.WriteString(" ORDER BY " + g.orderList(outNames))
		if g.chance(0.4) {
			sb.WriteString(" LIMIT " + strconv.Itoa(g.intn(40)))
		}
	} else if g.chance(0.4) {
		// Partial order over an input column (possibly unprojected):
		// exercises the engine's input-batch fallback. Compared as a
		// multiset, no LIMIT.
		c := scope[g.intn(len(scope))]
		sb.WriteString(" ORDER BY " + c.ref(g))
		if g.chance(0.5) {
			sb.WriteString(" DESC")
		}
	}
	return GenQuery{SQL: sb.String(), Ordered: ordered}
}

// computedItem returns an expression with a fresh alias.
func (g *Gen) computedItem(scope []scopeCol) (expr, name string) {
	g.seq++
	name = fmt.Sprintf("x%d", g.seq)
	var ints, floats, strs []scopeCol
	for _, c := range scope {
		switch c.typ {
		case vector.Int64:
			ints = append(ints, c)
		case vector.Float64:
			floats = append(floats, c)
		case vector.String:
			strs = append(strs, c)
		}
	}
	switch {
	case len(floats) > 0 && g.chance(0.35):
		c := floats[g.intn(len(floats))]
		if g.chance(0.4) { // division incl. by zero -> NULL
			d := scope[g.intn(len(scope))]
			if d.typ == vector.Int64 || d.typ == vector.Float64 {
				return "(" + c.ref(g) + " / " + d.ref(g) + ")", name
			}
		}
		return "(" + c.ref(g) + " * " + strconv.Itoa(1+g.intn(4)) + ")", name
	case len(strs) > 1 && g.chance(0.3):
		a, b := strs[g.intn(len(strs))], strs[g.intn(len(strs))]
		return "(" + a.ref(g) + " + " + b.ref(g) + ")", name
	case len(ints) > 0:
		c := ints[g.intn(len(ints))]
		switch g.pick(3) {
		case 0:
			return "(" + c.ref(g) + " + " + strconv.Itoa(g.intn(10)) + ")", name
		case 1:
			return "(" + c.ref(g) + " * " + strconv.Itoa(1+g.intn(5)) + ")", name
		default: // int division is float division
			return "(" + c.ref(g) + " / " + strconv.Itoa(g.intn(4)) + ")", name
		}
	}
	c := scope[g.intn(len(scope))]
	return c.ref(g), name
}

// aggQuery generates a GROUP BY / aggregate SELECT.
func (g *Gen) aggQuery(from string, scope []scopeCol) GenQuery {
	var items, groupBy, outNames []string

	global := g.chance(0.25)
	if !global {
		nKeys := 1 + g.intn(2)
		perm := g.perm(len(scope))
		used := 0
		for _, pi := range perm {
			if used == nKeys {
				break
			}
			c := scope[pi]
			if c.typ == vector.Float64 && g.chance(0.5) {
				continue // prefer low-cardinality keys
			}
			key := c.ref(g)
			if c.typ == vector.Int64 && g.chance(0.15) {
				key = "(" + key + " * 2)" // expression group key
			}
			groupBy = append(groupBy, key)
			// Project the key under an alias so ORDER BY binds cleanly.
			g.seq++
			alias := fmt.Sprintf("gk%d", g.seq)
			items = append(items, key+" AS "+alias)
			outNames = append(outNames, alias)
			used++
		}
	}

	nAggs := 1 + g.intn(3)
	for i := 0; i < nAggs; i++ {
		g.seq++
		alias := fmt.Sprintf("ag%d", g.seq)
		items = append(items, g.aggCall(scope)+" AS "+alias)
		outNames = append(outNames, alias)
	}

	var sb strings.Builder
	sb.WriteString("SELECT " + strings.Join(items, ", ") + " FROM " + from)
	if g.chance(0.6) {
		sb.WriteString(" WHERE " + g.predicate(scope, 2))
	}
	if len(groupBy) > 0 {
		sb.WriteString(" GROUP BY " + strings.Join(groupBy, ", "))
	}
	ordered := false
	if g.chance(0.7) || global {
		ordered = true
		sb.WriteString(" ORDER BY " + g.orderList(outNames))
		if g.chance(0.3) {
			sb.WriteString(" LIMIT " + strconv.Itoa(g.intn(20)))
		}
	}
	return GenQuery{SQL: sb.String(), Ordered: ordered}
}

// aggCall picks an aggregate over suitable columns. Aggregate
// arguments never contain division: quotients are not exactly
// representable, so their sums would depend on accumulation order.
func (g *Gen) aggCall(scope []scopeCol) string {
	var nums, any []scopeCol
	for _, c := range scope {
		any = append(any, c)
		if numericType(c.typ) {
			nums = append(nums, c)
		}
	}
	switch g.pick(6) {
	case 0:
		return "COUNT(*)"
	case 1:
		c := any[g.intn(len(any))]
		return "COUNT(" + c.ref(g) + ")"
	case 2:
		if len(nums) == 0 {
			return "COUNT(*)"
		}
		c := nums[g.intn(len(nums))]
		return "SUM(" + c.ref(g) + ")"
	case 3:
		if len(nums) == 0 {
			return "COUNT(*)"
		}
		c := nums[g.intn(len(nums))]
		return "AVG(" + c.ref(g) + ")"
	case 4:
		c := any[g.intn(len(any))]
		return "MIN(" + c.ref(g) + ")"
	default:
		c := any[g.intn(len(any))]
		if g.chance(0.2) && len(nums) > 0 {
			n := nums[g.intn(len(nums))]
			return "SUM(" + n.ref(g) + " * 2)"
		}
		return "MAX(" + c.ref(g) + ")"
	}
}

func (g *Gen) orderList(outNames []string) string {
	perm := g.perm(len(outNames))
	parts := make([]string, len(outNames))
	for i, pi := range perm {
		parts[i] = outNames[pi]
		if g.chance(0.5) {
			parts[i] += " DESC"
		}
	}
	return strings.Join(parts, ", ")
}

func (g *Gen) perm(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := g.intn(i + 1)
		out[i], out[j] = out[j], out[i]
	}
	return out
}

// --- DML ---

// DML generates one INSERT/UPDATE/DELETE against a managed table.
// Expressions that produce stored values avoid division so stored
// floats stay exactly representable.
func (g *Gen) DML(t *GenTable) string {
	scope := tableScope(t, "")
	switch {
	case g.chance(0.45):
		return g.insert(t)
	case g.chance(0.55):
		return g.update(t, scope)
	default:
		sql := "DELETE FROM " + t.Full
		if g.chance(0.9) {
			sql += " WHERE " + g.predicate(scope, 1)
		}
		return sql
	}
}

func (g *Gen) insert(t *GenTable) string {
	cols := make([]string, 0, len(t.Schema.Fields))
	idxs := make([]int, 0, len(t.Schema.Fields))
	subset := g.chance(0.3)
	for i, f := range t.Schema.Fields {
		if subset && g.chance(0.3) && len(t.Schema.Fields)-i > 1 {
			continue
		}
		cols = append(cols, f.Name)
		idxs = append(idxs, i)
	}
	nRows := 1 + g.intn(4)
	rows := make([]string, nRows)
	for r := range rows {
		vals := make([]string, len(cols))
		for i, ci := range idxs {
			f := t.Schema.Fields[ci]
			if g.chance(0.12) {
				vals[i] = "NULL"
				continue
			}
			switch f.Type {
			case vector.Int64:
				vals[i] = strconv.Itoa(g.intn(50))
			case vector.Float64:
				if g.chance(0.3) {
					vals[i] = strconv.Itoa(g.intn(40)) // int literal coerces
				} else {
					vals[i] = renderValue(g.dyadic())
				}
			case vector.String:
				vals[i] = renderValue(vector.StringValue(stringPool[g.intn(len(stringPool))]))
			case vector.Bool:
				vals[i] = renderValue(vector.BoolValue(g.chance(0.5)))
			case vector.Timestamp:
				vals[i] = strconv.Itoa(20240100 + g.intn(100))
			}
		}
		rows[r] = "(" + strings.Join(vals, ", ") + ")"
	}
	return "INSERT INTO " + t.Full + " (" + strings.Join(cols, ", ") + ") VALUES " + strings.Join(rows, ", ")
}

func (g *Gen) update(t *GenTable, scope []scopeCol) string {
	n := 1 + g.intn(2)
	perm := g.perm(len(scope))
	var sets []string
	for i := 0; i < n && i < len(scope); i++ {
		c := scope[perm[i]]
		var expr string
		switch c.typ {
		case vector.Int64:
			if g.chance(0.5) {
				expr = c.name + " + " + strconv.Itoa(g.intn(5))
			} else {
				expr = strconv.Itoa(g.intn(50))
			}
		case vector.Float64:
			switch g.pick(3) {
			case 0:
				expr = c.name + " * 2"
			case 1:
				expr = strconv.Itoa(g.intn(30)) // int into float column
			default:
				expr = renderValue(g.dyadic())
			}
		case vector.String:
			if g.chance(0.4) {
				expr = c.name + " + 'x'"
			} else {
				expr = renderValue(vector.StringValue(stringPool[g.intn(len(stringPool))]))
			}
		case vector.Bool:
			expr = renderValue(vector.BoolValue(g.chance(0.5)))
		case vector.Timestamp:
			expr = strconv.Itoa(20240100 + g.intn(100))
		}
		sets = append(sets, c.name+" = "+expr)
	}
	sql := "UPDATE " + t.Full + " SET " + strings.Join(sets, ", ")
	if g.chance(0.85) {
		sql += " WHERE " + g.predicate(scope, 1)
	}
	return sql
}

// CTAS generates a CREATE OR REPLACE TABLE over the managed table and
// returns the resulting table shape so later queries can target it.
// Items are plain column projections (plus one optional arithmetic
// column), all aliased, so the result schema is statically known.
func (g *Gen) CTAS(src *GenTable, name string) (string, *GenTable) {
	scope := tableScope(src, "")
	perm := g.perm(len(scope))
	n := 2 + g.intn(len(scope)-1)
	var items []string
	var fields []vector.Field
	for i := 0; i < n && i < len(scope); i++ {
		c := scope[perm[i]]
		g.seq++
		alias := fmt.Sprintf("cx%d", g.seq)
		items = append(items, c.name+" AS "+alias)
		fields = append(fields, vector.Field{Name: alias, Type: c.typ})
	}
	if g.chance(0.4) {
		ints := make([]scopeCol, 0, len(scope))
		for _, c := range scope {
			if c.typ == vector.Int64 {
				ints = append(ints, c)
			}
		}
		if len(ints) > 0 {
			c := ints[g.intn(len(ints))]
			g.seq++
			alias := fmt.Sprintf("cx%d", g.seq)
			items = append(items, "("+c.name+" * 3) AS "+alias)
			fields = append(fields, vector.Field{Name: alias, Type: vector.Int64})
		}
	}
	sql := "CREATE OR REPLACE TABLE " + name + " AS SELECT " + strings.Join(items, ", ") + " FROM " + src.Full
	if g.chance(0.5) {
		sql += " WHERE " + g.predicate(scope, 1)
	}
	out := &GenTable{Full: name, Managed: true, Schema: vector.Schema{Fields: fields}}
	return sql, out
}
