package oracle

// Interleaved-transaction oracle entry points. Replay a failure with:
//
//	go test ./internal/oracle -run TestTxnCrashSweep -seed=<n>
//
// (the -seed flag is shared with TestDifferential/TestCrashSweep.)

import "testing"

// TestTxnInterleavedOracle runs several seeded interleaved schedules
// crash-free: whatever subset of transactions commits, the state of
// every table at every log version must equal a serial execution of
// exactly the committed history in commit order.
func TestTxnInterleavedOracle(t *testing.T) {
	seeds := []uint64{*seedFlag, 1, 2, 3, 11, 42, 1337}
	for _, seed := range seeds {
		if err := RunTxnOracle(seed, 4); err != nil {
			t.Fatalf("seed %d: %v\n  replay: go test ./internal/oracle -run TestTxnInterleavedOracle -seed=%d", seed, err, seed)
		}
	}
}

// TestTxnCrashSweep kills the "process" at every labeled step any
// transaction of the seeded schedule passes through (intent, data
// PUTs, seal), recovers from the journal + object store alone,
// re-drives the full schedule (sealed transactions no-op through
// their idempotency IDs), and requires a serializable, orphan-free
// converged state every time.
func TestTxnCrashSweep(t *testing.T) {
	rep, err := RunTxnCrashSweep(TxnSweepOptions{Seed: *seedFlag, Log: t.Logf})
	if err != nil {
		t.Fatalf("txn crash sweep failed to run: %v", err)
	}
	if rep.Failure != nil {
		t.Fatal(rep.Failure.Format())
	}
	if rep.Points == 0 {
		t.Fatal("sweep exercised no crash points")
	}
	if rep.Committed < 3 {
		t.Fatalf("record pass committed only %d transactions — schedule lost its write coverage", rep.Committed)
	}
	t.Logf("ok: %d txn crash points across %d labels, %d committed (replay seed=%d)",
		rep.Points, len(rep.Labels), rep.Committed, *seedFlag)
}

// TestTxnScheduleDeterministic pins the generator: the same seed must
// yield the identical schedule (the crash sweep depends on re-driving
// an exact replay).
func TestTxnScheduleDeterministic(t *testing.T) {
	a, b := GenTxnSchedule(99, 4), GenTxnSchedule(99, 4)
	if len(a.steps) != len(b.steps) {
		t.Fatalf("step counts differ: %d vs %d", len(a.steps), len(b.steps))
	}
	for i := range a.steps {
		if a.steps[i] != b.steps[i] {
			t.Fatalf("step %d differs: %+v vs %+v", i, a.steps[i], b.steps[i])
		}
	}
	// Different seeds must actually vary the shape.
	c := GenTxnSchedule(100, 4)
	same := len(a.steps) == len(c.steps)
	if same {
		for i := range a.steps {
			if a.steps[i] != c.steps[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("seeds 99 and 100 generated identical schedules")
	}
}
