package oracle

// The crash-point sweep: a scripted multi-protocol workload (engine
// DML, all three Write API stream modes, a cross-stream batch commit,
// BLMT compaction, auto-Iceberg export) runs once under a recording
// crashpoint.Injector to enumerate every labeled protocol step it
// passes through. Then, for every (label, hit) pair, a fresh world
// replays the same workload with a crash armed exactly there, the
// "process" dies, and recovery rebuilds everything from the durable
// journal + object store alone. After recovery the client drives the
// workload to completion (idempotency IDs make already-sealed ops
// exact no-ops) and the final world is cross-checked against the
// differential oracle:
//
//   - no acked commit lost, no unacked commit visible (recovered log
//     version is exactly the acked version, or +1 if the in-flight op
//     had already sealed);
//   - no duplicate and no missing rows (engine vs oracle multiset);
//   - zero unreachable objects after orphan GC;
//   - every referenced data file exists;
//   - historical snapshots replay bit-identically;
//   - the Iceberg version hint agrees with the log head.

import (
	"encoding/json"
	"errors"
	"fmt"
	"strings"

	"biglake/internal/bigmeta"
	"biglake/internal/blmt"
	"biglake/internal/catalog"
	"biglake/internal/crashpoint"
	"biglake/internal/engine"
	"biglake/internal/iceberg"
	"biglake/internal/storageapi"
	"biglake/internal/vector"
	"biglake/internal/wal"
)

const crashTable = "ds.events"
const crashPrefix = "blmt/ds/events/"

// CrashOptions configures a sweep.
type CrashOptions struct {
	Seed uint64
	Log  func(format string, args ...any)
}

// CrashReport summarizes a sweep.
type CrashReport struct {
	Points  int      // crash points exercised (one world each)
	Labels  []string // distinct labels covered
	Failure *CrashFailure
}

// CrashFailure is one crash point whose recovery broke an invariant.
type CrashFailure struct {
	Seed   uint64
	Label  string
	Hit    int
	Detail string
}

// Format renders the reproduction recipe.
func (f *CrashFailure) Format() string {
	return fmt.Sprintf(
		"crash sweep failure: seed=%d crash=%s#%d\n  %s\n  replay: go test ./internal/oracle -run TestCrashSweep -seed=%d",
		f.Seed, f.Label, f.Hit, f.Detail, f.Seed)
}

// crashPlan is the seed-derived shape of the scripted workload. Both
// the workload and the oracle's expected state derive from it, so a
// sweep is a pure function of the seed.
type crashPlan struct {
	ins1N, ins2N int // engine INSERT row counts
	scN          int // rows per committed-stream append (two appends)
	sbN          int // buffered-stream rows
	pN           int // rows per pending stream (two streams)
	delFrom      int // DELETE WHERE id >= delFrom
}

func planFor(seed uint64) crashPlan {
	x := seed
	next := func(lo, span int) int {
		x = x*6364136223846793005 + 1442695040888963407
		return lo + int((x>>33)%uint64(span))
	}
	return crashPlan{
		ins1N:   next(3, 4),
		ins2N:   next(2, 4),
		scN:     next(3, 4),
		sbN:     next(4, 4),
		pN:      next(5, 5),
		delFrom: 320, // drops the second pending stream's rows
	}
}

func crashSchema() vector.Schema {
	return vector.NewSchema(
		vector.Field{Name: "id", Type: vector.Int64},
		vector.Field{Name: "kind", Type: vector.String},
		vector.Field{Name: "value", Type: vector.Float64},
	)
}

func crashKind(id int) string {
	return []string{"click", "view", "purchase"}[id%3]
}

func crashVal(id int) float64 { return float64(id) + 0.25 }

func crashInsertSQL(start, n int) string {
	var sb strings.Builder
	sb.WriteString("INSERT INTO " + crashTable + " VALUES ")
	for i := 0; i < n; i++ {
		if i > 0 {
			sb.WriteString(", ")
		}
		id := start + i
		fmt.Fprintf(&sb, "(%d, '%s', %v)", id, crashKind(id), crashVal(id))
	}
	return sb.String()
}

func crashBatch(start, n int) *vector.Batch {
	bl := vector.NewBuilder(crashSchema())
	for i := 0; i < n; i++ {
		id := start + i
		bl.Append(vector.IntValue(int64(id)), vector.StringValue(crashKind(id)), vector.FloatValue(crashVal(id)))
	}
	return bl.Build()
}

// expectedDB applies the workload's logical effect exactly once to the
// row-at-a-time oracle — what any crash + recovery + retry sequence
// must converge to.
func expectedDB(p crashPlan) (*DB, error) {
	db := NewDB()
	db.Add(&Table{Name: crashTable, Schema: crashSchema()})
	stmts := []string{
		crashInsertSQL(1, p.ins1N),
		crashInsertSQL(21, p.ins2N),
		crashInsertSQL(100, p.scN),
		crashInsertSQL(110, p.scN),
		crashInsertSQL(200, p.sbN),
		crashInsertSQL(300, p.pN),
		crashInsertSQL(320, p.pN),
		"UPDATE " + crashTable + " SET value = value + 1 WHERE kind = 'click'",
		fmt.Sprintf("DELETE FROM %s WHERE id >= %d", crashTable, p.delFrom),
	}
	for _, s := range stmts {
		if _, err := db.ExecSQL(s); err != nil {
			return nil, fmt.Errorf("oracle %q: %w", s, err)
		}
	}
	return db, nil
}

// crashWorld is one journaled, crash-instrumented lakehouse.
type crashWorld struct {
	w        *world
	j        *wal.Journal
	cp       *crashpoint.Injector
	meta     *bigmeta.Cache
	srv      *storageapi.Server
	eng      *engine.Engine
	restored map[string]bigmeta.StreamState
	// acked is the log version after the last op the workload driver
	// saw complete — the client-visible durability watermark.
	acked int64
}

func newCrashWorld() (*crashWorld, error) {
	w, err := newWorld()
	if err != nil {
		return nil, err
	}
	if err := w.cat.CreateTable(catalog.Table{
		Dataset: "ds", Name: "events", Type: catalog.Managed, Schema: crashSchema(),
		Cloud: "gcp", Bucket: diffBucket, Prefix: crashPrefix, Connection: diffConn,
	}); err != nil {
		return nil, err
	}
	j, err := wal.Open(w.store, w.cred, diffBucket, "")
	if err != nil {
		return nil, err
	}
	cw := &crashWorld{w: w, j: j, cp: crashpoint.New(), restored: map[string]bigmeta.StreamState{}}
	cw.wire()
	return cw, nil
}

// wire (re)assembles the journaled manager, write server, and engine
// around the world's current log — used both at boot and after
// recovery swaps in a replayed log.
func (cw *crashWorld) wire() {
	w := cw.w
	w.log.AttachJournal(cw.j)
	w.log.Crash = cw.cp

	mgr := blmt.New(w.cat, w.auth, w.log, w.clock, w.stores)
	mgr.DefaultCloud = "gcp"
	mgr.DefaultBucket = diffBucket
	mgr.DefaultConnection = diffConn
	mgr.AutoIceberg = true
	mgr.Journal = cw.j
	mgr.Crash = cw.cp
	w.mgr = mgr

	cw.meta = bigmeta.NewCache(w.clock, nil)
	srv := storageapi.NewServer(w.cat, w.auth, cw.meta, w.log, w.clock, w.stores)
	srv.ManagedCred = w.cred
	srv.Journal = cw.j
	srv.Crash = cw.cp
	srv.RestoreStreams(cw.restored)
	cw.srv = srv

	eng := engine.New(w.cat, w.auth, cw.meta, w.log, w.clock, w.stores, engine.Options{
		UseMetadataCache: true, EnableDPP: true, PruneGranularity: bigmeta.PruneFiles,
		// Scan-cache on: crash/recovery sweeps double as validation that
		// generation-keyed reuse never resurrects pre-crash file contents.
		EnableScanCache: true,
		GCLean:          true,
	})
	eng.ManagedCred = w.cred
	eng.SetMutator(mgr)
	cw.eng = eng
}

func (cw *crashWorld) ack() { cw.acked = cw.w.log.Version() }

func (cw *crashWorld) dml(qid, sql string) error {
	if _, err := cw.eng.Query(engine.NewContext(diffAdmin, qid), sql); err != nil {
		return fmt.Errorf("%s: %w", qid, err)
	}
	cw.ack()
	return nil
}

// stream returns the deterministic stream for one logical slot,
// reusing a journal-restored stream when the crashed process already
// sealed its state.
func (cw *crashWorld) stream(want string, mode storageapi.WriteMode) (string, error) {
	if _, ok := cw.restored[want]; ok {
		return want, nil
	}
	id, err := cw.srv.CreateWriteStream(string(diffAdmin), crashTable, mode)
	if err != nil {
		return "", err
	}
	if id != want {
		return "", fmt.Errorf("stream slot minted %s, want %s (workload not deterministic)", id, want)
	}
	return id, nil
}

// appendAt is an exactly-once client append: ErrOffsetExists means the
// crashed process already sealed these rows, which is success.
func (cw *crashWorld) appendAt(id string, off int64, rows *vector.Batch) error {
	if _, err := cw.srv.AppendRows(id, off, rows); err != nil && !errors.Is(err, storageapi.ErrOffsetExists) {
		return fmt.Errorf("append %s@%d: %w", id, off, err)
	}
	cw.ack()
	return nil
}

// workload runs (or, after a crash, resumes) the scripted multi-
// protocol session. Every op carries a stable idempotency identity, so
// running it again on a recovered world applies each op exactly once.
func (cw *crashWorld) workload(p crashPlan) error {
	if err := cw.dml("cw-ins1", crashInsertSQL(1, p.ins1N)); err != nil {
		return err
	}
	if err := cw.dml("cw-ins2", crashInsertSQL(21, p.ins2N)); err != nil {
		return err
	}

	// Committed mode: each append is its own durable commit.
	sc, err := cw.stream("writeStreams/1", storageapi.CommittedMode)
	if err != nil {
		return err
	}
	if err := cw.appendAt(sc, 0, crashBatch(100, p.scN)); err != nil {
		return err
	}
	if err := cw.appendAt(sc, int64(p.scN), crashBatch(110, p.scN)); err != nil {
		return err
	}

	// Buffered mode: rows are durable only from the flush; buffered
	// rows die with the process, so an unflushed slot replays in full.
	sb, err := cw.stream("writeStreams/2", storageapi.BufferedMode)
	if err != nil {
		return err
	}
	if st, ok := cw.restored[sb]; !ok || st.Offset < int64(p.sbN) {
		if _, err := cw.srv.AppendRows(sb, -1, crashBatch(200, p.sbN)); err != nil {
			return fmt.Errorf("buffered append: %w", err)
		}
		if _, err := cw.srv.FlushRows(sb, int64(p.sbN)); err != nil {
			return fmt.Errorf("flush: %w", err)
		}
	}
	cw.ack()

	// Pending mode ×2 + cross-stream batch commit. A restored pending
	// stream is necessarily committed (that is the only state it ever
	// seals), so its appends are skipped.
	var pending []string
	for i, start := range []int{300, 320} {
		id, err := cw.stream(fmt.Sprintf("writeStreams/%d", 3+i), storageapi.PendingMode)
		if err != nil {
			return err
		}
		if st, ok := cw.restored[id]; !ok || !st.Committed {
			if _, err := cw.srv.AppendRows(id, -1, crashBatch(start, p.pN)); err != nil {
				return fmt.Errorf("pending append %s: %w", id, err)
			}
			if _, err := cw.srv.FinalizeStream(id); err != nil {
				return fmt.Errorf("finalize %s: %w", id, err)
			}
		}
		pending = append(pending, id)
	}
	if err := cw.srv.BatchCommitStreamsTx("cw-batch-1", pending); err != nil {
		return fmt.Errorf("batch commit: %w", err)
	}
	cw.ack()

	if err := cw.dml("cw-upd", "UPDATE "+crashTable+" SET value = value + 1 WHERE kind = 'click'"); err != nil {
		return err
	}
	if err := cw.dml("cw-del", fmt.Sprintf("DELETE FROM %s WHERE id >= %d", crashTable, p.delFrom)); err != nil {
		return err
	}

	// Background compaction, crash-atomic like any other transaction.
	if _, err := cw.w.mgr.Optimize(string(diffAdmin), crashTable, ""); err != nil {
		return fmt.Errorf("optimize: %w", err)
	}
	cw.ack()
	return nil
}

// recoverWorld is the restart path: everything in-memory is discarded
// and rebuilt from the journal and object store, orphaned data files
// are collected, and the Iceberg export is re-converged.
func (cw *crashWorld) recoverWorld() error {
	j, err := wal.Open(cw.w.store, cw.w.cred, diffBucket, "")
	if err != nil {
		return fmt.Errorf("reopen journal: %w", err)
	}
	rec, err := wal.Recover(j, cw.w.clock, nil)
	if err != nil {
		return fmt.Errorf("recover: %w", err)
	}
	// Atomicity at commit granularity: every acked commit survived, and
	// at most the single in-flight commit (iff it sealed) joined them.
	v := rec.Log.Version()
	if v < cw.acked || v > cw.acked+1 {
		return fmt.Errorf("recovered version %d outside [acked %d, acked+1]", v, cw.acked)
	}
	cw.j = j
	cw.w.log = rec.Log
	cw.restored = rec.Streams
	cw.wire()

	// Collect debris of transactions that died between PUT and seal.
	if _, err := wal.GCOrphans(cw.w.store, cw.w.cred, diffBucket, []string{crashPrefix + "data/"}, rec.Log); err != nil {
		return fmt.Errorf("orphan gc: %w", err)
	}
	// A crash inside an auto-export can leave the version hint behind
	// the sealed log; re-export converges it.
	if v > 0 {
		if _, err := cw.w.mgr.ExportIceberg(crashTable); err != nil {
			return fmt.Errorf("recovery re-export: %w", err)
		}
	}
	return nil
}

// verifyFinal cross-checks a driven-to-completion world against the
// oracle and the durability invariants.
func (cw *crashWorld) verifyFinal(p crashPlan) error {
	db, err := expectedDB(p)
	if err != nil {
		return err
	}
	res, err := cw.eng.Query(engine.NewContext(diffAdmin, "cw-final"),
		"SELECT id, kind, value FROM "+crashTable)
	if err != nil {
		return fmt.Errorf("final read: %w", err)
	}
	want, err := db.ExecSQL("SELECT id, kind, value FROM " + crashTable)
	if err != nil {
		return err
	}
	if d := diffResults(FromBatch(res.Batch), want, false); d != "" {
		return fmt.Errorf("final state diverges from oracle (lost, duplicated, or phantom rows): %s", d)
	}

	// Zero unreachable objects: a second GC pass finds nothing, and
	// everything the log references is present.
	rep, err := wal.GCOrphans(cw.w.store, cw.w.cred, diffBucket, []string{crashPrefix + "data/"}, cw.w.log)
	if err != nil {
		return err
	}
	if len(rep.Deleted) != 0 {
		return fmt.Errorf("unreachable objects after full replay: %v", rep.Deleted)
	}
	files, ver, err := cw.w.log.Snapshot(crashTable, -1)
	if err != nil {
		return err
	}
	for _, f := range files {
		if _, err := cw.w.store.Head(cw.w.cred, f.Bucket, f.Key); err != nil {
			return fmt.Errorf("referenced file %s missing: %w", f.Key, err)
		}
	}

	// Historical snapshots replay bit-identically at every version.
	for v := int64(1); v <= ver; v++ {
		a, _, err := cw.w.log.Snapshot(crashTable, v)
		if err != nil {
			return err
		}
		b, _, err := cw.w.log.SnapshotByReplay(crashTable, v)
		if err != nil {
			return err
		}
		aj, _ := json.Marshal(a)
		bj, _ := json.Marshal(b)
		if string(aj) != string(bj) {
			return fmt.Errorf("snapshot v%d: baseline read != replay read", v)
		}
	}

	// The Iceberg hint points at the sealed head.
	hint, err := iceberg.LatestMetadataKey(cw.w.store, cw.w.cred, diffBucket, crashPrefix)
	if err != nil {
		return fmt.Errorf("version hint: %w", err)
	}
	if wantKey := fmt.Sprintf("%smetadata/v%d.metadata.json", crashPrefix, ver); hint != wantKey {
		return fmt.Errorf("version hint %s, want %s", hint, wantKey)
	}
	return nil
}

// requiredCrashLabels is the coverage contract: the sweep fails if the
// workload stops exercising any of these protocol steps.
var requiredCrashLabels = []string{
	"journal.before_seal", "journal.after_seal",
	"flush.before_put", "flush.after_put", "flush.after_commit",
	"batch.before_put", "batch.after_put", "batch.after_commit",
	"blmt.before_put", "blmt.after_put", "blmt.after_commit",
	"iceberg.before_manifest", "iceberg.after_manifest",
	"iceberg.after_metadata", "iceberg.after_hint",
}

// RunCrashSweep enumerates every crash point the scripted workload
// passes through and verifies crash → recover → resume at each one.
func RunCrashSweep(opts CrashOptions) (CrashReport, error) {
	logf := opts.Log
	if logf == nil {
		logf = func(string, ...any) {}
	}
	plan := planFor(opts.Seed)
	rep := CrashReport{}

	// Record pass: enumerate the crash surface and pin the baseline.
	cw, err := newCrashWorld()
	if err != nil {
		return rep, err
	}
	if err := cw.workload(plan); err != nil {
		return rep, fmt.Errorf("record pass: %w", err)
	}
	if err := cw.verifyFinal(plan); err != nil {
		return rep, fmt.Errorf("record pass (no crash): %w", err)
	}
	hits := cw.cp.Hits()
	seen := map[string]bool{}
	for _, h := range hits {
		if !seen[h.Label] {
			seen[h.Label] = true
			rep.Labels = append(rep.Labels, h.Label)
		}
	}
	for _, l := range requiredCrashLabels {
		if !seen[l] {
			return rep, fmt.Errorf("workload no longer reaches crash point %q", l)
		}
	}
	logf("crash surface: %d points across %d labels (seed %d)", len(hits), len(rep.Labels), opts.Seed)

	for _, h := range hits {
		if fail := sweepOne(opts.Seed, plan, h); fail != nil {
			rep.Failure = fail
			return rep, nil
		}
		rep.Points++
	}
	logf("swept %d crash points: all recoveries converged", rep.Points)
	return rep, nil
}

func sweepOne(seed uint64, plan crashPlan, h crashpoint.Hit) *CrashFailure {
	fail := func(format string, args ...any) *CrashFailure {
		return &CrashFailure{Seed: seed, Label: h.Label, Hit: h.N, Detail: fmt.Sprintf(format, args...)}
	}
	cw, err := newCrashWorld()
	if err != nil {
		return fail("world: %v", err)
	}
	cw.cp.Arm(h.Label, h.N)
	sig, err := crashpoint.Run(func() error { return cw.workload(plan) })
	if err != nil {
		return fail("workload failed before the armed point: %v", err)
	}
	if sig == nil {
		return fail("armed point never fired (workload drifted from record pass)")
	}
	if err := cw.recoverWorld(); err != nil {
		return fail("recovery: %v", err)
	}
	// The client drives the same session to completion; sealed ops
	// must no-op, unsealed ops must apply exactly once.
	if err := cw.workload(plan); err != nil {
		return fail("resume after recovery: %v", err)
	}
	if err := cw.verifyFinal(plan); err != nil {
		return fail("%v", err)
	}
	return nil
}
